package treeclock

import (
	"bytes"
	"errors"
	"runtime"
	"strings"
	"testing"
)

// TestParallelDecodeError pins the mid-stream failure contract of the
// sharded runtime: a decode or validation error part-way through the
// trace propagates to the caller, the workers drain and exit, and the
// partial result still carries the merged per-shard MemStats.
func TestParallelDecodeError(t *testing.T) {
	// 12k valid events (with lock activity, so the WCP plugin retains
	// history) before the fault.
	var pb bytes.Buffer
	for i := 0; i < 2_000; i++ {
		pb.WriteString("t0 acq l\nt0 w x\nt0 rel l\nt1 acq l\nt1 w x\nt1 rel l\n")
	}
	prefix := pb.Bytes()
	cases := []struct {
		name    string
		garbage string
		wantErr string
	}{
		{"malformed line", "t0 frobnicate x\n", "unknown operation"},
		{"bad syntax", "not a trace line\n", "want \"<thread> <op> <operand>\""},
		{"validation failure", "t0 acq l\nt0 acq l\n", "already held"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var text bytes.Buffer
			text.Write(prefix)
			text.WriteString(tc.garbage)
			text.Write(cancelTrace(5_000)) // never reached

			base := runtime.NumGoroutine()
			res, err := RunStreamParallel("wcp-tree", bytes.NewReader(text.Bytes()),
				StreamValidate(), WithWorkers(2))
			if err == nil {
				t.Fatal("mid-stream fault produced no error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
			if errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("decode error misclassified as corrupt checkpoint: %v", err)
			}
			if res == nil {
				t.Fatal("no partial result")
			}
			if res.Events == 0 || res.Events > 12_002 {
				t.Fatalf("partial result covers %d events, want within (0, 12002]", res.Events)
			}
			if res.Mem == nil {
				t.Fatal("partial result missing merged MemStats")
			}
			if res.Mem.HistEntries == 0 || res.Mem.RetainedBytes == 0 {
				t.Fatalf("merged MemStats empty after 12k processed events: %+v", *res.Mem)
			}
			checkGoroutines(t, base)
		})
	}
}
