package treeclock_test

// Differential pinning of the WCP weak-clock transports through the
// public streaming API: WithFlatWeakClocks must change throughput
// characteristics only — race reports, timestamps and retained-state
// counters stay byte-identical across the sequential, pipelined and
// sharded paths.

import (
	"bytes"
	"testing"

	"treeclock"
)

// runWeak streams data through a wcp engine with the given transport
// and path options and renders its full observable outcome.
func runWeak(t *testing.T, engineName string, data []byte, parallel bool, opts ...treeclock.StreamOption) (*treeclock.StreamResult, string) {
	t.Helper()
	var (
		res *treeclock.StreamResult
		err error
	)
	if parallel {
		res, err = treeclock.RunStreamParallel(engineName, bytes.NewReader(data), opts...)
	} else {
		res, err = treeclock.RunStream(engineName, bytes.NewReader(data), opts...)
	}
	if err != nil {
		t.Fatalf("%s: %v", engineName, err)
	}
	return res, raceReport(res.Summary, res.Samples)
}

func TestWCPFlatWeakTransportByteIdentical(t *testing.T) {
	paths := []struct {
		name     string
		parallel bool
		opts     []treeclock.StreamOption
	}{
		{"batch", false, []treeclock.StreamOption{treeclock.WithPipeline(0)}},
		{"pipeline", false, []treeclock.StreamOption{treeclock.WithPipeline(3)}},
		{"workers", true, []treeclock.StreamOption{treeclock.WithWorkers(3)}},
	}
	for _, tr := range generatorSuite() {
		var text bytes.Buffer
		if err := treeclock.WriteTraceText(&text, tr); err != nil {
			t.Fatal(err)
		}
		for _, engineName := range []string{"wcp-tree", "wcp-vc"} {
			for _, p := range paths {
				t.Run(tr.Meta.Name+"/"+engineName+"/"+p.name, func(t *testing.T) {
					sparse, sparseReport := runWeak(t, engineName, text.Bytes(), p.parallel, p.opts...)
					flatOpts := append([]treeclock.StreamOption{treeclock.WithFlatWeakClocks()}, p.opts...)
					flat, flatReport := runWeak(t, engineName, text.Bytes(), p.parallel, flatOpts...)
					if sparseReport != flatReport {
						t.Errorf("race reports diverge:\nsparse:\n%s\nflat:\n%s", sparseReport, flatReport)
					}
					for th := range sparse.Timestamps {
						g, w := sparse.Timestamps[th], flat.Timestamps[th]
						for u := 0; u < len(g) || u < len(w); u++ {
							if g.Get(treeclock.ThreadID(u)) != w.Get(treeclock.ThreadID(u)) {
								t.Fatalf("thread %d timestamp diverges: sparse %v, flat %v", th, g, w)
							}
						}
					}
					if sparse.Mem == nil || flat.Mem == nil {
						t.Fatal("wcp engines must report retained-state accounting")
					}
					// The history/compaction counters are transport-
					// independent; byte and pool counts are not.
					if sparse.Mem.HistEntries != flat.Mem.HistEntries ||
						sparse.Mem.PeakLockHist != flat.Mem.PeakLockHist ||
						sparse.Mem.DroppedEntries != flat.Mem.DroppedEntries ||
						sparse.Mem.SummaryVectors != flat.Mem.SummaryVectors {
						t.Errorf("retained-state counters diverge:\nsparse %+v\nflat   %+v", sparse.Mem, flat.Mem)
					}
				})
			}
		}
	}
}

// TestFlatWeakClocksIgnoredByStrongOrders: the option is a no-op for
// engines without a weak transport.
func TestFlatWeakClocksIgnoredByStrongOrders(t *testing.T) {
	tr := treeclock.GenerateStar(6, 500, 1)
	var text bytes.Buffer
	if err := treeclock.WriteTraceText(&text, tr); err != nil {
		t.Fatal(err)
	}
	plain, plainReport := runWeak(t, "hb-tree", text.Bytes(), false)
	opt, optReport := runWeak(t, "hb-tree", text.Bytes(), false, treeclock.WithFlatWeakClocks())
	if plainReport != optReport || plain.Events != opt.Events {
		t.Errorf("WithFlatWeakClocks changed an hb run: %q vs %q", plainReport, optReport)
	}
}
