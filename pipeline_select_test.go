package treeclock

import "testing"

// TestAutoPipelineSelection pins the decode-mode default (ROADMAP:
// WithPipeline becomes the default for text input when GOMAXPROCS > 1):
// the auto depth engages exactly for unforced, unsharded, non-scalar
// text input on a multi-core host, and an explicit WithPipeline choice
// is never overridden (RunStream skips autoPipelineDepth entirely when
// pipelineSet).
func TestAutoPipelineSelection(t *testing.T) {
	base := streamConfig{format: FormatText, analysis: true}
	cases := []struct {
		name     string
		mutate   func(*streamConfig)
		maxprocs int
		want     int
	}{
		{"text multicore", func(c *streamConfig) {}, 4, defaultPipelineDepth},
		{"text dualcore", func(c *streamConfig) {}, 2, defaultPipelineDepth},
		{"text unicore", func(c *streamConfig) {}, 1, 0},
		{"binary multicore", func(c *streamConfig) { c.format = FormatBinary }, 4, 0},
		{"scalar forces off", func(c *streamConfig) { c.scalar = true }, 4, 0},
		{"workers coordinate decode", func(c *streamConfig) { c.workers = 4 }, 4, 0},
		{"forced parallel", func(c *streamConfig) { c.forceParallel = true }, 4, 0},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if got := autoPipelineDepth(&cfg, tc.maxprocs); got != tc.want {
			t.Errorf("%s: autoPipelineDepth = %d, want %d", tc.name, got, tc.want)
		}
	}
	// The option plumbing: StreamScalar and WithPipeline mark the
	// config so RunStream can tell "explicit" from "default".
	cfg := base
	WithPipeline(6)(&cfg)
	if !cfg.pipelineSet || cfg.pipeline != 6 {
		t.Errorf("WithPipeline(6) left cfg %+v", cfg)
	}
	cfg = base
	WithPipeline(0)(&cfg)
	if !cfg.pipelineSet || cfg.pipeline != 0 {
		t.Errorf("WithPipeline(0) must mark an explicit synchronous choice, got %+v", cfg)
	}
}
