#!/usr/bin/env bash
# Daemon integration smoke, run by the CI daemon lane and fine to run
# locally (`bash ci/daemon_smoke.sh`). Three phases:
#
#   1. Start tcraced and drive 8 concurrent remote sessions, one per
#      registry engine; every remote report must match the local run
#      of the same trace line for line (elapsed time stripped), and
#      -daemon-stats must account for the finished sessions.
#   2. kill -9 the daemon while 4 throttled sessions are mid-stream,
#      restart it on the same spool, resume all 4 with
#      -resume-session, and require byte-identical reports again —
#      the restart nobody notices.
#   3. Budget eviction: a daemon with a tiny retained-bytes cap must
#      evict a wcp session with exit code 4 and leave a resumable
#      checkpoint behind; an unbudgeted daemon on the same spool
#      finishes the session with the reference report.
set -euo pipefail
cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
DPID=""
cleanup() {
  rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "== failure diagnostics (exit $rc)" >&2
    tail -n 5 "$TMP"/*.err >&2 2>/dev/null || true
  fi
  [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== build"
go build -o "$TMP/tcrace" ./cmd/tcrace
go build -o "$TMP/tcraced" ./cmd/tcraced
go build -o "$TMP/tracegen" ./cmd/tracegen

# One mixed workload big enough for many checkpoint cadences and a
# few seconds of throttled feeding.
"$TMP/tracegen" -pattern mixed -threads 8 -locks 6 -vars 64 \
  -events 120000 -sync 0.3 -seed 42 -o "$TMP/trace.txt"

SOCK="$TMP/d.sock"
SPOOL="$TMP/spool"
ENGINES="hb-tree hb-vc shb-tree shb-vc maz-tree maz-vc wcp-tree wcp-vc"

start_daemon() {
  # A kill -9'd daemon leaves its socket file behind; remove it so the
  # restart can bind (and so the listen probe below sees the new one).
  rm -f "$SOCK"
  "$TMP/tcraced" -listen "$SOCK" -spool "$SPOOL" -quiet "$@" \
    > "$TMP/daemon.out" 2> "$TMP/daemon.err" &
  DPID=$!
  for _ in $(seq 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  echo "tcraced did not start listening" >&2
  cat "$TMP/daemon.err" >&2
  exit 1
}

stop_daemon() {
  kill "$DPID" 2>/dev/null || true
  wait "$DPID" 2>/dev/null || true
  DPID=""
}

strip_time() { sed 's/ detected in .*//' "$1"; }

# tcrace exits 0 (clean) or 1 (races found); anything else is failure.
run_tcrace() {
  local rc=0
  "$@" || rc=$?
  if [ "$rc" -gt 1 ]; then
    echo "tcrace failed (exit $rc): $*" >&2
    return "$rc"
  fi
}

echo "== local reference reports"
for e in $ENGINES; do
  run_tcrace "$TMP/tcrace" -engine "$e" "$TMP/trace.txt" > "$TMP/local-$e.out"
done

echo "== phase 1: 8 concurrent remote sessions"
start_daemon -checkpoint-every 1000
pids=""
for e in $ENGINES; do
  ( run_tcrace "$TMP/tcrace" -remote "$SOCK" -session "smoke-$e" -engine "$e" \
      "$TMP/trace.txt" > "$TMP/remote-$e.out" 2> "$TMP/remote-$e.err" ) &
  pids="$pids $!"
done
for p in $pids; do
  wait "$p" || { echo "a remote session failed"; cat "$TMP"/remote-*.err >&2; exit 1; }
done
for e in $ENGINES; do
  diff <(strip_time "$TMP/local-$e.out") <(strip_time "$TMP/remote-$e.out") \
    || { echo "remote report for $e differs from the local run" >&2; exit 1; }
done
"$TMP/tcrace" -daemon-stats "$SOCK" > "$TMP/stats.json"
grep -q '"sessions_finished": 8' "$TMP/stats.json" \
  || { echo "daemon stats did not account 8 finished sessions:" >&2; cat "$TMP/stats.json" >&2; exit 1; }
stop_daemon
echo "phase 1 ok: 8/8 remote reports identical, stats consistent"

echo "== phase 2: kill -9 mid-stream, restart, resume"
rm -rf "$SPOOL"
# Throttle so the sessions are mid-stream seconds after start, with
# many 500-event spool checkpoints already written.
start_daemon -checkpoint-every 500 -max-events-per-sec 20000
KILL_ENGINES="hb-tree shb-vc maz-tree wcp-vc"
for e in $KILL_ENGINES; do
  ( "$TMP/tcrace" -remote "$SOCK" -session "kill-$e" -engine "$e" \
      "$TMP/trace.txt" > /dev/null 2>&1 || true ) &
done
sleep 2
kill -9 "$DPID"
wait "$DPID" 2>/dev/null || true
DPID=""
wait # the severed clients
start_daemon -checkpoint-every 500
for e in $KILL_ENGINES; do
  run_tcrace "$TMP/tcrace" -remote "$SOCK" -session "kill-$e" -engine "$e" \
    -resume-session "$TMP/trace.txt" > "$TMP/resumed-$e.out" 2> "$TMP/resumed-$e.err"
  grep -q "resumed at" "$TMP/resumed-$e.err" \
    || { echo "$e did not resume from a spooled checkpoint:" >&2; cat "$TMP/resumed-$e.err" >&2; exit 1; }
  diff <(strip_time "$TMP/local-$e.out") <(strip_time "$TMP/resumed-$e.out") \
    || { echo "resumed report for $e differs from the local run" >&2; exit 1; }
done
stop_daemon
echo "phase 2 ok: 4/4 sessions resumed after kill -9 with identical reports"

echo "== phase 3: budget eviction + resume"
rm -rf "$SPOOL"
start_daemon -max-retained-bytes 1 -mem-check-every 64 -checkpoint-every 500
rc=0
"$TMP/tcrace" -remote "$SOCK" -session evict-smoke -engine wcp-tree \
  "$TMP/trace.txt" > /dev/null 2> "$TMP/evict.err" || rc=$?
[ "$rc" -eq 4 ] \
  || { echo "expected eviction exit code 4, got $rc:" >&2; cat "$TMP/evict.err" >&2; exit 1; }
grep -q "resume-session" "$TMP/evict.err" \
  || { echo "eviction message lacks the resume hint:" >&2; cat "$TMP/evict.err" >&2; exit 1; }
stop_daemon
start_daemon   # unbudgeted, same spool
run_tcrace "$TMP/tcrace" -remote "$SOCK" -session evict-smoke -engine wcp-tree \
  -resume-session "$TMP/trace.txt" > "$TMP/evict-resumed.out" 2> "$TMP/evict-resumed.err"
grep -q "resumed at" "$TMP/evict-resumed.err" \
  || { echo "evicted session did not resume:" >&2; cat "$TMP/evict-resumed.err" >&2; exit 1; }
diff <(strip_time "$TMP/local-wcp-tree.out") <(strip_time "$TMP/evict-resumed.out") \
  || { echo "post-eviction report differs from the local run" >&2; exit 1; }
stop_daemon
echo "phase 3 ok: evicted with exit 4, resumed to the identical report"

echo "daemon smoke passed"
