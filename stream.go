package treeclock

// The one-pass streaming analysis API: RunStream feeds a trace from an
// io.Reader straight through a partial-order engine with no prior
// metadata and no materialization, so memory is proportional to the
// live identifier spaces (threads, locks, touched variables), not the
// trace length. Engines are selected by name from a registry; see
// Engines and EngineInfos.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"

	"treeclock/internal/analysis"
	"treeclock/internal/engine"
	"treeclock/internal/hb"
	"treeclock/internal/maz"
	"treeclock/internal/shb"
	"treeclock/internal/trace"
	"treeclock/internal/vt"
	"treeclock/internal/wcp"
)

// Semantics is the plugin interface a partial order implements against
// the shared engine runtime: a Read and a Write hook plus whatever
// per-variable state they need. HB, SHB and MAZ are each one small
// Semantics implementation; everything else (thread/lock clocks, the
// sync-event dispatch, identifier growth) is the runtime's.
type Semantics[C vt.Clock[C]] = engine.Semantics[C]

// EngineRuntime is the shared streaming runtime the named engines are
// built from. Advanced users can bind their own Semantics to it.
type EngineRuntime[C vt.Clock[C]] = engine.Runtime[C]

// EngineInfo describes one registry entry.
type EngineInfo struct {
	// Name is the registry key, "<order>-<clock>": e.g. "hb-tree".
	Name string
	// Order is the partial order: "hb", "shb", "maz" or "wcp".
	Order string
	// Clock is the data structure: "tree" or "vc".
	Clock string
	// Doc is a one-line description.
	Doc string
}

// engineRegistry maps engine names to their construction recipe.
var engineRegistry = map[string]EngineInfo{
	"hb-tree":  {"hb-tree", "hb", "tree", "happens-before with tree clocks (Algorithm 3)"},
	"hb-vc":    {"hb-vc", "hb", "vc", "happens-before with vector clocks (Algorithm 1)"},
	"shb-tree": {"shb-tree", "shb", "tree", "schedulable-happens-before with tree clocks (Algorithm 4)"},
	"shb-vc":   {"shb-vc", "shb", "vc", "schedulable-happens-before with vector clocks"},
	"maz-tree": {"maz-tree", "maz", "tree", "Mazurkiewicz order with tree clocks (Algorithm 5)"},
	"maz-vc":   {"maz-vc", "maz", "vc", "Mazurkiewicz order with vector clocks"},
	"wcp-tree": {"wcp-tree", "wcp", "tree", "weakly-causally-precedes with tree clocks (predictive races)"},
	"wcp-vc":   {"wcp-vc", "wcp", "vc", "weakly-causally-precedes with vector clocks"},
}

// Engines returns the registered engine names, sorted.
func Engines() []string {
	names := make([]string, 0, len(engineRegistry))
	for name := range engineRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// EngineInfos returns the registry entries, sorted by name.
func EngineInfos() []EngineInfo {
	infos := make([]EngineInfo, 0, len(engineRegistry))
	for _, name := range Engines() {
		infos = append(infos, engineRegistry[name])
	}
	return infos
}

// TraceFormat selects a trace serialization for streaming.
type TraceFormat uint8

const (
	// FormatText is the line-oriented text format.
	FormatText TraceFormat = iota
	// FormatBinary is the compact binary format of WriteTraceBinary.
	FormatBinary
)

// streamConfig collects RunStream options.
type streamConfig struct {
	format        TraceFormat
	analysis      bool
	validate      bool
	scalar        bool
	pipeline      int  // pipelined-decode depth; <= 0 = synchronous
	pipelineSet   bool // WithPipeline was given (auto-selection is off)
	workers       int  // sharded-analysis worker count; <= 1 = sequential
	forceParallel bool // RunStreamParallel entry: shard even at 1 worker
	flatWeak      bool // wcp only: flat-vector weak-clock transport
	progressEvery uint64
	progressFn    func(Progress)
	stats         *WorkStats
	ctx           context.Context // WithContext; nil = never cancelled
	ckptEvery     uint64          // WithCheckpoint cadence; 0 = off
	ckptSink      CheckpointSink  // WithCheckpoint destination
	resume        io.Reader       // ResumeFrom checkpoint stream; nil = fresh run
	slotReclaim   bool            // WithSlotReclaim: retire fully-joined thread slots
	summaryCap    int             // WithSummaryCap: wcp rule-(a) summary budget; 0 = unbounded
	internCap     int             // WithInternCap: text-interner name budget; 0 = unbounded
}

// StreamOption configures RunStream.
type StreamOption func(*streamConfig)

// StreamFormat selects the input serialization (default FormatText).
func StreamFormat(f TraceFormat) StreamOption {
	return func(c *streamConfig) { c.format = f }
}

// StreamBinary is shorthand for StreamFormat(FormatBinary).
func StreamBinary() StreamOption { return StreamFormat(FormatBinary) }

// StreamNoAnalysis disables race / reversible-pair detection, computing
// the pure partial order (what the paper times as "HB", "SHB", "MAZ").
func StreamNoAnalysis() StreamOption {
	return func(c *streamConfig) { c.analysis = false }
}

// StreamWorkStats accumulates data-structure work counters into st.
func StreamWorkStats(st *WorkStats) StreamOption {
	return func(c *streamConfig) { c.stats = st }
}

// StreamScalar forces the per-event streaming loop (one interface call
// per event) instead of the default batched consumption. It exists for
// comparison benchmarks — batching changes no analysis result, only
// throughput — and is incompatible with WithPipeline.
func StreamScalar() StreamOption {
	return func(c *streamConfig) { c.scalar = true }
}

// WithPipeline runs trace decoding in its own goroutine, feeding the
// engine batches through a ring of depth recycled buffers so parsing
// overlaps analysis. Batches are consumed in trace order, so results
// are identical to the synchronous path. A depth of at least 2 is
// enforced; depth <= 0 forces the synchronous path. Without this
// option RunStream decides on its own: text input decodes pipelined
// when more than one CPU is available (GOMAXPROCS > 1), since the
// extra goroutine only pays off when decode and analysis cost are
// comparable and a second core exists to overlap them; binary input,
// StreamScalar and sharded (WithWorkers) runs stay synchronous — the
// parallel coordinator already decodes concurrently with analysis.
func WithPipeline(depth int) StreamOption {
	return func(c *streamConfig) { c.pipeline, c.pipelineSet = depth, true }
}

// WithWorkers runs the analysis sharded across n workers: variables
// partition across n full engine replicas by stable hash, each replica
// processes the whole event stream (so clock evolution is identical
// everywhere), and the per-variable race analysis — the dominant
// per-event cost on access-heavy workloads — runs only on the
// variable's owner. The merged result is byte-identical to the
// sequential run's. n <= 1 selects the sequential path; RunStreamParallel
// defaults n to GOMAXPROCS. Incompatible with StreamScalar (sharding
// is batched by construction).
func WithWorkers(n int) StreamOption {
	return func(c *streamConfig) { c.workers = n }
}

// WithFlatWeakClocks selects the flat-vector weak-clock transport for
// the "wcp-*" engines instead of the default sparse copy-on-write
// segment representation. The two transports are observationally
// identical (the differential suites pin them byte for byte); the flat
// one pays Θ(threads) per release snapshot and transport operation. It
// exists as the benchmark baseline the sparse representation is
// measured against — see the "weak" column of tcbench's ingest sweep.
// Engines whose order is not "wcp" ignore the option.
func WithFlatWeakClocks() StreamOption {
	return func(c *streamConfig) { c.flatWeak = true }
}

// WithSlotReclaim makes the engine reclaim thread slots: when a thread
// has been joined and no live clock can still receive a component for
// it, its slot is retired and becomes eligible for reuse by a later
// fork, so thread-churn workloads hold clocks of width proportional to
// the peak number of live threads instead of the total ever forked.
// Reclamation changes no analysis result — race counts and samples are
// identical to an unreclaimed run's — but reported thread ids are
// internal slot numbers rather than first-appearance ordinals, and
// StreamResult.Timestamps has one entry per slot. The "wcp-*" engines
// reject the option (their rule-(a) summaries outlive joins; see the
// engine.Runtime.EnableSlotReclaim contract).
func WithSlotReclaim() StreamOption {
	return func(c *streamConfig) { c.slotReclaim = true }
}

// WithSummaryCap bounds the "wcp-*" engines' per-(lock, variable,
// thread) rule-(a) acquire summaries to roughly n live entries: when
// the count exceeds n at a release boundary, summaries whose snapshots
// are dominated by the lock's latest published release clock are
// dropped (a sound no-op — joining them later could not move any weak
// clock). The cap is a soft target: entries under locks currently held
// are never dropped, so a pathological all-locks-held instant can
// exceed it. n <= 0 (the default) disables aging. Engines whose order
// is not "wcp" ignore the option, like WithFlatWeakClocks.
func WithSummaryCap(n int) StreamOption {
	return func(c *streamConfig) { c.summaryCap = n }
}

// WithInternCap bounds the text tokenizer's map-interned name table to
// roughly n names, evicting the coldest when the budget is exceeded.
// An evicted name seen again is treated as a brand-new identifier
// (fresh id — ids are never reused), which is sound exactly when the
// old identifier's analysis state is dead: a race between an access
// before the eviction and one after it is missed. Use it for
// month-long streams whose identifier names churn (thread names,
// per-request variable names) and are never revisited once cold.
// Canonical names ("t3", "x128") resolve through a bounded
// direct-index array and are not subject to the cap. n <= 0 (the
// default) disables eviction. The option requires text input: binary
// traces and pre-decoded sources carry numeric ids, so there is
// nothing to evict, and asking for a cap there fails the run.
func WithInternCap(n int) StreamOption {
	return func(c *streamConfig) { c.internCap = n }
}

// Progress is one WithProgress report.
type Progress struct {
	// Events is the number of trace events processed so far.
	Events uint64
	// Rate is the observed throughput in events/second since the
	// previous report (since the start, for the first).
	Rate float64
}

// WithProgress reports ingestion progress: fn fires after roughly
// every `every` events (at batch granularity; every == 0 selects one
// report per million events) with the running event count and the
// events/second rate since the previous report. The callback runs
// synchronously on the goroutine that consumes the decoded stream —
// the caller's for plain and pipelined runs (the wrapper counts
// batches as the engine acquires them), the coordinator's for sharded
// (WithWorkers) runs — so it must be cheap and, under workers, must
// not assume the caller's goroutine.
func WithProgress(every uint64, fn func(Progress)) StreamOption {
	return func(c *streamConfig) { c.progressEvery, c.progressFn = every, fn }
}

// StreamValidate enforces trace well-formedness incrementally while
// streaming (lock discipline, fork/join sanity — the checks of
// Trace.Validate that need no prior metadata). A violation aborts the
// run with a descriptive error; without it, a malformed trace yields
// a well-defined but meaningless analysis.
func StreamValidate() StreamOption {
	return func(c *streamConfig) { c.validate = true }
}

// StreamResult is the outcome of one streaming analysis pass.
type StreamResult struct {
	// Engine is the registry name the trace was analyzed with.
	Engine string
	// Meta holds the identifier spaces discovered while streaming.
	Meta Meta
	// Events is the number of events processed.
	Events uint64
	// Summary aggregates the detected concurrent conflicting pairs
	// (zero when analysis was disabled).
	Summary RaceSummary
	// Samples retains up to 64 example pairs.
	Samples []Race
	// Timestamps holds each thread's final vector time under the
	// selected order (for "wcp-*" that is WCP ∪ thread order, not the
	// HB scaffolding the runtime keeps internally).
	Timestamps []Vector
	// Mem reports the engine's retained-state accounting when the
	// selected order implements the engine.MemReporter extension
	// (currently "wcp-*": critical-section history entries, peak
	// per-lock history length, compacted entries, retained snapshot
	// bytes). Nil for orders whose state is bounded by the live
	// identifier spaces alone.
	Mem *MemStats
}

// MemStats is the retained-state accounting a memory-reporting engine
// exposes (see StreamResult.Mem and the engine.MemReporter extension).
type MemStats = engine.MemStats

// scalarSource hides a source's batch methods behind a plain
// EventSource, forcing the engine runtime onto its per-event loop.
type scalarSource struct{ src trace.EventSource }

func (s scalarSource) Next() (trace.Event, bool) { return s.src.Next() }
func (s scalarSource) Err() error                { return s.src.Err() }

// streamEngine is the non-generic view RunStream drives; a
// runtimeAdapter instantiates it per clock type. ProcessBatchAt and
// Acc serve the sharded path: parallel workers are fed positioned
// batches and their accumulators merged afterwards.
type streamEngine interface {
	ProcessSource(trace.EventSource) error
	ProcessBatchAt(base uint64, events []trace.Event)
	Events() uint64
	Meta() trace.Meta
	Mem() (engine.MemStats, bool)
	Acc() *analysis.Accumulator
	Finish() (analysis.Summary, []analysis.Pair, []vt.Vector)
	Checkpointable() bool
	Snapshot(w io.Writer) error
	Restore(r io.Reader) error
}

type runtimeAdapter[C vt.Clock[C]] struct {
	rt  *engine.Runtime[C]
	acc *analysis.Accumulator
	// timestamp overrides the runtime's thread-clock snapshot for
	// orders whose timestamps live outside the runtime's clocks (WCP's
	// weak clocks); nil means the runtime's clocks ARE the order.
	timestamp func(t vt.TID, dst vt.Vector) vt.Vector
}

func (a *runtimeAdapter[C]) ProcessSource(src trace.EventSource) error {
	return a.rt.ProcessSource(src)
}
func (a *runtimeAdapter[C]) ProcessBatchAt(base uint64, events []trace.Event) {
	a.rt.ProcessBatchAt(base, events)
}
func (a *runtimeAdapter[C]) Events() uint64               { return a.rt.Events() }
func (a *runtimeAdapter[C]) Meta() trace.Meta             { return a.rt.Meta() }
func (a *runtimeAdapter[C]) Mem() (engine.MemStats, bool) { return a.rt.MemStats() }
func (a *runtimeAdapter[C]) Acc() *analysis.Accumulator   { return a.acc }
func (a *runtimeAdapter[C]) Checkpointable() bool         { return a.rt.Checkpointable() }
func (a *runtimeAdapter[C]) Snapshot(w io.Writer) error   { return a.rt.Snapshot(w) }
func (a *runtimeAdapter[C]) Restore(r io.Reader) error    { return a.rt.Restore(r) }

func (a *runtimeAdapter[C]) Finish() (analysis.Summary, []analysis.Pair, []vt.Vector) {
	k := a.rt.Threads()
	ts := make([]vt.Vector, k)
	for t := 0; t < k; t++ {
		if a.timestamp != nil {
			ts[t] = a.timestamp(vt.TID(t), vt.NewVector(k))
		} else {
			ts[t] = a.rt.Timestamp(vt.TID(t), vt.NewVector(k))
		}
	}
	if a.acc == nil {
		return analysis.Summary{}, nil, ts
	}
	return a.acc.Summary(), a.acc.Samples, ts
}

// newStreamEngine builds the dynamically growing runtime for one
// registry entry over clock type C. A non-nil owns predicate shards
// the per-variable analysis to the variables it accepts: for the
// detector-backed orders (HB, SHB) the whole detector — checks and
// access-history state — is gated, for the self-checking orders (MAZ,
// WCP) the accumulator drops foreign reports; either way the retained
// samples carry trace positions so shards merge back into trace order.
func newStreamEngine[C vt.Clock[C]](order string, f vt.Factory[C], cfg *streamConfig, owns func(int32) bool) (streamEngine, error) {
	var (
		rt        *engine.Runtime[C]
		timestamp func(t vt.TID, dst vt.Vector) vt.Vector
	)
	switch order {
	case "hb":
		rt = engine.New[C](hb.NewSemantics[C](), f)
	case "shb":
		rt = engine.New[C](shb.NewSemantics[C](), f)
	case "maz":
		rt = engine.New[C](maz.NewSemantics[C](), f)
	case "wcp":
		// WCP timestamps are the weak clocks (plus thread order), not
		// the runtime's HB scaffolding. The weak-clock transport is
		// sparse by default; WithFlatWeakClocks selects the flat
		// baseline.
		if cfg.flatWeak {
			sem := wcp.NewSemanticsFlat[C]()
			sem.SetSummaryCap(cfg.summaryCap)
			rt = engine.New[C](sem, f)
			timestamp = func(t vt.TID, dst vt.Vector) vt.Vector {
				return sem.Timestamp(t, rt.ThreadClock(t).Get(t), dst)
			}
		} else {
			sem := wcp.NewSemantics[C]()
			sem.SetSummaryCap(cfg.summaryCap)
			rt = engine.New[C](sem, f)
			timestamp = func(t vt.TID, dst vt.Vector) vt.Vector {
				return sem.Timestamp(t, rt.ThreadClock(t).Get(t), dst)
			}
		}
	default:
		panic("treeclock: unknown partial order " + order)
	}
	if cfg.slotReclaim {
		if err := rt.EnableSlotReclaim(); err != nil {
			return nil, fmt.Errorf("treeclock: WithSlotReclaim: %w", err)
		}
	}
	var acc *analysis.Accumulator
	if cfg.analysis {
		switch order {
		case "maz", "wcp":
			// These orders run their own pair checks and only need an
			// accumulator to report into.
			acc = rt.EnableAnalysis()
			if owns != nil {
				acc.SetShard(owns)
			}
		default:
			det := rt.EnableRaceDetection()
			if owns != nil {
				det.SetShard(owns)
			}
			acc = det.Acc
		}
		if owns != nil {
			acc.TrackPositions()
		}
	}
	return &runtimeAdapter[C]{rt: rt, acc: acc, timestamp: timestamp}, nil
}

// RunStream analyzes a trace read from r with the named engine in a
// single streaming pass: no prior Meta, no materialization, memory
// proportional to the live identifier spaces (engines with inherently
// event-dependent state bound and report it — see StreamResult.Mem).
// The engine name is a registry key (see Engines): "hb-tree", "hb-vc",
// "shb-tree", "shb-vc", "maz-tree", "maz-vc", "wcp-tree" or "wcp-vc".
// Race / reversible-pair analysis is on by default; configure with
// StreamOption values.
func RunStream(engineName string, r io.Reader, opts ...StreamOption) (*StreamResult, error) {
	cfg := streamConfig{format: FormatText, analysis: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	var src trace.EventSource
	switch cfg.format {
	case FormatText:
		src = trace.NewScanner(r)
	case FormatBinary:
		src = trace.NewBinaryScanner(r)
	default:
		return nil, fmt.Errorf("treeclock: unknown trace format %d", cfg.format)
	}
	if !cfg.pipelineSet {
		cfg.pipeline = autoPipelineDepth(&cfg, runtime.GOMAXPROCS(0))
	}
	return runStream(engineName, src, cfg)
}

// defaultPipelineDepth is the decode-ring depth auto-selected for text
// input on multi-core hosts.
const defaultPipelineDepth = 4

// autoPipelineDepth is the decode-mode selection applied when
// WithPipeline was not given: text input decodes in its own goroutine
// when a second CPU exists to overlap parsing with analysis, and
// everything else stays synchronous — binary decode is too cheap to
// win a goroutine hand-off, StreamScalar explicitly asks for the
// per-event loop, and sharded runs already overlap decode (the
// coordinator parses while the workers analyze).
func autoPipelineDepth(cfg *streamConfig, maxprocs int) int {
	if cfg.scalar || cfg.workers > 1 || cfg.forceParallel || cfg.format != FormatText || maxprocs < 2 {
		return 0
	}
	if cfg.ckptSink != nil || cfg.resume != nil {
		// The pipelined decoder's in-flight state is not checkpointable.
		return 0
	}
	return defaultPipelineDepth
}

// RunStreamSource is RunStream over an already-constructed event
// source — a trace scanner, an in-memory TraceReplayer, or one of the
// endless workload generators (GenerateHotLockStream and friends,
// capped with LimitEvents). Format options are ignored (the source is
// already decoded); validation, scalar mode and pipelining apply as in
// RunStream.
func RunStreamSource(engineName string, src EventSource, opts ...StreamOption) (*StreamResult, error) {
	cfg := streamConfig{format: FormatText, analysis: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	return runStream(engineName, src, cfg)
}

// runStream is the single funnel behind all four RunStream* entry
// points: open a session over the configuration, drain src through it
// pull-mode, close. Validation, the drivers and result assembly all
// live on Session.
func runStream(engineName string, src trace.EventSource, cfg streamConfig) (*StreamResult, error) {
	s, err := newSession(engineName, cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Run(src)
}

// driveSequential is the explicit batch loop the sequential path runs
// when it needs per-batch control (cancellation checks, checkpoint
// boundaries); results are identical to Runtime.ProcessSource. The
// plain configuration keeps the runtime's own loop, whose
// BatchProducer fast path the pipelined decoder relies on.
func driveSequential(e streamEngine, src trace.EventSource, cfg *streamConfig, engineName string) error {
	if cfg.ctx == nil && cfg.ckptSink == nil {
		return e.ProcessSource(src)
	}
	var (
		buf     = make([]trace.Event, trace.DefaultBatchSize)
		scratch bytes.Buffer
		next    uint64
		cs      trace.CheckpointableSource
	)
	if cfg.ckptSink != nil {
		cs, _ = asCheckpointable(src) // validated by the caller
		next = nextBoundary(e.Events(), cfg.ckptEvery)
	}
	for {
		if cfg.ctx != nil {
			select {
			case <-cfg.ctx.Done():
				return cfg.ctx.Err()
			default:
			}
		}
		n, ok := trace.ReadBatch(src, buf)
		if n > 0 {
			e.ProcessBatchAt(e.Events(), buf[:n])
		}
		if cs != nil && e.Events() >= next {
			if err := emitCheckpoint(cfg, &scratch, engineName, 1, e.Events(), cs, []streamEngine{e}); err != nil {
				return err
			}
			next = nextBoundary(e.Events(), cfg.ckptEvery)
		}
		if !ok {
			return src.Err()
		}
	}
}

// nextBoundary returns the first checkpoint threshold past events.
func nextBoundary(events, every uint64) uint64 {
	next := events + every
	next -= next % every
	if next <= events {
		next += every
	}
	return next
}

// foldInternStats adds the capped interner's retained-state accounting
// to the result. The interner lives in the trace scanner, not the
// engine, so the runtime cannot report it; a run without WithInternCap
// passes a nil scanner and the result is untouched (Mem stays nil for
// orders without a memory reporter).
func foldInternStats(res *StreamResult, sc trace.InternCapable) {
	if res == nil || sc == nil {
		return
	}
	live, evictions := sc.InternStats()
	if res.Mem == nil {
		res.Mem = &MemStats{}
	}
	res.Mem.InternedNames = live
	res.Mem.InternEvictions = evictions
}

// wrapProgress adapts the config's callback to the trace-level
// progress wrapper.
func wrapProgress(src trace.EventSource, cfg *streamConfig) trace.EventSource {
	fn := cfg.progressFn
	return trace.NewProgressSource(src, cfg.progressEvery, func(events uint64, rate float64) {
		fn(Progress{Events: events, Rate: rate})
	})
}
