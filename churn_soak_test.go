package treeclock_test

// Month-long-stream churn soaks: the three residual-state growth
// vectors — clock width under thread churn, rule-(a) summaries under
// variable churn, interner tables under identifier-name churn — must
// plateau under their caps over event counts far beyond the live
// spaces, while every analysis result stays identical to the uncapped
// run's. Short mode scales the event counts down for CI; the full runs
// cover the multi-million-event shapes the soak lane measures.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"treeclock"
)

// churnEvents picks the soak length: millions of events normally, a
// CI-sized slice in short mode.
func churnEvents(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

// TestSlotReclaimMatchesUnreclaimed runs the thread-churn workload
// through every non-predictive engine with and without slot
// reclamation: the race summary must be identical (reclamation is a
// representation change, not a semantic one), and the tree- and
// vector-clock engines must agree with each other under reclamation.
func TestSlotReclaimMatchesUnreclaimed(t *testing.T) {
	// Modest length: the unreclaimed baselines grow k with every fork,
	// and their O(k) clock operations make long runs quadratic.
	const n = 12_000
	newSrc := func() treeclock.EventSource {
		return treeclock.LimitEvents(treeclock.GenerateForkChurnStream(6, 20260807), n)
	}
	for _, order := range []string{"hb", "shb", "maz"} {
		var withReclaim []*treeclock.StreamResult
		for _, clock := range []string{"tree", "vc"} {
			engine := order + "-" + clock
			plain, err := treeclock.RunStreamSource(engine, newSrc())
			if err != nil {
				t.Fatalf("%s: %v", engine, err)
			}
			reclaimed, err := treeclock.RunStreamSource(engine, newSrc(), treeclock.WithSlotReclaim())
			if err != nil {
				t.Fatalf("%s reclaim: %v", engine, err)
			}
			if plain.Summary != reclaimed.Summary {
				t.Errorf("%s: summary with reclamation %+v, without %+v", engine, reclaimed.Summary, plain.Summary)
			}
			if reclaimed.Mem == nil || reclaimed.Mem.RetiredSlots == 0 {
				t.Errorf("%s: reclamation retired no slots: %+v", engine, reclaimed.Mem)
			}
			withReclaim = append(withReclaim, reclaimed)
		}
		// Tree and vector clocks see the same remapped stream, so their
		// full reports (summary, samples, slot timestamps) must agree.
		withReclaim[0].Engine, withReclaim[1].Engine = "", ""
		withReclaim[0].Mem, withReclaim[1].Mem = nil, nil
		if !reflect.DeepEqual(withReclaim[0], withReclaim[1]) {
			t.Errorf("%s: tree and vc disagree under reclamation:\ntree: %+v\nvc:   %+v", order, withReclaim[0], withReclaim[1])
		}
	}
}

// TestSlotReclaimParallelMatchesSequential pins that the slot remap is
// a pure function of the event prefix: sharded replicas remap in
// lockstep, so the parallel run's report equals the sequential one's.
func TestSlotReclaimParallelMatchesSequential(t *testing.T) {
	const n = 30_000
	newSrc := func() treeclock.EventSource {
		return treeclock.LimitEvents(treeclock.GenerateForkChurnStream(5, 7), n)
	}
	seq, err := treeclock.RunStreamSource("hb-tree", newSrc(), treeclock.WithSlotReclaim())
	if err != nil {
		t.Fatal(err)
	}
	par, err := treeclock.RunStreamParallelSource("hb-tree", newSrc(), treeclock.WithSlotReclaim(), treeclock.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Summary != par.Summary || !reflect.DeepEqual(seq.Samples, par.Samples) || !reflect.DeepEqual(seq.Timestamps, par.Timestamps) {
		t.Errorf("parallel reclamation diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestForkChurnSlotPlateau is the tentpole soak for thread-slot
// reclamation: external thread ids grow without bound, but the clock
// capacity k (slots ever issued) must plateau near the ring of
// concurrently live threads, with slots continuously retired and
// reused.
func TestForkChurnSlotPlateau(t *testing.T) {
	const ring = 8
	n := churnEvents(50_000_000, 2_000_000)
	res, err := treeclock.RunStreamSource("hb-tree",
		treeclock.LimitEvents(treeclock.GenerateForkChurnStream(ring, 31), n),
		treeclock.WithSlotReclaim())
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != uint64(n) {
		t.Fatalf("processed %d of %d events", res.Events, n)
	}
	ms := res.Mem
	if ms == nil {
		t.Fatal("no retained-state accounting under reclamation")
	}
	// Live threads never exceed ring+1 (coordinator plus ring); the
	// reuse gate may strand a few extra slots early on, but k must not
	// track the millions of external ids.
	if bound := 2*(ring+1) + 4; ms.ThreadSlots > bound {
		t.Errorf("clock capacity grew to %d slots over %d events, want <= %d (plateau)", ms.ThreadSlots, n, bound)
	}
	if ms.RetiredSlots == 0 || ms.ReusedSlots == 0 {
		t.Errorf("churn soak retired %d and reused %d slots, want both > 0", ms.RetiredSlots, ms.ReusedSlots)
	}
	t.Logf("%d events: k=%d free=%d retired=%d reused=%d races=%d",
		n, ms.ThreadSlots, ms.FreeSlots, ms.RetiredSlots, ms.ReusedSlots, res.Summary.Total)
}

// TestSummaryCapStreamPlateau exercises WithSummaryCap through the
// public stream API on the variable-churn workload: identical results,
// bounded live summaries, nonzero evictions. (The engine-level
// differential lives in internal/wcp; this pins the option plumbing
// and the MemStats surfacing.)
func TestSummaryCapStreamPlateau(t *testing.T) {
	n := churnEvents(2_000_000, 200_000)
	const cap = 64
	newSrc := func() treeclock.EventSource {
		return treeclock.LimitEvents(treeclock.GenerateChurningVarsStream(8, 256, 10, 33), n)
	}
	capped, err := treeclock.RunStreamSource("wcp-tree", newSrc(), treeclock.WithSummaryCap(cap))
	if err != nil {
		t.Fatal(err)
	}
	uncapped, err := treeclock.RunStreamSource("wcp-tree", newSrc())
	if err != nil {
		t.Fatal(err)
	}
	if capped.Summary != uncapped.Summary {
		t.Errorf("capped summary %+v, uncapped %+v", capped.Summary, uncapped.Summary)
	}
	if capped.Mem == nil || uncapped.Mem == nil {
		t.Fatal("wcp run reported no MemStats")
	}
	if bound := cap + cap/8 + 1 + 8; capped.Mem.SummaryVectors > bound {
		t.Errorf("capped run retains %d summary vectors, want <= %d", capped.Mem.SummaryVectors, bound)
	}
	if capped.Mem.SummaryEvictions == 0 {
		t.Error("capped run evicted nothing")
	}
	if uncapped.Mem.SummaryVectors <= 4*cap {
		t.Errorf("uncapped run retained only %d summary vectors — workload no longer stresses the cap", uncapped.Mem.SummaryVectors)
	}
}

// TestInternCapPlateau streams the identifier-name-churn text workload
// with and without an intern cap: identical results (retired names are
// never revisited, so evictions are invisible), live names bounded,
// evictions counted — while the uncapped interner grows with every
// burst.
func TestInternCapPlateau(t *testing.T) {
	sections := churnEvents(400_000, 60_000)
	const capPer = 64 // per identifier space (threads, locks, vars)
	run := func(opts ...treeclock.StreamOption) *treeclock.StreamResult {
		t.Helper()
		res, err := treeclock.RunStream("hb-tree", treeclock.GenerateNameChurnText(4, 6, sections, 11), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	capped := run(treeclock.WithInternCap(capPer))
	uncapped := run()
	if capped.Summary != uncapped.Summary {
		t.Errorf("capped summary %+v, uncapped %+v", capped.Summary, uncapped.Summary)
	}
	if capped.Mem == nil {
		t.Fatal("capped run reported no MemStats")
	}
	if capped.Mem.InternEvictions == 0 {
		t.Error("capped run evicted no names")
	}
	if live, bound := capped.Mem.InternedNames, 3*capPer; live > bound {
		t.Errorf("capped run holds %d live names, want <= %d", live, bound)
	}
	if uncapped.Mem != nil && uncapped.Mem.InternedNames != 0 {
		t.Errorf("uncapped run surfaced interner accounting without a cap: %+v", uncapped.Mem)
	}
}

// TestSlotReclaimRejectedForWCP pins the documented exclusion: the
// predictive engines keep per-thread rule-(a) state that outlives
// joins, so reclamation must refuse them with a descriptive error.
func TestSlotReclaimRejectedForWCP(t *testing.T) {
	src := treeclock.LimitEvents(treeclock.GenerateHotLockStream(4, 17), 100)
	_, err := treeclock.RunStreamSource("wcp-tree", src, treeclock.WithSlotReclaim())
	if err == nil {
		t.Fatal("WithSlotReclaim accepted for wcp-tree")
	}
	if !strings.Contains(err.Error(), "slot reclamation") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// TestInternCapRequiresText pins that WithInternCap refuses sources
// without interned names instead of silently doing nothing.
func TestInternCapRequiresText(t *testing.T) {
	tr := treeclock.GenerateMixed(treeclock.GenConfig{Name: "bin", Threads: 3, Locks: 2, Vars: 8, Events: 200, Seed: 5})
	var b bytes.Buffer
	if err := treeclock.WriteTraceBinary(&b, tr); err != nil {
		t.Fatal(err)
	}
	_, err := treeclock.RunStream("hb-tree", &b, treeclock.StreamBinary(), treeclock.WithInternCap(10))
	if err == nil {
		t.Fatal("WithInternCap accepted for binary input")
	}
	if !strings.Contains(err.Error(), "text input") {
		t.Errorf("unhelpful error: %v", err)
	}
}
