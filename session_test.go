package treeclock

// Session lifecycle and push-mode equivalence: the session core must
// make push-fed streams byte-identical to pull-mode runs of the same
// events, enforce its mode/lifecycle state machine with the pinned
// errors, survive snapshot/resume mid-push, and never leak worker
// goroutines on abandon/close paths.

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// feedChunks pushes tr's events into s in chunks of the given size —
// deliberately unaligned with trace.DefaultBatchSize, since batch
// boundaries must not influence any result.
func feedChunks(t *testing.T, s *Session, events []Event, chunk int) {
	t.Helper()
	for i := 0; i < len(events); i += chunk {
		j := i + chunk
		if j > len(events) {
			j = len(events)
		}
		if err := s.Feed(events[i:j]); err != nil {
			t.Fatalf("Feed(%d:%d): %v", i, j, err)
		}
	}
}

// sessionCorpusTrace is the trace the equivalence tests share: mixed
// sync/access load with enough conflicts for every order to report.
func sessionCorpusTrace() *Trace {
	return GenerateMixed(GenConfig{Name: "session-mixed", Threads: 6, Locks: 4, Vars: 24, Events: 2200, SyncFrac: 0.3, Seed: 11})
}

// TestSessionPushMatchesPull is the core push/pull differential: for
// every engine (plus the flat weak-clock variants) and both execution
// shapes, feeding the events in odd-sized chunks produces a result
// deeply equal to the classic pull entry point's — summary, samples,
// timestamps, metadata and MemStats alike.
func TestSessionPushMatchesPull(t *testing.T) {
	tr := sessionCorpusTrace()
	for _, v := range engineVariants() {
		for _, workers := range []int{0, 2} {
			name := fmt.Sprintf("%s/seq", v.label)
			if workers > 0 {
				name = fmt.Sprintf("%s/par%d", v.label, workers)
			}
			t.Run(name, func(t *testing.T) {
				opts := append([]StreamOption{}, v.opts...)
				var want *StreamResult
				var err error
				if workers > 0 {
					opts = append(opts, WithWorkers(workers))
					want, err = RunStreamParallelSource(v.engine, NewTraceReplayer(tr), opts...)
				} else {
					want, err = RunStreamSource(v.engine, NewTraceReplayer(tr), opts...)
				}
				if err != nil {
					t.Fatalf("pull run: %v", err)
				}

				pushOpts := append([]StreamOption{}, v.opts...)
				if workers > 0 {
					pushOpts = append(pushOpts, WithWorkers(workers))
				}
				s, err := Open(v.engine, pushOpts...)
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				defer s.Close()
				feedChunks(t, s, tr.Events, 173)
				got, err := s.Result()
				if err != nil {
					t.Fatalf("Result: %v", err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("push result diverges from pull:\n got %+v\nwant %+v", got, want)
				}
				if s.Events() != uint64(len(tr.Events)) {
					t.Fatalf("Events() = %d, want %d", s.Events(), len(tr.Events))
				}
			})
		}
	}
}

// TestSessionSnapshotResume pins the push-mode checkpoint cycle:
// snapshot mid-stream, open a fresh session from the checkpoint, ask
// Resumed for the re-feed position, ship the remainder, and require
// the final result byte-identical to an uninterrupted run — across
// four engines and both execution shapes.
func TestSessionSnapshotResume(t *testing.T) {
	tr := sessionCorpusTrace()
	n := len(tr.Events)
	for _, engine := range []string{"hb-tree", "shb-vc", "maz-vc", "wcp-tree"} {
		for _, workers := range []int{0, 2} {
			mode := "seq"
			if workers > 0 {
				mode = fmt.Sprintf("par%d", workers)
			}
			t.Run(engine+"/"+mode, func(t *testing.T) {
				var opts []StreamOption
				if workers > 0 {
					opts = append(opts, WithWorkers(workers))
				}
				want, err := RunStreamSource(engine, NewTraceReplayer(tr),
					append([]StreamOption{}, opts...)...)
				if workers > 0 {
					want, err = RunStreamParallelSource(engine, NewTraceReplayer(tr),
						append([]StreamOption{}, opts...)...)
				}
				if err != nil {
					t.Fatalf("uninterrupted run: %v", err)
				}

				// First half, then snapshot at an arbitrary (non-batch)
				// position.
				cut := n/2 + 37
				first, err := Open(engine, opts...)
				if err != nil {
					t.Fatalf("Open: %v", err)
				}
				defer first.Close()
				feedChunks(t, first, tr.Events[:cut], 211)
				var ckpt bytes.Buffer
				if err := first.Snapshot(&ckpt); err != nil {
					t.Fatalf("Snapshot: %v", err)
				}
				first.Close()

				// Resume and ship the rest.
				second, err := Open(engine, append(append([]StreamOption{}, opts...), ResumeFrom(&ckpt))...)
				if err != nil {
					t.Fatalf("Open(resume): %v", err)
				}
				defer second.Close()
				pos, err := second.Resumed()
				if err != nil {
					t.Fatalf("Resumed: %v", err)
				}
				if pos != uint64(cut) {
					t.Fatalf("Resumed() = %d, want %d", pos, cut)
				}
				feedChunks(t, second, tr.Events[pos:], 211)
				got, err := second.Result()
				if err != nil {
					t.Fatalf("Result: %v", err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("resumed push result diverges:\n got %+v\nwant %+v", got, want)
				}
			})
		}
	}
}

// TestSessionLifecycleErrors pins the mode state machine and its
// sentinel errors.
func TestSessionLifecycleErrors(t *testing.T) {
	tr := GenerateMixed(GenConfig{Name: "session-small", Threads: 3, Locks: 2, Vars: 8, Events: 300, SyncFrac: 0.3, Seed: 3})

	t.Run("double run", func(t *testing.T) {
		s, err := Open("hb-tree")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Run(NewTraceReplayer(tr)); err != nil {
			t.Fatalf("first Run: %v", err)
		}
		if _, err := s.Run(NewTraceReplayer(tr)); !errors.Is(err, ErrSessionRan) {
			t.Fatalf("second Run err = %v, want ErrSessionRan", err)
		}
	})
	t.Run("feed after run", func(t *testing.T) {
		s, err := Open("hb-tree")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Run(NewTraceReplayer(tr)); err != nil {
			t.Fatal(err)
		}
		if err := s.Feed(tr.Events[:4]); !errors.Is(err, ErrFeedAfterRun) {
			t.Fatalf("Feed err = %v, want ErrFeedAfterRun", err)
		}
	})
	t.Run("run after feed", func(t *testing.T) {
		s, err := Open("hb-tree")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.Feed(tr.Events[:4]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(NewTraceReplayer(tr)); !errors.Is(err, ErrRunAfterFeed) {
			t.Fatalf("Run err = %v, want ErrRunAfterFeed", err)
		}
	})
	t.Run("feed after close", func(t *testing.T) {
		s, err := Open("hb-tree")
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
		if err := s.Feed(tr.Events[:4]); !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("Feed err = %v, want ErrSessionClosed", err)
		}
		if _, err := s.Run(NewTraceReplayer(tr)); !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("Run err = %v, want ErrSessionClosed", err)
		}
		if err := s.Snapshot(&bytes.Buffer{}); !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("Snapshot err = %v, want ErrSessionClosed", err)
		}
	})
	t.Run("feed after result", func(t *testing.T) {
		s, err := Open("hb-tree")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.Feed(tr.Events); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Result(); err != nil {
			t.Fatal(err)
		}
		if err := s.Feed(tr.Events[:4]); !errors.Is(err, ErrSessionFinished) {
			t.Fatalf("Feed err = %v, want ErrSessionFinished", err)
		}
		// Result stays idempotent after sealing.
		if _, err := s.Result(); err != nil {
			t.Fatalf("second Result: %v", err)
		}
	})
	t.Run("close idempotent", func(t *testing.T) {
		s, err := Open("wcp-tree", WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Feed(tr.Events[:64]); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSessionOptionErrors pins the centralized validation: every
// cross-option conflict fails at Open with its canonical text, and the
// mode- or source-dependent checks fail on the first driving call.
func TestSessionOptionErrors(t *testing.T) {
	wantErr := func(t *testing.T, err error, frag string) {
		t.Helper()
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Fatalf("err = %v, want containing %q", err, frag)
		}
	}

	t.Run("unknown engine", func(t *testing.T) {
		_, err := Open("nope")
		wantErr(t, err, `unknown engine "nope"`)
	})
	t.Run("scalar+pipeline", func(t *testing.T) {
		_, err := Open("hb-tree", StreamScalar(), WithPipeline(2))
		wantErr(t, err, "StreamScalar and WithPipeline are mutually exclusive")
	})
	t.Run("scalar+workers", func(t *testing.T) {
		_, err := Open("hb-tree", StreamScalar(), WithWorkers(2))
		wantErr(t, err, "StreamScalar and WithWorkers are mutually exclusive")
	})
	t.Run("checkpoint+pipeline", func(t *testing.T) {
		_, err := Open("hb-tree", WithCheckpoint(0, &memSink{}), WithPipeline(2))
		wantErr(t, err, "WithCheckpoint/ResumeFrom and WithPipeline are mutually exclusive")
	})
	t.Run("slot reclaim on wcp", func(t *testing.T) {
		_, err := Open("wcp-tree", WithSlotReclaim())
		wantErr(t, err, "WithSlotReclaim")
	})
	t.Run("intern cap needs text pull source", func(t *testing.T) {
		s, err := Open("hb-tree", WithInternCap(16))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		tr := GenerateMixed(GenConfig{Name: "t", Threads: 2, Locks: 1, Vars: 4, Events: 50, SyncFrac: 0.2, Seed: 1})
		_, err = s.Run(NewTraceReplayer(tr))
		wantErr(t, err, "WithInternCap requires text input")
	})
	tr := GenerateMixed(GenConfig{Name: "t", Threads: 2, Locks: 1, Vars: 4, Events: 50, SyncFrac: 0.2, Seed: 1})
	pushRejects := []struct {
		name string
		opt  StreamOption
		frag string
	}{
		{"pipeline", WithPipeline(2), "WithPipeline requires a pull-mode source"},
		{"scalar", StreamScalar(), "StreamScalar requires a pull-mode source"},
		{"progress", WithProgress(10, func(Progress) {}), "WithProgress requires a pull-mode source"},
		{"validate", StreamValidate(), "StreamValidate requires a pull-mode source"},
		{"intern cap", WithInternCap(16), "WithInternCap requires text input"},
	}
	for _, pr := range pushRejects {
		t.Run("push rejects "+pr.name, func(t *testing.T) {
			s, err := Open("hb-tree", pr.opt)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			wantErr(t, s.Feed(tr.Events[:8]), pr.frag)
		})
	}
}

// TestSessionConcurrent runs independent sessions concurrently — one
// per engine, push and pull mixed — and checks each against its own
// library run. Under -race this doubles as the data-race check for
// session independence.
func TestSessionConcurrent(t *testing.T) {
	tr := sessionCorpusTrace()
	engines := Engines()
	want := make([]*StreamResult, len(engines))
	for i, name := range engines {
		var err error
		want[i], err = RunStreamSource(name, NewTraceReplayer(tr))
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 2*len(engines))
	for i, name := range engines {
		wg.Add(2)
		go func(i int, name string) { // push-mode session
			defer wg.Done()
			s, err := Open(name)
			if err != nil {
				errs[2*i] = err
				return
			}
			defer s.Close()
			for lo := 0; lo < len(tr.Events); lo += 191 {
				hi := lo + 191
				if hi > len(tr.Events) {
					hi = len(tr.Events)
				}
				if err := s.Feed(tr.Events[lo:hi]); err != nil {
					errs[2*i] = err
					return
				}
			}
			got, err := s.Result()
			if err != nil {
				errs[2*i] = err
				return
			}
			if !reflect.DeepEqual(got, want[i]) {
				errs[2*i] = fmt.Errorf("%s push diverged", name)
			}
		}(i, name)
		go func(i int, name string) { // sharded pull-mode session
			defer wg.Done()
			got, err := RunStreamParallelSource(name, NewTraceReplayer(tr), WithWorkers(2))
			if err != nil {
				errs[2*i+1] = err
				return
			}
			// Replicated retained state sums across workers, so MemStats
			// legitimately differs from the sequential run's here.
			cmp := *got
			cmp.Mem = want[i].Mem
			if !reflect.DeepEqual(&cmp, want[i]) {
				errs[2*i+1] = fmt.Errorf("%s parallel diverged", name)
			}
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestSessionGoroutineLeaks abandons sharded push sessions on every
// exit path — Close without Result (the evict shape), Result then
// Close, Snapshot then Close — and requires the goroutine count back
// at baseline.
func TestSessionGoroutineLeaks(t *testing.T) {
	tr := sessionCorpusTrace()
	paths := []struct {
		name string
		exit func(t *testing.T, s *Session)
	}{
		{"close without result", func(t *testing.T, s *Session) {}},
		{"result then close", func(t *testing.T, s *Session) {
			if _, err := s.Result(); err != nil {
				t.Fatal(err)
			}
		}},
		{"snapshot then close", func(t *testing.T, s *Session) {
			if err := s.Snapshot(&bytes.Buffer{}); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, p := range paths {
		t.Run(p.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			s, err := Open("wcp-tree", WithWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			feedChunks(t, s, tr.Events[:1200], 173)
			p.exit(t, s)
			s.Close()
			checkGoroutines(t, base)
		})
	}
}

// TestSessionMem pins the budget-inspection hook: a memory-reporting
// engine exposes live retained-state accounting mid-push (quiescing
// the worker group for the read), a bounded one reports ok == false.
func TestSessionMem(t *testing.T) {
	tr := sessionCorpusTrace()
	t.Run("wcp reports", func(t *testing.T) {
		s, err := Open("wcp-tree", WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		feedChunks(t, s, tr.Events[:1500], 250)
		ms, ok := s.Mem()
		if !ok {
			t.Fatal("wcp session reported no MemStats")
		}
		if ms.RetainedBytes == 0 {
			t.Fatal("wcp session reports zero retained bytes mid-stream")
		}
		// Feeding still works after the quiesced read.
		feedChunks(t, s, tr.Events[1500:], 250)
		if _, err := s.Result(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("hb does not", func(t *testing.T) {
		s, err := Open("hb-tree")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		feedChunks(t, s, tr.Events[:600], 250)
		if _, ok := s.Mem(); ok {
			t.Fatal("hb session unexpectedly reported MemStats")
		}
	})
}
