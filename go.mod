module treeclock

go 1.24
