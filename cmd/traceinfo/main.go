// Command traceinfo prints the Table 3-style statistics of a trace
// file: events (N), threads (T), memory locations (M), locks (L), and
// the synchronization/access event shares. It also audits lock usage:
// unbalanced locks (acquire/release counts differing — sections left
// open, or stray releases on malformed input) are always flagged, and
// -locks prints the full per-lock acquire/release table. With -wcp it
// additionally runs the WCP engine over the trace and reports the
// retained critical-section state per lock — live and peak rule-(b)
// history length, entries reclaimed by compaction, rule-(a) summary
// vectors and approximate retained bytes — the numbers that tell
// whether a trace's lock structure lets the history drain.
//
// Usage:
//
//	traceinfo trace.txt
//	traceinfo -locks trace.txt
//	traceinfo -wcp trace.txt
//	tracegen -pattern star -threads 16 | traceinfo
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"treeclock/internal/trace"
	"treeclock/internal/vc"
	"treeclock/internal/wcp"
)

func main() {
	var (
		format    = flag.String("format", "text", "trace format: text or bin")
		validate  = flag.Bool("validate", true, "check trace well-formedness")
		showLocks = flag.Bool("locks", false, "print per-lock acquire/release counts")
		showWCP   = flag.Bool("wcp", false, "run the WCP engine and print per-lock retained-history statistics")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}
	var tr *trace.Trace
	var err error
	switch *format {
	case "text":
		tr, err = trace.ParseText(in)
	case "bin":
		tr, err = trace.ReadBinary(in)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
		os.Exit(1)
	}
	if *validate {
		if err := tr.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %s: INVALID: %v\n", name, err)
			os.Exit(1)
		}
	}
	s := trace.ComputeStats(tr)
	fmt.Printf("%s\n", name)
	fmt.Printf("  events (N):     %d\n", s.Events)
	fmt.Printf("  threads (T):    %d\n", s.Threads)
	fmt.Printf("  locations (M):  %d\n", s.Vars)
	fmt.Printf("  locks (L):      %d\n", s.Locks)
	fmt.Printf("  sync events:    %.1f%%\n", s.SyncPct)
	fmt.Printf("  r/w events:     %.1f%% (%d reads, %d writes)\n", s.RWPct, s.Reads, s.Writes)

	lockStats := trace.ComputeLockStats(tr)
	acquires, releases := 0, 0
	for _, ls := range lockStats {
		acquires += ls.Acquires
		releases += ls.Releases
	}
	fmt.Printf("  lock ops:       %d acquires, %d releases across %d locks\n",
		acquires, releases, len(lockStats))
	for _, ls := range lockStats {
		if !ls.Unbalanced() {
			continue
		}
		line := fmt.Sprintf("  UNBALANCED:     l%d: %d acq / %d rel", ls.Lock, ls.Acquires, ls.Releases)
		if ls.Holder != -1 {
			line += fmt.Sprintf(" (held by t%d at end of trace)", ls.Holder)
		}
		fmt.Println(line)
	}
	if *showLocks {
		fmt.Printf("  per lock:\n")
		for _, ls := range lockStats {
			fmt.Printf("    l%-6d %6d acq %6d rel\n", ls.Lock, ls.Acquires, ls.Releases)
		}
	}
	if *showWCP {
		reportWCP(tr)
	}
}

// reportWCP runs the WCP engine (vector-clock backbone; the weak-order
// state is shared across variants) over the materialized trace and
// prints its retained critical-section state, per lock.
func reportWCP(tr *trace.Trace) {
	e := wcp.New[*vc.VectorClock](tr.Meta, vc.Factory(nil))
	e.Process(tr.Events)
	ms := e.Sem().MemStats()
	fmt.Printf("  wcp retained:   %d history entries live (peak %d on one lock), %d compacted, %d summary vectors, ~%d bytes\n",
		ms.HistEntries, ms.PeakLockHist, ms.DroppedEntries, ms.SummaryVectors, ms.RetainedBytes)
	stats := e.Sem().LockHistStats()
	if len(stats) == 0 {
		return
	}
	fmt.Printf("  wcp per lock:   (live/peak/compacted history, summary vectors, ~bytes)\n")
	for _, st := range stats {
		fmt.Printf("    l%-6d %6d live %6d peak %9d compacted %6d summaries %9d B\n",
			st.Lock, st.Live, st.Peak, st.Dropped, st.Summaries, st.RetainedBytes)
	}
}
