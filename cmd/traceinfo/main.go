// Command traceinfo prints the Table 3-style statistics of a trace
// file: events (N), threads (T), memory locations (M), locks (L), and
// the synchronization/access event shares.
//
// Usage:
//
//	traceinfo trace.txt
//	tracegen -pattern star -threads 16 | traceinfo
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"treeclock/internal/trace"
)

func main() {
	var (
		format   = flag.String("format", "text", "trace format: text or bin")
		validate = flag.Bool("validate", true, "check trace well-formedness")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}
	var tr *trace.Trace
	var err error
	switch *format {
	case "text":
		tr, err = trace.ParseText(in)
	case "bin":
		tr, err = trace.ReadBinary(in)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
		os.Exit(1)
	}
	if *validate {
		if err := tr.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %s: INVALID: %v\n", name, err)
			os.Exit(1)
		}
	}
	s := trace.ComputeStats(tr)
	fmt.Printf("%s\n", name)
	fmt.Printf("  events (N):     %d\n", s.Events)
	fmt.Printf("  threads (T):    %d\n", s.Threads)
	fmt.Printf("  locations (M):  %d\n", s.Vars)
	fmt.Printf("  locks (L):      %d\n", s.Locks)
	fmt.Printf("  sync events:    %.1f%%\n", s.SyncPct)
	fmt.Printf("  r/w events:     %.1f%% (%d reads, %d writes)\n", s.RWPct, s.Reads, s.Writes)
}
