// Command tcrace runs a partial-order race analysis over a trace file.
//
// Usage:
//
//	tcrace -algo hb trace.txt          # happens-before races, tree clocks
//	tcrace -algo shb -clock vc < t.txt # SHB with the vector-clock baseline
//	tcrace -algo maz -format bin t.tr  # MAZ reversible pairs
//
// Prints the race summary and up to 64 sample pairs, plus timing and —
// with -work — the data-structure work counters.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"treeclock/internal/bench"
	"treeclock/internal/trace"
)

func main() {
	var (
		algo    = flag.String("algo", "hb", "partial order: hb, shb or maz")
		clock   = flag.String("clock", "tc", "clock data structure: tc (tree clock) or vc (vector clock)")
		format  = flag.String("format", "text", "trace format: text or bin")
		work    = flag.Bool("work", false, "also report data-structure work counters")
		samples = flag.Int("samples", 10, "sample races to print")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	var tr *trace.Trace
	var err error
	switch *format {
	case "text":
		tr, err = trace.ParseText(in)
	case "bin":
		tr, err = trace.ReadBinary(in)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcrace: %v\n", err)
		os.Exit(1)
	}
	if err := tr.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "tcrace: invalid trace: %v\n", err)
		os.Exit(1)
	}

	var po bench.PO
	switch *algo {
	case "hb":
		po = bench.HB
	case "shb":
		po = bench.SHB
	case "maz":
		po = bench.MAZ
	default:
		fmt.Fprintf(os.Stderr, "tcrace: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	ck := bench.TC
	if *clock == "vc" {
		ck = bench.VC
	} else if *clock != "tc" {
		fmt.Fprintf(os.Stderr, "tcrace: unknown clock %q\n", *clock)
		os.Exit(2)
	}

	// Run via the harness for uniform detector handling; re-run the
	// tree-clock engine directly when samples are requested.
	start := time.Now()
	res := bench.Run(tr, bench.Config{PO: po, Clock: ck, Analysis: true, Work: *work})
	elapsed := time.Since(start)

	s := trace.ComputeStats(tr)
	fmt.Printf("trace: %d events, %d threads, %d vars, %d locks (%.1f%% sync)\n",
		s.Events, s.Threads, s.Vars, s.Locks, s.SyncPct)
	fmt.Printf("%s with %s: %d concurrent conflicting pairs detected in %v\n",
		po, ck, res.Pairs, res.Elapsed.Round(time.Microsecond))
	if *work {
		fmt.Printf("work: %d entries touched, %d changed (VTWork), %d joins, %d copies, %d deep copies\n",
			res.Work.Entries, res.Work.Changed, res.Work.Joins, res.Work.Copies, res.Work.DeepCopies)
	}
	_ = elapsed

	if res.Pairs > 0 && *samples > 0 {
		printSamples(tr, po, ck, *samples)
	}
}

// printSamples re-runs the engine to recover sample pairs (the harness
// returns only counts).
func printSamples(tr *trace.Trace, po bench.PO, ck bench.Clock, n int) {
	samples := bench.SamplePairs(tr, po, ck)
	fmt.Println("sample pairs:")
	for i, p := range samples {
		if i >= n {
			fmt.Printf("  ... (%d samples kept)\n", len(samples))
			break
		}
		fmt.Printf("  %s\n", p)
	}
}
