// Command tcrace runs a partial-order race analysis over a trace file
// in a single streaming pass: the trace is never materialized and no
// metadata is needed up front, so arbitrarily large logs are analyzed
// with memory proportional to the live identifier spaces.
//
// Usage:
//
//	tcrace -engine hb-tree trace.txt      # happens-before races, tree clocks
//	tcrace -engine shb-vc < t.txt         # SHB with the vector-clock baseline
//	tcrace -engine maz-tree -format bin t.tr
//	tcrace -engine wcp-tree t.txt         # predictive races (WCP weak order)
//	tcrace -engine wcp-vc -flat-weak t.txt # flat weak-clock baseline transport
//	tcrace -workers 4 big.txt             # shard the analysis across 4 cores
//	tcrace -pipeline 4 big.txt            # decode in a separate goroutine
//	tcrace -progress 5000000 huge.txt     # rate reports to stderr
//	tcrace -algo shb -clock vc < t.txt    # legacy flag spelling
//	tcrace -checkpoint run.ckpt huge.txt  # crash-safe: periodic checkpoints
//	tcrace -resume run.ckpt huge.txt      # continue an interrupted run
//	tcrace -reclaim-slots churny.txt      # bounded clocks under thread churn
//	tcrace -engine wcp-tree -summary-cap 4096 t.txt # age rule-(a) summaries
//	tcrace -intern-cap 100000 month.txt   # evict cold identifier names
//	tcrace -remote 127.0.0.1:7455 t.txt   # run the session in a tcraced daemon
//	tcrace -remote /run/tcraced.sock -session nightly -resume-session t.txt
//	tcrace -daemon-stats 127.0.0.1:7455   # print daemon statistics as JSON
//
// Ingestion is batched by default; -scalar forces the per-event loop
// and -pipeline N overlaps decoding with analysis through a ring of N
// recycled batch buffers (0 picks automatically: pipelined for text
// input when GOMAXPROCS > 1; negative forces the synchronous path).
// -workers N > 1 runs the sharded analysis runtime: variables
// partition across N full engine replicas and the race checks run only
// on each variable's owner, with results byte-identical to the
// sequential pass. -workers 0 shards across GOMAXPROCS replicas
// (which on a single-CPU host means the sharded path with one
// replica); -workers 1 is the sequential pass.
//
// -checkpoint PATH writes a crash-safe checkpoint of the full analysis
// state to PATH every -checkpoint-every events (atomically: temp file
// plus rename, so a kill mid-write never corrupts the previous
// checkpoint). -resume PATH restores such a checkpoint before reading
// the trace — which must be the same input, re-opened from the start —
// and the finished run's report is byte-identical to an uninterrupted
// one. Both flags require a trace file or a restartable stdin; the
// worker count and engine flags must match the checkpointed run's.
//
// Three flags bound the residual state that otherwise grows for the
// lifetime of a long stream. -reclaim-slots retires a thread's clock
// slot once it is fully joined, so thread-churn workloads keep clock
// width proportional to the number of concurrently live threads
// (non-predictive engines only; reported thread ids are then internal
// slot numbers, not the trace's external ids). -summary-cap N ages out
// wcp rule-(a) acquire summaries whose snapshots are dominated by the
// lock's published release clock, holding live summaries near N with
// results identical to the unbounded run. -intern-cap N evicts the
// coldest interned identifier names above N per space (threads, locks,
// vars) for text input; a name seen again after eviction becomes a
// fresh identity, which is sound for race detection but makes reported
// ids for such names differ from an uncapped run.
//
// -remote ADDR runs the session in a tcraced daemon instead of
// in-process: the trace is decoded (and, unless -no-validate,
// checked) locally, shipped over the daemon's framed wire protocol,
// and the report — byte-identical to a local run — is rendered from
// the daemon's result. The daemon checkpoints every session to its
// spool, so a killed daemon or a -resume-session rerun continues from
// the spooled frontier, re-feeding only the tail; -session names the
// session (default: derived from the trace filename). A session the
// daemon evicts over budget exits with code 4 and is resumable the
// same way. -daemon-stats ADDR prints the daemon's live statistics
// (sessions, engines, event/race rates, retained bytes) as JSON and
// exits. An example transcript lives in the tcraced command doc.
//
// Prints the race summary and up to 64 sample pairs, plus timing and —
// with -work — the data-structure work counters. Engine names come
// from the registry (see -list).
//
// Exit codes:
//
//	0  analysis completed, no races detected
//	1  analysis completed, races detected
//	2  usage or I/O error (bad flags, unreadable input, malformed trace)
//	3  corrupt or truncated checkpoint (-resume)
//	4  remote session evicted over budget (-remote; resume with -resume-session)
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"treeclock"
	"treeclock/internal/daemon"
	"treeclock/internal/trace"
)

// Exit codes; see the package comment.
const (
	exitClean   = 0
	exitRaces   = 1
	exitUsage   = 2
	exitCorrupt = 3
	exitEvicted = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// exitCodesDoc is appended to -h output; the cmd test pins it.
const exitCodesDoc = `
Exit codes:
  0  analysis completed, no races detected
  1  analysis completed, races detected
  2  usage or I/O error (bad flags, unreadable input, malformed trace)
  3  corrupt or truncated checkpoint (-resume)
  4  remote session evicted over budget (-remote; resume with -resume-session)
`

// printUsage writes the flag summary and the exit-code contract to w.
func printUsage(fs *flag.FlagSet, w io.Writer) {
	fmt.Fprintf(w, "usage: tcrace [flags] [trace-file]\n\nFlags:\n")
	fs.SetOutput(w)
	fs.PrintDefaults()
	fmt.Fprint(w, exitCodesDoc)
}

// run is the whole command, factored from main so tests can pin the
// exit-code contract without spawning processes.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tcrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		engineFlag   = fs.String("engine", "", "registry engine name (see -list); overrides -algo/-clock")
		algo         = fs.String("algo", "hb", "partial order: hb, shb, maz or wcp")
		clock        = fs.String("clock", "tc", "clock data structure: tc (tree clock) or vc (vector clock)")
		format       = fs.String("format", "text", "trace format: text or bin")
		work         = fs.Bool("work", false, "also report data-structure work counters")
		samples      = fs.Int("samples", 10, "sample races to print")
		list         = fs.Bool("list", false, "list registered engines and exit")
		noValidate   = fs.Bool("no-validate", false, "skip incremental well-formedness checking (lock/fork/join discipline)")
		pipeline     = fs.Int("pipeline", 0, "decode in a separate goroutine through a ring of N recycled batch buffers (0 = automatic, negative = off)")
		scalar       = fs.Bool("scalar", false, "force the per-event streaming loop instead of batched ingestion")
		workers      = fs.Int("workers", 1, "shard the analysis across N worker replicas (0 = GOMAXPROCS, 1 = sequential)")
		flatWeak     = fs.Bool("flat-weak", false, "use the flat-vector weak-clock baseline for weak orders (wcp) instead of the sparse segment transport")
		progress     = fs.Uint64("progress", 0, "print a progress line to stderr every N events (0 = off)")
		checkpoint   = fs.String("checkpoint", "", "write a crash-safe checkpoint to this file every -checkpoint-every events")
		ckptEvery    = fs.Uint64("checkpoint-every", 1_000_000, "events between checkpoints (with -checkpoint)")
		resume       = fs.String("resume", "", "restore analysis state from this checkpoint file before reading the trace")
		reclaimSlots = fs.Bool("reclaim-slots", false, "reclaim fully-joined threads' clock slots so thread-churn streams keep bounded clock width (hb/shb/maz; reported thread ids become slot numbers)")
		summaryCap   = fs.Int("summary-cap", 0, "age out dominated rule-(a) acquire summaries above roughly N live entries (wcp engines; 0 = unbounded)")
		internCap    = fs.Int("intern-cap", 0, "evict the coldest interned identifier names above N per space (text input; evicted names reappear as fresh ids; 0 = unbounded)")
		remote       = fs.String("remote", "", "run the session in a tcraced daemon at this address (host:port or a unix socket path) instead of in-process")
		session      = fs.String("session", "", "daemon session id (with -remote; default: derived from the trace filename)")
		resumeSess   = fs.Bool("resume-session", false, "resume the daemon session from its server-side checkpoint and re-feed only the tail (with -remote)")
		daemonStats  = fs.String("daemon-stats", "", "print a tcraced daemon's statistics snapshot as JSON and exit")
	)
	// flag reports parse errors to fs.Output on its own; Usage is
	// rendered once, to stdout for -h and to stderr for usage errors.
	fs.Usage = func() {}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			printUsage(fs, stdout)
			return exitClean
		}
		printUsage(fs, stderr)
		return exitUsage
	}

	if *list {
		for _, info := range treeclock.EngineInfos() {
			fmt.Fprintf(stdout, "%-10s %s\n", info.Name, info.Doc)
		}
		return exitClean
	}

	if *daemonStats != "" {
		return printDaemonStats(*daemonStats, stdout, stderr)
	}
	if *remote == "" && (*session != "" || *resumeSess) {
		fmt.Fprintf(stderr, "tcrace: -session and -resume-session require -remote\n")
		return exitUsage
	}

	name := *engineFlag
	if name == "" {
		suffix := "-tree"
		switch *clock {
		case "tc", "tree":
		case "vc":
			suffix = "-vc"
		default:
			fmt.Fprintf(stderr, "tcrace: unknown clock %q\n", *clock)
			return exitUsage
		}
		name = *algo + suffix
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "tcrace: %v\n", err)
			return exitUsage
		}
		defer f.Close()
		in = f
	}

	if *format != "text" && *format != "bin" {
		fmt.Fprintf(stderr, "tcrace: unknown format %q\n", *format)
		return exitUsage
	}
	if *workers < 0 {
		fmt.Fprintf(stderr, "tcrace: -workers must be >= 0 (got %d)\n", *workers)
		return exitUsage
	}

	if *remote != "" {
		switch {
		case *checkpoint != "" || *resume != "":
			fmt.Fprintf(stderr, "tcrace: -checkpoint/-resume are local-run flags; the daemon spools checkpoints server-side (continue with -resume-session)\n")
			return exitUsage
		case *work:
			fmt.Fprintf(stderr, "tcrace: -work is not available for remote runs (the counters live in the daemon)\n")
			return exitUsage
		case *pipeline != 0 || *scalar:
			fmt.Fprintf(stderr, "tcrace: -pipeline/-scalar tune local ingestion and do not apply to remote runs\n")
			return exitUsage
		case *internCap > 0 && *format == "bin":
			fmt.Fprintf(stderr, "tcrace: -intern-cap requires text input\n")
			return exitUsage
		}
		id := *session
		if id == "" {
			name := ""
			if fs.NArg() > 0 {
				name = fs.Arg(0)
			}
			id = defaultSessionID(name)
		}
		r := &remoteRun{
			addr:       *remote,
			sessionID:  id,
			engine:     name,
			binary:     *format == "bin",
			validate:   !*noValidate,
			workers:    *workers,
			flatWeak:   *flatWeak,
			reclaim:    *reclaimSlots,
			summaryCap: *summaryCap,
			internCap:  *internCap,
			resume:     *resumeSess,
			progress:   *progress,
			samples:    *samples,
		}
		return r.run(in, stdout, stderr)
	}

	opts := []treeclock.StreamOption{}
	if !*noValidate {
		opts = append(opts, treeclock.StreamValidate())
	}
	if *pipeline != 0 {
		depth := *pipeline
		if depth < 0 {
			depth = 0 // explicit synchronous decode
		}
		opts = append(opts, treeclock.WithPipeline(depth))
	}
	if *scalar {
		opts = append(opts, treeclock.StreamScalar())
	}
	if *flatWeak {
		opts = append(opts, treeclock.WithFlatWeakClocks())
	}
	if *reclaimSlots {
		opts = append(opts, treeclock.WithSlotReclaim())
	}
	if *summaryCap > 0 {
		opts = append(opts, treeclock.WithSummaryCap(*summaryCap))
	}
	if *internCap > 0 {
		opts = append(opts, treeclock.WithInternCap(*internCap))
	}
	if *progress > 0 {
		opts = append(opts, treeclock.WithProgress(*progress, func(p treeclock.Progress) {
			fmt.Fprintf(stderr, "progress: %d events (%.2fM ev/s)\n", p.Events, p.Rate/1e6)
		}))
	}
	if *format == "bin" {
		opts = append(opts, treeclock.StreamBinary())
	}
	var st treeclock.WorkStats
	if *work {
		opts = append(opts, treeclock.StreamWorkStats(&st))
	}
	if *checkpoint != "" {
		opts = append(opts, treeclock.WithCheckpoint(*ckptEvery, treeclock.FileCheckpointSink{Path: *checkpoint}))
	}
	if *resume != "" {
		// Read the checkpoint fully up front rather than streaming from
		// an open handle: with -checkpoint naming the same path (the
		// natural spelling for "continue and keep checkpointing here"),
		// the sink's first temp+rename would otherwise replace the file
		// while the restore still holds it — on platforms where renaming
		// over an open file fails, that aborts the run mid-restore.
		data, err := os.ReadFile(*resume)
		if err != nil {
			fmt.Fprintf(stderr, "tcrace: %v\n", err)
			return exitUsage
		}
		opts = append(opts, treeclock.ResumeFrom(bytes.NewReader(data)))
	}

	start := time.Now()
	var res *treeclock.StreamResult
	var err error
	if *workers == 1 {
		res, err = treeclock.RunStream(name, in, opts...)
	} else {
		if *workers > 1 {
			opts = append(opts, treeclock.WithWorkers(*workers))
		}
		res, err = treeclock.RunStreamParallel(name, in, opts...)
	}
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(stderr, "tcrace: %v\n", err)
		if errors.Is(err, treeclock.ErrCorruptCheckpoint) {
			return exitCorrupt
		}
		return exitUsage
	}

	var workPtr *treeclock.WorkStats
	if *work {
		workPtr = &st
	}
	return printReport(stdout, res, elapsed, *workers != 1, workPtr, *samples)
}

// printReport renders the analysis report. Local and remote runs share
// it, so the two paths produce line-for-line comparable output (only
// the elapsed time differs by nature). Returns the exit code implied
// by the race summary.
func printReport(stdout io.Writer, res *treeclock.StreamResult, elapsed time.Duration, sharded bool, work *treeclock.WorkStats, samples int) int {
	fmt.Fprintf(stdout, "trace: %d events, %d threads, %d vars, %d locks (streamed, no prior metadata)\n",
		res.Events, res.Meta.Threads, res.Meta.Vars, res.Meta.Locks)
	if sharded {
		fmt.Fprintf(stdout, "analysis sharded across worker replicas (variable-partitioned; results identical to sequential)\n")
	}
	fmt.Fprintf(stdout, "%s: %d concurrent conflicting pairs detected in %v\n",
		res.Engine, res.Summary.Total, elapsed.Round(time.Microsecond))
	if work != nil {
		fmt.Fprintf(stdout, "work: %d entries touched, %d changed (VTWork), %d joins, %d copies, %d deep copies\n",
			work.Entries, work.Changed, work.Joins, work.Copies, work.DeepCopies)
	}
	if len(res.Samples) > 0 && samples > 0 {
		fmt.Fprintln(stdout, "sample pairs:")
		for i, p := range res.Samples {
			if i >= samples {
				fmt.Fprintf(stdout, "  ... (%d samples kept)\n", len(res.Samples))
				break
			}
			fmt.Fprintf(stdout, "  %s\n", p)
		}
	}
	if res.Summary.Total > 0 {
		return exitRaces
	}
	return exitClean
}

// remoteRun is the -remote client: decode (and validate) the trace
// locally, ship it to a tcraced daemon over the framed wire protocol,
// and render the daemon's result exactly as a local run would.
type remoteRun struct {
	addr       string
	sessionID  string
	engine     string
	binary     bool
	validate   bool
	workers    int
	flatWeak   bool
	reclaim    bool
	summaryCap int
	internCap  int
	resume     bool
	progress   uint64
	samples    int
}

func (r *remoteRun) run(in io.Reader, stdout, stderr io.Writer) int {
	var src trace.EventSource
	if r.binary {
		src = trace.NewBinaryScanner(in)
	} else {
		s := trace.NewScanner(in)
		if r.internCap > 0 {
			s.SetInternCap(r.internCap)
		}
		src = s
	}
	if r.validate {
		src = trace.NewValidator(src)
	}

	c, err := daemon.Dial(r.addr)
	if err != nil {
		fmt.Fprintf(stderr, "tcrace: %v\n", err)
		return exitUsage
	}
	defer c.Close()
	if r.progress > 0 {
		c.OnProgress(func(events, retained uint64) {
			fmt.Fprintf(stderr, "progress: %d events (remote session, %d bytes retained)\n", events, retained)
		})
	}

	// -workers 0 means GOMAXPROCS locally; resolve it client-side so
	// the open frame carries an explicit count.
	workers := r.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	opts := []daemon.OpenOption{}
	if workers > 1 {
		opts = append(opts, daemon.OpenWorkers(workers))
	}
	if r.flatWeak {
		opts = append(opts, daemon.OpenFlatWeak())
	}
	if r.reclaim {
		opts = append(opts, daemon.OpenSlotReclaim())
	}
	if r.summaryCap > 0 {
		opts = append(opts, daemon.OpenSummaryCap(r.summaryCap))
	}
	if r.resume {
		opts = append(opts, daemon.OpenResume())
	}

	start := time.Now()
	pos, err := c.Open(r.sessionID, r.engine, opts...)
	if err != nil {
		fmt.Fprintf(stderr, "tcrace: %v\n", err)
		return exitUsage
	}
	if pos > 0 {
		fmt.Fprintf(stderr, "tcrace: session %q resumed at %d events; re-feeding the tail\n", r.sessionID, pos)
	}
	if _, err := c.FeedSource(src, pos); err != nil {
		return r.fail(err, stderr)
	}
	res, err := c.Finish()
	if err != nil {
		return r.fail(err, stderr)
	}
	elapsed := time.Since(start)
	return printReport(stdout, res, elapsed, r.workers != 1, nil, r.samples)
}

// fail maps a remote-session error to its exit code: evictions are
// resumable and get their own code, anything else is a usage/transport
// failure.
func (r *remoteRun) fail(err error, stderr io.Writer) int {
	fmt.Fprintf(stderr, "tcrace: %v\n", err)
	var ev *daemon.EvictedError
	if errors.As(err, &ev) {
		fmt.Fprintf(stderr, "tcrace: the daemon kept a checkpoint; continue with -resume-session -session %s\n", r.sessionID)
		return exitEvicted
	}
	return exitUsage
}

// printDaemonStats implements -daemon-stats: one round-trip for the
// statistics snapshot, printed as indented JSON.
func printDaemonStats(addr string, stdout, stderr io.Writer) int {
	c, err := daemon.Dial(addr)
	if err != nil {
		fmt.Fprintf(stderr, "tcrace: %v\n", err)
		return exitUsage
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		fmt.Fprintf(stderr, "tcrace: %v\n", err)
		return exitUsage
	}
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "tcrace: %v\n", err)
		return exitUsage
	}
	fmt.Fprintln(stdout, string(out))
	return exitClean
}

// defaultSessionID derives a daemon session id from the trace path:
// the file's base name with unsafe bytes mapped to '_', or
// "tcrace-stdin" for standard input. Concurrent runs over the same
// file need explicit -session ids (a daemon serves one live session
// per id).
func defaultSessionID(path string) string {
	if path == "" {
		return "tcrace-stdin"
	}
	b := []byte(filepath.Base(path))
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			b[i] = '_'
		}
	}
	id := strings.TrimLeft(string(b), ".-")
	if id == "" {
		id = "tcrace"
	}
	if len(id) > 128 {
		id = id[:128]
	}
	return id
}
