// Command tcrace runs a partial-order race analysis over a trace file
// in a single streaming pass: the trace is never materialized and no
// metadata is needed up front, so arbitrarily large logs are analyzed
// with memory proportional to the live identifier spaces.
//
// Usage:
//
//	tcrace -engine hb-tree trace.txt      # happens-before races, tree clocks
//	tcrace -engine shb-vc < t.txt         # SHB with the vector-clock baseline
//	tcrace -engine maz-tree -format bin t.tr
//	tcrace -engine wcp-tree t.txt         # predictive races (WCP weak order)
//	tcrace -engine wcp-vc -flat-weak t.txt # flat weak-clock baseline transport
//	tcrace -workers 4 big.txt             # shard the analysis across 4 cores
//	tcrace -pipeline 4 big.txt            # decode in a separate goroutine
//	tcrace -progress 5000000 huge.txt     # rate reports to stderr
//	tcrace -algo shb -clock vc < t.txt    # legacy flag spelling
//
// Ingestion is batched by default; -scalar forces the per-event loop
// and -pipeline N overlaps decoding with analysis through a ring of N
// recycled batch buffers (0 picks automatically: pipelined for text
// input when GOMAXPROCS > 1; negative forces the synchronous path).
// -workers N > 1 runs the sharded analysis runtime: variables
// partition across N full engine replicas and the race checks run only
// on each variable's owner, with results byte-identical to the
// sequential pass. -workers 0 shards across GOMAXPROCS replicas
// (which on a single-CPU host means the sharded path with one
// replica); -workers 1 is the sequential pass.
//
// Prints the race summary and up to 64 sample pairs, plus timing and —
// with -work — the data-structure work counters. Engine names come
// from the registry (see -list).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"treeclock"
)

func main() {
	var (
		engineFlag = flag.String("engine", "", "registry engine name (see -list); overrides -algo/-clock")
		algo       = flag.String("algo", "hb", "partial order: hb, shb, maz or wcp")
		clock      = flag.String("clock", "tc", "clock data structure: tc (tree clock) or vc (vector clock)")
		format     = flag.String("format", "text", "trace format: text or bin")
		work       = flag.Bool("work", false, "also report data-structure work counters")
		samples    = flag.Int("samples", 10, "sample races to print")
		list       = flag.Bool("list", false, "list registered engines and exit")
		noValidate = flag.Bool("no-validate", false, "skip incremental well-formedness checking (lock/fork/join discipline)")
		pipeline   = flag.Int("pipeline", 0, "decode in a separate goroutine through a ring of N recycled batch buffers (0 = automatic, negative = off)")
		scalar     = flag.Bool("scalar", false, "force the per-event streaming loop instead of batched ingestion")
		workers    = flag.Int("workers", 1, "shard the analysis across N worker replicas (0 = GOMAXPROCS, 1 = sequential)")
		flatWeak   = flag.Bool("flat-weak", false, "use the flat-vector weak-clock baseline for weak orders (wcp) instead of the sparse segment transport")
		progress   = flag.Uint64("progress", 0, "print a progress line to stderr every N events (0 = off)")
	)
	flag.Parse()

	if *list {
		for _, info := range treeclock.EngineInfos() {
			fmt.Printf("%-10s %s\n", info.Name, info.Doc)
		}
		return
	}

	name := *engineFlag
	if name == "" {
		suffix := "-tree"
		switch *clock {
		case "tc", "tree":
		case "vc":
			suffix = "-vc"
		default:
			fmt.Fprintf(os.Stderr, "tcrace: unknown clock %q\n", *clock)
			os.Exit(2)
		}
		name = *algo + suffix
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	opts := []treeclock.StreamOption{}
	if !*noValidate {
		opts = append(opts, treeclock.StreamValidate())
	}
	if *pipeline != 0 {
		depth := *pipeline
		if depth < 0 {
			depth = 0 // explicit synchronous decode
		}
		opts = append(opts, treeclock.WithPipeline(depth))
	}
	if *scalar {
		opts = append(opts, treeclock.StreamScalar())
	}
	if *flatWeak {
		opts = append(opts, treeclock.WithFlatWeakClocks())
	}
	if *progress > 0 {
		opts = append(opts, treeclock.WithProgress(*progress, func(p treeclock.Progress) {
			fmt.Fprintf(os.Stderr, "progress: %d events (%.2fM ev/s)\n", p.Events, p.Rate/1e6)
		}))
	}
	switch *format {
	case "text":
	case "bin":
		opts = append(opts, treeclock.StreamBinary())
	default:
		fmt.Fprintf(os.Stderr, "tcrace: unknown format %q\n", *format)
		os.Exit(2)
	}
	var st treeclock.WorkStats
	if *work {
		opts = append(opts, treeclock.StreamWorkStats(&st))
	}

	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "tcrace: -workers must be >= 0 (got %d)\n", *workers)
		os.Exit(2)
	}

	start := time.Now()
	var res *treeclock.StreamResult
	var err error
	if *workers == 1 {
		res, err = treeclock.RunStream(name, in, opts...)
	} else {
		if *workers > 1 {
			opts = append(opts, treeclock.WithWorkers(*workers))
		}
		res, err = treeclock.RunStreamParallel(name, in, opts...)
	}
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcrace: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("trace: %d events, %d threads, %d vars, %d locks (streamed, no prior metadata)\n",
		res.Events, res.Meta.Threads, res.Meta.Vars, res.Meta.Locks)
	if *workers != 1 {
		fmt.Printf("analysis sharded across worker replicas (variable-partitioned; results identical to sequential)\n")
	}
	fmt.Printf("%s: %d concurrent conflicting pairs detected in %v\n",
		res.Engine, res.Summary.Total, elapsed.Round(time.Microsecond))
	if *work {
		fmt.Printf("work: %d entries touched, %d changed (VTWork), %d joins, %d copies, %d deep copies\n",
			st.Entries, st.Changed, st.Joins, st.Copies, st.DeepCopies)
	}
	if len(res.Samples) > 0 && *samples > 0 {
		fmt.Println("sample pairs:")
		for i, p := range res.Samples {
			if i >= *samples {
				fmt.Printf("  ... (%d samples kept)\n", len(res.Samples))
				break
			}
			fmt.Printf("  %s\n", p)
		}
	}
}
