package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"treeclock/internal/daemon"
)

// writeTrace drops a trace file into a temp dir and returns its path.
func writeTrace(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const (
	cleanTrace = "t0 acq l\nt0 w x\nt0 rel l\nt1 acq l\nt1 w x\nt1 rel l\n"
	racyTrace  = "t0 w x\nt1 w x\n"
)

// runCmd invokes the factored command entry and returns its exit code
// plus the captured output streams.
func runCmd(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

// TestExitCodes pins the documented exit-code contract: 0 clean,
// 1 races, 2 usage/I-O, 3 corrupt checkpoint (4, remote eviction, is
// pinned by TestRemoteEvictResume).
func TestExitCodes(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		code, out, _ := runCmd(t, cleanTrace)
		if code != exitClean {
			t.Fatalf("clean trace: exit %d, want %d", code, exitClean)
		}
		if !strings.Contains(out, "0 concurrent conflicting pairs") {
			t.Fatalf("clean trace output:\n%s", out)
		}
	})
	t.Run("races", func(t *testing.T) {
		code, out, _ := runCmd(t, racyTrace)
		if code != exitRaces {
			t.Fatalf("racy trace: exit %d, want %d", code, exitRaces)
		}
		if !strings.Contains(out, "1 concurrent conflicting pairs") {
			t.Fatalf("racy trace output:\n%s", out)
		}
	})
	t.Run("bad flag", func(t *testing.T) {
		code, _, errOut := runCmd(t, "", "-no-such-flag")
		if code != exitUsage {
			t.Fatalf("bad flag: exit %d, want %d", code, exitUsage)
		}
		if !strings.Contains(errOut, "usage: tcrace") {
			t.Fatalf("bad flag stderr:\n%s", errOut)
		}
	})
	t.Run("unknown engine", func(t *testing.T) {
		if code, _, _ := runCmd(t, cleanTrace, "-engine", "nope"); code != exitUsage {
			t.Fatalf("unknown engine: exit %d, want %d", code, exitUsage)
		}
	})
	t.Run("unknown clock", func(t *testing.T) {
		if code, _, _ := runCmd(t, cleanTrace, "-clock", "sundial"); code != exitUsage {
			t.Fatalf("unknown clock: exit %d, want %d", code, exitUsage)
		}
	})
	t.Run("unknown format", func(t *testing.T) {
		if code, _, _ := runCmd(t, cleanTrace, "-format", "xml"); code != exitUsage {
			t.Fatalf("unknown format: exit %d, want %d", code, exitUsage)
		}
	})
	t.Run("negative workers", func(t *testing.T) {
		if code, _, _ := runCmd(t, cleanTrace, "-workers", "-1"); code != exitUsage {
			t.Fatalf("negative workers: exit %d, want %d", code, exitUsage)
		}
	})
	t.Run("missing trace file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "nope.txt")
		if code, _, _ := runCmd(t, "", path); code != exitUsage {
			t.Fatalf("missing trace file: exit %d, want %d", code, exitUsage)
		}
	})
	t.Run("malformed trace", func(t *testing.T) {
		code, _, errOut := runCmd(t, "t0 frobnicate x\n")
		if code != exitUsage {
			t.Fatalf("malformed trace: exit %d, want %d", code, exitUsage)
		}
		if !strings.Contains(errOut, "tcrace:") {
			t.Fatalf("malformed trace stderr:\n%s", errOut)
		}
	})
	t.Run("invalid trace", func(t *testing.T) {
		// Double acquire: the streaming validator rejects it.
		if code, _, _ := runCmd(t, "t0 acq l\nt1 acq l\n"); code != exitUsage {
			t.Fatalf("invalid trace: exit %d, want %d", code, exitUsage)
		}
	})
	t.Run("missing resume file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "nope.ckpt")
		if code, _, _ := runCmd(t, cleanTrace, "-resume", path); code != exitUsage {
			t.Fatalf("missing resume file: exit %d, want %d", code, exitUsage)
		}
	})
	t.Run("corrupt checkpoint", func(t *testing.T) {
		ckpt := writeTrace(t, "bad.ckpt", "this is not a checkpoint")
		code, _, errOut := runCmd(t, cleanTrace, "-resume", ckpt)
		if code != exitCorrupt {
			t.Fatalf("corrupt checkpoint: exit %d, want %d (stderr: %s)", code, exitCorrupt, errOut)
		}
		if !strings.Contains(errOut, "tcrace:") {
			t.Fatalf("corrupt checkpoint stderr:\n%s", errOut)
		}
	})
	t.Run("truncated checkpoint", func(t *testing.T) {
		dir := t.TempDir()
		trace := filepath.Join(dir, "t.txt")
		if err := os.WriteFile(trace, []byte(racyTrace), 0o644); err != nil {
			t.Fatal(err)
		}
		ck := filepath.Join(dir, "run.ckpt")
		if code, _, errOut := runCmd(t, "", "-checkpoint", ck, "-checkpoint-every", "1", trace); code != exitRaces {
			t.Fatalf("checkpointed run: exit %d (stderr: %s)", code, errOut)
		}
		data, err := os.ReadFile(ck)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ck, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if code, _, _ := runCmd(t, "", "-resume", ck, trace); code != exitCorrupt {
			t.Fatalf("truncated checkpoint: exit %d, want %d", code, exitCorrupt)
		}
	})
	t.Run("resume config mismatch", func(t *testing.T) {
		dir := t.TempDir()
		trace := filepath.Join(dir, "t.txt")
		if err := os.WriteFile(trace, []byte(racyTrace), 0o644); err != nil {
			t.Fatal(err)
		}
		ck := filepath.Join(dir, "run.ckpt")
		if code, _, _ := runCmd(t, "", "-checkpoint", ck, "-checkpoint-every", "1", trace); code != exitRaces {
			t.Fatal("checkpointed run failed")
		}
		// Wrong engine for the checkpoint: a usage error, not corruption.
		if code, _, _ := runCmd(t, "", "-engine", "shb-tree", "-resume", ck, trace); code != exitUsage {
			t.Fatalf("mismatched resume: exit %d, want %d", code, exitUsage)
		}
	})
}

// TestHelpDocumentsExitCodes pins that -h exits 0 and prints the
// exit-code contract on stdout.
func TestHelpDocumentsExitCodes(t *testing.T) {
	code, out, errOut := runCmd(t, "", "-h")
	if code != exitClean {
		t.Fatalf("-h: exit %d, want %d", code, exitClean)
	}
	if errOut != "" {
		t.Fatalf("-h wrote to stderr:\n%s", errOut)
	}
	for _, want := range []string{
		"usage: tcrace",
		"Exit codes:",
		"0  analysis completed, no races detected",
		"1  analysis completed, races detected",
		"2  usage or I/O error (bad flags, unreadable input, malformed trace)",
		"3  corrupt or truncated checkpoint (-resume)",
		"4  remote session evicted over budget (-remote; resume with -resume-session)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("-h output missing %q:\n%s", want, out)
		}
	}
}

// TestList pins that -list exits 0 and names the registry engines.
func TestList(t *testing.T) {
	code, out, _ := runCmd(t, "", "-list")
	if code != exitClean {
		t.Fatalf("-list: exit %d, want %d", code, exitClean)
	}
	for _, name := range []string{"hb-tree", "hb-vc", "shb-tree", "wcp-vc"} {
		if !strings.Contains(out, name) {
			t.Fatalf("-list output missing %q:\n%s", name, out)
		}
	}
}

// TestCheckpointResumeCLI runs a checkpointed analysis, then resumes
// from the written checkpoint and checks both runs report the same
// races.
func TestCheckpointResumeCLI(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.txt")
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString(racyTrace)
	}
	if err := os.WriteFile(trace, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	code, ref, _ := runCmd(t, "", trace)
	if code != exitRaces {
		t.Fatalf("reference run: exit %d", code)
	}
	ck := filepath.Join(dir, "run.ckpt")
	if code, _, errOut := runCmd(t, "", "-checkpoint", ck, "-checkpoint-every", "64", trace); code != exitRaces {
		t.Fatalf("checkpointed run: exit %d (stderr: %s)", code, errOut)
	}
	code, out, errOut := runCmd(t, "", "-resume", ck, trace)
	if code != exitRaces {
		t.Fatalf("resumed run: exit %d (stderr: %s)", code, errOut)
	}
	// Reports match except the timing line (elapsed differs by nature).
	if got, want := stripTiming(out), stripTiming(ref); got != want {
		t.Fatalf("resumed report differs:\n--- resumed\n%s--- reference\n%s", got, want)
	}
}

// TestResumeAndCheckpointSamePath resumes from a checkpoint while
// writing new checkpoints to the same file — the natural way to
// continue a long run crash-safely. The restore must read the old
// bytes in full before the sink's first temp+rename replaces them,
// and the resumed report must still match an uninterrupted run.
func TestResumeAndCheckpointSamePath(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.txt")
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString(racyTrace)
	}
	if err := os.WriteFile(trace, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	code, ref, _ := runCmd(t, "", trace)
	if code != exitRaces {
		t.Fatalf("reference run: exit %d", code)
	}
	ck := filepath.Join(dir, "run.ckpt")
	if code, _, errOut := runCmd(t, "", "-checkpoint", ck, "-checkpoint-every", "64", trace); code != exitRaces {
		t.Fatalf("checkpointed run: exit %d (stderr: %s)", code, errOut)
	}
	// Resume and checkpoint through the same path; the tight interval
	// forces many rewrites of the file being resumed from.
	code, out, errOut := runCmd(t, "", "-resume", ck, "-checkpoint", ck, "-checkpoint-every", "16", trace)
	if code != exitRaces {
		t.Fatalf("same-path resume: exit %d (stderr: %s)", code, errOut)
	}
	if got, want := stripTiming(out), stripTiming(ref); got != want {
		t.Fatalf("same-path resumed report differs:\n--- resumed\n%s--- reference\n%s", got, want)
	}
	// The rewritten checkpoint must itself be resumable.
	code, out, errOut = runCmd(t, "", "-resume", ck, trace)
	if code != exitRaces {
		t.Fatalf("resume from rewritten checkpoint: exit %d (stderr: %s)", code, errOut)
	}
	if got, want := stripTiming(out), stripTiming(ref); got != want {
		t.Fatalf("rewritten-checkpoint report differs:\n--- resumed\n%s--- reference\n%s", got, want)
	}
}

// startTestDaemon brings up an in-process tcraced server for the
// -remote client tests.
func startTestDaemon(t *testing.T, spool string, mod func(*daemon.Config)) *daemon.Server {
	t.Helper()
	cfg := daemon.Config{
		Addr:     "127.0.0.1:0",
		SpoolDir: spool,
		Now:      time.Now,
		Sleep:    time.Sleep,
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := daemon.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestRemoteMatchesLocal pins that -remote renders the same report as
// an in-process run of the same trace (modulo the elapsed time), and
// that -daemon-stats round-trips a JSON snapshot.
func TestRemoteMatchesLocal(t *testing.T) {
	srv := startTestDaemon(t, t.TempDir(), nil)
	var sb strings.Builder
	for i := 0; i < 300; i++ {
		sb.WriteString(cleanTrace)
		sb.WriteString(racyTrace)
	}
	input := sb.String()
	codeLocal, local, _ := runCmd(t, input)
	codeRemote, remote, errOut := runCmd(t, input,
		"-remote", srv.Addr().String(), "-session", "cli-match")
	if codeRemote != codeLocal {
		t.Fatalf("remote exit %d, local exit %d (stderr: %s)", codeRemote, codeLocal, errOut)
	}
	if got, want := stripTiming(remote), stripTiming(local); got != want {
		t.Fatalf("remote report differs:\n--- remote\n%s--- local\n%s", got, want)
	}

	code, out, errOut := runCmd(t, "", "-daemon-stats", srv.Addr().String())
	if code != exitClean {
		t.Fatalf("-daemon-stats: exit %d (stderr: %s)", code, errOut)
	}
	for _, want := range []string{"active_sessions", "sessions_finished", "events_total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-daemon-stats output missing %q:\n%s", want, out)
		}
	}
}

// TestRemoteEvictResume pins exit code 4: a budgeted daemon evicts the
// session with a spooled checkpoint, and -resume-session on a roomier
// daemon sharing the spool finishes with a report identical to an
// uninterrupted local run.
func TestRemoteEvictResume(t *testing.T) {
	spool := t.TempDir()
	budgeted := startTestDaemon(t, spool, func(c *daemon.Config) {
		c.MaxRetainedBytes = 1
		c.MemCheckEvery = 64
	})
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		sb.WriteString(cleanTrace)
	}
	input := sb.String()
	codeRef, ref, _ := runCmd(t, input, "-engine", "wcp-tree")
	if codeRef != exitClean {
		t.Fatalf("reference run: exit %d", codeRef)
	}
	code, _, errOut := runCmd(t, input,
		"-engine", "wcp-tree", "-remote", budgeted.Addr().String(), "-session", "cli-evict")
	if code != exitEvicted {
		t.Fatalf("budgeted run: exit %d, want %d (stderr: %s)", code, exitEvicted, errOut)
	}
	if !strings.Contains(errOut, "-resume-session") {
		t.Fatalf("eviction stderr misses the resume hint:\n%s", errOut)
	}

	roomy := startTestDaemon(t, spool, nil)
	code, out, errOut := runCmd(t, input,
		"-engine", "wcp-tree", "-remote", roomy.Addr().String(), "-session", "cli-evict", "-resume-session")
	if code != exitClean {
		t.Fatalf("resumed run: exit %d (stderr: %s)", code, errOut)
	}
	if !strings.Contains(errOut, "resumed at") {
		t.Fatalf("resume note missing from stderr:\n%s", errOut)
	}
	if got, want := stripTiming(out), stripTiming(ref); got != want {
		t.Fatalf("resumed remote report differs:\n--- resumed\n%s--- reference\n%s", got, want)
	}
}

// TestRemoteUsageErrors pins the flag subset -remote accepts.
func TestRemoteUsageErrors(t *testing.T) {
	cases := map[string][]string{
		"session without remote": {"-session", "x"},
		"resume without remote":  {"-resume-session"},
		"work":                   {"-remote", "x", "-work"},
		"checkpoint":             {"-remote", "x", "-checkpoint", "c"},
		"resume file":            {"-remote", "x", "-resume", "c"},
		"scalar":                 {"-remote", "x", "-scalar"},
		"pipeline":               {"-remote", "x", "-pipeline", "4"},
		"intern-cap on binary":   {"-remote", "x", "-format", "bin", "-intern-cap", "5"},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			if code, _, errOut := runCmd(t, cleanTrace, args...); code != exitUsage {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, exitUsage, errOut)
			}
		})
	}
}

// stripTiming removes the elapsed duration from the summary line so
// reports compare structurally.
func stripTiming(out string) string {
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if idx := strings.Index(l, " detected in "); idx >= 0 {
			lines[i] = l[:idx]
		}
	}
	return strings.Join(lines, "\n")
}
