// Command tcvet is the repository's custom vet: a multichecker that
// runs the internal/lint analyzers over the module and reports every
// invariant violation in file:line:column form.
//
// Usage:
//
//	tcvet [flags] [package patterns]
//
// Patterns are relative to the working directory ("./...", ".",
// "./internal/wcp") or fully qualified ("treeclock/internal/vt"); the
// default is ./... . _test.go files are not analyzed: the corpora
// and unit tests deliberately construct the very patterns the
// analyzers reject.
//
// Exit status: 0 if no diagnostics were reported, 1 if any analyzer
// reported a finding, 2 on usage or load errors.
//
// The analyzers (enable/disable each with -name=false):
//
//	refpair    snapshot refcount pairing (acquire must reach Drop)
//	ckptsym    checkpoint save/load wire-format symmetry
//	detrange   map-iteration order and wall-clock nondeterminism
//	clockgrow  vt.Clock Inc without a dominating Grow/capacity guard
//
// See the "Static analysis" section of the root package documentation
// for the invariant each analyzer enforces and the dynamic harness it
// backs up.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"treeclock/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: tcvet [flags] [package patterns]\n\n"+
				"Static analyzers for the treeclock runtime's invariants.\n"+
				"Patterns default to ./... from the enclosing module root.\n"+
				"Exit status: 0 clean, 1 findings, 2 usage/load error.\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "\n  %s\n", a.Name)
			for _, line := range strings.Split(a.Doc, "\n") {
				fmt.Fprintf(flag.CommandLine.Output(), "      %s\n", line)
			}
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	enabled := make(map[string]*bool)
	for _, a := range lint.All() {
		enabled[a.Name] = flag.Bool(a.Name, true, "run the "+a.Name+" analyzer")
	}
	flag.Parse()

	var analyzers []*lint.Analyzer
	for _, a := range lint.All() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "tcvet: all analyzers disabled")
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcvet:", err)
		return 2
	}
	root, modPath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcvet:", err)
		return 2
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := lint.ExpandPatterns(root, modPath, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcvet:", err)
		return 2
	}
	prog, err := lint.Load(lint.LoadConfig{
		Roots: []lint.Root{{Prefix: modPath, Dir: root}},
	}, paths...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcvet:", err)
		return 2
	}
	var pkgs []*lint.Package
	for _, p := range paths {
		if pkg := prog.Package(p); pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	diags, err := lint.Run(prog, analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcvet:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
