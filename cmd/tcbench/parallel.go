package main

// The parallel experiment measures the sharded analysis runtime
// (RunStreamParallel) against the sequential pass: a workers × engine
// × format sweep over an access-heavy workload whose per-event cost is
// dominated by the race analysis — the share sharding actually
// distributes. Formats: "mem" replays a materialized trace (no decode
// at all, the engine-bound configuration the speedup criterion is
// about), "text" and "bin" include the decoder on the coordinator.
// With -json the sweep lands in a machine-readable report
// (BENCH_parallel.json) so the multicore CI lane tracks the
// parallel-vs-sequential trajectory; each row carries its speedup over
// the sequential run of the same engine × format. On a single-CPU
// host the sweep still runs (and the workers merely timeshare), so the
// report also records GOMAXPROCS.

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"time"

	"treeclock"
	"treeclock/internal/gen"
	"treeclock/internal/trace"
)

// parallelResult is one engine × format × workers measurement.
// Workers == 0 denotes the sequential baseline.
type parallelResult struct {
	Trace        string  `json:"trace"`
	Engine       string  `json:"engine"`
	Format       string  `json:"format"`
	Workers      int     `json:"workers"`
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
	Speedup      float64 `json:"speedup_vs_sequential"`
	Pairs        uint64  `json:"pairs"`
}

// parallelReport is the -json payload.
type parallelReport struct {
	Experiment string            `json:"experiment"`
	GoVersion  string            `json:"go_version"`
	MaxProcs   int               `json:"gomaxprocs"`
	Repeats    int               `json:"repeats"`
	Traces     []ingestTraceInfo `json:"traces"`
	Results    []parallelResult  `json:"results"`
}

// parallelExperiment runs the sweep. events sizes the workload,
// workersList is the shard widths to measure (the sequential baseline
// always runs), repeats picks the best of N timings per cell.
func parallelExperiment(events, repeats int, workersList []int, jsonPath string) {
	if repeats < 1 {
		repeats = 1
	}
	// Access-heavy and widely shared: most events are reads/writes over
	// a large variable space with a hot racy subset, so the detector —
	// the sharded component — dominates the per-event cost.
	tr := gen.Mixed(gen.Config{
		Name: "parallel-mixed", Threads: 16, Locks: 8, Vars: 16384,
		Events: events, Seed: 31, SyncFrac: 0.05,
		LockAffinity: 2, Groups: 4, HotFrac: 0.25,
	})
	var text, bin bytes.Buffer
	if err := trace.WriteText(&text, tr); err != nil {
		fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
		os.Exit(1)
	}
	if err := trace.WriteBinary(&bin, tr); err != nil {
		fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
		os.Exit(1)
	}
	report := parallelReport{
		Experiment: "parallel",
		GoVersion:  runtime.Version(),
		MaxProcs:   runtime.GOMAXPROCS(0),
		Repeats:    repeats,
		Traces: []ingestTraceInfo{{
			Name: tr.Meta.Name, Events: tr.Len(), Threads: tr.Meta.Threads,
			Locks: tr.Meta.Locks, Vars: tr.Meta.Vars,
			TextBytes: text.Len(), BinaryBytes: bin.Len(),
		}},
	}
	fmt.Printf("Sharded-analysis sweep over %q: %d events, %d threads, %d vars, GOMAXPROCS=%d:\n",
		tr.Meta.Name, tr.Len(), tr.Meta.Threads, tr.Meta.Vars, runtime.GOMAXPROCS(0))

	formats := []struct {
		name string
		run  func(engine string, workers int) (*treeclock.StreamResult, error)
	}{
		{"mem", func(engine string, workers int) (*treeclock.StreamResult, error) {
			if workers == 0 {
				return treeclock.RunStreamSource(engine, trace.NewReplayer(tr))
			}
			return treeclock.RunStreamParallelSource(engine, trace.NewReplayer(tr), treeclock.WithWorkers(workers))
		}},
		{"text", func(engine string, workers int) (*treeclock.StreamResult, error) {
			if workers == 0 {
				// Pin the truly synchronous baseline: RunStream would
				// auto-pipeline text on multi-core hosts, which is a
				// different (two-goroutine) denominator than the bin
				// and mem rows use.
				return treeclock.RunStream(engine, bytes.NewReader(text.Bytes()), treeclock.WithPipeline(0))
			}
			return treeclock.RunStreamParallel(engine, bytes.NewReader(text.Bytes()), treeclock.WithWorkers(workers))
		}},
		{"bin", func(engine string, workers int) (*treeclock.StreamResult, error) {
			if workers == 0 {
				return treeclock.RunStream(engine, bytes.NewReader(bin.Bytes()), treeclock.StreamBinary())
			}
			return treeclock.RunStreamParallel(engine, bytes.NewReader(bin.Bytes()),
				treeclock.StreamBinary(), treeclock.WithWorkers(workers))
		}},
	}

	for _, engine := range treeclock.Engines() {
		for _, f := range formats {
			var baseline float64
			var seqPairs uint64
			line := fmt.Sprintf("  %-10s %-5s", engine, f.name)
			for _, workers := range append([]int{0}, workersList...) {
				best := time.Duration(0)
				var pairs uint64
				for rep := 0; rep < repeats; rep++ {
					start := time.Now()
					res, err := f.run(engine, workers)
					el := time.Since(start)
					if err != nil {
						fmt.Fprintf(os.Stderr, "tcbench: %s/%s workers=%d: %v\n", engine, f.name, workers, err)
						os.Exit(1)
					}
					pairs = res.Summary.Total
					if best == 0 || el < best {
						best = el
					}
				}
				if workers == 0 {
					seqPairs = pairs
				} else if pairs != seqPairs {
					fmt.Fprintf(os.Stderr, "tcbench: %s/%s workers=%d: pair count %d diverges from sequential %d\n",
						engine, f.name, workers, pairs, seqPairs)
					os.Exit(1)
				}
				evs := float64(tr.Len()) / best.Seconds()
				speedup := 1.0
				if workers == 0 {
					baseline = evs
				} else if baseline > 0 {
					speedup = evs / baseline
				}
				report.Results = append(report.Results, parallelResult{
					Trace: tr.Meta.Name, Engine: engine, Format: f.name, Workers: workers,
					EventsPerSec: evs, NsPerEvent: 1e9 / evs, Speedup: speedup, Pairs: pairs,
				})
				if workers == 0 {
					line += fmt.Sprintf("  seq %7.2fM ev/s", evs/1e6)
				} else {
					line += fmt.Sprintf("  w%-2d %7.2fM (%.2fx)", workers, evs/1e6, speedup)
				}
			}
			fmt.Println(line)
		}
	}
	if jsonPath != "" {
		writeJSONReport(jsonPath, &report, len(report.Results))
	}
}
