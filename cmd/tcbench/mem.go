package main

// The mem experiment measures retained engine state on unbounded
// streaming workloads — the complement of the ingest experiment's
// throughput numbers. Each endless generator (hot-lock, rotating-
// locks, churning-vars) is capped at -mem-events and streamed through
// every registry engine; engines implementing the MemReporter
// extension (the WCP pair) report live/peak history entries, compacted
// entries and retained snapshot bytes, which the report normalizes to
// retained-bytes/event — the number that was Θ(threads·8) per sync
// event before rule-(b) history compaction and is ~0 after. The WCP
// engines additionally run in "retain" mode (compaction disabled,
// direct engine construction) with a post-GC heap delta, so the
// before/after comparison in the ROADMAP stays reproducible. With
// -mem-json the rows are written machine-readable (BENCH_mem.json).

import (
	"fmt"
	"os"
	"runtime"

	"treeclock"
	"treeclock/internal/core"
	"treeclock/internal/engine"
	"treeclock/internal/gen"
	"treeclock/internal/trace"
	"treeclock/internal/vc"
	"treeclock/internal/vt"
	"treeclock/internal/wcp"
)

// memWorkload names one endless generator configuration.
type memWorkload struct {
	name string
	mk   func() trace.EventSource
}

func memWorkloads() []memWorkload {
	return []memWorkload{
		{"hot-lock-k16", func() trace.EventSource { return gen.HotLock(16, 31) }},
		{"rotating-locks-k16-l64", func() trace.EventSource { return gen.RotatingLocks(16, 64, 200, 32) }},
		{"churning-vars-k16-v256", func() trace.EventSource { return gen.ChurningVars(16, 256, 100, 33) }},
	}
}

// memResult is one workload × engine × mode measurement.
type memResult struct {
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	// Mode is "compact" (the default engine, via the streaming API) or
	// "retain" (WCP with compaction disabled, the pre-fix behavior).
	Mode        string `json:"mode"`
	Events      uint64 `json:"events"`
	HasReporter bool   `json:"has_mem_reporter"`
	// Reporter numbers (zero when HasReporter is false).
	HistLive              int     `json:"hist_live"`
	HistPeakPerLock       int     `json:"hist_peak_per_lock"`
	HistDropped           uint64  `json:"hist_dropped"`
	SummaryVectors        int     `json:"summary_vectors"`
	RetainedBytes         uint64  `json:"retained_bytes"`
	RetainedBytesPerEvent float64 `json:"retained_bytes_per_event"`
	// HeapRetainedBytes is the post-GC heap growth with the engine
	// still referenced — only measured on the direct-construction WCP
	// rows (0 elsewhere). An upper bound: allocator slack counts.
	HeapRetainedBytes uint64 `json:"heap_retained_bytes,omitempty"`
	// Churn-section numbers (zero outside it): clock slots under
	// thread churn, summary evictions under variable churn, interner
	// occupancy under identifier-name churn.
	ThreadSlots      int    `json:"thread_slots,omitempty"`
	FreeSlots        int    `json:"free_slots,omitempty"`
	RetiredSlots     uint64 `json:"retired_slots,omitempty"`
	ReusedSlots      uint64 `json:"reused_slots,omitempty"`
	SummaryEvictions uint64 `json:"summary_evictions,omitempty"`
	InternedNames    int    `json:"interned_names,omitempty"`
	InternEvictions  uint64 `json:"intern_evictions,omitempty"`
}

// memReport is the -mem-json payload.
type memReport struct {
	Experiment string      `json:"experiment"`
	GoVersion  string      `json:"go_version"`
	Events     int         `json:"events_per_workload"`
	Results    []memResult `json:"results"`
}

// memExperiment runs the sweep and optionally writes the JSON report.
func memExperiment(events int, jsonPath string) {
	report := memReport{Experiment: "mem", GoVersion: runtime.Version(), Events: events}
	for _, w := range memWorkloads() {
		fmt.Printf("Retained state over %q, %d streamed events:\n", w.name, events)
		for _, name := range treeclock.Engines() {
			res, err := treeclock.RunStreamSource(name, gen.Take(w.mk(), events))
			if err != nil {
				fmt.Fprintf(os.Stderr, "tcbench: %s: %v\n", name, err)
				os.Exit(1)
			}
			row := memResult{Workload: w.name, Engine: name, Mode: "compact", Events: res.Events}
			if res.Mem != nil {
				row.HasReporter = true
				fillMem(&row, *res.Mem)
			}
			report.Results = append(report.Results, row)
			printMemRow(row)
		}
		// The WCP pair again with compaction disabled: the pre-fix
		// retention, with a real heap measurement for both modes.
		for _, mode := range []struct {
			name    string
			compact bool
		}{{"compact", true}, {"retain", false}} {
			rowT := runWCPDirect[*core.TreeClock](w, "wcp-tree", core.Factory(nil), events, mode.compact)
			rowV := runWCPDirect[*vc.VectorClock](w, "wcp-vc", vc.Factory(nil), events, mode.compact)
			rowT.Mode, rowV.Mode = mode.name, mode.name
			if mode.compact {
				// The streaming rows above already carry the compact
				// reporter numbers; these add only the heap figure.
				rowT.Engine += "+heap"
				rowV.Engine += "+heap"
			}
			report.Results = append(report.Results, rowT, rowV)
			printMemRow(rowT)
			printMemRow(rowV)
		}
		fmt.Println()
	}
	memChurnSection(events, &report)
	if jsonPath != "" {
		writeJSONReport(jsonPath, &report, len(report.Results))
	}
}

// memChurnSection measures the three residual-state caps on their
// adversarial workloads: slot reclamation under thread churn, rule-(a)
// summary aging under variable churn, and the intern cap under
// identifier-name churn. Each cap runs at the full event count; the
// unreclaimed fork-churn baseline is clipped (its O(k) clock
// operations over an ever-growing k make long runs quadratic), so
// compare its slots-per-event growth rate, not its absolute count.
func memChurnSection(events int, report *memReport) {
	fmt.Printf("Residual-state caps under churn, %d streamed events:\n", events)
	stream := func(workload, engine, mode string, src trace.EventSource, opts ...treeclock.StreamOption) memResult {
		res, err := treeclock.RunStreamSource(engine, src, opts...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcbench: %s/%s: %v\n", engine, mode, err)
			os.Exit(1)
		}
		return churnRow(workload, engine, mode, res)
	}

	// Thread churn: external ids grow without bound; reclamation must
	// hold clock capacity at the live ring.
	growEv := events
	if growEv > 20_000 {
		growEv = 20_000
	}
	rows := []memResult{
		stream("fork-churn-r8", "hb-tree", "grow", gen.Take(gen.ForkChurn(8, 31), growEv)),
		stream("fork-churn-r8", "hb-tree", "reclaim", gen.Take(gen.ForkChurn(8, 31), events), treeclock.WithSlotReclaim()),
		// Variable churn: rule-(a) summaries grow toward threads x vars
		// uncapped; the aging sweep holds them near the cap.
		stream("churning-vars-k8-v256", "wcp-tree", "unaged", gen.Take(gen.ChurningVars(8, 256, 10, 33), events)),
		stream("churning-vars-k8-v256", "wcp-tree", "aged", gen.Take(gen.ChurningVars(8, 256, 10, 33), events), treeclock.WithSummaryCap(256)),
	}

	// Identifier-name churn (text input: the interner is the leak).
	sections := events / 4
	capped, err := treeclock.RunStream("hb-tree", gen.NameChurnText(8, 16, sections, 11), treeclock.WithInternCap(1024))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcbench: intern-cap: %v\n", err)
		os.Exit(1)
	}
	rows = append(rows, churnRow("name-churn-t8", "hb-tree", "intern-cap", capped))

	for _, row := range rows {
		report.Results = append(report.Results, row)
		printChurnRow(row)
	}
	fmt.Println()
}

// churnRow builds a churn-section row from a stream result. A run
// without any cap reports no MemStats — its slot count is the external
// thread space itself (slots map to threads one-to-one).
func churnRow(workload, engine, mode string, res *treeclock.StreamResult) memResult {
	row := memResult{Workload: workload, Engine: engine, Mode: mode, Events: res.Events}
	if res.Mem == nil {
		row.ThreadSlots = res.Meta.Threads
		return row
	}
	row.HasReporter = true
	fillMem(&row, *res.Mem)
	row.ThreadSlots = res.Mem.ThreadSlots
	row.FreeSlots = res.Mem.FreeSlots
	row.RetiredSlots = res.Mem.RetiredSlots
	row.ReusedSlots = res.Mem.ReusedSlots
	row.SummaryEvictions = res.Mem.SummaryEvictions
	row.InternedNames = res.Mem.InternedNames
	row.InternEvictions = res.Mem.InternEvictions
	if row.ThreadSlots == 0 {
		row.ThreadSlots = res.Meta.Threads
	}
	return row
}

// printChurnRow renders one churn measurement line.
func printChurnRow(r memResult) {
	line := fmt.Sprintf("  %-22s %-10s %-10s %9d ev   slots %6d (%d free, %d retired, %d reused)",
		r.Workload, r.Engine, r.Mode, r.Events, r.ThreadSlots, r.FreeSlots, r.RetiredSlots, r.ReusedSlots)
	if r.SummaryVectors > 0 || r.SummaryEvictions > 0 {
		line += fmt.Sprintf("   %d summaries (%d evicted)", r.SummaryVectors, r.SummaryEvictions)
	}
	if r.InternedNames > 0 || r.InternEvictions > 0 {
		line += fmt.Sprintf("   %d names live (%d evicted)", r.InternedNames, r.InternEvictions)
	}
	fmt.Println(line)
}

// fillMem copies reporter numbers into a row and derives the per-event
// rate.
func fillMem(row *memResult, ms engine.MemStats) {
	row.HistLive = ms.HistEntries
	row.HistPeakPerLock = ms.PeakLockHist
	row.HistDropped = ms.DroppedEntries
	row.SummaryVectors = ms.SummaryVectors
	row.RetainedBytes = ms.RetainedBytes
	if row.Events > 0 {
		row.RetainedBytesPerEvent = float64(ms.RetainedBytes) / float64(row.Events)
	}
}

// runWCPDirect streams the workload through a directly constructed WCP
// engine (so the engine survives for a heap measurement) with the
// given compaction setting.
func runWCPDirect[C vt.Clock[C]](w memWorkload, label string, f vt.Factory[C], events int, compact bool) memResult {
	before := heapInUse()
	e := wcp.NewStreaming[C](f)
	e.Sem().SetCompaction(compact)
	e.EnableAnalysis()
	if err := e.ProcessSource(gen.Take(w.mk(), events)); err != nil {
		fmt.Fprintf(os.Stderr, "tcbench: %s: %v\n", label, err)
		os.Exit(1)
	}
	after := heapInUse() // e still referenced: retained state survives the GC
	row := memResult{Workload: w.name, Engine: label, Events: e.Events(), HasReporter: true}
	fillMem(&row, e.Sem().MemStats())
	if after > before {
		row.HeapRetainedBytes = after - before
	}
	runtime.KeepAlive(e)
	return row
}

// heapInUse reports the live heap after a forced collection.
func heapInUse() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// printMemRow renders one measurement line.
func printMemRow(r memResult) {
	line := fmt.Sprintf("  %-14s %-7s", r.Engine, r.Mode)
	if !r.HasReporter {
		fmt.Println(line + "   (state bounded by live identifier spaces; no reporter)")
		return
	}
	line += fmt.Sprintf("   hist %6d live / %8d peak / %9d dropped   %9d B retained (%.4f B/event)   %d summaries",
		r.HistLive, r.HistPeakPerLock, r.HistDropped, r.RetainedBytes, r.RetainedBytesPerEvent, r.SummaryVectors)
	if r.HeapRetainedBytes > 0 {
		line += fmt.Sprintf("   heap +%d B", r.HeapRetainedBytes)
	}
	fmt.Println(line)
}
