// Command tcbench regenerates the paper's evaluation: Tables 1–3 and
// Figures 6–10, plus an ablation study of the tree clock's mechanisms.
//
// Usage:
//
//	tcbench -experiment table2            # one experiment
//	tcbench -experiment all -scale 0.5    # everything, smaller traces
//	tcbench -experiment fig10 -fig10-events 1000000 -fig10-threads 10,60,110
//
// Experiments: table1, table2, table3, fig6, fig7, fig8, fig9, fig10,
// ablation, stream, ingest, mem, all. Results print to stdout; see
// EXPERIMENTS.md for the recorded paper-vs-measured comparison. The
// stream experiment compares the one-pass streaming path (RunStream:
// parse + analyze with no prior metadata) against the materialized path
// for every registry engine; with -stream-file it instead streams a
// trace file directly. The ingest experiment compares scalar, batched
// and pipelined ingestion per engine × format (tcbench -experiment
// ingest -json BENCH_ingest.json for the machine-readable report). The
// mem experiment streams the endless hot-lock / rotating-locks /
// churning-vars workloads through every engine and records retained
// state — history entries, peak per-lock history length, retained
// bytes per event, and the WCP compaction before/after comparison
// (tcbench -experiment mem -mem-json BENCH_mem.json).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"treeclock"
	"treeclock/internal/bench"
	"treeclock/internal/gen"
	"treeclock/internal/trace"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "experiment to run: table1|table2|table3|fig6|fig7|fig8|fig9|fig10|ablation|stream|ingest|mem|parallel|all")
		streamEv    = flag.Int("stream-events", 400000, "events in the generated stream- and ingest-experiment traces")
		jsonPath    = flag.String("json", "", "write the ingest experiment's machine-readable report to this file (e.g. BENCH_ingest.json)")
		memEv       = flag.Int("mem-events", 400000, "events streamed per mem-experiment workload")
		memJSONPath = flag.String("mem-json", "", "write the mem experiment's machine-readable report to this file (e.g. BENCH_mem.json)")
		parEv       = flag.Int("parallel-events", 400000, "events in the parallel-experiment workload")
		parWorkers  = flag.String("parallel-workers", "1,2,4", "comma-separated worker counts for the parallel sweep")
		streamFile  = flag.String("stream-file", "", "stream this trace file instead of a generated workload (text format, or bin with -stream-bin)")
		streamBin   = flag.Bool("stream-bin", false, "treat -stream-file as binary format")
		scale       = flag.Float64("scale", 1.0, "suite event-count multiplier (1.0 ≈ hundreds of thousands of events per large trace)")
		repeats     = flag.Int("repeats", 3, "timing repetitions to average (paper: 3)")
		fig10Events = flag.Int("fig10-events", 400000, "events per scalability trace (paper: 10M)")
		fig10Thr    = flag.String("fig10-threads", "10,60,110,160,210,260,310,360", "comma-separated thread counts for the scalability sweep")
	)
	flag.Parse()

	threads, err := parseIntList(*fig10Thr, 2, "thread count")
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcbench: bad -fig10-threads: %v\n", err)
		os.Exit(2)
	}
	workersList, err := parseIntList(*parWorkers, 1, "worker count")
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcbench: bad -parallel-workers: %v\n", err)
		os.Exit(2)
	}
	want := strings.ToLower(*experiment)
	// -json names one report file; under "all" it belongs to the ingest
	// experiment (the historical owner), so the parallel sweep only
	// writes when selected directly.
	parJSON := ""
	if want == "parallel" {
		parJSON = *jsonPath
	}
	h := bench.NewHarness(bench.Options{
		Scale:        *scale,
		Repeats:      *repeats,
		Fig10Events:  *fig10Events,
		Fig10Threads: threads,
	})

	type exp struct {
		name string
		run  func()
	}
	all := []exp{
		{"table1", func() { h.Table1(os.Stdout) }},
		{"table3", func() { h.Table3(os.Stdout) }},
		{"table2", func() { h.Table2(os.Stdout) }},
		{"fig6", func() { h.Figure6(os.Stdout) }},
		{"fig7", func() { h.Figure7(os.Stdout) }},
		{"fig8", func() { h.Figure8(os.Stdout) }},
		{"fig9", func() { h.Figure9(os.Stdout) }},
		{"fig10", func() { h.Figure10(os.Stdout) }},
		{"ablation", func() { h.Ablation(os.Stdout) }},
		{"stream", func() { streamExperiment(*streamEv, *streamFile, *streamBin) }},
		{"ingest", func() { ingestExperiment(*streamEv, *repeats, *jsonPath) }},
		{"mem", func() { memExperiment(*memEv, *memJSONPath) }},
		{"parallel", func() { parallelExperiment(*parEv, *repeats, workersList, parJSON) }},
	}

	ran := false
	for _, e := range all {
		if want == "all" || want == e.name {
			start := time.Now()
			e.run()
			fmt.Printf("[%s took %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "tcbench: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
}

// streamExperiment compares the one-pass streaming path against the
// materialized path for every registry engine. With a file it streams
// that file once per engine (re-opened each run); otherwise it
// generates a communication-rich workload and streams its serialized
// bytes from memory.
func streamExperiment(events int, file string, bin bool) {
	if file != "" {
		fmt.Printf("Streaming %s through every registry engine (one pass, no prior metadata):\n", file)
		for _, name := range treeclock.Engines() {
			f, err := os.Open(file)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
				os.Exit(1)
			}
			opts := []treeclock.StreamOption{}
			if bin {
				opts = append(opts, treeclock.StreamBinary())
			}
			start := time.Now()
			res, err := treeclock.RunStream(name, f, opts...)
			el := time.Since(start)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "tcbench: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("  %-10s %9d events %8.0f ev/ms  %d pairs\n",
				name, res.Events, evPerMS(int(res.Events), el), res.Summary.Total)
		}
		return
	}

	tr := gen.Mixed(gen.Config{
		Name: "stream-bench", Threads: 32, Locks: 24, Vars: 4096,
		Events: events, Seed: 11, SyncFrac: 0.25,
		LockAffinity: 3, Groups: 6, HotFrac: 0.06,
	})
	var text, binBuf bytes.Buffer
	if err := trace.WriteText(&text, tr); err != nil {
		fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
		os.Exit(1)
	}
	if err := trace.WriteBinary(&binBuf, tr); err != nil {
		fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("Streaming vs materialized, %d events (%d threads), text %d bytes / binary %d bytes:\n",
		tr.Len(), tr.Meta.Threads, text.Len(), binBuf.Len())
	for _, info := range treeclock.EngineInfos() {
		po, ck, ok := bench.ForNames(info.Order, info.Clock)
		if !ok {
			fmt.Fprintf(os.Stderr, "tcbench: registry entry %q not known to the harness\n", info.Name)
			os.Exit(1)
		}
		mat := bench.Run(tr, bench.Config{PO: po, Clock: ck, Analysis: true})
		stream := func(r *bytes.Reader, opts ...treeclock.StreamOption) (time.Duration, *treeclock.StreamResult) {
			start := time.Now()
			res, err := treeclock.RunStream(info.Name, r, opts...)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tcbench: %s: %v\n", info.Name, err)
				os.Exit(1)
			}
			return time.Since(start), res
		}
		elText, resText := stream(bytes.NewReader(text.Bytes()))
		elBin, resBin := stream(bytes.NewReader(binBuf.Bytes()), treeclock.StreamBinary())
		if resText.Summary.Total != mat.Pairs || resBin.Summary.Total != mat.Pairs {
			fmt.Fprintf(os.Stderr, "tcbench: %s: pair counts diverge (materialized %d, text %d, bin %d)\n",
				info.Name, mat.Pairs, resText.Summary.Total, resBin.Summary.Total)
			os.Exit(1)
		}
		fmt.Printf("  %-10s materialized %8.0f ev/ms   stream-text %8.0f ev/ms   stream-bin %8.0f ev/ms   %d pairs\n",
			info.Name, evPerMS(tr.Len(), mat.Elapsed), evPerMS(tr.Len(), elText), evPerMS(tr.Len(), elBin), mat.Pairs)
	}
}

// evPerMS reports events per millisecond at microsecond resolution.
func evPerMS(events int, d time.Duration) float64 {
	return float64(events) / (float64(d.Microseconds())/1000 + 1e-9)
}

// writeJSONReport writes one experiment's machine-readable report:
// indented JSON plus a trailing newline, logged with the result count.
func writeJSONReport(path string, report any, results int) {
	payload, err := json.MarshalIndent(report, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(payload, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcbench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results)\n", path, results)
}

// parseIntList parses a comma-separated list of counts, each at least
// min (what names the quantity in errors).
func parseIntList(s string, min int, what string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		if n < min {
			return nil, fmt.Errorf("%s %d too small", what, n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
