// Command tcbench regenerates the paper's evaluation: Tables 1–3 and
// Figures 6–10, plus an ablation study of the tree clock's mechanisms.
//
// Usage:
//
//	tcbench -experiment table2            # one experiment
//	tcbench -experiment all -scale 0.5    # everything, smaller traces
//	tcbench -experiment fig10 -fig10-events 1000000 -fig10-threads 10,60,110
//
// Experiments: table1, table2, table3, fig6, fig7, fig8, fig9, fig10,
// ablation, all. Results print to stdout; see EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"treeclock/internal/bench"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "experiment to run: table1|table2|table3|fig6|fig7|fig8|fig9|fig10|ablation|all")
		scale       = flag.Float64("scale", 1.0, "suite event-count multiplier (1.0 ≈ hundreds of thousands of events per large trace)")
		repeats     = flag.Int("repeats", 3, "timing repetitions to average (paper: 3)")
		fig10Events = flag.Int("fig10-events", 400000, "events per scalability trace (paper: 10M)")
		fig10Thr    = flag.String("fig10-threads", "10,60,110,160,210,260,310,360", "comma-separated thread counts for the scalability sweep")
	)
	flag.Parse()

	threads, err := parseInts(*fig10Thr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcbench: bad -fig10-threads: %v\n", err)
		os.Exit(2)
	}
	h := bench.NewHarness(bench.Options{
		Scale:        *scale,
		Repeats:      *repeats,
		Fig10Events:  *fig10Events,
		Fig10Threads: threads,
	})

	type exp struct {
		name string
		run  func()
	}
	all := []exp{
		{"table1", func() { h.Table1(os.Stdout) }},
		{"table3", func() { h.Table3(os.Stdout) }},
		{"table2", func() { h.Table2(os.Stdout) }},
		{"fig6", func() { h.Figure6(os.Stdout) }},
		{"fig7", func() { h.Figure7(os.Stdout) }},
		{"fig8", func() { h.Figure8(os.Stdout) }},
		{"fig9", func() { h.Figure9(os.Stdout) }},
		{"fig10", func() { h.Figure10(os.Stdout) }},
		{"ablation", func() { h.Ablation(os.Stdout) }},
	}

	want := strings.ToLower(*experiment)
	ran := false
	for _, e := range all {
		if want == "all" || want == e.name {
			start := time.Now()
			e.run()
			fmt.Printf("[%s took %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "tcbench: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		if n < 2 {
			return nil, fmt.Errorf("thread count %d too small", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
