package main

// The ingest experiment measures end-to-end ingestion throughput —
// parse + analyze, the events/second metric the CSST line of work
// reports — for every registry engine across the two trace formats and
// the three consumption modes: scalar (one interface call per event,
// the pre-batching loop), batch (the default: NextBatch into a
// caller-owned buffer) and pipeline (decoding overlapped with analysis
// in a separate goroutine). With -json the results are also written as
// a machine-readable report (BENCH_ingest.json) so the repo's perf
// trajectory is tracked release over release.

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"time"

	"treeclock"
	"treeclock/internal/gen"
	"treeclock/internal/trace"
)

// ingestTraceInfo describes the measured workload.
type ingestTraceInfo struct {
	Name        string `json:"name"`
	Events      int    `json:"events"`
	Threads     int    `json:"threads"`
	Locks       int    `json:"locks"`
	Vars        int    `json:"vars"`
	TextBytes   int    `json:"text_bytes"`
	BinaryBytes int    `json:"binary_bytes"`
}

// ingestResult is one engine × format × mode measurement. For the
// wcp engines each cell is measured twice — once per weak-clock
// transport — and Weak says which: "sparse" is the default segment
// representation, "flat" the Θ(threads) vector baseline it is compared
// against. The field is empty for engines without a weak transport.
type ingestResult struct {
	Trace          string  `json:"trace"`
	Engine         string  `json:"engine"`
	Format         string  `json:"format"`
	Mode           string  `json:"mode"`
	Weak           string  `json:"weak,omitempty"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	Pairs          uint64  `json:"pairs"`
}

// ingestReport is the -json payload.
type ingestReport struct {
	Experiment string            `json:"experiment"`
	GoVersion  string            `json:"go_version"`
	Repeats    int               `json:"repeats"`
	Traces     []ingestTraceInfo `json:"traces"`
	Results    []ingestResult    `json:"results"`
}

// ingestModes are the consumption strategies under comparison; the
// option list parameterizes RunStream.
var ingestModes = []struct {
	name string
	opts []treeclock.StreamOption
}{
	// The batch row pins WithPipeline(0): RunStream now auto-pipelines
	// text input on multi-core hosts, and this experiment is exactly
	// the place the synchronous and pipelined paths are compared.
	{"scalar", []treeclock.StreamOption{treeclock.StreamScalar()}},
	{"batch", []treeclock.StreamOption{treeclock.WithPipeline(0)}},
	{"pipeline", []treeclock.StreamOption{treeclock.WithPipeline(4)}},
}

// treeclockEngineOrder looks up a registry engine's partial order.
func treeclockEngineOrder(name string) string {
	for _, info := range treeclock.EngineInfos() {
		if info.Name == name {
			return info.Order
		}
	}
	return ""
}

// ingestExperiment runs the sweep and optionally writes the JSON
// report. events sizes the generated workloads; repeats picks the best
// of N timings per cell (minimum, the standard for throughput).
func ingestExperiment(events, repeats int, jsonPath string) {
	if repeats < 1 {
		repeats = 1
	}
	workloads := []*trace.Trace{
		gen.Mixed(gen.Config{
			Name: "ingest-mixed", Threads: 32, Locks: 24, Vars: 4096,
			Events: events, Seed: 11, SyncFrac: 0.25,
			LockAffinity: 3, Groups: 6, HotFrac: 0.06,
		}),
		gen.Star(32, events/2, 7),
	}
	report := ingestReport{
		Experiment: "ingest",
		GoVersion:  runtime.Version(),
		Repeats:    repeats,
	}
	for _, tr := range workloads {
		var text, bin bytes.Buffer
		if err := trace.WriteText(&text, tr); err != nil {
			fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
			os.Exit(1)
		}
		if err := trace.WriteBinary(&bin, tr); err != nil {
			fmt.Fprintf(os.Stderr, "tcbench: %v\n", err)
			os.Exit(1)
		}
		report.Traces = append(report.Traces, ingestTraceInfo{
			Name: tr.Meta.Name, Events: tr.Len(), Threads: tr.Meta.Threads,
			Locks: tr.Meta.Locks, Vars: tr.Meta.Vars,
			TextBytes: text.Len(), BinaryBytes: bin.Len(),
		})
		fmt.Printf("Ingestion sweep over %q: %d events, %d threads (text %d bytes, binary %d bytes):\n",
			tr.Meta.Name, tr.Len(), tr.Meta.Threads, text.Len(), bin.Len())
		formats := []struct {
			name string
			data []byte
			opts []treeclock.StreamOption
		}{
			{"text", text.Bytes(), nil},
			{"bin", bin.Bytes(), []treeclock.StreamOption{treeclock.StreamBinary()}},
		}
		for _, name := range treeclock.Engines() {
			// The wcp engines measure both weak-clock transports; the
			// two must report identical pairs (they are differentially
			// pinned byte for byte), so the consistency check spans the
			// variants too.
			variants := []struct {
				weak string
				opts []treeclock.StreamOption
			}{{"", nil}}
			if treeclockEngineOrder(name) == "wcp" {
				variants = []struct {
					weak string
					opts []treeclock.StreamOption
				}{
					{"sparse", nil},
					{"flat", []treeclock.StreamOption{treeclock.WithFlatWeakClocks()}},
				}
			}
			for _, f := range formats {
				var pairs uint64
				first := true
				for _, v := range variants {
					label := name
					if v.weak != "" {
						label += "/" + v.weak
					}
					line := fmt.Sprintf("  %-17s %-5s", label, f.name)
					for _, mode := range ingestModes {
						opts := append(append([]treeclock.StreamOption{}, f.opts...), mode.opts...)
						opts = append(opts, v.opts...)
						res := measureIngest(tr.Meta.Name, name, f.name, mode.name, f.data, opts, repeats)
						res.Weak = v.weak
						if first {
							pairs, first = res.Pairs, false
						} else if res.Pairs != pairs {
							fmt.Fprintf(os.Stderr, "tcbench: %s/%s: %s/%s mode diverges (%d pairs, want %d)\n",
								name, f.name, mode.name, v.weak, res.Pairs, pairs)
							os.Exit(1)
						}
						report.Results = append(report.Results, res)
						line += fmt.Sprintf("   %s %8.0f ev/ms (%5.1f ns/ev, %5.3f allocs/ev)",
							mode.name, res.EventsPerSec/1000, res.NsPerEvent, res.AllocsPerEvent)
					}
					fmt.Println(line + fmt.Sprintf("   %d pairs", pairs))
				}
			}
		}
	}
	if jsonPath != "" {
		writeJSONReport(jsonPath, &report, len(report.Results))
	}
}

// measureIngest times one cell, reporting the best run and its
// allocation count per event (via runtime.MemStats deltas; the GC's
// own allocations make the figure an upper bound).
func measureIngest(traceName, engine, format, mode string, data []byte, opts []treeclock.StreamOption, repeats int) ingestResult {
	var (
		best   time.Duration = -1
		allocs float64
		res    *treeclock.StreamResult
	)
	for i := 0; i < repeats; i++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		r, err := treeclock.RunStream(engine, bytes.NewReader(data), opts...)
		el := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcbench: %s/%s/%s: %v\n", engine, format, mode, err)
			os.Exit(1)
		}
		if best < 0 || el < best {
			best = el
			allocs = float64(after.Mallocs - before.Mallocs)
			res = r
		}
	}
	n := float64(res.Events)
	if n == 0 {
		// A degenerate workload (tiny -stream-events) must not poison
		// the report with Inf/NaN, which JSON cannot encode.
		return ingestResult{Trace: traceName, Engine: engine, Format: format, Mode: mode}
	}
	return ingestResult{
		Trace:          traceName,
		Engine:         engine,
		Format:         format,
		Mode:           mode,
		EventsPerSec:   n / best.Seconds(),
		NsPerEvent:     float64(best.Nanoseconds()) / n,
		AllocsPerEvent: allocs / n,
		Pairs:          res.Summary.Total,
	}
}
