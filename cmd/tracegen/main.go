// Command tracegen synthesizes execution traces and writes them in the
// text or binary trace format.
//
// Usage:
//
//	tracegen -pattern mixed -threads 8 -locks 4 -vars 64 -events 100000 > trace.txt
//	tracegen -pattern star -threads 32 -events 500000 -format bin -o star.tr
//	tracegen -pattern pairwise -threads 16 -seed 7 | tcrace -algo shb
//
// Patterns: mixed, single-lock, fifty-locks, star, pairwise,
// producer-consumer, pipeline, barrier, readers-writers,
// readers-writers-racy, fork-join.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"treeclock/internal/gen"
	"treeclock/internal/trace"
)

func main() {
	var (
		pattern  = flag.String("pattern", "mixed", "workload pattern")
		threads  = flag.Int("threads", 8, "number of threads")
		locks    = flag.Int("locks", 4, "number of locks (mixed pattern)")
		vars     = flag.Int("vars", 64, "number of variables (mixed pattern)")
		events   = flag.Int("events", 100000, "approximate number of events")
		seed     = flag.Int64("seed", 1, "random seed")
		syncFrac = flag.Float64("sync", 0.2, "critical-section start probability (mixed)")
		readFrac = flag.Float64("reads", 0.6, "fraction of accesses that are reads (mixed)")
		format   = flag.String("format", "text", "output format: text or bin")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	tr, err := build(*pattern, *threads, *locks, *vars, *events, *seed, *syncFrac, *readFrac)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(2)
	}
	if err := tr.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: generated trace failed validation: %v\n", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "text":
		err = trace.WriteText(w, tr)
	case "bin":
		err = trace.WriteBinary(w, tr)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	s := trace.ComputeStats(tr)
	fmt.Fprintf(os.Stderr, "tracegen: %s: %d events, %d threads, %d vars, %d locks, %.1f%% sync\n",
		tr.Meta.Name, s.Events, s.Threads, s.Vars, s.Locks, s.SyncPct)
}

func build(pattern string, threads, locks, vars, events int, seed int64, syncFrac, readFrac float64) (*trace.Trace, error) {
	switch pattern {
	case "mixed":
		return gen.Mixed(gen.Config{
			Name: "mixed", Threads: threads, Locks: locks, Vars: vars,
			Events: events, Seed: seed, SyncFrac: syncFrac, ReadFrac: readFrac,
		}), nil
	case "single-lock":
		return gen.SingleLock(threads, events, seed), nil
	case "fifty-locks":
		return gen.FiftyLocksSkewed(threads, events, seed), nil
	case "star":
		return gen.Star(threads, events, seed), nil
	case "pairwise":
		return gen.Pairwise(threads, events, seed), nil
	case "producer-consumer":
		p := threads / 2
		if p == 0 {
			p = 1
		}
		return gen.ProducerConsumer(p, threads-p, events, seed), nil
	case "pipeline":
		return gen.Pipeline(threads, events, seed), nil
	case "barrier":
		phases := events / (threads * 12)
		if phases < 1 {
			phases = 1
		}
		return gen.BarrierPhases(threads, phases, 8, seed), nil
	case "readers-writers":
		return gen.ReadersWriters(threads, events, seed, false), nil
	case "readers-writers-racy":
		return gen.ReadersWriters(threads, events, seed, true), nil
	case "fork-join":
		per := events / (threads * 5)
		if per < 1 {
			per = 1
		}
		return gen.ForkJoinTree(threads, per, seed), nil
	default:
		return nil, fmt.Errorf("unknown pattern %q", pattern)
	}
}
