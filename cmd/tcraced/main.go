// Command tcraced is the multi-tenant analysis daemon: a long-lived
// server that accepts trace sessions over TCP or a unix socket and
// runs each one as a push-mode treeclock.Session, multiplexed across a
// bounded pool with per-session budgets.
//
// Usage:
//
//	tcraced                                  # listen on 127.0.0.1:7455
//	tcraced -listen 0.0.0.0:9000             # explicit TCP endpoint
//	tcraced -listen /run/tcraced.sock        # unix socket (inferred)
//	tcraced -max-sessions 16                 # bound the session pool
//	tcraced -max-retained-bytes 268435456    # evict sessions over 256 MiB
//	tcraced -max-events-per-sec 5e6          # throttle each feed to 5M ev/s
//	tcraced -spool /var/lib/tcraced          # durable checkpoint directory
//
// Clients speak the length-prefixed binary framing of
// treeclock/internal/daemon; tcrace -remote is the stock client. A
// typical exchange:
//
//	$ tcraced -spool /tmp/spool &
//	tcraced: listening on 127.0.0.1:7455 (spool /tmp/spool)
//	$ tcrace -remote 127.0.0.1:7455 -engine wcp-tree big.txt
//	trace: 40000000 events, 64 threads, 4096 vars, 128 locks (streamed, no prior metadata)
//	wcp-tree: 12 concurrent conflicting pairs detected in 9.207s
//	$ tcrace -daemon-stats 127.0.0.1:7455
//	{ "uptime_sec": 41, "sessions_finished": 1, ... }
//
// Every session checkpoints to <spool>/<session id>.ckpt on a cadence
// (-checkpoint-every), on detach, on eviction, and on abrupt
// disconnect — so killing the daemon (even kill -9 between cadence
// points) loses at most the events after the last checkpoint, and a
// restarted daemon resumes the session from its spooled frontier when
// the client re-opens it with the same id and re-feeds the tail. The
// finished report is byte-identical to an uninterrupted library run.
//
// Budgets are per session: -max-retained-bytes evicts an over-budget
// session with a final checkpoint (the client sees the resumable
// position), and -max-events-per-sec throttles the feed with a token
// bucket rather than rejecting it. SIGINT/SIGTERM shut the daemon
// down cleanly: live sessions get a courtesy checkpoint on the way
// out.
//
// Exit codes:
//
//	0  clean shutdown (signal or test-driven Close)
//	1  the listener failed while serving
//	2  usage error (bad flags, unusable listen address or spool)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"treeclock/internal/daemon"
)

// Exit codes; see the package comment.
const (
	exitClean = 0
	exitServe = 1
	exitUsage = 2
)

// hookServer, when set by a test, receives the listening server right
// before Serve, instead of installing signal handlers — the test owns
// shutdown.
var hookServer func(*daemon.Server)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// exitCodesDoc is appended to -h output; the cmd test pins it.
const exitCodesDoc = `
Exit codes:
  0  clean shutdown (signal or test-driven Close)
  1  the listener failed while serving
  2  usage error (bad flags, unusable listen address or spool)
`

// printUsage writes the flag summary and the exit-code contract to w.
func printUsage(fs *flag.FlagSet, w io.Writer) {
	fmt.Fprintf(w, "usage: tcraced [flags]\n\nFlags:\n")
	fs.SetOutput(w)
	fs.PrintDefaults()
	fmt.Fprint(w, exitCodesDoc)
}

// run is the whole daemon, factored from main so tests can drive a
// full serve/shutdown cycle in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tcraced", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen        = fs.String("listen", "127.0.0.1:7455", "listen address: host:port for tcp, a path for a unix socket")
		network       = fs.String("network", "", "listen network: tcp or unix (empty = inferred from -listen)")
		spool         = fs.String("spool", filepath.Join(os.TempDir(), "tcraced-spool"), "spool directory for per-session resume checkpoints")
		maxSessions   = fs.Int("max-sessions", 64, "concurrently active session bound; opens beyond it wait for a slot")
		maxRetained   = fs.Uint64("max-retained-bytes", 0, "per-session retained-state budget; over-budget sessions are evicted with a final checkpoint (0 = unbudgeted)")
		maxRate       = fs.Float64("max-events-per-sec", 0, "per-session feed-rate budget, enforced by throttling (0 = unthrottled)")
		ckptEvery     = fs.Uint64("checkpoint-every", 0, "events between spool checkpoints per session (0 = one per million events)")
		progressEvery = fs.Uint64("progress-every", 1<<16, "events between progress frames to each client")
		memEvery      = fs.Uint64("mem-check-every", 1<<12, "events between per-session memory-budget samples")
		quiet         = fs.Bool("quiet", false, "suppress per-session operational log lines on stderr")
	)
	fs.Usage = func() {}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			printUsage(fs, stdout)
			return exitClean
		}
		printUsage(fs, stderr)
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "tcraced: unexpected argument %q\n", fs.Arg(0))
		return exitUsage
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(stderr, "tcraced: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	srv, err := daemon.New(daemon.Config{
		Network:          *network,
		Addr:             *listen,
		SpoolDir:         *spool,
		MaxSessions:      *maxSessions,
		MaxRetainedBytes: *maxRetained,
		MaxEventsPerSec:  *maxRate,
		CheckpointEvery:  *ckptEvery,
		ProgressEvery:    *progressEvery,
		MemCheckEvery:    *memEvery,
		Now:              time.Now,
		Sleep:            time.Sleep,
		Logf:             logf,
	})
	if err != nil {
		fmt.Fprintf(stderr, "tcraced: %v\n", err)
		return exitUsage
	}
	fmt.Fprintf(stdout, "tcraced: listening on %s (spool %s)\n", srv.Addr(), *spool)

	if hookServer != nil {
		hookServer(srv)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			s := <-sig
			fmt.Fprintf(stdout, "tcraced: %v: shutting down\n", s)
			srv.Close()
		}()
		defer signal.Stop(sig)
	}

	if err := srv.Serve(); err != nil {
		fmt.Fprintf(stderr, "tcraced: serve: %v\n", err)
		srv.Close()
		return exitServe
	}
	srv.Close()
	fmt.Fprintf(stdout, "tcraced: shut down\n")
	return exitClean
}
