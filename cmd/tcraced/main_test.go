package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"treeclock"
	"treeclock/internal/daemon"
)

// runDaemon starts run() in a goroutine with the test hook installed
// and returns the listening server, a memoized shutdown func (Close +
// wait, returning the exit code), and the captured stdout.
func runDaemon(t *testing.T, args ...string) (*daemon.Server, func() int, *bytes.Buffer) {
	t.Helper()
	ready := make(chan *daemon.Server, 1)
	hookServer = func(s *daemon.Server) { ready <- s }
	t.Cleanup(func() { hookServer = nil })
	var out, errBuf bytes.Buffer
	done := make(chan int, 1)
	go func() { done <- run(args, &out, &errBuf) }()
	var srv *daemon.Server
	select {
	case srv = <-ready:
	case code := <-done:
		t.Fatalf("daemon exited before listening: code %d (stderr: %s)", code, errBuf.String())
	}
	var once sync.Once
	code := -1
	shutdown := func() int {
		once.Do(func() {
			srv.Close()
			select {
			case code = <-done:
			case <-time.After(10 * time.Second):
				t.Error("daemon did not exit after Close")
			}
		})
		return code
	}
	t.Cleanup(func() { shutdown() })
	return srv, shutdown, &out
}

// TestHelpDocumentsExitCodes pins that -h exits 0 and prints the
// exit-code contract on stdout.
func TestHelpDocumentsExitCodes(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-h"}, &out, &errBuf); code != exitClean {
		t.Fatalf("-h: exit %d, want %d", code, exitClean)
	}
	if errBuf.Len() != 0 {
		t.Fatalf("-h wrote to stderr:\n%s", errBuf.String())
	}
	for _, want := range []string{
		"usage: tcraced",
		"Exit codes:",
		"0  clean shutdown (signal or test-driven Close)",
		"1  the listener failed while serving",
		"2  usage error (bad flags, unusable listen address or spool)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-h output missing %q:\n%s", want, out.String())
		}
	}
}

// TestUsageErrors pins exit 2 for bad invocations.
func TestUsageErrors(t *testing.T) {
	cases := map[string][]string{
		"bad flag":       {"-no-such-flag"},
		"stray arg":      {"stray"},
		"bad listen":     {"-listen", "127.0.0.1:notaport", "-spool", t.TempDir()},
		"unusable spool": {"-listen", "127.0.0.1:0", "-spool", filepath.Join(writeFile(t), "sub")},
	}
	for name, args := range cases {
		t.Run(name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			if code := run(args, &out, &errBuf); code != exitUsage {
				t.Fatalf("exit %d, want %d (stderr: %s)", code, exitUsage, errBuf.String())
			}
		})
	}
}

// writeFile creates a plain file so using it as a directory prefix
// fails.
func writeFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServeSession drives a full session against an in-process daemon
// started through run(): open, feed, finish, and byte-compare the
// result with a direct library run.
func TestServeSession(t *testing.T) {
	srv, shutdown, out := runDaemon(t,
		"-listen", "127.0.0.1:0", "-spool", t.TempDir(), "-quiet")

	tr := treeclock.GenerateMixed(treeclock.GenConfig{
		Threads: 4, Locks: 3, Vars: 16, Events: 1200, SyncFrac: 0.3, Seed: 9,
	})
	want, err := treeclock.RunStreamSource("hb-tree", treeclock.NewTraceReplayer(tr))
	if err != nil {
		t.Fatal(err)
	}

	c, err := daemon.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pos, err := c.Open("cmdtest", "hb-tree")
	if err != nil {
		t.Fatal(err)
	}
	if pos != 0 {
		t.Fatalf("fresh session opened at %d", pos)
	}
	if _, err := c.FeedSource(treeclock.NewTraceReplayer(tr), 0); err != nil {
		t.Fatal(err)
	}
	got, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary.Total != want.Summary.Total || got.Events != want.Events {
		t.Fatalf("daemon result diverges: got %d races / %d events, want %d / %d",
			got.Summary.Total, got.Events, want.Summary.Total, want.Events)
	}

	if code := shutdown(); code != exitClean {
		t.Fatalf("daemon exit %d, want %d", code, exitClean)
	}
	if !strings.Contains(out.String(), "listening on") {
		t.Fatalf("startup line missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "shut down") {
		t.Fatalf("shutdown line missing:\n%s", out.String())
	}
}
