// Package treeclock implements the tree clock data structure and
// tree-clock-based partial-order analyses for concurrent executions,
// reproducing "A Tree Clock Data Structure for Causal Orderings in
// Concurrent Executions" (Mathur, Pavlogiannis, Tunç, Viswanathan —
// ASPLOS 2022).
//
// A tree clock represents a vector timestamp — one logical time per
// thread — like a classic vector clock, but stores it hierarchically:
// the tree records through which thread each time was learned, so join
// and copy operations touch only the entries that can actually change
// instead of all k of them. For the happens-before (HB) partial order,
// tree clocks are vt-optimal: the total data-structure time is within a
// constant of the number of timestamp entries any implementation must
// update (the paper's Theorem 1).
//
// # Layout
//
//   - The clock data structures: NewTreeClock (the contribution) and
//     NewVectorClock (the Θ(k)-per-operation baseline). Both implement
//     the same operations (Get, Inc, Join, MonotoneCopy, ...).
//   - Traces: Event, Trace, ParseTrace / WriteTraceText and friends.
//   - Streaming engines computing a partial order over a trace, in
//     tree-clock and vector-clock variants: NewHBTree / NewHBVector,
//     NewSHBTree / NewSHBVector, NewMAZTree / NewMAZVector. Engines
//     optionally run a FastTrack-style race analysis.
//   - Workload generators (GenerateMixed, scenario generators) and the
//     experiment harness behind cmd/tcbench, which regenerates every
//     table and figure of the paper (see DESIGN.md and EXPERIMENTS.md).
//
// # Quickstart
//
//	tr, _ := treeclock.ParseTraceString(`
//	t0 acq l0
//	t0 w x0
//	t0 rel l0
//	t1 r x0
//	`)
//	e := treeclock.NewHBTree(tr.Meta)
//	det := e.EnableRaceDetection()
//	e.Process(tr.Events)
//	for _, race := range det.Acc.Samples {
//		fmt.Println(race)
//	}
//
// See examples/ for complete programs.
package treeclock
