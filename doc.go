// Package treeclock implements the tree clock data structure and
// tree-clock-based partial-order analyses for concurrent executions,
// reproducing "A Tree Clock Data Structure for Causal Orderings in
// Concurrent Executions" (Mathur, Pavlogiannis, Tunç, Viswanathan —
// ASPLOS 2022).
//
// A tree clock represents a vector timestamp — one logical time per
// thread — like a classic vector clock, but stores it hierarchically:
// the tree records through which thread each time was learned, so join
// and copy operations touch only the entries that can actually change
// instead of all k of them. For the happens-before (HB) partial order,
// tree clocks are vt-optimal: the total data-structure time is within a
// constant of the number of timestamp entries any implementation must
// update (the paper's Theorem 1).
//
// # Architecture
//
// All partial-order engines are one shared streaming runtime
// (internal/engine) plus a small per-order Semantics plugin:
//
//   - The runtime owns the sync scaffolding common to every order:
//     per-thread and per-lock clocks, the Acquire/Release/Fork/Join
//     dispatch, the per-event local-time increment, event counting,
//     timestamps, and lazy allocation of state on first sight of an
//     identifier.
//   - A Semantics implementation (the plugin interface re-exported here
//     as Semantics) contributes only the Read and Write hooks and any
//     per-variable state the order needs: HB feeds the race detector,
//     SHB adds last-write clocks, MAZ adds the read-set bookkeeping of
//     Algorithm 5.
//   - Orders that depend on critical-section structure opt into the
//     engine's extension hooks: LockSemantics (Acquire/Release) and
//     ThreadSemantics (Fork/Join), detected once at construction and
//     invoked after the runtime's uniform handling. WCP — the
//     weakly-causally-precedes weak order of predictive race
//     detection, internal/wcp — uses them to maintain per-lock
//     critical-section histories and per-thread weak clocks; plain
//     Read/Write plugins are dispatched exactly as before.
//   - Clocks are dynamic: the vt.Clock contract includes Grow, and both
//     TreeClock and VectorClock extend their thread capacity on demand
//     (see the Grow contract in internal/core), so no engine needs the
//     trace's thread/lock/variable counts up front.
//
// # Sharded parallel analysis
//
// RunStreamParallel distributes the analysis across worker replicas
// (internal/parallel). The decomposition follows from what is and is
// not independent in a partial-order analysis:
//
//   - Per-variable analysis state is independent across variables — an
//     epoch check for x never reads the state of y — so variables
//     partition across workers by stable hash, and each variable's
//     race checks, access history and read vectors live on exactly one
//     worker.
//   - Clock evolution is not independent: sync events thread ordering
//     through every clock, and the stronger orders entangle even
//     accesses with it (SHB joins each read with the variable's last
//     write, MAZ with its read set, WCP with its release summaries).
//     Rather than serialize those effects through cross-worker
//     communication — a synchronization point per sync event — every
//     worker runs a complete engine replica over the complete stream.
//     A coordinator sequences decoded batches into per-worker SPSC
//     ring queues in trace order (batches are shared read-only and
//     refcount-recycled, reusing the pipelined decoder's buffer
//     discipline), so each replica performs the identical,
//     deterministic clock evolution of the sequential engine, with no
//     locks and no cross-worker traffic on the hot path.
//
// Reports stay deterministic — byte-identical to sequential RunStream,
// pinned across the whole registry and generator suite by
// TestParallelMatchesSequential — because each pair is detected by
// exactly one worker (its variable's owner) using timestamps equal to
// the sequential run's, samples carry global trace positions and merge
// back in trace order (analysis.MergeAccumulators), and counts sum
// over disjoint shards. Timestamps and metadata come from any replica
// (all identical); StreamResult.Mem sums the replicas' retained state,
// which is the honest accounting of what sharding costs: clock
// scaffolding is replicated so that per-variable analysis — the
// dominant per-event cost on access-heavy workloads — can be
// distributed. Speedup is therefore largest for the detector-backed
// orders (HB, SHB) and bounded by the analysis share of the per-event
// cost in general; the multicore CI lane records the sweep
// (cmd/tcbench -experiment parallel, BENCH_parallel.json).
//
// Adding a new partial order is a three-step recipe: (1) write a
// Semantics plugin in a new internal package — Read/Write hooks plus
// whatever per-variable state the order needs, growing it on first
// sight of an identifier; implement LockSemantics/ThreadSemantics only
// if the order observes critical sections or thread structure.
// (2) Extend internal/oracle with a definition-level reference for the
// order and pin the plugin against it with step-by-step timestamp
// tests (the internal/hb and internal/wcp test files are templates);
// the registry-wide harnesses — TestStreamingMatchesMaterialized,
// TestClockVariantsByteIdentical, TestSuiteAgainstOracle — then cover
// it automatically. (3) Register "<order>-tree"/"<order>-vc" in the
// engine registry (stream.go) and add the order to bench.ForNames so
// cmd/tcrace, cmd/tcbench and RunStream all pick it up.
//
// # Streaming analysis
//
// RunStream is the one-pass API built on that runtime: it feeds a
// trace from a plain io.Reader (text or binary format, see
// NewTraceScanner and NewBinaryTraceScanner) straight through an
// engine with no prior Meta and no materialization; RunStreamSource
// does the same from any EventSource — including the endless workload
// generators (GenerateHotLockStream, GenerateRotatingLocksStream,
// GenerateChurningVarsStream, capped with LimitEvents), so soak
// scenarios of unbounded length need no trace bytes at all;
// RunStreamParallel and RunStreamParallelSource shard the analysis
// across worker replicas with byte-identical results (see "Sharded
// parallel analysis" below). Engines
// are chosen by registry name — "hb-tree", "hb-vc", "shb-tree",
// "shb-vc", "maz-tree", "maz-vc", "wcp-tree", "wcp-vc" (see Engines
// and EngineInfos) — and the result carries the race summary, sample
// pairs, discovered metadata and final timestamps.
// The streaming and materialized paths are differentially tested to
// produce identical race reports and timestamps, the tree-clock and
// vector-clock variants of every order are pinned byte-identical, and
// each order's engine is compared event-by-event against a
// definition-level oracle (internal/oracle) over the whole generator
// suite.
//
// # Memory model
//
// On an unbounded stream, memory is proportional to the live
// identifier spaces (threads, locks, touched variables), never the
// trace length. For HB, SHB and MAZ that falls out of the clock state
// alone. WCP additionally keeps per-lock critical-section histories
// whose entries each pin a Θ(threads) snapshot; these are compacted —
// an entry is dropped as soon as a thread other than its releaser has
// absorbed it through WCP's rule (b), which is exactly when every
// possible later absorption becomes a no-op (internal/wcp documents
// the argument), and the freed snapshots are recycled. The retained
// history is then the unabsorbed tail: O(threads) entries on
// workloads whose critical sections conflict, growing only when the
// WCP definition itself still needs the entries. Engines with such
// inherently event-dependent state report it through the
// engine.MemReporter extension, surfaced as StreamResult.Mem — live
// and peak history lengths, compacted-entry counts and retained bytes
// — asserted by a 5M-event soak test and tracked by cmd/tcbench
// -experiment mem (BENCH_mem.json); cmd/traceinfo -wcp breaks the
// numbers down per lock.
//
// "Proportional to the live identifier spaces" is still unbounded when
// the spaces themselves churn: a month-long stream forks threads, then
// touches variables, then spells identifier names that are never seen
// again, and each leaves residue — a clock slot, a rule-(a) summary, an
// interner entry — that outlives its subject. Three opt-in caps bound
// those residues:
//
//   - WithSlotReclaim retires a thread's clock slot once the thread is
//     fully joined: external thread ids are remapped to internal slots
//     at dispatch, a retired slot's component is erased from the
//     legacy clock (vt.Clock.ReleaseSlot), and the slot is reissued to
//     a later fork only when the forking thread's clock already
//     dominates the slot's final legacy time — the gate that makes
//     reuse indistinguishable from a fresh slot. Clock width then tracks the peak number of
//     concurrently live threads, not the number of threads the trace
//     ever named. Race reports are unchanged except that reported
//     thread ids are slot numbers. The predictive engines are excluded
//     (WithSlotReclaim fails for wcp-*): rule-(a) summaries and
//     rule-(b) cursors keep per-thread state that must survive the
//     thread's join.
//   - WithSummaryCap(n) ages out WCP rule-(a) summaries whose
//     snapshots are dominated by the lock's latest published release
//     clock (see internal/wcp's package comment for the soundness
//     argument); live summaries plateau near n with reports identical
//     to the unbounded run's.
//   - WithInternCap(n) evicts the coldest interned identifier names
//     above n per space from the text scanner. A name seen again after
//     eviction becomes a fresh identity — sound for race detection
//     (the analysis never unifies accesses across the gap it would
//     otherwise have kept), but reported ids for such names differ
//     from an uncapped run; text input only.
//
// All three surface their accounting through StreamResult.Mem
// (ThreadSlots/RetiredSlots/ReusedSlots, SummaryEvictions,
// InternedNames/InternEvictions), are preserved across
// checkpoint/resume with byte-identical crash equivalence, and are
// measured by the mem experiment's churn section and the churn soak
// tests (churn_soak_test.go: a 50M-event fork churn holds clock
// capacity at 9 slots). cmd/tcrace exposes them as -reclaim-slots,
// -summary-cap and -intern-cap.
//
// # Weak clocks and why tree clocks don't apply
//
// WCP's per-thread state is a pair of clocks, and only one of them is
// a tree clock. The strong backbone — the thread's HB-ish clock that
// sync events join through — satisfies the tree-clock preconditions:
// every thread owns its entry, knowledge of a thread always flows
// from that thread's clock, and release-time copies are monotone
// (Lemma 2), so the hierarchical representation and its pruned
// traversals apply as in the paper. The weak clock does not. By
// definition, a thread's WCP clock excludes its own current critical
// sections: its own entry is deliberately stale, and what it learns
// about other threads arrives through release snapshots and rule-(b)
// absorption rather than whole-clock joins from the owning thread.
// That breaks the tree clock's central invariant — that a subtree
// rooted at u was learned through u and is therefore exactly u's past
// — so the pruning arguments (direct and indirect monotonicity) are
// unsound for weak time: a "not progressed" root no longer implies an
// unchanged subtree. The same observation motivates the sparse
// segment representation used instead (following the CSST line of
// work, Tunç et al.): weak clocks evolve by absorbing immutable
// release snapshots, so the profitable structure is not a
// learned-through tree but block-level sharing between a release and
// the releaser's previous release. internal/vt/weak.go defines the
// two-sided contract (WeakClock, SnapStore), internal/vt/sparse.go
// the copy-on-write segment-list implementation that the WCP engines
// use by default (WithFlatWeakClocks selects the Θ(threads) flat
// baseline, and the differential suites pin the two byte-identical).
//
// # Batched ingestion
//
// Ingestion is batched end to end. The text scanner is a byte-level
// tokenizer over a reused read buffer — no per-line strings, identifier
// names copied only on first sight — that runs at zero allocations per
// event in steady state; every event source (both scanners, the
// validator, the in-memory TraceReplayer) also delivers events in bulk
// through BatchEventSource, and the engine runtime pulls batches into a
// caller-owned buffer automatically, amortizing interface dispatch to
// once per batch. Two RunStream knobs control the mode: StreamScalar
// forces the per-event loop (for comparison), and WithPipeline(depth)
// moves decoding into its own goroutine behind a ring of recycled
// batch buffers so parsing overlaps analysis — the default for text
// input when GOMAXPROCS > 1 (binary decode is too cheap to win the
// hand-off, and sharded runs overlap decode in the coordinator
// already; WithPipeline(0) or StreamScalar force the synchronous
// path). Batches are consumed strictly in order, so every mode
// produces byte-identical race reports — a property pinned by
// differential fuzz tests across every registry engine. cmd/tcbench
// -experiment ingest measures the modes against each other and, with
// -json, emits a machine-readable BENCH_ingest.json report. For
// heavy-traffic ingestion, WithProgress(every, fn) reports the running
// event count and events/second rate from the consuming goroutine at
// batch granularity, on both RunStream and RunStreamParallel (tcrace
// -progress).
//
// # Checkpointing and crash equivalence
//
// Analysis state is checkpointable: WithCheckpoint(every, sink)
// serializes the complete engine state — clocks, detector and
// accumulator state, WCP histories, cursors and summaries including
// the refcounted sparse segment arenas, the interner tables, and the
// stream position — at the first batch boundary past every `every`
// events, and ResumeFrom(r) reconstructs it so the finished run's
// report is byte-identical to an uninterrupted one. The format
// (internal/ckpt) is length-prefixed, versioned and CRC-checked per
// section; a truncated, bit-flipped or mismatched checkpoint fails
// with an error wrapping ErrCorruptCheckpoint — never a panic — and a
// committed golden file pins the wire format against silent drift.
// Checkpoints are written whole (the sink receives only complete
// serializations; tcrace -checkpoint additionally writes
// temp-file-plus-rename), so a crash mid-write leaves the previous
// checkpoint usable.
//
// The guarantee is proven by fault injection, not argued: the crash
// harness (trace.NewCrashSource) kills the analysis at batch
// boundaries throughout the trace, resumes from the last checkpoint,
// and requires byte-identical reports, timestamps and retained-state
// accounting versus the uninterrupted run — across all eight registry
// engines, both weak-clock transports, the sequential and sharded
// parallel drivers, and under the race detector. In the parallel
// runtime a checkpoint is a barrier: the coordinator pauses every
// worker at the same trace position, serializes all replicas, and
// releases them, so a parallel checkpoint resumes into sequential or
// parallel runs interchangeably.
//
// Runs are also cancellable: WithContext(ctx) stops either driver at
// the next batch boundary when ctx is done, returning the partial
// StreamResult (events ingested so far, retained-state accounting)
// alongside ctx.Err(), with no goroutines left behind. cmd/tcrace
// surfaces all of it (-checkpoint, -checkpoint-every, -resume) with a
// documented exit-code contract: 0 clean, 1 races found, 2 usage or
// I/O error, 3 corrupt checkpoint, 4 remote session evicted.
//
// # Analysis as a service
//
// The streaming drivers are thin wrappers over a first-class Session:
// Open(engine, opts...) constructs and validates the configuration in
// one place, Feed(batch) pushes events incrementally, Snapshot(w)
// checkpoints mid-stream, Mem() reports retained-state accounting,
// and Result()/Close() seal the run. Everything the four RunStream*
// entry points do — sequential or sharded, pull or push — flows
// through this one core, so incremental feeding, mid-stream
// checkpointing, budget inspection and eviction/resume are library
// capabilities, not daemon-private forks.
//
// internal/daemon and cmd/tcraced build the multi-tenant service on
// top: a long-lived server multiplexing concurrent trace sessions
// over TCP or unix sockets. The wire protocol is length-prefixed
// binary framing (a uint32 length, a one-byte frame type, a payload
// that reuses the checkpoint codec for structured frames and bare
// varints for event batches); the client opens a named session,
// streams event frames, and receives progress, the final result — or
// an eviction. Session lifecycle is built for restarts nobody
// notices: every session checkpoints to a per-session spool file on
// a cadence, on detach and on disconnect, so a client (or the whole
// daemon) can die at any moment and a session with the same id plus
// Resume continues from the spooled frontier, re-feeding only the
// tail, with the finished report byte-identical to an uninterrupted
// library run — proven by fault-injected restart-equivalence tests
// across engines and worker counts, and again end to end (real
// kill -9, real processes) by the CI daemon lane.
//
// Two per-session budgets keep tenants isolated: a retained-bytes cap
// enforced through the MemStats accounting (over-budget sessions are
// evicted with a final checkpoint and a resumable position) and an
// events/sec cap enforced by throttling. A statistics endpoint
// reports uptime, the live session table, per-engine occupancy, and
// event/race rates over a sliding window. cmd/tcrace is the stock
// client: -remote ships a locally decoded trace to a daemon and
// renders the identical report, -resume-session continues an
// interrupted or evicted session (exit code 4 marks an eviction),
// and -daemon-stats prints the statistics snapshot as JSON.
//
// # Static analysis
//
// The invariants above are enforced twice: dynamically by the
// differential and fault-injection harnesses, and statically by
// cmd/tcvet, a vet-style multichecker over the four custom analyzers
// in internal/lint. Each analyzer encodes one documented contract and
// names the harness that proves it dynamically:
//
//   - refpair: every snapshot reference acquired from a sparse-store
//     Snapshot call must reach Drop, an Assign ownership transfer, or
//     a documented hand-off on every path, and must never be Dropped
//     twice — the refcount discipline of the copy-on-write segment
//     arenas ("Weak clocks" above; dynamically audited by the
//     FreeCount/Heap accounting in the vt and wcp tests).
//   - ckptsym: paired save/load functions (Save/Load, Snapshot/Restore
//     by naming convention) must Enc/Dec the same wire-kind sequence,
//     counts before elements, sections by matching name — the
//     checkpoint symmetry of "Checkpointing and crash equivalence"
//     (dynamically pinned by the golden file and the round-trip
//     harness, which once caught exactly this bug class as a
//     zigzag-vs-uvarint count mismatch).
//   - detrange: no unsorted map iteration may flow into checkpoint
//     encoders, accumulator reports, or order-accumulated slices, and
//     the engine/parallel/wcp/ckpt core must not touch time.Now or
//     math/rand — the replica-determinism property that keeps sharded
//     and resumed runs byte-identical ("Sharded parallel analysis";
//     dynamically proven by the parallel and crash differential
//     matrices).
//   - clockgrow: no Inc on a freshly constructed vt.Clock slot without
//     a dominating Grow/Init or capacity guard — the growth contract
//     of "Architecture" (Get beyond capacity is defined, Inc is not).
//
// `go run ./cmd/tcvet ./...` exits 0 on a clean tree, 1 on findings,
// 2 on load errors; a CI lint lane runs it (with staticcheck and
// govulncheck alongside) on every push, and the analyzers' golden
// corpora live under internal/lint/testdata. The analyzers fail open
// by design: code the abstractions cannot model is skipped, never
// flagged, so every diagnostic is actionable.
//
// # Layout
//
//   - The clock data structures: NewTreeClock (the contribution) and
//     NewVectorClock (the Θ(k)-per-operation baseline). Both implement
//     the same operations (Get, Inc, Grow, Join, MonotoneCopy, ...).
//   - Traces: Event, Trace, ParseTrace / WriteTraceText and friends,
//     plus the streaming scanners for both formats.
//   - Engines: RunStream with the registry for streaming use, and the
//     pre-sized constructors NewHBTree / NewHBVector, NewSHBTree /
//     NewSHBVector, NewMAZTree / NewMAZVector, NewWCPTree /
//     NewWCPVector for materialized traces. Engines optionally run a
//     FastTrack-style race analysis; WCP reports predictive races — a
//     superset of the HB races — through the same machinery.
//   - Workload generators (GenerateMixed, scenario generators) and the
//     experiment harness behind cmd/tcbench, which regenerates every
//     table and figure of the paper (see DESIGN.md and EXPERIMENTS.md)
//     and compares the streaming and materialized paths (-experiment
//     stream).
//
// # Quickstart
//
//	res, err := treeclock.RunStream("hb-tree", traceFile)
//	if err != nil {
//		log.Fatal(err)
//	}
//	fmt.Printf("%d events, %d races\n", res.Events, res.Summary.Total)
//	for _, race := range res.Samples {
//		fmt.Println(race)
//	}
//
// Or, materialized:
//
//	tr, _ := treeclock.ParseTraceString(`
//	t0 acq l0
//	t0 w x0
//	t0 rel l0
//	t1 r x0
//	`)
//	e := treeclock.NewHBTree(tr.Meta)
//	det := e.EnableRaceDetection()
//	e.Process(tr.Events)
//	for _, race := range det.Acc.Samples {
//		fmt.Println(race)
//	}
//
// See examples/ for complete programs.
package treeclock
