package treeclock

// The session core: every streaming analysis — the four RunStream*
// entry points, a checkpoint/resume cycle, a daemon-hosted trace that
// never ends — is one Session. Open validates the whole option set in
// one place and builds the engine replicas; the session then runs in
// exactly one of two modes, bound by the first driving call:
//
//   - Pull: Run(src) drains an event source to completion, the way the
//     classic entry points always have. The session owns the loop,
//     honoring cancellation, checkpoint cadence and progress reporting.
//   - Push: Feed(batch) hands the session pre-decoded events as they
//     arrive — from a socket, a log shipper, an in-process producer —
//     with Snapshot/Close under the caller's control. The trace has no
//     end until the caller says so; Result assembles what was seen.
//
// Both modes drive the same replicas through the same assembler, so a
// pushed stream's result is byte-identical to a pulled run of the same
// events (the differential suites pin this). Push-mode checkpoints
// record the delivered-event frontier in place of a decoder state; a
// resumed push session reports the position to re-feed from via
// Resumed.
//
// A Session is not safe for concurrent use: one goroutine feeds it.
// Distinct sessions are fully independent and may run concurrently.

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"treeclock/internal/analysis"
	"treeclock/internal/ckpt"
	"treeclock/internal/core"
	"treeclock/internal/engine"
	"treeclock/internal/parallel"
	"treeclock/internal/trace"
	"treeclock/internal/vc"
)

// Session lifecycle errors, pinned: these exact texts are part of the
// API (tests and remote-protocol error mapping match on them).
var (
	// ErrSessionClosed is returned by every operation on a closed session.
	ErrSessionClosed = errors.New("treeclock: session is closed")
	// ErrSessionRan is returned by a second Run on the same session.
	ErrSessionRan = errors.New("treeclock: session already ran (open a new session per trace)")
	// ErrFeedAfterRun is returned by Feed on a session that ran pull-mode.
	ErrFeedAfterRun = errors.New("treeclock: Feed on a pull-mode session (Run already consumed a source)")
	// ErrRunAfterFeed is returned by Run on a session that was fed push-mode.
	ErrRunAfterFeed = errors.New("treeclock: Run on a push-mode session (events were already fed)")
	// ErrSessionFinished is returned by Feed once Result has sealed the stream.
	ErrSessionFinished = errors.New("treeclock: Feed after Result (the stream is sealed)")
)

// sessionMode tracks which driving style the session is bound to.
type sessionMode uint8

const (
	sessionIdle   sessionMode = iota // no driving call yet
	sessionPull                      // Run consumed (or is consuming) a source
	sessionPush                      // Feed/Snapshot/Resumed drive it
	sessionClosed                    // Close ran
)

// Session is one streaming analysis in progress: the engine replicas,
// their configuration, and the driving state. Construct with Open,
// drive with Run (pull) or Feed/Snapshot (push), finish with Result
// (push) and Close. The four RunStream* entry points are wrappers over
// exactly this type.
type Session struct {
	info     EngineInfo
	cfg      streamConfig
	mode     sessionMode
	finished bool // Result sealed a push stream

	// engines holds one replica for the sequential path, cfg.workers
	// replicas for the sharded one; sinks are the per-replica WorkStats
	// accumulators the sharded path folds into cfg.stats at assembly.
	engines  []streamEngine
	sinks    []WorkStats
	parallel bool

	// Push-mode state, bound on the first Feed/Snapshot/Resumed call.
	group    *parallel.Group
	feed     *feedSource
	scratch  bytes.Buffer
	nextCkpt uint64

	// Pull-mode bookkeeping.
	scanner trace.InternCapable // capped interner, for result accounting

	err    error // sticky push-mode failure
	result *StreamResult
}

// Open validates the engine name and the complete option set and
// builds a session ready to run. All cross-option conflicts fail here,
// with the same pinned texts regardless of which entry point or mode
// the session is later driven by; checks that depend on the input
// source (WithInternCap's text requirement) fail on the first driving
// call instead. The returned session must be Closed.
func Open(engineName string, opts ...StreamOption) (*Session, error) {
	cfg := streamConfig{format: FormatText, analysis: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	return newSession(engineName, cfg)
}

// newSession is the single construction and validation path behind
// Open and the four RunStream* entry points.
func newSession(engineName string, cfg streamConfig) (*Session, error) {
	info, ok := engineRegistry[engineName]
	if !ok {
		return nil, fmt.Errorf("treeclock: unknown engine %q (have %v)", engineName, Engines())
	}
	if cfg.scalar && cfg.pipeline > 0 {
		return nil, fmt.Errorf("treeclock: StreamScalar and WithPipeline are mutually exclusive")
	}
	if cfg.scalar && (cfg.workers > 1 || cfg.forceParallel) {
		return nil, fmt.Errorf("treeclock: StreamScalar and WithWorkers are mutually exclusive")
	}
	if (cfg.ckptSink != nil || cfg.resume != nil) && cfg.pipeline > 0 {
		return nil, fmt.Errorf("treeclock: WithCheckpoint/ResumeFrom and WithPipeline are mutually exclusive (the pipelined decoder is not checkpointable)")
	}
	s := &Session{info: info, cfg: cfg, parallel: cfg.workers > 1 || cfg.forceParallel}
	if err := s.buildEngines(); err != nil {
		return nil, err
	}
	if cfg.ckptSink != nil || cfg.resume != nil {
		if !s.engines[0].Checkpointable() {
			return nil, fmt.Errorf("treeclock: engine %q does not support checkpointing", engineName)
		}
	}
	return s, nil
}

// buildEngines constructs the replica set: one engine for the
// sequential path; for the sharded path, cfg.workers full replicas,
// each owning one variable shard and counting work into its own
// WorkStats sink (a shared sink would race across workers).
func (s *Session) buildEngines() error {
	cfg := &s.cfg
	if !s.parallel {
		e, err := buildEngine(s.info, cfg, cfg.stats, nil)
		if err != nil {
			return err
		}
		s.engines = []streamEngine{e}
		return nil
	}
	n := cfg.workers
	if n < 1 {
		n = 1
	}
	s.engines = make([]streamEngine, n)
	if cfg.stats != nil {
		s.sinks = make([]WorkStats, n)
	}
	for w := 0; w < n; w++ {
		var sink *WorkStats
		if cfg.stats != nil {
			sink = &s.sinks[w]
		}
		owns := parallel.Owns(w, n)
		if !cfg.analysis {
			// Without analysis there is nothing to shard; the replicas
			// would all do identical work. Keep the contract (the path
			// still runs) but let every worker skip the gating closure.
			owns = nil
		}
		e, err := buildEngine(s.info, cfg, sink, owns)
		if err != nil {
			return err
		}
		s.engines[w] = e
	}
	return nil
}

// buildEngine instantiates one replica over the registry entry's clock
// type.
func buildEngine(info EngineInfo, cfg *streamConfig, sink *WorkStats, owns func(int32) bool) (streamEngine, error) {
	if info.Clock == "tree" {
		return newStreamEngine[*core.TreeClock](info.Order, core.Factory(sink), cfg, owns)
	}
	return newStreamEngine[*vc.VectorClock](info.Order, vc.Factory(sink), cfg, owns)
}

// Run drains src through the session to completion — the pull mode the
// four RunStream* entry points wrap. It binds the session: a second
// Run fails with ErrSessionRan, and Feed fails with ErrFeedAfterRun.
// On a driver error (cancellation, decode failure, a checkpoint sink
// failure) the partial StreamResult is returned alongside the error,
// internally consistent for exactly the events processed.
func (s *Session) Run(src EventSource) (*StreamResult, error) {
	switch s.mode {
	case sessionClosed:
		return nil, ErrSessionClosed
	case sessionPull:
		return nil, ErrSessionRan
	case sessionPush:
		return nil, ErrRunAfterFeed
	}
	s.mode = sessionPull
	// Interner eviction lives in the text tokenizer; the cap is applied
	// to the unwrapped scanner before any input is consumed, and the
	// scanner is remembered so the result can report the interner's
	// retained-state accounting.
	if s.cfg.internCap > 0 {
		sc, ok := src.(trace.InternCapable)
		if !ok {
			return nil, fmt.Errorf("treeclock: WithInternCap requires text input (source %T has no interned names)", src)
		}
		s.scanner = sc
		s.scanner.SetInternCap(s.cfg.internCap)
	}
	if s.parallel {
		return s.runSharded(src)
	}
	return s.runSequential(src)
}

// runSequential is the single-replica pull driver.
func (s *Session) runSequential(src trace.EventSource) (*StreamResult, error) {
	cfg := &s.cfg
	if cfg.validate {
		src = trace.NewValidator(src)
	}
	if cfg.pipeline > 0 {
		// The pipeline wraps the (validated) decoder, so tokenizing and
		// discipline checks both run in the decode goroutine.
		p := trace.NewPipeline(src, cfg.pipeline, trace.DefaultBatchSize)
		defer p.Close()
		src = p
	}
	if cfg.progressFn != nil {
		src = wrapProgress(src, cfg)
	}
	if cfg.pipeline <= 0 && cfg.scalar {
		src = scalarSource{src}
	}
	e := s.engines[0]
	if cfg.ckptSink != nil || cfg.resume != nil {
		cs, err := asCheckpointable(src)
		if err != nil {
			return nil, err
		}
		if cfg.resume != nil {
			if _, err := restoreCheckpoint(cfg, s.info.Name, 1, cs, s.engines); err != nil {
				return nil, err
			}
		}
	}
	err := driveSequential(e, src, cfg, s.info.Name)
	res := s.assembleResult()
	if err != nil {
		// The result still carries the consistent partial state (events
		// processed, retained-state accounting) for callers that want it
		// — a cancelled run's progress, a crashed run's accounting.
		return res, err
	}
	return res, nil
}

// runSharded is the multi-replica pull driver: the coordinator
// sequences batches into every worker's ring in trace order, and the
// merged result is byte-identical to the sequential run's. See
// internal/parallel for the transport design.
func (s *Session) runSharded(src trace.EventSource) (*StreamResult, error) {
	cfg := &s.cfg
	n := len(s.engines)
	if cfg.validate {
		// Validation is sequential by nature (lock discipline follows
		// trace order) and runs on the coordinator side, exactly once.
		src = trace.NewValidator(src)
	}
	if cfg.pipeline > 0 {
		p := trace.NewPipeline(src, cfg.pipeline, trace.DefaultBatchSize)
		defer p.Close()
		src = p
	}
	if cfg.progressFn != nil {
		src = wrapProgress(src, cfg)
	}

	// Checkpoint/resume: every replica's state goes into (and comes
	// back from) the checkpoint, in worker order, and the coordinator
	// takes snapshots at barriers where all workers stand at the same
	// trace position.
	var (
		startAt uint64
		cs      trace.CheckpointableSource
	)
	if cfg.ckptSink != nil || cfg.resume != nil {
		var err error
		cs, err = asCheckpointable(src)
		if err != nil {
			return nil, err
		}
		if cfg.resume != nil {
			if startAt, err = restoreCheckpoint(cfg, s.info.Name, n, cs, s.engines); err != nil {
				return nil, err
			}
		}
	}
	replicas := make([]parallel.Replica, n)
	for w, e := range s.engines {
		replicas[w] = e
	}
	popts := parallel.Options{Ctx: cfg.ctx, StartAt: startAt}
	if cfg.ckptSink != nil {
		popts.CheckpointEvery = cfg.ckptEvery
		popts.Checkpoint = func(events uint64) error {
			return emitCheckpoint(cfg, &s.scratch, s.info.Name, n, events, cs, s.engines)
		}
	}

	events, err := parallel.Run(src, replicas, popts)
	if err == nil {
		for w, e := range s.engines {
			if e.Events() != events {
				return nil, fmt.Errorf("treeclock: internal error: worker %d processed %d of %d events", w, e.Events(), events)
			}
		}
	}
	res := s.assembleResult()
	if err != nil {
		// The workers have drained every batch dispatched before the
		// failure (cancellation, a mid-stream decode error, a checkpoint
		// write error), so the partial result is internally consistent:
		// counts, merged MemStats and metadata all describe exactly the
		// events delivered.
		return res, err
	}
	return res, nil
}

// bindPush transitions an idle session into push mode: reject the
// options that only make sense around a source decoder, create the
// feed frontier, restore a resumed session's state, and start the
// worker group for sharded sessions.
func (s *Session) bindPush() error {
	switch s.mode {
	case sessionClosed:
		return ErrSessionClosed
	case sessionPull:
		return ErrFeedAfterRun
	case sessionPush:
		return nil
	}
	cfg := &s.cfg
	switch {
	case cfg.pipeline > 0:
		return fmt.Errorf("treeclock: WithPipeline requires a pull-mode source (push sessions feed decoded events)")
	case cfg.scalar:
		return fmt.Errorf("treeclock: StreamScalar requires a pull-mode source (push sessions feed decoded events)")
	case cfg.progressFn != nil:
		return fmt.Errorf("treeclock: WithProgress requires a pull-mode source (count fed batches at the caller)")
	case cfg.validate:
		return fmt.Errorf("treeclock: StreamValidate requires a pull-mode source (validate before feeding)")
	case cfg.internCap > 0:
		return fmt.Errorf("treeclock: WithInternCap requires text input (push sessions feed decoded events)")
	}
	s.feed = &feedSource{}
	var startAt uint64
	if cfg.resume != nil {
		events, err := restoreCheckpoint(cfg, s.info.Name, len(s.engines), s.feed, s.engines)
		if err != nil {
			return err
		}
		startAt = events
	}
	if s.parallel {
		replicas := make([]parallel.Replica, len(s.engines))
		for w, e := range s.engines {
			replicas[w] = e
		}
		s.group = parallel.NewGroup(replicas, parallel.Options{StartAt: startAt})
	}
	if cfg.ckptSink != nil {
		s.nextCkpt = nextBoundary(startAt, cfg.ckptEvery)
	}
	s.mode = sessionPush
	return nil
}

// Resumed binds the session to push mode and reports the trace
// position to continue feeding from: the event count of the restored
// checkpoint under ResumeFrom, zero for a fresh session. Push-mode
// checkpoints record only the delivered-event frontier (the events
// arrive pre-decoded, so there is no decoder state to restore) — the
// feeder re-ships events from the reported position.
func (s *Session) Resumed() (uint64, error) {
	if err := s.bindPush(); err != nil {
		return 0, err
	}
	return s.feed.delivered, nil
}

// Feed pushes a batch of pre-decoded events into the session, binding
// it to push mode on first use. Events are analyzed in feed order;
// batch boundaries are irrelevant to the result. After a failure (a
// cancelled context, a checkpoint sink error) the session is stuck:
// every further Feed returns the same error, and Result returns the
// partial state alongside it. The caller must not mutate events during
// the call; ownership stays with the caller afterwards.
func (s *Session) Feed(events []Event) error {
	if err := s.bindPush(); err != nil {
		return err
	}
	if s.err != nil {
		return s.err
	}
	if s.finished {
		return ErrSessionFinished
	}
	if s.cfg.ctx != nil {
		select {
		case <-s.cfg.ctx.Done():
			s.err = s.cfg.ctx.Err()
			return s.err
		default:
		}
	}
	if s.group != nil {
		s.group.Feed(events)
	} else if len(events) > 0 {
		e := s.engines[0]
		e.ProcessBatchAt(e.Events(), events)
	}
	s.feed.delivered += uint64(len(events))
	if s.cfg.ckptSink != nil && s.feed.delivered >= s.nextCkpt {
		if err := s.checkpoint(); err != nil {
			s.err = err
			return err
		}
		s.nextCkpt = nextBoundary(s.feed.delivered, s.cfg.ckptEvery)
	}
	return nil
}

// checkpoint emits one cadence checkpoint through the configured sink,
// quiescing the worker group first so every replica stands at the
// delivered frontier.
func (s *Session) checkpoint() error {
	emit := func(events uint64) error {
		return emitCheckpoint(&s.cfg, &s.scratch, s.info.Name, len(s.engines), events, s.feed, s.engines)
	}
	if s.group != nil {
		return s.group.Barrier(emit)
	}
	return emit(s.feed.delivered)
}

// Snapshot writes a complete checkpoint of the session to w — the
// push-mode counterpart of the WithCheckpoint cadence, under the
// caller's control: before evicting an idle session, before shutdown,
// on a client's detach. The worker group is quiesced for the write, so
// the checkpoint covers exactly the events fed so far; a session
// resumed from it (Open with ResumeFrom, then Resumed for the
// re-feed position) continues byte-identically. Snapshot binds an idle
// session to push mode.
func (s *Session) Snapshot(w io.Writer) error {
	if err := s.bindPush(); err != nil {
		return err
	}
	if s.err != nil {
		return s.err
	}
	write := func(events uint64) error {
		return writeCheckpoint(w, s.info.Name, &s.cfg, len(s.engines), events, s.feed, s.engines)
	}
	if s.group != nil {
		return s.group.Barrier(write)
	}
	return write(s.feed.delivered)
}

// Events returns the number of trace events the session has accepted
// so far (including any restored by ResumeFrom). Zero for an idle
// or freshly resumed-at-zero session.
func (s *Session) Events() uint64 {
	if s.feed != nil {
		return s.feed.delivered
	}
	if len(s.engines) > 0 && s.mode == sessionPull {
		return s.engines[0].Events()
	}
	return 0
}

// Mem reports the session's current retained-state accounting, merged
// across replicas, when the engine implements the memory-reporting
// extension (currently the "wcp-*" orders); ok is false otherwise.
// On a sharded push session the worker group is quiesced for the read.
// This is the budget-inspection hook a multi-tenant host throttles and
// evicts on.
func (s *Session) Mem() (ms MemStats, ok bool) {
	read := func(uint64) error {
		var mems []engine.MemStats
		for _, e := range s.engines {
			if m, k := e.Mem(); k {
				mems = append(mems, m)
			}
		}
		if len(mems) > 0 {
			ms, ok = engine.MergeMemStats(mems), true
		}
		return nil
	}
	if s.group != nil && s.mode == sessionPush && !s.finished {
		s.group.Barrier(read)
		return ms, ok
	}
	read(0)
	return ms, ok
}

// Result seals a push-mode stream and assembles its outcome: the
// worker group drains and stops, and the returned StreamResult is
// byte-identical to what a pull-mode run of the same events would have
// produced. Further Feeds fail with ErrSessionFinished; Result is
// idempotent and also returns the (already assembled) result of a
// completed pull session. If the session previously failed, the
// partial result is returned alongside the sticky error.
func (s *Session) Result() (*StreamResult, error) {
	switch s.mode {
	case sessionClosed:
		if s.result != nil {
			return s.result, s.err
		}
		return nil, ErrSessionClosed
	case sessionIdle:
		if err := s.bindPush(); err != nil {
			return nil, err
		}
	}
	if s.mode == sessionPush && !s.finished {
		s.finished = true
		if s.group != nil {
			s.group.Close()
			s.group = nil
		}
	}
	return s.assembleResult(), s.err
}

// Close releases the session: the worker group (if any) drains and
// stops, and every subsequent operation fails with ErrSessionClosed.
// Closing never writes a final checkpoint — call Snapshot first to
// keep a resumable frontier. Close is idempotent and never fails;
// its error result exists for io.Closer shape.
func (s *Session) Close() error {
	if s.mode == sessionClosed {
		return nil
	}
	if s.group != nil {
		s.group.Close()
		s.group = nil
	}
	s.mode = sessionClosed
	return nil
}

// assembleResult builds the StreamResult from the replica set — the
// one merge path shared by the sequential, sharded, pull and push
// drivers (and, through Session, the daemon). Idempotent: the first
// call folds the per-replica WorkStats sinks and interner accounting
// into the caller-visible sinks; later calls return the cached result.
func (s *Session) assembleResult() *StreamResult {
	if s.result != nil {
		return s.result
	}
	// Replica clock evolution is identical everywhere, so replica 0
	// speaks for timestamps, metadata and the event count; the sharded
	// analysis state merges across all replicas.
	sum, samples, ts := s.engines[0].Finish()
	if s.parallel && s.cfg.analysis {
		accs := make([]*analysis.Accumulator, len(s.engines))
		for w, e := range s.engines {
			accs[w] = e.Acc()
		}
		sum, samples = analysis.MergeAccumulators(accs)
	}
	res := &StreamResult{
		Engine:     s.info.Name,
		Meta:       s.engines[0].Meta(),
		Events:     s.engines[0].Events(),
		Summary:    sum,
		Samples:    samples,
		Timestamps: ts,
	}
	var mems []engine.MemStats
	for _, e := range s.engines {
		if ms, ok := e.Mem(); ok {
			mems = append(mems, ms)
		}
	}
	if len(mems) > 0 {
		ms := engine.MergeMemStats(mems)
		res.Mem = &ms
	}
	if s.cfg.stats != nil {
		for i := range s.sinks {
			s.cfg.stats.Add(s.sinks[i])
		}
	}
	foldInternStats(res, s.scanner)
	s.result = res
	return res
}

// feedSource is the CheckpointableSource of a push-mode session: the
// events arrive pre-decoded from the caller, so the only decode
// frontier worth recording is the count of events delivered — a
// resumed feeder re-ships from there. It never produces events itself
// (the session's Feed path bypasses the source abstraction entirely).
type feedSource struct {
	delivered uint64 // events accepted so far (absolute trace position)
}

func (f *feedSource) Next() (trace.Event, bool) { return trace.Event{}, false }
func (f *feedSource) Err() error                { return nil }

// SnapshotSource implements trace.CheckpointableSource: the delivered
// frontier is the entire source state.
func (f *feedSource) SnapshotSource(e *ckpt.Enc) error {
	e.Begin("feed")
	e.U64(f.delivered)
	e.End()
	return e.Err()
}

// RestoreSource implements trace.CheckpointableSource: a push-mode
// checkpoint restores only into a push-mode session (a pull session's
// checkpoint carries decoder sections instead and fails here).
func (f *feedSource) RestoreSource(d *ckpt.Dec) error {
	d.Begin("feed")
	f.delivered = d.U64()
	d.End()
	return d.Err()
}
