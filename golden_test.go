package treeclock

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"treeclock/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestCheckpointGolden pins the checkpoint wire format: the bytes a
// fixed trace prefix checkpoints to must never change without a
// version bump (run with -update to regenerate after an intentional
// format change), and the committed golden must keep restoring into a
// run whose final report matches an uninterrupted one.
func TestCheckpointGolden(t *testing.T) {
	tr := GenerateMixed(GenConfig{
		Name: "golden", Threads: 4, Locks: 3, Vars: 16,
		Events: 1500, SyncFrac: 0.3, Seed: 42,
	})
	var text bytes.Buffer
	if err := WriteTraceText(&text, tr); err != nil {
		t.Fatal(err)
	}
	newSrc := func() EventSource { return trace.NewScanner(bytes.NewReader(text.Bytes())) }

	// Checkpoint after every 512-event batch; keep the one at 1024.
	sink := newArchiveSink()
	if _, err := RunStreamSource("wcp-tree", newSrc(), StreamValidate(), WithCheckpoint(512, sink)); err != nil {
		t.Fatal(err)
	}
	got, ok := sink.all[1024]
	if !ok {
		t.Fatalf("no checkpoint at event 1024 (have %v)", keysOf(sink.all))
	}

	path := filepath.Join("testdata", "checkpoint_v2.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("checkpoint bytes changed: %d bytes, golden %d bytes — format drift needs a version bump (or -update for an intentional change)",
			len(got), len(want))
	}

	// The committed bytes must still restore and finish identically.
	ref, err := RunStreamSource("wcp-tree", newSrc(), StreamValidate())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunStreamSource("wcp-tree", newSrc(), StreamValidate(), ResumeFrom(bytes.NewReader(want)))
	if err != nil {
		t.Fatalf("restoring golden checkpoint: %v", err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatalf("golden resume diverged:\ngot  %+v\nwant %+v", res, ref)
	}
}

// keysOf lists an archive sink's checkpoint boundaries for diagnostics.
func keysOf(m map[uint64][]byte) []uint64 {
	ks := make([]uint64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
