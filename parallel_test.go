package treeclock_test

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"

	"treeclock"
)

// parallelWorkerCounts are the shard widths the determinism harness
// sweeps: the degenerate single worker, powers of two, and a prime
// that divides nothing so the hash partition is exercised off the easy
// cases.
var parallelWorkerCounts = []int{1, 2, 4, 7}

// TestParallelMatchesSequential is the acceptance harness of the
// sharded runtime: for every generator workload and every registry
// engine, RunStreamParallel at 1, 2, 4 and 7 workers must render a
// byte-identical race report, identical timestamps, identical event
// count and identical discovered metadata to sequential RunStream.
// In -short mode (the CI race job) the sweep trims to two shard
// widths; the full matrix runs in the regular test job.
func TestParallelMatchesSequential(t *testing.T) {
	counts := parallelWorkerCounts
	if testing.Short() {
		counts = []int{2, 7}
	}
	for _, tr := range generatorSuite() {
		var bin bytes.Buffer
		if err := treeclock.WriteTraceBinary(&bin, tr); err != nil {
			t.Fatal(err)
		}
		for _, engineName := range treeclock.Engines() {
			t.Run(tr.Meta.Name+"/"+engineName, func(t *testing.T) {
				seq, err := treeclock.RunStream(engineName, bytes.NewReader(bin.Bytes()), treeclock.StreamBinary())
				if err != nil {
					t.Fatal(err)
				}
				want := raceReport(seq.Summary, seq.Samples)
				for _, w := range counts {
					par, err := treeclock.RunStreamParallel(engineName, bytes.NewReader(bin.Bytes()),
						treeclock.StreamBinary(), treeclock.WithWorkers(w))
					if err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
					if got := raceReport(par.Summary, par.Samples); got != want {
						t.Fatalf("workers=%d: race report diverges:\nparallel:\n%s\nsequential:\n%s", w, got, want)
					}
					if par.Events != seq.Events {
						t.Fatalf("workers=%d: %d events, sequential saw %d", w, par.Events, seq.Events)
					}
					if par.Meta != seq.Meta {
						t.Fatalf("workers=%d: meta %+v, sequential %+v", w, par.Meta, seq.Meta)
					}
					if len(par.Timestamps) != len(seq.Timestamps) {
						t.Fatalf("workers=%d: %d timestamps, sequential %d", w, len(par.Timestamps), len(seq.Timestamps))
					}
					for th := range seq.Timestamps {
						if !par.Timestamps[th].Equal(seq.Timestamps[th]) {
							t.Fatalf("workers=%d: thread %d timestamp %v, sequential %v",
								w, th, par.Timestamps[th], seq.Timestamps[th])
						}
					}
				}
			})
		}
	}
}

// TestParallelTextPath covers the text decoder under the sharded
// coordinator (the byte-identical matrix above uses binary input).
func TestParallelTextPath(t *testing.T) {
	tr := treeclock.GenerateMixed(treeclock.GenConfig{
		Name: "par-text", Threads: 8, Locks: 4, Vars: 128,
		Events: 20000, Seed: 5, SyncFrac: 0.25, HotFrac: 0.1,
	})
	var text bytes.Buffer
	if err := treeclock.WriteTraceText(&text, tr); err != nil {
		t.Fatal(err)
	}
	for _, engineName := range []string{"hb-tree", "shb-vc", "wcp-tree"} {
		seq, err := treeclock.RunStream(engineName, bytes.NewReader(text.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		par, err := treeclock.RunStreamParallel(engineName, bytes.NewReader(text.Bytes()), treeclock.WithWorkers(3))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := raceReport(par.Summary, par.Samples), raceReport(seq.Summary, seq.Samples); got != want {
			t.Errorf("%s: text parallel diverges:\n%s\nvs\n%s", engineName, got, want)
		}
	}
}

// TestParallelMemMerged pins the retained-state merge: each WCP
// replica retains its own copy of the per-lock state, so the parallel
// report sums the replicas (additive fields scale with workers) while
// the per-lock peak stays the sequential peak.
func TestParallelMemMerged(t *testing.T) {
	const n = 40000
	seq, err := treeclock.RunStreamSource("wcp-tree",
		treeclock.LimitEvents(treeclock.GenerateHotLockStream(4, 17), n))
	if err != nil {
		t.Fatal(err)
	}
	par, err := treeclock.RunStreamParallelSource("wcp-tree",
		treeclock.LimitEvents(treeclock.GenerateHotLockStream(4, 17), n),
		treeclock.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Mem == nil || par.Mem == nil {
		t.Fatalf("missing retained-state reports: seq %v, par %v", seq.Mem, par.Mem)
	}
	if par.Mem.DroppedEntries != 3*seq.Mem.DroppedEntries {
		t.Errorf("dropped entries %d, want 3x sequential %d", par.Mem.DroppedEntries, seq.Mem.DroppedEntries)
	}
	if par.Mem.PeakLockHist != seq.Mem.PeakLockHist {
		t.Errorf("peak history %d, want sequential %d (a max, not a sum)", par.Mem.PeakLockHist, seq.Mem.PeakLockHist)
	}
	// The non-mem engines still report nothing in parallel.
	res, err := treeclock.RunStreamParallelSource("hb-tree",
		treeclock.LimitEvents(treeclock.GenerateHotLockStream(4, 17), n),
		treeclock.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem != nil {
		t.Errorf("hb-tree parallel reported retained state: %+v", res.Mem)
	}
}

// TestParallelWorkStats checks the per-replica work counters sum into
// the caller's sink: with 2 workers every clock operation happens in
// both replicas, so the total is at least the sequential total.
func TestParallelWorkStats(t *testing.T) {
	tr := treeclock.GenerateSingleLock(5, 2000, 13)
	var text bytes.Buffer
	if err := treeclock.WriteTraceText(&text, tr); err != nil {
		t.Fatal(err)
	}
	var seqStats treeclock.WorkStats
	if _, err := treeclock.RunStream("hb-vc", bytes.NewReader(text.Bytes()),
		treeclock.StreamWorkStats(&seqStats)); err != nil {
		t.Fatal(err)
	}
	var parStats treeclock.WorkStats
	if _, err := treeclock.RunStreamParallel("hb-vc", bytes.NewReader(text.Bytes()),
		treeclock.WithWorkers(2), treeclock.StreamWorkStats(&parStats)); err != nil {
		t.Fatal(err)
	}
	if parStats.Changed < seqStats.Changed || parStats.Entries < seqStats.Entries {
		t.Errorf("parallel work %+v below sequential %+v — a replica skipped clock work", parStats, seqStats)
	}
}

// TestParallelOptionConflicts pins the rejected combinations and the
// validation path: discipline violations surface as errors from the
// coordinator-side validator.
func TestParallelOptionConflicts(t *testing.T) {
	if _, err := treeclock.RunStream("hb-tree", strings.NewReader(""),
		treeclock.WithWorkers(2), treeclock.StreamScalar()); err == nil {
		t.Error("StreamScalar + WithWorkers accepted")
	}
	if _, err := treeclock.RunStreamParallel("hb-tree", strings.NewReader(""),
		treeclock.StreamScalar()); err == nil {
		t.Error("StreamScalar accepted by RunStreamParallel")
	}
	if _, err := treeclock.RunStreamParallel("hb-quantum", strings.NewReader("")); err == nil {
		t.Error("unknown engine accepted")
	}
	bad := "t0 acq l0\nt1 acq l0\n"
	if _, err := treeclock.RunStreamParallel("hb-tree", strings.NewReader(bad),
		treeclock.WithWorkers(2), treeclock.StreamValidate()); err == nil {
		t.Error("double acquire accepted with StreamValidate under workers")
	}
	if _, err := treeclock.RunStreamParallel("hb-tree", strings.NewReader("t0 frobnicate x0\n"),
		treeclock.WithWorkers(2)); err == nil {
		t.Error("malformed trace accepted under workers")
	}
}

// TestParallelNoAnalysis covers the pure partial-order configuration
// under workers, and the explicit-pipeline combination (the decoder
// feeds the coordinator zero-copy).
func TestParallelNoAnalysis(t *testing.T) {
	tr := treeclock.GenerateStar(6, 5000, 11)
	var text bytes.Buffer
	if err := treeclock.WriteTraceText(&text, tr); err != nil {
		t.Fatal(err)
	}
	res, err := treeclock.RunStreamParallel("hb-tree", bytes.NewReader(text.Bytes()),
		treeclock.WithWorkers(2), treeclock.StreamNoAnalysis())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Total != 0 || res.Samples != nil {
		t.Errorf("analysis ran despite StreamNoAnalysis: %+v", res.Summary)
	}
	if res.Events != uint64(tr.Len()) {
		t.Errorf("Events = %d, want %d", res.Events, tr.Len())
	}
	seq, err := treeclock.RunStream("shb-tree", bytes.NewReader(text.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	piped, err := treeclock.RunStreamParallel("shb-tree", bytes.NewReader(text.Bytes()),
		treeclock.WithWorkers(2), treeclock.WithPipeline(3))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := raceReport(piped.Summary, piped.Samples), raceReport(seq.Summary, seq.Samples); got != want {
		t.Errorf("pipeline + workers diverges:\n%s\nvs\n%s", got, want)
	}
}

// TestProgressCallbacks covers WithProgress on both entry points: the
// callback fires with monotone event counts and a sane final total.
func TestProgressCallbacks(t *testing.T) {
	tr := treeclock.GenerateMixed(treeclock.GenConfig{
		Name: "progress", Threads: 6, Locks: 3, Vars: 32,
		Events: 30000, Seed: 9, SyncFrac: 0.2,
	})
	var text bytes.Buffer
	if err := treeclock.WriteTraceText(&text, tr); err != nil {
		t.Fatal(err)
	}
	check := func(name string, run func(fn func(treeclock.Progress)) error) {
		var calls atomic.Uint64
		var last atomic.Uint64
		err := run(func(p treeclock.Progress) {
			calls.Add(1)
			if prev := last.Swap(p.Events); p.Events <= prev {
				t.Errorf("%s: progress went backwards: %d after %d", name, p.Events, prev)
			}
			if p.Rate < 0 {
				t.Errorf("%s: negative rate %f", name, p.Rate)
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if calls.Load() < 2 {
			t.Errorf("%s: only %d progress reports over %d events at every=10000", name, calls.Load(), tr.Len())
		}
		if last.Load() > uint64(tr.Len()) {
			t.Errorf("%s: progress count %d exceeds trace length %d", name, last.Load(), tr.Len())
		}
	}
	check("sequential", func(fn func(treeclock.Progress)) error {
		_, err := treeclock.RunStream("hb-tree", bytes.NewReader(text.Bytes()), treeclock.WithProgress(10000, fn))
		return err
	})
	check("parallel", func(fn func(treeclock.Progress)) error {
		_, err := treeclock.RunStreamParallel("hb-tree", bytes.NewReader(text.Bytes()),
			treeclock.WithWorkers(2), treeclock.WithProgress(10000, fn))
		return err
	})
	check("scalar", func(fn func(treeclock.Progress)) error {
		_, err := treeclock.RunStream("hb-tree", bytes.NewReader(text.Bytes()),
			treeclock.StreamScalar(), treeclock.WithProgress(10000, fn))
		return err
	})
}
