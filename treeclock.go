package treeclock

import (
	"io"

	"treeclock/internal/analysis"
	"treeclock/internal/core"
	"treeclock/internal/gen"
	"treeclock/internal/hb"
	"treeclock/internal/maz"
	"treeclock/internal/shb"
	"treeclock/internal/trace"
	"treeclock/internal/vc"
	"treeclock/internal/vt"
	"treeclock/internal/wcp"
)

// Core types, re-exported from the internal packages so downstream
// users import only this package.
type (
	// TreeClock is the tree clock data structure (paper Algorithm 2).
	TreeClock = core.TreeClock
	// VectorClock is the flat Θ(k)-per-operation baseline.
	VectorClock = vc.VectorClock
	// ThreadID identifies a thread (dense, 0-based).
	ThreadID = vt.TID
	// Time is a logical (local) time.
	Time = vt.Time
	// Vector is a plain vector timestamp.
	Vector = vt.Vector
	// Epoch is a compact (thread, local time) event identifier.
	Epoch = vt.Epoch
	// WorkStats counts data-structure work (entries touched/changed).
	WorkStats = vt.WorkStats
)

// NewTreeClock returns an empty tree clock over numThreads threads.
// Call Init(t) to make it a thread's clock; auxiliary clocks (locks,
// variables) stay uninitialized.
func NewTreeClock(numThreads int) *TreeClock { return core.New(numThreads, nil) }

// NewTreeClockCounting is NewTreeClock with a shared work-counter sink.
func NewTreeClockCounting(numThreads int, st *WorkStats) *TreeClock {
	return core.New(numThreads, st)
}

// NewVectorClock returns a zero vector clock over numThreads threads.
func NewVectorClock(numThreads int) *VectorClock { return vc.New(numThreads, nil) }

// NewVectorClockCounting is NewVectorClock with a work-counter sink.
func NewVectorClockCounting(numThreads int, st *WorkStats) *VectorClock {
	return vc.New(numThreads, st)
}

// Trace types.
type (
	// Event is one trace step.
	Event = trace.Event
	// Kind is an event operation.
	Kind = trace.Kind
	// Meta describes a trace's identifier spaces.
	Meta = trace.Meta
	// Trace is a materialized execution trace.
	Trace = trace.Trace
	// TraceStats summarizes a trace (paper Tables 1/3 fields).
	TraceStats = trace.Stats
)

// Event kinds.
const (
	Read    = trace.Read
	Write   = trace.Write
	Acquire = trace.Acquire
	Release = trace.Release
	Fork    = trace.Fork
	Join    = trace.Join
)

// TraceScanner streams events from a text-format trace without
// materializing it (for logs larger than memory).
type TraceScanner = trace.Scanner

// NewTraceScanner wraps a text-format trace stream.
func NewTraceScanner(r io.Reader) *TraceScanner { return trace.NewScanner(r) }

// BinaryTraceScanner streams events from a binary-format trace without
// materializing it.
type BinaryTraceScanner = trace.BinaryScanner

// NewBinaryTraceScanner wraps a binary-format trace stream (the format
// written by WriteTraceBinary).
func NewBinaryTraceScanner(r io.Reader) *BinaryTraceScanner { return trace.NewBinaryScanner(r) }

// EventSource is the streaming event interface implemented by both
// scanners; RunStream and the engine runtime consume it.
type EventSource = trace.EventSource

// BatchEventSource is an EventSource that also delivers events in
// batches into a caller-owned buffer, amortizing per-event call
// overhead. Both scanners, the validator and the trace replayer
// implement it, and the engine runtime consumes batches automatically.
type BatchEventSource = trace.BatchSource

// TraceReplayer streams a materialized trace through the same
// EventSource/batch interface as the file scanners.
type TraceReplayer = trace.Replayer

// NewTraceReplayer wraps a materialized trace as an event source.
func NewTraceReplayer(tr *Trace) *TraceReplayer { return trace.NewReplayer(tr) }

// TracePipeline decodes a wrapped event source in its own goroutine,
// feeding consumers batches through a ring of recycled buffers (see
// WithPipeline for the RunStream knob). Close it if it is abandoned
// before exhaustion.
type TracePipeline = trace.Pipeline

// NewTracePipeline wraps src with an asynchronous decode stage of the
// given ring depth and batch size (<= 0 selects defaults).
func NewTracePipeline(src EventSource, depth, batchSize int) *TracePipeline {
	return trace.NewPipeline(src, depth, batchSize)
}

// ParseTrace reads the text trace format ("<thread> <op> <operand>"
// lines; see internal/trace for the grammar).
func ParseTrace(r io.Reader) (*Trace, error) { return trace.ParseText(r) }

// ParseTraceString is ParseTrace over a string.
func ParseTraceString(s string) (*Trace, error) { return trace.ParseTextString(s) }

// WriteTraceText serializes a trace to the text format.
func WriteTraceText(w io.Writer, tr *Trace) error { return trace.WriteText(w, tr) }

// WriteTraceBinary serializes a trace to the compact binary format.
func WriteTraceBinary(w io.Writer, tr *Trace) error { return trace.WriteBinary(w, tr) }

// ReadTraceBinary deserializes a binary trace.
func ReadTraceBinary(r io.Reader) (*Trace, error) { return trace.ReadBinary(r) }

// ComputeTraceStats scans a trace and summarizes it.
func ComputeTraceStats(tr *Trace) TraceStats { return trace.ComputeStats(tr) }

// Engines. Each partial order comes in a tree-clock and a vector-clock
// variant; the algorithm code is shared and generic, so the variants
// differ only in the data structure (the paper's methodology).
type (
	// HBTreeEngine computes happens-before with tree clocks
	// (Algorithm 3).
	HBTreeEngine = hb.Engine[*core.TreeClock]
	// HBVectorEngine computes happens-before with vector clocks
	// (Algorithm 1).
	HBVectorEngine = hb.Engine[*vc.VectorClock]
	// SHBTreeEngine computes schedulable-happens-before with tree
	// clocks (Algorithm 4).
	SHBTreeEngine = shb.Engine[*core.TreeClock]
	// SHBVectorEngine is the vector-clock SHB variant.
	SHBVectorEngine = shb.Engine[*vc.VectorClock]
	// MAZTreeEngine computes the Mazurkiewicz order with tree clocks
	// (Algorithm 5).
	MAZTreeEngine = maz.Engine[*core.TreeClock]
	// MAZVectorEngine is the vector-clock MAZ variant.
	MAZVectorEngine = maz.Engine[*vc.VectorClock]
	// WCPTreeEngine computes the weakly-causally-precedes order
	// (predictive race detection) with tree clocks backing the HB
	// scaffolding.
	WCPTreeEngine = wcp.Engine[*core.TreeClock]
	// WCPVectorEngine is the vector-clock WCP variant.
	WCPVectorEngine = wcp.Engine[*vc.VectorClock]
)

// NewHBTree returns a happens-before engine backed by tree clocks.
func NewHBTree(meta Meta) *HBTreeEngine {
	return hb.New(meta, core.Factory(nil))
}

// NewHBTreeCounting is NewHBTree with work counting.
func NewHBTreeCounting(meta Meta, st *WorkStats) *HBTreeEngine {
	return hb.New(meta, core.Factory(st))
}

// NewHBVector returns a happens-before engine backed by vector clocks.
func NewHBVector(meta Meta) *HBVectorEngine {
	return hb.New(meta, vc.Factory(nil))
}

// NewHBVectorCounting is NewHBVector with work counting.
func NewHBVectorCounting(meta Meta, st *WorkStats) *HBVectorEngine {
	return hb.New(meta, vc.Factory(st))
}

// NewSHBTree returns a schedulable-happens-before engine backed by
// tree clocks.
func NewSHBTree(meta Meta) *SHBTreeEngine {
	return shb.New(meta, core.Factory(nil))
}

// NewSHBVector returns the vector-clock SHB engine.
func NewSHBVector(meta Meta) *SHBVectorEngine {
	return shb.New(meta, vc.Factory(nil))
}

// NewMAZTree returns a Mazurkiewicz-order engine backed by tree clocks.
func NewMAZTree(meta Meta) *MAZTreeEngine {
	return maz.New(meta, core.Factory(nil))
}

// NewMAZVector returns the vector-clock MAZ engine.
func NewMAZVector(meta Meta) *MAZVectorEngine {
	return maz.New(meta, vc.Factory(nil))
}

// NewWCPTree returns a weakly-causally-precedes engine backed by tree
// clocks. Enable reporting with EnableAnalysis; detected pairs are
// predictive races (conflicting accesses unordered by WCP ∪ thread
// order), a superset of the HB races.
func NewWCPTree(meta Meta) *WCPTreeEngine {
	return wcp.New(meta, core.Factory(nil))
}

// NewWCPVector returns the vector-clock WCP engine.
func NewWCPVector(meta Meta) *WCPVectorEngine {
	return wcp.New(meta, vc.Factory(nil))
}

// Analysis types.
type (
	// Race is one detected concurrent conflicting pair.
	Race = analysis.Pair
	// RaceKind classifies a race (w-w, w-r, r-w).
	RaceKind = analysis.PairKind
	// RaceSummary is the aggregate of an analysis run.
	RaceSummary = analysis.Summary
	// RaceAccumulator collects detected pairs during a run.
	RaceAccumulator = analysis.Accumulator
)

// Race kinds.
const (
	WriteWriteRace = analysis.WriteWrite
	WriteReadRace  = analysis.WriteRead
	ReadWriteRace  = analysis.ReadWrite
)

// Workload generation.
type GenConfig = gen.Config

// GenerateMixed synthesizes a well-formed trace with the configured
// thread/lock/variable counts, sync ratio and access locality.
func GenerateMixed(cfg GenConfig) *Trace { return gen.Mixed(cfg) }

// Scalability scenario generators (paper §6, Figure 10).
var (
	GenerateSingleLock       = gen.SingleLock
	GenerateFiftyLocksSkewed = gen.FiftyLocksSkewed
	GenerateStar             = gen.Star
	GeneratePairwise         = gen.Pairwise
)

// Application-shaped generators.
var (
	GenerateProducerConsumer = gen.ProducerConsumer
	GeneratePipeline         = gen.Pipeline
	GenerateBarrierPhases    = gen.BarrierPhases
	GenerateReadersWriters   = gen.ReadersWriters
	GenerateForkJoinTree     = gen.ForkJoinTree
)

// Lock-structure-heavy generators for the weak-order engines: nested
// critical sections, fully guarded conflicting accesses (race-free
// under every order), and the canonical predictive-race shape that HB
// orders through the lock but WCP flags.
var (
	GenerateNestedLocks     = gen.NestedLocks
	GenerateGuardedPairs    = gen.GuardedPairs
	GeneratePredictivePairs = gen.PredictivePairs
)

// EventStream is an endless, deterministic workload generator
// implementing EventSource/BatchEventSource: events are produced on
// demand, so soak scenarios of unbounded length stream straight
// through RunStreamSource with no materialization. Every emitted
// prefix is a well-formed trace.
type EventStream = gen.Stream

// Endless streaming workload generators (cap with LimitEvents):
// all threads contending on one hot lock with conflicting section
// bodies (the adversarial shape for WCP's per-lock history), the hot
// lock rotating across a lock space, and the guarded variable churning
// across a variable space.
var (
	GenerateHotLockStream       = gen.HotLock
	GenerateRotatingLocksStream = gen.RotatingLocks
	GenerateChurningVarsStream  = gen.ChurningVars
)

// GenerateForkChurnStream is the thread-churn workload: a coordinator
// cycles a bounded ring of short-lived forked workers while external
// thread ids grow forever — the adversarial shape for WithSlotReclaim
// (see gen.ForkChurn).
var GenerateForkChurnStream = gen.ForkChurn

// GenerateNameChurnText is the identifier-churn workload in text form:
// hot thread/lock names plus variable names that are used in a bounded
// burst and then retired forever, all spelled so they take the
// tokenizer's map-interned path — the adversarial shape for
// WithInternCap (see gen.NameChurnText).
var GenerateNameChurnText = gen.NameChurnText

// LimitEvents bounds an event source at n events, after which it
// reports clean exhaustion; batch delivery passes through.
func LimitEvents(src EventSource, n int) BatchEventSource { return gen.Take(src, n) }
