package treeclock

// Fault-injected crash-equivalence harness: kill the analysis at every
// batch boundary, resume from the last completed checkpoint, and
// require the finished run to be byte-identical — reports, timestamps,
// metadata, retained-state accounting — to one that never crashed.
// CrashSource makes the kill deterministic, and a checkpoint cadence of
// one means a checkpoint completes at every batch boundary, so "the
// last checkpoint" always covers exactly the killed run's event count.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"treeclock/internal/gen"
	"treeclock/internal/trace"
)

// memSink retains the most recent complete checkpoint in memory; a
// non-nil all additionally archives every checkpoint by event count.
type memSink struct {
	last   []byte
	events uint64
	all    map[uint64][]byte
}

func newArchiveSink() *memSink { return &memSink{all: map[uint64][]byte{}} }

func (s *memSink) Create(events uint64) (io.WriteCloser, error) {
	return &memCkpt{sink: s, events: events}, nil
}

type memCkpt struct {
	bytes.Buffer
	sink   *memSink
	events uint64
}

func (c *memCkpt) Close() error {
	data := append([]byte(nil), c.Bytes()...)
	c.sink.last, c.sink.events = data, c.events
	if c.sink.all != nil {
		c.sink.all[c.events] = data
	}
	return nil
}

// crashTrace is one corpus entry, serialized once per format.
type crashTrace struct {
	name string
	text []byte
	n    int
}

// crashCorpus covers the event kinds and state shapes the checkpoint
// must carry: mixed sync/access load, fork/join trees, and the
// lock-protected pairs only the predictive (WCP) engines report.
func crashCorpus(t testing.TB) []crashTrace {
	t.Helper()
	traces := []*Trace{
		GenerateMixed(GenConfig{Name: "crash-mixed", Threads: 6, Locks: 4, Vars: 24, Events: 1800, SyncFrac: 0.3, Seed: 7}),
		GenerateForkJoinTree(6, 90, 3),
		GeneratePredictivePairs(8, 1700, 5),
	}
	out := make([]crashTrace, len(traces))
	for i, tr := range traces {
		var b bytes.Buffer
		if err := WriteTraceText(&b, tr); err != nil {
			t.Fatal(err)
		}
		out[i] = crashTrace{name: tr.Meta.Name, text: b.Bytes(), n: len(tr.Events)}
	}
	return out
}

// engVariant is one engine configuration of the matrix.
type engVariant struct {
	label  string
	engine string
	opts   []StreamOption
}

// engineVariants lists every registry engine plus the flat weak-clock
// transport variants of the predictive engines.
func engineVariants() []engVariant {
	var vs []engVariant
	for _, name := range Engines() {
		vs = append(vs, engVariant{label: name, engine: name})
	}
	vs = append(vs,
		engVariant{label: "wcp-tree-flat", engine: "wcp-tree", opts: []StreamOption{WithFlatWeakClocks()}},
		engVariant{label: "wcp-vc-flat", engine: "wcp-vc", opts: []StreamOption{WithFlatWeakClocks()}},
	)
	return vs
}

// runMode is sequential vs sharded execution of the same analysis.
type runMode struct {
	name string
	run  func(engine string, src EventSource, opts ...StreamOption) (*StreamResult, error)
}

var crashModes = []runMode{
	{"seq", RunStreamSource},
	{"par2", func(engine string, src EventSource, opts ...StreamOption) (*StreamResult, error) {
		return RunStreamParallelSource(engine, src, append(opts, WithWorkers(2))...)
	}},
}

// killPoints enumerates the batch boundaries of an n-event trace, plus
// the extremes (1 and n-1; CrashSource truncates the batch that hits
// the kill point, so any point becomes a batch boundary). Short mode
// keeps three representative points per configuration.
func killPoints(n int, short bool) []uint64 {
	batch := uint64(trace.DefaultBatchSize)
	var ks []uint64
	for k := batch; k < uint64(n); k += batch {
		ks = append(ks, k)
	}
	ks = append(ks, 1, uint64(n)-1)
	if short && len(ks) > 3 {
		ks = []uint64{ks[0], ks[len(ks)/2], uint64(n) - 1}
	}
	return ks
}

// crashAndResume kills a run at k events under checkpointing, checks
// the partial result, and returns the finished result of a resume from
// the last checkpoint.
func crashAndResume(t *testing.T, mode runMode, engine string, base []StreamOption, newSrc func() EventSource, k uint64) *StreamResult {
	t.Helper()
	sink := &memSink{}
	src := trace.NewCrashSource(newSrc(), k)
	res, err := mode.run(engine, src, append(append([]StreamOption{}, base...), WithCheckpoint(1, sink))...)
	if !errors.Is(err, trace.ErrInjectedCrash) {
		t.Fatalf("kill at %d: err = %v, want injected crash", k, err)
	}
	if res == nil {
		t.Fatalf("kill at %d: no partial result", k)
	}
	if res.Events != k {
		t.Fatalf("kill at %d: partial result covers %d events", k, res.Events)
	}
	if sink.events != k {
		t.Fatalf("kill at %d: last checkpoint covers %d events", k, sink.events)
	}
	got, err := mode.run(engine, newSrc(), append(append([]StreamOption{}, base...), ResumeFrom(bytes.NewReader(sink.last)))...)
	if err != nil {
		t.Fatalf("kill at %d: resume: %v", k, err)
	}
	return got
}

// TestCrashResume is the crash-equivalence matrix: every engine (and
// weak-clock transport), sequential and sharded, killed at every batch
// boundary of each corpus trace, must resume to a result deeply equal
// to the uninterrupted run's.
func TestCrashResume(t *testing.T) {
	corpus := crashCorpus(t)
	for _, ev := range engineVariants() {
		for _, mode := range crashModes {
			for _, ct := range corpus {
				ev, mode, ct := ev, mode, ct
				t.Run(fmt.Sprintf("%s/%s/%s", ev.label, mode.name, ct.name), func(t *testing.T) {
					base := append([]StreamOption{StreamValidate()}, ev.opts...)
					newSrc := func() EventSource { return trace.NewScanner(bytes.NewReader(ct.text)) }
					ref, err := mode.run(ev.engine, newSrc(), base...)
					if err != nil {
						t.Fatal(err)
					}
					for _, k := range killPoints(ct.n, testing.Short()) {
						got := crashAndResume(t, mode, ev.engine, base, newSrc, k)
						if !reflect.DeepEqual(got, ref) {
							t.Errorf("kill at %d: resumed result differs from uninterrupted run\nresumed:   %+v\nreference: %+v", k, got, ref)
						}
					}
				})
			}
		}
	}
}

// TestCrashResumeBinary repeats the crash-equivalence check over the
// binary trace format, whose scanner checkpoints a different decode
// frontier (header bookkeeping instead of interner tables).
func TestCrashResumeBinary(t *testing.T) {
	tr := GenerateMixed(GenConfig{Name: "crash-bin", Threads: 5, Locks: 3, Vars: 20, Events: 1500, SyncFrac: 0.25, Seed: 11})
	var b bytes.Buffer
	if err := WriteTraceBinary(&b, tr); err != nil {
		t.Fatal(err)
	}
	data := b.Bytes()
	for _, engine := range []string{"hb-tree", "wcp-tree"} {
		for _, mode := range crashModes {
			engine, mode := engine, mode
			t.Run(engine+"/"+mode.name, func(t *testing.T) {
				base := []StreamOption{StreamValidate()}
				newSrc := func() EventSource { return trace.NewBinaryScanner(bytes.NewReader(data)) }
				ref, err := mode.run(engine, newSrc(), base...)
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range killPoints(len(tr.Events), testing.Short()) {
					got := crashAndResume(t, mode, engine, base, newSrc, k)
					if !reflect.DeepEqual(got, ref) {
						t.Errorf("kill at %d: resumed result differs from uninterrupted run", k)
					}
				}
			})
		}
	}
}

// TestCheckpointBytesCrashInvariant pins two byte-level properties:
// checkpoints written under fault injection are identical to the
// uninterrupted run's at the same event count (CrashSource leaves no
// trace in the format), and a resumed run's subsequent checkpoints
// continue the uninterrupted run's sequence byte for byte — the
// restored state is indistinguishable from one that never crashed.
func TestCheckpointBytesCrashInvariant(t *testing.T) {
	tr := GenerateMixed(GenConfig{Name: "crash-bytes", Threads: 6, Locks: 4, Vars: 24, Events: 1800, SyncFrac: 0.3, Seed: 7})
	var b bytes.Buffer
	if err := WriteTraceText(&b, tr); err != nil {
		t.Fatal(err)
	}
	text := b.Bytes()
	newSrc := func() EventSource { return trace.NewScanner(bytes.NewReader(text)) }
	const engine = "wcp-tree"
	for _, mode := range crashModes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			full := newArchiveSink()
			if _, err := mode.run(engine, newSrc(), StreamValidate(), WithCheckpoint(1, full)); err != nil {
				t.Fatal(err)
			}
			// Kill on a real batch boundary so the resumed run's batch
			// grid — and with it the checkpoint cadence — lines up with
			// the uninterrupted run's.
			k := uint64(2 * trace.DefaultBatchSize)
			sink := &memSink{}
			src := trace.NewCrashSource(newSrc(), k)
			if _, err := mode.run(engine, src, StreamValidate(), WithCheckpoint(1, sink)); !errors.Is(err, trace.ErrInjectedCrash) {
				t.Fatalf("err = %v, want injected crash", err)
			}
			want, ok := full.all[k]
			if !ok {
				t.Fatalf("uninterrupted run wrote no checkpoint at %d (have %d checkpoints)", k, len(full.all))
			}
			if !bytes.Equal(sink.last, want) {
				t.Errorf("checkpoint at %d under fault injection differs from uninterrupted run's", k)
			}
			resumed := newArchiveSink()
			if _, err := mode.run(engine, newSrc(), StreamValidate(), ResumeFrom(bytes.NewReader(sink.last)), WithCheckpoint(1, resumed)); err != nil {
				t.Fatalf("resume: %v", err)
			}
			if len(resumed.all) == 0 {
				t.Fatal("resumed run wrote no checkpoints")
			}
			for events, data := range resumed.all {
				want, ok := full.all[events]
				if !ok {
					t.Errorf("resumed run checkpointed at %d, uninterrupted run did not", events)
					continue
				}
				if !bytes.Equal(data, want) {
					t.Errorf("resumed run's checkpoint at %d differs from uninterrupted run's", events)
				}
			}
		})
	}
}

// materializeText drains src into a text-format trace for the crash
// corpus.
func materializeText(t testing.TB, src trace.EventSource, name string) []byte {
	t.Helper()
	var evs []trace.Event
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		evs = append(evs, ev)
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{Meta: trace.Meta{Name: name}, Events: evs}
	var b bytes.Buffer
	if err := trace.WriteText(&b, tr); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestCrashResumeChurn extends the crash-equivalence matrix to the
// residual-state caps: runs killed right after slot retirements,
// summary-aging sweeps and interner evictions must resume from the
// last checkpoint to a result deeply equal to the uninterrupted run's
// — the caps' bookkeeping (free lists, sweep thresholds, recency
// ticks) is part of the checkpointed state, not ephemeral.
func TestCrashResumeChurn(t *testing.T) {
	forkText := materializeText(t, gen.Take(gen.ForkChurn(6, 99), 4000), "churn-fork")
	varsText := materializeText(t, gen.Take(gen.ChurningVars(6, 64, 8, 41), 4000), "churn-vars")
	nameText, err := io.ReadAll(gen.NameChurnText(4, 6, 1000, 23))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		engine string
		opts   []StreamOption
		text   []byte
	}{
		{"hb-tree-reclaim", "hb-tree", []StreamOption{WithSlotReclaim()}, forkText},
		{"hb-vc-reclaim", "hb-vc", []StreamOption{WithSlotReclaim()}, forkText},
		{"shb-tree-reclaim", "shb-tree", []StreamOption{WithSlotReclaim()}, forkText},
		{"wcp-tree-sumcap", "wcp-tree", []StreamOption{WithSummaryCap(16)}, varsText},
		{"hb-tree-interncap", "hb-tree", []StreamOption{WithInternCap(48)}, nameText},
	}
	for _, tc := range cases {
		for _, mode := range crashModes {
			tc, mode := tc, mode
			t.Run(tc.name+"/"+mode.name, func(t *testing.T) {
				n := bytes.Count(tc.text, []byte("\n"))
				base := append([]StreamOption{StreamValidate()}, tc.opts...)
				newSrc := func() EventSource { return trace.NewScanner(bytes.NewReader(tc.text)) }
				ref, err := mode.run(tc.engine, newSrc(), base...)
				if err != nil {
					t.Fatal(err)
				}
				// The corpus must actually churn, or the kill points prove
				// nothing about the caps' checkpointed bookkeeping.
				if ref.Mem == nil || ref.Mem.RetiredSlots+ref.Mem.SummaryEvictions+ref.Mem.InternEvictions == 0 {
					t.Fatalf("reference run saw no churn activity: %+v", ref.Mem)
				}
				for _, k := range killPoints(n, testing.Short()) {
					got := crashAndResume(t, mode, tc.engine, base, newSrc, k)
					if !reflect.DeepEqual(got, ref) {
						t.Errorf("kill at %d: resumed result differs from uninterrupted run\nresumed:   %+v\nreference: %+v", k, got, ref)
					}
				}
			})
		}
	}
}

// TestCheckpointBytesChurnInvariant repeats the byte-level invariant
// under slot reclamation: a resumed churn run's subsequent checkpoints
// must continue the uninterrupted run's sequence byte for byte (free
// lists, remap tables and retirement counters restore exactly).
func TestCheckpointBytesChurnInvariant(t *testing.T) {
	text := materializeText(t, gen.Take(gen.ForkChurn(5, 77), 3000), "churn-bytes")
	newSrc := func() EventSource { return trace.NewScanner(bytes.NewReader(text)) }
	base := []StreamOption{StreamValidate(), WithSlotReclaim()}
	full := newArchiveSink()
	if _, err := RunStreamSource("hb-tree", newSrc(), append(base, WithCheckpoint(1, full))...); err != nil {
		t.Fatal(err)
	}
	k := uint64(2 * trace.DefaultBatchSize)
	sink := &memSink{}
	src := trace.NewCrashSource(newSrc(), k)
	if _, err := RunStreamSource("hb-tree", src, append(base, WithCheckpoint(1, sink))...); !errors.Is(err, trace.ErrInjectedCrash) {
		t.Fatalf("err = %v, want injected crash", err)
	}
	if want := full.all[k]; !bytes.Equal(sink.last, want) {
		t.Errorf("checkpoint at %d under fault injection differs from uninterrupted run's", k)
	}
	resumed := newArchiveSink()
	if _, err := RunStreamSource("hb-tree", newSrc(), append(base, ResumeFrom(bytes.NewReader(sink.last)), WithCheckpoint(1, resumed))...); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if len(resumed.all) == 0 {
		t.Fatal("resumed run wrote no checkpoints")
	}
	for events, data := range resumed.all {
		want, ok := full.all[events]
		if !ok {
			t.Errorf("resumed run checkpointed at %d, uninterrupted run did not", events)
			continue
		}
		if !bytes.Equal(data, want) {
			t.Errorf("resumed run's checkpoint at %d differs from uninterrupted run's", events)
		}
	}
}

// pristineCheckpoint runs a checkpointed analysis over text and returns
// the checkpoint covering the whole trace.
func pristineCheckpoint(t testing.TB, engine string, text []byte) []byte {
	t.Helper()
	sink := &memSink{}
	if _, err := RunStreamSource(engine, trace.NewScanner(bytes.NewReader(text)), StreamValidate(), WithCheckpoint(1, sink)); err != nil {
		t.Fatal(err)
	}
	return sink.last
}

// TestCorruptCheckpointRejected truncates and bit-flips a real
// checkpoint at scale: every mutation must fail restore with an error
// wrapping ErrCorruptCheckpoint — never a panic, never a silent
// half-restored run.
func TestCorruptCheckpointRejected(t *testing.T) {
	tr := GenerateMixed(GenConfig{Name: "crash-corrupt", Threads: 5, Locks: 3, Vars: 16, Events: 1200, SyncFrac: 0.3, Seed: 3})
	var b bytes.Buffer
	if err := WriteTraceText(&b, tr); err != nil {
		t.Fatal(err)
	}
	text := b.Bytes()
	data := pristineCheckpoint(t, "wcp-tree", text)

	resume := func(ckpt []byte) error {
		_, err := RunStreamSource("wcp-tree", trace.NewScanner(bytes.NewReader(text)), StreamValidate(), ResumeFrom(bytes.NewReader(ckpt)))
		return err
	}
	if err := resume(data); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}

	step := 1
	if len(data) > 512 {
		step = len(data) / 256 // cover ~256 positions of large checkpoints
	}
	for n := 0; n < len(data); n += step {
		err := resume(data[:n])
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(data))
		}
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("truncation to %d: error %v does not wrap ErrCorruptCheckpoint", n, err)
		}
	}
	for i := 0; i < len(data); i += step {
		mut := append([]byte(nil), data...)
		mut[i] ^= 1 << uint(i%8)
		err := resume(mut)
		if err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("bit flip at byte %d: error %v does not wrap ErrCorruptCheckpoint", i, err)
		}
	}
}

// TestResumeConfigMismatch pins that a checkpoint restored under a
// different configuration fails with a descriptive plain error (a
// usage mistake), not a corruption error.
func TestResumeConfigMismatch(t *testing.T) {
	tr := GenerateMixed(GenConfig{Name: "crash-mismatch", Threads: 4, Locks: 2, Vars: 12, Events: 900, Seed: 9})
	var b bytes.Buffer
	if err := WriteTraceText(&b, tr); err != nil {
		t.Fatal(err)
	}
	text := b.Bytes()
	data := pristineCheckpoint(t, "hb-tree", text)
	for _, tc := range []struct {
		name string
		run  func() error
	}{
		{"engine", func() error {
			_, err := RunStreamSource("shb-tree", trace.NewScanner(bytes.NewReader(text)), StreamValidate(), ResumeFrom(bytes.NewReader(data)))
			return err
		}},
		{"validate", func() error {
			_, err := RunStreamSource("hb-tree", trace.NewScanner(bytes.NewReader(text)), ResumeFrom(bytes.NewReader(data)))
			return err
		}},
		{"workers", func() error {
			_, err := RunStreamParallelSource("hb-tree", trace.NewScanner(bytes.NewReader(text)), StreamValidate(), WithWorkers(2), ResumeFrom(bytes.NewReader(data)))
			return err
		}},
	} {
		err := tc.run()
		if err == nil {
			t.Fatalf("%s mismatch accepted", tc.name)
		}
		if errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("%s mismatch misreported as corruption: %v", tc.name, err)
		}
	}
}

// FuzzResumeCheckpoint feeds arbitrary bytes to ResumeFrom: restore
// must never panic, and any input it accepts must leave the run
// producing a well-formed result.
func FuzzResumeCheckpoint(f *testing.F) {
	tr := GenerateMixed(GenConfig{Name: "crash-fuzz", Threads: 4, Locks: 2, Vars: 12, Events: 600, Seed: 13})
	var b bytes.Buffer
	if err := WriteTraceText(&b, tr); err != nil {
		f.Fatal(err)
	}
	text := b.Bytes()
	pristine := pristineCheckpoint(f, "hb-tree", text)
	f.Add(pristine)
	f.Add(pristine[:len(pristine)/2])
	f.Add([]byte{})
	f.Add([]byte("TCKP\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := RunStreamSource("hb-tree", trace.NewScanner(bytes.NewReader(text)), StreamValidate(), ResumeFrom(bytes.NewReader(data)))
		if err == nil && res.Events != uint64(len(tr.Events)) {
			t.Fatalf("accepted checkpoint left a short run: %d of %d events", res.Events, len(tr.Events))
		}
	})
}

// nullSink discards checkpoints (the serialization still runs).
type nullSink struct{}

type nullWC struct{}

func (nullWC) Write(p []byte) (int, error) { return len(p), nil }
func (nullWC) Close() error                { return nil }

func (nullSink) Create(uint64) (io.WriteCloser, error) { return nullWC{}, nil }

// BenchmarkCheckpointOverhead measures the cost WithCheckpoint adds to
// mixed ingestion at the default-scale cadence of one checkpoint per
// 100k events (the acceptance threshold is <5%).
func BenchmarkCheckpointOverhead(b *testing.B) {
	tr := GenerateMixed(GenConfig{Name: "ckpt-bench", Threads: 8, Locks: 6, Vars: 64, Events: 400_000, SyncFrac: 0.3, Seed: 21})
	var buf bytes.Buffer
	if err := WriteTraceText(&buf, tr); err != nil {
		b.Fatal(err)
	}
	text := buf.Bytes()
	run := func(b *testing.B, opts ...StreamOption) {
		b.SetBytes(int64(len(tr.Events)))
		for i := 0; i < b.N; i++ {
			if _, err := RunStreamSource("hb-tree", trace.NewScanner(bytes.NewReader(text)), opts...); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b) })
	b.Run("every100k", func(b *testing.B) { run(b, WithCheckpoint(100_000, nullSink{})) })
}
