package treeclock_test

import (
	"bytes"
	"math/rand"
	"testing"

	"treeclock"
)

// ingestModes are the three consumption strategies of the batched
// ingestion layer; every one must be observationally identical.
var ingestModes = []struct {
	name string
	opts []treeclock.StreamOption
}{
	{"scalar", []treeclock.StreamOption{treeclock.StreamScalar()}},
	{"batch", nil},
	{"pipeline-2", []treeclock.StreamOption{treeclock.WithPipeline(2)}},
	{"pipeline-8", []treeclock.StreamOption{treeclock.WithPipeline(8)}},
}

// TestIngestPathsAgree is the differential acceptance test of the
// batched-ingestion layer: randomly generated traces, rendered to text
// and binary, must produce byte-identical race reports and identical
// metadata through the scalar, batched and pipelined paths, for every
// registry engine.
func TestIngestPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 6; trial++ {
		cfg := treeclock.GenConfig{
			Name:     "fuzz",
			Threads:  2 + rng.Intn(12),
			Locks:    1 + rng.Intn(8),
			Vars:     1 + rng.Intn(200),
			Events:   500 + rng.Intn(4000),
			Seed:     rng.Int63(),
			SyncFrac: rng.Float64() * 0.5,
			ReadFrac: rng.Float64(),
			HotFrac:  rng.Float64() * 0.2,
		}
		tr := treeclock.GenerateMixed(cfg)
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid trace: %v", trial, err)
		}
		var text, bin bytes.Buffer
		if err := treeclock.WriteTraceText(&text, tr); err != nil {
			t.Fatal(err)
		}
		if err := treeclock.WriteTraceBinary(&bin, tr); err != nil {
			t.Fatal(err)
		}
		formats := []struct {
			name string
			data []byte
			opts []treeclock.StreamOption
		}{
			{"text", text.Bytes(), nil},
			{"bin", bin.Bytes(), []treeclock.StreamOption{treeclock.StreamBinary()}},
		}
		for _, engine := range treeclock.Engines() {
			for _, f := range formats {
				var wantReport string
				var wantMeta treeclock.Meta
				var wantEvents uint64
				for i, mode := range ingestModes {
					opts := append(append([]treeclock.StreamOption{}, f.opts...), mode.opts...)
					res, err := treeclock.RunStream(engine, bytes.NewReader(f.data), opts...)
					if err != nil {
						t.Fatalf("trial %d %s/%s/%s: %v", trial, engine, f.name, mode.name, err)
					}
					report := raceReport(res.Summary, res.Samples)
					if i == 0 {
						wantReport, wantMeta, wantEvents = report, res.Meta, res.Events
						continue
					}
					if report != wantReport {
						t.Errorf("trial %d %s/%s: %s race report diverges from %s:\n%s\nvs\n%s",
							trial, engine, f.name, mode.name, ingestModes[0].name, report, wantReport)
					}
					if res.Meta != wantMeta || res.Events != wantEvents {
						t.Errorf("trial %d %s/%s: %s meta/events diverge: %+v/%d vs %+v/%d",
							trial, engine, f.name, mode.name, res.Meta, res.Events, wantMeta, wantEvents)
					}
				}
			}
		}
	}
}

// TestIngestScalarPipelineExclusive pins the option conflict error.
func TestIngestScalarPipelineExclusive(t *testing.T) {
	_, err := treeclock.RunStream("hb-tree", bytes.NewReader(nil),
		treeclock.StreamScalar(), treeclock.WithPipeline(2))
	if err == nil {
		t.Fatal("StreamScalar + WithPipeline accepted")
	}
}

// TestIngestMalformedThroughPipeline checks error reporting survives
// each consumption path (same error text, valid prefix processed).
func TestIngestMalformedThroughPipeline(t *testing.T) {
	input := []byte("t0 w x0\nt0 acq l0\nt0 oops x0\n")
	var want string
	for i, mode := range ingestModes {
		_, err := treeclock.RunStream("shb-tree", bytes.NewReader(input), mode.opts...)
		if err == nil {
			t.Fatalf("%s: malformed trace accepted", mode.name)
		}
		if i == 0 {
			want = err.Error()
		} else if err.Error() != want {
			t.Errorf("%s error = %q, want %q", mode.name, err.Error(), want)
		}
	}
}
