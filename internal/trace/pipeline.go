package trace

// Pipelined decode
//
// Decoding a trace (tokenizing text or uvarint-decoding binary) and
// analyzing it are independent stages that the scalar loop serializes.
// Pipeline moves decoding into its own goroutine: the producer pulls
// batches from the wrapped source into a small ring of recycled
// buffers and hands them to the consumer through a channel, so parsing
// the next batch overlaps engine work on the current one. Batches
// travel through a single FIFO channel and are consumed in order, so
// the event sequence — and therefore every analysis result — is
// identical to the scalar path; only wall-clock time changes.

// Pipeline wraps an EventSource with an asynchronous decode stage. It
// implements BatchProducer (the zero-copy fast path the engine runtime
// prefers) and the plain EventSource interface. A Pipeline must be
// Closed if the consumer abandons it before exhaustion, or the decode
// goroutine leaks; draining it to ok == false shuts the producer down
// on its own, and Close is then a no-op.
type Pipeline struct {
	src     EventSource
	batches chan []Event  // decoded batches, in trace order
	free    chan []Event  // recycled buffers
	stop    chan struct{} // closed by Close to cancel the producer
	done    chan struct{} // closed by the producer on exit
	srcErr  error         // written by the producer before closing batches
	cur     []Event       // current batch for the per-event Next view
	pos     int
	closed  bool
}

// NewPipeline runs src's decoding in a goroutine feeding batches of
// batchSize events through a ring of depth recycled buffers. depth <= 0
// selects 4 buffers, batchSize <= 0 selects DefaultBatchSize. A depth
// of at least 2 is enforced — with a single buffer the stages could
// never overlap.
func NewPipeline(src EventSource, depth, batchSize int) *Pipeline {
	if depth <= 0 {
		depth = 4
	}
	if depth < 2 {
		depth = 2
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	p := &Pipeline{
		src:     src,
		batches: make(chan []Event, depth),
		free:    make(chan []Event, depth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i := 0; i < depth; i++ {
		p.free <- make([]Event, batchSize)
	}
	go p.run()
	return p
}

// run is the decode stage: it recycles buffers from the free ring,
// fills each from the source, and ships it downstream in order.
func (p *Pipeline) run() {
	defer close(p.done)
	defer close(p.batches)
	for {
		var buf []Event
		select {
		case buf = <-p.free:
		case <-p.stop:
			return
		}
		n, ok := ReadBatch(p.src, buf[:cap(buf)])
		if n > 0 {
			select {
			case p.batches <- buf[:n]:
			case <-p.stop:
				return
			}
		}
		if !ok {
			// Capture the source's error before close(p.batches) so the
			// channel close orders it before any Err() call.
			p.srcErr = p.src.Err()
			return
		}
	}
}

// AcquireBatch returns the next decoded batch, blocking on the decode
// stage if it is behind. ok == false means the source is exhausted or
// failed; check Err.
func (p *Pipeline) AcquireBatch() ([]Event, bool) {
	b, ok := <-p.batches
	if !ok {
		// The producer closes batches before done; waiting here makes
		// srcErr visible to Err the moment exhaustion is reported.
		<-p.done
	}
	return b, ok
}

// ReleaseBatch returns a batch obtained from AcquireBatch to the ring.
func (p *Pipeline) ReleaseBatch(b []Event) {
	select {
	case p.free <- b[:cap(b)]:
	default: // ring already full (double release); drop the buffer
	}
}

// Next is the per-event view, for consumers that do not batch.
func (p *Pipeline) Next() (Event, bool) {
	for p.pos >= len(p.cur) {
		if p.cur != nil {
			p.ReleaseBatch(p.cur)
			p.cur = nil
		}
		b, ok := p.AcquireBatch()
		if !ok {
			return Event{}, false
		}
		p.cur, p.pos = b, 0
	}
	ev := p.cur[p.pos]
	p.pos++
	return ev, true
}

// Err returns the wrapped source's error. It is meaningful once
// AcquireBatch or Next has reported false (the EventSource contract);
// calling it earlier may miss an error the producer has not hit yet.
func (p *Pipeline) Err() error {
	select {
	case <-p.done:
		return p.srcErr
	default:
		return nil
	}
}

// Close cancels the decode stage and waits for it to exit. It is safe
// to call multiple times and after exhaustion.
//
// The wait covers at most one in-flight ReadBatch: a Go io.Reader
// blocked in Read cannot be interrupted, so if the underlying reader
// may block indefinitely (a socket, a pipe), unblock it — close the
// file or connection, or set a read deadline — to make Close return.
func (p *Pipeline) Close() {
	if !p.closed {
		p.closed = true
		close(p.stop)
	}
	<-p.done
	// Drain any batch the producer shipped before it saw the stop
	// signal, so its buffer is not falsely reported as leaked.
	for range p.batches {
	}
}

var (
	_ EventSource   = (*Pipeline)(nil)
	_ BatchProducer = (*Pipeline)(nil)
)
