package trace

import (
	"strings"
	"testing"
)

func TestScannerStreamsEvents(t *testing.T) {
	s := NewScanner(strings.NewReader(sampleText))
	var got []Event
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, ev)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	want := mustParse(t, sampleText)
	if len(got) != want.Len() {
		t.Fatalf("scanned %d events, want %d", len(got), want.Len())
	}
	for i := range got {
		if got[i] != want.Events[i] {
			t.Errorf("event %d: %v vs %v", i, got[i], want.Events[i])
		}
	}
	if s.Meta() != want.Meta {
		t.Errorf("meta = %+v, want %+v", s.Meta(), want.Meta)
	}
}

func TestScannerScanAllMatchesParseText(t *testing.T) {
	tr, err := NewScanner(strings.NewReader(sampleText)).ScanAll()
	if err != nil {
		t.Fatalf("ScanAll: %v", err)
	}
	want := mustParse(t, sampleText)
	if tr.Len() != want.Len() || tr.Meta != want.Meta {
		t.Errorf("ScanAll diverges from ParseText")
	}
}

func TestScannerReportsErrors(t *testing.T) {
	s := NewScanner(strings.NewReader("t0 acq l0\nt0 badop l0\n"))
	if _, ok := s.Next(); !ok {
		t.Fatal("first event must scan")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("bad line must stop the scan")
	}
	if s.Err() == nil {
		t.Error("Err must report the parse failure")
	}
	// Scanner stays stopped.
	if _, ok := s.Next(); ok {
		t.Error("scanner must not resume after an error")
	}
}

func TestScannerCleanEOF(t *testing.T) {
	s := NewScanner(strings.NewReader("# only comments\n\n"))
	if _, ok := s.Next(); ok {
		t.Fatal("comment-only input must yield no events")
	}
	if s.Err() != nil {
		t.Errorf("clean EOF must not error: %v", s.Err())
	}
}
