package trace

import (
	"bytes"
	"strings"
	"testing"

	"treeclock/internal/vt"
)

func mustParse(t *testing.T, s string) *Trace {
	t.Helper()
	tr, err := ParseTextString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return tr
}

const sampleText = `
# sample
t0 acq l0
t0 w x0
t0 rel l0
t1 acq l0
t1 r x0
t1 rel l0
`

func TestParseText(t *testing.T) {
	tr := mustParse(t, sampleText)
	if tr.Meta.Threads != 2 || tr.Meta.Locks != 1 || tr.Meta.Vars != 1 {
		t.Errorf("meta = %+v", tr.Meta)
	}
	if tr.Len() != 6 {
		t.Errorf("len = %d, want 6", tr.Len())
	}
	want := []Event{
		{0, 0, Acquire}, {0, 0, Write}, {0, 0, Release},
		{1, 0, Acquire}, {1, 0, Read}, {1, 0, Release},
	}
	for i, e := range tr.Events {
		if e != want[i] {
			t.Errorf("event %d = %v, want %v", i, e, want[i])
		}
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestParseTextSymbolicNames(t *testing.T) {
	tr := mustParse(t, "main fork worker\nworker w shared\nmain join worker\nmain r shared\n")
	if tr.Meta.Threads != 2 || tr.Meta.Vars != 1 {
		t.Errorf("meta = %+v", tr.Meta)
	}
	if tr.Events[0].Kind != Fork || tr.Events[0].Obj != 1 {
		t.Errorf("fork event = %v", tr.Events[0])
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, bad := range []string{
		"t0 acq",          // too few fields
		"t0 acq l0 extra", // too many fields
		"t0 lock l0",      // unknown op
	} {
		if _, err := ParseTextString(bad); err == nil {
			t.Errorf("parse(%q) succeeded, want error", bad)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := mustParse(t, sampleText)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	tr2, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if tr2.Len() != tr.Len() {
		t.Fatalf("round trip changed length: %d vs %d", tr2.Len(), tr.Len())
	}
	for i := range tr.Events {
		if tr.Events[i] != tr2.Events[i] {
			t.Errorf("event %d: %v vs %v", i, tr.Events[i], tr2.Events[i])
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := mustParse(t, sampleText)
	tr.Meta.Name = "sample"
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	tr2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if tr2.Meta != tr.Meta || tr2.Len() != tr.Len() {
		t.Fatalf("round trip mismatch: %+v vs %+v", tr2.Meta, tr.Meta)
	}
	for i := range tr.Events {
		if tr.Events[i] != tr2.Events[i] {
			t.Errorf("event %d differs", i)
		}
	}
}

func TestReadBinaryGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a gob stream")); err == nil {
		t.Error("decoding garbage must fail")
	}
}

func TestValidateLockSemantics(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
		ok     bool
	}{
		{"double acquire other thread", []Event{{0, 0, Acquire}, {1, 0, Acquire}}, false},
		{"double acquire same thread", []Event{{0, 0, Acquire}, {0, 0, Acquire}}, false},
		{"release without hold", []Event{{0, 0, Release}}, false},
		{"release by non-holder", []Event{{0, 0, Acquire}, {1, 0, Release}}, false},
		{"well formed", []Event{{0, 0, Acquire}, {0, 0, Release}, {1, 0, Acquire}, {1, 0, Release}}, true},
		{"nested different locks", []Event{{0, 0, Acquire}, {0, 1, Acquire}, {0, 1, Release}, {0, 0, Release}}, true},
	}
	for _, c := range cases {
		tr := &Trace{Meta: Meta{Threads: 2, Locks: 2, Vars: 1}, Events: c.events}
		err := tr.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestValidateRanges(t *testing.T) {
	meta := Meta{Threads: 2, Locks: 1, Vars: 1}
	cases := []Event{
		{5, 0, Read},     // thread out of range
		{0, 9, Read},     // var out of range
		{0, 9, Acquire},  // lock out of range
		{0, 9, Fork},     // thread operand out of range
		{0, 0, Kind(42)}, // bad kind
	}
	for _, e := range cases {
		tr := &Trace{Meta: meta, Events: []Event{e}}
		if tr.Validate() == nil {
			t.Errorf("Validate accepted bad event %v", e)
		}
	}
}

func TestValidateForkJoin(t *testing.T) {
	meta := Meta{Threads: 3, Locks: 0, Vars: 1}
	bad := [][]Event{
		{{0, 0, Fork}},                              // fork self (Obj 0 == T 0)
		{{1, 0, Write}, {0, 1, Fork}},               // forked thread already active
		{{0, 1, Fork}, {2, 1, Fork}},                // forked twice
		{{0, 1, Join}, {1, 0, Write}},               // act after join
		{{0, 1, Fork}, {1, 0, Write}, {1, 0, Read}}, // wrong var? actually fine
	}
	// The last case is actually valid; check it separately.
	for i, evs := range bad[:4] {
		tr := &Trace{Meta: meta, Events: evs}
		if tr.Validate() == nil {
			t.Errorf("case %d: Validate accepted %v", i, evs)
		}
	}
	ok := &Trace{Meta: meta, Events: []Event{{0, 1, Fork}, {1, 0, Write}, {0, 1, Join}, {0, 0, Read}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid fork/join rejected: %v", err)
	}
}

func TestLocalTimes(t *testing.T) {
	tr := mustParse(t, "t0 w x0\nt1 w x0\nt0 r x0\nt0 r x0\nt1 r x0\n")
	lt := tr.LocalTimes()
	want := []vt.Time{1, 1, 2, 3, 2}
	for i := range want {
		if lt[i] != want[i] {
			t.Errorf("lTime[%d] = %d, want %d", i, lt[i], want[i])
		}
	}
}

func TestConflicting(t *testing.T) {
	w0 := Event{0, 0, Write}
	r1 := Event{1, 0, Read}
	r2 := Event{2, 0, Read}
	wOther := Event{1, 1, Write}
	acq := Event{1, 0, Acquire}
	if !Conflicting(w0, r1) || !Conflicting(r1, w0) {
		t.Error("write-read on same var must conflict")
	}
	if Conflicting(r1, r2) {
		t.Error("read-read must not conflict")
	}
	if Conflicting(w0, wOther) {
		t.Error("different vars must not conflict")
	}
	if Conflicting(w0, Event{0, 0, Read}) {
		t.Error("same thread must not conflict")
	}
	if Conflicting(w0, acq) {
		t.Error("sync events never conflict")
	}
}

func TestComputeStats(t *testing.T) {
	tr := mustParse(t, sampleText)
	tr.Meta.Name = "sample"
	tr.Meta.Vars = 10 // capacity larger than usage
	s := ComputeStats(tr)
	if s.Name != "sample" || s.Events != 6 || s.Threads != 2 || s.Vars != 1 || s.Locks != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Reads != 1 || s.Writes != 1 {
		t.Errorf("reads/writes = %d/%d", s.Reads, s.Writes)
	}
	wantSync := 100 * 4.0 / 6.0
	if s.SyncPct < wantSync-0.01 || s.SyncPct > wantSync+0.01 {
		t.Errorf("SyncPct = %f, want %f", s.SyncPct, wantSync)
	}
	wantRW := 100 * 2.0 / 6.0
	if s.RWPct < wantRW-0.01 || s.RWPct > wantRW+0.01 {
		t.Errorf("RWPct = %f, want %f", s.RWPct, wantRW)
	}
}

func TestKindStringAndPredicates(t *testing.T) {
	if Read.String() != "r" || Write.String() != "w" || Acquire.String() != "acq" ||
		Release.String() != "rel" || Fork.String() != "fork" || Join.String() != "join" {
		t.Error("kind mnemonics wrong")
	}
	if !Read.IsAccess() || !Write.IsAccess() || Acquire.IsAccess() {
		t.Error("IsAccess wrong")
	}
	if !Acquire.IsSync() || !Release.IsSync() || Read.IsSync() {
		t.Error("IsSync wrong")
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestEventString(t *testing.T) {
	cases := map[Event]string{
		{0, 1, Read}:    "t0 r x1",
		{2, 0, Acquire}: "t2 acq l0",
		{1, 2, Fork}:    "t1 fork t2",
	}
	for e, want := range cases {
		if e.String() != want {
			t.Errorf("String(%v) = %q, want %q", e, e.String(), want)
		}
	}
}

func TestComputeLockStats(t *testing.T) {
	tr, err := ParseTextString(`
t0 acq l0
t0 w x0
t0 rel l0
t1 acq l0
t1 rel l0
t1 acq l2
t0 w x1
`)
	if err != nil {
		t.Fatal(err)
	}
	stats := ComputeLockStats(tr)
	if len(stats) != 2 {
		t.Fatalf("stats = %+v, want entries for 2 locks", stats)
	}
	l0 := stats[0]
	if l0.Lock != 0 || l0.Acquires != 2 || l0.Releases != 2 || l0.Unbalanced() || l0.Holder != vt.None {
		t.Errorf("l0 stats = %+v, want balanced 2/2, free", l0)
	}
	l1 := stats[1]
	if l1.Acquires != 1 || l1.Releases != 0 || !l1.Unbalanced() || l1.Holder != 1 {
		t.Errorf("open-section stats = %+v, want 1 acq / 0 rel held by t1", l1)
	}
}

func TestComputeLockStatsMalformed(t *testing.T) {
	// Stray release (never acquired): counted, flagged, not held.
	tr := &Trace{
		Meta: Meta{Threads: 1, Locks: 1},
		Events: []Event{
			{T: 0, Obj: 0, Kind: Release},
			{T: 0, Obj: 0, Kind: Release},
		},
	}
	stats := ComputeLockStats(tr)
	if len(stats) != 1 || stats[0].Releases != 2 || !stats[0].Unbalanced() || stats[0].Holder != vt.None {
		t.Errorf("stats = %+v, want one unbalanced 0/2 entry", stats)
	}
}

func TestComputeLockStatsBeyondMeta(t *testing.T) {
	// Locks beyond the declared Meta range (e.g. a truncated header)
	// are still reported: the tool must work on suspect traces.
	tr := &Trace{
		Meta: Meta{Threads: 1, Locks: 1},
		Events: []Event{
			{T: 0, Obj: 7, Kind: Acquire},
			{T: 0, Obj: 7, Kind: Release},
		},
	}
	stats := ComputeLockStats(tr)
	if len(stats) != 1 || stats[0].Lock != 7 || stats[0].Unbalanced() {
		t.Errorf("stats = %+v, want one balanced entry for l7", stats)
	}
}
