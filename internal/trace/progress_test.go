package trace

import "testing"

// progressTrace builds a small access-only trace.
func progressTrace(n int) *Trace {
	tr := &Trace{Meta: Meta{Name: "progress", Threads: 2, Vars: 4}}
	for i := 0; i < n; i++ {
		tr.Events = append(tr.Events, Event{T: 0, Obj: int32(i % 4), Kind: Read})
	}
	return tr
}

// TestProgressSourceBatch pins callback cadence and final count on the
// batch path, and that wrapping changes no events.
func TestProgressSourceBatch(t *testing.T) {
	const n = 2500
	var reports []uint64
	src := NewProgressSource(NewReplayer(progressTrace(n)), 1000, func(ev uint64, rate float64) {
		reports = append(reports, ev)
		if rate < 0 {
			t.Errorf("negative rate %f", rate)
		}
	})
	bs, ok := src.(BatchSource)
	if !ok {
		t.Fatal("progress wrapper dropped the batch capability")
	}
	buf := make([]Event, 128)
	total := 0
	for {
		c, ok := bs.NextBatch(buf)
		total += c
		if !ok {
			break
		}
	}
	if total != n {
		t.Fatalf("consumed %d events, want %d", total, n)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports (%v), want 2 (at ~1000 and ~2000)", len(reports), reports)
	}
	for i, r := range reports {
		if r < uint64(i+1)*1000 || r >= uint64(i+1)*1000+128 {
			t.Errorf("report %d fired at %d events, want within a batch of %d", i, r, (i+1)*1000)
		}
	}
}

// TestProgressSourceScalar pins the per-event path.
func TestProgressSourceScalar(t *testing.T) {
	var reports int
	src := NewProgressSource(NewReplayer(progressTrace(50)), 10, func(uint64, float64) { reports++ })
	n := 0
	for {
		_, ok := src.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 50 || reports != 5 {
		t.Fatalf("consumed %d events with %d reports, want 50 and 5", n, reports)
	}
}

// TestProgressProducer pins that a wrapped BatchProducer stays a
// producer (zero-copy path) and counts acquired batches.
func TestProgressProducer(t *testing.T) {
	p := NewPipeline(NewReplayer(progressTrace(1000)), 2, 100)
	defer p.Close()
	var reports int
	src := NewProgressSource(p, 300, func(uint64, float64) { reports++ })
	bp, ok := src.(BatchProducer)
	if !ok {
		t.Fatal("progress wrapper dropped the producer capability")
	}
	total := 0
	for {
		b, ok := bp.AcquireBatch()
		if !ok {
			break
		}
		total += len(b)
		bp.ReleaseBatch(b)
	}
	if total != 1000 {
		t.Fatalf("consumed %d events, want 1000", total)
	}
	if reports != 3 {
		t.Fatalf("%d reports, want 3 (at 300/600/900)", reports)
	}
}
