package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func drainValidator(s string) error {
	v := NewValidator(NewScanner(strings.NewReader(s)))
	for {
		if _, ok := v.Next(); !ok {
			return v.Err()
		}
	}
}

func TestValidatorAcceptsWellFormed(t *testing.T) {
	if err := drainValidator(sampleText); err != nil {
		t.Errorf("well-formed trace rejected: %v", err)
	}
}

func TestValidatorViolations(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"double-acquire", "t0 acq l0\nt1 acq l0\n", "already held"},
		{"reentrant-acquire", "t0 acq l0\nt0 acq l0\n", "already held"},
		{"release-not-held", "t0 rel l0\n", "not held"},
		{"release-wrong-thread", "t0 acq l0\nt1 rel l0\n", "not held"},
		{"act-after-join", "t0 join t1\nt1 w x0\n", "acts after being joined"},
		{"fork-active", "t1 w x0\nt0 fork t1\n", "already active"},
		{"fork-twice", "t0 fork t1\nt1 w x0\nt2 fork t1\n", "already active"},
		{"fork-self", "t0 fork t0\n", "itself"},
		{"join-self", "t0 join t0\n", "itself"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := drainValidator(c.in)
			if err == nil {
				t.Fatalf("accepted %q", c.in)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestValidatorAgreesWithMaterialized cross-checks the streaming
// validator against Trace.Validate on the discipline rules.
func TestValidatorAgreesWithMaterialized(t *testing.T) {
	inputs := []string{
		sampleText,
		"t0 acq l0\nt1 acq l0\n",
		"t0 fork t1\nt1 r x0\nt0 join t1\n",
		"t0 fork t1\nt1 r x0\nt0 join t1\nt1 w x0\n",
	}
	for _, in := range inputs {
		tr, err := ParseTextString(in)
		if err != nil {
			t.Fatal(err)
		}
		matErr := tr.Validate()
		strErr := drainValidator(in)
		if (matErr == nil) != (strErr == nil) {
			t.Errorf("disagreement on %q: materialized %v, streaming %v", in, matErr, strErr)
		}
	}
}

// TestValidatorRejectsHostileIDs: an in-range-but-huge identifier
// (delivered by a non-text source; the text scanner assigns sequential
// ids) must fail validation before the validator's grow paths attempt
// a multi-gigabyte allocation.
func TestValidatorRejectsHostileIDs(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"thread", Event{T: 1 << 30, Kind: Write, Obj: 0}},
		{"operand", Event{T: 0, Kind: Acquire, Obj: 1<<31 - 1}},
		{"fork-target", Event{T: 0, Kind: Fork, Obj: 1 << 28}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v := NewValidator(NewReplayer(&Trace{Events: []Event{c.ev}}))
			if _, ok := v.Next(); ok {
				t.Fatalf("hostile id %v accepted", c.ev)
			}
			if v.Err() == nil || !strings.Contains(v.Err().Error(), "out of range") {
				t.Fatalf("Err() = %v, want out-of-range error", v.Err())
			}
		})
	}
}

// TestBinaryRejectsOversizedIDs: a corrupt stream encoding an
// identifier beyond int32 must error, not wrap to a negative id.
func TestBinaryRejectsOversizedIDs(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	put(0) // name length
	put(1) // threads
	put(0) // locks
	put(1) // vars
	put(1) // event count
	buf.WriteByte(byte(Write))
	put(0)       // thread
	put(1 << 31) // operand: out of int32 range
	s := NewBinaryScanner(&buf)
	if _, ok := s.Next(); ok {
		t.Fatal("oversized operand accepted")
	}
	if s.Err() == nil || !strings.Contains(s.Err().Error(), "out of range") {
		t.Fatalf("Err() = %v, want out-of-range error", s.Err())
	}
}

// TestBinaryRejectsHostileInRangeIDs: an identifier that fits in int32
// but exceeds the global id bound must fail at decode, before it can
// reach a dense grow path.
func TestBinaryRejectsHostileInRangeIDs(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	put(0) // name length
	put(1) // threads
	put(0) // locks
	put(1) // vars
	put(1) // event count
	buf.WriteByte(byte(Write))
	put(1 << 30) // thread: in int32 range, beyond the id bound
	put(0)       // operand
	s := NewBinaryScanner(&buf)
	if _, ok := s.Next(); ok {
		t.Fatal("hostile in-range thread id accepted")
	}
	if s.Err() == nil || !strings.Contains(s.Err().Error(), "out of range") {
		t.Fatalf("Err() = %v, want out-of-range error", s.Err())
	}
}
