// Package trace models concurrent execution traces: sequences of
// read/write/acquire/release events (plus fork/join as an extension)
// performed by threads, exactly as in §2.1 of the paper. It provides an
// in-memory representation with dense identifier spaces, well-formedness
// validation (lock semantics), per-trace statistics matching the paper's
// Tables 1 and 3, and text and binary serialization.
//
// # Streaming and batched ingestion
//
// Events stream through the EventSource interface: the text Scanner (a
// byte-level tokenizer over one reused read buffer — zero allocations
// per event in steady state), the BinaryScanner, the discipline-checking
// Validator and the in-memory Replayer all implement it. Each also
// implements BatchSource, delivering events in bulk into a caller-owned
// buffer so per-event interface dispatch amortizes away; the engine
// runtime consumes batches automatically. Pipeline optionally moves
// decoding into its own goroutine behind a ring of recycled batch
// buffers, overlapping parsing with analysis while preserving event
// order exactly.
package trace

import (
	"fmt"

	"treeclock/internal/vt"
)

// Kind enumerates event operations.
type Kind uint8

const (
	// Read is op = r(x): the event reads global variable x.
	Read Kind = iota
	// Write is op = w(x): the event writes global variable x.
	Write
	// Acquire is op = acq(ℓ): the event acquires lock ℓ.
	Acquire
	// Release is op = rel(ℓ): the event releases lock ℓ.
	Release
	// Fork starts a new thread (extension; the paper's §2.1 notes
	// handling fork/join is straightforward). Obj is the child TID.
	Fork
	// Join waits for a thread to finish. Obj is the joined TID.
	Join
	numKinds
)

// String returns the operation mnemonic used by the text format.
func (k Kind) String() string {
	switch k {
	case Read:
		return "r"
	case Write:
		return "w"
	case Acquire:
		return "acq"
	case Release:
		return "rel"
	case Fork:
		return "fork"
	case Join:
		return "join"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsAccess reports whether the kind reads or writes a variable.
func (k Kind) IsAccess() bool { return k == Read || k == Write }

// IsSync reports whether the kind is a lock synchronization operation.
func (k Kind) IsSync() bool { return k == Acquire || k == Release }

// Event is one step of a trace: thread T performs operation Kind on
// operand Obj. Obj indexes the variable space for accesses, the lock
// space for acquire/release, and the thread space for fork/join.
type Event struct {
	T    vt.TID
	Obj  int32
	Kind Kind
}

// String renders the event in the text-format syntax.
func (e Event) String() string {
	switch e.Kind {
	case Read, Write:
		return fmt.Sprintf("t%d %s x%d", e.T, e.Kind, e.Obj)
	case Acquire, Release:
		return fmt.Sprintf("t%d %s l%d", e.T, e.Kind, e.Obj)
	case Fork, Join:
		return fmt.Sprintf("t%d %s t%d", e.T, e.Kind, e.Obj)
	default:
		return fmt.Sprintf("t%d %s %d", e.T, e.Kind, e.Obj)
	}
}

// Meta describes the identifier spaces of a trace. Identifiers are
// dense: threads are 0..Threads-1, and so on.
type Meta struct {
	Name    string
	Threads int
	Locks   int
	Vars    int
}

// Trace is a fully materialized execution trace.
type Trace struct {
	Meta   Meta
	Events []Event
}

// Len returns the number of events.
func (tr *Trace) Len() int { return len(tr.Events) }

// Conflicting reports whether two events conflict (§2.1): same
// variable, different threads, at least one write.
func Conflicting(a, b Event) bool {
	return a.Kind.IsAccess() && b.Kind.IsAccess() &&
		a.Obj == b.Obj && a.T != b.T &&
		(a.Kind == Write || b.Kind == Write)
}

// LocalTimes returns, for each event index, the event's local time
// lTime (1-based position within its thread).
func (tr *Trace) LocalTimes() []vt.Time {
	lt := make([]vt.Time, len(tr.Events))
	count := make([]vt.Time, tr.Meta.Threads)
	for i, e := range tr.Events {
		count[e.T]++
		lt[i] = count[e.T]
	}
	return lt
}

// Validate checks trace well-formedness and returns a descriptive error
// for the first violation:
//   - identifiers within the Meta ranges;
//   - lock semantics: a lock is acquired only when free (non-reentrant,
//     as in §2.1) and released only by its holder;
//   - fork/join sanity: a forked thread has no earlier events, a thread
//     is forked at most once, joined threads perform no later events,
//     and a thread never forks/joins itself.
func (tr *Trace) Validate() error {
	holder := make([]vt.TID, tr.Meta.Locks)
	for i := range holder {
		holder[i] = vt.None
	}
	started := make([]bool, tr.Meta.Threads) // performed an event or was forked
	forked := make([]bool, tr.Meta.Threads)
	joined := make([]bool, tr.Meta.Threads)
	for i, e := range tr.Events {
		if e.T < 0 || int(e.T) >= tr.Meta.Threads {
			return fmt.Errorf("event %d (%v): thread out of range [0,%d)", i, e, tr.Meta.Threads)
		}
		if e.Kind >= numKinds {
			return fmt.Errorf("event %d: invalid kind %d", i, e.Kind)
		}
		if joined[e.T] {
			return fmt.Errorf("event %d (%v): thread %d acts after being joined", i, e, e.T)
		}
		started[e.T] = true
		switch e.Kind {
		case Read, Write:
			if e.Obj < 0 || int(e.Obj) >= tr.Meta.Vars {
				return fmt.Errorf("event %d (%v): variable out of range [0,%d)", i, e, tr.Meta.Vars)
			}
		case Acquire:
			if e.Obj < 0 || int(e.Obj) >= tr.Meta.Locks {
				return fmt.Errorf("event %d (%v): lock out of range [0,%d)", i, e, tr.Meta.Locks)
			}
			if holder[e.Obj] != vt.None {
				return fmt.Errorf("event %d (%v): lock %d already held by thread %d", i, e, e.Obj, holder[e.Obj])
			}
			holder[e.Obj] = e.T
		case Release:
			if e.Obj < 0 || int(e.Obj) >= tr.Meta.Locks {
				return fmt.Errorf("event %d (%v): lock out of range [0,%d)", i, e, tr.Meta.Locks)
			}
			if holder[e.Obj] != e.T {
				return fmt.Errorf("event %d (%v): lock %d not held by thread %d", i, e, e.Obj, e.T)
			}
			holder[e.Obj] = vt.None
		case Fork, Join:
			u := vt.TID(e.Obj)
			if u < 0 || int(u) >= tr.Meta.Threads {
				return fmt.Errorf("event %d (%v): thread operand out of range [0,%d)", i, e, tr.Meta.Threads)
			}
			if u == e.T {
				return fmt.Errorf("event %d (%v): thread %s itself", i, e, e.Kind)
			}
			if e.Kind == Fork {
				if started[u] {
					return fmt.Errorf("event %d (%v): forked thread %d already active", i, e, u)
				}
				if forked[u] {
					return fmt.Errorf("event %d (%v): thread %d forked twice", i, e, u)
				}
				forked[u] = true
				started[u] = true
			} else {
				joined[u] = true
			}
		}
	}
	return nil
}

// Stats summarizes a trace in the paper's Table 1/Table 3 terms.
type Stats struct {
	Name    string
	Events  int     // N
	Threads int     // T: threads that actually appear
	Vars    int     // M: memory locations that actually appear
	Locks   int     // L: locks that actually appear
	SyncPct float64 // share of acq/rel events, in percent
	RWPct   float64 // share of read/write events, in percent
	Reads   int
	Writes  int
}

// ComputeStats scans the trace once and reports its statistics. Counts
// reflect identifiers that actually occur, not the Meta capacity.
func ComputeStats(tr *Trace) Stats {
	s := Stats{Name: tr.Meta.Name, Events: len(tr.Events)}
	threads := make([]bool, tr.Meta.Threads)
	vars := make([]bool, tr.Meta.Vars)
	locks := make([]bool, tr.Meta.Locks)
	sync := 0
	for _, e := range tr.Events {
		threads[e.T] = true
		switch e.Kind {
		case Read:
			s.Reads++
			vars[e.Obj] = true
		case Write:
			s.Writes++
			vars[e.Obj] = true
		case Acquire, Release:
			sync++
			locks[e.Obj] = true
		case Fork, Join:
			threads[e.Obj] = true
		}
	}
	for _, b := range threads {
		if b {
			s.Threads++
		}
	}
	for _, b := range vars {
		if b {
			s.Vars++
		}
	}
	for _, b := range locks {
		if b {
			s.Locks++
		}
	}
	if s.Events > 0 {
		s.SyncPct = 100 * float64(sync) / float64(s.Events)
		s.RWPct = 100 * float64(s.Reads+s.Writes) / float64(s.Events)
	}
	return s
}

// LockStat summarizes one lock's usage in a trace.
type LockStat struct {
	Lock     int32
	Acquires int
	Releases int
	// Holder is the thread left holding the lock at the end of the
	// trace, or vt.None. An unreleased-but-balanced lock cannot occur
	// in a well-formed trace, so Holder != vt.None implies Unbalanced
	// there; on malformed traces the two are reported independently.
	Holder vt.TID
}

// Unbalanced reports whether the acquire and release counts differ —
// either a critical section left open at the end of the trace or, on
// malformed input, stray releases.
func (ls LockStat) Unbalanced() bool { return ls.Acquires != ls.Releases }

// ComputeLockStats scans the trace once and reports per-lock
// acquire/release counts for every lock that actually occurs, in lock
// id order. Unlike Validate it never fails: it is the inspection tool
// for traces whose lock discipline is in question.
func ComputeLockStats(tr *Trace) []LockStat {
	n := tr.Meta.Locks
	for _, e := range tr.Events {
		if e.Kind.IsSync() && int(e.Obj) >= n {
			n = int(e.Obj) + 1
		}
	}
	acq := make([]int, n)
	rel := make([]int, n)
	holder := make([]vt.TID, n)
	for i := range holder {
		holder[i] = vt.None
	}
	for _, e := range tr.Events {
		switch e.Kind {
		case Acquire:
			acq[e.Obj]++
			holder[e.Obj] = e.T
		case Release:
			rel[e.Obj]++
			holder[e.Obj] = vt.None
		}
	}
	var out []LockStat
	for l := 0; l < n; l++ {
		if acq[l] == 0 && rel[l] == 0 {
			continue
		}
		out = append(out, LockStat{Lock: int32(l), Acquires: acq[l], Releases: rel[l], Holder: holder[l]})
	}
	return out
}
