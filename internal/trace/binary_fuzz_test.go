package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"testing/iotest"

	"treeclock/internal/vt"
)

// fuzzSeedBinary serializes a small trace exercising every event kind
// and both identifier widths (single- and multi-byte varints).
func fuzzSeedBinary(tb testing.TB) []byte {
	tr := &Trace{
		Meta: Meta{Name: "fuzz-seed", Threads: 300, Locks: 2, Vars: 200},
		Events: []Event{
			{T: 0, Kind: Fork, Obj: 299},
			{T: 0, Kind: Acquire, Obj: 1},
			{T: 0, Kind: Write, Obj: 150}, // operand needs two varint bytes
			{T: 0, Kind: Release, Obj: 1},
			{T: 299, Kind: Read, Obj: 3}, // thread needs two varint bytes
			{T: 0, Kind: Join, Obj: 299},
		},
	}
	var b bytes.Buffer
	if err := WriteBinary(&b, tr); err != nil {
		tb.Fatal(err)
	}
	return b.Bytes()
}

// drainBinary scans everything r yields and returns the events plus
// the scanner's final error.
func drainBinary(s *BinaryScanner) ([]Event, error) {
	var evs []Event
	for {
		ev, ok := s.Next()
		if !ok {
			return evs, s.Err()
		}
		evs = append(evs, ev)
	}
}

// FuzzBinaryScanner feeds arbitrary bytes through the binary scanner
// two ways — the 64KB-window fast path and a one-byte-at-a-time reader
// that forces every slow path — and requires that neither panics and
// both agree on the decoded events and the failure.
func FuzzBinaryScanner(f *testing.F) {
	seed := fuzzSeedBinary(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // truncated mid-stream
	f.Add(seed[:3])           // truncated magic
	f.Add([]byte{})           // empty input
	f.Add([]byte("TCT1"))     // header ends after magic
	f.Add([]byte("TCT0junk")) // wrong magic
	flipped := bytes.Clone(seed)
	flipped[len(flipped)/2] ^= 0x80 // bit flip in the event stream
	f.Add(flipped)
	huge := []byte("TCT1")
	huge = binary.AppendUvarint(huge, 1<<30) // absurd name length
	f.Add(huge)
	// Hostile near-MaxInt identifier: fits in int32 (so it once decoded
	// cleanly) but indexes a dense grow path downstream — must now be
	// rejected at decode against the global id bound.
	hostile := []byte("TCT1")
	hostile = binary.AppendUvarint(hostile, 0)
	for _, v := range []uint64{1, 1, 1, 1} {
		hostile = binary.AppendUvarint(hostile, v)
	}
	hostile = append(hostile, byte(Write))
	hostile = binary.AppendUvarint(hostile, 1<<30) // thread id
	hostile = binary.AppendUvarint(hostile, 0)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		fast, fastErr := drainBinary(NewBinaryScanner(bytes.NewReader(data)))
		slow, slowErr := drainBinary(NewBinaryScanner(iotest.OneByteReader(bytes.NewReader(data))))
		if (fastErr == nil) != (slowErr == nil) {
			t.Fatalf("decode paths disagree on failure: window=%v one-byte=%v", fastErr, slowErr)
		}
		if fastErr != nil && fastErr.Error() != slowErr.Error() {
			t.Fatalf("decode paths disagree on error text:\nwindow:   %v\none-byte: %v", fastErr, slowErr)
		}
		if len(fast) != len(slow) {
			t.Fatalf("decode paths disagree on event count: window=%d one-byte=%d", len(fast), len(slow))
		}
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("event %d differs: window=%v one-byte=%v", i, fast[i], slow[i])
			}
		}
	})
}

// TestBinaryScannerErrors pins the scanner's diagnostics: corrupt and
// truncated streams fail with specific messages and event positions,
// never panics.
func TestBinaryScannerErrors(t *testing.T) {
	seed := fuzzSeedBinary(t)
	header := func() []byte { // valid header declaring 4 events
		b := []byte("TCT1")
		b = binary.AppendUvarint(b, 0) // empty name
		for _, v := range []uint64{2, 1, 1, 4} {
			b = binary.AppendUvarint(b, v)
		}
		return b
	}
	cases := []struct {
		name  string
		input []byte
		want  string
	}{
		{"empty", nil, `trace: reading binary header: unexpected EOF`},
		{"bad magic", []byte("TCT0junk"), `trace: bad binary magic "TCT0" (want "TCT1")`},
		{"truncated magic", []byte("TC"), `trace: reading binary header: unexpected EOF`},
		{"name too large", binary.AppendUvarint([]byte("TCT1"), 1<<21),
			`trace: binary trace name length 2097152 too large`},
		{"header field overflow", append(binary.AppendUvarint([]byte("TCT1"), 0),
			binary.AppendUvarint(nil, 1<<40)...),
			`trace: binary header field 0 out of range (1099511627776)`},
		{"uvarint overflow", append([]byte("TCT1"),
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff),
			`trace: uvarint overflows 64 bits`},
		{"invalid kind", append(header(), 200, 0, 0),
			`trace: event 0: invalid kind 200`},
		{"identifier out of range", append(header(), append(
			append([]byte{byte(Write)}, binary.AppendUvarint(nil, 1<<33)...), 0)...),
			`trace: event 0: identifier out of range (thread 8589934592, operand 0)`},
		{"truncated event stream", seed[:len(seed)-3],
			`trace: event 5: EOF`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := drainBinary(NewBinaryScanner(bytes.NewReader(tc.input)))
			if err == nil {
				t.Fatalf("no error, want %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

// TestBinaryScannerRoundTrip pins that a clean stream decodes to the
// events and metadata it was written from, through both decode paths.
func TestBinaryScannerRoundTrip(t *testing.T) {
	seed := fuzzSeedBinary(t)
	for _, tc := range []struct {
		name string
		scan *BinaryScanner
	}{
		{"window", NewBinaryScanner(bytes.NewReader(seed))},
		{"one-byte", NewBinaryScanner(iotest.OneByteReader(bytes.NewReader(seed)))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.scan.Meta(); got.Name != "fuzz-seed" || got.Threads != 300 {
				t.Fatalf("meta = %+v", got)
			}
			evs, err := drainBinary(tc.scan)
			if err != nil {
				t.Fatal(err)
			}
			if len(evs) != 6 || evs[2] != (Event{T: 0, Kind: Write, Obj: 150}) ||
				evs[4] != (Event{T: vt.TID(299), Kind: Read, Obj: 3}) {
				t.Fatalf("decoded events = %v", evs)
			}
		})
	}
}
