package trace

import (
	"bytes"
	"strings"
	"testing"
)

// binarySample builds a small trace covering every event kind.
func binarySample(t *testing.T) *Trace {
	t.Helper()
	tr, err := ParseTextString(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestBinaryScannerMatchesTextScanner round-trips a trace through both
// serializations and checks the two streaming scanners agree event for
// event (the satellite requirement of the streaming refactor).
func TestBinaryScannerMatchesTextScanner(t *testing.T) {
	tr := binarySample(t)
	var text, bin bytes.Buffer
	if err := WriteText(&text, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	ts := NewScanner(&text)
	bs := NewBinaryScanner(&bin)
	if got := bs.Len(); got != tr.Len() {
		t.Errorf("BinaryScanner.Len() = %d, want %d", got, tr.Len())
	}
	for i := 0; ; i++ {
		tev, tok := ts.Next()
		bev, bok := bs.Next()
		if tok != bok {
			t.Fatalf("scanners diverge at event %d: text ok=%v, binary ok=%v", i, tok, bok)
		}
		if !tok {
			break
		}
		if tev != bev {
			t.Fatalf("event %d: text %v, binary %v", i, tev, bev)
		}
	}
	if ts.Err() != nil || bs.Err() != nil {
		t.Fatalf("scanner errors: text %v, binary %v", ts.Err(), bs.Err())
	}
	if bs.Meta() != tr.Meta {
		t.Errorf("binary meta = %+v, want %+v", bs.Meta(), tr.Meta)
	}
}

func TestBinaryScannerStreamsIncrementally(t *testing.T) {
	tr := binarySample(t)
	var bin bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	s := NewBinaryScanner(&bin)
	ev, ok := s.Next()
	if !ok {
		t.Fatal("first Next failed")
	}
	if ev != tr.Events[0] {
		t.Errorf("first event %v, want %v", ev, tr.Events[0])
	}
}

func TestBinaryBadMagic(t *testing.T) {
	s := NewBinaryScanner(strings.NewReader("not a binary trace"))
	if _, ok := s.Next(); ok {
		t.Fatal("Next succeeded on garbage")
	}
	if s.Err() == nil {
		t.Fatal("Err() = nil on garbage input")
	}
}

func TestBinaryTruncated(t *testing.T) {
	tr := binarySample(t)
	var bin bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	b := bin.Bytes()
	_, err := ReadBinary(bytes.NewReader(b[:len(b)-2]))
	if err == nil {
		t.Fatal("ReadBinary succeeded on truncated input")
	}
}

func TestBinaryPreservesSparseIDs(t *testing.T) {
	// Binary serialization must keep numeric ids verbatim (no
	// interning), including ids with gaps.
	tr := &Trace{
		Meta:   Meta{Threads: 41, Locks: 1, Vars: 100},
		Events: []Event{{T: 40, Obj: 99, Kind: Write}, {T: 0, Obj: 0, Kind: Acquire}},
	}
	var bin bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if back.Events[0] != tr.Events[0] || back.Events[1] != tr.Events[1] {
		t.Errorf("sparse ids not preserved: %+v", back.Events)
	}
}
