package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// pipelineText builds a modest trace exercising every event kind.
func pipelineText(events int) string {
	var b strings.Builder
	for i := 0; i < events; i++ {
		switch i % 5 {
		case 0:
			fmt.Fprintf(&b, "t%d acq l%d\n", i%4, i%3)
		case 1:
			fmt.Fprintf(&b, "t%d w x%d\n", i%4, i%17)
		case 2:
			fmt.Fprintf(&b, "t%d rel l%d\n", i%4, i%3)
		case 3:
			fmt.Fprintf(&b, "t%d r x%d\n", i%4, i%17)
		default:
			fmt.Fprintf(&b, "t%d w x%d\n", i%4, (i+1)%17)
		}
	}
	return b.String()
}

// drain pulls every event from src (scalar view) and returns them.
func drain(t *testing.T, src EventSource) []Event {
	t.Helper()
	var out []Event
	for {
		ev, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, ev)
	}
	if err := src.Err(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return out
}

// TestPipelinePreservesOrder checks the pipelined path yields the exact
// event sequence of the synchronous scanner, for several ring depths
// and batch sizes.
func TestPipelinePreservesOrder(t *testing.T) {
	text := pipelineText(5000)
	want := drain(t, NewScanner(strings.NewReader(text)))
	for _, depth := range []int{0, 2, 8} {
		for _, batch := range []int{0, 1, 7, 256} {
			p := NewPipeline(NewScanner(strings.NewReader(text)), depth, batch)
			got := drain(t, p)
			p.Close()
			if len(got) != len(want) {
				t.Fatalf("depth %d batch %d: %d events, want %d", depth, batch, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("depth %d batch %d, event %d: %v vs %v", depth, batch, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPipelineBatchConsumption exercises the zero-copy Acquire/Release
// contract the engine runtime uses.
func TestPipelineBatchConsumption(t *testing.T) {
	text := pipelineText(3000)
	want := drain(t, NewScanner(strings.NewReader(text)))
	p := NewPipeline(NewScanner(strings.NewReader(text)), 3, 128)
	defer p.Close()
	var got []Event
	for {
		b, ok := p.AcquireBatch()
		if !ok {
			break
		}
		got = append(got, b...)
		p.ReleaseBatch(b)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestPipelinePropagatesError checks a decode error surfaces through
// Err after the valid prefix is delivered.
func TestPipelinePropagatesError(t *testing.T) {
	p := NewPipeline(NewScanner(strings.NewReader("t0 w x0\nt1 garbage x0\nt2 w x0\n")), 2, 4)
	defer p.Close()
	var got []Event
	for {
		ev, ok := p.Next()
		if !ok {
			break
		}
		got = append(got, ev)
	}
	if len(got) != 1 {
		t.Errorf("delivered %d events before the error, want 1", len(got))
	}
	if p.Err() == nil || !strings.Contains(p.Err().Error(), "unknown operation") {
		t.Errorf("Err = %v, want the scanner's parse error", p.Err())
	}
}

// TestPipelineEarlyClose checks Close shuts the producer down cleanly
// mid-stream (no goroutine leak, no panic) and is idempotent.
func TestPipelineEarlyClose(t *testing.T) {
	p := NewPipeline(NewScanner(strings.NewReader(pipelineText(100_000))), 2, 64)
	if _, ok := p.Next(); !ok {
		t.Fatalf("no first event: %v", p.Err())
	}
	p.Close()
	p.Close() // idempotent
}

// TestPipelineValidator checks discipline violations found in the
// decode goroutine reach the consumer.
func TestPipelineValidator(t *testing.T) {
	src := NewValidator(NewScanner(strings.NewReader("t0 acq l0\nt1 acq l0\n")))
	p := NewPipeline(src, 2, 8)
	defer p.Close()
	n := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Errorf("delivered %d events, want 1 (the valid prefix)", n)
	}
	if p.Err() == nil || !strings.Contains(p.Err().Error(), "already held") {
		t.Errorf("Err = %v, want the lock-discipline violation", p.Err())
	}
}

// TestReplayerMatchesTrace checks the in-memory replayer's scalar and
// batch views.
func TestReplayerMatchesTrace(t *testing.T) {
	tr, err := NewScanner(strings.NewReader(pipelineText(777))).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	r := NewReplayer(tr)
	got := drain(t, r)
	if len(got) != len(tr.Events) {
		t.Fatalf("replayed %d events, want %d", len(got), len(tr.Events))
	}
	r.Reset()
	buf := make([]Event, 100)
	var batched []Event
	for {
		n, ok := r.NextBatch(buf)
		batched = append(batched, buf[:n]...)
		if !ok {
			break
		}
	}
	if len(batched) != len(tr.Events) {
		t.Fatalf("batched replay has %d events, want %d", len(batched), len(tr.Events))
	}
	for i := range batched {
		if batched[i] != tr.Events[i] {
			t.Fatalf("event %d: %v vs %v", i, batched[i], tr.Events[i])
		}
	}
	if r.Meta() != tr.Meta {
		t.Errorf("Meta = %+v, want %+v", r.Meta(), tr.Meta)
	}
}

// TestBinaryNextBatchMatchesNext checks the binary scanner's batch path
// against its scalar path, including the declared-count cut-off.
func TestBinaryNextBatchMatchesNext(t *testing.T) {
	tr, err := NewScanner(strings.NewReader(pipelineText(1234))).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	want := drain(t, NewBinaryScanner(bytes.NewReader(bin.Bytes())))
	s := NewBinaryScanner(bytes.NewReader(bin.Bytes()))
	buf := make([]Event, 97)
	var got []Event
	for {
		n, ok := s.NextBatch(buf)
		got = append(got, buf[:n]...)
		if !ok {
			break
		}
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batched binary scan has %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: %v vs %v", i, got[i], want[i])
		}
	}
}
