package trace

import (
	"fmt"

	"treeclock/internal/vt"
)

// Validator wraps an EventSource and enforces trace well-formedness
// incrementally, with memory proportional to the live identifier
// spaces — the streaming counterpart of Trace.Validate. It checks the
// same discipline rules that do not require prior metadata:
//   - lock semantics: a lock is acquired only when free (non-reentrant,
//     as in §2.1) and released only by its holder;
//   - fork/join sanity: a forked thread has no earlier events, a thread
//     is forked at most once, joined threads perform no later events,
//     and a thread never forks/joins itself.
//
// The identifier-range checks of Trace.Validate are meaningless here:
// a stream has no declared ranges, the spaces are discovered as the
// trace unfolds.
type Validator struct {
	src     EventSource
	holder  []vt.TID // per lock; vt.None when free
	started []bool   // per thread: performed an event or was forked
	forked  []bool
	joined  []bool
	idx     uint64 // events passed through
	err     error
}

// NewValidator wraps src with incremental well-formedness checking.
func NewValidator(src EventSource) *Validator { return &Validator{src: src} }

func (v *Validator) growLocks(n int) {
	for len(v.holder) < n {
		v.holder = append(v.holder, vt.None)
	}
}

func (v *Validator) growThreads(n int) {
	v.started = vt.GrowSlice(v.started, n)
	v.forked = vt.GrowSlice(v.forked, n)
	v.joined = vt.GrowSlice(v.joined, n)
}

// Next returns the next valid event; on a discipline violation it
// stops and records a descriptive error.
func (v *Validator) Next() (Event, bool) {
	if v.err != nil {
		return Event{}, false
	}
	e, ok := v.src.Next()
	if !ok {
		return Event{}, false
	}
	if err := v.check(e); err != nil {
		v.err = err
		return Event{}, false
	}
	v.idx++
	return e, true
}

// NextBatch pulls a batch from the wrapped source and validates each
// event; see BatchSource.NextBatch for the contract. On a violation it
// reports the valid prefix of the batch (which consumers should still
// process — the scalar path delivers exactly those events before
// stopping) and the next call reports the failure.
func (v *Validator) NextBatch(buf []Event) (int, bool) {
	if v.err != nil {
		return 0, false
	}
	n, _ := ReadBatch(v.src, buf)
	for i := 0; i < n; i++ {
		if err := v.check(buf[i]); err != nil {
			v.err = err
			return i, i > 0
		}
		v.idx++
	}
	return n, n > 0
}

func (v *Validator) check(e Event) error {
	if e.T < 0 || e.Obj < 0 {
		return fmt.Errorf("event %d (%v): negative identifier", v.idx, e)
	}
	// Identifiers index dense per-thread/per-lock state here and in
	// every engine; a hostile near-MaxInt id must fail as a validation
	// error before it reaches a grow call and turns into a huge
	// allocation.
	if int64(e.T) >= vt.MaxID || int64(e.Obj) >= vt.MaxID {
		return fmt.Errorf("event %d (%v): identifier out of range (thread %d, operand %d, max %d)", v.idx, e, e.T, e.Obj, int64(vt.MaxID)-1)
	}
	if e.Kind >= numKinds {
		return fmt.Errorf("event %d: invalid kind %d", v.idx, e.Kind)
	}
	v.growThreads(int(e.T) + 1)
	if v.joined[e.T] {
		return fmt.Errorf("event %d (%v): thread %d acts after being joined", v.idx, e, e.T)
	}
	v.started[e.T] = true
	switch e.Kind {
	case Acquire:
		v.growLocks(int(e.Obj) + 1)
		if v.holder[e.Obj] != vt.None {
			return fmt.Errorf("event %d (%v): lock %d already held by thread %d", v.idx, e, e.Obj, v.holder[e.Obj])
		}
		v.holder[e.Obj] = e.T
	case Release:
		v.growLocks(int(e.Obj) + 1)
		if v.holder[e.Obj] != e.T {
			return fmt.Errorf("event %d (%v): lock %d not held by thread %d", v.idx, e, e.Obj, e.T)
		}
		v.holder[e.Obj] = vt.None
	case Fork, Join:
		u := vt.TID(e.Obj)
		if u == e.T {
			return fmt.Errorf("event %d (%v): thread %s itself", v.idx, e, e.Kind)
		}
		v.growThreads(int(u) + 1)
		if e.Kind == Fork {
			if v.started[u] {
				return fmt.Errorf("event %d (%v): forked thread %d already active", v.idx, e, u)
			}
			if v.forked[u] {
				return fmt.Errorf("event %d (%v): thread %d forked twice", v.idx, e, u)
			}
			v.forked[u] = true
			v.started[u] = true
		} else {
			v.joined[u] = true
		}
	}
	return nil
}

// Err returns the first error: a discipline violation, or the wrapped
// source's error.
func (v *Validator) Err() error {
	if v.err != nil {
		return v.err
	}
	return v.src.Err()
}

var _ EventSource = (*Validator)(nil)
