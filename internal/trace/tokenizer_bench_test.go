package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"treeclock/internal/vt"
)

// benchText synthesizes a canonical-format text trace with a bounded
// identifier universe, so after one warm-up pass every name is interned
// and the tokenizer runs its steady state.
func benchText(events int) []byte {
	r := rand.New(rand.NewSource(42))
	var buf bytes.Buffer
	for i := 0; i < events; i++ {
		t := r.Intn(32)
		switch r.Intn(6) {
		case 0:
			fmt.Fprintf(&buf, "t%d r x%d\n", t, r.Intn(4096))
		case 1:
			fmt.Fprintf(&buf, "t%d w x%d\n", t, r.Intn(4096))
		case 2:
			fmt.Fprintf(&buf, "t%d acq l%d\n", t, r.Intn(24))
		case 3:
			fmt.Fprintf(&buf, "t%d rel l%d\n", t, r.Intn(24))
		default:
			fmt.Fprintf(&buf, "t%d w x%d\n", t, r.Intn(4096))
		}
	}
	return buf.Bytes()
}

// repeatReader replays its data forever, so a single Scanner can be
// driven for b.N events with every identifier already interned —
// allocs/op then reports the tokenizer's steady-state allocation count
// per event, which must be 0.
type repeatReader struct {
	data []byte
	off  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// BenchmarkTokenizerNext measures the per-event scalar path of the text
// tokenizer: one op is one event. Steady state must run at 0 allocs/op.
func BenchmarkTokenizerNext(b *testing.B) {
	data := benchText(50_000)
	s := NewScanner(&repeatReader{data: data})
	for i := 0; i < 50_000; i++ { // warm up: intern the whole universe
		if _, ok := s.Next(); !ok {
			b.Fatal(s.Err())
		}
	}
	b.SetBytes(int64(len(data)) / 50_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			b.Fatal(s.Err())
		}
	}
}

// BenchmarkTokenizerNextBatch measures the batched path; one op is one
// event, delivered through DefaultBatchSize-event batches. Steady state
// must run at 0 allocs/op.
func BenchmarkTokenizerNextBatch(b *testing.B) {
	data := benchText(50_000)
	s := NewScanner(&repeatReader{data: data})
	buf := make([]Event, DefaultBatchSize)
	for warmed := 0; warmed < 50_000; {
		n, ok := s.NextBatch(buf)
		if !ok {
			b.Fatal(s.Err())
		}
		warmed += n
	}
	b.SetBytes(int64(len(data)) / 50_000)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n, ok := s.NextBatch(buf)
		if !ok {
			b.Fatal(s.Err())
		}
		done += n
	}
}

// BenchmarkBinaryNextBatch is the binary-format counterpart, the
// decode floor the text tokenizer is chasing.
func BenchmarkBinaryNextBatch(b *testing.B) {
	var evs []Event
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 50_000; i++ {
		evs = append(evs, Event{T: vt.TID(r.Intn(32)), Obj: int32(r.Intn(4096)), Kind: Write})
	}
	tr := &Trace{Meta: Meta{Threads: 32, Vars: 4096}, Events: evs}
	var data bytes.Buffer
	if err := WriteBinary(&data, tr); err != nil {
		b.Fatal(err)
	}
	buf := make([]Event, DefaultBatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		s := NewBinaryScanner(bytes.NewReader(data.Bytes()))
		for {
			n, ok := s.NextBatch(buf)
			if !ok {
				break
			}
			done += n
		}
		if err := s.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
