package trace

import "time"

// Progress reporting
//
// Heavy-traffic ingestion wants rate metrics without a second counting
// pass: NewProgressSource wraps any event source so the consumer's own
// pulls drive periodic callbacks. Counting happens at batch
// granularity on the consuming goroutine — no extra goroutine, no
// locks, and the wrapped source's batch capabilities (including the
// pipelined decoder's zero-copy hand-off) are preserved, so wrapping
// changes neither results nor consumption mode.

// ProgressFunc receives one progress report: the events consumed so
// far and the observed rate in events/second since the previous report
// (since the start, for the first).
type ProgressFunc func(events uint64, rate float64)

// NewProgressSource wraps src so fn fires whenever roughly `every`
// more events have been consumed (at batch granularity: the callback
// runs at the first batch boundary past each multiple of every).
// every == 0 selects one report per million events. The callback runs
// synchronously on whichever goroutine consumes the source.
func NewProgressSource(src EventSource, every uint64, fn ProgressFunc) EventSource {
	if every == 0 {
		every = 1 << 20
	}
	st := progressState{every: every, next: every, fn: fn, last: time.Now()}
	if p, ok := src.(BatchProducer); ok {
		return &progressProducer{src: p, progressState: st}
	}
	return &progressSource{src: src, progressState: st}
}

// progressState is the shared counting logic.
type progressState struct {
	every, next uint64
	count       uint64
	lastCount   uint64
	last        time.Time
	fn          ProgressFunc
}

// tick accounts n consumed events and fires due reports.
func (p *progressState) tick(n int) {
	p.count += uint64(n)
	if p.count < p.next {
		return
	}
	now := time.Now()
	rate := 0.0
	if dt := now.Sub(p.last).Seconds(); dt > 0 {
		rate = float64(p.count-p.lastCount) / dt
	}
	p.fn(p.count, rate)
	p.lastCount, p.last = p.count, now
	for p.next <= p.count {
		p.next += p.every
	}
}

// StartAt seeds the counters at a resumed run's trace position, so
// reports continue the interrupted run's event numbering and cadence.
// The rate baseline restarts (the time spent before the interruption
// is not this run's).
func (p *progressState) StartAt(events uint64) {
	p.count, p.lastCount = events, events
	p.next = events - events%p.every + p.every
	p.last = time.Now()
}

// progressSource wraps a plain or batched source.
type progressSource struct {
	src EventSource
	progressState
}

func (p *progressSource) Next() (Event, bool) {
	ev, ok := p.src.Next()
	if ok {
		p.tick(1)
	}
	return ev, ok
}

func (p *progressSource) NextBatch(buf []Event) (int, bool) {
	n, ok := ReadBatch(p.src, buf)
	p.tick(n)
	return n, ok
}

func (p *progressSource) Err() error { return p.src.Err() }

// progressProducer preserves the zero-copy batch-ownership contract of
// a wrapped BatchProducer (the pipelined decoder).
type progressProducer struct {
	src BatchProducer
	progressState
}

func (p *progressProducer) AcquireBatch() ([]Event, bool) {
	b, ok := p.src.AcquireBatch()
	p.tick(len(b))
	return b, ok
}

func (p *progressProducer) ReleaseBatch(b []Event) { p.src.ReleaseBatch(b) }

func (p *progressProducer) Next() (Event, bool) {
	ev, ok := p.src.Next()
	if ok {
		p.tick(1)
	}
	return ev, ok
}

func (p *progressProducer) Err() error { return p.src.Err() }

var (
	_ BatchSource   = (*progressSource)(nil)
	_ BatchProducer = (*progressProducer)(nil)
)
