package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"treeclock/internal/vt"
)

// EventSource streams trace events one at a time: Next reports the
// next event until the input is exhausted or fails, and Err returns
// the first error (nil at clean EOF). The text Scanner and the
// BinaryScanner both implement it, and the engine runtime consumes it
// directly (Runtime.ProcessSource), so arbitrarily large traces are
// analyzable in one pass without materialization.
type EventSource interface {
	Next() (Event, bool)
	Err() error
}

// Scanner streams events from the text trace format without
// materializing the whole trace, for analyses over logs larger than
// memory. Identifiers are interned in order of first appearance, like
// ParseText; Meta() reports the ranges seen so far. Engines built on
// internal/engine grow their state dynamically, so they can consume a
// Scanner directly with no prior metadata.
type Scanner struct {
	sc      *bufio.Scanner
	threads *intern
	locks   *intern
	vars    *intern
	line    int
	err     error
}

// NewScanner wraps a text-format trace stream.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	return &Scanner{sc: sc, threads: newIntern(), locks: newIntern(), vars: newIntern()}
}

// Next returns the next event. It reports ok == false at end of input
// or on error; check Err afterwards.
func (s *Scanner) Next() (ev Event, ok bool) {
	if s.err != nil {
		return Event{}, false
	}
	for s.sc.Scan() {
		s.line++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			s.err = fmt.Errorf("trace: line %d: want \"<thread> <op> <operand>\", got %q", s.line, line)
			return Event{}, false
		}
		ev.T = vt.TID(s.threads.id(fields[0]))
		switch fields[1] {
		case "r":
			ev.Kind, ev.Obj = Read, s.vars.id(fields[2])
		case "w":
			ev.Kind, ev.Obj = Write, s.vars.id(fields[2])
		case "acq":
			ev.Kind, ev.Obj = Acquire, s.locks.id(fields[2])
		case "rel":
			ev.Kind, ev.Obj = Release, s.locks.id(fields[2])
		case "fork":
			ev.Kind, ev.Obj = Fork, s.threads.id(fields[2])
		case "join":
			ev.Kind, ev.Obj = Join, s.threads.id(fields[2])
		default:
			s.err = fmt.Errorf("trace: line %d: unknown operation %q", s.line, fields[1])
			return Event{}, false
		}
		return ev, true
	}
	s.err = s.sc.Err()
	return Event{}, false
}

// Err returns the first error encountered, or nil at clean EOF.
func (s *Scanner) Err() error { return s.err }

// Meta reports the identifier ranges seen so far.
func (s *Scanner) Meta() Meta {
	return Meta{
		Threads: int(s.threads.count),
		Locks:   int(s.locks.count),
		Vars:    int(s.vars.count),
	}
}

// ScanAll drains the scanner into a materialized trace (equivalent to
// ParseText, provided for symmetry).
func (s *Scanner) ScanAll() (*Trace, error) {
	var events []Event
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		events = append(events, ev)
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return &Trace{Meta: s.Meta(), Events: events}, nil
}
