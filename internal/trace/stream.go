package trace

import (
	"bytes"
	"fmt"
	"io"

	"treeclock/internal/vt"
)

// EventSource streams trace events one at a time: Next reports the
// next event until the input is exhausted or fails, and Err returns
// the first error (nil at clean EOF). The text Scanner and the
// BinaryScanner both implement it, and the engine runtime consumes it
// directly (Runtime.ProcessSource), so arbitrarily large traces are
// analyzable in one pass without materialization. Sources that can
// deliver events in bulk additionally implement BatchSource, which the
// runtime prefers.
type EventSource interface {
	Next() (Event, bool)
	Err() error
}

// Scanner tokenizer tuning. The read buffer starts at readBufSize and
// doubles on demand up to maxLineSize, the bound a single line (and
// therefore the buffer) may reach — matching the old bufio.Scanner
// limit.
const (
	readBufSize = 256 * 1024
	maxLineSize = 16 * 1024 * 1024
)

// Scanner streams events from the text trace format without
// materializing the whole trace, for analyses over logs larger than
// memory. Identifiers are interned in order of first appearance, like
// ParseText; Meta() reports the ranges seen so far. Engines built on
// internal/engine grow their state dynamically, so they can consume a
// Scanner directly with no prior metadata.
//
// The scanner is a byte-level tokenizer over one large reused read
// buffer: lines are located and split into fields in place, and
// identifier interning copies a token only on first sight (the map
// lookup itself is keyed on the byte slice without conversion). In
// steady state — once every identifier has been seen — Next and
// NextBatch perform zero allocations per event.
type Scanner struct {
	r        io.Reader
	buf      []byte // reused read buffer; grows only for oversized lines
	pos      int    // start of unconsumed bytes
	end      int    // end of valid bytes
	eof      bool   // reader returned io.EOF
	readErr  error  // deferred non-EOF read error (buffered lines drain first)
	empty    int    // consecutive zero-byte reads (io.ErrNoProgress guard)
	consumed int64  // total bytes read from r (checkpoint offset accounting)
	threads  *intern
	locks    *intern
	vars     *intern
	line     int
	err      error
}

// NewScanner wraps a text-format trace stream.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{
		r:       r,
		buf:     make([]byte, readBufSize),
		threads: newIntern(),
		locks:   newIntern(),
		vars:    newIntern(),
	}
}

// SetInternCap bounds each identifier space's map-interned name table
// to n names (0, the default, keeps the tables unbounded). Once a
// table is full, interning a new name first evicts the coldest quarter
// of the table (least-recently-used); an evicted name seen again is a
// brand-new identifier with a fresh id. The ids handed out stay
// strictly monotone — no id is ever reused — so downstream engines
// never see old per-id state rebound to a different name, but they do
// see the identifier space keep growing, and any analysis state still
// attached to an evicted id is permanently orphaned. The cap is
// therefore only sound when cold names' analysis state is dead (e.g.
// variables that are never accessed again, threads already joined);
// a race between accesses that straddle an eviction is missed. The
// canonical-name direct-index path is unaffected (already bounded by
// its own fastLimit). Call before scanning begins.
func (s *Scanner) SetInternCap(n int) {
	s.threads.setCap(n)
	s.locks.setCap(n)
	s.vars.setCap(n)
}

// InternStats reports the map-interned name tables' total live size
// and cumulative evictions across the three identifier spaces — the
// quantity SetInternCap bounds (the direct-index fast tables are
// bounded separately by fastLimit).
func (s *Scanner) InternStats() (live int, evictions uint64) {
	for _, in := range [...]*intern{s.threads, s.locks, s.vars} {
		live += len(in.ids)
		evictions += in.evictions
	}
	return live, evictions
}

// InternCapable is the optional EventSource extension behind interner
// eviction: the text Scanner implements it, and transparent wrappers
// (CrashSource) delegate it, so callers can bound the interner without
// knowing the exact wrapping. Sources without interned names (binary,
// pre-decoded) simply don't implement it.
type InternCapable interface {
	SetInternCap(n int)
	InternStats() (live int, evictions uint64)
}

// Next returns the next event. It reports ok == false at end of input
// or on error; check Err afterwards.
//
// The hot path is a single fused scan: locating the end of the line,
// trimming whitespace and splitting the three fields all happen in one
// pass over the buffered bytes, with no per-line function calls. When
// a line turns out to be split across the buffer boundary, the scan
// restarts after a refill (bounded: once per buffer's worth of input).
func (s *Scanner) Next() (ev Event, ok bool) {
	if s.err != nil {
		return Event{}, false
	}
	for {
		buf, i, end := s.buf, s.pos, s.end
		// Skip leading whitespace.
		for i < end && isSpace(buf[i]) {
			i++
		}
		if i == end {
			if !s.atEnd() {
				s.fill()
				if s.err != nil {
					return Event{}, false
				}
				continue
			}
			s.pos = end
			// Input exhausted; surface a deferred read error now that
			// every buffered line has been delivered.
			if s.readErr != nil {
				s.err = fmt.Errorf("trace: %w", s.readErr)
			}
			return Event{}, false
		}
		switch buf[i] {
		case '\n': // blank line
			s.pos = i + 1
			s.line++
			continue
		case '#': // comment line: consume through the newline
			if nl := bytes.IndexByte(buf[i:end], '\n'); nl >= 0 {
				s.pos = i + nl + 1
			} else if !s.eof {
				if s.readErr != nil {
					return Event{}, s.failRead()
				}
				s.fill()
				if s.err != nil {
					return Event{}, false
				}
				continue
			} else {
				s.pos = end // final comment line without a newline
			}
			s.line++
			continue
		}
		// A real line most often has the exact canonical shape WriteText
		// emits; try the one-pass decoder first, falling back to the
		// general tokenizer on any mismatch (nothing is consumed then).
		if ev, ok, handled := s.fastLine(i); handled {
			return ev, ok
		}
		// A real line starts at i: split fields in place while scanning
		// for the line end. Each field is one tight run over non-delim
		// bytes; classification is a table lookup.
		lineStart := i
		var f [3][]byte
		nf := 0
		refill := false
		for {
			if i == end {
				// Only a clean EOF terminates an unterminated final
				// line; after a read error the line may be truncated
				// mid-token and must not be delivered.
				if s.readErr != nil {
					return Event{}, s.failRead()
				}
				if !s.eof {
					refill = true
				}
				break
			}
			c := buf[i]
			if c == '\n' {
				break
			}
			// c is the first byte of a field.
			j := i + 1
			for j < end && !fieldDelim[buf[j]] {
				j++
			}
			if j == end && !s.eof {
				if s.readErr != nil {
					return Event{}, s.failRead()
				}
				refill = true // the field may continue past the buffer
				break
			}
			if nf < len(f) {
				f[nf] = buf[i:j]
			}
			nf++
			i = j
			for i < end && asciiSpace[buf[i]] {
				i++
			}
		}
		if refill {
			s.fill()
			if s.err != nil {
				return Event{}, false
			}
			continue // rescan the (compacted, extended) line
		}
		s.line++
		lineEnd := i
		if i < end {
			s.pos = i + 1
		} else {
			s.pos = end
		}
		if nf != 3 {
			line := buf[lineStart:lineEnd]
			for len(line) > 0 && isSpace(line[len(line)-1]) {
				line = line[:len(line)-1]
			}
			s.err = fmt.Errorf("trace: line %d: want \"<thread> <op> <operand>\", got %q", s.line, line)
			return Event{}, false
		}
		ev.T = vt.TID(s.threads.idBytes(f[0]))
		// The switch over string(op) compiles to byte comparisons; no
		// allocation takes place.
		switch string(f[1]) {
		case "r":
			ev.Kind, ev.Obj = Read, s.vars.idBytes(f[2])
		case "w":
			ev.Kind, ev.Obj = Write, s.vars.idBytes(f[2])
		case "acq":
			ev.Kind, ev.Obj = Acquire, s.locks.idBytes(f[2])
		case "rel":
			ev.Kind, ev.Obj = Release, s.locks.idBytes(f[2])
		case "fork":
			ev.Kind, ev.Obj = Fork, s.threads.idBytes(f[2])
		case "join":
			ev.Kind, ev.Obj = Join, s.threads.idBytes(f[2])
		default:
			s.err = fmt.Errorf("trace: line %d: unknown operation %q", s.line, f[1])
			return Event{}, false
		}
		return ev, true
	}
}

// fastLine decodes the canonical line shape — "<id> <op> <id>\n" with
// single spaces and canonical identifiers (one lowercase letter plus a
// decimal suffix), exactly what WriteText emits — in one left-to-right
// pass over the buffered bytes, fusing tokenizing, numeric decoding
// and the direct-index interning that idBytes would otherwise re-derive
// per field. i is the first non-space byte of the line. handled
// reports whether the line was consumed; on any shape mismatch, a
// line crossing the buffer end, or an identifier needing the intern
// map, it returns handled == false with the scanner position
// untouched and the general tokenizer takes over (interner state the
// attempt may have advanced is identical to what idBytes would have
// done, so the replay is consistent).
func (s *Scanner) fastLine(i int) (ev Event, ok, handled bool) {
	buf, end := s.buf, s.end
	// Thread identifier: letter + decimal suffix, then one space.
	c0 := buf[i]
	if c0 < 'a' || c0 > 'z' {
		return Event{}, false, false
	}
	j := i + 1
	v0, n0 := 0, 0
	for j < end && buf[j] >= '0' && buf[j] <= '9' {
		v0 = v0*10 + int(buf[j]-'0')
		n0++
		j++
	}
	if n0 == 0 || n0 > 7 || (buf[i+1] == '0' && n0 > 1) || j >= end || buf[j] != ' ' {
		return Event{}, false, false
	}
	j++
	// Operation: fixed spellings, terminated by one space.
	var kind Kind
	var in *intern
	switch {
	case j+1 < end && buf[j+1] == ' ' && buf[j] == 'r':
		kind, in = Read, s.vars
		j += 2
	case j+1 < end && buf[j+1] == ' ' && buf[j] == 'w':
		kind, in = Write, s.vars
		j += 2
	case j+3 < end && buf[j] == 'a' && buf[j+1] == 'c' && buf[j+2] == 'q' && buf[j+3] == ' ':
		kind, in = Acquire, s.locks
		j += 4
	case j+3 < end && buf[j] == 'r' && buf[j+1] == 'e' && buf[j+2] == 'l' && buf[j+3] == ' ':
		kind, in = Release, s.locks
		j += 4
	case j+4 < end && buf[j] == 'f' && buf[j+1] == 'o' && buf[j+2] == 'r' && buf[j+3] == 'k' && buf[j+4] == ' ':
		kind, in = Fork, s.threads
		j += 5
	case j+4 < end && buf[j] == 'j' && buf[j+1] == 'o' && buf[j+2] == 'i' && buf[j+3] == 'n' && buf[j+4] == ' ':
		kind, in = Join, s.threads
		j += 5
	default:
		return Event{}, false, false
	}
	// Operand identifier, then the newline.
	if j >= end {
		return Event{}, false, false
	}
	c2 := buf[j]
	if c2 < 'a' || c2 > 'z' {
		return Event{}, false, false
	}
	d2 := j + 1
	j++
	v2, n2 := 0, 0
	for j < end && buf[j] >= '0' && buf[j] <= '9' {
		v2 = v2*10 + int(buf[j]-'0')
		n2++
		j++
	}
	if n2 == 0 || n2 > 7 || (buf[d2] == '0' && n2 > 1) || j >= end || buf[j] != '\n' {
		return Event{}, false, false
	}
	// Shape verified; commit through the direct-index interns. A miss
	// (foreign prefix letter) falls back to the general path, which
	// resolves the same names through the map.
	t, tok := s.threads.fastID(c0, v0)
	if !tok {
		return Event{}, false, false
	}
	obj, ook := in.fastID(c2, v2)
	if !ook {
		return Event{}, false, false
	}
	s.pos = j + 1
	s.line++
	return Event{T: vt.TID(t), Obj: obj, Kind: kind}, true, true
}

// atEnd reports whether no further input can arrive: the reader hit
// EOF or a deferred read error.
func (s *Scanner) atEnd() bool { return s.eof || s.readErr != nil }

// failRead consumes the remaining (truncated) buffered bytes and
// surfaces the deferred read error; it returns Next's ok value.
func (s *Scanner) failRead() bool {
	s.pos = s.end
	s.err = fmt.Errorf("trace: %w", s.readErr)
	return false
}

// NextBatch fills buf with up to len(buf) events and reports how many
// were decoded. ok is n > 0; a false result means the input is
// exhausted or failed — check Err. Batching amortizes the per-event
// call overhead of the streaming loop; see BatchSource.
func (s *Scanner) NextBatch(buf []Event) (n int, ok bool) {
	for n < len(buf) {
		ev, ok := s.Next()
		if !ok {
			break
		}
		buf[n] = ev
		n++
	}
	return n, n > 0
}

// fill compacts the buffer and reads more input, growing the buffer
// when a single line exceeds it.
func (s *Scanner) fill() {
	if s.pos > 0 {
		s.end = copy(s.buf, s.buf[s.pos:s.end])
		s.pos = 0
	}
	if s.end == len(s.buf) {
		if len(s.buf) >= maxLineSize {
			s.err = fmt.Errorf("trace: line %d: line longer than %d bytes", s.line+1, maxLineSize)
			return
		}
		size := 2 * len(s.buf)
		if size > maxLineSize {
			size = maxLineSize
		}
		grown := make([]byte, size)
		copy(grown, s.buf[:s.end])
		s.buf = grown
	}
	n, err := s.r.Read(s.buf[s.end:])
	s.end += n
	s.consumed += int64(n)
	if n > 0 {
		s.empty = 0
	} else if err == nil {
		if s.empty++; s.empty >= 100 {
			s.err = fmt.Errorf("trace: %w", io.ErrNoProgress)
			return
		}
	}
	switch {
	case err == io.EOF:
		s.eof = true
	case err != nil:
		// Deliver the complete lines already buffered before failing.
		s.readErr = err
	}
}

// asciiSpace marks ASCII whitespace (the byte-level counterpart of the
// unicode.IsSpace set the bufio-era scanner used; trace identifiers
// are ASCII tokens). Newline is a line terminator, not a space, and is
// marked only in fieldDelim, which ends identifier runs.
var asciiSpace, fieldDelim [256]bool

func init() {
	for _, b := range []byte{' ', '\t', '\r', '\v', '\f'} {
		asciiSpace[b] = true
		fieldDelim[b] = true
	}
	fieldDelim['\n'] = true
}

func isSpace(b byte) bool { return asciiSpace[b] }

// Err returns the first error encountered, or nil at clean EOF.
func (s *Scanner) Err() error { return s.err }

// Meta reports the identifier ranges seen so far.
func (s *Scanner) Meta() Meta {
	return Meta{
		Threads: int(s.threads.count),
		Locks:   int(s.locks.count),
		Vars:    int(s.vars.count),
	}
}

// ScanAll drains the scanner into a materialized trace (equivalent to
// ParseText, provided for symmetry).
func (s *Scanner) ScanAll() (*Trace, error) {
	var events []Event
	var buf [256]Event
	for {
		n, ok := s.NextBatch(buf[:])
		events = append(events, buf[:n]...)
		if !ok {
			break
		}
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return &Trace{Meta: s.Meta(), Events: events}, nil
}
