package trace

// Source checkpointing and fault injection
//
// Crash-safe analysis needs the decode frontier in the checkpoint, not
// just the engine state: a resumed run must re-read the trace from the
// exact byte the interrupted run had consumed up to, with the interner
// tables (text) or the header bookkeeping (binary) restored so every
// later event decodes to the identical identifiers. Each source
// serializes the *delivered* position — total bytes read from the
// underlying reader minus the bytes still sitting undelivered in the
// window — so buffered-but-unprocessed input is re-read on resume and
// no event is lost or duplicated.
//
// Stateful wrappers (Validator) serialize outermost-first: each writes
// its own section, then delegates inward, and restore consumes the
// sections in the same order. Pure observers and test scaffolding
// (progress sources, CrashSource) write no section at all, so a
// checkpoint's bytes are independent of reporting flags and fault
// injection — one taken under -progress resumes without it (counters
// re-seed from the restored position) and resume never needs the
// injector.

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"treeclock/internal/ckpt"
	"treeclock/internal/vt"
)

// CheckpointableSource is an EventSource whose decode state can be
// serialized into a checkpoint and later restored over a fresh reader
// of the same input. SnapshotSource appends one or more sections to e;
// RestoreSource consumes exactly those sections from d and, for
// reader-backed sources, skips the already-delivered prefix of the
// fresh underlying reader. On a restore error the source must be
// discarded.
type CheckpointableSource interface {
	EventSource
	SnapshotSource(e *ckpt.Enc) error
	RestoreSource(d *ckpt.Dec) error
}

// discardPrefix skips exactly n already-delivered bytes of r.
func discardPrefix(r io.Reader, n int64) error {
	if n <= 0 {
		return nil
	}
	if m, err := io.CopyN(io.Discard, r, n); err != nil {
		return fmt.Errorf("trace: resume: input ends after %d of %d checkpointed bytes: %w", m, n, err)
	}
	return nil
}

// saveIntern serializes one interner table: the id counter, the
// direct-index prefix, the map-interned names in id order and the
// nonzero slots of the direct-index array. Canonical names live only
// in the array, so the two encodings together are the whole table.
func saveIntern(e *ckpt.Enc, in *intern) {
	e.Int32(in.count)
	e.U8(in.fastPrefix)
	type kv struct {
		name string
		id   int32
	}
	kvs := make([]kv, 0, len(in.ids))
	for name, id := range in.ids {
		kvs = append(kvs, kv{name, id})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].id < kvs[j].id })
	e.Uvarint(uint64(len(kvs)))
	for _, p := range kvs {
		e.Int32(p.id)
		e.String(p.name)
	}
	e.Uvarint(uint64(len(in.fast)))
	nz := 0
	for _, v := range in.fast {
		if v != 0 {
			nz++
		}
	}
	e.Uvarint(uint64(nz))
	for i, v := range in.fast {
		if v != 0 {
			e.Uvarint(uint64(i))
			e.Int32(v)
		}
	}
	// Eviction state (SetInternCap): the recency ticks are behavioural
	// state — they steer future evictions — so a resumed run needs them
	// to evict the same names the uninterrupted run would.
	e.Bool(in.last != nil)
	if in.last != nil {
		e.Uvarint(in.tick)
		e.U64(in.evictions)
		ids := make([]int32, 0, len(in.last))
		for id := range in.last {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		e.Uvarint(uint64(len(ids)))
		for _, id := range ids {
			e.Int32(id)
			e.Uvarint(in.last[id])
		}
	}
}

// loadIntern restores one interner table, validating that every id is
// below the counter and that entries arrive in the strictly increasing
// order saveIntern writes (so a re-saved table is byte-identical).
func loadIntern(d *ckpt.Dec) *intern {
	in := newIntern()
	in.count = d.Int32()
	if d.Err() == nil && in.count < 0 {
		d.Corruptf("negative interner count %d", in.count)
		return nil
	}
	in.fastPrefix = d.U8()
	nm := d.Len(2)
	if d.Err() != nil {
		return nil
	}
	prev := int32(-1)
	for i := 0; i < nm; i++ {
		id := d.Int32()
		name := d.String()
		if d.Err() != nil {
			return nil
		}
		if id <= prev || id >= in.count {
			d.Corruptf("interned id %d out of order (count %d)", id, in.count)
			return nil
		}
		prev = id
		in.ids[name] = id
	}
	nf := d.Count()
	if d.Err() != nil {
		return nil
	}
	if nf > fastLimit {
		d.Corruptf("fast table length %d exceeds %d", nf, fastLimit)
		return nil
	}
	nz := d.Len(2)
	if d.Err() != nil {
		return nil
	}
	if nf > 0 {
		in.fast = make([]int32, nf)
	}
	previ := -1
	for i := 0; i < nz; i++ {
		idx := d.Count()
		v := d.Int32()
		if d.Err() != nil {
			return nil
		}
		if idx <= previ || idx >= nf || v <= 0 || v > in.count {
			d.Corruptf("fast table entry (%d, %d) out of range (len %d, count %d)", idx, v, nf, in.count)
			return nil
		}
		previ = idx
		in.fast[idx] = v
	}
	if d.Bool() {
		in.tick = d.Uvarint()
		in.evictions = d.U64()
		nr := d.Len(2)
		if d.Err() != nil {
			return nil
		}
		if nr != len(in.ids) {
			d.Corruptf("recency table of %d entries for %d interned names", nr, len(in.ids))
			return nil
		}
		in.last = make(map[int32]uint64, nr)
		in.names = make(map[int32]string, nr)
		prev = -1
		for i := 0; i < nr; i++ {
			id := d.Int32()
			tk := d.Uvarint()
			if d.Err() != nil {
				return nil
			}
			if id <= prev || id >= in.count || tk > in.tick {
				d.Corruptf("recency entry (%d, %d) out of range (count %d, tick %d)", id, tk, in.count, in.tick)
				return nil
			}
			prev = id
			in.last[id] = tk
		}
		for name, id := range in.ids {
			if _, ok := in.last[id]; !ok {
				d.Corruptf("interned id %d has no recency entry", id)
				return nil
			}
			in.names[id] = name
		}
	}
	return in
}

// SnapshotSource implements CheckpointableSource: the delivered byte
// offset, the line counter and the three interner tables.
func (s *Scanner) SnapshotSource(e *ckpt.Enc) error {
	e.Begin("scanner")
	e.Svarint(s.consumed - int64(s.end-s.pos))
	e.Uvarint(uint64(s.line))
	saveIntern(e, s.threads)
	saveIntern(e, s.locks)
	saveIntern(e, s.vars)
	e.End()
	return e.Err()
}

// RestoreSource implements CheckpointableSource over a fresh reader of
// the same input: the already-delivered prefix is skipped and decoding
// resumes at the first unconsumed line.
func (s *Scanner) RestoreSource(d *ckpt.Dec) error {
	d.Begin("scanner")
	off := d.Svarint()
	if d.Err() == nil && off < 0 {
		d.Corruptf("negative stream offset %d", off)
	}
	line := d.Uvarint()
	threads := loadIntern(d)
	locks := loadIntern(d)
	vars := loadIntern(d)
	d.End()
	if err := d.Err(); err != nil {
		return err
	}
	// The intern cap is scanner configuration, not checkpoint state: a
	// checkpoint taken with eviction on carries recency tables and must
	// resume with a cap (and vice versa), and the loaded tables inherit
	// the configured cap.
	for _, p := range [...]struct {
		loaded *intern
		cap    int
	}{{threads, s.threads.cap}, {locks, s.locks.cap}, {vars, s.vars.cap}} {
		if (p.loaded.last != nil) != (p.cap > 0) {
			return fmt.Errorf("trace: resume: intern-cap configuration mismatch (checkpoint eviction %v, scanner cap %d): %w",
				p.loaded.last != nil, p.cap, ckpt.ErrCorrupt)
		}
		p.loaded.cap = p.cap
	}
	if err := discardPrefix(s.r, off); err != nil {
		return err
	}
	s.consumed = off
	s.pos, s.end = 0, 0
	s.eof, s.readErr, s.empty, s.err = false, nil, 0, nil
	s.line = int(line)
	s.threads, s.locks, s.vars = threads, locks, vars
	return nil
}

// SnapshotSource implements CheckpointableSource: the delivered byte
// offset (header included) plus the decoded header and event counters.
func (s *BinaryScanner) SnapshotSource(e *ckpt.Enc) error {
	e.Begin("binscanner")
	e.Svarint(s.consumed - int64(s.end-s.pos))
	e.Bool(s.started)
	e.String(s.meta.Name)
	e.Int(s.meta.Threads)
	e.Int(s.meta.Locks)
	e.Int(s.meta.Vars)
	e.U64(s.total)
	e.U64(s.read)
	e.End()
	return e.Err()
}

// RestoreSource implements CheckpointableSource over a fresh reader of
// the same input. The header is restored from the checkpoint, not
// re-read: the skipped prefix already covers its bytes.
func (s *BinaryScanner) RestoreSource(d *ckpt.Dec) error {
	d.Begin("binscanner")
	off := d.Svarint()
	if d.Err() == nil && off < 0 {
		d.Corruptf("negative stream offset %d", off)
	}
	started := d.Bool()
	var meta Meta
	meta.Name = d.String()
	meta.Threads = d.Int()
	meta.Locks = d.Int()
	meta.Vars = d.Int()
	if d.Err() == nil && (meta.Threads < 0 || meta.Locks < 0 || meta.Vars < 0) {
		d.Corruptf("negative header field (%d threads, %d locks, %d vars)", meta.Threads, meta.Locks, meta.Vars)
	}
	total := d.U64()
	read := d.U64()
	if d.Err() == nil && read > total {
		d.Corruptf("read count %d exceeds declared total %d", read, total)
	}
	d.End()
	if err := d.Err(); err != nil {
		return err
	}
	if err := discardPrefix(s.r, off); err != nil {
		return err
	}
	s.consumed = off
	s.pos, s.end = 0, 0
	s.eof, s.rerr, s.err = false, nil, nil
	s.started, s.meta, s.total, s.read = started, meta, total, read
	return nil
}

// SnapshotSource implements CheckpointableSource: the replay cursor.
func (r *Replayer) SnapshotSource(e *ckpt.Enc) error {
	e.Begin("replayer")
	e.Uvarint(uint64(r.pos))
	e.End()
	return e.Err()
}

// RestoreSource implements CheckpointableSource. The Replayer must
// wrap the same trace the checkpointed one did.
func (r *Replayer) RestoreSource(d *ckpt.Dec) error {
	d.Begin("replayer")
	pos := d.Uvarint()
	if d.Err() == nil && pos > uint64(len(r.tr.Events)) {
		d.Corruptf("replay position %d beyond trace length %d", pos, len(r.tr.Events))
	}
	d.End()
	if err := d.Err(); err != nil {
		return err
	}
	r.pos = int(pos)
	return nil
}

// errNotCheckpointable reports a wrapped source without checkpoint
// support.
func errNotCheckpointable(src EventSource) error {
	return fmt.Errorf("trace: source %T does not support checkpointing", src)
}

// SnapshotSource implements CheckpointableSource: the discipline state
// (lock holders, thread lifecycle bits, event index), then the wrapped
// source.
func (v *Validator) SnapshotSource(e *ckpt.Enc) error {
	cs, ok := v.src.(CheckpointableSource)
	if !ok {
		return errNotCheckpointable(v.src)
	}
	e.Begin("validator")
	e.U64(v.idx)
	e.Uvarint(uint64(len(v.holder)))
	for _, h := range v.holder {
		e.Svarint(int64(h))
	}
	e.Uvarint(uint64(len(v.started)))
	for i := range v.started {
		e.Bool(v.started[i])
		e.Bool(v.forked[i])
		e.Bool(v.joined[i])
	}
	e.End()
	if err := e.Err(); err != nil {
		return err
	}
	return cs.SnapshotSource(e)
}

// RestoreSource implements CheckpointableSource.
func (v *Validator) RestoreSource(d *ckpt.Dec) error {
	cs, ok := v.src.(CheckpointableSource)
	if !ok {
		return errNotCheckpointable(v.src)
	}
	d.Begin("validator")
	idx := d.U64()
	nl := d.Len(1)
	if d.Err() != nil {
		return d.Err()
	}
	var holder []vt.TID
	for i := 0; i < nl; i++ {
		h := d.Svarint()
		if d.Err() != nil {
			return d.Err()
		}
		if h != int64(vt.None) && (h < 0 || h >= vt.MaxID) {
			d.Corruptf("lock %d held by out-of-range thread %d", i, h)
			return d.Err()
		}
		holder = append(holder, vt.TID(h))
	}
	nt := d.Len(3)
	if d.Err() != nil {
		return d.Err()
	}
	var started, forked, joined []bool
	if nt > 0 {
		started = make([]bool, nt)
		forked = make([]bool, nt)
		joined = make([]bool, nt)
	}
	for i := 0; i < nt; i++ {
		started[i] = d.Bool()
		forked[i] = d.Bool()
		joined[i] = d.Bool()
	}
	d.End()
	if err := d.Err(); err != nil {
		return err
	}
	if err := cs.RestoreSource(d); err != nil {
		return err
	}
	v.idx, v.holder, v.started, v.forked, v.joined, v.err = idx, holder, started, forked, joined, nil
	return nil
}

// SnapshotSource implements CheckpointableSource by pure delegation:
// progress reporting is an observer, so it contributes no section of
// its own and checkpoint bytes are identical with or without it — a
// checkpoint written under -progress resumes without it and vice
// versa. The counters are re-derived from the restored trace position
// (see progressState.StartAt).
func (p *progressSource) SnapshotSource(e *ckpt.Enc) error {
	cs, ok := p.src.(CheckpointableSource)
	if !ok {
		return errNotCheckpointable(p.src)
	}
	return cs.SnapshotSource(e)
}

// RestoreSource implements CheckpointableSource; see SnapshotSource.
func (p *progressSource) RestoreSource(d *ckpt.Dec) error {
	cs, ok := p.src.(CheckpointableSource)
	if !ok {
		return errNotCheckpointable(p.src)
	}
	return cs.RestoreSource(d)
}

// ErrInjectedCrash is the error a CrashSource reports when it cuts the
// stream at its kill point. The crash-equivalence harness treats it as
// the simulated process death.
var ErrInjectedCrash = errors.New("trace: injected crash")

// CrashSource delivers events from src until exactly `after` events
// have passed through, then fails with ErrInjectedCrash — a
// deterministic stand-in for a process dying mid-analysis, used by the
// crash-equivalence harness to kill a run at every batch boundary. It
// delegates checkpointing straight to the wrapped source without a
// section of its own, so checkpoints written under fault injection are
// byte-identical to uninjected ones and resume never involves the
// injector.
type CrashSource struct {
	src       EventSource
	remaining uint64
	killed    bool
}

// NewCrashSource wraps src with a fault injector that cuts the stream
// after exactly `after` delivered events.
func NewCrashSource(src EventSource, after uint64) *CrashSource {
	return &CrashSource{src: src, remaining: after}
}

// Next implements EventSource.
func (c *CrashSource) Next() (Event, bool) {
	if c.killed {
		return Event{}, false
	}
	if c.remaining == 0 {
		c.killed = true
		return Event{}, false
	}
	ev, ok := c.src.Next()
	if ok {
		c.remaining--
	}
	return ev, ok
}

// NextBatch implements BatchSource, truncating the batch that reaches
// the kill point so every counted event is still delivered.
func (c *CrashSource) NextBatch(buf []Event) (int, bool) {
	if c.killed {
		return 0, false
	}
	if c.remaining == 0 {
		c.killed = true
		return 0, false
	}
	if uint64(len(buf)) > c.remaining {
		buf = buf[:c.remaining]
	}
	n, ok := ReadBatch(c.src, buf)
	c.remaining -= uint64(n)
	return n, ok
}

// Err implements EventSource: ErrInjectedCrash once the kill point is
// reached, the wrapped source's error otherwise.
func (c *CrashSource) Err() error {
	if c.killed {
		return ErrInjectedCrash
	}
	return c.src.Err()
}

// SnapshotSource implements CheckpointableSource by pure delegation.
func (c *CrashSource) SnapshotSource(e *ckpt.Enc) error {
	cs, ok := c.src.(CheckpointableSource)
	if !ok {
		return errNotCheckpointable(c.src)
	}
	return cs.SnapshotSource(e)
}

// RestoreSource implements CheckpointableSource by pure delegation.
func (c *CrashSource) RestoreSource(d *ckpt.Dec) error {
	cs, ok := c.src.(CheckpointableSource)
	if !ok {
		return errNotCheckpointable(c.src)
	}
	return cs.RestoreSource(d)
}

// SetInternCap delegates InternCapable to the wrapped source (a no-op
// when it has no interner), so fault-injected runs can bound the
// interner exactly like uninjected ones.
func (c *CrashSource) SetInternCap(n int) {
	if ic, ok := c.src.(InternCapable); ok {
		ic.SetInternCap(n)
	}
}

// InternStats delegates InternCapable to the wrapped source.
func (c *CrashSource) InternStats() (live int, evictions uint64) {
	if ic, ok := c.src.(InternCapable); ok {
		return ic.InternStats()
	}
	return 0, 0
}

var (
	_ CheckpointableSource = (*Scanner)(nil)
	_ CheckpointableSource = (*BinaryScanner)(nil)
	_ CheckpointableSource = (*Replayer)(nil)
	_ CheckpointableSource = (*Validator)(nil)
	_ CheckpointableSource = (*progressSource)(nil)
	_ CheckpointableSource = (*CrashSource)(nil)
	_ BatchSource          = (*CrashSource)(nil)
)
