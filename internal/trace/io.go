package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"treeclock/internal/vt"
)

// Text format
//
// One event per line: "<thread> <op> <operand>", where op is one of
// r, w, acq, rel, fork, join. Blank lines and lines starting with '#'
// are ignored. Identifiers are arbitrary tokens (e.g. t0, main, x12,
// mu); the parser interns them into dense id spaces in order of first
// appearance. Fork/join operands name threads. Example:
//
//	# two threads racing on x
//	main acq mu
//	main w x
//	main rel mu
//	worker w x
//
// WriteText emits canonical names (t0..., x0..., l0...), so a
// write/parse round trip preserves the trace exactly.

// WriteText serializes the trace to the text format.
func WriteText(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if tr.Meta.Name != "" {
		fmt.Fprintf(bw, "# %s\n", tr.Meta.Name)
	}
	for _, e := range tr.Events {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// intern maps symbolic names to dense ids.
//
// Besides the general map, it keeps a direct-index fast path for
// canonical names — one lowercase letter followed by a decimal number
// without leading zeros ("t3", "x128", "l0"), the spelling WriteText
// emits. Those resolve through an array lookup instead of a string
// hash, which roughly halves tokenizing cost on canonical traces. The
// first canonical name fixes the space's prefix letter; canonical
// names with other letters, huge numbers, or any non-canonical shape
// take the map. A name's spelling picks the same path every time, so
// ids stay consistent regardless of mixing.
type intern struct {
	ids        map[string]int32
	count      int32
	fastPrefix byte    // 0 until the first canonical name is seen
	fast       []int32 // numeric suffix -> id+1; 0 = unseen

	// Cold-name eviction (Scanner.SetInternCap): cap bounds the
	// map-interned table only — the direct-index array is already
	// bounded by fastLimit — and 0 (the default) disables eviction,
	// leaving the hot path untouched except for a nil check. With a
	// cap, every map hit stamps the name's recency tick, and an insert
	// at the cap first evicts the coldest quarter of the table. An
	// evicted name seen again gets a fresh id — ids are never reused,
	// because downstream per-id analysis state would rebind — so
	// consumers see it as a brand-new identifier, which is sound
	// exactly when the old id's analysis state is dead (the caller's
	// bargain: see the Scanner.SetInternCap contract).
	cap       int
	tick      uint64           // recency counter, bumped per map use
	last      map[int32]uint64 // id -> tick of last use (cap > 0 only)
	names     map[int32]string // id -> name, for map-key deletion
	evictions uint64
}

// fastLimit bounds the numeric suffix served by the direct-index path
// (the array's high-water mark is allocated).
const fastLimit = 1 << 20

func newIntern() *intern { return &intern{ids: make(map[string]int32)} }

// idBytes interns a name given as a byte slice. Canonical names take
// the direct-index fast path; the rest hit the map, whose lookup is
// keyed on the slice without conversion (the compiler elides the
// string copy), so a name is copied exactly once: when it is first
// seen. This is the zero-allocation hot path of the text tokenizer.
func (in *intern) idBytes(name []byte) int32 {
	if v, ok := canonical(name); ok {
		if id, ok := in.fastID(name[0], v); ok {
			return id
		}
	}
	if id, ok := in.ids[string(name)]; ok {
		if in.last != nil {
			in.tick++
			in.last[id] = in.tick
		}
		return id
	}
	if in.cap > 0 && len(in.ids) >= in.cap {
		in.evict()
	}
	id := in.count
	s := string(name)
	in.ids[s] = id
	in.count++
	if in.last != nil {
		in.tick++
		in.last[id] = in.tick
		in.names[id] = s
	}
	return id
}

// setCap bounds the map-interned table to n names (0 disables).
// Names already interned are backfilled with recency tick 0, so they
// are the first eviction candidates.
func (in *intern) setCap(n int) {
	in.cap = n
	if n <= 0 {
		in.last, in.names = nil, nil
		return
	}
	in.last = make(map[int32]uint64)
	in.names = make(map[int32]string)
	for name, id := range in.ids {
		in.last[id] = 0
		in.names[id] = name
	}
}

// evict removes the coldest quarter (at least one) of the map-interned
// names. Ties on the recency tick break by id, so the batch is
// deterministic regardless of map iteration order.
func (in *intern) evict() {
	n := in.cap / 4
	if n < 1 {
		n = 1
	}
	type idTick struct {
		id   int32
		tick uint64
	}
	all := make([]idTick, 0, len(in.last))
	for id, tk := range in.last {
		all = append(all, idTick{id, tk})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].tick != all[j].tick {
			return all[i].tick < all[j].tick
		}
		return all[i].id < all[j].id
	})
	if n > len(all) {
		n = len(all)
	}
	for i := 0; i < n; i++ {
		id := all[i].id
		delete(in.ids, in.names[id])
		delete(in.names, id)
		delete(in.last, id)
		in.evictions++
	}
}

// fastID interns a canonical name given in decoded form — prefix
// letter c, numeric suffix v — through the direct-index path. It
// reports ok == false when the name must take the map instead (foreign
// prefix letter or an out-of-range suffix); the only state such a miss
// may have touched is fixing the space's prefix letter, exactly as
// idBytes would have.
func (in *intern) fastID(c byte, v int) (int32, bool) {
	if in.fastPrefix == 0 {
		in.fastPrefix = c
	}
	if c != in.fastPrefix || v >= fastLimit {
		return 0, false
	}
	if v < len(in.fast) {
		if id := in.fast[v]; id != 0 {
			return id - 1, true
		}
	} else {
		in.fast = vt.GrowSlice(in.fast, v+1)
	}
	id := in.count
	in.fast[v] = id + 1
	in.count++
	return id, true
}

// canonical reports whether name is a canonical identifier — one
// lowercase ASCII letter, then a decimal number below fastLimit with
// no leading zero — and returns that number.
func canonical(name []byte) (int, bool) {
	if len(name) < 2 || len(name) > 8 {
		return 0, false
	}
	if c := name[0]; c < 'a' || c > 'z' {
		return 0, false
	}
	d := name[1]
	if d < '0' || d > '9' || (d == '0' && len(name) > 2) {
		return 0, false
	}
	v := int(d - '0')
	for _, b := range name[2:] {
		if b < '0' || b > '9' {
			return 0, false
		}
		v = v*10 + int(b-'0')
	}
	return v, v < fastLimit
}

// ParseText reads a trace from the text format. The returned trace has
// Meta ranges sized to the identifiers seen. The events are not
// validated; call Validate separately if lock discipline matters.
// It is the materializing view of the streaming Scanner — one parser,
// one whitespace/error contract.
func ParseText(r io.Reader) (*Trace, error) {
	return NewScanner(r).ScanAll()
}

// ParseTextString is ParseText over an in-memory string, convenient for
// tests and examples.
func ParseTextString(s string) (*Trace, error) { return ParseText(strings.NewReader(s)) }
