package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"treeclock/internal/vt"
)

// Text format
//
// One event per line: "<thread> <op> <operand>", where op is one of
// r, w, acq, rel, fork, join. Blank lines and lines starting with '#'
// are ignored. Identifiers are arbitrary tokens (e.g. t0, main, x12,
// mu); the parser interns them into dense id spaces in order of first
// appearance. Fork/join operands name threads. Example:
//
//	# two threads racing on x
//	main acq mu
//	main w x
//	main rel mu
//	worker w x
//
// WriteText emits canonical names (t0..., x0..., l0...), so a
// write/parse round trip preserves the trace exactly.

// WriteText serializes the trace to the text format.
func WriteText(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if tr.Meta.Name != "" {
		fmt.Fprintf(bw, "# %s\n", tr.Meta.Name)
	}
	for _, e := range tr.Events {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// intern maps symbolic names to dense ids.
type intern struct {
	ids   map[string]int32
	count int32
}

func newIntern() *intern { return &intern{ids: make(map[string]int32)} }

func (in *intern) id(name string) int32 {
	if id, ok := in.ids[name]; ok {
		return id
	}
	id := in.count
	in.ids[name] = id
	in.count++
	return id
}

// ParseText reads a trace from the text format. The returned trace has
// Meta ranges sized to the identifiers seen. The events are not
// validated; call Validate separately if lock discipline matters.
func ParseText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	threads, locks, vars := newIntern(), newIntern(), newIntern()
	var events []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want \"<thread> <op> <operand>\", got %q", lineNo, line)
		}
		t := threads.id(fields[0])
		var e Event
		e.T = vt.TID(t)
		switch fields[1] {
		case "r":
			e.Kind, e.Obj = Read, vars.id(fields[2])
		case "w":
			e.Kind, e.Obj = Write, vars.id(fields[2])
		case "acq":
			e.Kind, e.Obj = Acquire, locks.id(fields[2])
		case "rel":
			e.Kind, e.Obj = Release, locks.id(fields[2])
		case "fork":
			e.Kind, e.Obj = Fork, threads.id(fields[2])
		case "join":
			e.Kind, e.Obj = Join, threads.id(fields[2])
		default:
			return nil, fmt.Errorf("trace: line %d: unknown operation %q", lineNo, fields[1])
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &Trace{
		Meta: Meta{
			Threads: int(threads.count),
			Locks:   int(locks.count),
			Vars:    int(vars.count),
		},
		Events: events,
	}, nil
}

// ParseTextString is ParseText over an in-memory string, convenient for
// tests and examples.
func ParseTextString(s string) (*Trace, error) { return ParseText(strings.NewReader(s)) }
