package trace

// Batched ingestion
//
// Pulling events one interface call at a time puts a dynamic dispatch,
// a bounds check and a branch on the hot path of every event. The
// batch API amortizes all three to once per batch: a BatchSource fills
// a caller-owned buffer with up to len(buf) events per call, and the
// engine runtime (Runtime.ProcessBatches) then steps through the
// buffer with a plain slice loop. Every source in this package — the
// text Scanner, the BinaryScanner, the Validator and the in-memory
// Replayer — implements BatchSource; Pipeline additionally overlaps
// decoding with analysis (see pipeline.go).

// DefaultBatchSize is the event-batch capacity used when a consumer
// does not supply its own buffer. 512 events (≈6 KiB) amortizes the
// per-batch overhead to noise while staying comfortably inside L1.
const DefaultBatchSize = 512

// BatchSource is an EventSource that can also deliver events in bulk.
// NextBatch fills buf with up to len(buf) events and reports how many
// were written; ok is n > 0, so a false result means the source is
// exhausted or failed — check Err, exactly as after a false Next. A
// short batch (0 < n < len(buf)) only occurs at the end of input or
// immediately before an error, so consumers may simply loop until
// ok == false. buf must be non-empty: an empty buffer yields (0,
// false) without implying exhaustion (Err stays nil), so a caller
// looping on ok over an empty buffer would silently consume nothing.
type BatchSource interface {
	EventSource
	NextBatch(buf []Event) (n int, ok bool)
}

// BatchProducer is a source that owns its batch buffers and hands them
// out without copying — the contract of the pipelined decoder, whose
// buffers are recycled through a ring. AcquireBatch returns the next
// decoded batch (nil, false at end of input or on error; check Err);
// the consumer must return the batch via ReleaseBatch once processed,
// or the producer stalls when the ring runs dry.
type BatchProducer interface {
	EventSource
	AcquireBatch() ([]Event, bool)
	ReleaseBatch([]Event)
}

// ReadBatch fills buf from src, using NextBatch when the source
// supports it and falling back to per-event Next otherwise. The result
// contract matches BatchSource.NextBatch, including the non-empty
// buffer requirement.
func ReadBatch(src EventSource, buf []Event) (n int, ok bool) {
	if bs, ok := src.(BatchSource); ok {
		return bs.NextBatch(buf)
	}
	for n < len(buf) {
		ev, ok := src.Next()
		if !ok {
			break
		}
		buf[n] = ev
		n++
	}
	return n, n > 0
}

// Replayer streams a materialized trace as an EventSource/BatchSource,
// so in-memory traces run through exactly the same engine loop as
// streamed files (and batch delivery is a single copy from the event
// slice). Err is always nil.
type Replayer struct {
	tr  *Trace
	pos int
}

// NewReplayer wraps a materialized trace.
func NewReplayer(tr *Trace) *Replayer { return &Replayer{tr: tr} }

// Next returns the next event of the underlying trace.
func (r *Replayer) Next() (Event, bool) {
	if r.pos >= len(r.tr.Events) {
		return Event{}, false
	}
	ev := r.tr.Events[r.pos]
	r.pos++
	return ev, true
}

// NextBatch copies the next len(buf) events into buf.
func (r *Replayer) NextBatch(buf []Event) (int, bool) {
	n := copy(buf, r.tr.Events[r.pos:])
	r.pos += n
	return n, n > 0
}

// Err always reports nil: a materialized trace cannot fail mid-replay.
func (r *Replayer) Err() error { return nil }

// Meta reports the trace's declared identifier spaces.
func (r *Replayer) Meta() Meta { return r.tr.Meta }

// Reset rewinds the replayer to the start of the trace.
func (r *Replayer) Reset() { r.pos = 0 }

var (
	_ BatchSource = (*Scanner)(nil)
	_ BatchSource = (*BinaryScanner)(nil)
	_ BatchSource = (*Validator)(nil)
	_ BatchSource = (*Replayer)(nil)
)
