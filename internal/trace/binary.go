package trace

// Binary format
//
// A compact, streamable encoding for large generated traces (not meant
// for interchange outside this module). Unlike the previous gob
// envelope, events are encoded individually, so a BinaryScanner can
// feed an engine one event at a time with O(1) memory:
//
//	magic "TCT1" (4 bytes)
//	name:    uvarint length + bytes
//	threads: uvarint   (identifier-space sizes; informative — streaming
//	locks:   uvarint    consumers may ignore them and discover the
//	vars:    uvarint    spaces on the fly)
//	events:  uvarint count, then per event:
//	         1 byte kind, uvarint thread, uvarint operand

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"treeclock/internal/vt"
)

// binaryMagic identifies (and versions) the binary trace format.
var binaryMagic = [4]byte{'T', 'C', 'T', '1'}

// WriteBinary serializes the trace to the streamable binary format.
func WriteBinary(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(tr.Meta.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(tr.Meta.Name); err != nil {
		return err
	}
	for _, v := range [4]int{tr.Meta.Threads, tr.Meta.Locks, tr.Meta.Vars, len(tr.Events)} {
		if err := writeUvarint(uint64(v)); err != nil {
			return err
		}
	}
	for _, e := range tr.Events {
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(e.T)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(e.Obj)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BinaryScanner streams events from the binary trace format without
// materializing the trace. It implements EventSource.
type BinaryScanner struct {
	br      *bufio.Reader
	meta    Meta
	total   uint64 // declared event count
	read    uint64 // events returned so far
	started bool
	err     error
}

// NewBinaryScanner wraps a binary-format trace stream. The header is
// read lazily on the first Next or Meta call.
func NewBinaryScanner(r io.Reader) *BinaryScanner {
	return &BinaryScanner{br: bufio.NewReader(r)}
}

// header reads and validates the stream header once.
func (s *BinaryScanner) header() error {
	if s.started || s.err != nil {
		return s.err
	}
	s.started = true
	var magic [4]byte
	if _, err := io.ReadFull(s.br, magic[:]); err != nil {
		s.err = fmt.Errorf("trace: reading binary header: %w", err)
		return s.err
	}
	if magic != binaryMagic {
		s.err = fmt.Errorf("trace: bad binary magic %q (want %q)", magic[:], binaryMagic[:])
		return s.err
	}
	nameLen, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.err = fmt.Errorf("trace: reading binary header: %w", err)
		return s.err
	}
	const maxNameLen = 1 << 20
	if nameLen > maxNameLen {
		s.err = fmt.Errorf("trace: binary trace name length %d too large", nameLen)
		return s.err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(s.br, name); err != nil {
		s.err = fmt.Errorf("trace: reading binary header: %w", err)
		return s.err
	}
	s.meta.Name = string(name)
	var fields [4]uint64
	for i := range fields {
		if fields[i], err = binary.ReadUvarint(s.br); err != nil {
			s.err = fmt.Errorf("trace: reading binary header: %w", err)
			return s.err
		}
		if i < 3 && fields[i] > math.MaxInt32 {
			s.err = fmt.Errorf("trace: binary header field %d out of range (%d)", i, fields[i])
			return s.err
		}
	}
	s.meta.Threads = int(fields[0])
	s.meta.Locks = int(fields[1])
	s.meta.Vars = int(fields[2])
	s.total = fields[3]
	return nil
}

// Next returns the next event. It reports ok == false at end of input
// or on error; check Err afterwards.
func (s *BinaryScanner) Next() (Event, bool) {
	if err := s.header(); err != nil || s.read == s.total {
		return Event{}, false
	}
	return s.decode()
}

// NextBatch fills buf with up to len(buf) events; see
// BatchSource.NextBatch for the contract. The header check and the
// remaining-count test are hoisted out of the per-event loop.
func (s *BinaryScanner) NextBatch(buf []Event) (n int, ok bool) {
	if err := s.header(); err != nil {
		return 0, false
	}
	want := len(buf)
	if rem := s.total - s.read; uint64(want) > rem {
		want = int(rem)
	}
	for n < want {
		ev, ok := s.decode()
		if !ok {
			break
		}
		buf[n] = ev
		n++
	}
	return n, n > 0
}

// decode reads one event; the header must already be consumed and the
// declared count not yet exhausted.
func (s *BinaryScanner) decode() (Event, bool) {
	kind, err := s.br.ReadByte()
	if err != nil {
		s.err = fmt.Errorf("trace: event %d: %w", s.read, err)
		return Event{}, false
	}
	if Kind(kind) >= numKinds {
		s.err = fmt.Errorf("trace: event %d: invalid kind %d", s.read, kind)
		return Event{}, false
	}
	t, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.err = fmt.Errorf("trace: event %d: %w", s.read, err)
		return Event{}, false
	}
	obj, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.err = fmt.Errorf("trace: event %d: %w", s.read, err)
		return Event{}, false
	}
	// Identifiers are int32-valued; reject anything larger so a
	// corrupt stream surfaces as an error, not a negative id.
	const maxID = math.MaxInt32
	if t > maxID || obj > maxID {
		s.err = fmt.Errorf("trace: event %d: identifier out of range (thread %d, operand %d)", s.read, t, obj)
		return Event{}, false
	}
	s.read++
	return Event{T: vt.TID(t), Obj: int32(obj), Kind: Kind(kind)}, true
}

// Err returns the first error encountered, or nil at clean EOF.
func (s *BinaryScanner) Err() error { return s.err }

// Meta reports the identifier spaces declared in the stream header.
func (s *BinaryScanner) Meta() Meta {
	_ = s.header()
	return s.meta
}

// Len reports the event count declared in the stream header.
func (s *BinaryScanner) Len() int {
	_ = s.header()
	return int(s.total)
}

// ScanAll drains the scanner into a materialized trace.
func (s *BinaryScanner) ScanAll() (*Trace, error) {
	if err := s.header(); err != nil {
		return nil, err
	}
	capHint := s.total
	if capHint > 1<<20 { // don't trust a corrupt header with the allocation
		capHint = 1 << 20
	}
	events := make([]Event, 0, capHint)
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		events = append(events, ev)
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return &Trace{Meta: s.meta, Events: events}, nil
}

// ReadBinary deserializes a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	return NewBinaryScanner(r).ScanAll()
}

var _ EventSource = (*BinaryScanner)(nil)
var _ EventSource = (*Scanner)(nil)
