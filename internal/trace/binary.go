package trace

// Binary format
//
// A compact, streamable encoding for large generated traces (not meant
// for interchange outside this module). Unlike the previous gob
// envelope, events are encoded individually, so a BinaryScanner can
// feed an engine one event at a time with O(1) memory:
//
//	magic "TCT1" (4 bytes)
//	name:    uvarint length + bytes
//	threads: uvarint   (identifier-space sizes; informative — streaming
//	locks:   uvarint    consumers may ignore them and discover the
//	vars:    uvarint    spaces on the fly)
//	events:  uvarint count, then per event:
//	         1 byte kind, uvarint thread, uvarint operand

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"treeclock/internal/vt"
)

// binaryMagic identifies (and versions) the binary trace format.
var binaryMagic = [4]byte{'T', 'C', 'T', '1'}

// WriteBinary serializes the trace to the streamable binary format.
func WriteBinary(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(tr.Meta.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(tr.Meta.Name); err != nil {
		return err
	}
	for _, v := range [4]int{tr.Meta.Threads, tr.Meta.Locks, tr.Meta.Vars, len(tr.Events)} {
		if err := writeUvarint(uint64(v)); err != nil {
			return err
		}
	}
	for _, e := range tr.Events {
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(e.T)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(e.Obj)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// binBufSize is the scanner's refill window: large enough that refills
// are rare, small enough to stay cache-resident.
const binBufSize = 64 << 10

// maxEventEnc is the worst-case encoded event size: one kind byte plus
// two maximal uvarints.
const maxEventEnc = 1 + 2*binary.MaxVarintLen64

// BinaryScanner streams events from the binary trace format without
// materializing the trace. It implements EventSource.
//
// Decoding reads through an explicit byte window instead of a
// bufio.Reader: a varint decoded via bufio costs one non-inlinable
// method call per byte, which at three calls per event was a
// double-digit share of the fastest engines' event loop. The window
// makes the common case — a whole event visible in the buffer, both
// identifiers below 128 — three loads and one bounds check.
type BinaryScanner struct {
	r    io.Reader
	buf  []byte
	pos  int   // next unread byte in buf
	end  int   // valid bytes in buf
	eof  bool  // underlying reader is exhausted
	rerr error // underlying read error (io.EOF excluded)

	consumed int64 // total bytes read from r (checkpoint offset accounting)

	meta    Meta
	total   uint64 // declared event count
	read    uint64 // events returned so far
	started bool
	err     error
}

// NewBinaryScanner wraps a binary-format trace stream. The header is
// read lazily on the first Next or Meta call.
func NewBinaryScanner(r io.Reader) *BinaryScanner {
	return &BinaryScanner{r: r, buf: make([]byte, binBufSize)}
}

// fill slides the unread tail to the front of the window and reads
// more bytes from the underlying reader.
func (s *BinaryScanner) fill() {
	if s.pos > 0 {
		copy(s.buf, s.buf[s.pos:s.end])
		s.end -= s.pos
		s.pos = 0
	}
	for !s.eof && s.end < len(s.buf) {
		n, err := s.r.Read(s.buf[s.end:])
		s.end += n
		s.consumed += int64(n)
		if err != nil {
			if err != io.EOF {
				s.rerr = err
			}
			s.eof = true
			return
		}
		if n > 0 {
			return
		}
	}
}

// readByte returns the next byte, refilling as needed. At a true end
// of input it returns the underlying error, or io.EOF.
func (s *BinaryScanner) readByte() (byte, error) {
	if s.pos >= s.end {
		s.fill()
		if s.pos >= s.end {
			if s.rerr != nil {
				return 0, s.rerr
			}
			return 0, io.EOF
		}
	}
	b := s.buf[s.pos]
	s.pos++
	return b, nil
}

// readUvarint decodes one uvarint through readByte (the slow path;
// event decoding inlines the single-byte case).
func (s *BinaryScanner) readUvarint() (uint64, error) {
	var x uint64
	var shift uint
	for i := 0; ; i++ {
		b, err := s.readByte()
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, fmt.Errorf("trace: uvarint overflows 64 bits")
			}
			return x | uint64(b)<<shift, nil
		}
		if i == binary.MaxVarintLen64-1 {
			return 0, fmt.Errorf("trace: uvarint overflows 64 bits")
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
}

// readFull fills p from the window, refilling as needed.
func (s *BinaryScanner) readFull(p []byte) error {
	for n := 0; n < len(p); {
		if s.pos >= s.end {
			s.fill()
			if s.pos >= s.end {
				if s.rerr != nil {
					return s.rerr
				}
				return io.ErrUnexpectedEOF
			}
		}
		c := copy(p[n:], s.buf[s.pos:s.end])
		s.pos += c
		n += c
	}
	return nil
}

// header reads and validates the stream header once.
func (s *BinaryScanner) header() error {
	if s.started || s.err != nil {
		return s.err
	}
	s.started = true
	var magic [4]byte
	if err := s.readFull(magic[:]); err != nil {
		s.err = fmt.Errorf("trace: reading binary header: %w", err)
		return s.err
	}
	if magic != binaryMagic {
		s.err = fmt.Errorf("trace: bad binary magic %q (want %q)", magic[:], binaryMagic[:])
		return s.err
	}
	nameLen, err := s.readUvarint()
	if err != nil {
		s.err = fmt.Errorf("trace: reading binary header: %w", err)
		return s.err
	}
	const maxNameLen = 1 << 20
	if nameLen > maxNameLen {
		s.err = fmt.Errorf("trace: binary trace name length %d too large", nameLen)
		return s.err
	}
	name := make([]byte, nameLen)
	if err := s.readFull(name); err != nil {
		s.err = fmt.Errorf("trace: reading binary header: %w", err)
		return s.err
	}
	s.meta.Name = string(name)
	var fields [4]uint64
	for i := range fields {
		if fields[i], err = s.readUvarint(); err != nil {
			s.err = fmt.Errorf("trace: reading binary header: %w", err)
			return s.err
		}
		if i < 3 && fields[i] >= vt.MaxID {
			s.err = fmt.Errorf("trace: binary header field %d out of range (%d)", i, fields[i])
			return s.err
		}
	}
	s.meta.Threads = int(fields[0])
	s.meta.Locks = int(fields[1])
	s.meta.Vars = int(fields[2])
	s.total = fields[3]
	return nil
}

// Next returns the next event. It reports ok == false at end of input
// or on error; check Err afterwards.
func (s *BinaryScanner) Next() (Event, bool) {
	if err := s.header(); err != nil || s.read == s.total {
		return Event{}, false
	}
	return s.decode()
}

// NextBatch fills buf with up to len(buf) events; see
// BatchSource.NextBatch for the contract. The header check and the
// remaining-count test are hoisted out of the per-event loop.
func (s *BinaryScanner) NextBatch(buf []Event) (n int, ok bool) {
	if err := s.header(); err != nil {
		return 0, false
	}
	want := len(buf)
	if rem := s.total - s.read; uint64(want) > rem {
		want = int(rem)
	}
	for n < want {
		ev, ok := s.decode()
		if !ok {
			break
		}
		buf[n] = ev
		n++
	}
	return n, n > 0
}

// decode reads one event; the header must already be consumed and the
// declared count not yet exhausted. The fast path — the whole event in
// the window with single-byte identifiers, the overwhelmingly common
// shape — decodes with three loads; anything else (long varints, a
// window boundary, truncation) takes the checked per-byte path.
func (s *BinaryScanner) decode() (Event, bool) {
	if s.end-s.pos < maxEventEnc && !s.eof {
		s.fill()
	}
	if b, p := s.buf, s.pos; s.end-p >= 3 {
		if k, t, o := b[p], b[p+1], b[p+2]; t|o < 0x80 {
			if Kind(k) >= numKinds {
				s.err = fmt.Errorf("trace: event %d: invalid kind %d", s.read, k)
				return Event{}, false
			}
			s.pos = p + 3
			s.read++
			return Event{T: vt.TID(t), Obj: int32(o), Kind: Kind(k)}, true
		}
	}
	return s.decodeSlow()
}

// decodeSlow is decode's general path.
func (s *BinaryScanner) decodeSlow() (Event, bool) {
	kind, err := s.readByte()
	if err != nil {
		s.err = fmt.Errorf("trace: event %d: %w", s.read, err)
		return Event{}, false
	}
	if Kind(kind) >= numKinds {
		s.err = fmt.Errorf("trace: event %d: invalid kind %d", s.read, kind)
		return Event{}, false
	}
	t, err := s.readUvarint()
	if err != nil {
		s.err = fmt.Errorf("trace: event %d: %w", s.read, err)
		return Event{}, false
	}
	obj, err := s.readUvarint()
	if err != nil {
		s.err = fmt.Errorf("trace: event %d: %w", s.read, err)
		return Event{}, false
	}
	// Identifiers index dense per-identifier state downstream; reject
	// anything at or above the global id bound so a corrupt or hostile
	// stream surfaces as a decode error, not a negative id or a huge
	// allocation in a grow path.
	const maxID = vt.MaxID - 1
	if t > maxID || obj > maxID {
		s.err = fmt.Errorf("trace: event %d: identifier out of range (thread %d, operand %d)", s.read, t, obj)
		return Event{}, false
	}
	s.read++
	return Event{T: vt.TID(t), Obj: int32(obj), Kind: Kind(kind)}, true
}

// Err returns the first error encountered, or nil at clean EOF.
func (s *BinaryScanner) Err() error { return s.err }

// Meta reports the identifier spaces declared in the stream header.
func (s *BinaryScanner) Meta() Meta {
	_ = s.header()
	return s.meta
}

// Len reports the event count declared in the stream header.
func (s *BinaryScanner) Len() int {
	_ = s.header()
	return int(s.total)
}

// ScanAll drains the scanner into a materialized trace.
func (s *BinaryScanner) ScanAll() (*Trace, error) {
	if err := s.header(); err != nil {
		return nil, err
	}
	capHint := s.total
	if capHint > 1<<20 { // don't trust a corrupt header with the allocation
		capHint = 1 << 20
	}
	events := make([]Event, 0, capHint)
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		events = append(events, ev)
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	return &Trace{Meta: s.meta, Events: events}, nil
}

// ReadBinary deserializes a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	return NewBinaryScanner(r).ScanAll()
}

var _ EventSource = (*BinaryScanner)(nil)
var _ EventSource = (*Scanner)(nil)
