package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// TestTokenizerCRLF checks Windows line endings parse identically to
// Unix ones.
func TestTokenizerCRLF(t *testing.T) {
	unix := "t0 acq l0\nt0 w x0\nt0 rel l0\nt1 r x0\n"
	dos := strings.ReplaceAll(unix, "\n", "\r\n")
	a, err := NewScanner(strings.NewReader(unix)).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewScanner(strings.NewReader(dos)).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if a.Meta != b.Meta || len(a.Events) != len(b.Events) {
		t.Fatalf("CRLF parse diverges: %+v vs %+v", a.Meta, b.Meta)
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Errorf("event %d: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
}

// TestTokenizerWhitespace covers leading/trailing whitespace, interior
// runs of mixed spaces and tabs, comment-only and blank lines, pinned
// against literal expected events (ParseText shares the tokenizer, so
// comparing against it would be self-referential).
func TestTokenizerWhitespace(t *testing.T) {
	input := "# header comment\n\n   \t\n\t t0   acq\t\tl0  \t\n  # indented comment\nt0 w x0\t\r\n\nt0 rel l0"
	tr, err := NewScanner(strings.NewReader(input)).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{T: 0, Kind: Acquire, Obj: 0},
		{T: 0, Kind: Write, Obj: 0},
		{T: 0, Kind: Release, Obj: 0},
	}
	if len(tr.Events) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(tr.Events), tr.Events, len(want))
	}
	for i := range want {
		if tr.Events[i] != want[i] {
			t.Errorf("event %d: %v, want %v", i, tr.Events[i], want[i])
		}
	}
	if tr.Meta != (Meta{Threads: 1, Locks: 1, Vars: 1}) {
		t.Errorf("meta = %+v", tr.Meta)
	}
}

// TestTokenizerLongLine checks a line far longer than the initial read
// buffer is handled by growing, not truncated or split.
func TestTokenizerLongLine(t *testing.T) {
	long := strings.Repeat("v", readBufSize*2+17)
	input := "t0 acq l0\nt0 w " + long + "\nt0 rel l0\n"
	tr, err := NewScanner(strings.NewReader(input)).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 3 {
		t.Fatalf("got %d events, want 3", len(tr.Events))
	}
	if tr.Meta.Vars != 1 {
		t.Errorf("long identifier not interned: vars = %d", tr.Meta.Vars)
	}
	if tr.Events[1].Kind != Write || tr.Events[1].Obj != 0 {
		t.Errorf("long-identifier event = %v", tr.Events[1])
	}
}

// TestTokenizerNoTrailingNewline checks the final line is delivered
// without a newline terminator.
func TestTokenizerNoTrailingNewline(t *testing.T) {
	cases := []struct {
		input string
		want  int
	}{
		{"t0 w x0", 1},
		{"t0 w x0\nt1 r x0", 2},
		{"t0 w x0\n# trailing comment", 1},
		{"t0 w x0\n   ", 1},
	}
	for _, tc := range cases {
		s := NewScanner(strings.NewReader(tc.input))
		tr, err := s.ScanAll()
		if err != nil {
			t.Fatalf("%q: %v", tc.input, err)
		}
		if len(tr.Events) != tc.want {
			t.Errorf("%q: got %d events, want %d", tc.input, len(tr.Events), tc.want)
		}
	}
}

// TestTokenizerErrorContract pins the malformed-line errors to the
// exact text (and 1-based line numbers) of the bufio-era scanner, which
// ParseText still produces.
func TestTokenizerErrorContract(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"too few fields", "t0 acq l0\nt0 w\n", `trace: line 2: want "<thread> <op> <operand>", got "t0 w"`},
		{"too many fields", "t0 w x0 extra\n", `trace: line 1: want "<thread> <op> <operand>", got "t0 w x0 extra"`},
		{"unknown op", "# c\n\nt0 frobnicate x0\n", `trace: line 3: unknown operation "frobnicate"`},
		{"late error after comments", "# one\nt0 w x0\n# two\n\n  \nt1 nope x0\n", `trace: line 6: unknown operation "nope"`},
		{"crlf malformed", "t0 w x0\r\nbad line here and more\r\n", `trace: line 2: want "<thread> <op> <operand>", got "bad line here and more"`},
		{"trailing ws in message", "t0 w   \t\n", `trace: line 1: want "<thread> <op> <operand>", got "t0 w"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewScanner(strings.NewReader(tc.input))
			for {
				if _, ok := s.Next(); !ok {
					break
				}
			}
			if s.Err() == nil {
				t.Fatal("malformed input accepted")
			}
			if got := s.Err().Error(); got != tc.want {
				t.Errorf("error = %q, want %q", got, tc.want)
			}
			// The scanner and the materializing parser share the contract.
			if _, err := ParseTextString(tc.input); err == nil || err.Error() != tc.want {
				t.Errorf("ParseText error = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestTokenizerStopsAfterError checks the scanner stays stopped and
// NextBatch agrees.
func TestTokenizerStopsAfterError(t *testing.T) {
	s := NewScanner(strings.NewReader("t0 w x0\nbogus\nt1 r x0\n"))
	if _, ok := s.Next(); !ok {
		t.Fatal("first event must scan")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("malformed line must stop the scan")
	}
	if _, ok := s.Next(); ok {
		t.Error("scanner resumed after error")
	}
	if n, ok := s.NextBatch(make([]Event, 8)); n != 0 || ok {
		t.Errorf("NextBatch after error = (%d, %v)", n, ok)
	}
}

// TestTokenizerReadError checks buffered events drain before a reader
// failure surfaces.
func TestTokenizerReadError(t *testing.T) {
	boom := errors.New("disk on fire")
	r := io.MultiReader(strings.NewReader("t0 w x0\nt1 r x0\n"), &failReader{err: boom})
	s := NewScanner(r)
	count := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		count++
	}
	if count != 2 {
		t.Errorf("delivered %d buffered events before failing, want 2", count)
	}
	if !errors.Is(s.Err(), boom) {
		t.Errorf("Err = %v, want wrapped %v", s.Err(), boom)
	}
}

// TestTokenizerReadErrorTruncatedLine checks a final line with no
// newline is NOT delivered when the reader failed (it may be truncated
// mid-token — "x12" could be a prefix of "x123"); only a clean EOF
// terminates an unterminated final line.
func TestTokenizerReadErrorTruncatedLine(t *testing.T) {
	boom := errors.New("connection reset")
	for _, input := range []string{"t0 w x1\nt0 w x12", "t0 w x1\nt0 w x12 ", "t0 w x1\n# trunca", "t0 w x1\n   "} {
		r := io.MultiReader(strings.NewReader(input), &failReader{err: boom})
		s := NewScanner(r)
		count := 0
		for {
			if _, ok := s.Next(); !ok {
				break
			}
			count++
		}
		if count != 1 {
			t.Errorf("%q: delivered %d events, want 1 (complete lines only)", input, count)
		}
		if !errors.Is(s.Err(), boom) {
			t.Errorf("%q: Err = %v, want wrapped %v", input, s.Err(), boom)
		}
	}
}

type failReader struct{ err error }

func (f *failReader) Read([]byte) (int, error) { return 0, f.err }

// TestTokenizerInternConsistency mixes canonical, non-canonical and
// near-canonical identifiers and pins ids to the literal order-of-
// first-appearance contract: the fast path must never alias distinct
// spellings like "x1" and "x01", and fast-path and map-path names must
// share one dense id space. Expectations are spelled out explicitly —
// ParseText shares the tokenizer, so it cannot serve as the reference.
func TestTokenizerInternConsistency(t *testing.T) {
	input := "t0 w x1\nt0 w x01\nmain w x001\nt0 w x1\nworker9 w hot\nt0 w x999999999999\nt0 w X2\nt0 w x2\n"
	tr, err := NewScanner(strings.NewReader(input)).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{T: 0, Kind: Write, Obj: 0}, // t0 -> 0, x1 -> 0 (fast path)
		{T: 0, Kind: Write, Obj: 1}, // x01: leading zero, map path, distinct id
		{T: 1, Kind: Write, Obj: 2}, // main -> 1 (map), x001 -> 2
		{T: 0, Kind: Write, Obj: 0}, // x1 again: same id as first sight
		{T: 2, Kind: Write, Obj: 3}, // worker9 -> 2, hot -> 3
		{T: 0, Kind: Write, Obj: 4}, // x999999999999: too long for fast path
		{T: 0, Kind: Write, Obj: 5}, // X2: uppercase prefix, map path
		{T: 0, Kind: Write, Obj: 6}, // x2: fast path, distinct from X2
	}
	if len(tr.Events) != len(want) {
		t.Fatalf("got %d events, want %d", len(tr.Events), len(want))
	}
	for i := range want {
		if tr.Events[i] != want[i] {
			t.Errorf("event %d: %v, want %v", i, tr.Events[i], want[i])
		}
	}
	if tr.Meta != (Meta{Threads: 3, Locks: 0, Vars: 7}) {
		t.Errorf("meta = %+v", tr.Meta)
	}
}

// TestTokenizerBatchMatchesScalar streams the same input through Next
// and NextBatch (at several buffer sizes, including sizes that straddle
// batch boundaries) and requires identical events.
func TestTokenizerBatchMatchesScalar(t *testing.T) {
	var input bytes.Buffer
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&input, "t%d w x%d\n", i%7, i%101)
		if i%13 == 0 {
			fmt.Fprintf(&input, "# comment %d\n\n", i)
		}
	}
	ref, err := NewScanner(bytes.NewReader(input.Bytes())).ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 3, 64, 1024, 5000} {
		s := NewScanner(bytes.NewReader(input.Bytes()))
		buf := make([]Event, size)
		var got []Event
		for {
			n, ok := s.NextBatch(buf)
			got = append(got, buf[:n]...)
			if !ok {
				break
			}
		}
		if err := s.Err(); err != nil {
			t.Fatalf("batch size %d: %v", size, err)
		}
		if len(got) != len(ref.Events) {
			t.Fatalf("batch size %d: %d events, want %d", size, len(got), len(ref.Events))
		}
		for i := range got {
			if got[i] != ref.Events[i] {
				t.Fatalf("batch size %d, event %d: %v vs %v", size, i, got[i], ref.Events[i])
			}
		}
	}
}

// TestTokenizerTinyReads re-parses sample input through a one-byte-at-
// a-time reader, exercising every refill/rescan path, against literal
// expected events.
func TestTokenizerTinyReads(t *testing.T) {
	input := "# c\nt0 acq l0\n\nt0 w x0\r\nt0 rel l0\n  t1 r x0"
	want := []Event{
		{T: 0, Kind: Acquire, Obj: 0},
		{T: 0, Kind: Write, Obj: 0},
		{T: 0, Kind: Release, Obj: 0},
		{T: 1, Kind: Read, Obj: 0},
	}
	s := NewScanner(&oneByteReader{data: []byte(input)})
	tr, err := s.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(tr.Events), tr.Events, len(want))
	}
	for i := range want {
		if tr.Events[i] != want[i] {
			t.Errorf("event %d: %v, want %v", i, tr.Events[i], want[i])
		}
	}
	if tr.Meta != (Meta{Threads: 2, Locks: 1, Vars: 1}) {
		t.Errorf("meta = %+v", tr.Meta)
	}
}

// oneByteReader yields one byte per Read call.
type oneByteReader struct {
	data []byte
	off  int
}

func (r *oneByteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	p[0] = r.data[r.off]
	r.off++
	return 1, nil
}
