package vt

// Isolation coverage for the sparse weak-clock representation: every
// operation is checked against the flat-vector reference model —
// directed cases for the sharing edges, testing/quick properties over
// random op sequences (mirroring vector_test.go), and a fuzz harness
// that interprets byte programs over a (Sparse, Vector) pair. The
// snapshot store is exercised the way internal/wcp drives it:
// monotonically growing per-thread release vectors, diffed, absorbed,
// dropped and recycled.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sparseOf builds a sparse clock holding exactly v.
func sparseOf(v Vector) *Sparse {
	c := NewSparse(len(v))
	for t := range v {
		c.SetMax(TID(t), v[t])
	}
	return c
}

// flatOf materializes c at length n for comparison against a model.
func flatOf(c *Sparse, n int) Vector {
	if c.Len() > n {
		n = c.Len()
	}
	return c.Vector(NewVector(n))
}

func TestSparseGetSetMaxBasics(t *testing.T) {
	c := NewSparse(0)
	if c.Len() != 0 || c.Get(3) != 0 || c.Get(-1) != 0 {
		t.Fatalf("zero clock not empty: len %d", c.Len())
	}
	c.SetMax(10, 7) // crosses a segment boundary from nothing
	if c.Len() != 11 || c.Get(10) != 7 || c.Get(9) != 0 {
		t.Fatalf("SetMax(10,7): len %d, Get(10) %d, Get(9) %d", c.Len(), c.Get(10), c.Get(9))
	}
	c.SetMax(10, 3) // lower value must not regress
	if c.Get(10) != 7 {
		t.Fatalf("SetMax with smaller value regressed entry to %d", c.Get(10))
	}
}

func TestSparseJoinSharesDominatedSegments(t *testing.T) {
	a := sparseOf(Vector{1, 2, 3, 4, 5, 6, 7, 8, 9})
	b := NewSparse(0)
	b.Join(a) // b trails a: every block should be adopted by reference
	if b.pool != a.pool {
		t.Fatal("empty clock did not adopt the operand's pool on first join")
	}
	for i := range b.segs {
		if b.segs[i] != a.segs[i] {
			t.Fatalf("block %d copied instead of shared on dominated join", i)
		}
		if ref := b.pool.at(b.segs[i]).ref; ref != 2 {
			t.Fatalf("block %d ref %d after share, want 2", i, ref)
		}
	}
	// Mutating b now must copy-on-write, leaving a intact.
	b.SetMax(0, 100)
	if a.Get(0) != 1 {
		t.Fatalf("COW violated: a.Get(0) = %d after mutating the sharing clock", a.Get(0))
	}
	if b.segs[0] == a.segs[0] || a.pool.at(a.segs[0]).ref != 1 {
		t.Fatalf("block 0 still shared after write (refs a=%d)", a.pool.at(a.segs[0]).ref)
	}
}

func TestSparseCopyFromZeroesTail(t *testing.T) {
	c := sparseOf(Vector{9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	o := sparseOf(Vector{1, 2})
	c.CopyFrom(o)
	want := Vector{1, 2, 0, 0, 0, 0, 0, 0, 0, 0}
	if got := flatOf(c, 10); !got.Equal(want) {
		t.Fatalf("CopyFrom left %v, want %v", got, want)
	}
}

func TestSparseVectorZeroesNilBlocks(t *testing.T) {
	c := NewSparse(12) // all blocks nil
	dst := Vector{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}
	got := c.Vector(dst)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("entry %d = %d in materialization of empty clock", i, v)
		}
	}
}

// Property: Join/SetMax/CopyFrom/LessEq agree with the flat model over
// random op sequences, through both the WeakClock and the Clock faces.
func TestSparseMatchesFlatModel(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		k := 1 + rr.Intn(40) // spans 1–5 segments
		c, model := NewSparse(0), NewVector(k)
		other, otherModel := NewSparse(0), NewVector(k)
		for op := 0; op < 60; op++ {
			switch rr.Intn(6) {
			case 0:
				tid, v := TID(rr.Intn(k)), Time(rr.Intn(50))
				c.SetMax(tid, v)
				if model[tid] < v {
					model[tid] = v
				}
			case 1:
				tid, d := TID(rr.Intn(k)), Time(1+rr.Intn(3))
				c.Inc(tid, d)
				model[tid] += d
			case 2:
				tid, v := TID(rr.Intn(k)), Time(rr.Intn(50))
				other.SetMax(tid, v)
				if otherModel[tid] < v {
					otherModel[tid] = v
				}
			case 3:
				c.Join(other)
				model.Join(otherModel)
			case 4:
				c.CopyFrom(other)
				copy(model, otherModel)
			case 5:
				if c.LessEq(other) != model.LessEq(otherModel) {
					return false
				}
			}
			if cm := flatOf(c, k); !cm.Equal(model) {
				return false
			}
		}
		return flatOf(other, k).Equal(otherModel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the snapshot store round-trips release vectors exactly —
// SnapGet reads back h, and Absorb equals a flat join — under the
// engine's access pattern (per-thread monotone release vectors, with
// the own entry advancing fastest, snapshots dropped and recycled).
func TestSparseStoreMatchesFlatModel(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		k := 2 + rr.Intn(30)
		st := NewSparseStore()
		w := st.NewW()
		model := NewVector(k)
		hb := make([]Vector, k) // per-thread monotone HB vectors
		for t := range hb {
			hb[t] = NewVector(k)
		}
		var snaps []SparseSnap
		var snapModels []Vector
		for rel := 0; rel < 40; rel++ {
			t := TID(rr.Intn(k))
			// Advance t's HB knowledge: own entry always, a few foreign
			// entries sometimes (the star/mixed shapes in miniature).
			hb[t][t] += Time(1 + rr.Intn(3))
			for m := rr.Intn(3); m > 0; m-- {
				u := rr.Intn(k)
				hb[t][u] += Time(rr.Intn(2))
			}
			// The vector changed, so a fresh rev is the honest input
			// (the fast path has its own dedicated test below).
			snap := st.Snapshot(t, hb[t], uint64(rel+1), k)
			for u := 0; u < k; u++ {
				if st.SnapGet(&snap, TID(u)) != hb[t][u] {
					return false
				}
			}
			snaps = append(snaps, snap)
			snapModels = append(snapModels, hb[t].Clone())
			// Absorb a random retained snapshot into the weak clock.
			i := rr.Intn(len(snaps))
			w.Absorb(&snaps[i])
			model.Join(snapModels[i])
			if got := flatOf(w, k); !got.Equal(model) {
				return false
			}
			// Occasionally drop the oldest retained snapshot (history
			// compaction) or replace a contribution (rule-a summary).
			if len(snaps) > 3 && rr.Intn(2) == 0 {
				st.Drop(&snaps[0])
				snaps = snaps[1:]
				snapModels = snapModels[1:]
			}
			if len(snaps) > 1 && rr.Intn(3) == 0 {
				st.Assign(&snaps[0], &snaps[len(snaps)-1])
				snapModels[0] = snapModels[len(snapModels)-1].Clone()
			}
		}
		// Snapshots must have stayed immutable through all the clock
		// traffic above.
		for i := range snaps {
			for u := 0; u < k; u++ {
				if st.SnapGet(&snaps[i], TID(u)) != snapModels[i][u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// A snapshot's segments stay valid after its releaser keeps running:
// the store's prev cache shares segments with retained history entries,
// and later snapshots must copy-on-diff, never mutate.
func TestSparseSnapshotImmutableAcrossReleases(t *testing.T) {
	st := NewSparseStore()
	k := 10
	h := NewVector(k)
	h[0], h[5], h[9] = 3, 7, 1
	first := st.Snapshot(0, h, 1, k)

	h[0], h[5], h[9] = 8, 7, 2 // own entry and one foreign entry moved
	second := st.Snapshot(0, h, 2, k)

	for u, want := range map[TID]Time{0: 3, 5: 7, 9: 1} {
		if got := st.SnapGet(&first, u); got != want {
			t.Errorf("first snapshot entry %d mutated: got %d, want %d", u, got, want)
		}
	}
	if got := st.SnapGet(&second, 9); got != 2 {
		t.Errorf("second snapshot entry 9 = %d, want 2", got)
	}
	// Block 0 differs only in the own slot → shared by reference.
	if first.seg(0) != second.seg(0) {
		t.Error("own-slot-only change did not share the segment")
	}
	// But the epoch reads exactly.
	if st.SnapGet(&second, 0) != 8 || st.SnapGet(&first, 0) != 3 {
		t.Errorf("own-slot epochs wrong: first %d, second %d",
			st.SnapGet(&first, 0), st.SnapGet(&second, 0))
	}
}

// The quiet-release fast path: an unchanged rev over an unchanged
// thread space re-issues the previous snapshot's segments in O(1),
// while the out-of-band epoch still tracks the view. A changed rev or
// a grown thread space must fall back to the diff.
func TestSparseSnapshotQuietReleaseFastPath(t *testing.T) {
	st := NewSparseStore()
	k := 10
	h := NewVector(k)
	h[0], h[5], h[9] = 3, 7, 1
	first := st.Snapshot(0, h, 1, k)

	// Only the own entry moves, rev unchanged: every segment shares.
	h[0] = 12
	second := st.Snapshot(0, h, 1, k)
	for i := 0; i < (k+segMask)>>segShift; i++ {
		if first.seg(i) != second.seg(i) {
			t.Errorf("quiet release did not share block %d", i)
		}
	}
	if got := st.SnapGet(&second, 0); got != 12 {
		t.Errorf("own epoch after quiet release = %d, want 12", got)
	}
	for u, want := range map[TID]Time{5: 7, 9: 1} {
		if got := st.SnapGet(&second, u); got != want {
			t.Errorf("quiet-release entry %d = %d, want %d", u, got, want)
		}
	}

	// A foreign entry moves and rev advances: the changed block copies,
	// the rest still share, and the earlier snapshots stay immutable.
	h[9] = 4
	third := st.Snapshot(0, h, 2, k)
	if third.seg(1) == second.seg(1) {
		t.Error("changed block shared across rev advance")
	}
	if third.seg(0) != second.seg(0) {
		t.Error("unchanged block stopped sharing across rev advance")
	}
	if got := st.SnapGet(&third, 9); got != 4 {
		t.Errorf("third snapshot entry 9 = %d, want 4", got)
	}
	if st.SnapGet(&first, 0) != 3 || st.SnapGet(&second, 9) != 1 {
		t.Error("earlier snapshots mutated")
	}

	// Same rev but a grown thread space: the size gate forces the diff.
	big := NewVector(2 * k)
	copy(big, h)
	big[k+3] = 5
	fourth := st.Snapshot(0, big, 2, 2*k)
	if got := st.SnapGet(&fourth, TID(k+3)); got != 5 {
		t.Errorf("post-grow snapshot entry %d = %d, want 5", k+3, got)
	}

	// The shared segments survive dropping any one holder.
	st.Drop(&second)
	if st.SnapGet(&first, 5) != 7 || st.SnapGet(&third, 5) != 7 {
		t.Error("dropping the quiet-release snapshot corrupted its siblings")
	}
	st.Drop(&first)
	st.Drop(&third)
	st.Drop(&fourth)
}

// Dropped snapshots recycle their unshared segments through the pool.
func TestSparseStoreRecyclesSegments(t *testing.T) {
	st := NewSparseStore()
	k := 8
	var snaps []SparseSnap
	h := NewVector(k)
	for i := 0; i < 6; i++ {
		for j := range h {
			h[j] = Time(10*i + j + 1) // every block changes every time
		}
		snaps = append(snaps, st.Snapshot(0, h, uint64(i+1), k))
	}
	if st.FreeCount() != 0 {
		t.Fatalf("pool non-empty before drops: %d", st.FreeCount())
	}
	for i := range snaps[:5] {
		st.Drop(&snaps[i])
	}
	if st.FreeCount() == 0 {
		t.Fatal("dropping unshared snapshots recycled nothing")
	}
	if st.Heap() == 0 {
		t.Fatal("store Heap reports 0 with parked segments")
	}
	free := st.FreeCount()
	h = NewVector(k)
	h[3] = 999
	snaps = append(snaps, st.Snapshot(1, h, 1, k))
	if st.FreeCount() >= free {
		t.Fatalf("fresh snapshot did not draw from the pool: %d -> %d", free, st.FreeCount())
	}
}

// The flat store's regrow fix (the free-list accounting bug): a parked
// buffer whose capacity went stale after mid-stream thread growth must
// be re-grown and reused, not discarded.
func TestFlatStoreSnapshotRegrowsStaleBuffers(t *testing.T) {
	st := NewFlatStore()
	small := Vector{1, 2, 3, 4}
	st.Drop(&small)
	if st.FreeCount() != 1 {
		t.Fatalf("FreeCount = %d after one Drop", st.FreeCount())
	}
	view := Vector{9, 8} // thread space grew past the parked capacity
	v := st.Snapshot(0, view, 1, 16)
	if st.FreeCount() != 0 {
		t.Fatalf("stale buffer was not consumed: FreeCount = %d", st.FreeCount())
	}
	if len(v) != 16 {
		t.Fatalf("regrown snapshot has length %d, want 16", len(v))
	}
	for i, x := range v {
		want := Time(0)
		if i < len(view) {
			want = view[i]
		}
		if x != want {
			t.Fatalf("regrown snapshot wrong at %d: got %d, want %d", i, x, want)
		}
	}
	// Once regrown, the buffer recycles at full size: no allocation and
	// no capacity loss on the next cycle.
	st.Drop(&v)
	u := st.Snapshot(0, view, 2, 16)
	if cap(u) < 16 || st.FreeCount() != 0 {
		t.Fatalf("buffer did not recycle at full size (cap %d, free %d)", cap(u), st.FreeCount())
	}
}

// FuzzSparseOps interprets the fuzz input as a program over a (Sparse,
// Vector) pair — the fuzz companion to TestSparseMatchesFlatModel,
// letting the engine find op interleavings the random walks miss
// (segment-boundary growth mid-join, copy-after-share chains, …).
func FuzzSparseOps(f *testing.F) {
	f.Add([]byte{0x00, 0x13, 0x27, 0x33, 0x41, 0x52})
	f.Add([]byte{0x3f, 0x3f, 0x4f, 0x0f, 0x1f, 0x2f, 0x5f})
	f.Fuzz(func(t *testing.T, prog []byte) {
		const k = 24 // 3 segments
		c, model := NewSparse(0), NewVector(k)
		other, otherModel := NewSparse(0), NewVector(k)
		for pc := 0; pc < len(prog); pc++ {
			b := prog[pc]
			op, arg := b>>4, int(b&0x0f)
			tid := TID(arg * k / 16)
			switch op & 0x7 {
			case 0:
				c.SetMax(tid, Time(arg))
				if model[tid] < Time(arg) {
					model[tid] = Time(arg)
				}
			case 1:
				c.Inc(tid, Time(1+arg))
				model[tid] += Time(1 + arg)
			case 2:
				other.SetMax(tid, Time(arg*3))
				if otherModel[tid] < Time(arg*3) {
					otherModel[tid] = Time(arg * 3)
				}
			case 3:
				c.Join(other)
				model.Join(otherModel)
			case 4:
				other.Join(c)
				otherModel.Join(model)
			case 5:
				c.CopyFrom(other)
				copy(model, otherModel)
			case 6:
				if c.LessEq(other) != model.LessEq(otherModel) {
					t.Fatalf("LessEq diverged at pc %d", pc)
				}
			case 7:
				if got, want := c.Get(tid), model[tid]; got != want {
					t.Fatalf("Get(%d) = %d, model %d at pc %d", tid, got, want, pc)
				}
			}
		}
		if got := flatOf(c, k); !got.Equal(model) {
			t.Fatalf("clock diverged from model:\n got %v\nwant %v", got, model)
		}
		if got := flatOf(other, k); !got.Equal(otherModel) {
			t.Fatalf("other clock diverged from model:\n got %v\nwant %v", got, otherModel)
		}
	})
}
