package vt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorGetOutOfRange(t *testing.T) {
	v := NewVector(3)
	v[1] = 7
	if got := v.Get(1); got != 7 {
		t.Errorf("Get(1) = %d, want 7", got)
	}
	if got := v.Get(5); got != 0 {
		t.Errorf("Get(5) = %d, want 0", got)
	}
	if got := v.Get(-1); got != 0 {
		t.Errorf("Get(-1) = %d, want 0", got)
	}
}

func TestVectorJoin(t *testing.T) {
	v := Vector{1, 5, 3}
	u := Vector{2, 4, 3}
	changed := v.Join(u)
	if changed != 1 {
		t.Errorf("Join changed %d entries, want 1", changed)
	}
	want := Vector{2, 5, 3}
	if !v.Equal(want) {
		t.Errorf("Join result %v, want %v", v, want)
	}
}

func TestVectorJoinIdempotent(t *testing.T) {
	v := Vector{3, 1, 4}
	u := v.Clone()
	if changed := v.Join(u); changed != 0 {
		t.Errorf("self-join changed %d entries, want 0", changed)
	}
}

func TestVectorLessEq(t *testing.T) {
	cases := []struct {
		a, b Vector
		want bool
	}{
		{Vector{1, 2}, Vector{1, 2}, true},
		{Vector{1, 2}, Vector{2, 2}, true},
		{Vector{2, 2}, Vector{1, 2}, false},
		{Vector{0, 0}, Vector{5, 5}, true},
		{Vector{1, 0}, Vector{0, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.LessEq(c.b); got != c.want {
			t.Errorf("%v ⊑ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestVectorConcurrent(t *testing.T) {
	a := Vector{1, 0}
	b := Vector{0, 1}
	if !a.Concurrent(b) {
		t.Errorf("%v and %v should be concurrent", a, b)
	}
	c := Vector{2, 1}
	if a.Concurrent(c) {
		t.Errorf("%v and %v should be ordered", a, c)
	}
}

func TestVectorEqualLengthMismatch(t *testing.T) {
	if (Vector{1}).Equal(Vector{1, 0}) {
		t.Error("vectors of different lengths must not compare equal")
	}
}

func TestVectorString(t *testing.T) {
	if got := (Vector{1, 2, 3}).String(); got != "[1, 2, 3]" {
		t.Errorf("String() = %q", got)
	}
	if got := (Vector{}).String(); got != "[]" {
		t.Errorf("String() = %q", got)
	}
}

func TestEpochZero(t *testing.T) {
	if !(Epoch{}).Zero() {
		t.Error("zero epoch must report Zero")
	}
	if (Epoch{T: 1, Clk: 3}).Zero() {
		t.Error("nonzero epoch must not report Zero")
	}
}

// randVec produces a random vector of length k with entries in [0, 20).
func randVec(r *rand.Rand, k int) Vector {
	v := NewVector(k)
	for i := range v {
		v[i] = Time(r.Intn(20))
	}
	return v
}

// Property: join is the least upper bound — the result dominates both
// operands, and any vector dominating both dominates the result.
func TestVectorJoinIsLUB(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		k := 1 + rr.Intn(8)
		a, b := randVec(rr, k), randVec(rr, k)
		j := a.Clone()
		j.Join(b)
		if !a.LessEq(j) || !b.LessEq(j) {
			return false
		}
		// Any upper bound dominates the join.
		ub := a.Clone()
		ub.Join(b)
		for i := range ub {
			ub[i] += Time(rr.Intn(3))
		}
		return j.LessEq(ub)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: join is commutative and associative.
func TestVectorJoinAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		k := 1 + rr.Intn(8)
		a, b, c := randVec(rr, k), randVec(rr, k), randVec(rr, k)
		ab := a.Clone()
		ab.Join(b)
		ba := b.Clone()
		ba.Join(a)
		if !ab.Equal(ba) {
			return false
		}
		abc1 := ab.Clone()
		abc1.Join(c)
		bc := b.Clone()
		bc.Join(c)
		abc2 := a.Clone()
		abc2.Join(bc)
		return abc1.Equal(abc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWorkStatsAddReset(t *testing.T) {
	var s, o WorkStats
	o = WorkStats{Entries: 3, Changed: 2, Joins: 1, Copies: 4, DeepCopies: 5, ForcedRootAttach: 6}
	s.Add(o)
	s.Add(o)
	if s.Entries != 6 || s.Changed != 4 || s.Joins != 2 || s.Copies != 8 || s.DeepCopies != 10 || s.ForcedRootAttach != 12 {
		t.Errorf("Add accumulated wrong totals: %+v", s)
	}
	s.Reset()
	if s != (WorkStats{}) {
		t.Errorf("Reset left %+v", s)
	}
	if (&WorkStats{Entries: 1}).String() == "" {
		t.Error("String must not be empty")
	}
}
