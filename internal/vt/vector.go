package vt

import (
	"fmt"
	"strings"
)

// Vector is a plain vector timestamp: an array of local times indexed by
// thread identifier. Vector is the mathematical object (the paper's
// "vector time"); VectorClock and TreeClock are data structures that
// represent one.
type Vector []Time

// NewVector returns a zero vector time over k threads.
func NewVector(k int) Vector { return make(Vector, k) }

// GrowSlice extends s to length at least n with zero values, using
// amortized doubling. It is the one growth policy shared by every
// dynamically sized structure in this repository (clock arrays,
// detector state, per-variable engine state). s must only ever have
// been grown through this function (never truncated or written past
// its length), so the capacity tail is known to be zero.
func GrowSlice[T any](s []T, n int) []T {
	if n <= len(s) {
		return s
	}
	if n <= cap(s) {
		return s[:n]
	}
	ncap := 2 * cap(s)
	if ncap < n {
		ncap = n
	}
	ns := make([]T, n, ncap)
	copy(ns, s)
	return ns
}

// Get returns the local time recorded for thread t, and 0 when t lies
// outside the vector (unknown threads have time 0).
func (v Vector) Get(t TID) Time {
	if int(t) < 0 || int(t) >= len(v) {
		return 0
	}
	return v[t]
}

// Set records local time c for thread t. It panics when t is out of
// range, like a slice store.
func (v Vector) Set(t TID, c Time) { v[t] = c }

// Join updates v to the pointwise maximum of v and u (v ← v ⊔ u) and
// returns the number of entries that changed.
func (v Vector) Join(u Vector) int {
	changed := 0
	for i, c := range u {
		if c > v[i] {
			v[i] = c
			changed++
		}
	}
	return changed
}

// LessEq reports v ⊑ u (pointwise less-or-equal).
func (v Vector) LessEq(u Vector) bool {
	for i, c := range v {
		if c > u.Get(TID(i)) {
			return false
		}
	}
	return true
}

// Equal reports pointwise equality.
func (v Vector) Equal(u Vector) bool {
	if len(v) != len(u) {
		return false
	}
	for i := range v {
		if v[i] != u[i] {
			return false
		}
	}
	return true
}

// Concurrent reports that neither v ⊑ u nor u ⊑ v holds.
func (v Vector) Concurrent(u Vector) bool { return !v.LessEq(u) && !u.LessEq(v) }

// CopyFrom overwrites v with u. The two vectors must have equal length.
func (v Vector) CopyFrom(u Vector) { copy(v, u) }

// Clone returns a fresh copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// String renders the vector in the paper's [t0, t1, ...] notation.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, c := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", c)
	}
	b.WriteByte(']')
	return b.String()
}
