package vt

import "fmt"

// WorkStats accumulates data-structure effort across all clocks of one
// engine run. Engines hand the same *WorkStats to every clock they
// create; a nil *WorkStats disables counting (timing runs).
//
// Interpretation (paper §4, §6 "Comparison with vt-work"):
//   - Changed counts vector-time entries whose stored value changed,
//     including the per-event increments. This is VTWork(σ): it is a
//     property of the trace, independent of the data structure, so a
//     tree-clock run and a vector-clock run of the same trace report
//     identical Changed totals (asserted by property tests).
//   - Entries counts data-structure entries accessed (comparisons plus
//     updates — the "light gray" areas of Figures 4/5). With vector
//     clocks every join/copy touches k entries, so Entries = VCWork;
//     with tree clocks Entries = TCWork and Theorem 1 bounds it by
//     3·VTWork.
type WorkStats struct {
	Entries uint64 // entries accessed (TCWork / VCWork)
	Changed uint64 // entries whose value changed (VTWork)

	Joins      uint64 // join operations performed
	Copies     uint64 // monotone copy operations performed
	DeepCopies uint64 // full O(k) copies (non-monotone fallback)

	// ForcedRootAttach counts the defensive re-attachment of an old
	// tree-clock root that the monotone-copy traversal did not visit.
	// Under the paper's protocols this never happens; the counter
	// exists so tests can assert that claim.
	ForcedRootAttach uint64
}

// Add accumulates o into s.
func (s *WorkStats) Add(o WorkStats) {
	s.Entries += o.Entries
	s.Changed += o.Changed
	s.Joins += o.Joins
	s.Copies += o.Copies
	s.DeepCopies += o.DeepCopies
	s.ForcedRootAttach += o.ForcedRootAttach
}

// Reset zeroes all counters.
func (s *WorkStats) Reset() { *s = WorkStats{} }

func (s *WorkStats) String() string {
	return fmt.Sprintf("entries=%d changed=%d joins=%d copies=%d deep=%d",
		s.Entries, s.Changed, s.Joins, s.Copies, s.DeepCopies)
}
