// Package vt defines the vector-time primitives shared by every clock
// implementation and partial-order engine in this repository: thread
// identifiers, logical times, plain vector timestamps, epochs, the Clock
// constraint satisfied by both tree clocks and vector clocks, and the
// work counters used to measure data-structure effort (VTWork, TCWork,
// VCWork in the paper's terminology).
package vt

// TID identifies a thread. Thread identifiers are dense: a trace with k
// threads uses identifiers 0..k-1.
type TID int32

// Time is a logical (local) time. The local time of an event e is the
// number of events performed by tid(e) up to and including e.
type Time int32

// None is the sentinel for "no thread".
const None TID = -1

// Epoch is a compact (thread, local time) pair identifying a single
// event, in the style of the FastTrack epoch optimization. The zero
// Epoch (Clk == 0) means "no event": local times start at 1.
type Epoch struct {
	T   TID
	Clk Time
}

// Zero reports whether the epoch denotes "no event".
func (e Epoch) Zero() bool { return e.Clk == 0 }
