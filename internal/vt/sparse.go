package vt

// The sparse weak-clock representation: a CSST-style segment list with
// copy-on-write sharing (Tunç et al., "Dynamic Race Detection with
// O(1) Samples" / the CSSTs line of work, arXiv 2403.17818 — sparse
// structures for partial orders tree clocks cannot represent).
//
// A clock or snapshot is a list of fixed-size segments of SegSize
// thread slots each. Segments are reference-counted and shared freely
// between clocks, snapshots and the per-thread "previous snapshot"
// cache: every operation that would leave a segment bit-identical
// shares it instead of copying, so the cost of Join, CopyFrom and the
// per-release snapshot is O(changed segments), not Θ(k). A shared
// segment (ref > 1) is immutable; mutation goes through a
// copy-on-write step that gives the writer a private copy. Refcounts
// are plain int32s — an engine run (and hence its store) is owned by
// one goroutine; the parallel runtime gives each worker its own
// replica, so no atomicity is needed.
//
// Segments live in a per-pool chunked arena and are addressed by
// integer index (segRef), not by pointer. The WCP history retains one
// snapshot per uncompacted release — easily tens of thousands of
// entries on rule-(b)-quiet workloads — and with pointer segments the
// garbage collector both scanned that whole history every cycle and
// charged a write barrier for every snapshot copied into it; together
// those were double-digit percentages of the release path. Indices
// make snapshots and clocks pointer-free, so the history is opaque to
// the collector. Arena chunks are fixed-size and never move, which
// also means resolved *Seg pointers stay valid across allocations.
//
// Snapshots (SparseSnap) additionally carry the releaser's own epoch
// (t, lt) out of band: the segment holding the releaser's own slot is
// allowed to go stale (it keeps whatever own-time an earlier release
// of the same thread wrote), because that is exactly what lets
// consecutive releases of a thread share segments — between two
// releases of t, typically only t's own entry moved. The invariant is
//
//	seg value == exact HB time for every slot u ≠ t,
//	seg value <= lt for the own slot t,
//
// so Absorb (join the segments, then raise entry t to lt) reconstructs
// the exact release vector. Only snapshot chains carry a stale slot,
// and only for their own thread; weak clocks are exact in every entry
// (Absorb repairs the own slot before the clock is observed).

const (
	// SegSize is the number of thread slots per segment. 8 slots is 32
	// bytes of payload — one cache line with the refcount — and makes
	// slot arithmetic shift/mask.
	SegSize  = 8
	segShift = 3
	segMask  = SegSize - 1
)

// segBytes approximates one segment's arena footprint (payload,
// refcount, rounding), for the retained-bytes accounting.
const segBytes = 40

// Seg is one reference-counted block of SegSize thread slots, living
// in its pool's arena.
type Seg struct {
	ref  int32
	vals [SegSize]Time
}

// segRef addresses a segment inside its pool's arena. 0 means "no
// segment" (the first arena slot is reserved and never allocated), so
// the zero value of every segRef-bearing structure is an empty clock
// or snapshot, exactly like the pointer representation's nil.
type segRef uint32

const (
	chunkShift = 10 // 1024 segments (~40KB) per arena chunk
	chunkLen   = 1 << chunkShift
	chunkMask  = chunkLen - 1
)

// SegPool recycles segments through a free list over a chunked arena.
// Chunks are carved on demand and never move or shrink: a released
// segment's slot is reused via the free list rather than returned to
// the allocator (the arena's high-water mark is the peak live segment
// count, which the WCP engine's compaction already bounds on the
// workloads where it can). The free list needs no cap — it indexes
// storage the arena owns either way.
type SegPool struct {
	chunks [][]Seg
	free   []segRef
	next   segRef // next never-carved slot; 0 is reserved for "absent"
}

// at resolves a live reference. The returned pointer stays valid
// across get calls (chunks never move).
func (p *SegPool) at(r segRef) *Seg {
	return &p.chunks[r>>chunkShift][r&chunkMask]
}

// get returns a segment with ref == 1 and unspecified slot contents —
// callers overwrite the payload (copy-on-write, snapshot block copy)
// or clear it themselves, so the hot paths never pay a redundant
// zeroing.
func (p *SegPool) get() segRef {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		p.at(r).ref = 1
		return r
	}
	if p.next == 0 {
		p.next = 1
	}
	if int(p.next)>>chunkShift >= len(p.chunks) {
		p.chunks = append(p.chunks, make([]Seg, chunkLen))
	}
	r := p.next
	p.next++
	p.at(r).ref = 1
	return r
}

// retain shares r (zero-safe) and returns it.
func (p *SegPool) retain(r segRef) segRef {
	if r != 0 {
		p.at(r).ref++
	}
	return r
}

// release drops one reference to r (zero-safe), parking the slot for
// reuse when the last reference goes.
func (p *SegPool) release(r segRef) {
	if r == 0 {
		return
	}
	s := p.at(r)
	s.ref--
	if s.ref == 0 {
		p.free = append(p.free, r)
	}
}

// Sparse is the segment-list weak clock. The zero value is an empty
// clock that binds itself to the pool of the first operand it shares
// with; NewW on a SparseStore binds clocks to the store's shared pool
// up front so segments circulate between clocks, snapshots and the
// free list of one engine run.
type Sparse struct {
	segs []segRef
	n    int // logical length (thread-space high-water mark)
	rev  uint64
	pool *SegPool
}

// Rev implements Clock, conservatively: every operation that can touch
// a foreign entry bumps the counter without change detection (spurious
// advances are allowed by the contract). Sparse serves as the weak
// transport, where snapshots are taken by the store, so nothing hot
// consumes this — it exists for interface conformance and the property
// tests that drive Sparse through the Clock interface.
func (c *Sparse) Rev() uint64 { return c.rev }

// NewSparse returns an empty sparse clock over (at least) k threads
// with its own private segment pool.
func NewSparse(k int) *Sparse {
	c := &Sparse{pool: &SegPool{}}
	c.grow(k)
	return c
}

// SparseFactory adapts NewSparse to the Clock factory shape (work
// counting is not wired; the sparse clock is measured end to end by
// the engine benchmarks instead).
func SparseFactory() Factory[*Sparse] { return NewSparse }

func (c *Sparse) pl() *SegPool {
	if c.pool == nil {
		c.pool = &SegPool{}
	}
	return c.pool
}

// adopt binds the clock to op when reference sharing is possible: the
// clock either has no pool yet or holds no segments (so nothing ties
// it to its current arena). Clocks of genuinely different pools fall
// back to value copies in the binary operations — indices are only
// meaningful within one arena.
func (c *Sparse) adopt(op *SegPool) {
	if op == nil || c.pool == op {
		return
	}
	if c.pool != nil {
		for _, r := range c.segs {
			if r != 0 {
				return
			}
		}
	}
	c.pool = op
}

// grow extends the logical length (and the segment directory) to cover
// k threads. Invariant: len(c.segs) == ceil(c.n / SegSize).
func (c *Sparse) grow(k int) {
	if k <= c.n {
		return
	}
	c.n = k
	nb := (k + segMask) >> segShift
	if nb > len(c.segs) {
		c.segs = GrowSlice(c.segs, nb)
	}
}

// Get implements WeakClock (and Clock): O(1), zero beyond the length.
func (c *Sparse) Get(t TID) Time {
	i := int(t) >> segShift
	if int(t) < 0 || i >= len(c.segs) || c.segs[i] == 0 {
		return 0
	}
	return c.pool.at(c.segs[i]).vals[int(t)&segMask]
}

// Len implements WeakClock.
func (c *Sparse) Len() int { return c.n }

// writable returns block i's segment with ref == 1, materializing or
// copy-on-writing as needed. Block i must be within the directory.
func (c *Sparse) writable(i int) *Seg {
	p := c.pl()
	r := c.segs[i]
	if r == 0 {
		r = p.get()
		c.segs[i] = r
		s := p.at(r)
		s.vals = [SegSize]Time{}
		return s
	}
	s := p.at(r)
	if s.ref > 1 {
		nr := p.get()
		ns := p.at(nr)
		ns.vals = s.vals
		s.ref--
		c.segs[i] = nr
		return ns
	}
	return s
}

// SetMax raises thread t's entry to at least v.
func (c *Sparse) SetMax(t TID, v Time) {
	c.rev++
	c.grow(int(t) + 1)
	i := int(t) >> segShift
	j := int(t) & segMask
	if r := c.segs[i]; r != 0 && c.pool.at(r).vals[j] >= v {
		return
	}
	c.writable(i).vals[j] = v
}

// joinSeg joins the operand segment or (resolved through op) into
// block i of the clock. Shared references and dominated blocks
// short-circuit: if the receiver's block is already pointwise ≥ the
// operand the join is a no-op, and if it is pointwise ≤ a same-pool
// operand the receiver adopts the segment (a reference share) instead
// of copying — the common case when one clock trails another, which is
// what makes transport O(changed segments). A foreign-pool operand
// joins by value.
func (c *Sparse) joinSeg(i int, or segRef, op *SegPool) {
	if or == 0 {
		return
	}
	mine := c.segs[i]
	p := c.pl()
	same := p == op
	if same && mine == or {
		return
	}
	ov := &op.at(or).vals
	if mine == 0 {
		if same {
			c.segs[i] = p.retain(or)
		} else {
			nr := p.get()
			p.at(nr).vals = *ov
			c.segs[i] = nr
		}
		return
	}
	ms := p.at(mine)
	leq, geq := true, true
	for j := 0; j < SegSize; j++ {
		if ms.vals[j] > ov[j] {
			leq = false
		} else if ov[j] > ms.vals[j] {
			geq = false
		}
	}
	if geq {
		return
	}
	if leq && same {
		p.release(mine)
		c.segs[i] = p.retain(or)
		return
	}
	w := c.writable(i)
	for j := 0; j < SegSize; j++ {
		if ov[j] > w.vals[j] {
			w.vals[j] = ov[j]
		}
	}
}

// Join implements WeakClock (and Clock).
func (c *Sparse) Join(o *Sparse) {
	c.rev++
	c.adopt(o.pool)
	c.grow(o.n)
	for i := range o.segs {
		c.joinSeg(i, o.segs[i], o.pool)
	}
}

// CopyFrom implements WeakClock: the clock becomes an exact copy of o
// (entries beyond o's length read zero), sharing every segment when
// the pools match.
func (c *Sparse) CopyFrom(o *Sparse) {
	c.rev++
	c.adopt(o.pool)
	c.grow(o.n)
	p := c.pl()
	same := p == o.pool
	for i := range c.segs {
		var or segRef
		if i < len(o.segs) {
			or = o.segs[i]
		}
		if same {
			if c.segs[i] == or {
				continue
			}
			p.release(c.segs[i])
			c.segs[i] = p.retain(or)
			continue
		}
		if or == 0 {
			p.release(c.segs[i])
			c.segs[i] = 0
			continue
		}
		c.writable(i).vals = o.pool.at(or).vals
	}
}

// Absorb implements WeakClock: join the snapshot's segments, then
// repair the releaser's possibly stale own slot from the out-of-band
// epoch (see the package comment's invariant). The snapshot must come
// from the store whose pool the clock is bound to (NewW), which is how
// the engine wires them.
func (c *Sparse) Absorb(s *SparseSnap) {
	c.rev++
	c.grow(int(s.n))
	p := c.pl()
	nb := (int(s.n) + segMask) >> segShift
	for i := 0; i < nb; i++ {
		c.joinSeg(i, s.seg(i), p)
	}
	c.SetMax(s.t, s.lt)
}

// Vector implements WeakClock (and Clock): materialize into dst.
func (c *Sparse) Vector(dst Vector) Vector {
	if len(dst) < c.n {
		dst = GrowSlice(dst, c.n)
	}
	for i := range c.segs {
		base := i << segShift
		end := base + SegSize
		if end > c.n {
			end = c.n
		}
		if r := c.segs[i]; r != 0 {
			copy(dst[base:end], c.pool.at(r).vals[:end-base])
		} else {
			for j := base; j < end; j++ {
				dst[j] = 0
			}
		}
	}
	return dst
}

// VectorView implements Clock. The sparse clock keeps no flat mirror,
// so the view is a fresh Θ(k) materialization — acceptable because
// engines use Sparse as the weak transport (where snapshots are taken
// by the store, not through this method), never as the strong backbone
// on a hot path.
func (c *Sparse) VectorView() []Time {
	return c.Vector(NewVector(c.n))
}

// Heap implements WeakClock: segment storage is attributed
// fractionally across its ref holders so per-object sums approximate
// the total.
func (c *Sparse) Heap() uint64 {
	b := uint64(cap(c.segs)) * 4
	for _, r := range c.segs {
		if r != 0 {
			b += segBytes / uint64(c.pool.at(r).ref)
		}
	}
	return b
}

// LessEq reports c ⊑ o pointwise (for tests and CopyCheckMonotone).
func (c *Sparse) LessEq(o *Sparse) bool {
	same := c.pool != nil && c.pool == o.pool
	for i := range c.segs {
		r := c.segs[i]
		if r == 0 {
			continue
		}
		var or segRef
		if i < len(o.segs) {
			or = o.segs[i]
		}
		if same && r == or {
			continue
		}
		s := c.pool.at(r)
		var ov *[SegSize]Time
		if or != 0 {
			ov = &o.pool.at(or).vals
		}
		for j := 0; j < SegSize; j++ {
			v := Time(0)
			if ov != nil {
				v = ov[j]
			}
			if s.vals[j] > v {
				return false
			}
		}
	}
	return true
}

// The remaining methods complete the vt.Clock contract, so a Sparse
// can stand wherever a clock data structure is expected (the property
// tests exercise it through both interfaces).

// Init implements Clock: the clock belongs to t with local time 0.
func (c *Sparse) Init(t TID) { c.grow(int(t) + 1) }

// Inc implements Clock.
func (c *Sparse) Inc(t TID, d Time) {
	c.grow(int(t) + 1)
	w := c.writable(int(t) >> segShift)
	w.vals[int(t)&segMask] += d
}

// Grow implements Clock.
func (c *Sparse) Grow(k int) { c.grow(k) }

// ReleaseSlot implements Clock: erase thread t's component, releasing
// the whole segment back to the pool when it becomes all-zero.
func (c *Sparse) ReleaseSlot(t TID) {
	i := int(t) >> segShift
	if int(t) < 0 || i >= len(c.segs) || c.segs[i] == 0 {
		return
	}
	p := c.pl()
	if p.at(c.segs[i]).vals[int(t)&segMask] == 0 {
		return
	}
	w := c.writable(i)
	w.vals[int(t)&segMask] = 0
	if w.vals == ([SegSize]Time{}) {
		p.release(c.segs[i])
		c.segs[i] = 0
	}
	c.rev++
}

// MonotoneCopy implements Clock: with c ⊑ o, overwrite equals copy.
func (c *Sparse) MonotoneCopy(o *Sparse) { c.CopyFrom(o) }

// CopyCheckMonotone implements Clock.
func (c *Sparse) CopyCheckMonotone(o *Sparse) bool {
	mono := c.LessEq(o)
	c.CopyFrom(o)
	return mono
}

// snapInline is the number of segment references a SparseSnap holds
// inline: 4 segments cover 32 threads, so snapshots on the common
// thread counts need no side allocation at all and live by value
// inside history entries and summaries.
const snapInline = 4

// SparseSnap is one release snapshot in the sparse representation: the
// releaser's epoch (t, lt) plus the segment list of its HB vector
// time, with the own slot allowed to be stale (see the package
// comment). SparseSnap is a value type; its segment list is immutable
// after Snapshot builds it, so copies may freely share the `more`
// backing array — ownership is tracked per segment via refcounts, and
// every copy must go through the store's Assign/Drop.
type SparseSnap struct {
	t      TID
	lt     Time
	n      int32
	inline [snapInline]segRef
	more   []segRef
}

// IsZero reports whether the snapshot is the zero value — dropped or
// never assigned. A zero snapshot holds no segment references, so it
// is always safe to overwrite without a Drop.
func (s *SparseSnap) IsZero() bool {
	if s.t != 0 || s.lt != 0 || s.n != 0 || s.more != nil {
		return false
	}
	return s.inline == [snapInline]segRef{}
}

// seg returns block i's segment reference (0 for an absent block).
func (s *SparseSnap) seg(i int) segRef {
	if i < snapInline {
		return s.inline[i]
	}
	return s.more[i-snapInline]
}

// setSeg installs block i's segment reference (Snapshot only;
// snapshots are immutable afterwards).
func (s *SparseSnap) setSeg(i int, r segRef) {
	if i < snapInline {
		s.inline[i] = r
	} else {
		s.more[i-snapInline] = r
	}
}

// SparseStore is the sparse representation's snapshot store: a shared
// segment pool and the per-thread previous snapshot that release diffs
// share against.
type SparseStore struct {
	pool SegPool
	prev []SparseSnap
	// prevRev[t] is the Clock.Rev value of thread t's clock when its
	// previous snapshot was taken through the slow path. An unchanged
	// rev guarantees every foreign entry is unchanged (the Rev
	// contract), and the own slot is allowed to be stale in segment
	// storage, so the previous snapshot's segments are correct as-is:
	// Snapshot re-issues them in O(1) without reading the view.
	prevRev []uint64
}

// NewSparseStore returns an empty sparse snapshot store.
func NewSparseStore() *SparseStore { return &SparseStore{} }

// NewW implements SnapStore: a zero clock on the store's shared pool.
func (st *SparseStore) NewW() *Sparse { return &Sparse{pool: &st.pool} }

// segEqMasked compares sg against block `base` of view, with entries
// at or past len(view) reading zero and the absolute index skip (the
// releaser's own slot) ignored when it falls inside the block.
func segEqMasked(sg *[SegSize]Time, view []Time, base, skip int) bool {
	for j := 0; j < SegSize; j++ {
		u := base + j
		if u == skip {
			continue
		}
		var v Time
		if u < len(view) {
			v = view[u]
		}
		if sg[j] != v {
			return false
		}
	}
	return true
}

// segEqSkip is segEqMasked for a block entirely inside the view: with
// the virtual-zero tail impossible, the per-word length check drops
// out, leaving a straight compare with one slot (the releaser's own)
// ignored. block must have SegSize entries.
func segEqSkip(sg *[SegSize]Time, block []Time, skip int) bool {
	v := (*[SegSize]Time)(block)
	for j := range sg {
		if j != skip && sg[j] != v[j] {
			return false
		}
	}
	return true
}

// Snapshot implements SnapStore: diff the borrowed view block-wise
// against thread t's previous snapshot, sharing every segment whose
// entries — the own slot excepted — are unchanged, and copying only
// the changed blocks into pool segments. In the steady state of a
// thread releasing repeatedly, only the blocks where a foreign entry
// actually advanced since the previous release cost a segment.
//
// The view is read-only and never retained: interior blocks compare as
// whole arrays; the block holding the own slot and the boundary block
// go through a masked element-wise compare instead, so the view needs
// neither padding nor patching. A shared own-slot block keeps whatever
// stale own time it had — the exact epoch travels out of band in lt
// (the package comment's invariant) — and a copied one takes the exact
// view value, which the invariant equally allows.
func (st *SparseStore) Snapshot(t TID, view Vector, rev uint64, k int) SparseSnap {
	if len(view) > k {
		view = view[:k]
	}
	nb := (k + segMask) >> segShift
	if int(t) >= len(st.prev) {
		st.prev = GrowSlice(st.prev, int(t)+1)
		st.prevRev = GrowSlice(st.prevRev, int(t)+1)
	}
	pv := &st.prev[t]
	if rev == st.prevRev[t] && int(pv.n) == k {
		// Quiet release: no foreign entry of t's clock changed since
		// its previous snapshot over the same thread space, so every
		// block shares by construction — re-issue the previous
		// snapshot's segments without touching the view. Only the own
		// epoch can have moved, and it travels out of band in lt. The
		// first snapshot for t can't land here (pv.n == 0 < k), and
		// `more` aliasing is safe: snapshots are immutable, and the
		// slow path replaces pv.more rather than mutating it.
		lt := view.Get(t)
		snap := SparseSnap{t: t, lt: lt, n: pv.n, inline: pv.inline, more: pv.more}
		pv.lt = lt
		st.retainSnap(pv)
		return snap
	}
	st.prevRev[t] = rev
	pnb := (int(pv.n) + segMask) >> segShift

	snap := SparseSnap{t: t, lt: view.Get(t), n: int32(k)}
	if nb > snapInline {
		snap.more = make([]segRef, nb-snapInline)
	}
	p := &st.pool
	ob := int(t) >> segShift
	full := len(view) >> segShift // blocks entirely inside the view
	// Each new segment's reference count starts at 2 — one for the
	// returned snapshot, one for the thread's diff base — and a shared
	// block nets +1 after the old base's reference is folded in, so
	// the old base needs no separate drop pass.
	miss := false
	for i := 0; i < nb; i++ {
		base := i << segShift
		var pr segRef
		if i < pnb {
			pr = pv.seg(i)
		}
		if pr != 0 {
			ps := p.at(pr)
			var eq bool
			switch {
			case i < full && i != ob:
				eq = ps.vals == [SegSize]Time(view[base:base+SegSize])
			case i < full:
				eq = segEqSkip(&ps.vals, view[base:base+SegSize], int(t)&segMask)
			default:
				eq = segEqMasked(&ps.vals, view, base, int(t))
			}
			if eq {
				ps.ref++
				snap.setSeg(i, pr)
				continue
			}
		}
		miss = true
		sr := p.get()
		sg := p.at(sr)
		sg.ref = 2
		if i < full {
			sg.vals = [SegSize]Time(view[base : base+SegSize])
		} else {
			n := 0
			if base < len(view) {
				n = copy(sg.vals[:], view[base:])
			}
			for j := n; j < SegSize; j++ {
				sg.vals[j] = 0
			}
		}
		p.release(pr)
		snap.setSeg(i, sr)
	}
	for i := nb; i < pnb; i++ { // shrunk thread space (defensive)
		p.release(pv.seg(i))
	}
	// Field-wise update: assigning the whole struct would store the
	// `more` slice unconditionally, and that pointer store costs a
	// write barrier on every release even though more is nil for every
	// thread count the inline segments cover. When every block was
	// shared the references themselves are unchanged too — the common
	// steady state — and only the scalar fields need storing.
	pv.t, pv.lt, pv.n = snap.t, snap.lt, snap.n
	if miss || pnb != nb {
		pv.inline = snap.inline
		if pv.more != nil || snap.more != nil {
			pv.more = snap.more
		}
	}
	return snap
}

// retainSnap takes one extra reference on every segment of s.
func (st *SparseStore) retainSnap(s *SparseSnap) {
	nb := (int(s.n) + segMask) >> segShift
	for i := 0; i < nb; i++ {
		st.pool.retain(s.seg(i))
	}
}

// SnapGet implements SnapStore: the own slot reads from the
// out-of-band epoch (the segment's copy may be stale).
func (st *SparseStore) SnapGet(s *SparseSnap, u TID) Time {
	if u == s.t {
		return s.lt
	}
	if int(u) < 0 || int(u) >= int(s.n) {
		return 0
	}
	r := s.seg(int(u) >> segShift)
	if r == 0 {
		return 0
	}
	return st.pool.at(r).vals[int(u)&segMask]
}

// Assign implements SnapStore: dst becomes a reference-sharing copy of
// src. src's references are taken before dst's are dropped, so
// assigning over a snapshot that already shares segments with src is
// safe.
func (st *SparseStore) Assign(dst, src *SparseSnap) {
	st.retainSnap(src)
	st.Drop(dst)
	*dst = *src
}

// Drop implements SnapStore: release the snapshot's segment references
// and zero it. The `more` backing array is left untouched — other
// snapshot copies may share it (it is immutable), so it is simply
// unreferenced.
func (st *SparseStore) Drop(s *SparseSnap) {
	nb := (int(s.n) + segMask) >> segShift
	for i := 0; i < nb; i++ {
		st.pool.release(s.seg(i))
	}
	*s = SparseSnap{}
}

// FreeCount implements SnapStore.
func (st *SparseStore) FreeCount() int { return len(st.pool.free) }

// SnapHeap implements SnapStore: shared segments are attributed
// fractionally (deterministically, by integer division) so the sum
// over live snapshots approximates the total without depending on
// visitation order or the clock backbone.
func (st *SparseStore) SnapHeap(s *SparseSnap) uint64 {
	b := uint64(len(s.more)) * 4
	nb := (int(s.n) + segMask) >> segShift
	for i := 0; i < nb; i++ {
		if r := s.seg(i); r != 0 {
			b += segBytes / uint64(st.pool.at(r).ref)
		}
	}
	return b
}

// LiveHeap implements SnapStore: the arena knows exactly how many
// segments are live (carved minus parked), so the aggregate answer is
// O(1). The total includes the store's diff bases and the weak clocks
// bound to the pool — the same storage the per-snapshot fractional
// attribution of SnapHeap spreads across individual holders.
func (st *SparseStore) LiveHeap() uint64 {
	carved := uint64(0)
	if st.pool.next > 0 {
		carved = uint64(st.pool.next) - 1
	}
	return (carved - uint64(len(st.pool.free))) * segBytes
}

// Heap implements SnapStore.
func (st *SparseStore) Heap() uint64 {
	return uint64(len(st.pool.free)) * segBytes
}
