package vt

// Checkpoint serialization for the weak-clock transport.
//
// The sparse representation's whole point is copy-on-write sharing, so
// its checkpoint form must not flatten that sharing: a restored engine
// has to retain byte-identical memory accounting and evolve segment
// refcounts exactly as the uninterrupted run would. The trick is that
// segments are arena-indexed, so the object graph — every clock,
// snapshot and summary that shares a segment — serializes as raw
// segRef indices, and one dump of the arena (slot contents plus
// refcounts, SparseStore.SaveState) reconstructs all of the sharing at
// once. Nothing re-retains on load: the dumped refcounts already count
// every holder that will be loaded after the store.
//
// Capacities are serialized wherever the memory accounting reads cap
// (FlatWeak vectors, flat free-list buffers, sparse segment
// directories), so Heap/SnapHeap/LiveHeap answers are byte-identical
// after a restore and — growth being deterministic — stay identical
// for the rest of the run.

import "treeclock/internal/ckpt"

// MaxID bounds identifiers decoded from checkpoints (threads, locks,
// variables): far above any live identifier space, while keeping a
// CRC-valid but inconsistent value from indexing clock state out of
// bounds downstream.
const MaxID = 1 << 26

// SaveEpoch serializes an epoch (thread id plus local time).
func SaveEpoch(e *ckpt.Enc, ep Epoch) {
	e.Int32(int32(ep.T))
	e.Svarint(int64(ep.Clk))
}

// LoadEpoch decodes an epoch, rejecting thread ids outside [0, MaxID):
// epochs feed Clock.Get, where a negative id would index out of
// bounds. The zero epoch round-trips as (0, 0).
func LoadEpoch(d *ckpt.Dec) Epoch {
	t := d.Int32()
	clk := Time(d.Svarint())
	if d.Err() != nil {
		return Epoch{}
	}
	if t < 0 || t >= MaxID {
		d.Corruptf("epoch thread %d out of range", t)
		return Epoch{}
	}
	return Epoch{T: TID(t), Clk: clk}
}

// LoadTID decodes a thread id, rejecting values outside [0, MaxID).
func LoadTID(d *ckpt.Dec) TID {
	t := d.Int32()
	if d.Err() != nil {
		return 0
	}
	if t < 0 || t >= MaxID {
		d.Corruptf("thread id %d out of range", t)
		return 0
	}
	return TID(t)
}

// Save implements Clock for Sparse in materialized form: the sparse
// clock serves engines as the weak transport (whose state travels
// through the store, SaveWeak and SaveSnap below), never as the strong
// backbone, so its Clock-contract checkpoint does not need to preserve
// segment sharing.
func (c *Sparse) Save(e *ckpt.Enc) {
	// The count must be a plain uvarint: Load reads it with Len. (An
	// earlier version wrote it with Int — zigzag — which doubles every
	// nonnegative count on the wire; tcvet's ckptsym analyzer now
	// rejects that mismatch statically.)
	e.Uvarint(uint64(c.n))
	e.U64(c.rev)
	for t := 0; t < c.n; t++ {
		e.Svarint(int64(c.Get(TID(t))))
	}
}

// Load implements Clock for Sparse.
func (c *Sparse) Load(d *ckpt.Dec) {
	n := d.Len(1)
	rev := d.U64()
	if d.Err() != nil {
		return
	}
	p := c.pl()
	for _, r := range c.segs {
		p.release(r)
	}
	c.segs = make([]segRef, (n+segMask)>>segShift)
	c.n = n
	for t := 0; t < n; t++ {
		if v := Time(d.Int32()); v != 0 {
			c.writable(t >> segShift).vals[t&segMask] = v
		}
	}
	c.rev = rev
}

// SaveWeak implements WeakClock for FlatWeak: length, capacity (Heap
// reads cap) and entries.
func (w *FlatWeak) SaveWeak(e *ckpt.Enc) {
	e.Uvarint(uint64(len(w.v)))
	e.Uvarint(uint64(cap(w.v)))
	for _, t := range w.v {
		e.Svarint(int64(t))
	}
}

// LoadWeak implements WeakClock for FlatWeak.
func (w *FlatWeak) LoadWeak(d *ckpt.Dec) {
	n := d.Len(1)
	c := d.Cap(n)
	if d.Err() != nil {
		return
	}
	w.v = make(Vector, n, c)
	for i := range w.v {
		w.v[i] = Time(d.Int32())
	}
}

// SaveWeak implements WeakClock for Sparse: the segment directory is
// saved as raw arena indices (the matching store's SaveState dumps the
// arena itself), preserving every share. cap(segs) is saved because
// Heap reads it.
func (c *Sparse) SaveWeak(e *ckpt.Enc) {
	e.Int(c.n)
	e.U64(c.rev)
	e.Uvarint(uint64(len(c.segs)))
	e.Uvarint(uint64(cap(c.segs)))
	for _, r := range c.segs {
		e.Uvarint(uint64(r))
	}
}

// LoadWeak implements WeakClock for Sparse. The clock must be bound to
// an already-loaded pool (SnapStore.NewW after LoadState), which is
// what makes reference validation possible.
func (c *Sparse) LoadWeak(d *ckpt.Dec) {
	n := d.Int()
	rev := d.U64()
	nb := d.Len(1)
	cb := d.Cap(nb)
	if d.Err() != nil {
		return
	}
	if n < 0 || nb != (n+segMask)>>segShift {
		d.Corruptf("sparse clock directory length %d does not cover %d threads", nb, n)
		return
	}
	p := c.pl()
	for _, r := range c.segs {
		p.release(r)
	}
	segs := make([]segRef, nb, cb)
	for i := range segs {
		segs[i] = p.loadRef(d)
	}
	if d.Err() != nil {
		return
	}
	c.segs, c.n, c.rev = segs, n, rev
}

// loadRef decodes one arena reference, rejecting indices outside the
// carved arena.
func (p *SegPool) loadRef(d *ckpt.Dec) segRef {
	r := d.Uvarint()
	if d.Err() != nil {
		return 0
	}
	if r >= uint64(p.next) && r != 0 {
		d.Corruptf("segment reference %d outside arena (next %d)", r, p.next)
		return 0
	}
	return segRef(r)
}

// SaveState implements SnapStore for FlatStore: the live-bytes counter
// and the free list's buffer capacities (contents are dead — Snapshot
// overwrites a popped buffer — but Heap reads every cap).
func (f *FlatStore) SaveState(e *ckpt.Enc) {
	e.U64(f.live)
	e.Uvarint(uint64(len(f.free)))
	for _, v := range f.free {
		e.Uvarint(uint64(cap(v)))
	}
}

// LoadState implements SnapStore for FlatStore.
func (f *FlatStore) LoadState(d *ckpt.Dec) {
	live := d.U64()
	n := d.Len(1)
	if d.Err() != nil {
		return
	}
	if n > maxFreeSnapshots {
		d.Corruptf("flat free list length %d exceeds cap %d", n, maxFreeSnapshots)
		return
	}
	f.live = live
	f.free = make([]Vector, n)
	for i := range f.free {
		c := d.Cap(0)
		if d.Err() != nil {
			return
		}
		f.free[i] = make(Vector, c)
	}
}

// SaveSnap implements SnapStore for FlatStore: a flat snapshot is a
// plain vector; cap is saved because Heap-style accounting and buffer
// recycling read it.
func (f *FlatStore) SaveSnap(e *ckpt.Enc, s *Vector) {
	e.Uvarint(uint64(len(*s)))
	e.Uvarint(uint64(cap(*s)))
	for _, t := range *s {
		e.Svarint(int64(t))
	}
}

// LoadSnap implements SnapStore for FlatStore. The live-bytes counter
// is not touched: it was saved wholesale by SaveState, which already
// counted every snapshot being reloaded.
func (f *FlatStore) LoadSnap(d *ckpt.Dec, s *Vector) {
	n := d.Len(1)
	c := d.Cap(n)
	if d.Err() != nil {
		return
	}
	v := make(Vector, n, c)
	for i := range v {
		v[i] = Time(d.Int32())
	}
	*s = v
}

// SaveState implements SnapStore for SparseStore: one dump of the
// arena — the carve high-water mark, the free list, and every carved
// slot's refcount and (for live slots) payload — followed by the
// per-thread previous-snapshot diff bases and their revision cache.
// Restoring the arena verbatim reconstructs every copy-on-write share
// at once; holders loaded afterwards (weak clocks, history entries,
// summaries, the diff bases here) store raw indices and never
// re-retain, because the dumped refcounts already include them.
func (st *SparseStore) SaveState(e *ckpt.Enc) {
	p := &st.pool
	e.Uvarint(uint64(p.next))
	e.Uvarint(uint64(len(p.free)))
	for _, r := range p.free {
		e.Uvarint(uint64(r))
	}
	for r := segRef(1); r < p.next; r++ {
		s := p.at(r)
		e.Int32(s.ref)
		if s.ref > 0 {
			for _, v := range s.vals {
				e.Svarint(int64(v))
			}
		}
	}
	e.Uvarint(uint64(len(st.prev)))
	for i := range st.prev {
		st.SaveSnap(e, &st.prev[i])
	}
	for _, r := range st.prevRev {
		e.U64(r)
	}
}

// LoadState implements SnapStore for SparseStore.
func (st *SparseStore) LoadState(d *ckpt.Dec) {
	next := d.Uvarint()
	if d.Err() != nil {
		return
	}
	if next == 1 || next > maxSegRefs {
		d.Corruptf("arena high-water mark %d out of range", next)
		return
	}
	p := &st.pool
	*p = SegPool{next: segRef(next)}
	if next > 1 {
		p.chunks = make([][]Seg, ((int(next)-1)>>chunkShift)+1)
		for i := range p.chunks {
			p.chunks[i] = make([]Seg, chunkLen)
		}
	}
	nfree := d.Len(1)
	if d.Err() != nil {
		return
	}
	p.free = make([]segRef, nfree)
	for i := range p.free {
		r := p.loadRef(d)
		if d.Err() != nil {
			return
		}
		if r == 0 {
			d.Corruptf("free list holds the reserved slot")
			return
		}
		p.free[i] = r
	}
	for r := segRef(1); r < p.next; r++ {
		s := p.at(r)
		s.ref = d.Int32()
		if d.Err() != nil {
			return
		}
		if s.ref < 0 {
			d.Corruptf("segment %d has negative refcount %d", r, s.ref)
			return
		}
		if s.ref > 0 {
			for j := range s.vals {
				s.vals[j] = Time(d.Int32())
			}
		}
	}
	n := d.Count()
	if d.Err() != nil {
		return
	}
	st.prev = make([]SparseSnap, n)
	for i := range st.prev {
		st.LoadSnap(d, &st.prev[i])
		if d.Err() != nil {
			return
		}
	}
	st.prevRev = make([]uint64, n)
	for i := range st.prevRev {
		st.prevRev[i] = d.U64()
	}
}

// maxSegRefs bounds the arena high-water mark a checkpoint may claim
// (the same sanity role as ckpt's slice bound: real arenas track live
// identifier spaces, and the bound keeps a corrupt value from forcing
// a giant allocation before validation catches up).
const maxSegRefs = 1 << 26

// SaveSnap implements SnapStore for SparseStore: the out-of-band epoch
// and the raw segment references (see SaveState for why no sharing
// metadata is needed).
func (st *SparseStore) SaveSnap(e *ckpt.Enc, s *SparseSnap) {
	e.Int32(int32(s.t))
	e.Int32(int32(s.lt))
	e.Int32(s.n)
	nb := (int(s.n) + segMask) >> segShift
	for i := 0; i < nb; i++ {
		e.Uvarint(uint64(s.seg(i)))
	}
}

// LoadSnap implements SnapStore for SparseStore.
func (st *SparseStore) LoadSnap(d *ckpt.Dec, s *SparseSnap) {
	t := TID(d.Int32())
	lt := Time(d.Int32())
	n := d.Int32()
	if d.Err() != nil {
		return
	}
	if n < 0 || n > maxSegRefs {
		d.Corruptf("snapshot thread space %d out of range", n)
		return
	}
	nb := (int(n) + segMask) >> segShift
	snap := SparseSnap{t: t, lt: lt, n: n}
	if nb > snapInline {
		snap.more = make([]segRef, nb-snapInline)
	}
	for i := 0; i < nb; i++ {
		snap.setSeg(i, st.pool.loadRef(d))
	}
	if d.Err() != nil {
		return
	}
	*s = snap
}
