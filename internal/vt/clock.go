package vt

import "treeclock/internal/ckpt"

// Clock is the interface shared by the tree clock and the vector clock.
// Partial-order engines are generic over Clock, so exactly the same
// algorithm code runs with either data structure; any performance
// difference is attributable to the data structure alone, which is the
// paper's experimental methodology.
//
// The type parameter C is the implementing type itself (F-bounded), so
// that Join/MonotoneCopy receive a concrete operand and implementations
// need no dynamic type assertions.
//
// Protocol contract (matching the paper's usage):
//   - Init is called exactly once, and only on clocks that represent a
//     thread; auxiliary clocks (locks, variables) stay uninitialized and
//     represent the zero vector time until first written.
//   - Inc(t, d) is called only with t equal to the owning thread.
//   - MonotoneCopy(o) requires the receiver's vector time to be ⊑ o's
//     (Lemma 2 guarantees this at lock-release events). When the
//     precondition may not hold, use CopyCheckMonotone.
//
// Capacity contract: a clock's thread capacity is a lower bound, not a
// fixed universe. Grow(k) extends the capacity; Get on a thread beyond
// the capacity reports 0 (an unknown thread has the zero local time),
// and the binary operations (Join, MonotoneCopy, CopyCheckMonotone)
// accept operands of any capacity, growing the receiver as needed.
// This is what lets the streaming engine runtime discover threads on
// the fly instead of requiring trace metadata up front.
type Clock[C any] interface {
	// Init makes the clock belong to thread t with local time 0,
	// growing the capacity to at least t+1.
	Init(t TID)
	// Get returns the recorded local time of thread t in O(1)
	// (Remark 1: epoch optimizations apply to both clock types).
	// Threads at or beyond the capacity report 0.
	Get(t TID) Time
	// Inc adds d to the owning thread t's local time.
	Inc(t TID, d Time)
	// Grow extends the thread capacity to at least k. Existing entries
	// are preserved; new threads start absent (zero local time).
	Grow(k int)
	// Join updates the clock to the pointwise maximum with o.
	Join(o C)
	// MonotoneCopy overwrites the clock with o, assuming this ⊑ o.
	MonotoneCopy(o C)
	// CopyCheckMonotone overwrites the clock with o without assuming
	// monotonicity; it reports whether the copy was in fact monotone
	// (false signals a write-write race in the SHB algorithm).
	CopyCheckMonotone(o C) bool
	// Vector writes the represented vector time into dst (which must
	// have length ≥ the clock's capacity) and returns it. It is a
	// Θ(k) snapshot intended for timestamps, tests and reporting.
	Vector(dst Vector) Vector
	// VectorView returns a read-only view of the represented vector
	// time, valid only until the clock's next mutation; entries at or
	// beyond the view's length are zero. Clocks that maintain a flat
	// mirror return it without copying, so per-event consumers (the
	// weak-order release snapshot) can read the full vector time
	// without a Θ(k) materialization; clocks without a mirror may
	// materialize (documented per type). Callers must not write
	// through or retain the view.
	VectorView() []Time
	// ReleaseSlot erases thread t's component: after the call the clock
	// reports Get(t) == 0 and treats t as never seen, exactly as if the
	// entry had not been written. The capacity is unchanged (the slot
	// can be repopulated by later joins). Releasing a slot that is
	// absent, zero or at/beyond the capacity is a no-op. Callers must
	// not release the clock's own slot — the thread a clock was
	// initialized for (implementations that know their owner panic) —
	// and must guarantee that the erased component is genuinely dead:
	// the engine's slot reclamation (internal/engine) only releases a
	// thread's entry from clocks that can never again receive it via a
	// join, so erasure cannot change any represented ordering.
	ReleaseSlot(t TID)
	// Rev returns a revision counter for the clock's foreign entries:
	// it advances whenever an entry other than the owning thread's may
	// have changed, so an unchanged Rev across two reads guarantees
	// every foreign entry is unchanged. The converse need not hold —
	// implementations may advance it spuriously (a no-op join), never
	// the other way around. Consumers that diff successive vector
	// times (the weak-order release snapshot) use it to skip the diff
	// outright between quiet releases.
	Rev() uint64
	// Save serializes the clock's complete state — including Rev, so a
	// restored clock keeps its quiet-release behaviour — into the open
	// section of e (checkpoint/restore, internal/ckpt).
	Save(e *ckpt.Enc)
	// Load restores state written by Save, replacing the clock's
	// contents. Failures latch in d as errors wrapping ckpt.ErrCorrupt;
	// Load never panics on malformed input.
	Load(d *ckpt.Dec)
}

// Factory constructs fresh, uninitialized clocks with thread capacity
// at least k, for one engine run. Implementations bind an optional
// shared WorkStats at closure-creation time; the capacity is supplied
// per call so the engine runtime can size clocks to the identifier
// space seen so far and Grow them as the trace reveals more threads.
type Factory[C any] func(k int) C
