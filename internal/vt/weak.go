package vt

import "treeclock/internal/ckpt"

// Weak-clock transport contracts.
//
// Weak partial orders (WCP and its relatives) keep per-thread clocks
// whose own entry is NOT the thread's local time: other threads
// routinely know more about a thread than the thread's weak clock
// records about itself. That breaks the provenance invariant tree-clock
// joins rely on ("only t's own clock knows t's future"), so the weak
// transport cannot ride on the Clock contract's tree variant. Instead
// it is abstracted behind two small interfaces so an engine can swap
// the representation — the flat Θ(k)-per-operation baseline below, or
// the copy-on-write segment representation in sparse.go — without
// touching any algorithm code. The two implementations must be
// observationally identical; internal/wcp pins them against each other
// differentially.
//
// The contract splits in two because weak-order engines handle two
// kinds of values: the mutable per-thread/per-lock weak clocks (W),
// and the immutable release snapshots (S) pinned by critical-section
// histories and rule-(a) summaries. Snapshots dominate the retained
// state, so their representation owns the recycling policy: every S is
// created, copied and dropped through the SnapStore that produced it.

// WeakClock is a mutable weak-order clock over W's own representation
// S of release snapshots. The type parameter W is the implementing
// type itself (F-bounded, like Clock), so all operations dispatch
// statically.
type WeakClock[W any, S any] interface {
	// Get returns the recorded time of thread t in O(1); threads
	// beyond the clock's length report 0.
	Get(t TID) Time
	// Len is the clock's logical length (the thread-space high-water
	// mark of its entries).
	Len() int
	// Join updates the clock to the pointwise maximum with o.
	Join(o W)
	// CopyFrom overwrites the clock with o: entries beyond o's length
	// read as zero afterwards (the publish step of a weak engine).
	CopyFrom(o W)
	// Absorb joins a release snapshot produced by the matching
	// SnapStore, including the snapshot's own release epoch.
	Absorb(s *S)
	// Vector materializes the clock into dst (grown when shorter than
	// Len) and returns it. Entries of dst beyond Len are untouched.
	Vector(dst Vector) Vector
	// Heap approximates the bytes retained by the clock.
	Heap() uint64
	// SaveWeak serializes the clock into the open section of e in its
	// native representation (sharing-preserving for the sparse clock),
	// for checkpoint/restore. The matching store's state must be saved
	// before any clock bound to it.
	SaveWeak(e *ckpt.Enc)
	// LoadWeak restores state written by SaveWeak. The clock must be
	// bound to a store whose LoadState already ran. Failures latch in d.
	LoadWeak(d *ckpt.Dec)
}

// SnapStore creates and recycles the release snapshots a weak-order
// engine retains, and the weak clocks that absorb them. One store
// serves one engine run; it is free to keep shared scratch state, so
// it must not be used from more than one goroutine.
type SnapStore[W any, S any] interface {
	// NewW returns a fresh zero weak clock bound to this store.
	NewW() W
	// Snapshot builds the release snapshot of thread t over a thread
	// space of k entries from view, a borrowed read-only
	// materialization of the releaser's HB clock at the release
	// (typically the clock's own flat mirror, see Clock.VectorView).
	// view may be shorter than k — missing entries are zero — and is
	// only read during the call; the store copies whatever it must
	// retain. view[t] is the release's own epoch. rev is the source
	// clock's foreign-entry revision counter (Clock.Rev): a store may
	// skip re-reading view entirely when t's previous snapshot was
	// built at the same rev over the same thread space, since every
	// foreign entry is then guaranteed unchanged and view[t] is
	// available through view. Stores that always copy ignore it.
	Snapshot(t TID, view Vector, rev uint64, k int) S
	// SnapGet reads the snapshot's entry for thread u (the exact HB
	// time h[u] it was built from).
	SnapGet(s *S, u TID) Time
	// Assign overwrites *dst — a zero S or a previous Assign target —
	// with a copy of *src. dst and src may already share storage.
	Assign(dst, src *S)
	// Drop releases *s back to the store and zeroes it.
	Drop(s *S)
	// FreeCount reports how many recycled snapshot carriers are parked
	// in the store awaiting reuse.
	FreeCount() int
	// SnapHeap approximates the bytes *s pins, with storage shared
	// between snapshots attributed fractionally so that summing over
	// all live snapshots approximates the total. It must depend only
	// on store state (never on the strong-clock backbone).
	SnapHeap(s *S) uint64
	// LiveHeap approximates, in O(1), the total bytes pinned by every
	// snapshot the store has handed out and not yet dropped — the
	// aggregate SnapHeap answers without walking the holders, so
	// retained-state accounting stays cheap even against a history of
	// hundreds of thousands of entries.
	LiveHeap() uint64
	// Heap approximates the bytes parked in the store itself (the
	// free pool).
	Heap() uint64
	// SaveState serializes the store's own state (arenas, free pools,
	// diff bases) into the open section of e. It must be saved before
	// any weak clock or snapshot it produced, and preserves sharing:
	// restoring the store plus every holder reproduces the exact
	// object graph, refcounts and accounting of the saved run.
	SaveState(e *ckpt.Enc)
	// LoadState restores state written by SaveState into an empty
	// store. Failures latch in d.
	LoadState(d *ckpt.Dec)
	// SaveSnap serializes one snapshot (raw references into the
	// store's already-saved state; nothing is flattened).
	SaveSnap(e *ckpt.Enc, s *S)
	// LoadSnap restores a snapshot written by SaveSnap, without
	// touching refcounts or live accounting — LoadState already
	// restored those wholesale.
	LoadSnap(d *ckpt.Dec, s *S)
}

// maxFreeSnapshots caps the flat store's free list: a burst compaction
// after a long unabsorbed stretch must not turn reclaimed history into
// a permanently hoarded pool. Beyond the cap, dropped vectors go to
// the garbage collector.
const maxFreeSnapshots = 256

// FlatWeak is the flat-vector weak clock: every operation is Θ(k).
// It is the baseline the sparse representation is measured against and
// differentially pinned to.
type FlatWeak struct {
	v Vector
}

// Get implements WeakClock.
func (w *FlatWeak) Get(t TID) Time { return w.v.Get(t) }

// Len implements WeakClock.
func (w *FlatWeak) Len() int { return len(w.v) }

// Join implements WeakClock.
func (w *FlatWeak) Join(o *FlatWeak) {
	if len(o.v) > len(w.v) {
		w.v = GrowSlice(w.v, len(o.v))
	}
	w.v.Join(o.v)
}

// CopyFrom implements WeakClock: copy o and zero the tail beyond it.
func (w *FlatWeak) CopyFrom(o *FlatWeak) {
	if len(o.v) > len(w.v) {
		w.v = GrowSlice(w.v, len(o.v))
	}
	n := copy(w.v, o.v)
	for i := n; i < len(w.v); i++ {
		w.v[i] = 0
	}
}

// Absorb implements WeakClock: a flat snapshot is a plain vector
// (whose own entry already holds the release epoch), so absorption is
// a join.
func (w *FlatWeak) Absorb(s *Vector) {
	if len(*s) > len(w.v) {
		w.v = GrowSlice(w.v, len(*s))
	}
	w.v.Join(*s)
}

// Vector implements WeakClock.
func (w *FlatWeak) Vector(dst Vector) Vector {
	if len(dst) < len(w.v) {
		dst = GrowSlice(dst, len(w.v))
	}
	copy(dst, w.v)
	return dst
}

// Heap implements WeakClock.
func (w *FlatWeak) Heap() uint64 { return uint64(cap(w.v)) * 8 }

// FlatStore is the snapshot store of the flat representation: release
// snapshots are plain vectors recycled through a capped free list.
// live tracks the bytes of handed-out, not-yet-dropped snapshots for
// the O(1) LiveHeap answer.
type FlatStore struct {
	free []Vector
	live uint64
}

// NewFlatStore returns an empty flat snapshot store.
func NewFlatStore() *FlatStore { return &FlatStore{} }

// NewW implements SnapStore.
func (f *FlatStore) NewW() *FlatWeak { return &FlatWeak{} }

// Snapshot implements SnapStore: copy the borrowed view into a
// full-length vector, reusing a recycled snapshot buffer when one is
// parked. A recycled buffer whose capacity went stale — the thread
// space grew since the buffer was parked — is re-grown in place of
// being discarded: after mid-stream thread growth every parked buffer
// is stale at once, and discarding on pop would drain the free list
// back to one allocation per release exactly when snapshots got
// bigger. GrowSlice's amortized doubling means each buffer pays at
// most O(log k) regrowths over a run, after which it recycles at full
// size again. The flat store copies unconditionally, so rev is unused.
func (f *FlatStore) Snapshot(t TID, view Vector, rev uint64, k int) Vector {
	var h Vector
	if n := len(f.free); n > 0 {
		h = f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		if cap(h) < k {
			h = GrowSlice(h[:cap(h)], k)
		}
		h = h[:k]
	} else {
		h = NewVector(k)
	}
	if len(view) > k {
		view = view[:k]
	}
	n := copy(h, view)
	for i := n; i < k; i++ {
		h[i] = 0
	}
	f.live += uint64(k) * 8
	return h
}

// SnapGet implements SnapStore.
func (f *FlatStore) SnapGet(s *Vector, u TID) Time { return s.Get(u) }

// Assign implements SnapStore: copy into dst's buffer, reusing its
// capacity.
func (f *FlatStore) Assign(dst, src *Vector) {
	f.live += uint64(len(*src)) * 8
	f.live -= uint64(len(*dst)) * 8
	*dst = append((*dst)[:0], (*src)...)
}

// Drop implements SnapStore: park the vector for reuse.
func (f *FlatStore) Drop(s *Vector) {
	f.live -= uint64(len(*s)) * 8
	if *s != nil && len(f.free) < maxFreeSnapshots {
		f.free = append(f.free, *s)
	}
	*s = nil
}

// FreeCount implements SnapStore.
func (f *FlatStore) FreeCount() int { return len(f.free) }

// SnapHeap implements SnapStore: 8 bytes per entry, matching the
// repository-wide approximate accounting.
func (f *FlatStore) SnapHeap(s *Vector) uint64 { return uint64(len(*s)) * 8 }

// LiveHeap implements SnapStore.
func (f *FlatStore) LiveHeap() uint64 { return f.live }

// Heap implements SnapStore.
func (f *FlatStore) Heap() uint64 {
	var b uint64
	for i := range f.free {
		b += uint64(cap(f.free[i])) * 8
	}
	return b
}

// Compile-time conformance.
var (
	_ WeakClock[*FlatWeak, Vector]   = (*FlatWeak)(nil)
	_ SnapStore[*FlatWeak, Vector]   = (*FlatStore)(nil)
	_ WeakClock[*Sparse, SparseSnap] = (*Sparse)(nil)
	_ SnapStore[*Sparse, SparseSnap] = (*SparseStore)(nil)
	_ Clock[*Sparse]                 = (*Sparse)(nil)
)
