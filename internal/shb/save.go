package shb

import (
	"io"

	"treeclock/internal/ckpt"
	"treeclock/internal/engine"
)

// Snapshot implements engine.CheckpointSemantics: the per-variable
// last-write clocks, lazily allocated exactly as during the run.
func (s *Semantics[C]) Snapshot(rt *engine.Runtime[C], w io.Writer) error {
	e := ckpt.NewEnc(w)
	e.Begin("shb")
	e.Uvarint(uint64(len(s.lw)))
	for x := range s.lw {
		e.Bool(s.lwSet[x])
		if s.lwSet[x] {
			s.lw[x].Save(e)
		}
	}
	e.End()
	return e.Err()
}

// Restore implements engine.CheckpointSemantics. Last-write clocks are
// recreated through the runtime's factory (sharing its work-stats
// binding) and loaded in place.
func (s *Semantics[C]) Restore(rt *engine.Runtime[C], r io.Reader) error {
	d := ckpt.NewDec(r)
	d.Begin("shb")
	n := d.Len(1)
	if d.Err() != nil {
		return d.Err()
	}
	lw := make([]C, n)
	lwSet := make([]bool, n)
	for x := 0; x < n; x++ {
		if d.Bool() {
			c := rt.NewClock()
			c.Load(d)
			lw[x], lwSet[x] = c, true
		}
		if d.Err() != nil {
			return d.Err()
		}
	}
	d.End()
	if err := d.Err(); err != nil {
		return err
	}
	s.lw, s.lwSet = lw, lwSet
	return nil
}
