package shb

import (
	"testing"

	"treeclock/internal/core"
	"treeclock/internal/gen"
	"treeclock/internal/oracle"
	"treeclock/internal/trace"
	"treeclock/internal/vc"
	"treeclock/internal/vt"
)

func parse(t *testing.T, s string) *trace.Trace {
	t.Helper()
	tr, err := trace.ParseTextString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return tr
}

func randomTraces() []*trace.Trace {
	var out []*trace.Trace
	for seed := int64(1); seed <= 6; seed++ {
		out = append(out,
			gen.Mixed(gen.Config{Name: "rnd-grouped", Threads: 12, Locks: 8, Vars: 24, Events: 800, Seed: 99, SyncFrac: 0.3, LockAffinity: 2, Groups: 3, VarRun: 4}),
			gen.Mixed(gen.Config{Name: "rnd-a", Threads: 3, Locks: 2, Vars: 5, Events: 300, Seed: seed, SyncFrac: 0.4, ReadFrac: 0.5}),
			gen.Mixed(gen.Config{Name: "rnd-b", Threads: 6, Locks: 3, Vars: 8, Events: 500, Seed: seed * 11, SyncFrac: 0.2, ReadFrac: 0.7}),
			gen.Mixed(gen.Config{Name: "rnd-c", Threads: 9, Locks: 4, Vars: 10, Events: 700, Seed: seed * 17, SyncFrac: 0.1}),
		)
	}
	out = append(out,
		gen.ProducerConsumer(3, 4, 600, 7),
		gen.ReadersWriters(8, 600, 8, true),
		gen.ForkJoinTree(5, 30, 9),
	)
	return out
}

func stepCompare[C vt.Clock[C]](t *testing.T, tr *trace.Trace, e *Engine[C], res *oracle.Result, label string) {
	t.Helper()
	dst := vt.NewVector(tr.Meta.Threads)
	for i, ev := range tr.Events {
		e.Step(ev)
		got := e.Timestamp(ev.T, dst)
		if !got.Equal(res.Post[i]) {
			t.Fatalf("%s: %s event %d (%v): timestamp %v, oracle %v", label, tr.Meta.Name, i, ev, got, res.Post[i])
		}
	}
}

func TestSHBMatchesOracleBothClocks(t *testing.T) {
	for _, tr := range randomTraces() {
		res := oracle.Timestamps(tr, oracle.SHB)
		stepCompare(t, tr, New(tr.Meta, core.Factory(nil)), res, "tree clock")
		stepCompare(t, tr, New(tr.Meta, vc.Factory(nil)), res, "vector clock")
	}
}

func TestSHBHandComputed(t *testing.T) {
	// The last-write edge orders t0's write before t1's read even
	// without any lock.
	tr := parse(t, "t0 w x0\nt1 r x0\nt1 w x1\nt0 r x1\n")
	e := New(tr.Meta, core.Factory(nil))
	e.Process(tr.Events)
	if got := e.Timestamp(0, vt.NewVector(2)); !got.Equal(vt.Vector{2, 2}) {
		t.Errorf("t0 timestamp = %v, want [2, 2]", got)
	}
	if got := e.Timestamp(1, vt.NewVector(2)); !got.Equal(vt.Vector{1, 2}) {
		t.Errorf("t1 timestamp = %v, want [1, 2]", got)
	}
}

func TestVTWorkIdenticalAcrossClocks(t *testing.T) {
	for _, tr := range randomTraces() {
		var stTC, stVC vt.WorkStats
		New(tr.Meta, core.Factory(&stTC)).Process(tr.Events)
		New(tr.Meta, vc.Factory(&stVC)).Process(tr.Events)
		if stTC.Changed != stVC.Changed {
			t.Errorf("%s: VTWork disagrees: tree %d vs vector %d", tr.Meta.Name, stTC.Changed, stVC.Changed)
		}
		if stTC.ForcedRootAttach != 0 {
			t.Errorf("%s: ForcedRootAttach = %d", tr.Meta.Name, stTC.ForcedRootAttach)
		}
	}
}

// TestDeepCopiesEqualWWRaces: §5.1's key point — the non-monotone
// (deep copy) fallback of CopyCheckMonotone happens exactly when the
// write being recorded races the write it overwrites, so the fallback
// count equals the detector's write-write race count.
func TestDeepCopiesEqualWWRaces(t *testing.T) {
	for _, tr := range randomTraces() {
		var st vt.WorkStats
		e := New(tr.Meta, core.Factory(&st))
		det := e.EnableRaceDetection()
		e.Process(tr.Events)
		if st.DeepCopies != det.Acc.ByKind[0] { // WriteWrite
			t.Errorf("%s: %d deep copies but %d w-w races",
				tr.Meta.Name, st.DeepCopies, det.Acc.ByKind[0])
		}
	}
}

// shbPreRaces computes the detector's ground truth: conflicting pairs
// where the earlier event's timestamp is not ⊑ the later event's
// pre-edge timestamp (the SHB race condition, checked before the
// event's own lw join).
func shbPreRaces(tr *trace.Trace, res *oracle.Result) map[int32]bool {
	racy := make(map[int32]bool)
	for i, a := range tr.Events {
		if !a.Kind.IsAccess() {
			continue
		}
		for j := i + 1; j < tr.Len(); j++ {
			b := tr.Events[j]
			if trace.Conflicting(a, b) && !res.Post[i].LessEq(res.Pre[j]) {
				racy[a.Obj] = true
			}
		}
	}
	return racy
}

func TestSHBRaceDetectionAgainstOracle(t *testing.T) {
	for _, tr := range randomTraces() {
		res := oracle.Timestamps(tr, oracle.SHB)
		e := New(tr.Meta, core.Factory(nil))
		det := e.EnableRaceDetection()
		e.Process(tr.Events)

		// Soundness: each sample pair is a real pre-edge race.
		lt := tr.LocalTimes()
		idx := make(map[vt.Epoch]int, tr.Len())
		for i, ev := range tr.Events {
			idx[vt.Epoch{T: ev.T, Clk: lt[i]}] = i
		}
		for _, p := range det.Acc.Samples {
			i, ok1 := idx[p.Prior]
			j, ok2 := idx[p.Access]
			if !ok1 || !ok2 {
				t.Fatalf("%s: race %v names unknown events", tr.Meta.Name, p)
			}
			if !trace.Conflicting(tr.Events[i], tr.Events[j]) {
				t.Errorf("%s: race %v on non-conflicting events", tr.Meta.Name, p)
			}
			if res.Post[i].LessEq(res.Pre[j]) {
				t.Errorf("%s: reported race %v is SHB-ordered before its own edge", tr.Meta.Name, p)
			}
		}
		// Per-variable completeness and soundness of the racy set.
		want := shbPreRaces(tr, res)
		got := det.Acc.RacyVars()
		for x := range want {
			if !got[x] {
				t.Errorf("%s: variable x%d has an SHB race the detector missed", tr.Meta.Name, x)
			}
		}
		for x := range got {
			if !want[x] {
				t.Errorf("%s: detector flagged race-free variable x%d", tr.Meta.Name, x)
			}
		}
	}
}

func TestSHBRaceDetectionAgreesAcrossClocks(t *testing.T) {
	for _, tr := range randomTraces() {
		eTC := New(tr.Meta, core.Factory(nil))
		dTC := eTC.EnableRaceDetection()
		eTC.Process(tr.Events)
		eVC := New(tr.Meta, vc.Factory(nil))
		dVC := eVC.EnableRaceDetection()
		eVC.Process(tr.Events)
		if dTC.Acc.Summary() != dVC.Acc.Summary() {
			t.Errorf("%s: detector disagrees: TC %+v vs VC %+v",
				tr.Meta.Name, dTC.Acc.Summary(), dVC.Acc.Summary())
		}
	}
}

// TestSHBFindsMoreThanFirstHBRace reproduces the motivation of the SHB
// paper: after a first race, HB misses later races that SHB predicts
// soundly. Here t1's unsynchronized write races t0's first write; the
// later read by t0 races t1's write too, and SHB still sees it.
func TestSHBDetectsRacesAfterFirst(t *testing.T) {
	tr := parse(t, "t0 w x0\nt1 w x0\nt0 r x0\n")
	e := New(tr.Meta, core.Factory(nil))
	det := e.EnableRaceDetection()
	e.Process(tr.Events)
	sum := det.Acc.Summary()
	if sum.WriteWrite != 1 || sum.WriteRead != 1 {
		t.Errorf("summary = %+v, want one w-w and one w-r race", sum)
	}
}

func TestWellSyncedNoRaces(t *testing.T) {
	tr := gen.ProducerConsumer(2, 2, 400, 11)
	e := New(tr.Meta, core.Factory(nil))
	det := e.EnableRaceDetection()
	e.Process(tr.Events)
	if det.Acc.Total != 0 {
		t.Errorf("lock-protected trace produced %d races: %v", det.Acc.Total, det.Acc.Samples)
	}
	if e.Events() != uint64(tr.Len()) {
		t.Errorf("Events() = %d, want %d", e.Events(), tr.Len())
	}
	if e.Detector() != det {
		t.Error("Detector() accessor broken")
	}
	if e.ThreadClock(0).Get(0) == 0 {
		t.Error("ThreadClock accessor broken")
	}
}
