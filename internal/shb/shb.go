// Package shb computes the schedulable-happens-before partial order
// (§5.1, Algorithm 4): HB plus an ordering from each read's last write
// to the read. Like the HB engine it is generic over the clock data
// structure.
package shb

import (
	"treeclock/internal/analysis"
	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// Engine computes SHB timestamps while streaming events.
//
// Beyond the HB state it keeps, per variable x, the clock LW_x holding
// the timestamp of the last write to x. Reads join LW_x; writes copy
// C_t into LW_x with CopyCheckMonotone — the copy is monotone unless
// the previous write races this one, so with tree clocks the deep-copy
// fallback is bounded by the number of write-write races (§5.1).
type Engine[C vt.Clock[C]] struct {
	meta    trace.Meta
	factory vt.Factory[C]
	threads []C
	locks   []C
	lw      []C
	lwSet   []bool // lw[x] allocated (first write seen)
	det     *analysis.Detector[C]
	events  uint64
}

// New builds an SHB engine.
func New[C vt.Clock[C]](meta trace.Meta, factory vt.Factory[C]) *Engine[C] {
	e := &Engine[C]{meta: meta, factory: factory}
	e.threads = make([]C, meta.Threads)
	for t := range e.threads {
		e.threads[t] = factory()
		e.threads[t].Init(vt.TID(t))
	}
	e.locks = make([]C, meta.Locks)
	for l := range e.locks {
		e.locks[l] = factory()
	}
	// Last-write clocks are allocated lazily: many variables are
	// read-only or never touched.
	e.lw = make([]C, meta.Vars)
	e.lwSet = make([]bool, meta.Vars)
	return e
}

// EnableRaceDetection attaches the SHB race detector (reporting pairs
// concurrent before the event's own lw edge, as in the SHB paper) and
// returns it.
func (e *Engine[C]) EnableRaceDetection() *analysis.Detector[C] {
	e.det = analysis.NewDetector[C](e.meta.Threads, e.meta.Vars)
	return e.det
}

// Step processes one event.
func (e *Engine[C]) Step(ev trace.Event) {
	t := ev.T
	ct := e.threads[t]
	ct.Inc(t, 1)
	switch ev.Kind {
	case trace.Acquire:
		ct.Join(e.locks[ev.Obj])
	case trace.Release:
		e.locks[ev.Obj].MonotoneCopy(ct)
	case trace.Read:
		// The race check precedes the lw join: afterwards the pair
		// would always be ordered.
		if e.det != nil {
			e.det.Read(ev.Obj, t, ct)
		}
		if e.lwSet[ev.Obj] {
			ct.Join(e.lw[ev.Obj])
		}
	case trace.Write:
		if e.det != nil {
			e.det.Write(ev.Obj, t, ct)
		}
		if !e.lwSet[ev.Obj] {
			e.lw[ev.Obj] = e.factory()
			e.lwSet[ev.Obj] = true
		}
		e.lw[ev.Obj].CopyCheckMonotone(ct)
	case trace.Fork:
		e.threads[ev.Obj].Join(ct)
	case trace.Join:
		ct.Join(e.threads[ev.Obj])
	}
	e.events++
}

// Process runs the whole event slice through Step.
func (e *Engine[C]) Process(events []trace.Event) {
	for i := range events {
		e.Step(events[i])
	}
}

// Events returns the number of events processed.
func (e *Engine[C]) Events() uint64 { return e.events }

// ThreadClock exposes thread t's clock.
func (e *Engine[C]) ThreadClock(t vt.TID) C { return e.threads[t] }

// Timestamp snapshots thread t's current vector time into dst.
func (e *Engine[C]) Timestamp(t vt.TID, dst vt.Vector) vt.Vector {
	return e.threads[t].Vector(dst)
}

// Detector returns the attached detector, or nil.
func (e *Engine[C]) Detector() *analysis.Detector[C] { return e.det }
