// Package shb computes the schedulable-happens-before partial order
// (§5.1, Algorithm 4): HB plus an ordering from each read's last write
// to the read. Like the HB engine it is generic over the clock data
// structure.
//
// All sync scaffolding lives in the shared runtime of internal/engine;
// this package contributes only the SHB read/write semantics and the
// per-variable last-write state they need.
package shb

import (
	"treeclock/internal/engine"
	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// Semantics is the SHB plugin for the shared engine runtime.
//
// Per variable x it keeps the clock LW_x holding the timestamp of the
// last write to x. Reads join LW_x; writes copy C_t into LW_x with
// CopyCheckMonotone — the copy is monotone unless the previous write
// races this one, so with tree clocks the deep-copy fallback is bounded
// by the number of write-write races (§5.1). Last-write clocks are
// allocated lazily (many variables are read-only or never touched) and
// the variable space grows on first sight of an identifier.
type Semantics[C vt.Clock[C]] struct {
	lw    []C
	lwSet []bool // lw[x] allocated (first write seen)
}

// NewSemantics returns fresh SHB semantics (one per engine run).
func NewSemantics[C vt.Clock[C]]() *Semantics[C] { return &Semantics[C]{} }

// grow extends the per-variable state to cover x (amortized doubling).
func (s *Semantics[C]) grow(x int32) {
	s.lw = vt.GrowSlice(s.lw, int(x)+1)
	s.lwSet = vt.GrowSlice(s.lwSet, int(x)+1)
}

// Read implements engine.Semantics: the race check precedes the lw
// join — afterwards the pair would always be ordered.
func (s *Semantics[C]) Read(rt *engine.Runtime[C], t vt.TID, x int32, ct C) {
	if d := rt.Detector(); d != nil {
		d.Read(x, t, ct)
	}
	if int(x) < len(s.lw) && s.lwSet[x] {
		ct.Join(s.lw[x])
	}
}

// Write implements engine.Semantics.
func (s *Semantics[C]) Write(rt *engine.Runtime[C], t vt.TID, x int32, ct C) {
	if d := rt.Detector(); d != nil {
		d.Write(x, t, ct)
	}
	s.grow(x)
	if !s.lwSet[x] {
		s.lw[x] = rt.NewClock()
		s.lwSet[x] = true
	}
	s.lw[x].CopyCheckMonotone(ct)
}

// Engine computes SHB timestamps while streaming events. It is the
// shared runtime bound to the SHB semantics; every method is promoted
// from engine.Runtime.
type Engine[C vt.Clock[C]] struct {
	engine.Runtime[C]
}

// New builds an SHB engine pre-sized for traces with the given
// metadata.
func New[C vt.Clock[C]](meta trace.Meta, factory vt.Factory[C]) *Engine[C] {
	e := &Engine[C]{}
	e.Runtime = *engine.NewWithMeta[C](NewSemantics[C](), factory, meta)
	return e
}

// NewStreaming builds an SHB engine that discovers the trace's
// identifier spaces on the fly (no prior metadata).
func NewStreaming[C vt.Clock[C]](factory vt.Factory[C]) *Engine[C] {
	e := &Engine[C]{}
	e.Runtime = *engine.New[C](NewSemantics[C](), factory)
	return e
}
