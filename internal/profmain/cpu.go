package main

import (
	"os"
	"runtime/pprof"

	"treeclock/internal/bench"
	"treeclock/internal/gen"
)

// profileSingleLock writes a CPU profile of the HB/TC run.
func profileSingleLock() {
	tr := gen.SingleLock(360, 1_000_000, 7)
	bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.TC})
	f, _ := os.Create("/tmp/cpu.out")
	pprof.StartCPUProfile(f)
	for i := 0; i < 3; i++ {
		bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.TC})
	}
	pprof.StopCPUProfile()
	f.Close()
}
