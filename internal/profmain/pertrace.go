package main

import (
	"fmt"

	"treeclock/internal/bench"
	"treeclock/internal/gen"
)

// perTrace dumps per-suite-trace speedups and work ratios for SHB.
func perTrace() {
	for _, tr := range gen.Suite(0.4) {
		for _, po := range []bench.PO{bench.SHB, bench.HB} {
			tc := bench.RunMean(tr, bench.Config{PO: po, Clock: bench.TC}, 2)
			vc := bench.RunMean(tr, bench.Config{PO: po, Clock: bench.VC}, 2)
			wt := bench.Run(tr, bench.Config{PO: po, Clock: bench.TC, Work: true})
			wv := bench.Run(tr, bench.Config{PO: po, Clock: bench.VC, Work: true})
			fmt.Printf("%-22s %-4s k=%-3d n=%-7d speedup=%5.2f workratio=%6.1f tc/vt=%4.2f\n",
				tr.Meta.Name, po, tr.Meta.Threads, tr.Len(),
				vc.Seconds()/tc.Seconds(),
				float64(wv.Work.Entries)/float64(wt.Work.Entries),
				float64(wt.Work.Entries)/float64(wt.Work.Changed))
		}
	}
}
