// Command profmain is a development scratch harness for quick
// performance checks of the clock data structures (not part of the
// public tooling; see cmd/tcbench for the real experiments).
package main

import (
	"fmt"
	"os"

	"treeclock/internal/bench"
	"treeclock/internal/gen"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "pertrace" {
		perTrace()
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "table2" {
		table2quick()
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "check" {
		recheck()
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "prof" {
		profileSingleLock()
		return
	}
	const events = 1_000_000
	for _, sc := range gen.Scenarios {
		fmt.Printf("%s (%d events):\n", sc.Name, events)
		for _, k := range []int{10, 60, 160, 360} {
			tr := sc.Fn(k, events, int64(k))
			bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.TC}) // warmup
			tc := bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.TC})
			vc := bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.VC})
			for i := 0; i < 2; i++ {
				if r := bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.TC}); r.Elapsed < tc.Elapsed {
					tc = r
				}
				if r := bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.VC}); r.Elapsed < vc.Elapsed {
					vc = r
				}
			}
			w := bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.TC, Work: true})
			wv := bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.VC, Work: true})
			fmt.Printf("  k=%3d  TC=%8.1fms  VC=%8.1fms  speedup=%5.2f  VCWork/TCWork=%5.1f\n",
				k, tc.Seconds()*1000, vc.Seconds()*1000, vc.Seconds()/tc.Seconds(),
				float64(wv.Work.Entries)/float64(w.Work.Entries))
		}
	}
}
