package main

import (
	"fmt"

	"treeclock/internal/bench"
	"treeclock/internal/gen"
	"treeclock/internal/vt"
)

// recheck re-times the suspicious scenario points several times and
// prints the forced-root-attach counter.
func recheck() {
	tr := gen.Star(360, 1_000_000, 360)
	var st vt.WorkStats
	w := bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.TC, Work: true})
	st = w.Work
	fmt.Printf("star k=360: ForcedRootAttach=%d DeepCopies=%d entries=%d changed=%d\n",
		st.ForcedRootAttach, st.DeepCopies, st.Entries, st.Changed)
	for i := 0; i < 4; i++ {
		tc := bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.TC})
		vc := bench.Run(tr, bench.Config{PO: bench.HB, Clock: bench.VC})
		fmt.Printf("  run %d: TC=%7.1fms VC=%7.1fms\n", i, tc.Seconds()*1000, vc.Seconds()*1000)
	}
}
