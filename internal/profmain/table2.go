package main

import (
	"fmt"
	"os"

	"treeclock/internal/bench"
)

// table2quick runs Table 2 at a reduced scale and prints it.
func table2quick() {
	h := bench.NewHarness(bench.Options{Scale: 0.4, Repeats: 1})
	h.Table2(os.Stdout)
	fmt.Println()
}
