// Package bench is the experiment harness: it runs the HB, SHB and MAZ
// engines over generated workloads with both clock data structures,
// measures wall-clock time and data-structure work, and formats the
// paper's Tables 1–3 and Figures 6–10 (plus an ablation study) as
// text reports.
package bench

import (
	"fmt"
	"time"

	"treeclock/internal/analysis"
	"treeclock/internal/core"
	"treeclock/internal/hb"
	"treeclock/internal/maz"
	"treeclock/internal/shb"
	"treeclock/internal/trace"
	"treeclock/internal/vc"
	"treeclock/internal/vt"
	"treeclock/internal/wcp"
)

// PO selects the partial order to compute.
type PO int

const (
	// MAZ is the Mazurkiewicz partial order.
	MAZ PO = iota
	// SHB is schedulable-happens-before.
	SHB
	// HB is happens-before.
	HB
	// WCP is the weakly-causally-precedes weak order (predictive race
	// detection). It is not part of POs — the paper's tables cover
	// MAZ/SHB/HB — but the stream and ingest experiments exercise it
	// through the engine registry.
	WCP
)

// POs lists the partial orders in the paper's reporting order.
var POs = []PO{MAZ, SHB, HB}

func (p PO) String() string {
	switch p {
	case HB:
		return "HB"
	case SHB:
		return "SHB"
	case MAZ:
		return "MAZ"
	case WCP:
		return "WCP"
	default:
		return "PO?"
	}
}

// ForNames maps an engine registry entry's order/clock names ("hb",
// "shb", "maz" × "tree", "vc") to the harness constants, reporting
// whether both names are known. It is the one place the string names
// and the bench constants are tied together.
func ForNames(order, clock string) (PO, Clock, bool) {
	var po PO
	switch order {
	case "hb":
		po = HB
	case "shb":
		po = SHB
	case "maz":
		po = MAZ
	case "wcp":
		po = WCP
	default:
		return 0, 0, false
	}
	var ck Clock
	switch clock {
	case "tree", "tc":
		ck = TC
	case "vc":
		ck = VC
	default:
		return 0, 0, false
	}
	return po, ck, true
}

// Clock selects the data structure.
type Clock int

const (
	// TC is the tree clock (the paper's contribution).
	TC Clock = iota
	// VC is the flat vector clock baseline.
	VC
)

func (c Clock) String() string {
	if c == TC {
		return "TC"
	}
	return "VC"
}

// TreeMode forwards core ablation modes through the harness.
type TreeMode = core.Mode

// Result is one measured engine run.
type Result struct {
	Trace    string
	PO       PO
	Clock    Clock
	Analysis bool
	Events   int
	Threads  int
	Elapsed  time.Duration
	Work     vt.WorkStats // populated only when work counting was on
	Pairs    uint64       // detected races / reversible pairs
}

// Seconds returns the elapsed time in seconds.
func (r Result) Seconds() float64 { return r.Elapsed.Seconds() }

// Config controls a single run.
type Config struct {
	PO       PO
	Clock    Clock
	Analysis bool     // also run the race / reversible-pair analysis
	Work     bool     // count data-structure work (adds overhead)
	Mode     TreeMode // tree-clock ablation mode (TC only)
}

// Run executes one engine over the trace and reports the measurement.
func Run(tr *trace.Trace, cfg Config) Result {
	res := Result{
		Trace:    tr.Meta.Name,
		PO:       cfg.PO,
		Clock:    cfg.Clock,
		Analysis: cfg.Analysis,
		Events:   tr.Len(),
		Threads:  tr.Meta.Threads,
	}
	var st *vt.WorkStats
	if cfg.Work {
		st = &vt.WorkStats{}
	}
	if cfg.Clock == TC {
		f := core.FactoryMode(st, cfg.Mode)
		res.Elapsed, res.Pairs = dispatch(tr, cfg, f)
	} else {
		f := vc.Factory(st)
		res.Elapsed, res.Pairs = dispatch(tr, cfg, f)
	}
	if st != nil {
		res.Work = *st
	}
	return res
}

// dispatch instantiates the right engine for the clock type C.
func dispatch[C vt.Clock[C]](tr *trace.Trace, cfg Config, f vt.Factory[C]) (time.Duration, uint64) {
	switch cfg.PO {
	case HB:
		e := hb.New(tr.Meta, f)
		if cfg.Analysis {
			det := e.EnableRaceDetection()
			el := timed(func() { e.Process(tr.Events) })
			return el, det.Acc.Total
		}
		return timed(func() { e.Process(tr.Events) }), 0
	case SHB:
		e := shb.New(tr.Meta, f)
		if cfg.Analysis {
			det := e.EnableRaceDetection()
			el := timed(func() { e.Process(tr.Events) })
			return el, det.Acc.Total
		}
		return timed(func() { e.Process(tr.Events) }), 0
	case MAZ:
		e := maz.New(tr.Meta, f)
		if cfg.Analysis {
			acc := e.EnableAnalysis()
			el := timed(func() { e.Process(tr.Events) })
			return el, acc.Total
		}
		return timed(func() { e.Process(tr.Events) }), 0
	case WCP:
		e := wcp.New(tr.Meta, f)
		if cfg.Analysis {
			acc := e.EnableAnalysis()
			el := timed(func() { e.Process(tr.Events) })
			return el, acc.Total
		}
		return timed(func() { e.Process(tr.Events) }), 0
	default:
		panic(fmt.Sprintf("bench: unknown partial order %d", cfg.PO))
	}
}

func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// SamplePairs runs the analysis and returns the retained sample pairs
// (bounded; counting in Run covers the totals).
func SamplePairs(tr *trace.Trace, po PO, ck Clock) []analysis.Pair {
	if ck == TC {
		return samplePairs(tr, po, core.Factory(nil))
	}
	return samplePairs(tr, po, vc.Factory(nil))
}

func samplePairs[C vt.Clock[C]](tr *trace.Trace, po PO, f vt.Factory[C]) []analysis.Pair {
	switch po {
	case HB:
		e := hb.New(tr.Meta, f)
		det := e.EnableRaceDetection()
		e.Process(tr.Events)
		return det.Acc.Samples
	case SHB:
		e := shb.New(tr.Meta, f)
		det := e.EnableRaceDetection()
		e.Process(tr.Events)
		return det.Acc.Samples
	case MAZ:
		e := maz.New(tr.Meta, f)
		acc := e.EnableAnalysis()
		e.Process(tr.Events)
		return acc.Samples
	case WCP:
		e := wcp.New(tr.Meta, f)
		acc := e.EnableAnalysis()
		e.Process(tr.Events)
		return acc.Samples
	default:
		panic(fmt.Sprintf("bench: unknown partial order %d", po))
	}
}

// RunMean repeats the run and returns the result with the mean elapsed
// time (the paper averages 3 measurements).
func RunMean(tr *trace.Trace, cfg Config, repeats int) Result {
	if repeats < 1 {
		repeats = 1
	}
	res := Run(tr, cfg)
	total := res.Elapsed
	for i := 1; i < repeats; i++ {
		total += Run(tr, cfg).Elapsed
	}
	res.Elapsed = total / time.Duration(repeats)
	return res
}
