package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"treeclock/internal/core"
	"treeclock/internal/gen"
	"treeclock/internal/stats"
	"treeclock/internal/trace"
)

// Options parameterizes the experiment reports.
type Options struct {
	// Scale multiplies the suite's event counts (1.0 ≈ a few hundred
	// thousand events per large trace; the paper's traces are ~1000×
	// larger).
	Scale float64
	// Repeats averages each timing over this many runs (paper: 3).
	Repeats int
	// Fig10Events is the events per scalability trace (paper: 10M).
	Fig10Events int
	// Fig10Threads is the thread sweep (paper: 10..360).
	Fig10Threads []int
}

// Defaults returns laptop-friendly options.
func Defaults() Options {
	return Options{
		Scale:        1.0,
		Repeats:      3,
		Fig10Events:  400_000,
		Fig10Threads: []int{10, 60, 110, 160, 210, 260, 310, 360},
	}
}

// Harness caches generated workloads across experiments.
type Harness struct {
	Opts  Options
	suite []*trace.Trace
}

// NewHarness builds a harness with the given options.
func NewHarness(opts Options) *Harness {
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	if opts.Repeats < 1 {
		opts.Repeats = 1
	}
	if opts.Fig10Events <= 0 {
		opts.Fig10Events = 400_000
	}
	if len(opts.Fig10Threads) == 0 {
		opts.Fig10Threads = Defaults().Fig10Threads
	}
	return &Harness{Opts: opts}
}

// Suite returns the (cached) benchmark suite traces.
func (h *Harness) Suite() []*trace.Trace {
	if h.suite == nil {
		h.suite = gen.Suite(h.Opts.Scale)
	}
	return h.suite
}

// Table1 prints aggregate statistics over the suite, mirroring the
// paper's Table 1 (trace statistics).
func (h *Harness) Table1(w io.Writer) {
	var threads, locks, vars, events, syncPct, rwPct []float64
	for _, tr := range h.Suite() {
		s := trace.ComputeStats(tr)
		threads = append(threads, float64(s.Threads))
		locks = append(locks, float64(s.Locks))
		vars = append(vars, float64(s.Vars))
		events = append(events, float64(s.Events))
		syncPct = append(syncPct, s.SyncPct)
		rwPct = append(rwPct, s.RWPct)
	}
	fmt.Fprintln(w, "Table 1: Trace Statistics (synthetic suite; see DESIGN.md substitutions)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tMin\tMax\tMean")
	row := func(name string, xs []float64, intLike bool) {
		if intLike {
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\n", name, stats.Min(xs), stats.Max(xs), stats.Mean(xs))
		} else {
			fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\n", name, stats.Min(xs), stats.Max(xs), stats.Mean(xs))
		}
	}
	row("Threads", threads, true)
	row("Locks", locks, true)
	row("Variables", vars, true)
	row("Events", events, true)
	row("Sync. Events (%)", syncPct, false)
	row("R/W Events (%)", rwPct, false)
	tw.Flush()
}

// Table3 prints the per-benchmark trace information (paper Table 3).
func (h *Harness) Table3(w io.Writer) {
	fmt.Fprintln(w, "Table 3: Information on Benchmark Traces (N events, T threads, M locations, L locks)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tN\tT\tM\tL")
	for _, tr := range h.Suite() {
		s := trace.ComputeStats(tr)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", s.Name, s.Events, s.Threads, s.Vars, s.Locks)
	}
	tw.Flush()
}

// poPair measures one trace under one PO with both clocks.
func (h *Harness) poPair(tr *trace.Trace, po PO, analysis bool) (tc, vc Result) {
	tc = RunMean(tr, Config{PO: po, Clock: TC, Analysis: analysis}, h.Opts.Repeats)
	vc = RunMean(tr, Config{PO: po, Clock: VC, Analysis: analysis}, h.Opts.Repeats)
	return tc, vc
}

// Table2 prints the average speedup of tree clocks over vector clocks
// for each partial order, with and without the analysis component
// (paper Table 2; paper values: MAZ 2.02, SHB 2.66, HB 2.97 for PO and
// 1.49, 1.80, 1.11 with analysis).
func (h *Harness) Table2(w io.Writer) {
	speedup := map[PO][]float64{}
	speedupA := map[PO][]float64{}
	for _, tr := range h.Suite() {
		for _, po := range POs {
			tc, vcr := h.poPair(tr, po, false)
			speedup[po] = append(speedup[po], vcr.Seconds()/tc.Seconds())
			tcA, vcA := h.poPair(tr, po, true)
			speedupA[po] = append(speedupA[po], vcA.Seconds()/tcA.Seconds())
		}
	}
	fmt.Fprintln(w, "Table 2: Average speedup for computing the partial order due to tree clocks")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tMAZ\tSHB\tHB")
	fmt.Fprintf(tw, "PO\t%.2f\t%.2f\t%.2f\n",
		stats.Mean(speedup[MAZ]), stats.Mean(speedup[SHB]), stats.Mean(speedup[HB]))
	fmt.Fprintf(tw, "PO + Analysis\t%.2f\t%.2f\t%.2f\n",
		stats.Mean(speedupA[MAZ]), stats.Mean(speedupA[SHB]), stats.Mean(speedupA[HB]))
	tw.Flush()
	fmt.Fprintln(w, "(paper: PO 2.02 / 2.66 / 2.97; PO+Analysis 1.49 / 1.80 / 1.11)")
}

// Figure6 prints the per-trace processing times for tree clocks and
// vector clocks — the data behind the paper's six scatter plots
// (MAZ/SHB/HB, with and without the analysis component).
func (h *Harness) Figure6(w io.Writer) {
	for _, analysis := range []bool{false, true} {
		for _, po := range POs {
			label := po.String()
			if analysis {
				label += "+Analysis"
			}
			fmt.Fprintf(w, "Figure 6 (%s): per-trace times\n", label)
			tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "Benchmark\tVC (s)\tTC (s)\tVC/TC")
			for _, tr := range h.Suite() {
				tc, vcr := h.poPair(tr, po, analysis)
				fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.2f\n",
					tr.Meta.Name, vcr.Seconds(), tc.Seconds(), vcr.Seconds()/tc.Seconds())
			}
			tw.Flush()
			fmt.Fprintln(w)
		}
	}
}

// Figure7 prints the HB+analysis speedup as a function of the share of
// synchronization events. Alongside the suite it sweeps a controlled
// 16-thread workload whose sync ratio varies, making the paper's trend
// (higher sync share → higher end-to-end speedup) directly visible.
func (h *Harness) Figure7(w io.Writer) {
	type point struct {
		name    string
		syncPct float64
		speedup float64
	}
	var pts []point
	for _, tr := range h.Suite() {
		s := trace.ComputeStats(tr)
		tc, vcr := h.poPair(tr, HB, true)
		if vcr.Elapsed.Milliseconds() < 5 {
			continue // too small to time meaningfully (paper uses ≥100ms)
		}
		pts = append(pts, point{tr.Meta.Name, s.SyncPct, vcr.Seconds() / tc.Seconds()})
	}
	for _, frac := range []float64{0.02, 0.05, 0.1, 0.2, 0.3, 0.45, 0.6} {
		tr := gen.Mixed(gen.Config{
			Name: fmt.Sprintf("sweep-sync%.0f", frac*100), Threads: 16, Locks: 8,
			Vars: 1024, Events: int(200_000 * h.Opts.Scale), Seed: 777, SyncFrac: frac,
		})
		s := trace.ComputeStats(tr)
		tc, vcr := h.poPair(tr, HB, true)
		pts = append(pts, point{tr.Meta.Name, s.SyncPct, vcr.Seconds() / tc.Seconds()})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].syncPct < pts[j].syncPct })
	fmt.Fprintln(w, "Figure 7: HB+Analysis speedup vs. share of synchronization events")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tSync (%)\tVC/TC")
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%.1f\t%.2f\n", p.name, p.syncPct, p.speedup)
	}
	tw.Flush()
}

// Figure8 prints, per trace, TCWork/VTWork and VCWork/VTWork for the
// HB computation. Theorem 1 bounds the first ratio by 3; the second
// grows with thread count (paper: up to ~100).
func (h *Harness) Figure8(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: work ratios for HB (VTWork = entries changed; Theorem 1: TCWork ≤ 3·VTWork)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tVTWork\tTCWork/VTWork\tVCWork/VTWork")
	maxTC := 0.0
	for _, tr := range h.Suite() {
		tc := Run(tr, Config{PO: HB, Clock: TC, Work: true})
		vcr := Run(tr, Config{PO: HB, Clock: VC, Work: true})
		vtw := float64(tc.Work.Changed)
		tcRatio := float64(tc.Work.Entries) / vtw
		vcRatio := float64(vcr.Work.Entries) / vtw
		if tcRatio > maxTC {
			maxTC = tcRatio
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\n", tr.Meta.Name, tc.Work.Changed, tcRatio, vcRatio)
	}
	tw.Flush()
	fmt.Fprintf(w, "max TCWork/VTWork = %.2f (bound: 3 + o(1) per-op root probes)\n", maxTC)
}

// Figure9 prints histograms of VCWork/TCWork per partial order (paper
// Figure 9): how much redundant work vector clocks perform.
func (h *Harness) Figure9(w io.Writer) {
	bounds := []float64{1, 5, 10, 20, 30, 40, 50, 60, 70, 80}
	for _, po := range POs {
		var ratios []float64
		for _, tr := range h.Suite() {
			tc := Run(tr, Config{PO: po, Clock: TC, Work: true})
			vcr := Run(tr, Config{PO: po, Clock: VC, Work: true})
			ratios = append(ratios, float64(vcr.Work.Entries)/float64(tc.Work.Entries))
		}
		hist := stats.NewHistogram(bounds, ratios)
		maxCount := 0
		for _, c := range hist.Counts {
			if c > maxCount {
				maxCount = c
			}
		}
		fmt.Fprintf(w, "Figure 9 (%s): histogram of VCWork/TCWork across the suite\n", po)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for i, c := range hist.Counts {
			fmt.Fprintf(tw, "%s\t%d\t%s\n", hist.BucketLabel(i), c, stats.Bar(c, maxCount, 40))
		}
		tw.Flush()
		fmt.Fprintf(w, "mean ratio %.1f, max %.1f\n\n", stats.Mean(ratios), stats.Max(ratios))
	}
}

// Figure10 prints the controlled scalability study (paper Figure 10):
// HB computation time versus thread count for the four communication
// patterns, with both clocks.
func (h *Harness) Figure10(w io.Writer) {
	for _, sc := range gen.Scenarios {
		fmt.Fprintf(w, "Figure 10 (%s): HB time vs. threads, %d events\n", sc.Name, h.Opts.Fig10Events)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "Threads\tVC (s)\tTC (s)\tVC/TC")
		for _, k := range h.Opts.Fig10Threads {
			tr := sc.Fn(k, h.Opts.Fig10Events, int64(k))
			tc := RunMean(tr, Config{PO: HB, Clock: TC}, h.Opts.Repeats)
			vcr := RunMean(tr, Config{PO: HB, Clock: VC}, h.Opts.Repeats)
			fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.2f\n", k, vcr.Seconds(), tc.Seconds(), vcr.Seconds()/tc.Seconds())
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
}

// Ablation quantifies the contribution of each tree-clock idea on the
// star and mixed workloads: the full algorithm, joins without the
// indirect-monotonicity break, and copies done deeply (no monotone
// copy). This study is an extension beyond the paper (DESIGN.md §4).
func (h *Harness) Ablation(w io.Writer) {
	workloads := []*trace.Trace{
		gen.Star(64, h.Opts.Fig10Events, 1),
		gen.SingleLock(64, h.Opts.Fig10Events, 2),
		gen.Mixed(gen.Config{Name: "mixed-k32", Threads: 32, Locks: 16, Vars: 2048,
			Events: h.Opts.Fig10Events, Seed: 3, SyncFrac: 0.3}),
	}
	modes := []struct {
		name string
		cfg  Config
	}{
		{"TC (full)", Config{PO: HB, Clock: TC}},
		{"TC no-indirect-break", Config{PO: HB, Clock: TC, Mode: core.ModeNoIndirectBreak}},
		{"TC deep-copy", Config{PO: HB, Clock: TC, Mode: core.ModeDeepCopy}},
		{"VC", Config{PO: HB, Clock: VC}},
	}
	fmt.Fprintln(w, "Ablation: contribution of each tree-clock mechanism (HB)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Workload\tVariant\tTime (s)\tEntries touched")
	for _, tr := range workloads {
		for _, m := range modes {
			cfg := m.cfg
			cfg.Work = true
			r := Run(tr, cfg)
			timedR := RunMean(tr, m.cfg, h.Opts.Repeats)
			fmt.Fprintf(tw, "%s\t%s\t%.4f\t%d\n", tr.Meta.Name, m.name, timedR.Seconds(), r.Work.Entries)
		}
	}
	tw.Flush()
}
