package bench

import (
	"bytes"
	"strings"
	"testing"

	"treeclock/internal/gen"
)

// tinyOpts keeps harness tests fast: small suite scale, one repeat,
// small scalability sweeps.
func tinyOpts() Options {
	return Options{
		Scale:        0.03,
		Repeats:      1,
		Fig10Events:  4000,
		Fig10Threads: []int{4, 8},
	}
}

func TestRunAllCombinations(t *testing.T) {
	tr := gen.Mixed(gen.Config{Name: "combo", Threads: 6, Locks: 3, Vars: 32, Events: 3000, Seed: 1, SyncFrac: 0.3})
	for _, po := range POs {
		for _, ck := range []Clock{TC, VC} {
			for _, an := range []bool{false, true} {
				r := Run(tr, Config{PO: po, Clock: ck, Analysis: an, Work: true})
				if r.Events != tr.Len() {
					t.Errorf("%v/%v: events = %d, want %d", po, ck, r.Events, tr.Len())
				}
				if r.Work.Changed == 0 {
					t.Errorf("%v/%v: no work recorded", po, ck)
				}
				if r.Elapsed <= 0 {
					t.Errorf("%v/%v: non-positive elapsed time", po, ck)
				}
			}
		}
	}
}

func TestRunVTWorkAgreesAcrossClocks(t *testing.T) {
	tr := gen.Mixed(gen.Config{Name: "w", Threads: 8, Locks: 4, Vars: 64, Events: 5000, Seed: 2, SyncFrac: 0.25})
	for _, po := range POs {
		tc := Run(tr, Config{PO: po, Clock: TC, Work: true})
		vc := Run(tr, Config{PO: po, Clock: VC, Work: true})
		if tc.Work.Changed != vc.Work.Changed {
			t.Errorf("%v: VTWork differs: %d vs %d", po, tc.Work.Changed, vc.Work.Changed)
		}
		if tc.Work.Entries >= vc.Work.Entries {
			t.Errorf("%v: tree clock touched %d entries, vector clock %d — no saving",
				po, tc.Work.Entries, vc.Work.Entries)
		}
	}
}

func TestRunAnalysisPairsAgreeAcrossClocks(t *testing.T) {
	tr := gen.ReadersWriters(8, 4000, 3, true)
	for _, po := range POs {
		tc := Run(tr, Config{PO: po, Clock: TC, Analysis: true})
		vc := Run(tr, Config{PO: po, Clock: VC, Analysis: true})
		if tc.Pairs != vc.Pairs {
			t.Errorf("%v: pair counts differ: %d vs %d", po, tc.Pairs, vc.Pairs)
		}
		if tc.Pairs == 0 {
			t.Errorf("%v: racy workload produced no pairs", po)
		}
	}
}

func TestRunMeanAverages(t *testing.T) {
	tr := gen.SingleLock(4, 2000, 4)
	r := RunMean(tr, Config{PO: HB, Clock: TC}, 3)
	if r.Elapsed <= 0 {
		t.Error("mean elapsed must be positive")
	}
}

func TestRunPanicsOnBadPO(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad PO must panic")
		}
	}()
	tr := gen.SingleLock(2, 100, 1)
	Run(tr, Config{PO: PO(9), Clock: TC})
}

func TestStringers(t *testing.T) {
	if HB.String() != "HB" || SHB.String() != "SHB" || MAZ.String() != "MAZ" || PO(9).String() != "PO?" {
		t.Error("PO names wrong")
	}
	if TC.String() != "TC" || VC.String() != "VC" {
		t.Error("Clock names wrong")
	}
}

func TestTable1Report(t *testing.T) {
	h := NewHarness(tinyOpts())
	var buf bytes.Buffer
	h.Table1(&buf)
	out := buf.String()
	for _, want := range []string{"Table 1", "Threads", "Locks", "Sync. Events"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Report(t *testing.T) {
	h := NewHarness(tinyOpts())
	var buf bytes.Buffer
	h.Table2(&buf)
	out := buf.String()
	for _, want := range []string{"Table 2", "MAZ", "SHB", "HB", "PO + Analysis"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Report(t *testing.T) {
	h := NewHarness(tinyOpts())
	var buf bytes.Buffer
	h.Table3(&buf)
	out := buf.String()
	if !strings.Contains(out, "account") || !strings.Contains(out, "tradebeans-like") {
		t.Errorf("Table3 missing suite rows:\n%s", out)
	}
}

func TestFigureReports(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reports are slow")
	}
	h := NewHarness(tinyOpts())
	var buf bytes.Buffer
	h.Figure8(&buf)
	if !strings.Contains(buf.String(), "TCWork/VTWork") {
		t.Errorf("Figure8 output:\n%s", buf.String())
	}
	buf.Reset()
	h.Figure9(&buf)
	if !strings.Contains(buf.String(), "VCWork/TCWork") {
		t.Errorf("Figure9 output:\n%s", buf.String())
	}
	buf.Reset()
	h.Figure10(&buf)
	out := buf.String()
	for _, sc := range []string{"single-lock", "fifty-locks-skewed", "star", "pairwise"} {
		if !strings.Contains(out, sc) {
			t.Errorf("Figure10 missing scenario %q", sc)
		}
	}
	buf.Reset()
	h.Ablation(&buf)
	if !strings.Contains(buf.String(), "no-indirect-break") {
		t.Errorf("Ablation output:\n%s", buf.String())
	}
}

func TestFigure6And7Reports(t *testing.T) {
	if testing.Short() {
		t.Skip("figure reports are slow")
	}
	opts := tinyOpts()
	opts.Scale = 0.02
	h := NewHarness(opts)
	var buf bytes.Buffer
	h.Figure6(&buf)
	if !strings.Contains(buf.String(), "MAZ+Analysis") {
		t.Errorf("Figure6 output missing analysis panels:\n%.400s", buf.String())
	}
	buf.Reset()
	h.Figure7(&buf)
	if !strings.Contains(buf.String(), "Sync (%)") {
		t.Errorf("Figure7 output:\n%.400s", buf.String())
	}
}

func TestHarnessDefaults(t *testing.T) {
	h := NewHarness(Options{})
	if h.Opts.Scale != 1.0 || h.Opts.Repeats != 1 || h.Opts.Fig10Events == 0 || len(h.Opts.Fig10Threads) == 0 {
		t.Errorf("defaults not applied: %+v", h.Opts)
	}
	d := Defaults()
	if d.Repeats != 3 {
		t.Errorf("Defaults() = %+v", d)
	}
}
