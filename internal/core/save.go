package core

import (
	"treeclock/internal/ckpt"
	"treeclock/internal/vt"
)

// Save implements vt.Clock: the two arrays of the paper's layout plus
// the scalars that steer future operations — root, mode, node count
// and the foreign-entry revision counter (which the weak-order
// quiet-release fast path reads, so it must survive a restore). The
// scratch buffers (gather, frames) hold no state between operations
// and are not saved.
func (c *TreeClock) Save(e *ckpt.Enc) {
	e.Int32(c.k)
	e.Int32(int32(c.root))
	e.U8(uint8(c.mode))
	e.Int32(c.nodes)
	e.U64(c.rev)
	for i := 0; i < int(c.k); i++ {
		e.Svarint(int64(c.clk[i]))
	}
	for i := 0; i < int(c.k); i++ {
		s := &c.sh[i]
		e.Svarint(int64(s.aclk))
		e.Int32(int32(s.par))
		e.Int32(int32(s.head))
		e.Int32(int32(s.nxt))
		e.Int32(int32(s.prv))
	}
}

// loadLink decodes one tree link, rejecting anything outside the
// sentinel range and the thread universe so a restored tree can never
// index out of bounds.
func loadLink(d *ckpt.Dec, k int32) vt.TID {
	t := d.Int32()
	if t < int32(notIn) || t >= k {
		d.Corruptf("tree link %d outside [-2, %d)", t, k)
		return notIn
	}
	return vt.TID(t)
}

// Load implements vt.Clock, replacing the clock's contents (Init must
// not have attached anything the caller wants to keep). Link fields
// are range-checked; structural garbage that survives the checksum
// yields a wrong clock, never a panic.
func (c *TreeClock) Load(d *ckpt.Dec) {
	k := d.Int32()
	root := d.Int32()
	mode := Mode(d.U8())
	nodes := d.Int32()
	rev := d.U64()
	if d.Err() != nil {
		return
	}
	if k < 0 || int64(k) > 1<<26 {
		d.Corruptf("tree clock capacity %d out of range", k)
		return
	}
	if root < int32(none) || root >= k {
		d.Corruptf("tree clock root %d outside [-1, %d)", root, k)
		return
	}
	if nodes < 0 || nodes > k {
		d.Corruptf("tree clock node count %d outside [0, %d]", nodes, k)
		return
	}
	if mode > ModeDeepCopy {
		d.Corruptf("tree clock mode %d unknown", mode)
		return
	}
	clk := make([]vt.Time, k)
	for i := range clk {
		clk[i] = vt.Time(d.Svarint())
	}
	sh := make([]shape, k)
	for i := range sh {
		sh[i] = shape{
			aclk: vt.Time(d.Svarint()),
			par:  loadLink(d, k),
			head: loadLink(d, k),
			nxt:  loadLink(d, k),
			prv:  loadLink(d, k),
		}
	}
	if d.Err() != nil {
		return
	}
	c.k, c.root, c.mode, c.nodes, c.rev = k, vt.TID(root), mode, nodes, rev
	c.clk, c.sh = clk, sh
}
