package core

import (
	"fmt"

	"treeclock/internal/vt"
)

// Validate checks every structural invariant of the tree clock and
// returns a descriptive error for the first violation. It is O(k) and
// intended for tests (model-based and differential suites call it after
// every operation).
//
// Invariants:
//  1. An empty clock has no present nodes.
//  2. The root is present with parent == none.
//  3. Every present node is reachable from the root exactly once, and
//     no absent node appears in any child list (no cycles, no leaks).
//  4. Child lists are consistent doubly-linked lists whose parent
//     pointers match.
//  5. Child lists are sorted by non-increasing attachment time, and no
//     attachment time exceeds the parent's current local time.
//  6. Absent nodes carry a zero local time (Get must report 0).
func (c *TreeClock) Validate() error {
	present := 0
	for t := int32(0); t < c.k; t++ {
		if c.sh[t].par != notIn {
			present++
		} else if c.clk[t] != 0 {
			return fmt.Errorf("absent thread %d has nonzero clk %d", t, c.clk[t])
		}
	}
	if present != int(c.nodes) {
		return fmt.Errorf("incremental node count %d, but %d nodes present", c.nodes, present)
	}
	if c.root == none {
		if present != 0 {
			return fmt.Errorf("empty clock has %d present nodes", present)
		}
		return nil
	}
	if c.sh[c.root].par != none {
		return fmt.Errorf("root %d has parent %d", c.root, c.sh[c.root].par)
	}
	seen := make([]bool, c.k)
	stack := []vt.TID{c.root}
	visited := 0
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			return fmt.Errorf("thread %d reached twice (cycle or shared child)", u)
		}
		seen[u] = true
		visited++
		if visited > int(c.k) {
			return fmt.Errorf("traversal exceeded %d nodes (cycle)", c.k)
		}
		prev := none
		var prevAclk vt.Time
		for v := c.sh[u].head; v != none; v = c.sh[v].nxt {
			if c.sh[v].par == notIn {
				return fmt.Errorf("absent thread %d linked as child of %d", v, u)
			}
			if c.sh[v].par != u {
				return fmt.Errorf("child %d of %d has parent %d", v, u, c.sh[v].par)
			}
			if c.sh[v].prv != prev {
				return fmt.Errorf("child %d of %d has prv %d, want %d", v, u, c.sh[v].prv, prev)
			}
			if v == c.root {
				return fmt.Errorf("root %d appears in child list of %d", v, u)
			}
			if prev != none && c.sh[v].aclk > prevAclk {
				return fmt.Errorf("children of %d not in descending aclk order: %d (aclk %d) after %d (aclk %d)",
					u, v, c.sh[v].aclk, prev, prevAclk)
			}
			if c.sh[v].aclk > c.clk[u] {
				return fmt.Errorf("child %d of %d attached at %d, beyond parent clock %d",
					v, u, c.sh[v].aclk, c.clk[u])
			}
			prev, prevAclk = v, c.sh[v].aclk
			stack = append(stack, v)
		}
	}
	if visited != present {
		return fmt.Errorf("%d nodes present but %d reachable from root", present, visited)
	}
	return nil
}
