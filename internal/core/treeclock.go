// Package core implements the tree clock data structure, the primary
// contribution of the reproduced paper (ASPLOS 2022, Algorithm 2).
//
// A tree clock represents the same vector time as a vector clock, but
// stores it as a rooted tree: each node holds a thread's local time
// (clk) and the time its parent had when it learned that value (aclk,
// the attachment time). The tree records how knowledge was obtained
// transitively, which lets Join and MonotoneCopy skip the parts of the
// timestamp that cannot have changed:
//
//   - direct monotonicity: if a node has not progressed relative to the
//     target clock, none of its descendants have, so the whole subtree
//     is skipped;
//   - indirect monotonicity: children are kept in descending attachment
//     time, so as soon as a child's attachment time is already known to
//     the target, all later siblings are known too and scanning stops.
//
// The layout follows the paper's implementation note ("two arrays of
// length k"): timestamps live in a dense array indexed by thread id,
// exactly like a vector clock, and the tree shape (attachment times and
// intrusive child-list links, kept in descending-aclk order) lives in a
// second array. The thread map is the array index. All traversals are
// iterative.
//
// # The Grow contract
//
// The thread capacity k is a lower bound, not a fixed universe: Grow(k)
// appends zero entries to the clk array and absent (notIn) entries to
// the shape array, preserving the existing tree. Get on a thread at or
// beyond the capacity reports 0 (an unknown thread has the zero local
// time), and Join/MonotoneCopy/CopyCheckMonotone accept operands of any
// capacity, growing the receiver first when the operand is larger.
// Growth never changes the represented vector time, so engines can
// discover threads mid-trace (the streaming runtime in internal/engine
// relies on this) without invalidating any clock state.
package core

import (
	"fmt"

	"treeclock/internal/vt"
)

// Sentinels used in the link fields.
const (
	none  vt.TID = -1 // absent link / root parent
	notIn vt.TID = -2 // thread not yet present in the tree
)

// Mode selects an ablation variant of the data structure. The default
// (ModeFull) is the paper's algorithm; the other modes disable one of
// the two pruning ideas and exist only for the ablation benchmarks.
type Mode uint8

const (
	// ModeFull is the complete algorithm of the paper.
	ModeFull Mode = iota
	// ModeNoIndirectBreak disables the sibling early-break (indirect
	// monotonicity): joins and copies still skip unprogressed subtrees
	// but scan every sibling list to the end.
	ModeNoIndirectBreak
	// ModeDeepCopy replaces MonotoneCopy with a full O(k) structural
	// copy, isolating the benefit of the monotone copy optimization.
	ModeDeepCopy
)

// shape is the tree-shape half of one entry: attachment time and the
// intrusive child-list links. Thread identity is the array index.
type shape struct {
	aclk vt.Time // parent's time when this node was attached
	par  vt.TID  // parent thread; none for the root; notIn if absent
	head vt.TID  // first child (largest aclk), none if leaf
	nxt  vt.TID  // next sibling (smaller aclk), none at end
	prv  vt.TID  // previous sibling, none at front
}

// TreeClock is a tree clock over a fixed universe of k threads.
// It implements vt.Clock[*TreeClock].
//
// The zero vector time is represented by an empty tree (root == none);
// this is the state of auxiliary clocks (locks, variables) before their
// first MonotoneCopy, matching the paper's note that only thread clocks
// run Init.
type TreeClock struct {
	k     int32
	root  vt.TID
	mode  Mode
	nodes int32 // threads present in the tree, maintained on attach

	// Following the paper's implementation note, the clock is "two
	// arrays of length k": clk holds the integer timestamps exactly
	// like a vector clock (hot, dense — the entire array spans a
	// handful of cache lines), and sh encodes the tree shape (touched
	// only for nodes being repositioned).
	clk []vt.Time
	sh  []shape

	// Scratch buffers reused across operations so that steady-state
	// joins and copies allocate nothing. Their element types are
	// defined alongside the traversal in join.go.
	gather []rec
	frames []frame

	// rev advances whenever a foreign entry may have changed (see
	// vt.Clock.Rev). Inc and Grow leave it alone: they never touch a
	// foreign entry.
	rev uint64

	stats *vt.WorkStats
}

// Rev implements vt.Clock. The counter is bumped by Join past its O(1)
// no-progress exit, and by every copy path; no-op joins — the common
// case on self-synchronizing workloads — leave it unchanged, which is
// what makes the weak-order snapshot's quiet-release fast path fire.
func (c *TreeClock) Rev() uint64 { return c.rev }

// New returns an empty tree clock over k threads (k may be 0 for a
// clock that grows on demand). If stats is non-nil, every operation
// accumulates work counters into it.
func New(k int, stats *vt.WorkStats) *TreeClock {
	if k < 0 {
		panic("core: tree clock needs a non-negative thread count")
	}
	c := &TreeClock{
		k:     int32(k),
		root:  none,
		clk:   make([]vt.Time, k),
		sh:    make([]shape, k),
		stats: stats,
	}
	for i := range c.sh {
		c.sh[i] = shape{par: notIn, head: none, nxt: none, prv: none}
	}
	return c
}

// Factory returns a capacity-aware vt.Factory producing tree clocks
// sharing stats (which may be nil).
func Factory(stats *vt.WorkStats) vt.Factory[*TreeClock] {
	return func(k int) *TreeClock { return New(k, stats) }
}

// FactoryMode is Factory with an explicit ablation mode.
func FactoryMode(stats *vt.WorkStats, m Mode) vt.Factory[*TreeClock] {
	return func(k int) *TreeClock {
		c := New(k, stats)
		c.mode = m
		return c
	}
}

// K returns the current thread capacity.
func (c *TreeClock) K() int { return int(c.k) }

// Grow extends the thread capacity to at least k: the clk array gains
// zero entries and the shape array gains absent (notIn) entries, so the
// represented vector time is unchanged. Amortized O(1) per entry.
func (c *TreeClock) Grow(k int) {
	if k <= int(c.k) {
		return
	}
	c.clk = vt.GrowSlice(c.clk, k)
	c.sh = vt.GrowSlice(c.sh, k)
	for i := int(c.k); i < k; i++ {
		c.sh[i] = shape{par: notIn, head: none, nxt: none, prv: none}
	}
	c.k = int32(k)
}

// Root returns the thread at the root, or vt.None for an empty clock.
func (c *TreeClock) Root() vt.TID { return c.root }

// Init makes the clock belong to thread t: t becomes the root with
// local time 0, growing the capacity to at least t+1. Only thread
// clocks are initialized (paper, Init note).
func (c *TreeClock) Init(t vt.TID) {
	if c.root != none {
		panic("core: Init on a non-empty tree clock")
	}
	c.Grow(int(t) + 1)
	c.root = t
	c.sh[t].par = none
	c.nodes++
}

// Get returns the recorded local time of thread t in O(1) (Remark 1).
// Absent threads — including threads at or beyond the capacity — have
// time 0.
func (c *TreeClock) Get(t vt.TID) vt.Time {
	if int(t) >= int(c.k) {
		return 0
	}
	return c.clk[t]
}

// Inc adds d to the owning thread's local time. t must be the root
// thread (the engine's own thread); the parameter mirrors the vector
// clock signature.
func (c *TreeClock) Inc(t vt.TID, d vt.Time) {
	if t != c.root {
		panic("core: Inc on a thread that does not own this clock")
	}
	c.clk[t] += d
	if c.stats != nil {
		c.stats.Entries++
		c.stats.Changed++
	}
}

// ReleaseSlot implements vt.Clock: erase thread t's component, as if
// t had never been seen. Structurally the node is spliced out of the
// tree: its children are reattached to its parent, in place of t in
// the child list, all at t's own attachment time. That preserves both
// tree-clock invariants — the list stays in descending attachment
// order (t's neighbours bracket aclk(t)), and the pruning property
// holds inductively: any clock knowing t's parent at ≥ aclk(t) knew t
// at ≥ clk(t) (the property for t), hence knew each child v at
// ≥ clk(v) (the property for t's children, whose attachment times are
// ≤ clk(t)). Releasing the root (the owning thread) panics; absent or
// out-of-capacity slots are a no-op.
func (c *TreeClock) ReleaseSlot(t vt.TID) {
	if int(t) < 0 || int(t) >= int(c.k) || c.sh[t].par == notIn {
		return
	}
	if t == c.root {
		panic("core: ReleaseSlot on the clock's own thread")
	}
	st := c.sh[t]
	last := st.head
	for v := st.head; v != none; v = c.sh[v].nxt {
		c.sh[v].par = st.par
		c.sh[v].aclk = st.aclk
		last = v
	}
	first := st.head
	if first == none { // leaf: the splice degenerates to an unlink
		first, last = st.nxt, st.prv
	} else {
		c.sh[first].prv = st.prv
		c.sh[last].nxt = st.nxt
		if st.nxt != none {
			c.sh[st.nxt].prv = last
		}
	}
	if st.prv != none {
		c.sh[st.prv].nxt = first
	} else {
		c.sh[st.par].head = first
	}
	if st.head == none && st.nxt != none { // leaf unlink: fix the right link
		c.sh[st.nxt].prv = st.prv
	}
	c.clk[t] = 0
	c.sh[t] = shape{par: notIn, head: none, nxt: none, prv: none}
	c.nodes--
	c.rev++
}

// LessEqFast reports whether this clock's vector time is ⊑ o's using
// only the root entry (O(1)). The test is valid for clocks maintained
// by a partial-order engine, where direct monotonicity (Lemma 3) makes
// the root entry decisive; it is not a general vector comparison — use
// Vector(...).LessEq for arbitrary clocks.
func (c *TreeClock) LessEqFast(o *TreeClock) bool {
	if c.root == none {
		return true
	}
	return c.clk[c.root] <= o.Get(c.root)
}

// Vector writes the represented vector time into dst and returns it.
func (c *TreeClock) Vector(dst vt.Vector) vt.Vector {
	copy(dst, c.clk)
	return dst
}

// VectorView returns the tree clock's flat mirror without copying:
// the clock maintains clk as an exact per-thread image of the tree, so
// the view is O(1). Valid only until the next mutation.
func (c *TreeClock) VectorView() []vt.Time { return c.clk }

// NumNodes returns how many threads are present in the tree. The count
// is maintained incrementally as nodes are attached (a node, once
// present, never leaves the tree), so the call is O(1) — it sits on
// stats paths that may run per event.
func (c *TreeClock) NumNodes() int { return int(c.nodes) }

// String renders the tree in (tid,clk,aclk) form, pre-order. The walk
// is iterative with an explicit stack, like every other traversal in
// this package, so degenerate chain-shaped trees of any depth render
// without growing the goroutine stack.
func (c *TreeClock) String() string {
	if c.root == none {
		return "<empty>"
	}
	var out []byte
	type strFrame struct {
		u     vt.TID
		depth int
	}
	stack := []strFrame{{c.root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i := 0; i < f.depth; i++ {
			out = append(out, ' ', ' ')
		}
		if f.u == c.root {
			out = append(out, fmt.Sprintf("(t%d, %d, _)\n", f.u, c.clk[f.u])...)
		} else {
			out = append(out, fmt.Sprintf("(t%d, %d, %d)\n", f.u, c.clk[f.u], c.sh[f.u].aclk)...)
		}
		// Push children in reverse sibling order so the pre-order visit
		// matches the child-list (descending-aclk) order.
		mark := len(stack)
		for v := c.sh[f.u].head; v != none; v = c.sh[v].nxt {
			stack = append(stack, strFrame{v, f.depth + 1})
		}
		for i, j := mark, len(stack)-1; i < j; i, j = i+1, j-1 {
			stack[i], stack[j] = stack[j], stack[i]
		}
	}
	return string(out)
}
