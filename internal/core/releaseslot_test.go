package core

import (
	"math/rand"
	"testing"

	"treeclock/internal/vt"
)

// ReleaseSlot tests: erasing a dead thread's component must leave the
// tree a valid tree clock whose vector time equals the mirror with
// that entry zeroed, across every structural position of the released
// node (leaf, interior, child of root). Releases happen only once a
// clock will no longer join sources carrying the released thread —
// the precondition the vt.Clock contract places on callers — so the
// protocol below releases at quiescence.

// buildRandom grows a tree clock (and its vector mirror) through a
// random join protocol over k threads, returning clocks whose shapes
// cover leaves, chains and bushy interiors.
func buildRandom(t *testing.T, r *rand.Rand, k, steps int) ([]*TreeClock, []vt.Vector) {
	t.Helper()
	clocks := make([]*TreeClock, k)
	mirror := make([]vt.Vector, k)
	for i := range clocks {
		clocks[i] = New(k, nil)
		clocks[i].Init(vt.TID(i))
		mirror[i] = vt.NewVector(k)
	}
	for s := 0; s < steps; s++ {
		i := r.Intn(k)
		clocks[i].Inc(vt.TID(i), 1)
		mirror[i][i]++
		if j := r.Intn(k); j != i {
			clocks[i].Join(clocks[j])
			mirror[i].Join(mirror[j])
		}
	}
	for i := range clocks {
		if err := clocks[i].Validate(); err != nil {
			t.Fatalf("clock %d invalid after build: %v", i, err)
		}
		if got := clocks[i].Vector(vt.NewVector(k)); !got.Equal(mirror[i]) {
			t.Fatalf("clock %d diverged from mirror before any release: %v vs %v", i, got, mirror[i])
		}
	}
	return clocks, mirror
}

// TestReleaseSlotRandom releases every foreign slot of every clock in
// random order, checking validity and vector equality after each
// erasure — the random shapes exercise the leaf unlink and the
// interior child-splice paths alike.
func TestReleaseSlotRandom(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		k := 3 + r.Intn(10)
		clocks, mirror := buildRandom(t, r, k, 40+r.Intn(200))
		for i := range clocks {
			order := r.Perm(k)
			for _, x := range order {
				if x == i {
					continue
				}
				clocks[i].ReleaseSlot(vt.TID(x))
				mirror[i][x] = 0
				if err := clocks[i].Validate(); err != nil {
					t.Fatalf("seed %d: clock %d invalid after releasing %d: %v", seed, i, x, err)
				}
				if got := clocks[i].Vector(vt.NewVector(k)); !got.Equal(mirror[i]) {
					t.Fatalf("seed %d: clock %d after releasing %d: %v, want %v", seed, i, x, got, mirror[i])
				}
				if got := clocks[i].Get(vt.TID(x)); got != 0 {
					t.Fatalf("seed %d: clock %d still reports %d for released %d", seed, i, got, x)
				}
			}
		}
	}
}

// TestReleaseSlotRepopulate pins the "capacity unchanged" clause: a
// released slot joined back in from a clock that still carries it
// reappears with the source's value.
func TestReleaseSlotRepopulate(t *testing.T) {
	const k = 4
	a := New(k, nil)
	a.Init(0)
	b := New(k, nil)
	b.Init(1)
	b.Inc(1, 3)
	a.Join(b)
	a.ReleaseSlot(1)
	if got := a.Get(1); got != 0 {
		t.Fatalf("released entry reads %d", got)
	}
	b.Inc(1, 2)
	a.Join(b)
	if got := a.Get(1); got != 5 {
		t.Fatalf("repopulated entry reads %d, want 5", got)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseSlotNoop pins the no-op cases: absent, zero and
// out-of-range slots.
func TestReleaseSlotNoop(t *testing.T) {
	c := New(3, nil)
	c.Init(0)
	c.Inc(0, 2)
	before := c.Vector(vt.NewVector(3))
	c.ReleaseSlot(1)          // never seen
	c.ReleaseSlot(vt.TID(99)) // beyond capacity
	c.ReleaseSlot(vt.TID(-1)) // negative
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.Vector(vt.NewVector(3)); !got.Equal(before) {
		t.Fatalf("no-op releases changed the clock: %v vs %v", got, before)
	}
}

// TestReleaseSlotOwnPanics pins that erasing the owner's component is
// a caller bug, not a silent corruption.
func TestReleaseSlotOwnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("releasing the clock's own slot did not panic")
		}
	}()
	c := New(2, nil)
	c.Init(0)
	c.Inc(0, 1)
	c.ReleaseSlot(0)
}
