package core

import (
	"fmt"
	"math/rand"
	"testing"

	"treeclock/internal/vt"
)

// model_test mirrors every tree clock against a plain vt.Vector while a
// randomized driver exercises the clocks exactly the way the paper's
// algorithms do (HB protocol for Join/MonotoneCopy, SHB protocol for
// CopyCheckMonotone). After every operation the tree must represent the
// same vector time as the mirror and pass structural validation.

// hbModel drives k thread clocks and l lock clocks under the HB
// protocol: only free locks are acquired, only held locks are released,
// so every MonotoneCopy precondition is honoured (Lemma 2).
type hbModel struct {
	t       *testing.T
	r       *rand.Rand
	k, l    int
	threads []*TreeClock
	locks   []*TreeClock
	mThr    []vt.Vector // mirrors of thread clocks
	mLck    []vt.Vector // mirrors of lock clocks
	holder  []int       // lock -> thread holding it, -1 if free
	held    [][]int     // thread -> locks currently held
	stats   *vt.WorkStats
}

func newHBModel(t *testing.T, r *rand.Rand, k, l int, stats *vt.WorkStats) *hbModel {
	m := &hbModel{t: t, r: r, k: k, l: l, stats: stats}
	m.threads = make([]*TreeClock, k)
	m.mThr = make([]vt.Vector, k)
	for i := 0; i < k; i++ {
		m.threads[i] = New(k, stats)
		m.threads[i].Init(vt.TID(i))
		m.mThr[i] = vt.NewVector(k)
	}
	m.locks = make([]*TreeClock, l)
	m.mLck = make([]vt.Vector, l)
	m.holder = make([]int, l)
	for i := 0; i < l; i++ {
		m.locks[i] = New(k, stats)
		m.mLck[i] = vt.NewVector(k)
		m.holder[i] = -1
	}
	m.held = make([][]int, k)
	return m
}

func (m *hbModel) check(label string, c *TreeClock, mirror vt.Vector) {
	m.t.Helper()
	if err := c.Validate(); err != nil {
		m.t.Fatalf("%s: invalid tree: %v\n%s", label, err, c)
	}
	got := c.Vector(vt.NewVector(m.k))
	if !got.Equal(mirror) {
		m.t.Fatalf("%s: tree clock %v, mirror %v\n%s", label, got, mirror, c)
	}
}

// step performs one random event and cross-checks the touched clocks.
func (m *hbModel) step(i int) {
	t := m.r.Intn(m.k)
	// Increment: every event bumps the thread's local time first.
	m.threads[t].Inc(vt.TID(t), 1)
	m.mThr[t][t]++

	switch m.r.Intn(3) {
	case 0: // local event: increment only
	case 1: // acquire a free lock, if any
		l := m.r.Intn(m.l)
		if m.holder[l] != -1 {
			break
		}
		m.holder[l] = t
		m.held[t] = append(m.held[t], l)
		m.threads[t].Join(m.locks[l])
		m.mThr[t].Join(m.mLck[l])
	case 2: // release one of our held locks, if any
		if len(m.held[t]) == 0 {
			break
		}
		j := m.r.Intn(len(m.held[t]))
		l := m.held[t][j]
		m.held[t] = append(m.held[t][:j], m.held[t][j+1:]...)
		m.holder[l] = -1
		m.locks[l].MonotoneCopy(m.threads[t])
		m.mLck[l].CopyFrom(m.mThr[t])
		m.check(fmt.Sprintf("step %d: lock %d after release", i, l), m.locks[l], m.mLck[l])
	}
	m.check(fmt.Sprintf("step %d: thread %d", i, t), m.threads[t], m.mThr[t])
}

func TestModelHBProtocol(t *testing.T) {
	for _, cfg := range []struct{ k, l, steps int }{
		{2, 1, 400},
		{3, 2, 600},
		{5, 3, 1500},
		{8, 4, 2500},
		{16, 8, 4000},
		{32, 5, 4000},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("k=%d_l=%d", cfg.k, cfg.l), func(t *testing.T) {
			var st vt.WorkStats
			r := rand.New(rand.NewSource(int64(cfg.k*1000 + cfg.l)))
			m := newHBModel(t, r, cfg.k, cfg.l, &st)
			for i := 0; i < cfg.steps; i++ {
				m.step(i)
			}
			if st.ForcedRootAttach != 0 {
				t.Errorf("ForcedRootAttach = %d; the paper's invariant should make this 0", st.ForcedRootAttach)
			}
		})
	}
}

// TestModelHBProtocolAblations runs the same model under the ablation
// modes: disabling a pruning rule must never change the represented
// vector times, only the work performed.
func TestModelHBProtocolAblations(t *testing.T) {
	for _, mode := range []Mode{ModeNoIndirectBreak, ModeDeepCopy} {
		mode := mode
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			r := rand.New(rand.NewSource(99))
			m := newHBModel(t, r, 6, 3, nil)
			for _, c := range m.threads {
				c.mode = mode
			}
			for _, c := range m.locks {
				c.mode = mode
			}
			for i := 0; i < 2000; i++ {
				m.step(i)
			}
		})
	}
}

// TestModelSHBProtocol adds per-variable last-write clocks driven by
// CopyCheckMonotone, exercising both the sublinear monotone path and
// the deep-copy fallback (which occurs exactly on write-write races).
func TestModelSHBProtocol(t *testing.T) {
	const k, l, nv, steps = 6, 2, 4, 4000
	var st vt.WorkStats
	r := rand.New(rand.NewSource(7))
	m := newHBModel(t, r, k, l, &st)
	lw := make([]*TreeClock, nv)
	mLW := make([]vt.Vector, nv)
	for i := range lw {
		lw[i] = New(k, &st)
		mLW[i] = vt.NewVector(k)
	}
	deep := 0
	for i := 0; i < steps; i++ {
		m.step(i)
		t2 := r.Intn(k)
		x := r.Intn(nv)
		// Every event increments its thread's local time first
		// (footnote 1); attachment times are meaningless otherwise.
		m.threads[t2].Inc(vt.TID(t2), 1)
		m.mThr[t2][t2]++
		switch r.Intn(2) {
		case 0: // read: C_t ← C_t ⊔ LW_x
			m.threads[t2].Join(lw[x])
			m.mThr[t2].Join(mLW[x])
			m.check(fmt.Sprintf("step %d: read thread %d", i, t2), m.threads[t2], m.mThr[t2])
		case 1: // write: LW_x ← C_t (monotone or not)
			was := lw[x].CopyCheckMonotone(m.threads[t2])
			wantMonotone := mLW[x].LessEq(m.mThr[t2])
			if was != wantMonotone {
				t.Fatalf("step %d: CopyCheckMonotone = %v, mirror says %v", i, was, wantMonotone)
			}
			if !was {
				deep++
			}
			mLW[x].CopyFrom(m.mThr[t2])
			m.check(fmt.Sprintf("step %d: LW %d", i, x), lw[x], mLW[x])
		}
	}
	if deep == 0 {
		t.Error("expected at least one non-monotone copy in a racy random run")
	}
}

// TestModelWorkChangedMatchesMirror verifies the VTWork accounting: the
// Changed counter must equal the number of vector entries that actually
// changed, computed independently from the mirrors.
func TestModelWorkChangedMatchesMirror(t *testing.T) {
	const k, l, steps = 5, 3, 2000
	var st vt.WorkStats
	r := rand.New(rand.NewSource(21))
	m := newHBModel(t, r, k, l, &st)
	// Independent recount: drive a second mirror set alongside and sum
	// diffs. The hbModel already updates mirrors with Join (which
	// reports changes) — recompute by snapshotting before/after.
	var independent uint64
	snapshotAll := func() []vt.Vector {
		all := make([]vt.Vector, 0, k+l)
		for _, v := range m.mThr {
			all = append(all, v.Clone())
		}
		for _, v := range m.mLck {
			all = append(all, v.Clone())
		}
		return all
	}
	before := snapshotAll()
	for i := 0; i < steps; i++ {
		m.step(i)
		after := snapshotAll()
		for j := range after {
			for x := range after[j] {
				if after[j][x] != before[j][x] {
					independent++
				}
			}
		}
		before = after
	}
	if st.Changed != independent {
		t.Errorf("WorkStats.Changed = %d, independent recount = %d", st.Changed, independent)
	}
}
