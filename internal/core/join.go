package core

import "treeclock/internal/vt"

// This file implements the paper's Algorithm 2: Join, MonotoneCopy and
// the helper routines getUpdatedNodesJoin / getUpdatedNodesCopy /
// detachNodes / attachNodes / pushChild. Three implementation choices
// beyond the paper's pseudocode (its own implementation applies the
// same ideas: "recursive routines have been made iterative", "two
// arrays of length k"):
//
//   - Traversals are iterative with an explicit frame stack, with a
//     fast path for leaves that skips the stack entirely.
//   - Detachment is fused into the gather traversal: a node is unlinked
//     from the receiver's tree the moment it is found to have
//     progressed. This is safe because gathering walks only the source
//     clock's links, never the receiver's, and unlinking nodes from a
//     doubly-linked child list keeps it consistent in any order.
//   - The gather stack records each node's new (clk, aclk, parent)
//     while the source node is hot in cache, so the attach pass only
//     writes to the receiver.
//
// All keep the operation-for-operation behaviour of Algorithm 2 (the
// same nodes are compared, detached and attached); the model-based and
// differential tests pin that down.

// rec is one gathered node: the thread, its new time, and its position
// in the source tree. par is none for the source's root.
type rec struct {
	u    vt.TID
	par  vt.TID
	clk  vt.Time
	aclk vt.Time
}

// frame is one level of the iterative traversal: node u of the source,
// the next child v of u still to examine, and u's gathered record data.
type frame struct {
	u    vt.TID
	v    vt.TID
	par  vt.TID
	clk  vt.Time
	aclk vt.Time
}

// Join updates the clock to the pointwise maximum with o (c ← c ⊔ o).
//
// The traversal of o visits only nodes that may carry new information:
// it descends into a child only when that thread has progressed relative
// to c (direct monotonicity) and stops scanning a sibling list once an
// attachment time is already known to c (indirect monotonicity), so the
// cost is proportional to the entries being updated rather than Θ(k).
func (c *TreeClock) Join(o *TreeClock) {
	if o == c || o.root == none {
		return
	}
	zr := o.root
	if c.stats != nil {
		c.stats.Joins++
		c.stats.Entries++ // root progress test
	}
	if o.clk[zr] <= c.Get(zr) {
		// o's root has not progressed; by direct monotonicity
		// nothing in o is new (Algorithm 2, line 18).
		return
	}
	// Past the no-progress exit some foreign entry changes (zr ≠ this
	// clock's thread — see the panic below).
	c.rev++
	if c.root == none {
		// Joining into the zero vector time is a plain copy.
		c.deepCopyFrom(o)
		return
	}
	c.Grow(int(o.k))
	if zr == c.root {
		// Another clock claims a later local time for this clock's
		// own thread: knowledge of a thread always originates from
		// that thread's clock, so this cannot happen in a correct
		// protocol. Fail loudly rather than corrupt the tree.
		panic("core: Join source knows the receiver's own thread's future")
	}
	s, _ := c.gatherDetach(o, none)
	c.attach(s)
	// Place the updated subtree under the root, at the front of its
	// child list (its attachment time is the current root time, the
	// largest so far, preserving the descending-aclk order).
	c.sh[zr].aclk = c.clk[c.root]
	c.pushChild(zr, c.root)
	c.gather = s[:0]
}

// MonotoneCopy overwrites the clock with o, assuming this ⊑ o (Lemma 2
// guarantees the precondition at lock-release events). The traversal
// prunes exactly like Join; additionally the old root is repositioned so
// the new tree is rooted at o's thread.
func (c *TreeClock) MonotoneCopy(o *TreeClock) {
	if o == c || o.root == none {
		return
	}
	c.rev++
	if c.root == none {
		c.deepCopyFrom(o)
		return
	}
	if c.mode == ModeDeepCopy {
		c.deepCopyFrom(o)
		return
	}
	c.Grow(int(o.k))
	if c.stats != nil {
		c.stats.Copies++
	}
	oldRoot := c.root
	s, sawOldRoot := c.gatherDetach(o, oldRoot)
	c.attach(s)
	c.root = o.root
	if c.sh[c.root].par == notIn {
		c.nodes++
	}
	c.sh[c.root].par = none
	if !sawOldRoot && oldRoot != c.root {
		// Defensive: the traversal never visited the old root, which
		// would leave it dangling. Under the paper's protocols this
		// cannot happen (the old root is always reachable before any
		// sibling break — see Lemma 5); re-attach it conservatively
		// under the new root. An inflated attachment time only makes
		// future traversals prune less, never incorrectly.
		c.sh[oldRoot].aclk = c.clk[c.root]
		c.pushChild(oldRoot, c.root)
		if c.stats != nil {
			c.stats.ForcedRootAttach++
		}
	}
	c.gather = s[:0]
}

// CopyCheckMonotone overwrites the clock with o without assuming
// monotonicity. The O(1) root test (direct monotonicity) decides
// whether the sublinear MonotoneCopy applies; otherwise it falls back to
// a full deep copy. The boolean result is false exactly when the copy
// was not monotone, which in the SHB algorithm signals a write-write
// race, bounding the number of deep copies by the number of such races.
func (c *TreeClock) CopyCheckMonotone(o *TreeClock) bool {
	if c.root == none || (o.root != none && c.clk[c.root] <= o.Get(c.root)) {
		c.MonotoneCopy(o)
		return true
	}
	if c.stats != nil {
		c.stats.DeepCopies++
	}
	c.deepCopyFrom(o)
	return false
}

// gatherDetach performs the pre-order traversal of o, collecting in
// post-order (parents after their descendants) the threads that have
// progressed in o relative to c, and unlinking each from c's tree as it
// is found (getUpdatedNodesJoin/getUpdatedNodesCopy + detachNodes).
//
// For MonotoneCopy, z names c's current root: it is gathered even when
// unprogressed so it can be repositioned to mirror o's shape
// (Algorithm 2, line 67); Join passes z == none. The second result
// reports whether z was gathered (always true for Join).
func (c *TreeClock) gatherDetach(o *TreeClock, z vt.TID) ([]rec, bool) {
	s := c.gather[:0]
	fs := c.frames[:0]
	noBreak := c.mode == ModeNoIndirectBreak
	cclk, csh := c.clk, c.sh
	oclk, osh := o.clk, o.sh
	st := c.stats
	var entries uint64

	croot := c.root
	zr := o.root
	c.detach(zr)
	if z == zr {
		z = none // the roots coincide: nothing to reposition
	}
	fs = append(fs, frame{u: zr, v: osh[zr].head, par: none, clk: oclk[zr]})
outer:
	for len(fs) > 0 {
		f := &fs[len(fs)-1]
		u, v := f.u, f.v
		uclk := cclk[u]
		for v != none {
			entries++
			vclk := oclk[v]
			ov := &osh[v]
			if cclk[v] < vclk {
				// v has progressed: unlink it from c (direct
				// monotonicity covers the skipped case, not this
				// one).
				cv := &csh[v]
				if cv.par != notIn && v != croot {
					if cv.prv == none {
						csh[cv.par].head = cv.nxt
					} else {
						csh[cv.prv].nxt = cv.nxt
					}
					if cv.nxt != none {
						csh[cv.nxt].prv = cv.prv
					}
				}
				if v == z {
					z = none
				}
				if ov.head == none {
					// Leaf: gather immediately, no frame needed.
					s = append(s, rec{u: v, par: u, clk: vclk, aclk: ov.aclk})
					v = ov.nxt
					continue
				}
				f.v = ov.nxt
				fs = append(fs, frame{u: v, v: ov.head, par: u, clk: vclk, aclk: ov.aclk})
				continue outer
			}
			if v == z {
				// The old root must move even though it has not
				// progressed (line 67). It is c's root, so it is
				// not linked anywhere and needs no detach.
				s = append(s, rec{u: v, par: u, clk: vclk, aclk: ov.aclk})
				z = none
			}
			if !noBreak && ov.aclk <= uclk {
				// c already knows u at v's attachment time, so it
				// knows every later sibling too (indirect
				// monotonicity): stop scanning.
				break
			}
			v = ov.nxt
		}
		s = append(s, rec{u: u, par: f.par, clk: f.clk, aclk: f.aclk})
		fs = fs[:len(fs)-1]
	}
	if st != nil {
		st.Entries += entries
	}
	c.frames = fs[:0]
	return s, z == none
}

// detach unlinks thread v from its parent's child list in c. The root
// is never linked in a list; absent nodes have nothing to unlink.
func (c *TreeClock) detach(v vt.TID) {
	csh := c.sh
	nv := &csh[v]
	if nv.par == notIn || v == c.root {
		return
	}
	if nv.prv == none {
		csh[nv.par].head = nv.nxt
	} else {
		csh[nv.prv].nxt = nv.nxt
	}
	if nv.nxt != none {
		csh[nv.nxt].prv = nv.prv
	}
}

// attach pops the gathered records in reverse order (parents before
// their descendants), installs the new local times, and links each node
// under the same parent as in o. Because siblings are popped in
// ascending-aclk order and pushChild prepends, every rebuilt child list
// ends up in descending-aclk order, and kept children (attached earlier,
// hence with smaller attachment times — indirect monotonicity's
// contrapositive) stay correctly behind them.
func (c *TreeClock) attach(s []rec) {
	st := c.stats
	cclk, csh := c.clk, c.sh
	for i := len(s) - 1; i >= 0; i-- {
		r := &s[i]
		u := r.u
		if st != nil {
			st.Entries++
			if cclk[u] != r.clk {
				st.Changed++
			}
		}
		cclk[u] = r.clk
		if p := r.par; p != none {
			// pushChild(u, p) with the shape entry in hand.
			nu := &csh[u]
			if nu.par == notIn {
				c.nodes++
			}
			h := csh[p].head
			nu.aclk = r.aclk
			nu.par = p
			nu.nxt = h
			nu.prv = none
			if h != none {
				csh[h].prv = u
			}
			csh[p].head = u
		}
		// o's own root (par == none) is positioned by the caller:
		// under c's root for Join, as the new root for MonotoneCopy.
	}
}

// pushChild makes u the first child of p.
func (c *TreeClock) pushChild(u, p vt.TID) {
	csh := c.sh
	if csh[u].par == notIn {
		c.nodes++
	}
	h := csh[p].head
	csh[u].par = p
	csh[u].nxt = h
	csh[u].prv = none
	if h != none {
		csh[h].prv = u
	}
	csh[p].head = u
}

// deepCopyFrom overwrites c with a full structural copy of o in Θ(k).
// Used for copies into empty clocks (initialization) and as the
// non-monotone fallback of CopyCheckMonotone; only the fallback counts
// toward WorkStats.DeepCopies (§5.1 bounds it by write-write races).
// When the receiver's capacity exceeds the operand's, the tail entries
// are cleared (o represents 0 for every thread beyond its capacity).
func (c *TreeClock) deepCopyFrom(o *TreeClock) {
	c.rev++
	c.Grow(int(o.k))
	if c.stats != nil {
		c.stats.Entries += uint64(c.k)
		for t := int32(0); t < c.k; t++ {
			if c.clk[t] != o.Get(vt.TID(t)) {
				c.stats.Changed++
			}
		}
	}
	c.root = o.root
	c.nodes = o.nodes
	copy(c.clk, o.clk)
	copy(c.sh, o.sh)
	for t := int(o.k); t < int(c.k); t++ {
		c.clk[t] = 0
		c.sh[t] = shape{par: notIn, head: none, nxt: none, prv: none}
	}
}

var _ vt.Clock[*TreeClock] = (*TreeClock)(nil)
