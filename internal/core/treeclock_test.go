package core

import (
	"testing"

	"treeclock/internal/vt"
)

func vecOf(c *TreeClock) vt.Vector { return c.Vector(vt.NewVector(c.K())) }

func TestEmptyClock(t *testing.T) {
	c := New(4, nil)
	if c.Root() != vt.None {
		t.Errorf("empty clock root = %d", c.Root())
	}
	if got := c.Get(2); got != 0 {
		t.Errorf("Get on empty clock = %d, want 0", got)
	}
	if !vecOf(c).Equal(vt.Vector{0, 0, 0, 0}) {
		t.Errorf("empty clock vector = %v", vecOf(c))
	}
	if err := c.Validate(); err != nil {
		t.Errorf("empty clock invalid: %v", err)
	}
	if c.String() != "<empty>" {
		t.Errorf("String() = %q", c.String())
	}
	if c.NumNodes() != 0 {
		t.Errorf("NumNodes = %d", c.NumNodes())
	}
}

func TestInitIncGet(t *testing.T) {
	c := New(3, nil)
	c.Init(1)
	c.Inc(1, 1)
	c.Inc(1, 2)
	if got := c.Get(1); got != 3 {
		t.Errorf("Get(1) = %d, want 3", got)
	}
	if c.Root() != 1 {
		t.Errorf("Root = %d, want 1", c.Root())
	}
	if err := c.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
	if c.NumNodes() != 1 {
		t.Errorf("NumNodes = %d, want 1", c.NumNodes())
	}
}

func TestNewPanicsOnNegativeThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1, nil) must panic")
		}
	}()
	New(-1, nil)
}

func TestDoubleInitPanics(t *testing.T) {
	c := New(2, nil)
	c.Init(0)
	defer func() {
		if recover() == nil {
			t.Error("second Init must panic")
		}
	}()
	c.Init(1)
}

func TestIncWrongThreadPanics(t *testing.T) {
	c := New(2, nil)
	c.Init(0)
	defer func() {
		if recover() == nil {
			t.Error("Inc on non-owner thread must panic")
		}
	}()
	c.Inc(1, 1)
}

func TestJoinFromEmptyIsNoop(t *testing.T) {
	a := New(2, nil)
	a.Init(0)
	a.Inc(0, 3)
	empty := New(2, nil)
	a.Join(empty)
	if !vecOf(a).Equal(vt.Vector{3, 0}) {
		t.Errorf("join with empty changed vector: %v", vecOf(a))
	}
}

func TestJoinIntoEmptyDeepCopies(t *testing.T) {
	a := New(3, nil)
	a.Init(0)
	a.Inc(0, 2)
	b := New(3, nil)
	b.Join(a)
	if !vecOf(b).Equal(vt.Vector{2, 0, 0}) {
		t.Errorf("join into empty: %v", vecOf(b))
	}
	if b.Root() != 0 {
		t.Errorf("root after deep copy = %d", b.Root())
	}
	if err := b.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestSelfJoinAndSelfCopy(t *testing.T) {
	a := New(2, nil)
	a.Init(1)
	a.Inc(1, 4)
	a.Join(a)
	a.MonotoneCopy(a)
	if !vecOf(a).Equal(vt.Vector{0, 4}) {
		t.Errorf("self ops changed vector: %v", vecOf(a))
	}
}

func TestJoinFuturePanics(t *testing.T) {
	// A foreign clock claiming a later time for our own thread is a
	// protocol violation and must panic rather than corrupt the tree.
	a := New(2, nil)
	a.Init(0)
	a.Inc(0, 1)
	b := New(2, nil)
	b.Init(0)
	b.Inc(0, 5)
	defer func() {
		if recover() == nil {
			t.Error("joining our own future must panic")
		}
	}()
	a.Join(b)
}

func TestMonotoneCopyIntoEmpty(t *testing.T) {
	a := New(3, nil)
	a.Init(2)
	a.Inc(2, 1)
	lock := New(3, nil) // auxiliary clock: never Init'ed
	lock.MonotoneCopy(a)
	if !vecOf(lock).Equal(vt.Vector{0, 0, 1}) {
		t.Errorf("copy into empty: %v", vecOf(lock))
	}
	if lock.Root() != 2 {
		t.Errorf("root = %d, want 2", lock.Root())
	}
	if err := lock.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestCopyFromEmptyIsNoop(t *testing.T) {
	a := New(2, nil)
	a.Init(0)
	a.Inc(0, 2)
	empty := New(2, nil)
	a.MonotoneCopy(empty)
	if !vecOf(a).Equal(vt.Vector{2, 0}) {
		t.Errorf("copy from empty changed vector: %v", vecOf(a))
	}
}

// sync performs the paper's sync(ℓ) shorthand for thread t: one event
// that acquires and releases ℓ (local time +1, join, monotone copy).
func sync(threads []*TreeClock, locks []*TreeClock, t, l int) {
	threads[t].Inc(vt.TID(t), 1)
	threads[t].Join(locks[l])
	locks[l].MonotoneCopy(threads[t])
}

// TestFigure2aDirectMonotonicity replays the trace of Figure 2a and
// checks that thread t4's tree clock matches Figure 3 (left).
// Threads are 0-indexed: paper's t1..t4 are 0..3, ℓ1..ℓ3 are 0..2.
func TestFigure2aDirectMonotonicity(t *testing.T) {
	threads := make([]*TreeClock, 4)
	locks := make([]*TreeClock, 3)
	for i := range threads {
		threads[i] = New(4, nil)
		threads[i].Init(vt.TID(i))
	}
	for i := range locks {
		locks[i] = New(4, nil)
	}
	sync(threads, locks, 0, 0) // e1: t1 sync(ℓ1)
	sync(threads, locks, 1, 0) // e2: t2 sync(ℓ1)
	sync(threads, locks, 2, 0) // e3: t3 sync(ℓ1)
	sync(threads, locks, 1, 1) // e4: t2 sync(ℓ2)
	sync(threads, locks, 3, 1) // e5: t4 sync(ℓ2)
	sync(threads, locks, 2, 2) // e6: t3 sync(ℓ3)
	sync(threads, locks, 3, 2) // e7: t4 sync(ℓ3)

	c := threads[3]
	if err := c.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	// Figure 3 (left): root (t4,2,⊥) with children (t3,2,2), (t2,2,1);
	// t2 has child (t1,1,1).
	if !vecOf(c).Equal(vt.Vector{1, 2, 2, 2}) {
		t.Fatalf("t4 vector = %v, want [1, 2, 2, 2]", vecOf(c))
	}
	if c.Root() != 3 {
		t.Fatalf("root = %d", c.Root())
	}
	if c.sh[3].head != 2 || c.sh[2].nxt != 1 || c.sh[1].nxt != none {
		t.Errorf("root children = %d -> %d (want t3 then t2)\n%s", c.sh[3].head, c.sh[c.sh[3].head].nxt, c)
	}
	if c.sh[2].aclk != 2 || c.sh[1].aclk != 1 {
		t.Errorf("aclk(t3)=%d aclk(t2)=%d, want 2 and 1\n%s", c.sh[2].aclk, c.sh[1].aclk, c)
	}
	if c.sh[1].head != 0 || c.sh[0].aclk != 1 || c.clk[0] != 1 {
		t.Errorf("t2 subtree wrong: head=%d\n%s", c.sh[1].head, c)
	}
	if c.sh[2].head != none {
		t.Errorf("t3 should be a leaf\n%s", c)
	}
}

// TestFigure2bIndirectMonotonicity replays the trace of Figure 2b and
// checks thread t4's tree clock against Figure 3 (right), exercising
// the sibling early-break.
func TestFigure2bIndirectMonotonicity(t *testing.T) {
	threads := make([]*TreeClock, 4)
	locks := make([]*TreeClock, 3)
	for i := range threads {
		threads[i] = New(4, nil)
		threads[i].Init(vt.TID(i))
	}
	for i := range locks {
		locks[i] = New(4, nil)
	}
	sync(threads, locks, 0, 0) // e1: t1 sync(ℓ1)
	sync(threads, locks, 2, 0) // e2: t3 sync(ℓ1)
	sync(threads, locks, 1, 1) // e3: t2 sync(ℓ2)
	sync(threads, locks, 2, 1) // e4: t3 sync(ℓ2)
	sync(threads, locks, 3, 1) // e5: t4 sync(ℓ2)
	sync(threads, locks, 2, 2) // e6: t3 sync(ℓ3)
	sync(threads, locks, 3, 2) // e7: t4 sync(ℓ3)

	c := threads[3]
	if err := c.Validate(); err != nil {
		t.Fatalf("invalid tree: %v", err)
	}
	// Figure 3 (right): root (t4,2,⊥), child (t3,3,2); t3's children
	// (t2,1,2) then (t1,1,1).
	if !vecOf(c).Equal(vt.Vector{1, 1, 3, 2}) {
		t.Fatalf("t4 vector = %v, want [1, 1, 3, 2]", vecOf(c))
	}
	if c.sh[3].head != 2 || c.sh[2].nxt != none {
		t.Fatalf("root must have the single child t3\n%s", c)
	}
	if c.clk[2] != 3 || c.sh[2].aclk != 2 {
		t.Errorf("t3 node = (%d, %d), want (3, 2)\n%s", c.clk[2], c.sh[2].aclk, c)
	}
	if c.sh[2].head != 1 || c.sh[1].nxt != 0 || c.sh[0].nxt != none {
		t.Errorf("t3 children must be t2 then t1\n%s", c)
	}
	if c.sh[1].aclk != 2 || c.sh[0].aclk != 1 {
		t.Errorf("aclk(t2)=%d aclk(t1)=%d, want 2 and 1\n%s", c.sh[1].aclk, c.sh[0].aclk, c)
	}
}

// TestIndirectBreakSavesWork verifies that the e7 join of Figure 2b
// stops at the first already-known sibling: with work counters on, the
// join must compare strictly fewer entries than the no-break ablation.
func TestIndirectBreakSavesWork(t *testing.T) {
	run := func(mode Mode) uint64 {
		var st vt.WorkStats
		threads := make([]*TreeClock, 4)
		locks := make([]*TreeClock, 3)
		for i := range threads {
			threads[i] = New(4, &st)
			threads[i].mode = mode
			threads[i].Init(vt.TID(i))
		}
		for i := range locks {
			locks[i] = New(4, &st)
			locks[i].mode = mode
		}
		sync(threads, locks, 0, 0)
		sync(threads, locks, 2, 0)
		sync(threads, locks, 1, 1)
		sync(threads, locks, 2, 1)
		sync(threads, locks, 3, 1)
		sync(threads, locks, 2, 2)
		st.Reset() // isolate e7
		sync(threads, locks, 3, 2)
		return st.Entries
	}
	full := run(ModeFull)
	noBreak := run(ModeNoIndirectBreak)
	if full >= noBreak {
		t.Errorf("full mode compared %d entries, no-break %d: break saved nothing", full, noBreak)
	}
}

func TestCopyCheckMonotoneFallsBackToDeepCopy(t *testing.T) {
	var st vt.WorkStats
	a := New(3, &st)
	a.Init(0)
	a.Inc(0, 2)
	b := New(3, &st)
	b.Init(1)
	b.Inc(1, 5)
	// a = [2,0,0], b = [0,5,0]: incomparable.
	if a.CopyCheckMonotone(b) {
		t.Error("copy must report non-monotone")
	}
	if st.DeepCopies != 1 {
		t.Errorf("DeepCopies = %d, want 1", st.DeepCopies)
	}
	if !vecOf(a).Equal(vt.Vector{0, 5, 0}) {
		t.Errorf("vector after deep copy: %v", vecOf(a))
	}
	if a.Root() != 1 {
		t.Errorf("root after deep copy = %d", a.Root())
	}
	if err := a.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestLessEqFast(t *testing.T) {
	a := New(2, nil)
	a.Init(0)
	a.Inc(0, 1)
	b := New(2, nil)
	b.Init(1)
	b.Inc(1, 1)
	b.Join(a) // b = [1,1] rooted at t1
	if !a.LessEqFast(b) {
		t.Error("a ⊑ b must hold")
	}
	if b.LessEqFast(a) {
		t.Error("b ⊑ a must not hold")
	}
	empty := New(2, nil)
	if !empty.LessEqFast(a) {
		t.Error("empty ⊑ anything")
	}
}

func TestVectorSnapshotAfterOps(t *testing.T) {
	a := New(3, nil)
	a.Init(0)
	b := New(3, nil)
	b.Init(1)
	a.Inc(0, 1)
	b.Inc(1, 1)
	b.Join(a)
	a.Inc(0, 1)
	b.Inc(1, 1)
	a.Join(b)
	want := vt.Vector{2, 2, 0}
	if !vecOf(a).Equal(want) {
		t.Errorf("a = %v, want %v", vecOf(a), want)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestStringRendersTree(t *testing.T) {
	a := New(2, nil)
	a.Init(0)
	a.Inc(0, 1)
	b := New(2, nil)
	b.Init(1)
	b.Inc(1, 1)
	b.Join(a)
	s := b.String()
	if s == "" || s == "<empty>" {
		t.Errorf("String() = %q", s)
	}
}
