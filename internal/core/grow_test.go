package core

import (
	"testing"

	"treeclock/internal/vt"
)

func growVec(c *TreeClock, k int) vt.Vector {
	v := vt.NewVector(k)
	for t := 0; t < k; t++ {
		v[t] = c.Get(vt.TID(t))
	}
	return v
}

func TestGrowPreservesVectorTime(t *testing.T) {
	c := New(2, nil)
	c.Init(0)
	c.Inc(0, 5)
	o := New(2, nil)
	o.Init(1)
	o.Inc(1, 3)
	c.Join(o)
	before := growVec(c, 8)
	c.Grow(8)
	if c.K() != 8 {
		t.Fatalf("K() = %d after Grow(8)", c.K())
	}
	if got := growVec(c, 8); !got.Equal(before) {
		t.Errorf("Grow changed the vector time: %v -> %v", before, got)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("invalid after Grow: %v", err)
	}
	c.Grow(4) // shrink requests are no-ops
	if c.K() != 8 {
		t.Errorf("Grow(4) shrank the clock to %d", c.K())
	}
}

func TestGrowIncremental(t *testing.T) {
	c := New(0, nil)
	c.Init(0)
	for k := 1; k <= 40; k++ {
		c.Grow(k)
	}
	if c.K() != 40 {
		t.Fatalf("K() = %d", c.K())
	}
	c.Inc(0, 1)
	if c.Get(39) != 0 || c.Get(0) != 1 {
		t.Errorf("entries wrong after incremental growth: %v", growVec(c, 40))
	}
}

func TestGetBeyondCapacity(t *testing.T) {
	c := New(2, nil)
	c.Init(0)
	c.Inc(0, 7)
	if got := c.Get(17); got != 0 {
		t.Errorf("Get beyond capacity = %d, want 0", got)
	}
}

// TestJoinGrowsReceiver joins a larger-capacity clock into a smaller
// one and checks the result against a same-capacity baseline.
func TestJoinGrowsReceiver(t *testing.T) {
	small := New(1, nil)
	small.Init(0)
	small.Inc(0, 2)
	big := New(6, nil)
	big.Init(5)
	big.Inc(5, 4)
	small.Join(big)
	if small.K() < 6 {
		t.Fatalf("receiver did not grow: K() = %d", small.K())
	}
	want := vt.Vector{2, 0, 0, 0, 0, 4}
	if got := growVec(small, 6); !got.Equal(want) {
		t.Errorf("join across capacities = %v, want %v", got, want)
	}
	if err := small.Validate(); err != nil {
		t.Errorf("invalid after growing join: %v", err)
	}
}

// TestMonotoneCopyAcrossCapacities covers both directions: a smaller
// receiver grows, and a larger receiver clears its tail.
func TestMonotoneCopyAcrossCapacities(t *testing.T) {
	src := New(3, nil)
	src.Init(2)
	src.Inc(2, 9)

	smaller := New(1, nil)
	smaller.MonotoneCopy(src)
	if got := growVec(smaller, 3); !got.Equal(vt.Vector{0, 0, 9}) {
		t.Errorf("smaller receiver: %v", got)
	}

	larger := New(5, nil)
	larger.MonotoneCopy(src) // larger is zero, precondition holds
	if got := growVec(larger, 5); !got.Equal(vt.Vector{0, 0, 9, 0, 0}) {
		t.Errorf("larger receiver: %v", got)
	}
	if err := larger.Validate(); err != nil {
		t.Errorf("invalid after copy: %v", err)
	}
}

// TestCopyCheckMonotoneClearsStaleTail: a non-monotone copy from a
// smaller clock must not leave stale entries beyond the source's
// capacity.
func TestCopyCheckMonotoneClearsStaleTail(t *testing.T) {
	aux := New(6, nil)
	donor := New(6, nil)
	donor.Init(5)
	donor.Inc(5, 3)
	aux.MonotoneCopy(donor) // aux now knows t5@3

	src := New(2, nil)
	src.Init(1)
	src.Inc(1, 2)
	if aux.CopyCheckMonotone(src) {
		t.Error("copy reported monotone despite stale t5 entry")
	}
	if got := growVec(aux, 6); !got.Equal(vt.Vector{0, 2, 0, 0, 0, 0}) {
		t.Errorf("stale tail survived: %v", got)
	}
	if err := aux.Validate(); err != nil {
		t.Errorf("invalid after fallback copy: %v", err)
	}
}

func TestInitGrows(t *testing.T) {
	c := New(0, nil)
	c.Init(7)
	if c.K() != 8 || c.Root() != 7 {
		t.Errorf("Init(7) on empty clock: K=%d root=%d", c.K(), c.Root())
	}
	c.Inc(7, 1)
	if c.Get(7) != 1 {
		t.Errorf("Get(7) = %d", c.Get(7))
	}
}
