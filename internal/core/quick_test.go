package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treeclock/internal/vt"
)

// Property-based tests (testing/quick): each check drives a random
// HB/SHB-style protocol derived from a generated seed and asserts the
// data-structure invariants hold throughout.

// protocolRun replays `steps` random protocol operations over k threads,
// l locks and nv variables, mirroring every tree clock with a plain
// vector. It reports false on the first divergence or structural
// violation.
func protocolRun(seed int64, k, l, nv, steps int, mode Mode) bool {
	r := rand.New(rand.NewSource(seed))
	threads := make([]*TreeClock, k)
	mThr := make([]vt.Vector, k)
	var st vt.WorkStats
	for i := range threads {
		threads[i] = New(k, &st)
		threads[i].mode = mode
		threads[i].Init(vt.TID(i))
		mThr[i] = vt.NewVector(k)
	}
	locks := make([]*TreeClock, l)
	mLck := make([]vt.Vector, l)
	holder := make([]int, l)
	for i := range locks {
		locks[i] = New(k, &st)
		locks[i].mode = mode
		mLck[i] = vt.NewVector(k)
		holder[i] = -1
	}
	lw := make([]*TreeClock, nv)
	mLW := make([]vt.Vector, nv)
	for i := range lw {
		lw[i] = New(k, &st)
		lw[i].mode = mode
		mLW[i] = vt.NewVector(k)
	}
	held := make(map[int]int) // lock -> holding thread

	ok := func(c *TreeClock, m vt.Vector) bool {
		if c.Validate() != nil {
			return false
		}
		return c.Vector(vt.NewVector(k)).Equal(m)
	}

	for i := 0; i < steps; i++ {
		t := r.Intn(k)
		threads[t].Inc(vt.TID(t), 1)
		mThr[t][t]++
		switch r.Intn(5) {
		case 0: // local event only
		case 1: // acquire a free lock
			x := r.Intn(l)
			if holder[x] == -1 {
				holder[x] = t
				held[x] = t
				threads[t].Join(locks[x])
				mThr[t].Join(mLck[x])
			}
		case 2: // release a held lock
			for x, h := range held {
				if h == t {
					locks[x].MonotoneCopy(threads[t])
					mLck[x].CopyFrom(mThr[t])
					holder[x] = -1
					delete(held, x)
					if !ok(locks[x], mLck[x]) {
						return false
					}
					break
				}
			}
		case 3: // SHB read
			x := r.Intn(nv)
			threads[t].Join(lw[x])
			mThr[t].Join(mLW[x])
		case 4: // SHB write
			x := r.Intn(nv)
			monotone := lw[x].CopyCheckMonotone(threads[t])
			if monotone != mLW[x].LessEq(mThr[t]) {
				return false
			}
			mLW[x].CopyFrom(mThr[t])
			if !ok(lw[x], mLW[x]) {
				return false
			}
		}
		if !ok(threads[t], mThr[t]) {
			return false
		}
	}
	return st.ForcedRootAttach == 0
}

func TestQuickProtocolEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(9)
		return protocolRun(seed, k, 1+r.Intn(4), 1+r.Intn(4), 400, ModeFull)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickProtocolEquivalenceAblations(t *testing.T) {
	for _, mode := range []Mode{ModeNoIndirectBreak, ModeDeepCopy} {
		mode := mode
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed ^ int64(mode)))
			k := 2 + r.Intn(7)
			return protocolRun(seed, k, 1+r.Intn(3), 1+r.Intn(3), 300, mode)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("mode %d: %v", mode, err)
		}
	}
}

// Property: a join really is a least upper bound on the represented
// vector times, and is idempotent.
func TestQuickJoinIsLUB(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(8)
		// Build two clocks via a shared random protocol so their trees
		// are protocol-consistent (arbitrary clocks cannot be joined).
		threads := make([]*TreeClock, k)
		for i := range threads {
			threads[i] = New(k, nil)
			threads[i].Init(vt.TID(i))
		}
		lock := New(k, nil)
		holder := -1
		for i := 0; i < 200; i++ {
			t0 := r.Intn(k)
			threads[t0].Inc(vt.TID(t0), 1)
			switch {
			case holder == -1 && r.Intn(2) == 0:
				threads[t0].Join(lock) // acquire
				holder = t0
			case holder == t0:
				lock.MonotoneCopy(threads[t0]) // release (Lemma 2 holds)
				holder = -1
			}
		}
		a, b := threads[0], threads[1]
		va := a.Vector(vt.NewVector(k))
		vb := b.Vector(vt.NewVector(k))
		want := va.Clone()
		want.Join(vb)
		a.Join(b)
		got := a.Vector(vt.NewVector(k))
		if !got.Equal(want) {
			return false
		}
		a.Join(b) // idempotent
		return a.Vector(vt.NewVector(k)).Equal(want) && a.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
