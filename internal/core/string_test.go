package core

import (
	"fmt"
	"strings"
	"testing"

	"treeclock/internal/vt"
)

// recursiveString is the pre-iterative rendering, kept as the reference
// the iterative String must reproduce byte for byte.
func recursiveString(c *TreeClock) string {
	if c.root == none {
		return "<empty>"
	}
	var out []byte
	var rec func(u vt.TID, depth int)
	rec = func(u vt.TID, depth int) {
		for i := 0; i < depth; i++ {
			out = append(out, ' ', ' ')
		}
		if u == c.root {
			out = append(out, fmt.Sprintf("(t%d, %d, _)\n", u, c.clk[u])...)
		} else {
			out = append(out, fmt.Sprintf("(t%d, %d, %d)\n", u, c.clk[u], c.sh[u].aclk)...)
		}
		for v := c.sh[u].head; v != none; v = c.sh[v].nxt {
			rec(v, depth+1)
		}
	}
	rec(c.root, 0)
	return string(out)
}

// chainClock builds a degenerate chain-shaped clock of the given depth
// through the public protocol: thread i's clock joins thread i-1's, so
// each join hangs the previous chain under a new root. Only the final
// clock is returned.
func chainClock(depth int) *TreeClock {
	prev := New(0, nil)
	prev.Init(0)
	prev.Inc(0, 1)
	for t := 1; t < depth; t++ {
		c := New(0, nil)
		c.Init(vt.TID(t))
		c.Inc(vt.TID(t), 1)
		c.Join(prev)
		prev = c
	}
	return prev
}

// TestStringIterativeMatchesRecursive compares the iterative rendering
// against the recursive reference over assorted shapes.
func TestStringIterativeMatchesRecursive(t *testing.T) {
	shapes := map[string]*TreeClock{
		"empty": New(4, nil),
		"chain": chainClock(40),
	}
	single := New(3, nil)
	single.Init(1)
	single.Inc(1, 7)
	shapes["single"] = single
	// A bushy shape: several independent clocks joined into one root.
	star := New(0, nil)
	star.Init(0)
	star.Inc(0, 1)
	for u := 1; u < 8; u++ {
		o := New(0, nil)
		o.Init(vt.TID(u))
		o.Inc(vt.TID(u), vt.Time(u))
		star.Inc(0, 1)
		star.Join(o)
	}
	shapes["star"] = star
	for name, c := range shapes {
		if got, want := c.String(), recursiveString(c); got != want {
			t.Errorf("%s: iterative String diverges:\n%s\nvs recursive:\n%s", name, got, want)
		}
		if name != "empty" {
			if err := c.Validate(); err != nil {
				t.Errorf("%s: invalid clock: %v", name, err)
			}
		}
	}
}

// TestStringDeepChain renders a degenerate chain deep enough that a
// stack-recursive walk would be risky on adversarial inputs; the
// iterative walk must produce one line per node at strictly increasing
// depth.
func TestStringDeepChain(t *testing.T) {
	const depth = 2000
	c := chainClock(depth)
	if err := c.Validate(); err != nil {
		t.Fatalf("chain clock invalid: %v", err)
	}
	if c.NumNodes() != depth {
		t.Fatalf("NumNodes = %d, want %d", c.NumNodes(), depth)
	}
	s := c.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != depth {
		t.Fatalf("rendered %d lines, want %d", len(lines), depth)
	}
	for i, line := range lines {
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent != 2*i {
			t.Fatalf("line %d indented %d spaces, want %d (not a chain?)", i, indent, 2*i)
		}
		want := fmt.Sprintf("(t%d, 1, ", depth-1-i)
		if !strings.HasPrefix(line[indent:], want) {
			t.Fatalf("line %d = %q, want prefix %q", i, line[indent:], want)
		}
	}
}

// TestNumNodesIncremental walks a clock through the operations that
// attach nodes and checks the O(1) count against a direct scan of the
// shape array at every step.
func TestNumNodesIncremental(t *testing.T) {
	scan := func(c *TreeClock) int {
		n := 0
		for t := int32(0); t < c.k; t++ {
			if c.sh[t].par != notIn {
				n++
			}
		}
		return n
	}
	check := func(label string, c *TreeClock, want int) {
		t.Helper()
		if got := c.NumNodes(); got != want || got != scan(c) {
			t.Fatalf("%s: NumNodes = %d, scan = %d, want %d", label, got, scan(c), want)
		}
	}
	a := New(0, nil)
	check("empty", a, 0)
	a.Init(0)
	a.Inc(0, 1)
	check("init", a, 1)
	b := New(0, nil)
	b.Init(1)
	b.Inc(1, 1)
	a.Join(b)
	check("join new", a, 2)
	b.Inc(1, 1)
	a.Join(b)
	check("join existing", a, 2) // re-attach must not double count
	// MonotoneCopy into an empty clock (deep copy path).
	lock := New(0, nil)
	lock.MonotoneCopy(a)
	check("copy into empty", lock, 2)
	// MonotoneCopy where the receiver's root is new to the source's
	// tree exercise the root-repositioning path.
	c := New(0, nil)
	c.Init(2)
	c.Inc(2, 1)
	a.Inc(0, 1)
	a.Join(c)
	check("join third", a, 3)
	c.MonotoneCopy(a)
	check("monotone copy", c, 3)
	d := New(0, nil)
	d.Init(3)
	d.Inc(3, 1)
	d.CopyCheckMonotone(a) // non-monotone: falls back to deep copy
	check("non-monotone copy", d, scan(d))
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}
