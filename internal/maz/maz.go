// Package maz computes the Mazurkiewicz partial order (§5.2,
// Algorithm 5): HB plus an ordering between every pair of conflicting
// events in trace order. Generic over the clock data structure like
// the HB and SHB engines.
//
// All sync scaffolding lives in the shared runtime of internal/engine;
// this package contributes only the MAZ read/write semantics and the
// per-variable state of Algorithm 5.
package maz

import (
	"treeclock/internal/analysis"
	"treeclock/internal/engine"
	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// varState is the per-variable bookkeeping of Algorithm 5.
type varState[C any] struct {
	lw    C      // clock of the last write
	lwSet bool   // lw allocated
	lwT   vt.TID // thread of the last write (for the analysis check)
	// rd[t] is R_{t,x}: the clock of thread t's last read since it
	// was allocated; inLRD[t] marks membership in LRDs_x (reads since
	// the last write). Allocated lazily on the variable's first read
	// and grown as new threads appear.
	rd    []C
	rdSet []bool
	inLRD []bool
	lrds  []vt.TID // LRDs_x as a list for cheap iteration and reset
}

// Semantics is the MAZ plugin for the shared engine runtime. With an
// accumulator attached (Runtime.EnableAnalysis) it also reports
// reversible pairs: the stateless model-checking use case of §6
// identifies conflicting pairs whose order is not already forced
// transitively (the candidate backtrack points of dynamic partial-order
// reduction). A pair is counted when the prior access is not ordered
// before the current event at the moment its direct edge is about to be
// added.
type Semantics[C vt.Clock[C]] struct {
	vars []varState[C]
}

// NewSemantics returns fresh MAZ semantics (one per engine run).
func NewSemantics[C vt.Clock[C]]() *Semantics[C] { return &Semantics[C]{} }

// state returns variable x's bookkeeping, growing the variable space as
// needed (amortized doubling).
func (s *Semantics[C]) state(x int32) *varState[C] {
	s.vars = vt.GrowSlice(s.vars, int(x)+1)
	return &s.vars[x]
}

// ensureReadState sizes vs's per-thread read bookkeeping to cover t
// (amortized doubling, like every other growth site).
func ensureReadState[C vt.Clock[C]](rt *engine.Runtime[C], vs *varState[C], t vt.TID) {
	n := rt.Threads()
	if int(t) >= n {
		n = int(t) + 1
	}
	vs.rd = vt.GrowSlice(vs.rd, n)
	vs.rdSet = vt.GrowSlice(vs.rdSet, n)
	vs.inLRD = vt.GrowSlice(vs.inLRD, n)
}

// Read implements engine.Semantics.
func (s *Semantics[C]) Read(rt *engine.Runtime[C], t vt.TID, x int32, ct C) {
	vs := s.state(x)
	if vs.lwSet {
		if acc := rt.Analysis(); acc != nil {
			// lw's own local time is its entry for its thread.
			if wc := vs.lw.Get(vs.lwT); wc > ct.Get(vs.lwT) {
				acc.Report(analysis.WriteRead, x,
					vt.Epoch{T: vs.lwT, Clk: wc}, vt.Epoch{T: t, Clk: ct.Get(t)})
			}
		}
		ct.Join(vs.lw)
	}
	ensureReadState(rt, vs, t)
	if !vs.rdSet[t] {
		vs.rd[t] = rt.NewClock()
		vs.rdSet[t] = true
	}
	// R_{t,x} holds an earlier timestamp of the same thread, so the
	// copy is monotone.
	vs.rd[t].MonotoneCopy(ct)
	if !vs.inLRD[t] {
		vs.inLRD[t] = true
		vs.lrds = append(vs.lrds, t)
	}
}

// Write implements engine.Semantics.
func (s *Semantics[C]) Write(rt *engine.Runtime[C], t vt.TID, x int32, ct C) {
	vs := s.state(x)
	if acc := rt.Analysis(); acc != nil {
		// All reversibility checks run against the pre-edge
		// timestamp, before any of this event's own conflict edges
		// are joined in — each candidate pair is judged
		// independently, as in dynamic partial-order reduction.
		now := vt.Epoch{T: t, Clk: ct.Get(t)}
		if vs.lwSet {
			if wc := vs.lw.Get(vs.lwT); wc > ct.Get(vs.lwT) {
				acc.Report(analysis.WriteWrite, x,
					vt.Epoch{T: vs.lwT, Clk: wc}, now)
			}
		}
		for _, u := range vs.lrds {
			if rc := vs.rd[u].Get(u); rc > ct.Get(u) {
				acc.Report(analysis.ReadWrite, x,
					vt.Epoch{T: u, Clk: rc}, now)
			}
		}
	}
	if vs.lwSet {
		ct.Join(vs.lw)
	}
	// Order every pending reader before this write; later writes
	// inherit the ordering transitively through this one, which is why
	// LRDs is cleared (§5.2).
	for _, u := range vs.lrds {
		ct.Join(vs.rd[u])
		vs.inLRD[u] = false
	}
	vs.lrds = vs.lrds[:0]
	if !vs.lwSet {
		vs.lw = rt.NewClock()
		vs.lwSet = true
	}
	// ct has just joined lw, so lw ⊑ ct: monotone.
	vs.lw.MonotoneCopy(ct)
	vs.lwT = t
}

// Engine computes MAZ timestamps while streaming events. It is the
// shared runtime bound to the MAZ semantics; every method (including
// EnableAnalysis/Analysis for reversible-pair counting) is promoted
// from engine.Runtime.
type Engine[C vt.Clock[C]] struct {
	engine.Runtime[C]
}

// New builds a MAZ engine pre-sized for traces with the given metadata.
func New[C vt.Clock[C]](meta trace.Meta, factory vt.Factory[C]) *Engine[C] {
	e := &Engine[C]{}
	e.Runtime = *engine.NewWithMeta[C](NewSemantics[C](), factory, meta)
	return e
}

// NewStreaming builds a MAZ engine that discovers the trace's
// identifier spaces on the fly (no prior metadata).
func NewStreaming[C vt.Clock[C]](factory vt.Factory[C]) *Engine[C] {
	e := &Engine[C]{}
	e.Runtime = *engine.New[C](NewSemantics[C](), factory)
	return e
}
