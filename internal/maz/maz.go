// Package maz computes the Mazurkiewicz partial order (§5.2,
// Algorithm 5): HB plus an ordering between every pair of conflicting
// events in trace order. Generic over the clock data structure like
// the HB and SHB engines.
package maz

import (
	"treeclock/internal/analysis"
	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// varState is the per-variable bookkeeping of Algorithm 5.
type varState[C any] struct {
	lw    C      // clock of the last write
	lwSet bool   // lw allocated
	lwT   vt.TID // thread of the last write (for the analysis check)
	// rd[t] is R_{t,x}: the clock of thread t's last read since it
	// was allocated; inLRD[t] marks membership in LRDs_x (reads since
	// the last write). Allocated lazily on the variable's first read.
	rd    []C
	rdSet []bool
	inLRD []bool
	lrds  []vt.TID // LRDs_x as a list for cheap iteration and reset
}

// Engine computes MAZ timestamps while streaming events.
type Engine[C vt.Clock[C]] struct {
	meta    trace.Meta
	factory vt.Factory[C]
	threads []C
	locks   []C
	vars    []varState[C]
	acc     *analysis.Accumulator
	events  uint64
}

// New builds a MAZ engine.
func New[C vt.Clock[C]](meta trace.Meta, factory vt.Factory[C]) *Engine[C] {
	e := &Engine[C]{meta: meta, factory: factory}
	e.threads = make([]C, meta.Threads)
	for t := range e.threads {
		e.threads[t] = factory()
		e.threads[t].Init(vt.TID(t))
	}
	e.locks = make([]C, meta.Locks)
	for l := range e.locks {
		e.locks[l] = factory()
	}
	e.vars = make([]varState[C], meta.Vars)
	return e
}

// EnableAnalysis attaches the reversible-pair analysis: the stateless
// model-checking use case of §6 identifies conflicting pairs whose
// order is not already forced transitively (the candidate backtrack
// points of dynamic partial-order reduction). A pair is counted when
// the prior access is not ordered before the current event at the
// moment its direct edge is about to be added.
func (e *Engine[C]) EnableAnalysis() *analysis.Accumulator {
	e.acc = analysis.NewAccumulator()
	return e.acc
}

func (e *Engine[C]) ensureReadState(vs *varState[C]) {
	if vs.rd == nil {
		vs.rd = make([]C, e.meta.Threads)
		vs.rdSet = make([]bool, e.meta.Threads)
		vs.inLRD = make([]bool, e.meta.Threads)
	}
}

// Step processes one event.
func (e *Engine[C]) Step(ev trace.Event) {
	t := ev.T
	ct := e.threads[t]
	ct.Inc(t, 1)
	switch ev.Kind {
	case trace.Acquire:
		ct.Join(e.locks[ev.Obj])
	case trace.Release:
		e.locks[ev.Obj].MonotoneCopy(ct)
	case trace.Read:
		vs := &e.vars[ev.Obj]
		if vs.lwSet {
			if e.acc != nil {
				// lw's own local time is its entry for its thread.
				if wc := vs.lw.Get(vs.lwT); wc > ct.Get(vs.lwT) {
					e.acc.Report(analysis.WriteRead, ev.Obj,
						vt.Epoch{T: vs.lwT, Clk: wc}, vt.Epoch{T: t, Clk: ct.Get(t)})
				}
			}
			ct.Join(vs.lw)
		}
		e.ensureReadState(vs)
		if !vs.rdSet[t] {
			vs.rd[t] = e.factory()
			vs.rdSet[t] = true
		}
		// R_{t,x} holds an earlier timestamp of the same thread, so
		// the copy is monotone.
		vs.rd[t].MonotoneCopy(ct)
		if !vs.inLRD[t] {
			vs.inLRD[t] = true
			vs.lrds = append(vs.lrds, t)
		}
	case trace.Write:
		vs := &e.vars[ev.Obj]
		if e.acc != nil {
			// All reversibility checks run against the pre-edge
			// timestamp, before any of this event's own conflict
			// edges are joined in — each candidate pair is judged
			// independently, as in dynamic partial-order reduction.
			now := vt.Epoch{T: t, Clk: ct.Get(t)}
			if vs.lwSet {
				if wc := vs.lw.Get(vs.lwT); wc > ct.Get(vs.lwT) {
					e.acc.Report(analysis.WriteWrite, ev.Obj,
						vt.Epoch{T: vs.lwT, Clk: wc}, now)
				}
			}
			for _, rt := range vs.lrds {
				if rc := vs.rd[rt].Get(rt); rc > ct.Get(rt) {
					e.acc.Report(analysis.ReadWrite, ev.Obj,
						vt.Epoch{T: rt, Clk: rc}, now)
				}
			}
		}
		if vs.lwSet {
			ct.Join(vs.lw)
		}
		// Order every pending reader before this write; later writes
		// inherit the ordering transitively through this one, which
		// is why LRDs is cleared (§5.2).
		for _, rt := range vs.lrds {
			ct.Join(vs.rd[rt])
			vs.inLRD[rt] = false
		}
		vs.lrds = vs.lrds[:0]
		if !vs.lwSet {
			vs.lw = e.factory()
			vs.lwSet = true
		}
		// ct has just joined lw, so lw ⊑ ct: monotone.
		vs.lw.MonotoneCopy(ct)
		vs.lwT = t
	case trace.Fork:
		e.threads[ev.Obj].Join(ct)
	case trace.Join:
		ct.Join(e.threads[ev.Obj])
	}
	e.events++
}

// Process runs the whole event slice through Step.
func (e *Engine[C]) Process(events []trace.Event) {
	for i := range events {
		e.Step(events[i])
	}
}

// Events returns the number of events processed.
func (e *Engine[C]) Events() uint64 { return e.events }

// ThreadClock exposes thread t's clock.
func (e *Engine[C]) ThreadClock(t vt.TID) C { return e.threads[t] }

// Timestamp snapshots thread t's current vector time into dst.
func (e *Engine[C]) Timestamp(t vt.TID, dst vt.Vector) vt.Vector {
	return e.threads[t].Vector(dst)
}

// Analysis returns the attached accumulator, or nil.
func (e *Engine[C]) Analysis() *analysis.Accumulator { return e.acc }
