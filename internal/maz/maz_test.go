package maz

import (
	"testing"

	"treeclock/internal/analysis"
	"treeclock/internal/core"
	"treeclock/internal/gen"
	"treeclock/internal/oracle"
	"treeclock/internal/trace"
	"treeclock/internal/vc"
	"treeclock/internal/vt"
)

func parse(t *testing.T, s string) *trace.Trace {
	t.Helper()
	tr, err := trace.ParseTextString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return tr
}

func randomTraces() []*trace.Trace {
	var out []*trace.Trace
	for seed := int64(1); seed <= 6; seed++ {
		out = append(out,
			gen.Mixed(gen.Config{Name: "rnd-grouped", Threads: 12, Locks: 8, Vars: 24, Events: 800, Seed: 99, SyncFrac: 0.3, LockAffinity: 2, Groups: 3, VarRun: 4}),
			gen.Mixed(gen.Config{Name: "rnd-a", Threads: 3, Locks: 2, Vars: 5, Events: 300, Seed: seed, SyncFrac: 0.4, ReadFrac: 0.5}),
			gen.Mixed(gen.Config{Name: "rnd-b", Threads: 6, Locks: 3, Vars: 8, Events: 500, Seed: seed * 19, SyncFrac: 0.2, ReadFrac: 0.7}),
			gen.Mixed(gen.Config{Name: "rnd-c", Threads: 9, Locks: 4, Vars: 10, Events: 700, Seed: seed * 23, SyncFrac: 0.1}),
		)
	}
	out = append(out,
		gen.ProducerConsumer(3, 4, 600, 31),
		gen.ReadersWriters(8, 600, 32, true),
		gen.ForkJoinTree(5, 30, 33),
	)
	return out
}

func stepCompare[C vt.Clock[C]](t *testing.T, tr *trace.Trace, e *Engine[C], res *oracle.Result, label string) {
	t.Helper()
	dst := vt.NewVector(tr.Meta.Threads)
	for i, ev := range tr.Events {
		e.Step(ev)
		got := e.Timestamp(ev.T, dst)
		if !got.Equal(res.Post[i]) {
			t.Fatalf("%s: %s event %d (%v): timestamp %v, oracle %v", label, tr.Meta.Name, i, ev, got, res.Post[i])
		}
	}
}

func TestMAZMatchesOracleBothClocks(t *testing.T) {
	for _, tr := range randomTraces() {
		res := oracle.Timestamps(tr, oracle.MAZ)
		stepCompare(t, tr, New(tr.Meta, core.Factory(nil)), res, "tree clock")
		stepCompare(t, tr, New(tr.Meta, vc.Factory(nil)), res, "vector clock")
	}
}

func TestMAZHandComputed(t *testing.T) {
	// Conflicting accesses are ordered by trace order even without
	// locks; read-to-write orderings are included.
	tr := parse(t, "t0 w x0\nt1 r x0\nt2 w x0\n")
	e := New(tr.Meta, core.Factory(nil))
	e.Process(tr.Events)
	if got := e.Timestamp(2, vt.NewVector(3)); !got.Equal(vt.Vector{1, 1, 1}) {
		t.Errorf("t2 timestamp = %v, want [1, 1, 1]", got)
	}
}

func TestMAZNoConcurrentConflicting(t *testing.T) {
	// By construction MAZ orders every conflicting pair: the oracle's
	// race set must be empty after the engine agrees with it.
	for _, tr := range randomTraces()[:4] {
		res := oracle.Timestamps(tr, oracle.MAZ)
		if races := res.Races(tr); len(races) != 0 {
			t.Fatalf("%s: MAZ left %d conflicting pairs unordered", tr.Meta.Name, len(races))
		}
	}
}

func TestVTWorkIdenticalAcrossClocks(t *testing.T) {
	for _, tr := range randomTraces() {
		var stTC, stVC vt.WorkStats
		New(tr.Meta, core.Factory(&stTC)).Process(tr.Events)
		New(tr.Meta, vc.Factory(&stVC)).Process(tr.Events)
		if stTC.Changed != stVC.Changed {
			t.Errorf("%s: VTWork disagrees: tree %d vs vector %d", tr.Meta.Name, stTC.Changed, stVC.Changed)
		}
		if stTC.ForcedRootAttach != 0 {
			t.Errorf("%s: ForcedRootAttach = %d", tr.Meta.Name, stTC.ForcedRootAttach)
		}
	}
}

// mirrorAnalysis recomputes the reversible-pair counts from the oracle:
// at each read, the last write on the variable is a candidate pair; at
// each write, the last write and each thread's last read since that
// write are candidates. A candidate counts when the prior event is not
// ordered before the current event's pre-edge timestamp.
func mirrorAnalysis(tr *trace.Trace, res *oracle.Result) (total uint64, byKind [3]uint64) {
	lastWrite := make(map[int32]int)
	lastReadSince := make(map[int32]map[vt.TID]int)
	for j, e := range tr.Events {
		switch e.Kind {
		case trace.Read:
			if i, ok := lastWrite[e.Obj]; ok && tr.Events[i].T != e.T {
				if !res.Post[i].LessEq(res.Pre[j]) {
					total++
					byKind[analysis.WriteRead]++
				}
			}
			if lastReadSince[e.Obj] == nil {
				lastReadSince[e.Obj] = make(map[vt.TID]int)
			}
			lastReadSince[e.Obj][e.T] = j
		case trace.Write:
			if i, ok := lastWrite[e.Obj]; ok && tr.Events[i].T != e.T {
				if !res.Post[i].LessEq(res.Pre[j]) {
					total++
					byKind[analysis.WriteWrite]++
				}
			}
			for _, i := range lastReadSince[e.Obj] {
				if tr.Events[i].T == e.T {
					continue
				}
				if !res.Post[i].LessEq(res.Pre[j]) {
					total++
					byKind[analysis.ReadWrite]++
				}
			}
			delete(lastReadSince, e.Obj)
			lastWrite[e.Obj] = j
		}
	}
	return total, byKind
}

// TestAnalysisMatchesOracleMirror verifies the streaming reversible-
// pair analysis (the DPOR backtrack-point count) against an
// independent oracle-based recomputation, for both clock types.
func TestAnalysisMatchesOracleMirror(t *testing.T) {
	for _, tr := range randomTraces() {
		res := oracle.Timestamps(tr, oracle.MAZ)
		wantTotal, wantKinds := mirrorAnalysis(tr, res)

		eTC := New(tr.Meta, core.Factory(nil))
		accTC := eTC.EnableAnalysis()
		eTC.Process(tr.Events)
		eVC := New(tr.Meta, vc.Factory(nil))
		accVC := eVC.EnableAnalysis()
		eVC.Process(tr.Events)

		for _, got := range []*analysis.Accumulator{accTC, accVC} {
			if got.Total != wantTotal {
				t.Errorf("%s: analysis total = %d, mirror %d", tr.Meta.Name, got.Total, wantTotal)
			}
			for k := 0; k < 3; k++ {
				if got.ByKind[k] != wantKinds[k] {
					t.Errorf("%s: kind %v count = %d, mirror %d",
						tr.Meta.Name, analysis.PairKind(k), got.ByKind[k], wantKinds[k])
				}
			}
		}
	}
}

func TestAnalysisOnSyncOnlyTraceIsZero(t *testing.T) {
	tr := gen.SingleLock(6, 500, 2)
	e := New(tr.Meta, core.Factory(nil))
	acc := e.EnableAnalysis()
	e.Process(tr.Events)
	if acc.Total != 0 {
		t.Errorf("sync-only trace reported %d reversible pairs", acc.Total)
	}
	if e.Analysis() != acc {
		t.Error("Analysis() accessor broken")
	}
	if e.Events() != uint64(tr.Len()) {
		t.Errorf("Events() = %d", e.Events())
	}
	if e.ThreadClock(0).Get(0) == 0 {
		t.Error("ThreadClock accessor broken")
	}
}

func TestAnalysisFindsRacyPair(t *testing.T) {
	tr := parse(t, "t0 w x0\nt1 w x0\nt1 r x0\nt0 w x0\n")
	e := New(tr.Meta, core.Factory(nil))
	acc := e.EnableAnalysis()
	e.Process(tr.Events)
	// e0-e1 (w-w, unordered before the direct edge), e1's read is by
	// the same thread as the write before it, e3 vs e1/e2.
	if acc.Total == 0 {
		t.Fatal("no reversible pairs found in a racy trace")
	}
	if acc.ByKind[analysis.WriteWrite] == 0 {
		t.Error("expected a w-w reversible pair")
	}
}
