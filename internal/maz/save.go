package maz

import (
	"io"

	"treeclock/internal/ckpt"
	"treeclock/internal/engine"
	"treeclock/internal/vt"
)

// Snapshot implements engine.CheckpointSemantics: the full Algorithm 5
// per-variable state — last-write clock and thread, per-thread read
// clocks, and the pending-reader set LRDs.
func (s *Semantics[C]) Snapshot(rt *engine.Runtime[C], w io.Writer) error {
	e := ckpt.NewEnc(w)
	e.Begin("maz")
	e.Uvarint(uint64(len(s.vars)))
	for i := range s.vars {
		vs := &s.vars[i]
		e.Bool(vs.lwSet)
		if vs.lwSet {
			e.Int32(int32(vs.lwT))
			vs.lw.Save(e)
		}
		e.Uvarint(uint64(len(vs.rd)))
		for t := range vs.rd {
			e.Bool(vs.rdSet[t])
			if vs.rdSet[t] {
				vs.rd[t].Save(e)
			}
		}
		for _, b := range vs.inLRD {
			e.Bool(b)
		}
		e.Uvarint(uint64(len(vs.lrds)))
		for _, t := range vs.lrds {
			e.Int32(int32(t))
		}
	}
	e.End()
	return e.Err()
}

// Restore implements engine.CheckpointSemantics. Clocks are recreated
// through the runtime's factory; LRDs entries are validated against
// the allocated read-clock set, since a write indexes the read clocks
// through them.
func (s *Semantics[C]) Restore(rt *engine.Runtime[C], r io.Reader) error {
	d := ckpt.NewDec(r)
	d.Begin("maz")
	nv := d.Len(1)
	if d.Err() != nil {
		return d.Err()
	}
	vars := make([]varState[C], nv)
	for i := range vars {
		vs := &vars[i]
		vs.lwSet = d.Bool()
		if vs.lwSet {
			vs.lwT = vt.LoadTID(d)
			if d.Err() != nil {
				return d.Err()
			}
			vs.lw = rt.NewClock()
			vs.lw.Load(d)
		}
		nr := d.Len(1)
		if d.Err() != nil {
			return d.Err()
		}
		if nr > 0 {
			vs.rd = make([]C, nr)
			vs.rdSet = make([]bool, nr)
			vs.inLRD = make([]bool, nr)
		}
		for t := 0; t < nr; t++ {
			if d.Bool() {
				c := rt.NewClock()
				c.Load(d)
				vs.rd[t], vs.rdSet[t] = c, true
			}
			if d.Err() != nil {
				return d.Err()
			}
		}
		for t := 0; t < nr; t++ {
			vs.inLRD[t] = d.Bool()
		}
		nl := d.Len(1)
		if d.Err() != nil {
			return d.Err()
		}
		for j := 0; j < nl; j++ {
			t := vt.LoadTID(d)
			if d.Err() != nil {
				return d.Err()
			}
			if int(t) >= nr || !vs.rdSet[t] {
				d.Corruptf("pending reader t%d has no read clock", t)
				return d.Err()
			}
			vs.lrds = append(vs.lrds, t)
		}
	}
	d.End()
	if err := d.Err(); err != nil {
		return err
	}
	s.vars = vars
	return nil
}
