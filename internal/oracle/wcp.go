// WCP reference computation. Like the rest of the package this is a
// deliberately naive transcription of the definition — a fixpoint over
// the closure rules, with none of the queue/summary machinery the
// streaming engine uses — so that internal/wcp can be tested against an
// independently derived ground truth.
//
// The weakly-causally-precedes relation ≺WCP (Kini, Mathur,
// Viswanathan: "Dynamic Race Prediction in Linear Time", PLDI 2017) is
// the smallest relation over a trace such that
//
//	(a) rel(CS1) ≺WCP e2 whenever CS1 and CS2 are critical sections
//	    over the same lock by different threads, CS1 completes before
//	    CS2 begins, e2 ∈ CS2, and CS1 contains an event conflicting
//	    with e2;
//	(b) rel(CS1) ≺WCP rel(CS2) whenever CS1 and CS2 are critical
//	    sections over the same lock by different threads and there are
//	    e1 ∈ CS1, e2 ∈ CS2 with e1 ≺WCP e2;
//	(c) ≺WCP is closed under composition with ≤HB on either side
//	    (≤HB ∘ ≺WCP ⊆ ≺WCP and ≺WCP ∘ ≤HB ⊆ ≺WCP).
//
// ≺WCP ⊆ ≤HB (every rule only ever derives HB-ordered pairs), which
// with (c) makes ≺WCP transitive, and the union P = ≺WCP ∪ ≤TO is a
// strict partial order: the order this oracle timestamps. A conflicting
// pair unordered by P is a predictive (WCP) race; because WCP weakens
// HB, every HB race is a WCP race but not vice versa.
package oracle

import (
	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// wcpCS is one critical section: the events of thread t between the
// acquire and the matching release (inclusive). rel is -1 while the
// section is still open at the end of the trace — an open section can
// receive rule-(a) edges but contributes none (it has no release).
type wcpCS struct {
	lock  int32
	t     vt.TID
	acq   int // event index of the acquire
	rel   int // event index of the release, -1 if never released
	acqLT vt.Time
}

// contains reports whether event index i (known to be performed by
// cs.t) falls inside the critical section.
func (cs *wcpCS) contains(i int) bool {
	return i >= cs.acq && (cs.rel < 0 || i <= cs.rel)
}

// wcpConflicts reports whether the section contains an access of x
// conflicting with an access of kind k by another thread: a read
// conflicts with writes only, a write with reads and writes.
func wcpConflicts(tr *trace.Trace, cs *wcpCS, x int32, k trace.Kind) bool {
	end := cs.rel
	if end < 0 {
		end = tr.Len() - 1
	}
	for i := cs.acq; i <= end; i++ {
		e := tr.Events[i]
		if e.T != cs.t || !e.Kind.IsAccess() || e.Obj != x {
			continue
		}
		if e.Kind == trace.Write || k == trace.Write {
			return true
		}
	}
	return false
}

// wcpTimestamps computes P = ≺WCP ∪ ≤TO by fixpoint. W[i] holds event
// i's pure WCP knowledge — W[i][u] = max{lt(j) : thread(j) = u, j ≺WCP
// i} — and knowledge is propagated along the HB edges (rule c) with the
// base edges of rules (a) and (b) injected as the HB-downward closure
// of the contributing release (an edge r1 ≺WCP e2 brings everything
// ≤HB r1 with it, again by rule c). Passes repeat until no vector
// changes; on well-formed traces one pass suffices (every rule reads
// only trace-earlier state), but the oracle does not rely on that.
func wcpTimestamps(tr *trace.Trace) *Result {
	n := tr.Len()
	k := tr.Meta.Threads
	res := &Result{PO: WCP, Post: make([]vt.Vector, n), Pre: make([]vt.Vector, n)}
	hb := Timestamps(tr, HB)
	lt := tr.LocalTimes()

	// Structural predecessors, fixed across passes.
	prev := make([]int, n)     // previous event of the same thread, -1
	forkOf := make([]int, n)   // fork event that created this event's thread, -1
	joinPred := make([]int, n) // for a join event: the joined thread's last event, -1
	releasesOf := make([][]int, tr.Meta.Locks)
	lastOfThread := make([]int, k)
	for i := range lastOfThread {
		lastOfThread[i] = -1
	}
	var sections []wcpCS
	open := make([]int, tr.Meta.Locks) // index into sections, -1 when free
	for i := range open {
		open[i] = -1
	}
	// holds[i] lists the sections event i runs under (accesses only).
	holds := make([][]int, n)
	for i, e := range tr.Events {
		prev[i] = lastOfThread[e.T]
		forkOf[i] = -1
		joinPred[i] = -1
		if prev[i] == -1 {
			for j := 0; j < i; j++ {
				f := tr.Events[j]
				if f.Kind == trace.Fork && vt.TID(f.Obj) == e.T {
					forkOf[i] = j
				}
			}
		}
		switch e.Kind {
		case trace.Acquire:
			sections = append(sections, wcpCS{lock: e.Obj, t: e.T, acq: i, rel: -1, acqLT: lt[i]})
			open[e.Obj] = len(sections) - 1
		case trace.Release:
			if s := open[e.Obj]; s >= 0 {
				sections[s].rel = i
				open[e.Obj] = -1
			}
			releasesOf[e.Obj] = append(releasesOf[e.Obj], i)
		case trace.Join:
			joinPred[i] = lastOfThread[vt.TID(e.Obj)]
		case trace.Read, trace.Write:
			for s := range sections {
				if sections[s].t == e.T && sections[s].contains(i) {
					holds[i] = append(holds[i], s)
				}
			}
		}
		lastOfThread[e.T] = i
	}

	w := make([]vt.Vector, n)
	for i := range w {
		w[i] = vt.NewVector(k)
	}
	// inject joins src's HB-downward closure (rule c on the left) into
	// w[i], reporting whether anything changed.
	inject := func(i int, rel int) bool {
		return w[i].Join(hb.Post[rel]) > 0
	}
	transport := func(i int, j int) bool {
		if j < 0 {
			return false
		}
		return w[i].Join(w[j]) > 0
	}

	for changed := true; changed; {
		changed = false
		for i, e := range tr.Events {
			// Rule (c): WCP knowledge flows along every HB edge.
			if transport(i, prev[i]) {
				changed = true
			}
			if transport(i, forkOf[i]) {
				changed = true
			}
			switch e.Kind {
			case trace.Acquire:
				for _, r := range releasesOf[e.Obj] {
					if r < i && transport(i, r) {
						changed = true
					}
				}
			case trace.Join:
				if transport(i, joinPred[i]) {
					changed = true
				}
			case trace.Read, trace.Write:
				// Rule (a): earlier same-lock critical sections of
				// other threads with a conflicting body order their
				// release before this access.
				for _, s := range holds[i] {
					cs1 := findConflictingSections(tr, sections, &sections[s], e, i)
					for _, c := range cs1 {
						if inject(i, c) {
							changed = true
						}
					}
				}
			case trace.Release:
				// Rule (b): this release is ordered after the release
				// of every earlier same-lock section of another thread
				// whose body is WCP-before some event of this section.
				s := sectionOfRelease(sections, i)
				if s < 0 {
					break
				}
				cs2 := &sections[s]
				for c := range sections {
					cs1 := &sections[c]
					if cs1.lock != cs2.lock || cs1.t == cs2.t || cs1.rel < 0 || cs1.rel > cs2.acq {
						continue
					}
					// e1 ≺WCP e2 for some e1 ∈ CS1, e2 ∈ CS2 iff
					// acq(CS1) ≺WCP e2 (compose e1's thread-order
					// prefix on the left, rule c); scan CS2's events.
					triggered := false
					for j := cs2.acq; j <= cs2.rel && !triggered; j++ {
						if tr.Events[j].T == cs2.t && w[j].Get(cs1.t) >= cs1.acqLT {
							triggered = true
						}
					}
					if triggered && inject(i, cs1.rel) {
						changed = true
					}
				}
			}
		}
	}

	// Post = W ∪ own thread-order prefix; Pre additionally excludes the
	// event's own rule-(a) edges (the race checks of the streaming
	// engine run after those edges are applied, so Races uses Post —
	// Pre is the transport-only view, kept for symmetry with SHB/MAZ).
	for i, e := range tr.Events {
		pre := vt.NewVector(k)
		if e.Kind.IsAccess() {
			// An access's only non-transport edges are its own rule-(a)
			// joins; its transport sources are the thread-order
			// predecessor and (for a first event) the fork edge.
			if prev[i] >= 0 {
				pre.Join(w[prev[i]])
			}
			if forkOf[i] >= 0 {
				pre.Join(w[forkOf[i]])
			}
		} else {
			pre.CopyFrom(w[i])
		}
		pre[e.T] = lt[i]
		res.Pre[i] = pre
		post := w[i].Clone()
		post[e.T] = lt[i]
		res.Post[i] = post
	}
	return res
}

// findConflictingSections returns the releases of the earlier
// same-lock sections (other threads, completed before event i) whose
// body conflicts with access e.
func findConflictingSections(tr *trace.Trace, sections []wcpCS, cs2 *wcpCS, e trace.Event, i int) []int {
	var out []int
	for c := range sections {
		cs1 := &sections[c]
		if cs1.lock != cs2.lock || cs1.t == e.T || cs1.rel < 0 || cs1.rel > i {
			continue
		}
		if wcpConflicts(tr, cs1, e.Obj, e.Kind) {
			out = append(out, cs1.rel)
		}
	}
	return out
}

// sectionOfRelease finds the section closed by the release at index i.
func sectionOfRelease(sections []wcpCS, i int) int {
	for s := range sections {
		if sections[s].rel == i {
			return s
		}
	}
	return -1
}
