// Package oracle computes partial-order timestamps directly from the
// definitions in the paper (§2.3, §5.1, §5.2), with no clever data
// structures: for each event it joins the timestamps of all events the
// definition orders before it. The cost is up to O(n²·k), so the oracle
// is only suitable for small traces — its sole purpose is differential
// testing of the streaming engines and of both clock implementations.
package oracle

import (
	"sort"

	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// PO selects a partial order.
type PO int

const (
	// HB is Lamport's happens-before: thread order plus every
	// release-to-later-acquire edge per lock.
	HB PO = iota
	// SHB is schedulable-happens-before: HB plus last-write-to-read.
	SHB
	// MAZ is the Mazurkiewicz order: HB plus an edge between every
	// pair of conflicting events in trace order.
	MAZ
	// WCP is the weakly-causally-precedes order of Kini, Mathur and
	// Viswanathan (PLDI 2017), joined with thread order. It is a
	// weakening of HB: lock edges order only critical sections whose
	// bodies conflict, so lock-serialized but data-independent code
	// stays unordered and predictive races become visible. See wcp.go.
	WCP
)

func (p PO) String() string {
	switch p {
	case HB:
		return "HB"
	case SHB:
		return "SHB"
	case MAZ:
		return "MAZ"
	case WCP:
		return "WCP"
	default:
		return "PO?"
	}
}

// Result carries the oracle's per-event timestamps.
type Result struct {
	PO PO
	// Post[i] is the P-timestamp of event i (its knowledge after the
	// event, local entry equal to its lTime) — the quantity Lemma 1
	// compares.
	Post []vt.Vector
	// Pre[i] is event i's timestamp before applying its own incoming
	// variable edges (last-write join for SHB/MAZ reads, read/write
	// joins for MAZ writes), but after the thread-order increment and
	// lock edges. Race and reversibility checks compare candidate
	// predecessors against Pre.
	Pre []vt.Vector
}

// Timestamps computes the chosen partial order for the whole trace.
func Timestamps(tr *trace.Trace, po PO) *Result {
	if po == WCP {
		return wcpTimestamps(tr)
	}
	n := tr.Len()
	k := tr.Meta.Threads
	res := &Result{PO: po, Post: make([]vt.Vector, n), Pre: make([]vt.Vector, n)}

	lastOfThread := make([]int, k) // index of previous event per thread, -1
	for i := range lastOfThread {
		lastOfThread[i] = -1
	}
	releasesOf := make([][]int, tr.Meta.Locks) // all releases so far per lock
	lastWrite := make([]int, tr.Meta.Vars)     // last write per variable, -1
	accessesOf := make([][]int, tr.Meta.Vars)  // all accesses so far per variable
	for i := range lastWrite {
		lastWrite[i] = -1
	}

	for i, e := range tr.Events {
		v := vt.NewVector(k)
		// Thread order.
		if p := lastOfThread[e.T]; p >= 0 {
			v.CopyFrom(res.Post[p])
		}
		v[e.T]++ // local time of this event

		// Synchronization edges (identical for HB, SHB, MAZ).
		switch e.Kind {
		case trace.Acquire:
			// The definition orders *every* earlier release of this
			// lock before the acquire; join them all (the engines
			// rely on transitivity and join only the last one —
			// equality of the results is part of what we test).
			for _, r := range releasesOf[e.Obj] {
				v.Join(res.Post[r])
			}
		case trace.Fork:
			// No incoming edge; the child sees this event instead.
		case trace.Join:
			if p := lastOfThread[vt.TID(e.Obj)]; p >= 0 {
				v.Join(res.Post[p])
			}
		}
		// A forked thread's first event is ordered after the fork: the
		// fork edge is applied when the child's first event arrives.
		if lastOfThread[e.T] == -1 {
			for j := 0; j < i; j++ {
				f := tr.Events[j]
				if f.Kind == trace.Fork && vt.TID(f.Obj) == e.T {
					v.Join(res.Post[j])
				}
			}
		}

		res.Pre[i] = v.Clone()

		// Variable edges.
		if e.Kind.IsAccess() {
			switch po {
			case SHB:
				if e.Kind == trace.Read {
					if w := lastWrite[e.Obj]; w >= 0 {
						v.Join(res.Post[w])
					}
				}
			case MAZ:
				// Every earlier conflicting access is ordered first.
				for _, j := range accessesOf[e.Obj] {
					if trace.Conflicting(tr.Events[j], e) {
						v.Join(res.Post[j])
					}
				}
			}
		}

		res.Post[i] = v
		lastOfThread[e.T] = i
		switch e.Kind {
		case trace.Release:
			releasesOf[e.Obj] = append(releasesOf[e.Obj], i)
		case trace.Write:
			lastWrite[e.Obj] = i
			accessesOf[e.Obj] = append(accessesOf[e.Obj], i)
		case trace.Read:
			accessesOf[e.Obj] = append(accessesOf[e.Obj], i)
		}
	}
	return res
}

// Ordered reports whether event i is ordered before event j (i ≤P j)
// according to the computed timestamps, using Lemma 1: C_i ⊑ C_j.
func (r *Result) Ordered(i, j int) bool { return r.Post[i].LessEq(r.Post[j]) }

// Concurrent reports i ∥P j.
func (r *Result) Concurrent(i, j int) bool {
	return !r.Ordered(i, j) && !r.Ordered(j, i)
}

// RacePair is an unordered conflicting pair of event indices (i < j in
// trace order).
type RacePair struct{ First, Second int }

// Races enumerates every conflicting pair of events left unordered by
// the partial order — the ground truth the streaming detectors are
// compared against. Quadratic; small traces only.
func (r *Result) Races(tr *trace.Trace) []RacePair {
	var out []RacePair
	byVar := make(map[int32][]int)
	for i, e := range tr.Events {
		if e.Kind.IsAccess() {
			byVar[e.Obj] = append(byVar[e.Obj], i)
		}
	}
	// Iterate variables in sorted order so the oracle's pair list is
	// deterministic: differential failures diff cleanly across runs.
	vars := make([]int32, 0, len(byVar))
	for v := range byVar {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(a, b int) bool { return vars[a] < vars[b] })
	for _, v := range vars {
		idxs := byVar[v]
		for a := 0; a < len(idxs); a++ {
			for b := a + 1; b < len(idxs); b++ {
				i, j := idxs[a], idxs[b]
				if trace.Conflicting(tr.Events[i], tr.Events[j]) && r.Concurrent(i, j) {
					out = append(out, RacePair{i, j})
				}
			}
		}
	}
	return out
}

// RacyVars returns the set of variables involved in at least one race.
func (r *Result) RacyVars(tr *trace.Trace) map[int32]bool {
	out := make(map[int32]bool)
	for _, p := range r.Races(tr) {
		out[tr.Events[p.First].Obj] = true
	}
	return out
}
