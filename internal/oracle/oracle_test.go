package oracle

import (
	"testing"

	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

func parse(t *testing.T, s string) *trace.Trace {
	t.Helper()
	tr, err := trace.ParseTextString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return tr
}

func TestHBTimestampsHandComputed(t *testing.T) {
	tr := parse(t, `
t0 acq l0
t0 w x0
t0 rel l0
t1 acq l0
t1 r x0
t1 rel l0
`)
	r := Timestamps(tr, HB)
	want := []vt.Vector{
		{1, 0}, {2, 0}, {3, 0},
		{3, 1}, {3, 2}, {3, 3},
	}
	for i := range want {
		if !r.Post[i].Equal(want[i]) {
			t.Errorf("event %d: %v, want %v", i, r.Post[i], want[i])
		}
	}
	if !r.Ordered(1, 4) {
		t.Error("write must happen-before the read across the lock")
	}
	if races := r.Races(tr); len(races) != 0 {
		t.Errorf("well-synchronized trace reported races: %v", races)
	}
}

func TestHBRaceDetected(t *testing.T) {
	tr := parse(t, "t0 w x0\nt1 w x0\n")
	r := Timestamps(tr, HB)
	if !r.Concurrent(0, 1) {
		t.Error("unsynchronized writes must be concurrent")
	}
	races := r.Races(tr)
	if len(races) != 1 || races[0] != (RacePair{0, 1}) {
		t.Errorf("races = %v, want [{0 1}]", races)
	}
	if !r.RacyVars(tr)[0] {
		t.Error("variable 0 must be racy")
	}
}

func TestHBAllReleasesOrderAcquire(t *testing.T) {
	// Two critical sections of t0 and t1 both precede t2's acquire;
	// the definition orders both releases before it.
	tr := parse(t, `
t0 acq l0
t0 rel l0
t1 acq l0
t1 rel l0
t2 acq l0
t2 rel l0
`)
	r := Timestamps(tr, HB)
	if !r.Ordered(1, 4) || !r.Ordered(3, 4) {
		t.Error("every earlier release must be ordered before the acquire")
	}
	// And transitively the first release is ordered before the second
	// critical section's release.
	if !r.Ordered(1, 3) {
		t.Error("release 1 must be ordered before release 3 via the interleaved acquire")
	}
}

func TestSHBOrdersLastWriteToRead(t *testing.T) {
	tr := parse(t, "t0 w x0\nt1 r x0\nt1 w x1\nt0 r x1\n")
	hb := Timestamps(tr, HB)
	shb := Timestamps(tr, SHB)
	if hb.Ordered(0, 1) {
		t.Error("HB must not order the write before the read")
	}
	if !shb.Ordered(0, 1) {
		t.Error("SHB must order the last write before the read")
	}
	if !shb.Ordered(2, 3) {
		t.Error("SHB must order w(x1) before r(x1)")
	}
	// SHB's Pre timestamp excludes the event's own lw edge: the race
	// check sees the pre-join state.
	if vt.Vector.LessEq(shb.Post[0], shb.Pre[1]) {
		t.Error("Pre of the read must not already include the lw edge")
	}
}

func TestMAZOrdersAllConflicting(t *testing.T) {
	tr := parse(t, "t0 w x0\nt1 w x0\nt2 r x0\nt1 w x1\n")
	m := Timestamps(tr, MAZ)
	if !m.Ordered(0, 1) || !m.Ordered(1, 2) || !m.Ordered(0, 2) {
		t.Error("MAZ must order conflicting events by trace order")
	}
	if m.Ordered(2, 3) || m.Ordered(3, 2) {
		t.Error("accesses to different variables stay unordered")
	}
	if races := m.Races(tr); len(races) != 0 {
		t.Errorf("MAZ leaves no conflicting pair unordered, got %v", races)
	}
}

func TestForkJoinEdges(t *testing.T) {
	tr := parse(t, `
t0 w x0
t0 fork t1
t1 r x0
t0 join t1
t0 r x0
`)
	r := Timestamps(tr, HB)
	if !r.Ordered(0, 2) {
		t.Error("fork must order the parent's past before the child")
	}
	if !r.Ordered(2, 4) {
		t.Error("join must order the child's events before the parent's continuation")
	}
	if races := r.Races(tr); len(races) != 0 {
		t.Errorf("fork/join-synchronized trace reported races: %v", races)
	}
}

func TestLocalEntryIsLocalTime(t *testing.T) {
	tr := parse(t, "t0 w x0\nt0 r x0\nt1 w x1\nt0 w x0\n")
	lt := tr.LocalTimes()
	for _, po := range []PO{HB, SHB, MAZ} {
		r := Timestamps(tr, po)
		for i, e := range tr.Events {
			if r.Post[i][e.T] != lt[i] {
				t.Errorf("%v: event %d local entry = %d, want lTime %d", po, i, r.Post[i][e.T], lt[i])
			}
		}
	}
}

func TestPOString(t *testing.T) {
	if HB.String() != "HB" || SHB.String() != "SHB" || MAZ.String() != "MAZ" || PO(9).String() != "PO?" {
		t.Error("PO names wrong")
	}
}

// TestWCPGuardedConflictOrdered: rule (a) — two critical sections on
// the same lock whose bodies conflict are ordered, release-to-access.
func TestWCPGuardedConflictOrdered(t *testing.T) {
	tr := parse(t, `
t0 acq l0
t0 w x0
t0 rel l0
t1 acq l0
t1 r x0
t1 rel l0
`)
	r := Timestamps(tr, WCP)
	if !r.Ordered(2, 4) {
		t.Error("rule (a): rel(CS1) must be WCP-before the conflicting read")
	}
	if !r.Ordered(1, 4) {
		t.Error("rule (c): the write composes into the rule-(a) edge")
	}
	if races := r.Races(tr); len(races) != 0 {
		t.Errorf("properly guarded conflicting accesses reported racy: %v", races)
	}
}

// TestWCPPredictiveRace: the classic WCP example — critical sections
// on the same lock with data-independent bodies do NOT order the
// surrounding accesses, so the x writes race under WCP although HB
// orders them through the lock.
func TestWCPPredictiveRace(t *testing.T) {
	tr := parse(t, `
t0 w x0
t0 acq l0
t0 w x1
t0 rel l0
t1 acq l0
t1 w x2
t1 rel l0
t1 w x0
`)
	hb := Timestamps(tr, HB)
	wcp := Timestamps(tr, WCP)
	if !hb.Ordered(0, 7) {
		t.Error("HB must order the writes through the lock")
	}
	if wcp.Ordered(0, 7) || wcp.Ordered(7, 0) {
		t.Error("WCP must leave the writes unordered (predictive race)")
	}
	if races := wcp.Races(tr); len(races) != 1 || races[0] != (RacePair{0, 7}) {
		t.Errorf("WCP races = %v, want [{0 7}]", races)
	}
	if races := hb.Races(tr); len(races) != 0 {
		t.Errorf("HB must miss the predictive race, got %v", races)
	}
}

// TestWCPNestedSectionsBothOrder: with nested locks the conflicting
// accesses sit in the inner AND outer critical sections, so rule (a)
// applies at both nesting levels.
func TestWCPNestedSectionsBothOrder(t *testing.T) {
	tr := parse(t, `
t0 acq l0
t0 acq l1
t0 w x0
t0 rel l1
t0 rel l0
t1 acq l0
t1 acq l1
t1 r x0
t1 rel l1
t1 rel l0
`)
	r := Timestamps(tr, WCP)
	if !r.Ordered(3, 7) {
		t.Error("rule (a) edge on the inner lock missing")
	}
	if !r.Ordered(4, 7) {
		t.Error("rule (a) edge on the outer lock missing (its body conflicts too)")
	}
	if races := r.Races(tr); len(races) != 0 {
		t.Errorf("nested-guarded conflict reported racy: %v", races)
	}
}

// TestWCPRuleBOrdersReleases isolates rule (b): the two l0 critical
// sections have data-independent bodies (no rule-(a) edge between
// them), but an event of the first is WCP-before an event of the
// second through a chain — a rule-(a) edge on l2 into thread t2,
// composed with HB edges (t2's l3 handoff into t1's section, rule c).
// Rule (b) then orders the l0 releases, and only the releases.
func TestWCPRuleBOrdersReleases(t *testing.T) {
	tr := parse(t, `
t0 acq l0
t0 acq l2
t0 w x0
t0 rel l2
t0 rel l0
t2 acq l2
t2 r x0
t2 rel l2
t2 acq l3
t2 rel l3
t1 acq l0
t1 acq l3
t1 rel l3
t1 w x2
t1 rel l0
t1 w x1
`)
	r := Timestamps(tr, WCP)
	if !r.Ordered(3, 6) {
		t.Error("rule (a) edge on l2 missing")
	}
	if !r.Ordered(3, 12) {
		t.Error("rule (c): the l2 edge must compose through the l3 handoff")
	}
	if !r.Ordered(4, 14) {
		t.Error("rule (b): the l0 releases must be ordered")
	}
	if r.Ordered(4, 13) {
		t.Error("rule (b) must order the releases only, not the section body")
	}
	if !r.Ordered(4, 15) {
		t.Error("rule (c): the release ordering must compose with thread order")
	}
}

// TestWCPSameThreadSectionsAddNothing: critical sections of a single
// thread never generate WCP edges; the trace's only cross-thread
// conflict stays racy.
func TestWCPSameThreadSectionsAddNothing(t *testing.T) {
	tr := parse(t, `
t0 acq l0
t0 w x0
t0 rel l0
t0 acq l0
t0 r x0
t0 rel l0
t1 w x0
`)
	r := Timestamps(tr, WCP)
	if got := len(r.Races(tr)); got != 2 {
		// w(x0)@1–w(x0)@6 and r(x0)@4–w(x0)@6: t1 never synchronizes.
		t.Errorf("races = %d, want 2", got)
	}
	for i := range tr.Events[:6] {
		if r.Post[i].Get(1) != 0 {
			t.Errorf("event %d knows t1 without any edge", i)
		}
	}
}

// TestWCPSubsetOfHB: on random traces every WCP ordering is an HB
// ordering and every HB race is a WCP race (WCP weakens HB), and the
// local entry stays the event's local time.
func TestWCPSubsetOfHB(t *testing.T) {
	tr := parse(t, `
t0 w x0
t0 acq l0
t0 w x1
t0 rel l0
t1 acq l0
t1 r x1
t1 rel l0
t1 r x0
t2 w x0
t0 fork t3
t3 w x3
t3 acq l0
t3 w x1
t3 rel l0
t0 join t3
t0 r x3
`)
	hb := Timestamps(tr, HB)
	wcp := Timestamps(tr, WCP)
	lt := tr.LocalTimes()
	for i := range tr.Events {
		if !wcp.Post[i].LessEq(hb.Post[i]) {
			t.Errorf("event %d: WCP %v exceeds HB %v", i, wcp.Post[i], hb.Post[i])
		}
		if wcp.Post[i][tr.Events[i].T] != lt[i] {
			t.Errorf("event %d: local entry %v, want lTime %d", i, wcp.Post[i], lt[i])
		}
	}
	hbRaces := map[RacePair]bool{}
	for _, p := range wcp.Races(tr) {
		hbRaces[p] = false
	}
	for _, p := range hb.Races(tr) {
		if _, ok := hbRaces[p]; !ok {
			t.Errorf("HB race %v missing from WCP races", p)
		}
	}
}
