package oracle

import (
	"testing"

	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

func parse(t *testing.T, s string) *trace.Trace {
	t.Helper()
	tr, err := trace.ParseTextString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return tr
}

func TestHBTimestampsHandComputed(t *testing.T) {
	tr := parse(t, `
t0 acq l0
t0 w x0
t0 rel l0
t1 acq l0
t1 r x0
t1 rel l0
`)
	r := Timestamps(tr, HB)
	want := []vt.Vector{
		{1, 0}, {2, 0}, {3, 0},
		{3, 1}, {3, 2}, {3, 3},
	}
	for i := range want {
		if !r.Post[i].Equal(want[i]) {
			t.Errorf("event %d: %v, want %v", i, r.Post[i], want[i])
		}
	}
	if !r.Ordered(1, 4) {
		t.Error("write must happen-before the read across the lock")
	}
	if races := r.Races(tr); len(races) != 0 {
		t.Errorf("well-synchronized trace reported races: %v", races)
	}
}

func TestHBRaceDetected(t *testing.T) {
	tr := parse(t, "t0 w x0\nt1 w x0\n")
	r := Timestamps(tr, HB)
	if !r.Concurrent(0, 1) {
		t.Error("unsynchronized writes must be concurrent")
	}
	races := r.Races(tr)
	if len(races) != 1 || races[0] != (RacePair{0, 1}) {
		t.Errorf("races = %v, want [{0 1}]", races)
	}
	if !r.RacyVars(tr)[0] {
		t.Error("variable 0 must be racy")
	}
}

func TestHBAllReleasesOrderAcquire(t *testing.T) {
	// Two critical sections of t0 and t1 both precede t2's acquire;
	// the definition orders both releases before it.
	tr := parse(t, `
t0 acq l0
t0 rel l0
t1 acq l0
t1 rel l0
t2 acq l0
t2 rel l0
`)
	r := Timestamps(tr, HB)
	if !r.Ordered(1, 4) || !r.Ordered(3, 4) {
		t.Error("every earlier release must be ordered before the acquire")
	}
	// And transitively the first release is ordered before the second
	// critical section's release.
	if !r.Ordered(1, 3) {
		t.Error("release 1 must be ordered before release 3 via the interleaved acquire")
	}
}

func TestSHBOrdersLastWriteToRead(t *testing.T) {
	tr := parse(t, "t0 w x0\nt1 r x0\nt1 w x1\nt0 r x1\n")
	hb := Timestamps(tr, HB)
	shb := Timestamps(tr, SHB)
	if hb.Ordered(0, 1) {
		t.Error("HB must not order the write before the read")
	}
	if !shb.Ordered(0, 1) {
		t.Error("SHB must order the last write before the read")
	}
	if !shb.Ordered(2, 3) {
		t.Error("SHB must order w(x1) before r(x1)")
	}
	// SHB's Pre timestamp excludes the event's own lw edge: the race
	// check sees the pre-join state.
	if vt.Vector.LessEq(shb.Post[0], shb.Pre[1]) {
		t.Error("Pre of the read must not already include the lw edge")
	}
}

func TestMAZOrdersAllConflicting(t *testing.T) {
	tr := parse(t, "t0 w x0\nt1 w x0\nt2 r x0\nt1 w x1\n")
	m := Timestamps(tr, MAZ)
	if !m.Ordered(0, 1) || !m.Ordered(1, 2) || !m.Ordered(0, 2) {
		t.Error("MAZ must order conflicting events by trace order")
	}
	if m.Ordered(2, 3) || m.Ordered(3, 2) {
		t.Error("accesses to different variables stay unordered")
	}
	if races := m.Races(tr); len(races) != 0 {
		t.Errorf("MAZ leaves no conflicting pair unordered, got %v", races)
	}
}

func TestForkJoinEdges(t *testing.T) {
	tr := parse(t, `
t0 w x0
t0 fork t1
t1 r x0
t0 join t1
t0 r x0
`)
	r := Timestamps(tr, HB)
	if !r.Ordered(0, 2) {
		t.Error("fork must order the parent's past before the child")
	}
	if !r.Ordered(2, 4) {
		t.Error("join must order the child's events before the parent's continuation")
	}
	if races := r.Races(tr); len(races) != 0 {
		t.Errorf("fork/join-synchronized trace reported races: %v", races)
	}
}

func TestLocalEntryIsLocalTime(t *testing.T) {
	tr := parse(t, "t0 w x0\nt0 r x0\nt1 w x1\nt0 w x0\n")
	lt := tr.LocalTimes()
	for _, po := range []PO{HB, SHB, MAZ} {
		r := Timestamps(tr, po)
		for i, e := range tr.Events {
			if r.Post[i][e.T] != lt[i] {
				t.Errorf("%v: event %d local entry = %d, want lTime %d", po, i, r.Post[i][e.T], lt[i])
			}
		}
	}
}

func TestPOString(t *testing.T) {
	if HB.String() != "HB" || SHB.String() != "SHB" || MAZ.String() != "MAZ" || PO(9).String() != "PO?" {
		t.Error("PO names wrong")
	}
}
