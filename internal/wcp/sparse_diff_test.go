package wcp

// Differential pinning of the sparse weak-clock transport against the
// flat-vector baseline: same corpus as the oracle tests, engines run
// in lockstep, every event's timestamp and every race sample must be
// byte-identical — the representations may differ only in cost.

import (
	"fmt"
	"strings"
	"testing"

	"treeclock/internal/core"
	"treeclock/internal/gen"
	"treeclock/internal/oracle"
	"treeclock/internal/vc"
	"treeclock/internal/vt"
)

// TestWCPFlatSparseByteIdentical steps the sparse (default) and flat
// engines through the differential corpus side by side, comparing
// per-event timestamps, race reports and retained-state counters
// (everything except the representation-specific byte/pool numbers).
func TestWCPFlatSparseByteIdentical(t *testing.T) {
	for _, tr := range randomTraces() {
		sp := New[*vc.VectorClock](tr.Meta, vc.Factory(nil))
		fl := NewFlat[*vc.VectorClock](tr.Meta, vc.Factory(nil))
		aS := sp.EnableAnalysis()
		aF := fl.EnableAnalysis()
		k := tr.Meta.Threads
		lt := tr.LocalTimes()
		dstS, dstF := vt.NewVector(k), vt.NewVector(k)
		for i, ev := range tr.Events {
			sp.Step(ev)
			fl.Step(ev)
			got := sp.Sem().Timestamp(ev.T, lt[i], dstS)
			want := fl.Sem().Timestamp(ev.T, lt[i], dstF)
			if !got.Equal(want) {
				t.Fatalf("%s: event %d (%v): sparse %v, flat %v", tr.Meta.Name, i, ev, got, want)
			}
		}
		if aS.Summary() != aF.Summary() {
			t.Errorf("%s: summaries diverge: sparse %+v, flat %+v", tr.Meta.Name, aS.Summary(), aF.Summary())
		}
		for i := range aS.Samples {
			if i < len(aF.Samples) && aS.Samples[i] != aF.Samples[i] {
				t.Errorf("%s: sample %d diverges: %v vs %v", tr.Meta.Name, i, aS.Samples[i], aF.Samples[i])
			}
		}
		msS, msF := sp.Sem().MemStats(), fl.Sem().MemStats()
		if msS.HistEntries != msF.HistEntries || msS.PeakLockHist != msF.PeakLockHist ||
			msS.DroppedEntries != msF.DroppedEntries || msS.SummaryVectors != msF.SummaryVectors {
			t.Errorf("%s: retained-state counters diverge:\nsparse %+v\nflat   %+v", tr.Meta.Name, msS, msF)
		}
	}
}

// TestWCPFlatSparseAcrossClocks repeats the byte-identity check with
// the tree-clock backbone (transport and backbone must compose
// independently).
func TestWCPFlatSparseAcrossClocks(t *testing.T) {
	for _, tr := range randomTraces() {
		sp := New[*core.TreeClock](tr.Meta, core.Factory(nil))
		fl := NewFlat[*core.TreeClock](tr.Meta, core.Factory(nil))
		aS := sp.EnableAnalysis()
		aF := fl.EnableAnalysis()
		sp.Process(tr.Events)
		fl.Process(tr.Events)
		if aS.Summary() != aF.Summary() {
			t.Errorf("%s: summaries diverge: sparse %+v, flat %+v", tr.Meta.Name, aS.Summary(), aF.Summary())
		}
		k := tr.Meta.Threads
		for th := 0; th < k; th++ {
			got := sp.Timestamp(vt.TID(th), vt.NewVector(k))
			want := fl.Timestamp(vt.TID(th), vt.NewVector(k))
			if !got.Equal(want) {
				t.Fatalf("%s: thread %d: sparse %v, flat %v", tr.Meta.Name, th, got, want)
			}
		}
	}
}

// churnTrace grows the thread space in waves: wave w brings threads
// 0..2+w through a guarded conflicting write on one shared lock, so
// every release snapshots a larger vector than the last wave's, every
// parked snapshot buffer goes stale at each growth step, and rule-(b)
// absorption plus compaction keep the free lists churning.
func churnTrace(waves int) string {
	var b strings.Builder
	for w := 0; w < waves; w++ {
		for th := 0; th <= 2+w; th++ {
			fmt.Fprintf(&b, "t%d acq l0\nt%d w x0\nt%d rel l0\n", th, th, th)
		}
	}
	return b.String()
}

// TestWCPThreadChurnAcrossReleases is the regression test for the
// stale-capacity free-list bug: recycled snapshot buffers must be
// re-grown after mid-stream thread growth (vt's
// TestFlatStoreSnapshotRegrowsStaleBuffers pins the store-level fix;
// this pins the engine behavior that triggers it). Both transports are
// run streaming — the thread space genuinely grows mid-run — and
// checked against the oracle event by event, and recycling must still
// be live at the end.
func TestWCPThreadChurnAcrossReleases(t *testing.T) {
	tr := parse(t, churnTrace(6))
	res := oracle.Timestamps(tr, oracle.WCP)
	lt := tr.LocalTimes()
	k := tr.Meta.Threads

	sp := NewStreaming[*vc.VectorClock](vc.Factory(nil))
	fl := NewStreamingFlat[*vc.VectorClock](vc.Factory(nil))
	dstS, dstF := vt.NewVector(k), vt.NewVector(k)
	for i, ev := range tr.Events {
		sp.Step(ev)
		fl.Step(ev)
		gotS := sp.Sem().Timestamp(ev.T, lt[i], dstS)
		gotF := fl.Sem().Timestamp(ev.T, lt[i], dstF)
		want := res.Post[i]
		if !gotS.Equal(want) {
			t.Fatalf("sparse: event %d (%v): timestamp %v, oracle %v", i, ev, gotS, want)
		}
		if !gotF.Equal(want) {
			t.Fatalf("flat: event %d (%v): timestamp %v, oracle %v", i, ev, gotF, want)
		}
	}
	for th := 0; th < k; th++ {
		got := fl.Timestamp(vt.TID(th), vt.NewVector(k))
		want := sp.Timestamp(vt.TID(th), vt.NewVector(k))
		if !got.Equal(want) {
			t.Fatalf("thread %d: flat %v, sparse %v", th, got, want)
		}
	}
	msF := fl.Sem().MemStats()
	if msF.DroppedEntries == 0 {
		t.Fatalf("churn workload never compacted — the free list was never exercised: %+v", msF)
	}
	if msF.FreeVectors == 0 {
		t.Errorf("flat free list empty after churn — stale buffers were discarded, not regrown: %+v", msF)
	}
}

// TestWCPSparsePoolRecyclesAcrossCompaction pins the sparse analogue:
// segments of compacted history entries circulate through the shared
// pool instead of garbage.
func TestWCPSparsePoolRecyclesAcrossCompaction(t *testing.T) {
	e := NewStreaming[*vc.VectorClock](vc.Factory(nil))
	if err := e.ProcessSource(gen.Take(gen.HotLock(6, 11), 30000)); err != nil {
		t.Fatalf("stream: %v", err)
	}
	ms := e.Sem().MemStats()
	if ms.DroppedEntries == 0 {
		t.Fatalf("hot-lock run compacted nothing: %+v", ms)
	}
	if ms.FreeVectors == 0 {
		t.Errorf("sparse segment pool empty after compaction: %+v", ms)
	}
}
