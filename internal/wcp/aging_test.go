package wcp

// Rule-(a) summary aging (SetSummaryCap): the aging sweep only drops
// acquire summaries whose snapshots are dominated by the lock's latest
// published release clock, so a capped run must be observationally
// identical to an uncapped one — the differential and oracle-pinned
// tests below hold it to that, the way the compaction tests hold
// rule-(b) history compaction to its no-op guarantee.

import (
	"testing"

	"treeclock/internal/analysis"
	"treeclock/internal/gen"
	"treeclock/internal/oracle"
	"treeclock/internal/vc"
	"treeclock/internal/vt"
)

// TestWCPSummaryAgingMatchesRetained runs the differential corpus with
// an aggressive summary cap against the unbounded default: summaries,
// samples and final weak-order timestamps must be identical, and the
// cap must actually have evicted somewhere in the corpus (otherwise
// the test proves nothing).
func TestWCPSummaryAgingMatchesRetained(t *testing.T) {
	var evicted uint64
	for _, tr := range randomTraces() {
		run := func(cap int) (*Engine[*vc.VectorClock], *analysis.Accumulator) {
			e := New[*vc.VectorClock](tr.Meta, vc.Factory(nil))
			e.Sem().SetSummaryCap(cap)
			acc := e.EnableAnalysis()
			e.Process(tr.Events)
			return e, acc
		}
		eA, aA := run(2) // aggressive: sweep at nearly every release
		eR, aR := run(0)
		if aA.Summary() != aR.Summary() {
			t.Errorf("%s: aged %+v, retained %+v", tr.Meta.Name, aA.Summary(), aR.Summary())
		}
		for i := range aA.Samples {
			if i < len(aR.Samples) && aA.Samples[i] != aR.Samples[i] {
				t.Errorf("%s: sample %d diverges: %v vs %v", tr.Meta.Name, i, aA.Samples[i], aR.Samples[i])
			}
		}
		k := tr.Meta.Threads
		for th := 0; th < k; th++ {
			got := eA.Timestamp(vt.TID(th), vt.NewVector(k))
			want := eR.Timestamp(vt.TID(th), vt.NewVector(k))
			if !got.Equal(want) {
				t.Fatalf("%s: thread %d: aged %v, retained %v", tr.Meta.Name, th, got, want)
			}
		}
		msA, msR := eA.Sem().MemStats(), eR.Sem().MemStats()
		if msR.SummaryEvictions != 0 {
			t.Errorf("%s: uncapped run evicted %d summaries", tr.Meta.Name, msR.SummaryEvictions)
		}
		// No additive live+evicted identity holds here (unlike history
		// compaction): a triple whose summary was evicted re-enters the
		// table on its next access, so an aggressive cap can evict the
		// same triple many times over.
		evicted += msA.SummaryEvictions
	}
	if evicted == 0 {
		t.Error("summary cap of 2 evicted nothing across the whole corpus")
	}
}

// TestWCPSummaryAgingLateThreadSoundness is the PR-4-style pinned
// scenario for aging: thread t0's first critical section leaves a
// rule-(a) summary for x0 that the sweep evicts (its snapshot is
// dominated by l0's published release clock once later sections churn
// past the cap); a late thread then runs a conflicting section on the
// same lock and variable. The oracle pins that the evicted summary's
// ordering still arrives — through the dominating published clock the
// late thread joins at acquire — at every single event.
func TestWCPSummaryAgingLateThreadSoundness(t *testing.T) {
	tr := parse(t, `
t0 acq l0
t0 w x0
t0 rel l0
t1 acq l0
t1 w x1
t1 rel l0
t1 acq l0
t1 w x2
t1 rel l0
t2 acq l0
t2 w x0
t2 rel l0
`)
	res := oracle.Timestamps(tr, oracle.WCP)
	e := New[*vc.VectorClock](tr.Meta, vc.Factory(nil))
	e.Sem().SetSummaryCap(1)
	stepCompare(t, tr, e, res, "aging late-thread")
	if ms := e.Sem().MemStats(); ms.SummaryEvictions == 0 {
		t.Errorf("no summary evicted before the late thread arrived: %+v", ms)
	}
}

// TestWCPSummaryAgingChurnPlateau drives the summary-churn workload
// (the guarded variable rotates through a large space, so uncapped
// rule-(a) state grows toward threads x vars) under a small cap: live
// summaries must plateau at the cap plus the sweep's hysteresis slack
// while results stay identical to the uncapped run's.
func TestWCPSummaryAgingChurnPlateau(t *testing.T) {
	n := 400_000
	if testing.Short() {
		n = 80_000
	}
	const cap = 64
	run := func(cap int) (*Engine[*vc.VectorClock], *analysis.Accumulator) {
		e := NewStreaming[*vc.VectorClock](vc.Factory(nil))
		e.Sem().SetSummaryCap(cap)
		acc := e.EnableAnalysis()
		if err := e.ProcessSource(gen.Take(gen.ChurningVars(8, 256, 10, 33), n)); err != nil {
			t.Fatal(err)
		}
		return e, acc
	}
	eC, aC := run(cap)
	eU, aU := run(0)
	if aC.Summary() != aU.Summary() {
		t.Errorf("capped summary %+v, uncapped %+v", aC.Summary(), aU.Summary())
	}
	msC, msU := eC.Sem().MemStats(), eU.Sem().MemStats()
	// The sweep triggers above the cap and defers the next sweep by
	// cap/8; live state between sweeps stays under cap plus one
	// hysteresis step plus whatever held locks pin.
	if bound := cap + cap/8 + 1 + soakThreads; msC.SummaryVectors > bound {
		t.Errorf("capped run retains %d summary vectors, want <= %d", msC.SummaryVectors, bound)
	}
	if msC.SummaryEvictions == 0 {
		t.Error("capped churn run evicted nothing")
	}
	if msU.SummaryVectors <= 4*cap {
		t.Errorf("uncapped churn run retained only %d summary vectors — workload no longer stresses the cap", msU.SummaryVectors)
	}
	if msC.RetainedBytes >= msU.RetainedBytes {
		t.Errorf("capped run retains %d bytes, uncapped %d — aging reclaimed nothing", msC.RetainedBytes, msU.RetainedBytes)
	}
}
