package wcp

// Checkpoint serialization for the WCP plugin (see internal/ckpt).
//
// The order is load-bearing: the snapshot store's state — for the
// sparse transport, the whole refcounted segment arena — is written
// before any weak clock, history entry or summary, because those
// holders serialize raw arena references and restoring them requires
// the arena (and its reference-validation bound) to exist first.
// Nothing re-retains on load: the dumped refcounts already count every
// holder, so the restored object graph reproduces the exact
// copy-on-write sharing, refcounts and byte accounting of the saved
// run (see internal/vt/save.go).
//
// Everything that steers future behaviour or feeds MemStats is
// captured verbatim: the history's chunk-relative head offset (chunk
// recycling timing feeds the free-chunk accounting), the rule-(b)
// cursors with their incrementally maintained top-two positions, the
// per-thread scan-position caches, and the free-chunk count (restored
// as fresh empty chunks — recycled chunk contents are dead by
// construction). Map-backed state (rule-(a) summaries, open-section
// access sets) is encoded in sorted order so identical state always
// produces identical bytes; contribution lists keep their order, which
// fixes the absorb order after resume.

import (
	"io"
	"sort"

	"treeclock/internal/ckpt"
	"treeclock/internal/engine"
	"treeclock/internal/vt"
)

// Checkpoint conformance for both transports (the runtime detects the
// extension at construction).
var (
	_ engine.CheckpointSemantics[*noClock] = (*Semantics[*noClock])(nil)
	_ engine.CheckpointSemantics[*noClock] = (*FlatSemantics[*noClock])(nil)
)

// Save and Load complete noClock's vt.Clock conformance for the
// compile-time assertions; it never carries state.
func (*noClock) Save(e *ckpt.Enc) {}
func (*noClock) Load(d *ckpt.Dec) {}

// maxFreeChunks bounds the recycled-history-chunk count a checkpoint
// may claim (each restored chunk is a histLen-entry allocation, so the
// bound is much tighter than ckpt's generic slice cap).
const maxFreeChunks = 1 << 20

// Snapshot implements engine.CheckpointSemantics.
func (s *SemanticsOf[C, W, S, F]) Snapshot(rt *engine.Runtime[C], w io.Writer) error {
	e := ckpt.NewEnc(w)
	e.Begin("wcp")
	e.Int(s.k)
	e.Bool(s.compact)
	e.Int(s.liveHist)
	e.Int(s.peakLockHist)
	e.U64(s.dropped)
	e.U64(s.sumEvictions)
	e.Int(s.sumSweepAt)
	e.Uvarint(uint64(len(s.histFree)))
	s.store.SaveState(e)
	e.Uvarint(uint64(len(s.threads)))
	for i := range s.threads {
		ts := &s.threads[i]
		ts.w.SaveWeak(e)
		e.Uvarint(uint64(len(ts.held)))
		for j := range ts.held {
			cs := &ts.held[j]
			e.Int32(cs.lock)
			e.Svarint(int64(cs.acqLT))
			saveVarSet(e, cs.read)
			saveVarSet(e, cs.written)
		}
	}
	e.Uvarint(uint64(len(s.locks)))
	for l := range s.locks {
		s.saveLock(e, &s.locks[l])
	}
	e.Uvarint(uint64(len(s.vars)))
	for i := range s.vars {
		vs := &s.vars[i]
		vt.SaveEpoch(e, vs.w)
		vt.SaveEpoch(e, vs.r)
		if vs.shared == nil {
			e.Bool(false)
			continue
		}
		e.Bool(true)
		e.Uvarint(uint64(len(vs.shared)))
		for _, c := range vs.shared {
			e.Svarint(int64(c))
		}
	}
	e.End()
	return e.Err()
}

// Restore implements engine.CheckpointSemantics. It must run on a
// freshly constructed semantics (same transport); on error the plugin
// must be discarded.
func (s *SemanticsOf[C, W, S, F]) Restore(rt *engine.Runtime[C], r io.Reader) error {
	d := ckpt.NewDec(r)
	d.Begin("wcp")
	k := d.Int()
	compact := d.Bool()
	liveHist := d.Int()
	peakLockHist := d.Int()
	dropped := d.U64()
	sumEvictions := d.U64()
	sumSweepAt := d.Int()
	nfree := d.Count()
	if d.Err() != nil {
		return d.Err()
	}
	if k < 0 || k > vt.MaxID || liveHist < 0 || peakLockHist < 0 || sumSweepAt < 0 {
		d.Corruptf("plugin counters (k %d, live %d, peak %d, sweep %d) out of range",
			k, liveHist, peakLockHist, sumSweepAt)
		return d.Err()
	}
	if nfree > maxFreeChunks {
		d.Corruptf("history free list of %d chunks out of range", nfree)
		return d.Err()
	}
	s.store.LoadState(d)
	nt := d.Len(1)
	if d.Err() != nil {
		return d.Err()
	}
	threads := make([]threadState[W], nt)
	for i := range threads {
		ts := &threads[i]
		ts.w = s.store.NewW()
		ts.w.LoadWeak(d)
		nh := d.Len(1)
		if d.Err() != nil {
			return d.Err()
		}
		for j := 0; j < nh; j++ {
			l := d.Int32()
			if d.Err() == nil && (l < 0 || l >= vt.MaxID) {
				d.Corruptf("open section lock %d out of range", l)
			}
			cs := openCS{lock: l, acqLT: vt.Time(d.Svarint())}
			cs.read = loadVarSet(d)
			cs.written = loadVarSet(d)
			if d.Err() != nil {
				return d.Err()
			}
			ts.held = append(ts.held, cs)
		}
	}
	nl := d.Len(1)
	if d.Err() != nil {
		return d.Err()
	}
	locks := make([]lockState[W, S], nl)
	for l := range locks {
		if err := s.loadLock(d, &locks[l]); err != nil {
			return err
		}
	}
	nv := d.Len(1)
	if d.Err() != nil {
		return d.Err()
	}
	vars := make([]accessState, nv)
	for i := range vars {
		vs := &vars[i]
		vs.w = vt.LoadEpoch(d)
		vs.r = vt.LoadEpoch(d)
		if d.Bool() {
			n := d.Len(1)
			if d.Err() != nil {
				return d.Err()
			}
			vs.shared = vt.NewVector(n)
			for j := range vs.shared {
				vs.shared[j] = vt.Time(d.Svarint())
			}
		}
		if d.Err() != nil {
			return d.Err()
		}
	}
	d.End()
	if err := d.Err(); err != nil {
		return err
	}
	s.k, s.compact = k, compact
	s.liveHist, s.peakLockHist, s.dropped = liveHist, peakLockHist, dropped
	s.sumEvictions, s.sumSweepAt = sumEvictions, sumSweepAt
	s.histFree = nil
	for i := 0; i < nfree; i++ {
		s.histFree = append(s.histFree, make([]csEntry[S], histLen))
	}
	s.threads, s.locks, s.vars = threads, locks, vars
	// Derived aging state: the live contribution count and per-lock
	// holder counts are recomputed from what was just loaded (cheaper
	// and safer than trusting checkpoint bytes that must agree with the
	// object graph anyway).
	s.sumLive = 0
	for l := range s.locks {
		for _, sum := range s.locks[l].sums {
			s.sumLive += len(sum.reads) + len(sum.writes)
		}
	}
	for i := range s.threads {
		for j := range s.threads[i].held {
			l := s.threads[i].held[j].lock
			if int(l) >= len(s.locks) {
				d.Corruptf("open section lock %d beyond lock space %d", l, len(s.locks))
				return d.Err()
			}
			s.locks[l].holders++
		}
	}
	return nil
}

// saveLock serializes one lock's state. The history is written with
// its chunk-relative head offset so the restored chunk layout — and
// with it the timing of future chunk recycling — matches the saved
// run's exactly.
func (s *SemanticsOf[C, W, S, F]) saveLock(e *ckpt.Enc, ls *lockState[W, S]) {
	e.Bool(ls.wSet)
	ls.w.SaveWeak(e)
	e.Uvarint(uint64(ls.hist.head))
	e.Uvarint(uint64(ls.hist.n))
	for i := 0; i < ls.hist.n; i++ {
		en := ls.hist.at(i)
		e.Int32(int32(en.t))
		e.Svarint(int64(en.acqLT))
		s.store.SaveSnap(e, &en.rel)
	}
	e.Uvarint(uint64(len(ls.cursor)))
	for _, c := range ls.cursor {
		e.Uvarint(uint64(c))
	}
	e.Uvarint(uint64(len(ls.spos)))
	for i := range ls.spos {
		sp := &ls.spos[i]
		e.Int32(sp.idx)
		e.Int32(int32(sp.t))
		e.Int32(int32(sp.lt))
	}
	e.Int(ls.cmax1)
	e.Int(ls.cmax2)
	e.Int32(int32(ls.ctmax))
	ids := make([]int32, 0, len(ls.sums))
	for x := range ls.sums {
		ids = append(ids, x)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.Uvarint(uint64(len(ids)))
	for _, x := range ids {
		e.Int32(x)
		sum := ls.sums[x]
		s.saveContribs(e, sum.reads)
		s.saveContribs(e, sum.writes)
	}
	e.Int(ls.peak)
	e.U64(ls.dropped)
}

// loadLock restores one lock's state, validating everything that later
// indexes or scans: the head offset, cursor positions against the
// history length, the scan caches, and the top-two cursor maxima.
func (s *SemanticsOf[C, W, S, F]) loadLock(d *ckpt.Dec, ls *lockState[W, S]) error {
	ls.wSet = d.Bool()
	ls.w = s.store.NewW()
	ls.w.LoadWeak(d)
	head := d.Count()
	n := d.Len(4)
	if d.Err() != nil {
		return d.Err()
	}
	if head >= histLen {
		d.Corruptf("history head offset %d out of range", head)
		return d.Err()
	}
	ls.hist = histBuf[S]{head: head, n: n}
	if nchunks := (head + n + histLen - 1) >> histShift; nchunks > 0 {
		ls.hist.chunks = make([][]csEntry[S], nchunks)
		for i := range ls.hist.chunks {
			ls.hist.chunks[i] = make([]csEntry[S], histLen)
		}
	}
	for i := 0; i < n; i++ {
		en := ls.hist.at(i)
		en.t = vt.LoadTID(d)
		en.acqLT = vt.Time(d.Svarint())
		s.store.LoadSnap(d, &en.rel)
		if d.Err() != nil {
			return d.Err()
		}
	}
	nc := d.Len(1)
	if d.Err() != nil {
		return d.Err()
	}
	ls.cursor = make([]int, nc)
	for t := range ls.cursor {
		c := d.Count()
		if d.Err() == nil && c > n {
			d.Corruptf("rule-(b) cursor %d beyond history length %d", c, n)
		}
		ls.cursor[t] = c
	}
	nsp := d.Len(1)
	if d.Err() != nil {
		return d.Err()
	}
	if nsp != nc {
		d.Corruptf("scan cache length %d does not match %d cursors", nsp, nc)
		return d.Err()
	}
	ls.spos = make([]scanPos, nsp)
	for i := range ls.spos {
		sp := &ls.spos[i]
		sp.idx = d.Int32()
		sp.t = vt.TID(d.Int32())
		sp.lt = vt.Time(d.Int32())
		if d.Err() == nil && (sp.idx < 0 || int(sp.idx) > n || sp.t < 0 || sp.t >= vt.MaxID) {
			d.Corruptf("scan cache entry (%d, t%d) out of range", sp.idx, sp.t)
		}
	}
	ls.cmax1 = d.Int()
	ls.cmax2 = d.Int()
	ctmax := d.Int32()
	if d.Err() != nil {
		return d.Err()
	}
	if ls.cmax2 < 0 || ls.cmax1 > n || ls.cmax2 > ls.cmax1 || ctmax < int32(vt.None) || ctmax >= vt.MaxID {
		d.Corruptf("cursor maxima (%d, %d, t%d) inconsistent with history length %d",
			ls.cmax1, ls.cmax2, ctmax, n)
		return d.Err()
	}
	ls.ctmax = vt.TID(ctmax)
	nsums := d.Len(1)
	if d.Err() != nil {
		return d.Err()
	}
	if nsums > 0 {
		ls.sums = make(map[int32]*varSummary[S], nsums)
	}
	for i := 0; i < nsums; i++ {
		x := d.Int32()
		sum := &varSummary[S]{}
		var err error
		if sum.reads, err = s.loadContribs(d); err != nil {
			return err
		}
		if sum.writes, err = s.loadContribs(d); err != nil {
			return err
		}
		ls.sums[x] = sum
	}
	ls.peak = d.Int()
	ls.dropped = d.U64()
	if d.Err() == nil && ls.peak < 0 {
		d.Corruptf("lock peak history %d negative", ls.peak)
	}
	return d.Err()
}

// saveContribs serializes one rule-(a) contribution list in order (the
// order fixes the absorb sequence after resume).
func (s *SemanticsOf[C, W, S, F]) saveContribs(e *ckpt.Enc, cs []contrib[S]) {
	e.Uvarint(uint64(len(cs)))
	for i := range cs {
		e.Int32(int32(cs[i].t))
		s.store.SaveSnap(e, &cs[i].s)
	}
}

func (s *SemanticsOf[C, W, S, F]) loadContribs(d *ckpt.Dec) ([]contrib[S], error) {
	n := d.Len(1)
	if d.Err() != nil {
		return nil, d.Err()
	}
	var cs []contrib[S]
	for i := 0; i < n; i++ {
		c := contrib[S]{t: vt.LoadTID(d)}
		s.store.LoadSnap(d, &c.s)
		if d.Err() != nil {
			return nil, d.Err()
		}
		cs = append(cs, c)
	}
	return cs, nil
}

// saveVarSet serializes an open section's access set in sorted order;
// an absent (nil) map round-trips as nil.
func saveVarSet(e *ckpt.Enc, m map[int32]struct{}) {
	ids := make([]int32, 0, len(m))
	for x := range m {
		ids = append(ids, x)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.Uvarint(uint64(len(ids)))
	for _, x := range ids {
		e.Int32(x)
	}
}

func loadVarSet(d *ckpt.Dec) map[int32]struct{} {
	n := d.Len(1)
	if d.Err() != nil || n == 0 {
		return nil
	}
	m := make(map[int32]struct{}, n)
	for i := 0; i < n; i++ {
		m[d.Int32()] = struct{}{}
	}
	return m
}
