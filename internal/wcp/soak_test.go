package wcp

// The bounded-memory soak: millions of events of the endless hot-lock
// workload — the adversarial shape for the per-lock critical-section
// history, one entry per section with nothing else growing — streamed
// through both WCP clock variants, asserting that the retained history
// stays O(threads) rather than O(events). Before history compaction
// existed, PeakLockHist here equalled the number of sections (events/5
// and climbing); the companion test pins that pre-fix behavior via the
// SetCompaction(false) knob so the bound is demonstrably compaction's
// doing.

import (
	"testing"

	"treeclock/internal/core"
	"treeclock/internal/engine"
	"treeclock/internal/gen"
	"treeclock/internal/vc"
	"treeclock/internal/vt"
)

const soakThreads = 8

// soakBound is the O(threads) ceiling the compacted history must stay
// under: the scheduler's same-thread bursts leave at most a handful of
// consecutive own entries unabsorbed, far below 4 entries per thread.
const soakBound = 4 * soakThreads

// soakRun streams n hot-lock events through a fresh WCP engine and
// returns its retained-state accounting plus the race total.
func soakRun[C vt.Clock[C]](t *testing.T, f vt.Factory[C], n int, compact bool) (engine.MemStats, uint64) {
	t.Helper()
	e := NewStreaming[C](f)
	e.Sem().SetCompaction(compact)
	acc := e.EnableAnalysis()
	if err := e.ProcessSource(gen.Take(gen.HotLock(soakThreads, 20260730), n)); err != nil {
		t.Fatalf("soak stream: %v", err)
	}
	if got := e.Events(); got != uint64(n) {
		t.Fatalf("processed %d events, want %d", got, n)
	}
	return e.Sem().MemStats(), acc.Total
}

// TestWCPSoakBoundedHistory is the acceptance soak: ≥5M events (capped
// in -short mode), retained history bounded by O(threads) on both
// clock variants, with identical accounting — the weak-order machinery
// is shared, so the HB backbone must not leak into it.
func TestWCPSoakBoundedHistory(t *testing.T) {
	n := 5_000_000
	if testing.Short() {
		n = 200_000
	}
	tree, racesTree := soakRun[*core.TreeClock](t, core.Factory(nil), n, true)
	vcs, racesVC := soakRun[*vc.VectorClock](t, vc.Factory(nil), n, true)
	for _, c := range []struct {
		label string
		ms    engine.MemStats
	}{{"wcp-tree", tree}, {"wcp-vc", vcs}} {
		if c.ms.PeakLockHist > soakBound {
			t.Errorf("%s: peak history length %d exceeds O(threads) bound %d over %d events",
				c.label, c.ms.PeakLockHist, soakBound, n)
		}
		if c.ms.HistEntries > soakBound {
			t.Errorf("%s: %d history entries retained at end, bound %d", c.label, c.ms.HistEntries, soakBound)
		}
		if c.ms.DroppedEntries == 0 {
			t.Errorf("%s: compaction never ran", c.label)
		}
		// Total retained state (histories, summaries, cursors, free
		// list) stays in the tens of kilobytes regardless of n.
		if c.ms.RetainedBytes > 1<<20 {
			t.Errorf("%s: %d bytes retained over %d events — not O(live state)",
				c.label, c.ms.RetainedBytes, n)
		}
	}
	if tree != vcs {
		t.Errorf("retained-state accounting diverges across clocks:\ntree: %+v\nvc:   %+v", tree, vcs)
	}
	// The workload is fully guarded: rule (a) orders every conflicting
	// pair, so a reported race would be an analysis bug.
	if racesTree != 0 || racesVC != 0 {
		t.Errorf("guarded hot-lock workload reported races: tree %d, vc %d", racesTree, racesVC)
	}
}

// TestWCPSoakUnboundedWithoutCompaction pins what the soak above
// guards against: with compaction disabled the history grows with the
// trace, not the thread count — the pre-fix behavior, kept reachable
// through the knob so the bound is attributable.
func TestWCPSoakUnboundedWithoutCompaction(t *testing.T) {
	n := 120_000
	if testing.Short() {
		n = 40_000
	}
	ms, _ := soakRun[*vc.VectorClock](t, vc.Factory(nil), n, false)
	if ms.DroppedEntries != 0 {
		t.Fatalf("compaction ran despite being disabled: %+v", ms)
	}
	// One entry per critical section (a section spans ~5 events), so
	// the peak is within a small factor of n — far beyond the bound.
	if ms.PeakLockHist <= 4*soakBound {
		t.Fatalf("peak history %d with compaction off — expected O(events) growth (n=%d); "+
			"the soak bound would no longer catch a compaction regression", ms.PeakLockHist, n)
	}
}
