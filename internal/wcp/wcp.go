// Package wcp computes the weakly-causally-precedes partial order of
// Kini, Mathur and Viswanathan ("Dynamic Race Prediction in Linear
// Time", PLDI 2017) in a single streaming pass, as a plugin for the
// shared engine runtime. WCP weakens happens-before: a lock edge
// orders two critical sections only when their bodies conflict
// (rule a), releases of same-lock sections are ordered once their
// bodies become WCP-ordered (rule b), and the relation is closed under
// composition with HB on both sides (rule c). Conflicting accesses
// left unordered by WCP ∪ thread-order are predictive races — races
// HB misses because the observed lock serialization hid them. The
// reference semantics lives in internal/oracle (oracle.WCP); the
// differential tests pin this engine against it event by event.
//
// # State
//
// Unlike HB/SHB/MAZ, WCP needs two kinds of per-thread knowledge. The
// HB backbone (thread/lock clocks, acquire/release/fork/join edges) is
// the runtime's and stays generic over the clock data structure — the
// tree-clock variant accelerates exactly those operations. On top of
// it this plugin maintains, via the LockSemantics/ThreadSemantics
// hooks:
//
//   - per thread t, the weak clock W_t: a plain vector holding the
//     pure WCP knowledge {e : e ≺WCP next event of t}. Unlike a thread
//     clock, W_t's own entry is NOT t's local time (thread order is
//     deliberately outside WCP; the race check treats the own thread
//     separately), and other threads routinely hold entries for t that
//     are ahead of W_t's own entry. That breaks the provenance
//     invariant tree-clock joins rely on ("only t's own clock knows
//     t's future"), which is why weak clocks are flat vectors for both
//     registry variants — the observation that motivates the CSSTs
//     line of work on data structures for weak orders. Both variants
//     share this code, so wcp-tree and wcp-vc differ only in the HB
//     backbone and produce byte-identical reports by construction.
//   - per lock ℓ, the weak clock of the last release (rule-c transport
//     across the release→acquire HB edge), a FIFO history of closed
//     critical sections — releasing thread, acquire local time, HB
//     snapshot of the release — with one read cursor per thread
//     (rule b), and per-variable summaries of the HB snapshots of
//     releases whose section read/wrote the variable, kept per
//     contributing thread so a thread never consumes its own sections
//     (rule a applies to sections of different threads only).
//
// All of it grows on first sight of an identifier, like every other
// engine: the plugin needs no trace metadata.
//
// # Memory
//
// Everything above is bounded by the live identifier spaces — O(threads
// × (threads + locks)) for the weak clocks and cursors, O(locks × vars
// × threads) vectors for the rule-(a) summaries (joined in place, one
// per contributing thread) — except the per-lock section histories,
// whose entries each pin a Θ(threads) HB snapshot and which grow with
// the trace. They are therefore compacted: an entry is dropped from the
// FIFO as soon as some thread other than its releaser has absorbed it
// (advanced its rule-(b) cursor past it), and the freed snapshot
// vectors are recycled through a free list. Dropping then is sound on
// well-formed traces: the absorbing release merges the entry's snapshot
// into its weak clock *before* publishing it as ℓ's weak clock, lock
// publications grow monotonically along ℓ's release chain (each
// publisher first joined the previous publication at its acquire), and
// any thread that could still scan the entry must release ℓ later and
// hence acquire ℓ after the absorbing release — inheriting the snapshot
// there, which makes its own absorption a no-op. Note the gate must be
// a *foreign* cursor: the releaser's own cursor skips its entries
// without absorbing them, and its published weak clock never contains
// its own release snapshots, so "every acquiring thread's cursor has
// passed the entry" (or any scheme counting the owner) would lose
// orderings for threads that first touch ℓ — or first appear — later
// and reach the entry's trigger condition through a nested-lock
// rule-(a) summary (see TestWCPCompactionLateThreadSoundness).
//
// Under compaction a lock's retained history is the unabsorbed tail
// only: O(threads) entries on workloads whose critical sections
// conflict (the hot-lock shape — every entry is absorbed by the next
// foreign release), unbounded only when entries can never trigger rule
// (b) for anyone, in which case the WCP definition itself needs them
// indefinitely (the same asymptotics as the paper's per-thread queues,
// which also drain only as their conditions fire). The retained state
// is observable: the plugin implements engine.MemReporter, and
// LockHistStats breaks the accounting down per lock.
//
// # Event handling
//
//   - Acquire: join ℓ's weak clock into W_t (transport), open a
//     section.
//   - Release: scan ℓ's history from t's cursor: while the head
//     entry's acquire is WCP-before this release (epoch check against
//     W_t), absorb its release snapshot into W_t (rule b; FIFO order
//     is sound because an entry can only trigger if every earlier
//     foreign entry triggers — releases are HB-ordered along a lock).
//     Then close the section: append its HB snapshot to the history
//     and merge it into the per-variable summaries of everything the
//     section accessed, and publish W_t as ℓ's weak clock.
//   - Read: join the write summaries of every held lock for x into
//     W_t (rule a), then run the race check, then record x into the
//     open sections' read sets.
//   - Write: as Read, but join read and write summaries, and check
//     against both the last write and the pending reads.
//   - Fork/Join: propagate W along the corresponding HB edges
//     (rule c).
//
// Race checks are FastTrack-style epoch comparisons — last-write
// epoch, last-read epoch promoted to a read vector only when reads are
// concurrent — but ordering is decided by "same thread, or within
// W_t": thread order is checked positionally because WCP does not
// contain it. Detected pairs are reported into the runtime's analysis
// accumulator (Runtime.EnableAnalysis), like MAZ's reversible pairs.
package wcp

import (
	"treeclock/internal/analysis"
	"treeclock/internal/engine"
	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// csEntry is one closed critical section in a lock's FIFO history.
type csEntry struct {
	t     vt.TID    // releasing thread
	acqLT vt.Time   // local time of the section's acquire
	rel   vt.Vector // HB timestamp of the release (incl. its own epoch)
}

// contrib accumulates the HB release snapshots of one thread's closed
// sections that accessed a given variable under a given lock. Keeping
// contributions per thread lets an accessor skip its own (rule a is
// between different threads); the list stays tiny in practice — it has
// one entry per thread that ever guarded the variable with the lock.
type contrib struct {
	t vt.TID
	v vt.Vector
}

// varSummary is the rule-(a) state for one (lock, variable) pair.
type varSummary struct {
	reads  []contrib
	writes []contrib
}

// add merges an HB release snapshot into the contribution of thread t.
func add(cs []contrib, t vt.TID, h vt.Vector) []contrib {
	for i := range cs {
		if cs[i].t == t {
			cs[i].v = joinVec(cs[i].v, h)
			return cs
		}
	}
	return append(cs, contrib{t: t, v: h.Clone()})
}

// lockState is the per-lock WCP bookkeeping.
type lockState struct {
	w      vt.Vector // weak clock of the last release (transport)
	wSet   bool
	hist   []csEntry // closed sections not yet compacted, in release (= trace) order
	cursor []int     // per-thread scan position into hist (rule b)
	sums   map[int32]*varSummary
	// Retained-state accounting: peak is the high-water mark of
	// len(hist); dropped counts entries reclaimed by compaction.
	peak    int
	dropped uint64
}

// openCS is one currently held lock of a thread.
type openCS struct {
	lock    int32
	acqLT   vt.Time
	read    map[int32]struct{}
	written map[int32]struct{}
}

// threadState is the per-thread WCP bookkeeping.
type threadState struct {
	w    vt.Vector // pure WCP knowledge; own entry NOT the local time
	held []openCS  // open critical sections, in acquire order
}

// accessState is the per-variable race-check history (FastTrack-style
// epochs, with the WCP ordering predicate).
type accessState struct {
	w      vt.Epoch  // last write
	r      vt.Epoch  // last read, while reads are totally ordered
	shared vt.Vector // per-thread last reads, once reads were concurrent
}

// Semantics is the WCP plugin for the shared engine runtime. It
// implements the Read/Write hooks plus the LockSemantics and
// ThreadSemantics extensions.
type Semantics[C vt.Clock[C]] struct {
	threads []threadState
	locks   []lockState
	vars    []accessState
	k       int // thread-count high-water mark

	// History compaction (see "Memory" in the package doc): compact
	// gates the rule-(b) prefix drop, free recycles dropped snapshot
	// vectors, and the counters feed MemStats.
	compact      bool
	free         []vt.Vector
	liveHist     int    // history entries currently retained, all locks
	peakLockHist int    // max length any single lock's history reached
	dropped      uint64 // entries reclaimed by compaction, all locks
}

// maxFreeVectors caps the snapshot free list: a burst compaction after
// a long unabsorbed stretch must not turn reclaimed history into a
// permanently hoarded pool. Beyond the cap, dropped vectors go to the
// garbage collector.
const maxFreeVectors = 256

// NewSemantics returns fresh WCP semantics (one per engine run).
// History compaction is enabled; SetCompaction(false) turns it off for
// memory measurements.
func NewSemantics[C vt.Clock[C]]() *Semantics[C] { return &Semantics[C]{compact: true} }

// SetCompaction enables or disables rule-(b) history compaction
// (enabled by default). Disabling exists for the memory benchmarks and
// soak tests that measure the pre-compaction growth; on well-formed
// traces the analysis results are identical either way — compaction
// only drops entries whose absorption would be a no-op.
func (s *Semantics[C]) SetCompaction(on bool) { s.compact = on }

// Interface conformance (the runtime detects the extensions).
var (
	_ engine.LockSemantics[*noClock]   = (*Semantics[*noClock])(nil)
	_ engine.ThreadSemantics[*noClock] = (*Semantics[*noClock])(nil)
	_ engine.MemReporter               = (*Semantics[*noClock])(nil)
)

// joinVec grows dst to cover src and joins src into it.
func joinVec(dst, src vt.Vector) vt.Vector {
	if len(src) > len(dst) {
		dst = vt.GrowSlice(dst, len(src))
	}
	dst.Join(src)
	return dst
}

// thread returns thread t's state, growing the thread space.
func (s *Semantics[C]) thread(t vt.TID) *threadState {
	s.threads = vt.GrowSlice(s.threads, int(t)+1)
	if int(t) >= s.k {
		s.k = int(t) + 1
	}
	return &s.threads[t]
}

// lockOf returns lock l's state, growing the lock space.
func (s *Semantics[C]) lockOf(l int32) *lockState {
	s.locks = vt.GrowSlice(s.locks, int(l)+1)
	return &s.locks[l]
}

// varOf returns variable x's race-check history, growing the space.
func (s *Semantics[C]) varOf(x int32) *accessState {
	s.vars = vt.GrowSlice(s.vars, int(x)+1)
	return &s.vars[x]
}

// ordered reports whether the event identified by epoch e is ordered
// before thread t's current event under WCP ∪ thread-order: same
// thread (trace order within a thread), or within t's weak clock.
func ordered(e vt.Epoch, t vt.TID, w vt.Vector) bool {
	return e.T == t || e.Clk <= w.Get(e.T)
}

// joinSummaries applies rule (a) for an access of x by t: the release
// snapshot of every earlier conflicting same-lock section of another
// thread joins the weak clock. Writes conflict with everything;
// reads only with writes.
func (s *Semantics[C]) joinSummaries(ts *threadState, t vt.TID, x int32, isWrite bool) {
	for i := range ts.held {
		ls := s.lockOf(ts.held[i].lock)
		sum := ls.sums[x]
		if sum == nil {
			continue
		}
		for j := range sum.writes {
			if sum.writes[j].t != t {
				ts.w = joinVec(ts.w, sum.writes[j].v)
			}
		}
		if isWrite {
			for j := range sum.reads {
				if sum.reads[j].t != t {
					ts.w = joinVec(ts.w, sum.reads[j].v)
				}
			}
		}
	}
}

// record notes the access in every open section of the thread.
func record(ts *threadState, x int32, isWrite bool) {
	for i := range ts.held {
		cs := &ts.held[i]
		if isWrite {
			if cs.written == nil {
				cs.written = make(map[int32]struct{})
			}
			cs.written[x] = struct{}{}
		} else {
			if cs.read == nil {
				cs.read = make(map[int32]struct{})
			}
			cs.read[x] = struct{}{}
		}
	}
}

// Read implements engine.Semantics.
func (s *Semantics[C]) Read(rt *engine.Runtime[C], t vt.TID, x int32, ct C) {
	ts := s.thread(t)
	s.joinSummaries(ts, t, x, false)
	vs := s.varOf(x)
	now := vt.Epoch{T: t, Clk: ct.Get(t)}
	if acc := rt.Analysis(); acc != nil {
		if !vs.w.Zero() && !ordered(vs.w, t, ts.w) {
			acc.Report(analysis.WriteRead, x, vs.w, now)
		}
	}
	// Read metadata: a single epoch while reads are totally ordered,
	// promoted to a per-thread vector on the first concurrent pair —
	// the same adaptive scheme as the HB/SHB detector, under the WCP
	// ordering predicate.
	if vs.shared != nil {
		if int(t) >= len(vs.shared) {
			vs.shared = vt.GrowSlice(vs.shared, s.k)
		}
		vs.shared[t] = now.Clk
	} else if vs.r.Zero() || ordered(vs.r, t, ts.w) {
		vs.r = now
	} else {
		n := s.k
		if int(vs.r.T) >= n {
			n = int(vs.r.T) + 1
		}
		vs.shared = vt.NewVector(n)
		vs.shared[vs.r.T] = vs.r.Clk
		vs.shared[t] = now.Clk
		vs.r = vt.Epoch{}
	}
	record(ts, x, false)
}

// Write implements engine.Semantics.
func (s *Semantics[C]) Write(rt *engine.Runtime[C], t vt.TID, x int32, ct C) {
	ts := s.thread(t)
	s.joinSummaries(ts, t, x, true)
	vs := s.varOf(x)
	now := vt.Epoch{T: t, Clk: ct.Get(t)}
	if acc := rt.Analysis(); acc != nil {
		if !vs.w.Zero() && !ordered(vs.w, t, ts.w) {
			acc.Report(analysis.WriteWrite, x, vs.w, now)
		}
		if vs.shared != nil {
			for u, rc := range vs.shared {
				if rc > 0 && !ordered(vt.Epoch{T: vt.TID(u), Clk: rc}, t, ts.w) {
					acc.Report(analysis.ReadWrite, x, vt.Epoch{T: vt.TID(u), Clk: rc}, now)
				}
			}
		} else if !vs.r.Zero() && !ordered(vs.r, t, ts.w) {
			acc.Report(analysis.ReadWrite, x, vs.r, now)
		}
	}
	// A read that later races an access would also race this write (or
	// the write itself races), so the read metadata resets — the same
	// variable-level completeness argument as the HB detector, which
	// only needs the order to be transitively closed over thread order.
	vs.shared = nil
	vs.r = vt.Epoch{}
	vs.w = now
	record(ts, x, true)
}

// Acquire implements engine.LockSemantics: rule-(c) transport across
// the release→acquire HB edge, then open the section. A reacquire of a
// lock the thread already holds (malformed input) keeps the original
// section.
func (s *Semantics[C]) Acquire(rt *engine.Runtime[C], t vt.TID, l int32, ct C) {
	ts := s.thread(t)
	ls := s.lockOf(l)
	if ls.wSet {
		ts.w = joinVec(ts.w, ls.w)
	}
	for i := range ts.held {
		if ts.held[i].lock == l {
			return
		}
	}
	ts.held = append(ts.held, openCS{lock: l, acqLT: ct.Get(t)})
}

// Release implements engine.LockSemantics: rule (b) against the lock's
// section history, then close the section (history entry + rule-(a)
// summaries), then publish the weak clock. A release of a lock the
// thread does not hold (malformed input) closes nothing but still
// publishes, mirroring the runtime's uniform lock-clock overwrite.
func (s *Semantics[C]) Release(rt *engine.Runtime[C], t vt.TID, l int32, ct C) {
	ts := s.thread(t)
	ls := s.lockOf(l)

	held := -1
	for i := range ts.held {
		if ts.held[i].lock == l {
			held = i
		}
	}

	if held >= 0 {
		// Rule (b): absorb every earlier foreign section whose acquire
		// is already WCP-before this release. The FIFO scan may stop at
		// the first miss: a later foreign entry's acquire is HB-after
		// every earlier entry's release (same lock), so by rule (c) it
		// can only be WCP-before this release if the earlier ones are.
		if int(t) >= len(ls.cursor) {
			ls.cursor = vt.GrowSlice(ls.cursor, s.k)
		}
		for ls.cursor[t] < len(ls.hist) {
			e := &ls.hist[ls.cursor[t]]
			if e.t == t {
				ls.cursor[t]++
				continue
			}
			if ts.w.Get(e.t) >= e.acqLT {
				ts.w = joinVec(ts.w, e.rel)
				ls.cursor[t]++
				continue
			}
			break
		}

		cs := ts.held[held]
		ts.held = append(ts.held[:held], ts.held[held+1:]...)
		// The HB snapshot of this release: everything ≤HB here rides
		// along any rule-(a)/(b) edge out of this section (rule c).
		// The snapshot is retained by the history entry, so it needs
		// its own storage — recycled from compacted entries when
		// available.
		h := ct.Vector(s.newSnapshot(rt.Threads()))
		ls.hist = append(ls.hist, csEntry{t: t, acqLT: cs.acqLT, rel: h})
		s.liveHist++
		if len(ls.hist) > ls.peak {
			ls.peak = len(ls.hist)
			if ls.peak > s.peakLockHist {
				s.peakLockHist = ls.peak
			}
		}
		if len(cs.read)+len(cs.written) > 0 && ls.sums == nil {
			ls.sums = make(map[int32]*varSummary)
		}
		for x := range cs.read {
			sum := ls.sums[x]
			if sum == nil {
				sum = &varSummary{}
				ls.sums[x] = sum
			}
			sum.reads = add(sum.reads, t, h)
		}
		for x := range cs.written {
			sum := ls.sums[x]
			if sum == nil {
				sum = &varSummary{}
				ls.sums[x] = sum
			}
			sum.writes = add(sum.writes, t, h)
		}
		// Reclaim the history prefix this scan (and earlier ones) has
		// made dead. The entry appended above is never dropped here: no
		// foreign cursor can be past it yet.
		if s.compact {
			s.compactLock(ls)
		}
	}

	// Transport: the weak knowledge at this release is what a later
	// acquirer inherits across the HB edge (rule c). The release's own
	// epoch is deliberately NOT included — rel→acq is an HB edge, not a
	// WCP one.
	if len(ls.w) < len(ts.w) {
		ls.w = vt.GrowSlice(ls.w, len(ts.w))
	}
	for i := range ls.w {
		if i < len(ts.w) {
			ls.w[i] = ts.w[i]
		} else {
			ls.w[i] = 0
		}
	}
	ls.wSet = true
}

// compactLock drops the longest history prefix in which every entry
// has been absorbed by a thread other than its releaser, recycling the
// freed snapshot vectors.
//
// Soundness (well-formed traces; see also the package doc): once a
// foreign thread's cursor is past an entry, that thread joined the
// entry's snapshot into its weak clock during the rule-(b) scan of one
// of its releases of ℓ and published the enlarged clock as ℓ's weak
// clock in the same Release step. Publications along ℓ's release chain
// are monotone — the lock is held exclusively, so every publisher
// first joined the previous publication at its acquire. Any thread
// that might still scan the entry does so at a later release of ℓ,
// whose matching acquire follows the absorbing release in ℓ's chain
// and therefore already inherited the snapshot: skipping the entry
// changes nothing. The gate is deliberately a *foreign* cursor — the
// releaser's own cursor skips its entries without absorbing them, and
// its published weak clock never includes its own release snapshots,
// so an owner-counting gate would drop entries still needed by threads
// that first reach ℓ (or first appear) later.
//
// Per entry the check is O(1) given the top two cursor positions: an
// entry at index i has a foreign cursor beyond it iff i < max2 (two
// distinct threads are past it — at least one is foreign) or
// i < max1 with the entry not owned by the unique maximum's thread.
func (s *Semantics[C]) compactLock(ls *lockState) {
	max1, max2 := 0, 0 // top two cursor positions, max1 ≥ max2
	var tmax vt.TID = vt.None
	for t, c := range ls.cursor {
		if c > max1 {
			max2 = max1
			max1, tmax = c, vt.TID(t)
		} else if c > max2 {
			max2 = c
		}
	}
	drop := 0
	for drop < len(ls.hist) && (drop < max2 || (drop < max1 && ls.hist[drop].t != tmax)) {
		drop++
	}
	if drop == 0 {
		return
	}
	for i := 0; i < drop; i++ {
		if len(s.free) < maxFreeVectors {
			s.free = append(s.free, ls.hist[i].rel)
		}
		ls.hist[i].rel = nil
	}
	n := copy(ls.hist, ls.hist[drop:])
	for i := n; i < len(ls.hist); i++ {
		ls.hist[i] = csEntry{} // unpin the moved entries' snapshots
	}
	ls.hist = ls.hist[:n]
	for t := range ls.cursor {
		if ls.cursor[t] > drop {
			ls.cursor[t] -= drop
		} else {
			ls.cursor[t] = 0
		}
	}
	ls.dropped += uint64(drop)
	s.dropped += uint64(drop)
	s.liveHist -= drop
}

// newSnapshot returns a zeroed vector of length k for a release
// snapshot, reusing a compacted entry's vector when one with enough
// capacity is available.
func (s *Semantics[C]) newSnapshot(k int) vt.Vector {
	n := len(s.free)
	if n == 0 {
		return vt.NewVector(k)
	}
	v := s.free[n-1]
	s.free[n-1] = nil
	s.free = s.free[:n-1]
	if cap(v) < k {
		return vt.NewVector(k)
	}
	v = v[:k]
	for i := range v {
		v[i] = 0
	}
	return v
}

// Per-object constants for the approximate retained-bytes accounting:
// slice header + fixed fields of a csEntry, and of a contrib.
const (
	csEntryBytes = 40
	contribBytes = 32
)

// lockStat computes one lock's retained-history statistics.
func (s *Semantics[C]) lockStat(l int32) LockHistStat {
	ls := &s.locks[l]
	st := LockHistStat{Lock: l, Live: len(ls.hist), Peak: ls.peak, Dropped: ls.dropped}
	for i := range ls.hist {
		st.RetainedBytes += uint64(len(ls.hist[i].rel))*8 + csEntryBytes
	}
	st.RetainedBytes += uint64(len(ls.cursor))*8 + uint64(len(ls.w))*8
	for _, sum := range ls.sums {
		for i := range sum.reads {
			st.Summaries++
			st.RetainedBytes += uint64(len(sum.reads[i].v))*8 + contribBytes
		}
		for i := range sum.writes {
			st.Summaries++
			st.RetainedBytes += uint64(len(sum.writes[i].v))*8 + contribBytes
		}
	}
	return st
}

// LockHistStat summarizes one lock's retained rule-(b) history and
// rule-(a) summaries (see cmd/traceinfo -wcp).
type LockHistStat struct {
	Lock      int32
	Live      int    // history entries currently retained
	Peak      int    // high-water mark of the history length
	Dropped   uint64 // entries reclaimed by compaction
	Summaries int    // rule-(a) contribution vectors retained
	// RetainedBytes approximates the bytes pinned by the above (8 per
	// vector entry plus small per-object constants).
	RetainedBytes uint64
}

// LockHistStats reports per-lock retained-history statistics for every
// lock that retained or reclaimed any state, in lock id order.
func (s *Semantics[C]) LockHistStats() []LockHistStat {
	var out []LockHistStat
	for l := range s.locks {
		st := s.lockStat(int32(l))
		if st.Live == 0 && st.Dropped == 0 && st.Summaries == 0 {
			continue
		}
		out = append(out, st)
	}
	return out
}

// MemStats implements engine.MemReporter: the retained critical-
// section state, aggregated over all locks.
func (s *Semantics[C]) MemStats() engine.MemStats {
	ms := engine.MemStats{
		HistEntries:    s.liveHist,
		PeakLockHist:   s.peakLockHist,
		DroppedEntries: s.dropped,
		FreeVectors:    len(s.free),
	}
	for l := range s.locks {
		st := s.lockStat(int32(l))
		ms.SummaryVectors += st.Summaries
		ms.RetainedBytes += st.RetainedBytes
	}
	for i := range s.free {
		ms.RetainedBytes += uint64(cap(s.free[i])) * 8
	}
	return ms
}

// Fork implements engine.ThreadSemantics: the child's weak clock
// inherits the parent's (rule c across the fork edge).
func (s *Semantics[C]) Fork(rt *engine.Runtime[C], t vt.TID, u vt.TID, ct C) {
	w := s.thread(t).w
	if len(w) > 0 {
		cu := s.thread(u)
		cu.w = joinVec(cu.w, w)
	}
}

// Join implements engine.ThreadSemantics: the parent absorbs the
// joined thread's weak clock (rule c across the join edge).
func (s *Semantics[C]) Join(rt *engine.Runtime[C], t vt.TID, u vt.TID, ct C) {
	w := s.thread(u).w
	if len(w) > 0 {
		ts := s.thread(t)
		ts.w = joinVec(ts.w, w)
	}
}

// WeakClock exposes thread t's pure WCP knowledge (for tests and
// timestamp comparison against the oracle). The returned vector is
// live; callers must not modify it.
func (s *Semantics[C]) WeakClock(t vt.TID) vt.Vector {
	if int(t) >= len(s.threads) {
		return nil
	}
	return s.threads[t].w
}

// Timestamp writes thread t's WCP ∪ thread-order timestamp — the weak
// clock with the own entry raised to the local time lt — into dst and
// returns it. Like the runtime's Timestamp (whose dst feeds
// Clock.Vector), dst is a scratch destination, not a truncation bound:
// when it is shorter than the weak clock (or cannot hold t's own
// entry) it is grown, so callers must use the returned vector.
func (s *Semantics[C]) Timestamp(t vt.TID, lt vt.Time, dst vt.Vector) vt.Vector {
	need := int(t) + 1
	var w vt.Vector
	if int(t) < len(s.threads) {
		w = s.threads[t].w
		if len(w) > need {
			need = len(w)
		}
	}
	if len(dst) < need {
		dst = vt.GrowSlice(dst, need)
	}
	// Zero everything (a recycled dst, or the capacity tail GrowSlice
	// exposed, may hold stale entries), then lay down the weak clock.
	for i := range dst {
		dst[i] = 0
	}
	copy(dst, w)
	dst[t] = lt
	return dst
}

// Engine computes WCP timestamps while streaming events. It is the
// shared runtime bound to the WCP semantics; every runtime method is
// promoted. Enable reporting with EnableAnalysis (WCP performs its own
// epoch checks, like MAZ).
type Engine[C vt.Clock[C]] struct {
	engine.Runtime[C]
	sem *Semantics[C]
}

// Sem returns the bound semantics (weak clocks, for inspection).
func (e *Engine[C]) Sem() *Semantics[C] { return e.sem }

// Timestamp snapshots thread t's current WCP ∪ thread-order vector
// time into dst, shadowing the promoted runtime method (whose thread
// clocks are the HB scaffolding): like every other engine, a WCP
// engine's timestamps are timestamps of the order it computes. The
// thread's local time is read off its HB clock (own entries agree
// across all orders).
func (e *Engine[C]) Timestamp(t vt.TID, dst vt.Vector) vt.Vector {
	return e.sem.Timestamp(t, e.ThreadClock(t).Get(t), dst)
}

// New builds a WCP engine pre-sized for traces with the given
// metadata.
func New[C vt.Clock[C]](meta trace.Meta, factory vt.Factory[C]) *Engine[C] {
	sem := NewSemantics[C]()
	e := &Engine[C]{sem: sem}
	e.Runtime = *engine.NewWithMeta[C](sem, factory, meta)
	return e
}

// NewStreaming builds a WCP engine that discovers the trace's
// identifier spaces on the fly (no prior metadata).
func NewStreaming[C vt.Clock[C]](factory vt.Factory[C]) *Engine[C] {
	sem := NewSemantics[C]()
	e := &Engine[C]{sem: sem}
	e.Runtime = *engine.New[C](sem, factory)
	return e
}

// noClock is a minimal vt.Clock used only for the compile-time
// interface-conformance assertions above.
type noClock struct{}

func (*noClock) Init(vt.TID)                     {}
func (*noClock) Get(vt.TID) vt.Time              { return 0 }
func (*noClock) Inc(vt.TID, vt.Time)             {}
func (*noClock) Grow(int)                        {}
func (*noClock) Join(*noClock)                   {}
func (*noClock) MonotoneCopy(*noClock)           {}
func (*noClock) CopyCheckMonotone(*noClock) bool { return true }
func (*noClock) Vector(dst vt.Vector) vt.Vector  { return dst }
