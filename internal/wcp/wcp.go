// Package wcp computes the weakly-causally-precedes partial order of
// Kini, Mathur and Viswanathan ("Dynamic Race Prediction in Linear
// Time", PLDI 2017) in a single streaming pass, as a plugin for the
// shared engine runtime. WCP weakens happens-before: a lock edge
// orders two critical sections only when their bodies conflict
// (rule a), releases of same-lock sections are ordered once their
// bodies become WCP-ordered (rule b), and the relation is closed under
// composition with HB on both sides (rule c). Conflicting accesses
// left unordered by WCP ∪ thread-order are predictive races — races
// HB misses because the observed lock serialization hid them. The
// reference semantics lives in internal/oracle (oracle.WCP); the
// differential tests pin this engine against it event by event.
//
// # State
//
// Unlike HB/SHB/MAZ, WCP needs two kinds of per-thread knowledge. The
// HB backbone (thread/lock clocks, acquire/release/fork/join edges) is
// the runtime's and stays generic over the clock data structure — the
// tree-clock variant accelerates exactly those operations. On top of
// it this plugin maintains, via the LockSemantics/ThreadSemantics
// hooks:
//
//   - per thread t, the weak clock W_t: a plain vector holding the
//     pure WCP knowledge {e : e ≺WCP next event of t}. Unlike a thread
//     clock, W_t's own entry is NOT t's local time (thread order is
//     deliberately outside WCP; the race check treats the own thread
//     separately), and other threads routinely hold entries for t that
//     are ahead of W_t's own entry. That breaks the provenance
//     invariant tree-clock joins rely on ("only t's own clock knows
//     t's future"), which is why weak clocks are flat vectors for both
//     registry variants — the observation that motivates the CSSTs
//     line of work on data structures for weak orders. Both variants
//     share this code, so wcp-tree and wcp-vc differ only in the HB
//     backbone and produce byte-identical reports by construction.
//   - per lock ℓ, the weak clock of the last release (rule-c transport
//     across the release→acquire HB edge), a FIFO history of closed
//     critical sections — releasing thread, acquire local time, HB
//     snapshot of the release — with one read cursor per thread
//     (rule b), and per-variable summaries of the HB snapshots of
//     releases whose section read/wrote the variable, kept per
//     contributing thread so a thread never consumes its own sections
//     (rule a applies to sections of different threads only).
//
// All of it grows on first sight of an identifier, like every other
// engine: the plugin needs no trace metadata. Memory is proportional
// to the live identifier spaces plus the per-lock section histories;
// histories are retained until every thread's cursor passes an entry
// (the same asymptotics as the paper's per-thread queues).
//
// # Event handling
//
//   - Acquire: join ℓ's weak clock into W_t (transport), open a
//     section.
//   - Release: scan ℓ's history from t's cursor: while the head
//     entry's acquire is WCP-before this release (epoch check against
//     W_t), absorb its release snapshot into W_t (rule b; FIFO order
//     is sound because an entry can only trigger if every earlier
//     foreign entry triggers — releases are HB-ordered along a lock).
//     Then close the section: append its HB snapshot to the history
//     and merge it into the per-variable summaries of everything the
//     section accessed, and publish W_t as ℓ's weak clock.
//   - Read: join the write summaries of every held lock for x into
//     W_t (rule a), then run the race check, then record x into the
//     open sections' read sets.
//   - Write: as Read, but join read and write summaries, and check
//     against both the last write and the pending reads.
//   - Fork/Join: propagate W along the corresponding HB edges
//     (rule c).
//
// Race checks are FastTrack-style epoch comparisons — last-write
// epoch, last-read epoch promoted to a read vector only when reads are
// concurrent — but ordering is decided by "same thread, or within
// W_t": thread order is checked positionally because WCP does not
// contain it. Detected pairs are reported into the runtime's analysis
// accumulator (Runtime.EnableAnalysis), like MAZ's reversible pairs.
package wcp

import (
	"treeclock/internal/analysis"
	"treeclock/internal/engine"
	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// csEntry is one closed critical section in a lock's FIFO history.
type csEntry struct {
	t     vt.TID    // releasing thread
	acqLT vt.Time   // local time of the section's acquire
	rel   vt.Vector // HB timestamp of the release (incl. its own epoch)
}

// contrib accumulates the HB release snapshots of one thread's closed
// sections that accessed a given variable under a given lock. Keeping
// contributions per thread lets an accessor skip its own (rule a is
// between different threads); the list stays tiny in practice — it has
// one entry per thread that ever guarded the variable with the lock.
type contrib struct {
	t vt.TID
	v vt.Vector
}

// varSummary is the rule-(a) state for one (lock, variable) pair.
type varSummary struct {
	reads  []contrib
	writes []contrib
}

// add merges an HB release snapshot into the contribution of thread t.
func add(cs []contrib, t vt.TID, h vt.Vector) []contrib {
	for i := range cs {
		if cs[i].t == t {
			cs[i].v = joinVec(cs[i].v, h)
			return cs
		}
	}
	return append(cs, contrib{t: t, v: h.Clone()})
}

// lockState is the per-lock WCP bookkeeping.
type lockState struct {
	w      vt.Vector // weak clock of the last release (transport)
	wSet   bool
	hist   []csEntry // closed sections, in release (= trace) order
	cursor []int     // per-thread scan position into hist (rule b)
	sums   map[int32]*varSummary
}

// openCS is one currently held lock of a thread.
type openCS struct {
	lock    int32
	acqLT   vt.Time
	read    map[int32]struct{}
	written map[int32]struct{}
}

// threadState is the per-thread WCP bookkeeping.
type threadState struct {
	w    vt.Vector // pure WCP knowledge; own entry NOT the local time
	held []openCS  // open critical sections, in acquire order
}

// accessState is the per-variable race-check history (FastTrack-style
// epochs, with the WCP ordering predicate).
type accessState struct {
	w      vt.Epoch  // last write
	r      vt.Epoch  // last read, while reads are totally ordered
	shared vt.Vector // per-thread last reads, once reads were concurrent
}

// Semantics is the WCP plugin for the shared engine runtime. It
// implements the Read/Write hooks plus the LockSemantics and
// ThreadSemantics extensions.
type Semantics[C vt.Clock[C]] struct {
	threads []threadState
	locks   []lockState
	vars    []accessState
	k       int // thread-count high-water mark
}

// NewSemantics returns fresh WCP semantics (one per engine run).
func NewSemantics[C vt.Clock[C]]() *Semantics[C] { return &Semantics[C]{} }

// Interface conformance (the runtime detects the extensions).
var (
	_ engine.LockSemantics[*noClock]   = (*Semantics[*noClock])(nil)
	_ engine.ThreadSemantics[*noClock] = (*Semantics[*noClock])(nil)
)

// joinVec grows dst to cover src and joins src into it.
func joinVec(dst, src vt.Vector) vt.Vector {
	if len(src) > len(dst) {
		dst = vt.GrowSlice(dst, len(src))
	}
	dst.Join(src)
	return dst
}

// thread returns thread t's state, growing the thread space.
func (s *Semantics[C]) thread(t vt.TID) *threadState {
	s.threads = vt.GrowSlice(s.threads, int(t)+1)
	if int(t) >= s.k {
		s.k = int(t) + 1
	}
	return &s.threads[t]
}

// lockOf returns lock l's state, growing the lock space.
func (s *Semantics[C]) lockOf(l int32) *lockState {
	s.locks = vt.GrowSlice(s.locks, int(l)+1)
	return &s.locks[l]
}

// varOf returns variable x's race-check history, growing the space.
func (s *Semantics[C]) varOf(x int32) *accessState {
	s.vars = vt.GrowSlice(s.vars, int(x)+1)
	return &s.vars[x]
}

// ordered reports whether the event identified by epoch e is ordered
// before thread t's current event under WCP ∪ thread-order: same
// thread (trace order within a thread), or within t's weak clock.
func ordered(e vt.Epoch, t vt.TID, w vt.Vector) bool {
	return e.T == t || e.Clk <= w.Get(e.T)
}

// joinSummaries applies rule (a) for an access of x by t: the release
// snapshot of every earlier conflicting same-lock section of another
// thread joins the weak clock. Writes conflict with everything;
// reads only with writes.
func (s *Semantics[C]) joinSummaries(ts *threadState, t vt.TID, x int32, isWrite bool) {
	for i := range ts.held {
		ls := s.lockOf(ts.held[i].lock)
		sum := ls.sums[x]
		if sum == nil {
			continue
		}
		for j := range sum.writes {
			if sum.writes[j].t != t {
				ts.w = joinVec(ts.w, sum.writes[j].v)
			}
		}
		if isWrite {
			for j := range sum.reads {
				if sum.reads[j].t != t {
					ts.w = joinVec(ts.w, sum.reads[j].v)
				}
			}
		}
	}
}

// record notes the access in every open section of the thread.
func record(ts *threadState, x int32, isWrite bool) {
	for i := range ts.held {
		cs := &ts.held[i]
		if isWrite {
			if cs.written == nil {
				cs.written = make(map[int32]struct{})
			}
			cs.written[x] = struct{}{}
		} else {
			if cs.read == nil {
				cs.read = make(map[int32]struct{})
			}
			cs.read[x] = struct{}{}
		}
	}
}

// Read implements engine.Semantics.
func (s *Semantics[C]) Read(rt *engine.Runtime[C], t vt.TID, x int32, ct C) {
	ts := s.thread(t)
	s.joinSummaries(ts, t, x, false)
	vs := s.varOf(x)
	now := vt.Epoch{T: t, Clk: ct.Get(t)}
	if acc := rt.Analysis(); acc != nil {
		if !vs.w.Zero() && !ordered(vs.w, t, ts.w) {
			acc.Report(analysis.WriteRead, x, vs.w, now)
		}
	}
	// Read metadata: a single epoch while reads are totally ordered,
	// promoted to a per-thread vector on the first concurrent pair —
	// the same adaptive scheme as the HB/SHB detector, under the WCP
	// ordering predicate.
	if vs.shared != nil {
		if int(t) >= len(vs.shared) {
			vs.shared = vt.GrowSlice(vs.shared, s.k)
		}
		vs.shared[t] = now.Clk
	} else if vs.r.Zero() || ordered(vs.r, t, ts.w) {
		vs.r = now
	} else {
		n := s.k
		if int(vs.r.T) >= n {
			n = int(vs.r.T) + 1
		}
		vs.shared = vt.NewVector(n)
		vs.shared[vs.r.T] = vs.r.Clk
		vs.shared[t] = now.Clk
		vs.r = vt.Epoch{}
	}
	record(ts, x, false)
}

// Write implements engine.Semantics.
func (s *Semantics[C]) Write(rt *engine.Runtime[C], t vt.TID, x int32, ct C) {
	ts := s.thread(t)
	s.joinSummaries(ts, t, x, true)
	vs := s.varOf(x)
	now := vt.Epoch{T: t, Clk: ct.Get(t)}
	if acc := rt.Analysis(); acc != nil {
		if !vs.w.Zero() && !ordered(vs.w, t, ts.w) {
			acc.Report(analysis.WriteWrite, x, vs.w, now)
		}
		if vs.shared != nil {
			for u, rc := range vs.shared {
				if rc > 0 && !ordered(vt.Epoch{T: vt.TID(u), Clk: rc}, t, ts.w) {
					acc.Report(analysis.ReadWrite, x, vt.Epoch{T: vt.TID(u), Clk: rc}, now)
				}
			}
		} else if !vs.r.Zero() && !ordered(vs.r, t, ts.w) {
			acc.Report(analysis.ReadWrite, x, vs.r, now)
		}
	}
	// A read that later races an access would also race this write (or
	// the write itself races), so the read metadata resets — the same
	// variable-level completeness argument as the HB detector, which
	// only needs the order to be transitively closed over thread order.
	vs.shared = nil
	vs.r = vt.Epoch{}
	vs.w = now
	record(ts, x, true)
}

// Acquire implements engine.LockSemantics: rule-(c) transport across
// the release→acquire HB edge, then open the section. A reacquire of a
// lock the thread already holds (malformed input) keeps the original
// section.
func (s *Semantics[C]) Acquire(rt *engine.Runtime[C], t vt.TID, l int32, ct C) {
	ts := s.thread(t)
	ls := s.lockOf(l)
	if ls.wSet {
		ts.w = joinVec(ts.w, ls.w)
	}
	for i := range ts.held {
		if ts.held[i].lock == l {
			return
		}
	}
	ts.held = append(ts.held, openCS{lock: l, acqLT: ct.Get(t)})
}

// Release implements engine.LockSemantics: rule (b) against the lock's
// section history, then close the section (history entry + rule-(a)
// summaries), then publish the weak clock. A release of a lock the
// thread does not hold (malformed input) closes nothing but still
// publishes, mirroring the runtime's uniform lock-clock overwrite.
func (s *Semantics[C]) Release(rt *engine.Runtime[C], t vt.TID, l int32, ct C) {
	ts := s.thread(t)
	ls := s.lockOf(l)

	held := -1
	for i := range ts.held {
		if ts.held[i].lock == l {
			held = i
		}
	}

	if held >= 0 {
		// Rule (b): absorb every earlier foreign section whose acquire
		// is already WCP-before this release. The FIFO scan may stop at
		// the first miss: a later foreign entry's acquire is HB-after
		// every earlier entry's release (same lock), so by rule (c) it
		// can only be WCP-before this release if the earlier ones are.
		if int(t) >= len(ls.cursor) {
			ls.cursor = vt.GrowSlice(ls.cursor, s.k)
		}
		for ls.cursor[t] < len(ls.hist) {
			e := &ls.hist[ls.cursor[t]]
			if e.t == t {
				ls.cursor[t]++
				continue
			}
			if ts.w.Get(e.t) >= e.acqLT {
				ts.w = joinVec(ts.w, e.rel)
				ls.cursor[t]++
				continue
			}
			break
		}

		cs := ts.held[held]
		ts.held = append(ts.held[:held], ts.held[held+1:]...)
		// The HB snapshot of this release: everything ≤HB here rides
		// along any rule-(a)/(b) edge out of this section (rule c).
		// The snapshot is retained by the history entry, so it is
		// allocated rather than reused.
		h := ct.Vector(vt.NewVector(rt.Threads()))
		ls.hist = append(ls.hist, csEntry{t: t, acqLT: cs.acqLT, rel: h})
		if len(cs.read)+len(cs.written) > 0 && ls.sums == nil {
			ls.sums = make(map[int32]*varSummary)
		}
		for x := range cs.read {
			sum := ls.sums[x]
			if sum == nil {
				sum = &varSummary{}
				ls.sums[x] = sum
			}
			sum.reads = add(sum.reads, t, h)
		}
		for x := range cs.written {
			sum := ls.sums[x]
			if sum == nil {
				sum = &varSummary{}
				ls.sums[x] = sum
			}
			sum.writes = add(sum.writes, t, h)
		}
	}

	// Transport: the weak knowledge at this release is what a later
	// acquirer inherits across the HB edge (rule c). The release's own
	// epoch is deliberately NOT included — rel→acq is an HB edge, not a
	// WCP one.
	if len(ls.w) < len(ts.w) {
		ls.w = vt.GrowSlice(ls.w, len(ts.w))
	}
	for i := range ls.w {
		if i < len(ts.w) {
			ls.w[i] = ts.w[i]
		} else {
			ls.w[i] = 0
		}
	}
	ls.wSet = true
}

// Fork implements engine.ThreadSemantics: the child's weak clock
// inherits the parent's (rule c across the fork edge).
func (s *Semantics[C]) Fork(rt *engine.Runtime[C], t vt.TID, u vt.TID, ct C) {
	w := s.thread(t).w
	if len(w) > 0 {
		cu := s.thread(u)
		cu.w = joinVec(cu.w, w)
	}
}

// Join implements engine.ThreadSemantics: the parent absorbs the
// joined thread's weak clock (rule c across the join edge).
func (s *Semantics[C]) Join(rt *engine.Runtime[C], t vt.TID, u vt.TID, ct C) {
	w := s.thread(u).w
	if len(w) > 0 {
		ts := s.thread(t)
		ts.w = joinVec(ts.w, w)
	}
}

// WeakClock exposes thread t's pure WCP knowledge (for tests and
// timestamp comparison against the oracle). The returned vector is
// live; callers must not modify it.
func (s *Semantics[C]) WeakClock(t vt.TID) vt.Vector {
	if int(t) >= len(s.threads) {
		return nil
	}
	return s.threads[t].w
}

// Timestamp writes thread t's WCP ∪ thread-order timestamp — the weak
// clock with the own entry raised to the local time lt — into dst.
func (s *Semantics[C]) Timestamp(t vt.TID, lt vt.Time, dst vt.Vector) vt.Vector {
	for i := range dst {
		dst[i] = 0
	}
	if int(t) < len(s.threads) {
		copy(dst, s.threads[t].w)
	}
	if int(t) < len(dst) {
		dst[t] = lt
	}
	return dst
}

// Engine computes WCP timestamps while streaming events. It is the
// shared runtime bound to the WCP semantics; every runtime method is
// promoted. Enable reporting with EnableAnalysis (WCP performs its own
// epoch checks, like MAZ).
type Engine[C vt.Clock[C]] struct {
	engine.Runtime[C]
	sem *Semantics[C]
}

// Sem returns the bound semantics (weak clocks, for inspection).
func (e *Engine[C]) Sem() *Semantics[C] { return e.sem }

// Timestamp snapshots thread t's current WCP ∪ thread-order vector
// time into dst, shadowing the promoted runtime method (whose thread
// clocks are the HB scaffolding): like every other engine, a WCP
// engine's timestamps are timestamps of the order it computes. The
// thread's local time is read off its HB clock (own entries agree
// across all orders).
func (e *Engine[C]) Timestamp(t vt.TID, dst vt.Vector) vt.Vector {
	return e.sem.Timestamp(t, e.ThreadClock(t).Get(t), dst)
}

// New builds a WCP engine pre-sized for traces with the given
// metadata.
func New[C vt.Clock[C]](meta trace.Meta, factory vt.Factory[C]) *Engine[C] {
	sem := NewSemantics[C]()
	e := &Engine[C]{sem: sem}
	e.Runtime = *engine.NewWithMeta[C](sem, factory, meta)
	return e
}

// NewStreaming builds a WCP engine that discovers the trace's
// identifier spaces on the fly (no prior metadata).
func NewStreaming[C vt.Clock[C]](factory vt.Factory[C]) *Engine[C] {
	sem := NewSemantics[C]()
	e := &Engine[C]{sem: sem}
	e.Runtime = *engine.New[C](sem, factory)
	return e
}

// noClock is a minimal vt.Clock used only for the compile-time
// interface-conformance assertions above.
type noClock struct{}

func (*noClock) Init(vt.TID)                     {}
func (*noClock) Get(vt.TID) vt.Time              { return 0 }
func (*noClock) Inc(vt.TID, vt.Time)             {}
func (*noClock) Grow(int)                        {}
func (*noClock) Join(*noClock)                   {}
func (*noClock) MonotoneCopy(*noClock)           {}
func (*noClock) CopyCheckMonotone(*noClock) bool { return true }
func (*noClock) Vector(dst vt.Vector) vt.Vector  { return dst }
