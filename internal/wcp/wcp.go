// Package wcp computes the weakly-causally-precedes partial order of
// Kini, Mathur and Viswanathan ("Dynamic Race Prediction in Linear
// Time", PLDI 2017) in a single streaming pass, as a plugin for the
// shared engine runtime. WCP weakens happens-before: a lock edge
// orders two critical sections only when their bodies conflict
// (rule a), releases of same-lock sections are ordered once their
// bodies become WCP-ordered (rule b), and the relation is closed under
// composition with HB on both sides (rule c). Conflicting accesses
// left unordered by WCP ∪ thread-order are predictive races — races
// HB misses because the observed lock serialization hid them. The
// reference semantics lives in internal/oracle (oracle.WCP); the
// differential tests pin this engine against it event by event.
//
// # State
//
// Unlike HB/SHB/MAZ, WCP needs two kinds of per-thread knowledge. The
// HB backbone (thread/lock clocks, acquire/release/fork/join edges) is
// the runtime's and stays generic over the clock data structure — the
// tree-clock variant accelerates exactly those operations. On top of
// it this plugin maintains, via the LockSemantics/ThreadSemantics
// hooks:
//
//   - per thread t, the weak clock W_t: the pure WCP knowledge
//     {e : e ≺WCP next event of t}. Unlike a thread clock, W_t's own
//     entry is NOT t's local time (thread order is deliberately
//     outside WCP; the race check treats the own thread separately),
//     and other threads routinely hold entries for t that are ahead of
//     W_t's own entry. That breaks the provenance invariant tree-clock
//     joins rely on ("only t's own clock knows t's future"), which is
//     why weak clocks cannot be tree clocks for either registry
//     variant — the observation that motivates the CSSTs line of work
//     on data structures for weak orders (Tunç et al., arXiv
//     2403.17818). Both variants share this code, so wcp-tree and
//     wcp-vc differ only in the HB backbone and produce byte-identical
//     reports by construction.
//   - per lock ℓ, the weak clock of the last release (rule-c transport
//     across the release→acquire HB edge), a FIFO history of closed
//     critical sections — releasing thread, acquire local time, HB
//     snapshot of the release — with one read cursor per thread
//     (rule b), and per-variable summaries of the HB snapshots of
//     releases whose section read/wrote the variable, kept per
//     contributing thread so a thread never consumes its own sections
//     (rule a applies to sections of different threads only).
//
// All of it grows on first sight of an identifier, like every other
// engine: the plugin needs no trace metadata.
//
// # Weak-clock representation
//
// The weak clocks and release snapshots are generic over the transport
// representation (vt.WeakClock / vt.SnapStore): the flat Θ(k) vectors
// that used to be hard-coded remain available as the differential
// baseline (NewSemanticsFlat, NewFlat), but the default is the sparse
// copy-on-write segment representation of vt.Sparse/vt.SparseStore.
// Its costs per release are
//
//   - snapshot: O(k/SegSize) segment compares against the thread's
//     previous release, plus one segment copy per segment in which a
//     *foreign* entry advanced since then — the releaser's own entry
//     is carried out of band as an epoch, so the pure-sync steady
//     state (one lock partner per round) copies exactly one segment
//     and shares the rest by reference;
//   - rule-(b) absorption: one segment join per segment, with
//     pointer-equal and dominated segments short-circuiting to a
//     reference share, plus an O(1) epoch fix for the snapshot's own
//     entry;
//   - publish and rule-(c) transport: reference shares (O(changed
//     segments) amortized).
//
// Soundness of the out-of-band epoch: a snapshot's segments hold the
// exact HB release time for every thread but the releaser itself,
// whose slot may be stale (it is exactly what lets consecutive
// releases share segments). The stale value is bounded by the true
// epoch (a thread's own time only grows), and every absorption repairs
// the slot from the epoch before the weak clock can be observed, so
// weak clocks are exact in every entry and the flat and sparse
// representations are observationally identical — pinned by a
// differential test over the whole corpus.
//
// The rule-(b) scan exploits the same monotonicity the compaction
// proof rests on: snapshots along one lock's history are pointwise
// increasing (each releaser joined the previous release's clock at its
// acquire), so absorbing every triggered entry equals absorbing only
// the last one. The scan therefore advances the cursor entry by entry
// — checking triggers against the thread's weak clock joined with the
// last pending snapshot — and performs a single absorption at the end:
// O(entries passed + changed segments) per release instead of a full
// join per passed entry.
//
// # Memory
//
// Everything above is bounded by the live identifier spaces — O(threads
// × (threads + locks)) for the weak clocks and cursors, O(locks × vars
// × threads) snapshots for the rule-(a) summaries (each replaced in
// place, one per contributing thread) — except the per-lock section
// histories, whose entries each pin a release snapshot and which grow
// with the trace. They are therefore compacted: an entry is dropped
// from the FIFO as soon as some thread other than its releaser has
// absorbed it (advanced its rule-(b) cursor past it), and the freed
// snapshot storage is recycled through the store's free pool. Dropping
// then is sound on well-formed traces: the absorbing release merges
// the entry's snapshot into its weak clock *before* publishing it as
// ℓ's weak clock, lock publications grow monotonically along ℓ's
// release chain (each publisher first joined the previous publication
// at its acquire), and any thread that could still scan the entry must
// release ℓ later and hence acquire ℓ after the absorbing release —
// inheriting the snapshot there, which makes its own absorption a
// no-op. Note the gate must be a *foreign* cursor: the releaser's own
// cursor skips its entries without absorbing them, and its published
// weak clock never contains its own release snapshots, so "every
// acquiring thread's cursor has passed the entry" (or any scheme
// counting the owner) would lose orderings for threads that first
// touch ℓ — or first appear — later and reach the entry's trigger
// condition through a nested-lock rule-(a) summary (see
// TestWCPCompactionLateThreadSoundness).
//
// Under compaction a lock's retained history is the unabsorbed tail
// only: O(threads) entries on workloads whose critical sections
// conflict (the hot-lock shape — every entry is absorbed by the next
// foreign release), unbounded only when entries can never trigger rule
// (b) for anyone, in which case the WCP definition itself needs them
// indefinitely (the same asymptotics as the paper's per-thread queues,
// which also drain only as their conditions fire). The retained state
// is observable: the plugin implements engine.MemReporter, and
// LockHistStats breaks the accounting down per lock.
//
// The rule-(a) summaries have a leak of their own on long streams:
// "O(locks × vars × threads)" is a live-space bound, and a workload
// that rotates its guarded variables through an ever-growing space
// accretes one summary per (lock, var, thread) touched, forever.
// SetSummaryCap bounds them by aging: once live contributions exceed
// the cap, releases sweep out every contribution whose snapshot is
// dominated pointwise by its lock's latest published weak clock.
// Dropping those is a no-op by the publication-chain argument
// (sweepSummaries documents it: any future absorber acquires the lock
// first and joins a publication at or above today's, so the absorption
// was already redundant); locks currently held are skipped because
// their holders joined an older publication and are not yet covered.
// The cap is therefore soft — irreducible summary state is never
// dropped — and capped runs are observationally identical to
// unbounded ones, pinned by the aging differential, a late-thread
// oracle scenario and the churn-plateau soak (aging_test.go).
// Evictions are counted in MemStats.SummaryEvictions, and the sweep
// schedule (cap + cap/8 hysteresis) is checkpointed so resumed runs
// sweep at the same points and stay byte-identical.
//
// # Event handling
//
//   - Acquire: join ℓ's weak clock into W_t (transport), open a
//     section.
//   - Release: scan ℓ's history from t's cursor: while the head
//     entry's acquire is WCP-before this release (epoch check against
//     W_t and the pending snapshot), advance the cursor, then absorb
//     the last triggered snapshot into W_t (rule b; FIFO order is
//     sound because an entry can only trigger if every earlier foreign
//     entry triggers — releases are HB-ordered along a lock). Then
//     close the section: append its HB snapshot to the history and
//     install it as the per-variable summary of everything the section
//     accessed, and publish W_t as ℓ's weak clock.
//   - Read: absorb the write summaries of every held lock for x into
//     W_t (rule a), then run the race check, then record x into the
//     open sections' read sets.
//   - Write: as Read, but absorb read and write summaries, and check
//     against both the last write and the pending reads.
//   - Fork/Join: propagate W along the corresponding HB edges
//     (rule c).
//
// Race checks are FastTrack-style epoch comparisons — last-write
// epoch, last-read epoch promoted to a read vector only when reads are
// concurrent — but ordering is decided by "same thread, or within
// W_t": thread order is checked positionally because WCP does not
// contain it. Detected pairs are reported into the runtime's analysis
// accumulator (Runtime.EnableAnalysis), like MAZ's reversible pairs.
package wcp

import (
	"treeclock/internal/analysis"
	"treeclock/internal/engine"
	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// csEntry is one closed critical section in a lock's FIFO history.
type csEntry[S any] struct {
	t     vt.TID  // releasing thread
	acqLT vt.Time // local time of the section's acquire
	rel   S       // HB snapshot of the release (incl. its own epoch)
}

const (
	histShift = 8 // 256 entries per history chunk
	histLen   = 1 << histShift
	histMask  = histLen - 1
)

// histBuf is a lock's section history as a FIFO of fixed-size chunks.
// A flat append-grown slice would re-zero, copy and write-barrier the
// entire history at every doubling — on rule-(b)-quiet workloads the
// history reaches tens of thousands of entries and that churn was the
// single largest release-path cost — and compaction would memmove the
// surviving tail. Chunks never move once allocated (entry pointers
// stay valid for the owning semantics' lifetime), pushes never copy
// old entries, and dropping a compacted prefix releases whole chunks
// to a free list shared across the engine's locks, so steady-state
// compaction allocates nothing. Entries are addressed by the same
// dense indices the rule-(b) cursors already use; dropFront renumbers
// by shifting head, exactly matching the cursor adjustment compaction
// performs.
type histBuf[S any] struct {
	chunks [][]csEntry[S] // live chunks, oldest first
	head   int            // index of entry 0 inside chunks[0] (< histLen)
	n      int            // live entry count
}

func (h *histBuf[S]) len() int { return h.n }

// at returns entry i (0 = oldest live). The pointer stays valid until
// the entry is dropped: chunks are never moved or copied.
func (h *histBuf[S]) at(i int) *csEntry[S] {
	j := h.head + i
	return &h.chunks[j>>histShift][j&histMask]
}

// push appends an entry for (t, acqLT), drawing chunk storage from
// free when possible, and returns a stable pointer to it. The rel
// field is NOT initialized — a recycled chunk leaves stale data there —
// and the caller must assign it before the entry can be read. Writing
// rel in place rather than pushing a completed entry saves a
// snapshot-sized store (plus its write barrier) per release.
func (h *histBuf[S]) push(t vt.TID, acqLT vt.Time, free *[][]csEntry[S]) *csEntry[S] {
	j := h.head + h.n
	if j>>histShift == len(h.chunks) {
		var c []csEntry[S]
		if k := len(*free); k > 0 {
			c = (*free)[k-1]
			(*free)[k-1] = nil
			*free = (*free)[:k-1]
		} else {
			c = make([]csEntry[S], histLen)
		}
		h.chunks = append(h.chunks, c)
	}
	h.n++
	p := &h.chunks[j>>histShift][j&histMask]
	p.t, p.acqLT = t, acqLT
	return p
}

// dropFront removes the d oldest entries — whose snapshots the caller
// has already returned to the store — recycling fully vacated chunks.
// Chunks are cleared before they reach the free list. Store.Drop zeroes
// each snapshot in place, but nothing else enforces that every slot of
// a vacated chunk went through Drop; a stale rel surviving into the
// free list would be re-issued by push (which deliberately leaves rel
// for the caller to assign), where a stale flat snapshot is a live
// slice header pinning a dropped vector against the collector — heap
// bytes the store's accounting no longer counts — and a stale sparse
// snapshot carries dangling segment refs that a later double Drop
// would subtract from live accounting twice, driving it negative.
func (h *histBuf[S]) dropFront(d int, free *[][]csEntry[S]) {
	h.head += d
	h.n -= d
	for h.head >= histLen && len(h.chunks) > 0 {
		clear(h.chunks[0])
		*free = append(*free, h.chunks[0])
		h.chunks[0] = nil
		h.chunks = h.chunks[1:]
		h.head -= histLen
	}
}

// contrib holds the latest HB release snapshot of one thread's closed
// sections that accessed a given variable under a given lock. The
// snapshots of one (lock, variable, thread) triple form a pointwise-
// increasing chain (a thread's releases of one lock are totally
// ordered by HB), so the newest snapshot subsumes every earlier one
// and replacement is exactly the join the rule needs. Keeping
// contributions per thread lets an accessor skip its own (rule a is
// between different threads); the list stays tiny in practice — it has
// one entry per thread that ever guarded the variable with the lock.
type contrib[S any] struct {
	t vt.TID
	s S
}

// varSummary is the rule-(a) state for one (lock, variable) pair.
type varSummary[S any] struct {
	reads  []contrib[S]
	writes []contrib[S]
}

// lockState is the per-lock WCP bookkeeping.
type lockState[W, S any] struct {
	w      W // weak clock of the last release (transport)
	wSet   bool
	hist   histBuf[S] // closed sections not yet compacted, in release (= trace) order
	cursor []int      // per-thread scan position into hist (rule b)
	// spos caches, per thread, the (t, acqLT) of the history entry the
	// thread's cursor is parked on. A rule-(b)-quiet scan re-examines
	// the same blocking entry at every release, and that entry may sit
	// tens of thousands of positions back in a cold history chunk; the
	// cache keeps the repeat check inside the lock's own state. idx is
	// the cached cursor position plus one (0 = nothing cached);
	// compaction rebases it alongside the cursors.
	spos []scanPos
	// Top two cursor positions, maintained incrementally as cursors
	// advance (bumpCursor) so compaction's droppability check needs no
	// per-release scan over the thread space: cmax1 ≥ cmax2, ctmax is
	// the thread holding cmax1 (None while all cursors sit at zero).
	cmax1, cmax2 int
	ctmax        vt.TID
	sums         map[int32]*varSummary[S]
	// holders counts threads currently inside a critical section of
	// this lock. The aging sweep skips held locks: a holder joined an
	// older publication of ls.w at its acquire, so domination by the
	// current publication does not yet make its future rule-(a)
	// absorbs no-ops. Recomputed from thread state on restore.
	holders int
	// Retained-state accounting: peak is the high-water mark of
	// len(hist); dropped counts entries reclaimed by compaction.
	peak    int
	dropped uint64
}

// scanPos is one thread's cached rule-(b) scan position: the head
// fields of the history entry at cursor position idx-1. Entries are
// immutable once pushed, so the cache can only go stale by renumbering
// (compaction), which rebases or invalidates it.
type scanPos struct {
	idx int32 // cached cursor position + 1; 0 = invalid
	t   vt.TID
	lt  vt.Time // the entry's acqLT
}

// bumpCursor folds thread t's advanced cursor into the incrementally
// maintained top-two positions. Cursors only grow between compactions,
// so each case matches a full recomputation: when the maximum's own
// cursor advances the runner-up set is untouched, and when another
// thread overtakes, the old maximum is exactly the new runner-up
// (every third thread was already at or below it). On a tie the two
// maxima are equal and the droppability check no longer consults
// ctmax, so which thread holds it is immaterial.
func (ls *lockState[W, S]) bumpCursor(t vt.TID) {
	c := ls.cursor[t]
	switch {
	case t == ls.ctmax:
		ls.cmax1 = c
	case c > ls.cmax1:
		ls.cmax2 = ls.cmax1
		ls.cmax1, ls.ctmax = c, t
	case c > ls.cmax2:
		ls.cmax2 = c
	}
}

// openCS is one currently held lock of a thread.
type openCS struct {
	lock    int32
	acqLT   vt.Time
	read    map[int32]struct{}
	written map[int32]struct{}
}

// threadState is the per-thread WCP bookkeeping.
type threadState[W any] struct {
	w    W        // pure WCP knowledge; own entry NOT the local time
	held []openCS // open critical sections, in acquire order
}

// accessState is the per-variable race-check history (FastTrack-style
// epochs, with the WCP ordering predicate).
type accessState struct {
	w      vt.Epoch  // last write
	r      vt.Epoch  // last read, while reads are totally ordered
	shared vt.Vector // per-thread last reads, once reads were concurrent
}

// SemanticsOf is the WCP plugin for the shared engine runtime, generic
// over both the strong-clock backbone C and the weak-clock transport
// (W, S, F — see vt.WeakClock and vt.SnapStore). It implements the
// Read/Write hooks plus the LockSemantics and ThreadSemantics
// extensions. Use the Semantics (sparse transport) or FlatSemantics
// (flat baseline) instantiations.
type SemanticsOf[C vt.Clock[C], W vt.WeakClock[W, S], S any, F vt.SnapStore[W, S]] struct {
	store   F
	threads []threadState[W]
	locks   []lockState[W, S]
	vars    []accessState
	k       int // thread-count high-water mark

	// History compaction (see "Memory" in the package doc): compact
	// gates the rule-(b) prefix drop; dropped snapshot storage recycles
	// through the store, and the counters feed MemStats.
	compact      bool
	liveHist     int    // history entries currently retained, all locks
	peakLockHist int    // max length any single lock's history reached
	dropped      uint64 // entries reclaimed by compaction, all locks

	// histFree recycles vacated history chunks across all locks: on
	// hot-lock workloads compaction vacates chunks at the same rate
	// pushes consume them, so the steady state allocates none.
	histFree [][]csEntry[S]

	// Rule-(a) summary aging (SetSummaryCap): sumCap bounds the live
	// contribution count across all locks (0 = unbounded); sumLive
	// tracks it incrementally; sumEvictions counts dropped
	// contributions; sumSweepAt is the hysteresis threshold — the next
	// sweep runs once sumLive reaches it, so a sweep that frees little
	// is not immediately re-run on every release. sumSweepAt and
	// sumEvictions are checkpointed (sweep timing is observable through
	// MemStats, which crash equivalence pins); sumLive is recomputed on
	// restore.
	sumCap       int
	sumLive      int
	sumEvictions uint64
	sumSweepAt   int
}

// Semantics is SemanticsOf with the default sparse weak-clock
// transport.
type Semantics[C vt.Clock[C]] = SemanticsOf[C, *vt.Sparse, vt.SparseSnap, *vt.SparseStore]

// FlatSemantics is SemanticsOf with the flat-vector weak-clock
// transport (the pre-sparse baseline, kept for differential testing
// and benchmarking).
type FlatSemantics[C vt.Clock[C]] = SemanticsOf[C, *vt.FlatWeak, vt.Vector, *vt.FlatStore]

// NewSemantics returns fresh WCP semantics (one per engine run) on the
// sparse weak-clock transport. History compaction is enabled;
// SetCompaction(false) turns it off for memory measurements.
func NewSemantics[C vt.Clock[C]]() *Semantics[C] {
	return &Semantics[C]{store: vt.NewSparseStore(), compact: true}
}

// NewSemanticsFlat is NewSemantics on the flat-vector weak-clock
// transport.
func NewSemanticsFlat[C vt.Clock[C]]() *FlatSemantics[C] {
	return &FlatSemantics[C]{store: vt.NewFlatStore(), compact: true}
}

// SetCompaction enables or disables rule-(b) history compaction
// (enabled by default). Disabling exists for the memory benchmarks and
// soak tests that measure the pre-compaction growth; on well-formed
// traces the analysis results are identical either way — compaction
// only drops entries whose absorption would be a no-op.
func (s *SemanticsOf[C, W, S, F]) SetCompaction(on bool) { s.compact = on }

// Interface conformance (the runtime detects the extensions), for both
// transports.
var (
	_ engine.LockSemantics[*noClock]   = (*Semantics[*noClock])(nil)
	_ engine.ThreadSemantics[*noClock] = (*Semantics[*noClock])(nil)
	_ engine.MemReporter               = (*Semantics[*noClock])(nil)
	_ engine.LockSemantics[*noClock]   = (*FlatSemantics[*noClock])(nil)
	_ engine.ThreadSemantics[*noClock] = (*FlatSemantics[*noClock])(nil)
	_ engine.MemReporter               = (*FlatSemantics[*noClock])(nil)
)

// thread returns thread t's state, growing the thread space.
func (s *SemanticsOf[C, W, S, F]) thread(t vt.TID) *threadState[W] {
	if int(t) >= len(s.threads) {
		old := len(s.threads)
		s.threads = vt.GrowSlice(s.threads, int(t)+1)
		for i := old; i < len(s.threads); i++ {
			s.threads[i].w = s.store.NewW()
		}
	}
	if int(t) >= s.k {
		s.k = int(t) + 1
	}
	return &s.threads[t]
}

// lockOf returns lock l's state, growing the lock space.
func (s *SemanticsOf[C, W, S, F]) lockOf(l int32) *lockState[W, S] {
	if int(l) >= len(s.locks) {
		old := len(s.locks)
		s.locks = vt.GrowSlice(s.locks, int(l)+1)
		for i := old; i < len(s.locks); i++ {
			s.locks[i].w = s.store.NewW()
			s.locks[i].ctmax = vt.None
		}
	}
	return &s.locks[l]
}

// varOf returns variable x's race-check history, growing the space.
func (s *SemanticsOf[C, W, S, F]) varOf(x int32) *accessState {
	s.vars = vt.GrowSlice(s.vars, int(x)+1)
	return &s.vars[x]
}

// ordered reports whether the event identified by epoch e is ordered
// before thread t's current event under WCP ∪ thread-order: same
// thread (trace order within a thread), or within t's weak clock.
func (s *SemanticsOf[C, W, S, F]) ordered(e vt.Epoch, t vt.TID, w W) bool {
	return e.T == t || e.Clk <= w.Get(e.T)
}

// joinSummaries applies rule (a) for an access of x by t: the release
// snapshot of every earlier conflicting same-lock section of another
// thread joins the weak clock. Writes conflict with everything;
// reads only with writes.
func (s *SemanticsOf[C, W, S, F]) joinSummaries(ts *threadState[W], t vt.TID, x int32, isWrite bool) {
	for i := range ts.held {
		ls := s.lockOf(ts.held[i].lock)
		sum := ls.sums[x]
		if sum == nil {
			continue
		}
		for j := range sum.writes {
			if sum.writes[j].t != t {
				ts.w.Absorb(&sum.writes[j].s)
			}
		}
		if isWrite {
			for j := range sum.reads {
				if sum.reads[j].t != t {
					ts.w.Absorb(&sum.reads[j].s)
				}
			}
		}
	}
}

// record notes the access in every open section of the thread.
func record[W any](ts *threadState[W], x int32, isWrite bool) {
	for i := range ts.held {
		cs := &ts.held[i]
		if isWrite {
			if cs.written == nil {
				cs.written = make(map[int32]struct{})
			}
			cs.written[x] = struct{}{}
		} else {
			if cs.read == nil {
				cs.read = make(map[int32]struct{})
			}
			cs.read[x] = struct{}{}
		}
	}
}

// Read implements engine.Semantics.
func (s *SemanticsOf[C, W, S, F]) Read(rt *engine.Runtime[C], t vt.TID, x int32, ct C) {
	ts := s.thread(t)
	s.joinSummaries(ts, t, x, false)
	vs := s.varOf(x)
	now := vt.Epoch{T: t, Clk: ct.Get(t)}
	if acc := rt.Analysis(); acc != nil {
		if !vs.w.Zero() && !s.ordered(vs.w, t, ts.w) {
			acc.Report(analysis.WriteRead, x, vs.w, now)
		}
	}
	// Read metadata: a single epoch while reads are totally ordered,
	// promoted to a per-thread vector on the first concurrent pair —
	// the same adaptive scheme as the HB/SHB detector, under the WCP
	// ordering predicate.
	if vs.shared != nil {
		if int(t) >= len(vs.shared) {
			vs.shared = vt.GrowSlice(vs.shared, s.k)
		}
		vs.shared[t] = now.Clk
	} else if vs.r.Zero() || s.ordered(vs.r, t, ts.w) {
		vs.r = now
	} else {
		n := s.k
		if int(vs.r.T) >= n {
			n = int(vs.r.T) + 1
		}
		vs.shared = vt.NewVector(n)
		vs.shared[vs.r.T] = vs.r.Clk
		vs.shared[t] = now.Clk
		vs.r = vt.Epoch{}
	}
	record(ts, x, false)
}

// Write implements engine.Semantics.
func (s *SemanticsOf[C, W, S, F]) Write(rt *engine.Runtime[C], t vt.TID, x int32, ct C) {
	ts := s.thread(t)
	s.joinSummaries(ts, t, x, true)
	vs := s.varOf(x)
	now := vt.Epoch{T: t, Clk: ct.Get(t)}
	if acc := rt.Analysis(); acc != nil {
		if !vs.w.Zero() && !s.ordered(vs.w, t, ts.w) {
			acc.Report(analysis.WriteWrite, x, vs.w, now)
		}
		if vs.shared != nil {
			for u, rc := range vs.shared {
				if rc > 0 && !s.ordered(vt.Epoch{T: vt.TID(u), Clk: rc}, t, ts.w) {
					acc.Report(analysis.ReadWrite, x, vt.Epoch{T: vt.TID(u), Clk: rc}, now)
				}
			}
		} else if !vs.r.Zero() && !s.ordered(vs.r, t, ts.w) {
			acc.Report(analysis.ReadWrite, x, vs.r, now)
		}
	}
	// A read that later races an access would also race this write (or
	// the write itself races), so the read metadata resets — the same
	// variable-level completeness argument as the HB detector, which
	// only needs the order to be transitively closed over thread order.
	vs.shared = nil
	vs.r = vt.Epoch{}
	vs.w = now
	record(ts, x, true)
}

// Acquire implements engine.LockSemantics: rule-(c) transport across
// the release→acquire HB edge, then open the section. A reacquire of a
// lock the thread already holds (malformed input) keeps the original
// section.
func (s *SemanticsOf[C, W, S, F]) Acquire(rt *engine.Runtime[C], t vt.TID, l int32, ct C) {
	ts := s.thread(t)
	ls := s.lockOf(l)
	if ls.wSet {
		ts.w.Join(ls.w)
	}
	for i := range ts.held {
		if ts.held[i].lock == l {
			return
		}
	}
	ts.held = append(ts.held, openCS{lock: l, acqLT: ct.Get(t)})
	ls.holders++
}

// Release implements engine.LockSemantics: rule (b) against the lock's
// section history, then close the section (history entry + rule-(a)
// summaries), then publish the weak clock. A release of a lock the
// thread does not hold (malformed input) closes nothing but still
// publishes, mirroring the runtime's uniform lock-clock overwrite.
func (s *SemanticsOf[C, W, S, F]) Release(rt *engine.Runtime[C], t vt.TID, l int32, ct C) {
	ts := s.thread(t)
	ls := s.lockOf(l)

	held := -1
	for i := range ts.held {
		if ts.held[i].lock == l {
			held = i
		}
	}

	if held >= 0 {
		// Rule (b): pass every earlier foreign section whose acquire is
		// already WCP-before this release. The FIFO scan may stop at
		// the first miss: a later foreign entry's acquire is HB-after
		// every earlier entry's release (same lock), so by rule (c) it
		// can only be WCP-before this release if the earlier ones are.
		// Since the passed snapshots are pointwise increasing along the
		// history (each releaser joined its predecessor's clock at the
		// acquire), the last triggered snapshot subsumes the others:
		// triggers are checked against the weak clock joined with that
		// pending snapshot, and only it is absorbed after the scan.
		if int(t) >= len(ls.cursor) {
			ls.cursor = vt.GrowSlice(ls.cursor, s.k)
			ls.spos = vt.GrowSlice(ls.spos, s.k)
		}
		last := -1
		start := ls.cursor[t]
		i := start
		sp := &ls.spos[t]
		for i < ls.hist.len() {
			// The head fields of the entry under scan, via the cache
			// when the cursor is parked where it was last time (the
			// common case on rule-(b)-quiet traces, where the blocking
			// entry lives in a long-cold history chunk).
			var et vt.TID
			var elt vt.Time
			if int(sp.idx) == i+1 {
				et, elt = sp.t, sp.lt
			} else {
				e := ls.hist.at(i)
				et, elt = e.t, e.acqLT
				sp.idx, sp.t, sp.lt = int32(i+1), et, elt
			}
			if et == t {
				i++
				continue
			}
			trig := ts.w.Get(et) >= elt
			if !trig && last >= 0 {
				trig = s.store.SnapGet(&ls.hist.at(last).rel, et) >= elt
			}
			if !trig {
				break
			}
			last = i
			i++
		}
		ls.cursor[t] = i
		if last >= 0 {
			ts.w.Absorb(&ls.hist.at(last).rel)
		}
		if i != start {
			ls.bumpCursor(t)
		}

		cs := ts.held[held]
		ls.holders--
		if held == len(ts.held)-1 {
			// LIFO release (the overwhelmingly common discipline): a
			// plain truncation, skipping append's typed-copy machinery
			// and its per-element write barriers for the map fields.
			ts.held = ts.held[:held]
		} else {
			ts.held = append(ts.held[:held], ts.held[held+1:]...)
		}
		// The HB snapshot of this release: everything ≤HB here rides
		// along any rule-(a)/(b) edge out of this section (rule c).
		// The snapshot is retained by the history entry; the store
		// recycles storage from compacted entries and shares whatever
		// did not change since the thread's previous release.
		// Build the snapshot directly in the appended entry: a local
		// would have its address taken by addContrib below and escape,
		// costing a heap allocation per release. The store reads the
		// clock's flat mirror in place — no scratch vector to zero and
		// fill per release.
		rel := &ls.hist.push(t, cs.acqLT, &s.histFree).rel
		*rel = s.store.Snapshot(t, ct.VectorView(), ct.Rev(), rt.Threads())
		s.liveHist++
		if ls.hist.len() > ls.peak {
			ls.peak = ls.hist.len()
			if ls.peak > s.peakLockHist {
				s.peakLockHist = ls.peak
			}
		}
		// The nil checks matter: ranging over a nil map still enters the
		// runtime's iterator setup, a measurable per-release cost on
		// pure-sync workloads where sections never touch a variable.
		if len(cs.read)+len(cs.written) > 0 && ls.sums == nil {
			ls.sums = make(map[int32]*varSummary[S])
		}
		if cs.read != nil {
			for x := range cs.read {
				sum := ls.sums[x]
				if sum == nil {
					sum = &varSummary[S]{}
					ls.sums[x] = sum
				}
				sum.reads = s.addContrib(sum.reads, t, rel)
			}
		}
		if cs.written != nil {
			for x := range cs.written {
				sum := ls.sums[x]
				if sum == nil {
					sum = &varSummary[S]{}
					ls.sums[x] = sum
				}
				sum.writes = s.addContrib(sum.writes, t, rel)
			}
		}
		// Reclaim the history prefix this scan (and earlier ones) has
		// made dead. The entry appended above is never dropped here: no
		// foreign cursor can be past it yet. With every cursor still at
		// zero nothing can be droppable (an entry dies only once a
		// foreign cursor is past it), so the call is skipped outright on
		// rule-(b)-quiet locks.
		if s.compact && ls.cmax1 > 0 {
			s.compactLock(ls)
		}
	}

	// Transport: the weak knowledge at this release is what a later
	// acquirer inherits across the HB edge (rule c). The release's own
	// epoch is deliberately NOT included — rel→acq is an HB edge, not a
	// WCP one.
	ls.w.CopyFrom(ts.w)
	ls.wSet = true

	// Rule-(a) summary aging: once the live contribution count exceeds
	// the cap (and the hysteresis threshold — a sweep that freed little
	// must not re-run on every release), drop every contribution the
	// locks' published weak clocks have made redundant.
	if s.sumCap > 0 && s.sumLive > s.sumCap && s.sumLive >= s.sumSweepAt {
		s.sweepSummaries()
		s.sumSweepAt = s.sumLive + s.sumCap>>3 + 1
	}
}

// SetSummaryCap bounds the rule-(a) summary state: once more than n
// contribution snapshots are live across all locks, releases run an
// aging sweep that drops every contribution already dominated by its
// lock's published weak clock (0, the default, disables aging). The
// cap is soft — contributions that are not yet provably redundant are
// never dropped, so a workload whose irreducible summary state exceeds
// n keeps it all — and dropping never changes analysis results (see
// sweepSummaries).
func (s *SemanticsOf[C, W, S, F]) SetSummaryCap(n int) { s.sumCap = n }

// sweepSummaries drops every rule-(a) contribution snapshot that its
// lock's current published weak clock dominates pointwise.
//
// Soundness: a contribution of (ℓ, x, t) is only ever absorbed, at a
// later access under ℓ, into the accessor's weak clock — and the
// accessor's acquire of ℓ already joined ℓ's then-current publication
// (rule c), which is at or above today's (publications along a lock's
// release chain are monotone: every releaser first joined the previous
// publication at its acquire). So if today's publication dominates the
// snapshot, every future absorb of it is a no-op and dropping it
// changes nothing. Locks currently held are skipped: the holder
// joined an *older* publication at its acquire, so the monotone-chain
// argument does not yet cover it; its release publishes first, and
// the contribution becomes sweepable afterwards. The sweep visits
// locks in id order and dropping is order-independent, so the result
// is deterministic despite map iteration inside a lock.
func (s *SemanticsOf[C, W, S, F]) sweepSummaries() {
	for l := range s.locks {
		ls := &s.locks[l]
		if ls.holders > 0 || !ls.wSet || len(ls.sums) == 0 {
			continue
		}
		for x, sum := range ls.sums {
			sum.reads = s.dropDominated(sum.reads, ls)
			sum.writes = s.dropDominated(sum.writes, ls)
			if len(sum.reads)+len(sum.writes) == 0 {
				delete(ls.sums, x)
			}
		}
		if len(ls.sums) == 0 {
			ls.sums = nil
		}
	}
}

// dropDominated filters one contribution list in place, dropping
// snapshots dominated by the lock's published weak clock. Vacated
// slots are zeroed: a snapshot is refcounted storage, and a stale
// copy left in the tail would be double-released by a later
// addContrib assignment into the same slot.
func (s *SemanticsOf[C, W, S, F]) dropDominated(cs []contrib[S], ls *lockState[W, S]) []contrib[S] {
	kept := 0
	for i := range cs {
		if s.snapDominated(&cs[i].s, ls) {
			s.store.Drop(&cs[i].s)
			s.sumLive--
			s.sumEvictions++
			continue
		}
		if kept != i {
			cs[kept] = cs[i]
			cs[i] = contrib[S]{}
		}
		kept++
	}
	return cs[:kept]
}

// snapDominated reports whether snap ⊑ the lock's published weak
// clock, pointwise over the thread space. SnapGet reads the
// snapshot's own slot from its out-of-band epoch, so the check is
// exact.
func (s *SemanticsOf[C, W, S, F]) snapDominated(snap *S, ls *lockState[W, S]) bool {
	for u := 0; u < s.k; u++ {
		if s.store.SnapGet(snap, vt.TID(u)) > ls.w.Get(vt.TID(u)) {
			return false
		}
	}
	return true
}

// addContrib installs thread t's newest release snapshot as its
// contribution (replacement is the join: the chain is monotone, see
// contrib).
func (s *SemanticsOf[C, W, S, F]) addContrib(cs []contrib[S], t vt.TID, snap *S) []contrib[S] {
	for i := range cs {
		if cs[i].t == t {
			s.store.Assign(&cs[i].s, snap)
			return cs
		}
	}
	cs = append(cs, contrib[S]{t: t})
	s.store.Assign(&cs[len(cs)-1].s, snap)
	s.sumLive++
	return cs
}

// compactLock drops the longest history prefix in which every entry
// has been absorbed by a thread other than its releaser, recycling the
// freed snapshot storage through the store.
//
// Soundness (well-formed traces; see also the package doc): once a
// foreign thread's cursor is past an entry, that thread joined the
// entry's snapshot into its weak clock during the rule-(b) scan of one
// of its releases of ℓ (via the subsuming last pending snapshot) and
// published the enlarged clock as ℓ's weak clock in the same Release
// step. Publications along ℓ's release chain are monotone — the lock
// is held exclusively, so every publisher first joined the previous
// publication at its acquire. Any thread that might still scan the
// entry does so at a later release of ℓ, whose matching acquire
// follows the absorbing release in ℓ's chain and therefore already
// inherited the snapshot: skipping the entry changes nothing. The gate
// is deliberately a *foreign* cursor — the releaser's own cursor skips
// its entries without absorbing them, and its published weak clock
// never includes its own release snapshots, so an owner-counting gate
// would drop entries still needed by threads that first reach ℓ (or
// first appear) later.
//
// Per entry the check is O(1) given the top two cursor positions: an
// entry at index i has a foreign cursor beyond it iff i < max2 (two
// distinct threads are past it — at least one is foreign) or
// i < max1 with the entry not owned by the unique maximum's thread.
// The top two are maintained incrementally (bumpCursor), so a release
// whose scan went nowhere pays O(1) here, not O(threads).
func (s *SemanticsOf[C, W, S, F]) compactLock(ls *lockState[W, S]) {
	max1, max2, tmax := ls.cmax1, ls.cmax2, ls.ctmax
	drop := 0
	for drop < ls.hist.len() && (drop < max2 || (drop < max1 && ls.hist.at(drop).t != tmax)) {
		drop++
	}
	if drop == 0 {
		return
	}
	for i := 0; i < drop; i++ {
		s.store.Drop(&ls.hist.at(i).rel)
	}
	ls.hist.dropFront(drop, &s.histFree)
	for t := range ls.cursor {
		if ls.cursor[t] > drop {
			ls.cursor[t] -= drop
		} else {
			ls.cursor[t] = 0
		}
	}
	// Rebase the scan caches with the same shift; a cache pointing into
	// the dropped prefix is invalidated (its cursor was clamped to 0,
	// where a live entry may now sit).
	for t := range ls.spos {
		if int(ls.spos[t].idx) > drop {
			ls.spos[t].idx -= int32(drop)
		} else {
			ls.spos[t].idx = 0
		}
	}
	// The shift is monotone and uniform, so the top-two invariant
	// survives clamping: order among cursors is preserved, and when
	// cmax1 collapses to zero the stale ctmax is harmless (a zero
	// maximum never lets the drop loop consult it).
	if ls.cmax1 > drop {
		ls.cmax1 -= drop
	} else {
		ls.cmax1 = 0
	}
	if ls.cmax2 > drop {
		ls.cmax2 -= drop
	} else {
		ls.cmax2 = 0
	}
	ls.dropped += uint64(drop)
	s.dropped += uint64(drop)
	s.liveHist -= drop
}

// Per-object constants for the approximate retained-bytes accounting:
// slice header + fixed fields of a csEntry, and of a contrib (the
// snapshot payload is the store's SnapHeap).
const (
	csEntryBytes = 40
	contribBytes = 32
)

// lockStat computes one lock's retained-history statistics.
func (s *SemanticsOf[C, W, S, F]) lockStat(l int32) LockHistStat {
	ls := &s.locks[l]
	st := LockHistStat{Lock: l, Live: ls.hist.len(), Peak: ls.peak, Dropped: ls.dropped}
	for i := 0; i < ls.hist.len(); i++ {
		st.RetainedBytes += s.store.SnapHeap(&ls.hist.at(i).rel) + csEntryBytes
	}
	st.RetainedBytes += uint64(len(ls.cursor))*8 + ls.w.Heap()
	for _, sum := range ls.sums {
		for i := range sum.reads {
			st.Summaries++
			st.RetainedBytes += s.store.SnapHeap(&sum.reads[i].s) + contribBytes
		}
		for i := range sum.writes {
			st.Summaries++
			st.RetainedBytes += s.store.SnapHeap(&sum.writes[i].s) + contribBytes
		}
	}
	return st
}

// LockHistStat summarizes one lock's retained rule-(b) history and
// rule-(a) summaries (see cmd/traceinfo -wcp).
type LockHistStat struct {
	Lock      int32
	Live      int    // history entries currently retained
	Peak      int    // high-water mark of the history length
	Dropped   uint64 // entries reclaimed by compaction
	Summaries int    // rule-(a) contribution snapshots retained
	// RetainedBytes approximates the bytes pinned by the above (8 per
	// vector entry, shared segments attributed fractionally, plus
	// small per-object constants).
	RetainedBytes uint64
}

// LockHistStats reports per-lock retained-history statistics for every
// lock that retained or reclaimed any state, in lock id order.
func (s *SemanticsOf[C, W, S, F]) LockHistStats() []LockHistStat {
	var out []LockHistStat
	for l := range s.locks {
		st := s.lockStat(int32(l))
		if st.Live == 0 && st.Dropped == 0 && st.Summaries == 0 {
			continue
		}
		out = append(out, st)
	}
	return out
}

// MemStats implements engine.MemReporter: the retained critical-
// section state, aggregated over all locks. Every number derives from
// the plugin's and store's own state, so it is identical across clock
// backbones by construction (the soak test asserts this).
func (s *SemanticsOf[C, W, S, F]) MemStats() engine.MemStats {
	ms := engine.MemStats{
		HistEntries:      s.liveHist,
		PeakLockHist:     s.peakLockHist,
		DroppedEntries:   s.dropped,
		FreeVectors:      s.store.FreeCount(),
		SummaryEvictions: s.sumEvictions,
	}
	// Deliberately NOT the sum of lockStat: that walks every retained
	// history entry, which on rule-(b)-quiet workloads is the bulk of
	// the trace — a Θ(events) tax on every stats snapshot. The store
	// answers the aggregate snapshot payload in O(1) (LiveHeap), so
	// only the per-lock fixed state is walked here; lockStat keeps the
	// exact per-lock breakdown for traceinfo's offline reporting.
	for l := range s.locks {
		ls := &s.locks[l]
		for _, sum := range ls.sums {
			ms.SummaryVectors += len(sum.reads) + len(sum.writes)
		}
		ms.RetainedBytes += uint64(len(ls.cursor))*8 + ls.w.Heap()
	}
	ms.RetainedBytes += uint64(s.liveHist)*csEntryBytes + uint64(ms.SummaryVectors)*contribBytes
	ms.RetainedBytes += uint64(len(s.histFree)) * histLen * csEntryBytes // parked history chunks
	ms.RetainedBytes += s.store.LiveHeap() + s.store.Heap()
	return ms
}

// Fork implements engine.ThreadSemantics: the child's weak clock
// inherits the parent's (rule c across the fork edge).
func (s *SemanticsOf[C, W, S, F]) Fork(rt *engine.Runtime[C], t vt.TID, u vt.TID, ct C) {
	w := s.thread(t).w
	if w.Len() > 0 {
		s.thread(u).w.Join(w)
	}
}

// Join implements engine.ThreadSemantics: the parent absorbs the
// joined thread's weak clock (rule c across the join edge).
func (s *SemanticsOf[C, W, S, F]) Join(rt *engine.Runtime[C], t vt.TID, u vt.TID, ct C) {
	w := s.thread(u).w
	if w.Len() > 0 {
		s.thread(t).w.Join(w)
	}
}

// WeakClock exposes thread t's pure WCP knowledge (for tests and
// timestamp comparison against the oracle), materialized into a fresh
// vector.
func (s *SemanticsOf[C, W, S, F]) WeakClock(t vt.TID) vt.Vector {
	if int(t) >= len(s.threads) {
		return nil
	}
	w := s.threads[t].w
	return w.Vector(vt.NewVector(w.Len()))
}

// Timestamp writes thread t's WCP ∪ thread-order timestamp — the weak
// clock with the own entry raised to the local time lt — into dst and
// returns it. Like the runtime's Timestamp (whose dst feeds
// Clock.Vector), dst is a scratch destination, not a truncation bound:
// when it is shorter than the weak clock (or cannot hold t's own
// entry) it is grown, so callers must use the returned vector.
func (s *SemanticsOf[C, W, S, F]) Timestamp(t vt.TID, lt vt.Time, dst vt.Vector) vt.Vector {
	need := int(t) + 1
	known := int(t) < len(s.threads)
	if known {
		if n := s.threads[t].w.Len(); n > need {
			need = n
		}
	}
	if len(dst) < need {
		dst = vt.GrowSlice(dst, need)
	}
	// Zero everything (a recycled dst, or the capacity tail GrowSlice
	// exposed, may hold stale entries), then lay down the weak clock.
	for i := range dst {
		dst[i] = 0
	}
	if known {
		s.threads[t].w.Vector(dst)
	}
	dst[t] = lt
	return dst
}

// EngineOf computes WCP timestamps while streaming events. It is the
// shared runtime bound to the WCP semantics; every runtime method is
// promoted. Enable reporting with EnableAnalysis (WCP performs its own
// epoch checks, like MAZ).
type EngineOf[C vt.Clock[C], W vt.WeakClock[W, S], S any, F vt.SnapStore[W, S]] struct {
	engine.Runtime[C]
	sem *SemanticsOf[C, W, S, F]
}

// Engine is EngineOf on the default sparse weak-clock transport.
type Engine[C vt.Clock[C]] = EngineOf[C, *vt.Sparse, vt.SparseSnap, *vt.SparseStore]

// FlatEngine is EngineOf on the flat-vector weak-clock transport.
type FlatEngine[C vt.Clock[C]] = EngineOf[C, *vt.FlatWeak, vt.Vector, *vt.FlatStore]

// Sem returns the bound semantics (weak clocks, for inspection).
func (e *EngineOf[C, W, S, F]) Sem() *SemanticsOf[C, W, S, F] { return e.sem }

// Timestamp snapshots thread t's current WCP ∪ thread-order vector
// time into dst, shadowing the promoted runtime method (whose thread
// clocks are the HB scaffolding): like every other engine, a WCP
// engine's timestamps are timestamps of the order it computes. The
// thread's local time is read off its HB clock (own entries agree
// across all orders).
func (e *EngineOf[C, W, S, F]) Timestamp(t vt.TID, dst vt.Vector) vt.Vector {
	return e.sem.Timestamp(t, e.ThreadClock(t).Get(t), dst)
}

// New builds a WCP engine pre-sized for traces with the given
// metadata.
func New[C vt.Clock[C]](meta trace.Meta, factory vt.Factory[C]) *Engine[C] {
	sem := NewSemantics[C]()
	e := &Engine[C]{sem: sem}
	e.Runtime = *engine.NewWithMeta[C](sem, factory, meta)
	return e
}

// NewStreaming builds a WCP engine that discovers the trace's
// identifier spaces on the fly (no prior metadata).
func NewStreaming[C vt.Clock[C]](factory vt.Factory[C]) *Engine[C] {
	sem := NewSemantics[C]()
	e := &Engine[C]{sem: sem}
	e.Runtime = *engine.New[C](sem, factory)
	return e
}

// NewFlat is New on the flat-vector weak-clock transport.
func NewFlat[C vt.Clock[C]](meta trace.Meta, factory vt.Factory[C]) *FlatEngine[C] {
	sem := NewSemanticsFlat[C]()
	e := &FlatEngine[C]{sem: sem}
	e.Runtime = *engine.NewWithMeta[C](sem, factory, meta)
	return e
}

// NewStreamingFlat is NewStreaming on the flat-vector weak-clock
// transport.
func NewStreamingFlat[C vt.Clock[C]](factory vt.Factory[C]) *FlatEngine[C] {
	sem := NewSemanticsFlat[C]()
	e := &FlatEngine[C]{sem: sem}
	e.Runtime = *engine.New[C](sem, factory)
	return e
}

// noClock is a minimal vt.Clock used only for the compile-time
// interface-conformance assertions above.
type noClock struct{}

func (*noClock) Init(vt.TID)                     {}
func (*noClock) Get(vt.TID) vt.Time              { return 0 }
func (*noClock) Inc(vt.TID, vt.Time)             {}
func (*noClock) Grow(int)                        {}
func (*noClock) ReleaseSlot(vt.TID)              {}
func (*noClock) Join(*noClock)                   {}
func (*noClock) MonotoneCopy(*noClock)           {}
func (*noClock) CopyCheckMonotone(*noClock) bool { return true }
func (*noClock) Vector(dst vt.Vector) vt.Vector  { return dst }
func (*noClock) VectorView() []vt.Time           { return nil }
func (*noClock) Rev() uint64                     { return 0 }
