package wcp

// Regression coverage for retained-state accounting under history
// churn: recycled history chunks must carry no stale snapshots (a
// stale flat rel pins its dropped vector against the collector; a
// stale sparse rel holds dangling segment refs a double Drop would
// subtract twice), and the unsigned accounting totals must never
// underflow however often entries are dropped and chunks recycled.

import (
	"testing"

	"treeclock/internal/engine"
	"treeclock/internal/gen"
	"treeclock/internal/trace"
	"treeclock/internal/vc"
	"treeclock/internal/vt"
)

// sane is the ceiling that catches uint64 underflow: a wrapped
// subtraction lands within a few increments of 2^64, astronomically
// above any honest retained-state figure for these workloads.
const sane = uint64(1) << 40

func checkStats(t *testing.T, label string, ms engine.MemStats) {
	t.Helper()
	if ms.RetainedBytes > sane {
		t.Fatalf("%s: RetainedBytes %d — unsigned underflow", label, ms.RetainedBytes)
	}
	if ms.FreeVectors < 0 {
		t.Fatalf("%s: FreeVectors %d negative", label, ms.FreeVectors)
	}
	if ms.HistEntries < 0 {
		t.Fatalf("%s: HistEntries %d negative", label, ms.HistEntries)
	}
}

// churnAccounting streams a compaction-heavy workload, sampling the
// accounting at every batch so a transient underflow cannot hide
// behind a later compensating error, and finally checks every parked
// history chunk holds only zero snapshots.
func churnAccounting[C vt.Clock[C], W vt.WeakClock[W, S], S any, F vt.SnapStore[W, S]](
	t *testing.T, label string, e *EngineOf[C, W, S, F], stale func(*S) bool, n int) {
	t.Helper()
	e.EnableAnalysis()
	src := gen.Take(gen.HotLock(soakThreads, 20260807), n)
	buf := make([]trace.Event, 512)
	for {
		k, ok := trace.ReadBatch(src, buf)
		for i := 0; i < k; i++ {
			e.Step(buf[i])
		}
		checkStats(t, label, e.Sem().MemStats())
		if !ok {
			break
		}
	}
	ms := e.Sem().MemStats()
	if ms.DroppedEntries == 0 {
		t.Fatalf("%s: compaction never ran — the test exercised nothing", label)
	}
	for _, chunk := range e.Sem().histFree {
		for i := range chunk {
			if stale(&chunk[i].rel) {
				t.Fatalf("%s: recycled history chunk slot %d holds a stale snapshot %+v", label, i, chunk[i].rel)
			}
		}
	}
	// The aggregate store accounting must agree with a full per-lock
	// walk (lockStat visits every live snapshot individually), so a
	// drop that was double-counted in one of the two paths shows up as
	// a mismatch.
	var walked uint64
	for l := range e.Sem().locks {
		walked += e.Sem().lockStat(int32(l)).RetainedBytes
	}
	if walked > sane {
		t.Fatalf("%s: per-lock walk retained %d bytes — unsigned underflow", label, walked)
	}
}

func TestWCPAccountingNeverNegativeUnderChurn(t *testing.T) {
	n := 60_000
	if testing.Short() {
		n = 20_000
	}
	t.Run("sparse", func(t *testing.T) {
		churnAccounting(t, "sparse", NewStreaming[*vc.VectorClock](vc.Factory(nil)),
			func(s *vt.SparseSnap) bool { return !s.IsZero() }, n)
	})
	t.Run("flat", func(t *testing.T) {
		churnAccounting(t, "flat", NewStreamingFlat[*vc.VectorClock](vc.Factory(nil)),
			func(s *vt.Vector) bool { return *s != nil }, n)
	})
}
