package wcp

import (
	"testing"

	"treeclock/internal/analysis"
	"treeclock/internal/core"
	"treeclock/internal/engine"
	"treeclock/internal/gen"
	"treeclock/internal/oracle"
	"treeclock/internal/trace"
	"treeclock/internal/vc"
	"treeclock/internal/vt"
)

func parse(t *testing.T, s string) *trace.Trace {
	t.Helper()
	tr, err := trace.ParseTextString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return tr
}

// randomTraces is the differential corpus: lock-heavy mixtures small
// enough for the oracle's fixpoint, plus the lock-rich scenario
// generators and fork/join shapes.
func randomTraces() []*trace.Trace {
	var out []*trace.Trace
	for seed := int64(1); seed <= 5; seed++ {
		out = append(out,
			gen.Mixed(gen.Config{Name: "rnd-a", Threads: 3, Locks: 2, Vars: 5, Events: 300, Seed: seed, SyncFrac: 0.5}),
			gen.Mixed(gen.Config{Name: "rnd-b", Threads: 6, Locks: 3, Vars: 8, Events: 500, Seed: seed * 7, SyncFrac: 0.35}),
			gen.Mixed(gen.Config{Name: "rnd-c", Threads: 10, Locks: 5, Vars: 12, Events: 700, Seed: seed * 13, SyncFrac: 0.2}),
		)
	}
	out = append(out,
		gen.SingleLock(5, 400, 3),
		gen.Star(8, 500, 4),
		gen.Pairwise(6, 400, 5),
		gen.ForkJoinTree(5, 30, 6),
		gen.NestedLocks(6, 3, 800, 7),
		gen.GuardedPairs(6, 8, 800, 8),
		gen.PredictivePairs(6, 600, 9),
	)
	return out
}

// stepCompare runs the engine event by event and compares each event's
// WCP ∪ thread-order timestamp with the oracle's.
func stepCompare[C vt.Clock[C]](t *testing.T, tr *trace.Trace, e *Engine[C], res *oracle.Result, label string) {
	t.Helper()
	k := tr.Meta.Threads
	lt := tr.LocalTimes()
	dst := vt.NewVector(k)
	for i, ev := range tr.Events {
		e.Step(ev)
		got := e.Sem().Timestamp(ev.T, lt[i], dst)
		if !got.Equal(res.Post[i]) {
			t.Fatalf("%s: %s event %d (%v): timestamp %v, oracle %v",
				label, tr.Meta.Name, i, ev, got, res.Post[i])
		}
	}
}

func TestWCPMatchesOracleBothClocks(t *testing.T) {
	for _, tr := range randomTraces() {
		res := oracle.Timestamps(tr, oracle.WCP)
		eTC := New[*core.TreeClock](tr.Meta, core.Factory(nil))
		stepCompare(t, tr, eTC, res, "tree clock")
		eVC := New[*vc.VectorClock](tr.Meta, vc.Factory(nil))
		stepCompare(t, tr, eVC, res, "vector clock")
	}
}

// eventIndex maps (thread, local time) pairs back to event indices.
func eventIndex(tr *trace.Trace) map[vt.Epoch]int {
	m := make(map[vt.Epoch]int, tr.Len())
	lt := tr.LocalTimes()
	for i, e := range tr.Events {
		m[vt.Epoch{T: e.T, Clk: lt[i]}] = i
	}
	return m
}

// TestWCPRacesAgainstOracle checks the epoch detector against the
// fixpoint ground truth: every reported sample pair is a real WCP
// race, and every variable with a WCP race is reported.
func TestWCPRacesAgainstOracle(t *testing.T) {
	for _, tr := range randomTraces() {
		res := oracle.Timestamps(tr, oracle.WCP)
		e := New[*core.TreeClock](tr.Meta, core.Factory(nil))
		acc := e.EnableAnalysis()
		e.Process(tr.Events)

		idx := eventIndex(tr)
		for _, p := range acc.Samples {
			i, ok1 := idx[p.Prior]
			j, ok2 := idx[p.Access]
			if !ok1 || !ok2 {
				t.Fatalf("%s: race %v names unknown events", tr.Meta.Name, p)
			}
			if !trace.Conflicting(tr.Events[i], tr.Events[j]) {
				t.Errorf("%s: race %v on non-conflicting events", tr.Meta.Name, p)
			}
			if !res.Concurrent(i, j) {
				t.Errorf("%s: reported race %v is WCP-ordered", tr.Meta.Name, p)
			}
		}
		oracleVars := res.RacyVars(tr)
		detVars := acc.RacyVars()
		for x := range oracleVars {
			if !detVars[x] {
				t.Errorf("%s: variable x%d has a WCP race the detector missed", tr.Meta.Name, x)
			}
		}
		for x := range detVars {
			if !oracleVars[x] {
				t.Errorf("%s: detector flagged race-free variable x%d", tr.Meta.Name, x)
			}
		}
	}
}

// TestWCPAgreesAcrossClocks verifies identical summaries and samples
// with tree clocks and vector clocks (the weak-clock machinery is
// shared; the HB backbone must agree too).
func TestWCPAgreesAcrossClocks(t *testing.T) {
	for _, tr := range randomTraces() {
		eTC := New[*core.TreeClock](tr.Meta, core.Factory(nil))
		aTC := eTC.EnableAnalysis()
		eTC.Process(tr.Events)
		eVC := New[*vc.VectorClock](tr.Meta, vc.Factory(nil))
		aVC := eVC.EnableAnalysis()
		eVC.Process(tr.Events)
		if aTC.Summary() != aVC.Summary() {
			t.Errorf("%s: summaries disagree: tree %+v, vc %+v", tr.Meta.Name, aTC.Summary(), aVC.Summary())
		}
		for i := range aTC.Samples {
			if i < len(aVC.Samples) && aTC.Samples[i] != aVC.Samples[i] {
				t.Errorf("%s: sample %d disagrees: %v vs %v", tr.Meta.Name, i, aTC.Samples[i], aVC.Samples[i])
			}
		}
	}
}

// TestWCPDetectsPredictiveRace pins the headline behavior on the
// canonical example: HB misses the race, WCP reports it.
func TestWCPDetectsPredictiveRace(t *testing.T) {
	tr := parse(t, `
t0 w x0
t0 acq l0
t0 w x1
t0 rel l0
t1 acq l0
t1 w x2
t1 rel l0
t1 w x0
`)
	e := New[*core.TreeClock](tr.Meta, core.Factory(nil))
	acc := e.EnableAnalysis()
	e.Process(tr.Events)
	if acc.Total != 1 {
		t.Fatalf("races = %d, want 1 (the predictive x0 race)", acc.Total)
	}
	p := acc.Samples[0]
	if p.Var != 0 || p.Prior != (vt.Epoch{T: 0, Clk: 1}) || p.Access != (vt.Epoch{T: 1, Clk: 4}) {
		t.Errorf("sample = %v, want w-w race on x0 between t0@1 and t1@4", p)
	}
}

// TestWCPGuardedConflictNotRacy: rule (a) keeps properly guarded
// conflicting accesses ordered.
func TestWCPGuardedConflictNotRacy(t *testing.T) {
	tr := parse(t, `
t0 acq l0
t0 w x0
t0 rel l0
t1 acq l0
t1 w x0
t1 r x0
t1 rel l0
`)
	e := New[*vc.VectorClock](tr.Meta, vc.Factory(nil))
	acc := e.EnableAnalysis()
	e.Process(tr.Events)
	if acc.Total != 0 {
		t.Errorf("guarded conflicting accesses reported racy: %v", acc.Samples)
	}
}

// TestWCPStreamingMatchesPreSized: the dynamically growing runtime
// (no metadata) computes the same report as the pre-sized one.
func TestWCPStreamingMatchesPreSized(t *testing.T) {
	for _, tr := range randomTraces() {
		sized := New[*core.TreeClock](tr.Meta, core.Factory(nil))
		aS := sized.EnableAnalysis()
		sized.Process(tr.Events)
		dyn := NewStreaming[*core.TreeClock](core.Factory(nil))
		aD := dyn.EnableAnalysis()
		dyn.Process(tr.Events)
		if aS.Summary() != aD.Summary() {
			t.Errorf("%s: streaming %+v, pre-sized %+v", tr.Meta.Name, aD.Summary(), aS.Summary())
		}
		k := tr.Meta.Threads
		for th := 0; th < dyn.Threads(); th++ {
			got := dyn.Timestamp(vt.TID(th), vt.NewVector(k))
			want := sized.Timestamp(vt.TID(th), vt.NewVector(k))
			if !got.Equal(want) {
				t.Fatalf("%s: thread %d WCP timestamp %v, want %v", tr.Meta.Name, th, got, want)
			}
		}
	}
}

// TestWCPMalformedLockPaths pins deterministic behavior on the shapes
// TestRuntimeLockPaths pins for the runtime: WCP analysis of a
// malformed stream is well defined (if meaningless) and identical
// across clock variants.
func TestWCPMalformedLockPaths(t *testing.T) {
	traces := []struct {
		name   string
		events []trace.Event
	}{
		{"release-without-acquire", []trace.Event{
			{T: 0, Obj: 0, Kind: trace.Write},
			{T: 0, Obj: 0, Kind: trace.Release},
			{T: 1, Obj: 0, Kind: trace.Acquire},
			{T: 1, Obj: 0, Kind: trace.Write},
		}},
		{"acquire-never-released", []trace.Event{
			{T: 0, Obj: 0, Kind: trace.Acquire},
			{T: 0, Obj: 0, Kind: trace.Write},
			{T: 1, Obj: 1, Kind: trace.Acquire},
			{T: 1, Obj: 0, Kind: trace.Write},
		}},
		{"double-acquire", []trace.Event{
			{T: 0, Obj: 0, Kind: trace.Acquire},
			{T: 0, Obj: 0, Kind: trace.Acquire},
			{T: 0, Obj: 0, Kind: trace.Write},
			{T: 0, Obj: 0, Kind: trace.Release},
			{T: 1, Obj: 0, Kind: trace.Acquire},
			{T: 1, Obj: 0, Kind: trace.Write},
			{T: 1, Obj: 0, Kind: trace.Release},
		}},
	}
	for _, tc := range traces {
		eTC := NewStreaming[*core.TreeClock](core.Factory(nil))
		aTC := eTC.EnableAnalysis()
		eTC.Process(tc.events)
		eVC := NewStreaming[*vc.VectorClock](vc.Factory(nil))
		aVC := eVC.EnableAnalysis()
		eVC.Process(tc.events)
		if aTC.Summary() != aVC.Summary() {
			t.Errorf("%s: tree %+v, vc %+v", tc.name, aTC.Summary(), aVC.Summary())
		}
		switch tc.name {
		case "release-without-acquire":
			// The unmatched release publishes no WCP knowledge and
			// closes no section, so the writes stay unordered: a race.
			if aTC.Total != 1 {
				t.Errorf("%s: races = %d, want 1", tc.name, aTC.Total)
			}
		case "double-acquire":
			// The duplicate acquire keeps the original section; the
			// guarded writes conflict, so rule (a) orders them.
			if aTC.Total != 0 {
				t.Errorf("%s: races = %d, want 0", tc.name, aTC.Total)
			}
		case "acquire-never-released":
			// No release, no summaries: the writes race.
			if aTC.Total != 1 {
				t.Errorf("%s: races = %d, want 1", tc.name, aTC.Total)
			}
		}
	}
}

// TestWCPRuleBFIFOAcrossThreeThreads drives the history cursors
// through the isolating rule-(b) chain from the oracle tests and
// checks the engine agrees with the oracle on every event.
func TestWCPRuleBFIFOAcrossThreeThreads(t *testing.T) {
	tr := parse(t, `
t0 acq l0
t0 acq l2
t0 w x0
t0 rel l2
t0 rel l0
t2 acq l2
t2 r x0
t2 rel l2
t2 acq l3
t2 rel l3
t1 acq l0
t1 acq l3
t1 rel l3
t1 w x2
t1 rel l0
t1 w x1
`)
	res := oracle.Timestamps(tr, oracle.WCP)
	e := New[*vc.VectorClock](tr.Meta, vc.Factory(nil))
	stepCompare(t, tr, e, res, "rule-b chain")
	// The rule-(b) consequence must be visible in the weak clock of the
	// thread that releases l0 second (the text's t1, interned as thread
	// 2 by order of first appearance): the first l0 release — t0's
	// fifth event — is WCP-before its final write.
	if got := e.Sem().WeakClock(2).Get(0); got < 5 {
		t.Errorf("weak clock entry for t0 = %d, want ≥ 5 (rule b)", got)
	}
}

// TestWCPTimestampShortDst is the regression test for the Timestamp
// truncation bug: a destination shorter than the weak clock (or too
// short for the thread's own entry) must be grown, not silently
// truncated.
func TestWCPTimestampShortDst(t *testing.T) {
	tr := parse(t, `
t0 w x0
t0 acq l0
t0 w x1
t0 rel l0
t1 acq l0
t1 w x2
t1 rel l0
t2 acq l0
t2 w x1
t2 rel l0
`)
	e := New[*vc.VectorClock](tr.Meta, vc.Factory(nil))
	e.Process(tr.Events)
	k := tr.Meta.Threads
	for th := 0; th < k; th++ {
		want := e.Timestamp(vt.TID(th), vt.NewVector(k))
		for _, short := range []int{0, 1, th} {
			got := e.Timestamp(vt.TID(th), vt.NewVector(short))
			if len(got) < int(vt.TID(th))+1 {
				t.Fatalf("thread %d: dst of len %d returned len %d, own entry lost", th, short, len(got))
			}
			for u := 0; u < k; u++ {
				if got.Get(vt.TID(u)) != want.Get(vt.TID(u)) {
					t.Fatalf("thread %d: dst of len %d: got %v, want %v", th, short, got, want)
				}
			}
		}
		// A dirty oversized destination must be fully overwritten.
		dirty := vt.NewVector(k + 3)
		for i := range dirty {
			dirty[i] = 999
		}
		got := e.Timestamp(vt.TID(th), dirty)
		for u := range got {
			if u < k {
				if got[u] != want[u] {
					t.Fatalf("thread %d: dirty dst entry %d = %d, want %d", th, u, got[u], want[u])
				}
			} else if got[u] != 0 {
				t.Fatalf("thread %d: dirty dst tail entry %d = %d, want 0", th, u, got[u])
			}
		}
	}
}

// TestWCPCompactionLateThreadSoundness pins the compaction-gating
// subtlety spelled out in the package doc: thread t1 first touches l0
// only after t0 has closed (and re-closed) sections on it, yet reaches
// the rule-(b) trigger condition for t0's first l0 section through a
// nested-lock rule-(a) summary whose snapshot predates that section's
// release. A compaction scheme that counts the owner's own cursor
// ("every acquiring thread has passed the entry" — t0 passes its own
// entries for free) would have dropped the entry before t1 ever
// scanned it and lost the ordering; the foreign-absorption gate keeps
// it. The engine must match the oracle event by event.
func TestWCPCompactionLateThreadSoundness(t *testing.T) {
	tr := parse(t, `
t0 acq l0
t0 acq l1
t0 w x0
t0 rel l1
t0 rel l0
t0 acq l0
t0 rel l0
t1 acq l1
t1 w x0
t1 rel l1
t1 acq l0
t1 rel l0
`)
	res := oracle.Timestamps(tr, oracle.WCP)
	e := New[*vc.VectorClock](tr.Meta, vc.Factory(nil))
	stepCompare(t, tr, e, res, "late-thread")
	// The rule-(b) consequence: t1's final weak clock knows t0's first
	// l0 release (t0@5) via the absorbed snapshot, not just the
	// summary's t0@4.
	if got := e.Sem().WeakClock(1).Get(0); got != 5 {
		t.Errorf("weak clock entry for t0 = %d, want 5 (absorbed first l0 section)", got)
	}
	// And the absorption makes the entry droppable: compaction must
	// have reclaimed it at that same release.
	if ms := e.Sem().MemStats(); ms.DroppedEntries == 0 {
		t.Errorf("no history entries compacted: %+v", ms)
	}
}

// TestWCPCompactionMatchesRetained streams the differential corpus
// with compaction on and off: summaries, samples and final weak-order
// timestamps must be identical — compaction only drops entries whose
// absorption would be a no-op.
func TestWCPCompactionMatchesRetained(t *testing.T) {
	for _, tr := range randomTraces() {
		run := func(compact bool) (*Engine[*vc.VectorClock], *analysis.Accumulator) {
			e := New[*vc.VectorClock](tr.Meta, vc.Factory(nil))
			e.Sem().SetCompaction(compact)
			acc := e.EnableAnalysis()
			e.Process(tr.Events)
			return e, acc
		}
		eC, aC := run(true)
		eR, aR := run(false)
		if aC.Summary() != aR.Summary() {
			t.Errorf("%s: compacted %+v, retained %+v", tr.Meta.Name, aC.Summary(), aR.Summary())
		}
		for i := range aC.Samples {
			if i < len(aR.Samples) && aC.Samples[i] != aR.Samples[i] {
				t.Errorf("%s: sample %d diverges: %v vs %v", tr.Meta.Name, i, aC.Samples[i], aR.Samples[i])
			}
		}
		k := tr.Meta.Threads
		for th := 0; th < k; th++ {
			got := eC.Timestamp(vt.TID(th), vt.NewVector(k))
			want := eR.Timestamp(vt.TID(th), vt.NewVector(k))
			if !got.Equal(want) {
				t.Fatalf("%s: thread %d: compacted %v, retained %v", tr.Meta.Name, th, got, want)
			}
		}
		msC, msR := eC.Sem().MemStats(), eR.Sem().MemStats()
		if msR.DroppedEntries != 0 {
			t.Errorf("%s: retained run compacted %d entries", tr.Meta.Name, msR.DroppedEntries)
		}
		if msC.HistEntries+int(msC.DroppedEntries) != msR.HistEntries {
			t.Errorf("%s: live+dropped (%d+%d) != retained total %d",
				tr.Meta.Name, msC.HistEntries, msC.DroppedEntries, msR.HistEntries)
		}
	}
}

// TestWCPMemStatsAccounting sanity-checks the MemReporter numbers on a
// draining workload.
func TestWCPMemStatsAccounting(t *testing.T) {
	e := NewStreaming[*vc.VectorClock](vc.Factory(nil))
	if err := e.ProcessSource(gen.Take(gen.HotLock(6, 7), 60000)); err != nil {
		t.Fatalf("soak stream: %v", err)
	}
	ms := e.Sem().MemStats()
	if ms.DroppedEntries == 0 {
		t.Fatalf("hot-lock run compacted nothing: %+v", ms)
	}
	if ms.HistEntries > ms.PeakLockHist {
		t.Errorf("live entries %d exceed the recorded peak %d", ms.HistEntries, ms.PeakLockHist)
	}
	if ms.RetainedBytes == 0 {
		t.Errorf("retained bytes reported as zero despite live state: %+v", ms)
	}
	if ms.FreeVectors == 0 {
		t.Errorf("free list empty after compaction: %+v", ms)
	}
	var live int
	var dropped uint64
	for _, st := range e.Sem().LockHistStats() {
		live += st.Live
		dropped += st.Dropped
		if st.Peak < st.Live {
			t.Errorf("lock %d: peak %d below live %d", st.Lock, st.Peak, st.Live)
		}
	}
	if live != ms.HistEntries || dropped != ms.DroppedEntries {
		t.Errorf("per-lock totals (%d live, %d dropped) disagree with MemStats (%d, %d)",
			live, dropped, ms.HistEntries, ms.DroppedEntries)
	}
}

// TestEngineInterfacesDetected confirms the runtime sees the hooks.
func TestEngineInterfacesDetected(t *testing.T) {
	var s any = NewSemantics[*vc.VectorClock]()
	if _, ok := s.(engine.LockSemantics[*vc.VectorClock]); !ok {
		t.Error("WCP semantics must implement LockSemantics")
	}
	if _, ok := s.(engine.ThreadSemantics[*vc.VectorClock]); !ok {
		t.Error("WCP semantics must implement ThreadSemantics")
	}
}
