package hb

import (
	"io"

	"treeclock/internal/ckpt"
	"treeclock/internal/engine"
)

// Snapshot implements engine.CheckpointSemantics. HB keeps no plugin
// state of its own — the clocks and the detector live in the runtime —
// so the section exists only to keep the checkpoint's section sequence
// aligned and misdirected streams detectable.
func (Semantics[C]) Snapshot(rt *engine.Runtime[C], w io.Writer) error {
	e := ckpt.NewEnc(w)
	e.Begin("hb")
	e.End()
	return e.Err()
}

// Restore implements engine.CheckpointSemantics.
func (Semantics[C]) Restore(rt *engine.Runtime[C], r io.Reader) error {
	d := ckpt.NewDec(r)
	d.Begin("hb")
	d.End()
	return d.Err()
}
