package hb

import (
	"fmt"
	"testing"

	"treeclock/internal/core"
	"treeclock/internal/gen"
	"treeclock/internal/oracle"
	"treeclock/internal/trace"
	"treeclock/internal/vc"
	"treeclock/internal/vt"
)

func parse(t *testing.T, s string) *trace.Trace {
	t.Helper()
	tr, err := trace.ParseTextString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return tr
}

// randomTraces is the shared differential-test corpus: mixtures of
// thread counts, lock counts and sync ratios, all small enough for the
// quadratic oracle.
func randomTraces() []*trace.Trace {
	var out []*trace.Trace
	for seed := int64(1); seed <= 6; seed++ {
		out = append(out,
			gen.Mixed(gen.Config{Name: "rnd-grouped", Threads: 12, Locks: 8, Vars: 24, Events: 800, Seed: 99, SyncFrac: 0.3, LockAffinity: 2, Groups: 3, VarRun: 4}),
			gen.Mixed(gen.Config{Name: "rnd-a", Threads: 3, Locks: 2, Vars: 5, Events: 300, Seed: seed, SyncFrac: 0.4}),
			gen.Mixed(gen.Config{Name: "rnd-b", Threads: 6, Locks: 3, Vars: 8, Events: 500, Seed: seed * 7, SyncFrac: 0.25}),
			gen.Mixed(gen.Config{Name: "rnd-c", Threads: 10, Locks: 5, Vars: 12, Events: 700, Seed: seed * 13, SyncFrac: 0.15}),
		)
	}
	out = append(out,
		gen.SingleLock(5, 400, 3),
		gen.Star(8, 500, 4),
		gen.Pairwise(6, 400, 5),
		gen.ForkJoinTree(5, 30, 6),
	)
	return out
}

// stepCompare runs the engine event by event and compares each event's
// timestamp with the oracle's.
func stepCompare[C vt.Clock[C]](t *testing.T, tr *trace.Trace, e *Engine[C], res *oracle.Result, label string) {
	t.Helper()
	k := tr.Meta.Threads
	dst := vt.NewVector(k)
	for i, ev := range tr.Events {
		e.Step(ev)
		got := e.Timestamp(ev.T, dst)
		if !got.Equal(res.Post[i]) {
			t.Fatalf("%s: %s event %d (%v): timestamp %v, oracle %v", label, tr.Meta.Name, i, ev, got, res.Post[i])
		}
	}
}

func TestHBMatchesOracleBothClocks(t *testing.T) {
	for _, tr := range randomTraces() {
		res := oracle.Timestamps(tr, oracle.HB)
		eTC := New(tr.Meta, core.Factory(nil))
		stepCompare(t, tr, eTC, res, "tree clock")
		eVC := New(tr.Meta, vc.Factory(nil))
		stepCompare(t, tr, eVC, res, "vector clock")
	}
}

func TestHBHandComputed(t *testing.T) {
	tr := parse(t, `
t0 acq l0
t0 w x0
t0 rel l0
t1 acq l0
t1 r x0
t1 rel l0
`)
	e := New(tr.Meta, core.Factory(nil))
	e.Process(tr.Events)
	if got := e.Timestamp(1, vt.NewVector(2)); !got.Equal(vt.Vector{3, 3}) {
		t.Errorf("t1 timestamp = %v, want [3, 3]", got)
	}
	if e.Events() != 6 {
		t.Errorf("Events() = %d", e.Events())
	}
}

// TestVTWorkIdenticalAcrossClocks asserts the defining property of
// VTWork: the number of changed vector-time entries is a function of
// the trace, not the data structure.
func TestVTWorkIdenticalAcrossClocks(t *testing.T) {
	for _, tr := range randomTraces() {
		var stTC, stVC vt.WorkStats
		New(tr.Meta, core.Factory(&stTC)).Process(tr.Events)
		New(tr.Meta, vc.Factory(&stVC)).Process(tr.Events)
		if stTC.Changed != stVC.Changed {
			t.Errorf("%s: VTWork disagrees: tree %d vs vector %d", tr.Meta.Name, stTC.Changed, stVC.Changed)
		}
		if stTC.ForcedRootAttach != 0 {
			t.Errorf("%s: ForcedRootAttach = %d", tr.Meta.Name, stTC.ForcedRootAttach)
		}
	}
}

// TestTreeClockWorkBound asserts Theorem 1's accounting: the entries a
// tree-clock run accesses are within a small constant of VTWork. The
// paper proves ≤ 3·VTWork for its accounting of join/copy accesses; we
// also admit one root comparison per operation (vacuous joins touch the
// root but change nothing).
func TestTreeClockWorkBound(t *testing.T) {
	for _, tr := range randomTraces() {
		var st vt.WorkStats
		New(tr.Meta, core.Factory(&st)).Process(tr.Events)
		bound := 3*st.Changed + st.Joins + st.Copies
		if st.Entries > bound {
			t.Errorf("%s: TCWork %d exceeds 3·VTWork+ops = %d (VTWork %d)",
				tr.Meta.Name, st.Entries, bound, st.Changed)
		}
	}
}

// TestVectorClockWorkLinear sanity-checks the baseline: every join or
// copy touches exactly k entries.
func TestVectorClockWorkLinear(t *testing.T) {
	tr := gen.SingleLock(7, 600, 1)
	var st vt.WorkStats
	New(tr.Meta, vc.Factory(&st)).Process(tr.Events)
	wantOps := st.Joins + st.Copies
	wantEntries := wantOps*uint64(tr.Meta.Threads) + uint64(tr.Len()) // + increments
	if st.Entries != wantEntries {
		t.Errorf("VCWork = %d, want %d (%d ops over %d threads)", st.Entries, wantEntries, wantOps, tr.Meta.Threads)
	}
}

// eventIndex maps (thread, local time) pairs back to event indices.
func eventIndex(tr *trace.Trace) map[vt.Epoch]int {
	m := make(map[vt.Epoch]int, tr.Len())
	lt := tr.LocalTimes()
	for i, e := range tr.Events {
		m[vt.Epoch{T: e.T, Clk: lt[i]}] = i
	}
	return m
}

// TestRaceDetectionAgainstOracle checks the FastTrack-style detector
// against the quadratic ground truth: every reported sample pair is a
// real race, and every variable with a race is reported (per-variable
// completeness of first races).
func TestRaceDetectionAgainstOracle(t *testing.T) {
	for _, tr := range randomTraces() {
		res := oracle.Timestamps(tr, oracle.HB)
		e := New(tr.Meta, core.Factory(nil))
		det := e.EnableRaceDetection()
		e.Process(tr.Events)

		idx := eventIndex(tr)
		for _, p := range det.Acc.Samples {
			i, ok1 := idx[p.Prior]
			j, ok2 := idx[p.Access]
			if !ok1 || !ok2 {
				t.Fatalf("%s: race %v names unknown events", tr.Meta.Name, p)
			}
			if !trace.Conflicting(tr.Events[i], tr.Events[j]) {
				t.Errorf("%s: race %v on non-conflicting events %v, %v", tr.Meta.Name, p, tr.Events[i], tr.Events[j])
			}
			if !res.Concurrent(i, j) {
				t.Errorf("%s: reported race %v is HB-ordered", tr.Meta.Name, p)
			}
		}
		oracleVars := res.RacyVars(tr)
		detVars := det.Acc.RacyVars()
		for x := range oracleVars {
			if !detVars[x] {
				t.Errorf("%s: variable x%d has an HB race the detector missed", tr.Meta.Name, x)
			}
		}
		for x := range detVars {
			if !oracleVars[x] {
				t.Errorf("%s: detector flagged race-free variable x%d", tr.Meta.Name, x)
			}
		}
	}
}

// TestRaceDetectionAgreesAcrossClocks verifies the detector reports
// identical counts with tree clocks and vector clocks.
func TestRaceDetectionAgreesAcrossClocks(t *testing.T) {
	for _, tr := range randomTraces() {
		eTC := New(tr.Meta, core.Factory(nil))
		dTC := eTC.EnableRaceDetection()
		eTC.Process(tr.Events)
		eVC := New(tr.Meta, vc.Factory(nil))
		dVC := eVC.EnableRaceDetection()
		eVC.Process(tr.Events)
		if dTC.Acc.Summary() != dVC.Acc.Summary() {
			t.Errorf("%s: detector disagrees: TC %+v vs VC %+v",
				tr.Meta.Name, dTC.Acc.Summary(), dVC.Acc.Summary())
		}
	}
}

func TestRacyTraceIsDetected(t *testing.T) {
	tr := parse(t, "t0 w x0\nt1 r x0\nt1 w x0\n")
	e := New(tr.Meta, core.Factory(nil))
	det := e.EnableRaceDetection()
	e.Process(tr.Events)
	sum := det.Acc.Summary()
	if sum.WriteRead != 1 { // t0's write vs t1's read
		t.Errorf("write-read races = %d, want 1", sum.WriteRead)
	}
	if sum.WriteWrite != 1 { // t0's write vs t1's write
		t.Errorf("write-write races = %d, want 1", sum.WriteWrite)
	}
	if e.Detector() != det {
		t.Error("Detector() accessor broken")
	}
}

func TestWellSyncedTraceHasNoRaces(t *testing.T) {
	tr := gen.SingleLock(6, 500, 2)
	e := New(tr.Meta, vc.Factory(nil))
	det := e.EnableRaceDetection()
	e.Process(tr.Events)
	if det.Acc.Total != 0 {
		t.Errorf("sync-only trace produced %d races", det.Acc.Total)
	}
}

func TestForkJoinSemantics(t *testing.T) {
	tr := parse(t, `
t0 w x0
t0 fork t1
t1 r x0
t0 join t1
t0 w x0
`)
	e := New(tr.Meta, core.Factory(nil))
	det := e.EnableRaceDetection()
	e.Process(tr.Events)
	if det.Acc.Total != 0 {
		t.Errorf("fork/join-ordered accesses flagged racy: %v", det.Acc.Samples)
	}
	res := oracle.Timestamps(tr, oracle.HB)
	got := e.Timestamp(0, vt.NewVector(2))
	if !got.Equal(res.Post[4]) {
		t.Errorf("final t0 timestamp %v, oracle %v", got, res.Post[4])
	}
}

func TestThreadClockAccessor(t *testing.T) {
	tr := parse(t, "t0 w x0\n")
	e := New(tr.Meta, core.Factory(nil))
	e.Process(tr.Events)
	if e.ThreadClock(0).Get(0) != 1 {
		t.Error("ThreadClock accessor broken")
	}
}

func ExampleEngine() {
	tr, _ := trace.ParseTextString("t0 acq l0\nt0 w x0\nt0 rel l0\nt1 acq l0\nt1 r x0\nt1 rel l0\n")
	e := New(tr.Meta, core.Factory(nil))
	det := e.EnableRaceDetection()
	e.Process(tr.Events)
	fmt.Println("races:", det.Acc.Total)
	// Output: races: 0
}
