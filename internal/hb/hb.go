// Package hb computes Lamport's happens-before partial order over a
// trace in a single streaming pass (the paper's Algorithms 1 and 3).
// The engine is generic over the clock data structure: instantiated
// with *core.TreeClock it is Algorithm 3, with *vc.VectorClock it is
// Algorithm 1 — identical algorithm code, so measured differences are
// attributable to the data structure alone.
package hb

import (
	"treeclock/internal/analysis"
	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// Engine computes HB timestamps while streaming events.
//
// Per thread t it maintains the clock C_t; per lock ℓ the clock C_ℓ
// holding the timestamp of ℓ's last release. Every event first
// increments its thread's local entry (footnote 1); the event's
// HB-timestamp is C_t right after Step returns.
type Engine[C vt.Clock[C]] struct {
	meta    trace.Meta
	threads []C
	locks   []C
	det     *analysis.Detector[C]
	events  uint64
}

// New builds an engine for traces with the given metadata. factory
// produces the clocks (binding thread count and an optional shared
// work-stats sink).
func New[C vt.Clock[C]](meta trace.Meta, factory vt.Factory[C]) *Engine[C] {
	e := &Engine[C]{meta: meta}
	e.threads = make([]C, meta.Threads)
	for t := range e.threads {
		e.threads[t] = factory()
		e.threads[t].Init(vt.TID(t))
	}
	e.locks = make([]C, meta.Locks)
	for l := range e.locks {
		e.locks[l] = factory() // uninitialized: zero vector time
	}
	return e
}

// EnableRaceDetection attaches a FastTrack-style detector (the
// "+Analysis" configuration) and returns it. Without a detector, read
// and write events only advance the thread's local time, matching the
// pure partial-order computation the paper times as "HB".
func (e *Engine[C]) EnableRaceDetection() *analysis.Detector[C] {
	e.det = analysis.NewDetector[C](e.meta.Threads, e.meta.Vars)
	return e.det
}

// Step processes one event.
func (e *Engine[C]) Step(ev trace.Event) {
	t := ev.T
	ct := e.threads[t]
	ct.Inc(t, 1)
	switch ev.Kind {
	case trace.Acquire:
		ct.Join(e.locks[ev.Obj])
	case trace.Release:
		// Lemma 2: C_ℓ ⊑ C_t holds here, so the copy is monotone.
		e.locks[ev.Obj].MonotoneCopy(ct)
	case trace.Read:
		if e.det != nil {
			e.det.Read(ev.Obj, t, ct)
		}
	case trace.Write:
		if e.det != nil {
			e.det.Write(ev.Obj, t, ct)
		}
	case trace.Fork:
		// The child inherits the parent's knowledge.
		e.threads[ev.Obj].Join(ct)
	case trace.Join:
		ct.Join(e.threads[ev.Obj])
	}
	e.events++
}

// Process runs the whole event slice through Step.
func (e *Engine[C]) Process(events []trace.Event) {
	for i := range events {
		e.Step(events[i])
	}
}

// Events returns the number of events processed.
func (e *Engine[C]) Events() uint64 { return e.events }

// ThreadClock exposes thread t's clock (its current timestamp).
func (e *Engine[C]) ThreadClock(t vt.TID) C { return e.threads[t] }

// Timestamp snapshots thread t's current vector time into dst.
func (e *Engine[C]) Timestamp(t vt.TID, dst vt.Vector) vt.Vector {
	return e.threads[t].Vector(dst)
}

// Detector returns the attached detector, or nil.
func (e *Engine[C]) Detector() *analysis.Detector[C] { return e.det }
