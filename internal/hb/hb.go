// Package hb computes Lamport's happens-before partial order over a
// trace in a single streaming pass (the paper's Algorithms 1 and 3).
// The engine is generic over the clock data structure: instantiated
// with *core.TreeClock it is Algorithm 3, with *vc.VectorClock it is
// Algorithm 1 — identical algorithm code, so measured differences are
// attributable to the data structure alone.
//
// All sync scaffolding (thread and lock clocks, the event dispatch,
// identifier growth) lives in the shared runtime of internal/engine;
// this package contributes only the HB read/write semantics: accesses
// carry no ordering of their own, so the hooks merely feed the optional
// race detector.
package hb

import (
	"treeclock/internal/engine"
	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// Semantics is the HB plugin for the shared engine runtime. Under
// happens-before, reads and writes induce no edges; with race detection
// enabled they are checked against the variable's access history.
type Semantics[C vt.Clock[C]] struct{}

// NewSemantics returns the (stateless) HB semantics.
func NewSemantics[C vt.Clock[C]]() Semantics[C] { return Semantics[C]{} }

// Read implements engine.Semantics.
func (Semantics[C]) Read(rt *engine.Runtime[C], t vt.TID, x int32, ct C) {
	if d := rt.Detector(); d != nil {
		d.Read(x, t, ct)
	}
}

// Write implements engine.Semantics.
func (Semantics[C]) Write(rt *engine.Runtime[C], t vt.TID, x int32, ct C) {
	if d := rt.Detector(); d != nil {
		d.Write(x, t, ct)
	}
}

// Engine computes HB timestamps while streaming events. It is the
// shared runtime bound to the HB semantics; every method (Step,
// Process, Events, ThreadClock, Timestamp, EnableRaceDetection, ...)
// is promoted from engine.Runtime.
type Engine[C vt.Clock[C]] struct {
	engine.Runtime[C]
}

// New builds an engine pre-sized for traces with the given metadata.
// factory produces the clocks (binding an optional shared work-stats
// sink; the capacity is supplied by the runtime).
func New[C vt.Clock[C]](meta trace.Meta, factory vt.Factory[C]) *Engine[C] {
	e := &Engine[C]{}
	e.Runtime = *engine.NewWithMeta[C](Semantics[C]{}, factory, meta)
	return e
}

// NewStreaming builds an engine that discovers the trace's identifier
// spaces on the fly (no prior metadata).
func NewStreaming[C vt.Clock[C]](factory vt.Factory[C]) *Engine[C] {
	e := &Engine[C]{}
	e.Runtime = *engine.New[C](Semantics[C]{}, factory)
	return e
}
