package lint_test

import (
	"testing"

	"treeclock/internal/lint"
	"treeclock/internal/lint/linttest"
)

func TestRefpairCorpus(t *testing.T) {
	linttest.Run(t, "testdata", lint.Refpair, "refpair")
}
