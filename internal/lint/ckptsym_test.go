package lint_test

import (
	"strings"
	"testing"

	"treeclock/internal/lint"
	"treeclock/internal/lint/linttest"
)

func TestCkptsymCorpus(t *testing.T) {
	linttest.Run(t, "testdata", lint.Ckptsym, "ckptsym")
}

// TestCkptsymCatchesPR7Mismatch pins the historical regression the
// analyzer exists for: PR 7's checkpoint round-trip harness caught a
// save side writing a count as a zigzag svarint (Enc.Int) while the
// load side read a plain uvarint (Dec.Len), doubling every
// nonnegative value on resume. The corpus reproduces that pair
// verbatim; the analyzer must flag it with both wire kinds named.
func TestCkptsymCatchesPR7Mismatch(t *testing.T) {
	diags := linttest.Diagnose(t, "testdata", lint.Ckptsym, "ckptsym")
	for _, d := range diags {
		if strings.Contains(d, "zigzag svarint") && strings.Contains(d, "plain uvarint") {
			return
		}
	}
	t.Fatalf("ckptsym did not flag the PR 7 zigzag-vs-uvarint pattern; diagnostics:\n%s",
		strings.Join(diags, "\n"))
}
