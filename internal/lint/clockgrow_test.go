package lint_test

import (
	"testing"

	"treeclock/internal/lint"
	"treeclock/internal/lint/linttest"
)

func TestClockgrowCorpus(t *testing.T) {
	linttest.Run(t, "testdata", lint.Clockgrow, "clockgrow")
}
