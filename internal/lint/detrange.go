package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detrange enforces the replica-determinism invariant from PR 5/7:
// parallel shards and checkpoint/resume replays are differentially
// pinned to produce byte-identical reports, so no observable output
// may depend on Go's randomized map iteration order or on wall-clock
// or math/rand nondeterminism.
//
// Two rule families:
//
//  1. Everywhere: inside the body of a `range` over a map, it flags
//     (a) any write to a checkpoint encoder (*ckpt.Enc method call),
//     (b) any report emission (analysis.Accumulator.Report), and
//     (c) any append to a slice declared before the loop that is not
//     sorted afterwards in the same function. The blessed pattern is
//     collect → sort.Slice → emit, which keeps all three sinks
//     outside the map-ordered region.
//
//  2. In the deterministic core (package engine, parallel, wcp, or
//     ckpt): any use of time.Now or any import of math/rand, outside
//     _test.go files. Timing belongs in the drivers (cmd/*,
//     internal/trace progress reporting), never in analysis state.
var Detrange = &Analyzer{
	Name: "detrange",
	Doc: "flag unsorted map iteration flowing into encoders, reports, or accumulated slices,\n" +
		"and wall-clock/math/rand use in the deterministic engine packages",
	Run: runDetrange,
}

// detrangePkgs are the packages (by final import-path element) whose
// control flow must be a pure function of the event stream.
var detrangePkgs = map[string]bool{"engine": true, "parallel": true, "wcp": true, "ckpt": true, "daemon": true}

func runDetrange(pass *Pass) error {
	info := pass.Pkg.Info()
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			detrangeFunc(pass, fd)
		}
	}

	seg := pass.Pkg.Path
	if i := strings.LastIndexByte(seg, '/'); i >= 0 {
		seg = seg[i+1:]
	}
	if !detrangePkgs[seg] {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		if inTestFile(pass.Pkg.Fset(), file.Pos()) {
			continue
		}
		for _, imp := range file.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "package %s must stay replica-deterministic: import of %s is forbidden (thread a seeded source through the config instead)", seg, p)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok &&
				fn.Name() == "Now" && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
				pass.Reportf(sel.Pos(), "package %s must stay replica-deterministic: time.Now makes resumed and live runs diverge", seg)
			}
			return true
		})
	}
	return nil
}

// detrangeFunc applies the map-range sink rules inside one function.
func detrangeFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info()
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Sink (a): checkpoint encoder write.
			if recv := recvExpr(call); recv != nil {
				if rt := info.Types[recv].Type; namedIn(rt, "ckpt", "Enc") {
					pass.Reportf(call.Pos(), "checkpoint write inside range over map %s: map iteration order is random, so resumed runs would not be byte-identical; collect keys, sort, then encode", exprString(pass.Pkg.Fset(), rng.X))
					return true
				}
				// Sink (b): report emission into an accumulator.
				if fn := calleeOf(info, call); fn != nil && fn.Name() == "Report" {
					if rt := info.Types[recv].Type; namedIn(rt, "analysis", "Accumulator") {
						pass.Reportf(call.Pos(), "report emitted inside range over map %s: sample selection would depend on map iteration order; collect, sort, then report", exprString(pass.Pkg.Fset(), rng.X))
						return true
					}
				}
			}
			// Sink (c): order-dependent accumulation into an outer slice.
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
				dst := identOf(call.Args[0])
				if dst == nil {
					return true
				}
				obj := objectOf(info, dst)
				if obj == nil || !obj.Pos().IsValid() || obj.Pos() >= rng.Pos() {
					return true // declared inside the loop: local scratch
				}
				if sortedAfter(info, fd, obj, rng) {
					return true // collect-then-sort: the blessed pattern
				}
				pass.Reportf(call.Pos(), "append to %s inside range over map %s without a later sort: slice order would depend on map iteration order", dst.Name, exprString(pass.Pkg.Fset(), rng.X))
			}
			return true
		})
		return true
	})
}

// sortedAfter reports whether fd contains, after the range statement,
// a sort.*/slices.Sort* call whose first argument is obj.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, obj types.Object, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		name := fn.Name()
		if name != "Slice" && name != "SliceStable" && name != "Sort" &&
			!strings.HasPrefix(name, "Sort") &&
			name != "Strings" && name != "Ints" {
			return true
		}
		if len(call.Args) > 0 {
			arg := call.Args[0]
			if star, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok {
				arg = star.X
			}
			if id := identOf(arg); id != nil && objectOf(info, id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
