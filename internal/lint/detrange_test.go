package lint_test

import (
	"testing"

	"treeclock/internal/lint"
	"treeclock/internal/lint/linttest"
)

func TestDetrangeCorpus(t *testing.T) {
	linttest.Run(t, "testdata", lint.Detrange, "detrange", "engine")
}
