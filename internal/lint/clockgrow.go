package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Clockgrow enforces the vt.Clock growth contract: Get beyond the
// current capacity is defined (returns zero), but Inc is not — the
// tree-clock backbone indexes its per-thread slot directly, so every
// Inc on a slot must be dominated by an Init, a Grow, or a capacity
// guard. The engine's canonical pattern is
//
//	if int(t) >= len(r.threads) { r.growThreads(int(t) + 1) }
//	ct := r.threads[t]
//	ct.Inc(t, 1)
//
// The analyzer tracks clocks *created in the current function* (a
// local assigned from a constructor call) and flags Inc calls on them
// unless one of the dominating facts holds:
//
//   - an intervening Grow/Init/Load call on the same clock;
//   - the constructor's capacity argument mentions the same index
//     expression (e.g. New(int(t)+1) ... Inc(t, 1));
//   - an enclosing if-guard mentions the index together with len, cap,
//     or a Cap/Len method — the grow-on-demand idiom;
//   - both capacity and index are constants with index < capacity.
//
// Clocks obtained any other way (fields, slice elements, parameters)
// are owned elsewhere; their Init happened at registration time and
// flagging them would be noise.
var Clockgrow = &Analyzer{
	Name: "clockgrow",
	Doc: "flag Inc on a locally constructed vt.Clock slot without a dominating\n" +
		"Grow/Init call or capacity guard",
	Run: runClockgrow,
}

func runClockgrow(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			clockgrowFunc(pass, fd)
		}
	}
	return nil
}

type clockSite struct {
	obj  types.Object  // the local clock variable
	call *ast.CallExpr // its constructor call
}

func clockgrowFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info()
	fset := pass.Pkg.Fset()

	// Pass 1: collect constructor sites, grow-class calls, Inc calls,
	// and enclosing-if extents, all in one walk.
	var created []clockSite
	type growCall struct {
		obj types.Object
		pos ast.Node
	}
	var grows []growCall
	type incCall struct {
		obj  types.Object
		call *ast.CallExpr
		idx  ast.Expr
	}
	var incs []incCall
	var ifs []*ast.IfStmt

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			ifs = append(ifs, s)
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return true
			}
			id := identOf(s.Lhs[0])
			call, okc := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
			if id == nil || !okc {
				return true
			}
			if obj := objectOf(info, id); obj != nil && isClock(obj.Type()) {
				// A method call on the clock itself (c := c.MonotoneCopy())
				// still counts as a construction of a fresh value.
				created = append(created, clockSite{obj: obj, call: call})
			}
		case *ast.CallExpr:
			recv := recvExpr(s)
			if recv == nil {
				return true
			}
			id := identOf(recv)
			if id == nil {
				return true
			}
			obj := objectOf(info, id)
			if obj == nil || !isClock(obj.Type()) {
				return true
			}
			fn := calleeOf(info, s)
			if fn == nil {
				return true
			}
			switch fn.Name() {
			case "Grow", "Init", "Load", "Join":
				// Join grows the receiver to the source's width by
				// contract; Load replaces the backbone wholesale.
				grows = append(grows, growCall{obj: obj, pos: s})
			case "Inc":
				if len(s.Args) > 0 {
					incs = append(incs, incCall{obj: obj, call: s, idx: s.Args[0]})
				}
			}
		}
		return true
	})

	for _, inc := range incs {
		var site *clockSite
		for i := range created {
			if created[i].obj == inc.obj && created[i].call.Pos() < inc.call.Pos() {
				site = &created[i]
			}
		}
		if site == nil {
			continue // not locally constructed: owned and Init'ed elsewhere
		}
		grown := false
		for _, g := range grows {
			if g.obj == inc.obj && g.pos.Pos() > site.call.Pos() && g.pos.Pos() < inc.call.Pos() {
				grown = true
				break
			}
		}
		if grown {
			continue
		}
		if capacityCoversIndex(pass, site.call, inc.idx) {
			continue
		}
		if guardedBy(info, ifs, inc.call, inc.idx) {
			continue
		}
		pass.Reportf(inc.call.Pos(),
			"%s.Inc(%s, ...) on a clock constructed at line %d without a dominating Grow/Init or capacity guard: Inc beyond capacity is undefined by the vt.Clock contract",
			inc.obj.Name(), exprString(fset, inc.idx),
			fset.Position(site.call.Pos()).Line)
	}
}

// capacityCoversIndex reports whether the constructor call's arguments
// visibly cover the index: either an argument mentions the index's
// root variable (New(int(t)+1) ... Inc(t)), or a constant capacity
// exceeds a constant index.
func capacityCoversIndex(pass *Pass, ctor *ast.CallExpr, idx ast.Expr) bool {
	info := pass.Pkg.Info()
	var idxObj types.Object
	if root := rootIdent(idx); root != nil {
		idxObj = objectOf(info, root)
	}
	var idxVal constant.Value
	if tv, ok := info.Types[idx]; ok && tv.Value != nil {
		idxVal = tv.Value
	}
	for _, arg := range ctor.Args {
		if idxObj != nil && usesObject(info, arg, idxObj) {
			return true
		}
		if idxVal != nil {
			if tv, ok := info.Types[arg]; ok && tv.Value != nil &&
				constant.Compare(idxVal, token.LSS, tv.Value) {
				return true
			}
		}
	}
	return false
}

// guardedBy reports whether the Inc call sits inside an if whose
// condition mentions the index variable together with a len/cap/Cap
// capacity probe — the grow-on-demand guard idiom.
func guardedBy(info *types.Info, ifs []*ast.IfStmt, call *ast.CallExpr, idx ast.Expr) bool {
	root := rootIdent(idx)
	if root == nil {
		return false
	}
	idxObj := objectOf(info, root)
	if idxObj == nil {
		return false
	}
	for _, s := range ifs {
		if call.Pos() < s.Body.Pos() || call.End() > s.Body.End() {
			continue
		}
		if !usesObject(info, s.Cond, idxObj) {
			continue
		}
		probe := false
		ast.Inspect(s.Cond, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
				probe = true
			}
			if fn := calleeOf(info, c); fn != nil && (fn.Name() == "Cap" || fn.Name() == "Len" || fn.Name() == "Threads") {
				probe = true
			}
			return !probe
		})
		if probe {
			return true
		}
	}
	return false
}
