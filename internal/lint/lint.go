// Package lint implements tcvet's static analyzers: custom passes that
// enforce, at vet time, the runtime invariants the rest of the repo can
// only check dynamically (differential tests, crash-equivalence
// harnesses, refcount audits).
//
// The package deliberately mirrors a small slice of the
// golang.org/x/tools/go/analysis API — Analyzer, Pass, Diagnostic —
// so the analyzers read like standard vet passes and could be ported
// to the real framework verbatim. The module has no dependencies, so
// the driver (Load, Run) is built on the standard library alone:
// go/parser + go/types, with stdlib imports resolved from GOROOT
// source via importer.ForCompiler(fset, "source", nil). That keeps
// `go run ./cmd/tcvet ./...` working in an offline sandbox.
//
// The four analyzers and the invariants they encode:
//
//   - refpair (refpair.go): snapshot references acquired from a
//     SnapStore must reach Drop or a documented ownership transfer on
//     every path.
//   - ckptsym (ckptsym.go): paired save/load functions must Enc/Dec
//     the same wire-type sequence, counts before elements.
//   - detrange (detrange.go): no unsorted map iteration may flow into
//     encoders, reports, or accumulated slices; no wall-clock or
//     math/rand in replica-deterministic packages.
//   - clockgrow (clockgrow.go): no Inc on a freshly created clock slot
//     without a dominating Grow/Init or capacity guard.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static analysis pass.
type Analyzer struct {
	Name string // command-line name and diagnostic tag
	Doc  string // one-paragraph description, shown by tcvet -h
	Run  func(*Pass) error
}

// A Pass is the interface between the driver and one analyzer run on
// one package. Report may be called concurrently only if the analyzer
// itself spawns goroutines (none do).
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package
	Report   func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// A Package is one type-checked package: its syntax, its types, and a
// back-pointer to the program it was loaded into.
type Package struct {
	Path  string // import path ("treeclock/internal/vt", or corpus path "ckptsym")
	Files []*ast.File
	Types *types.Package
	prog  *Program
}

// Fset returns the file set all of the package's positions refer to.
func (p *Package) Fset() *token.FileSet { return p.prog.Fset }

// Info returns the program-wide type info (shared across packages).
func (p *Package) Info() *types.Info { return p.prog.Info }

// A Program is a set of type-checked packages sharing one FileSet and
// one types.Info, so analyzers can follow references across package
// boundaries (ckptsym inlines helper save/load functions this way).
type Program struct {
	Fset *token.FileSet
	Info *types.Info

	pkgs  map[string]*Package         // by import path
	decls map[token.Pos]*ast.FuncDecl // func name pos -> decl, all packages
}

// Packages returns all loaded local packages, sorted by import path.
// Packages pulled in from GOROOT are type-checked but not retained.
func (prog *Program) Packages() []*Package {
	out := make([]*Package, 0, len(prog.pkgs))
	for _, p := range prog.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Package returns the loaded package with the given import path, or nil.
func (prog *Program) Package(path string) *Package { return prog.pkgs[path] }

// FuncDecl resolves a types.Func to its declaration, if the declaring
// package was loaded from source. Generic instantiations resolve to
// the origin declaration. Returns nil for stdlib or interface methods.
func (prog *Program) FuncDecl(fn *types.Func) *ast.FuncDecl {
	if fn == nil {
		return nil
	}
	if prog.decls == nil {
		prog.decls = make(map[token.Pos]*ast.FuncDecl)
		for _, pkg := range prog.pkgs {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						prog.decls[fd.Name.Pos()] = fd
					}
				}
			}
		}
	}
	return prog.decls[fn.Origin().Pos()]
}

// Run applies each analyzer to each of the given packages and returns
// the diagnostics sorted by position. Diagnostics in _test.go files
// are kept; callers that want vet-style behavior filter them (tcvet
// does not load test files at all).
func Run(prog *Program, analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Prog:     prog,
				Pkg:      pkg,
				Report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := prog.Fset.Position(diags[i].Pos), prog.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// All returns the four tcvet analyzers in their canonical order.
func All() []*Analyzer {
	return []*Analyzer{Refpair, Ckptsym, Detrange, Clockgrow}
}
