package lint_test

import (
	"testing"

	"treeclock/internal/lint"
)

// TestTreeIsClean runs all four analyzers over the whole module —
// the same pass CI runs via `go run ./cmd/tcvet ./...` — and requires
// zero findings. Any invariant violation introduced anywhere in the
// tree fails this test locally before it fails the CI lint lane.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module source type-check is slow in -short mode")
	}
	root, modPath, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := lint.ExpandPatterns(root, modPath, root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lint.Load(lint.LoadConfig{
		Roots: []lint.Root{{Prefix: modPath, Dir: root}},
	}, paths...)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*lint.Package
	for _, p := range paths {
		if pkg := prog.Package(p); pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	diags, err := lint.Run(prog, lint.All(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
