package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Root maps an import-path prefix to a directory tree. A prefix of
// "treeclock" with dir /repo resolves "treeclock/internal/vt" to
// /repo/internal/vt. The empty prefix matches any path whose resolved
// directory exists under dir — that is how analysistest-style corpora
// under testdata/src import their stub packages by bare name.
type Root struct {
	Prefix string
	Dir    string
}

// LoadConfig configures Load.
type LoadConfig struct {
	Roots        []Root // tried in order; first root whose directory exists wins
	IncludeTests bool   // parse in-package _test.go files too
}

// Load parses and type-checks the packages named by importPaths, plus
// everything they transitively import from the configured roots.
// Standard-library imports are type-checked from GOROOT source, so no
// network, module cache, or export data is needed.
func Load(cfg LoadConfig, importPaths ...string) (*Program, error) {
	fset := token.NewFileSet()
	prog := &Program{
		Fset: fset,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Instances:  make(map[*ast.Ident]types.Instance),
		},
		pkgs: make(map[string]*Package),
	}
	l := &loader{
		cfg:     cfg,
		prog:    prog,
		std:     importer.ForCompiler(fset, "source", nil),
		loading: make(map[string]bool),
	}
	for _, path := range importPaths {
		if _, err := l.load(path); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

type loader struct {
	cfg     LoadConfig
	prog    *Program
	std     types.Importer
	loading map[string]bool // import-cycle guard
}

// Import implements types.Importer for the type checker's callbacks.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.load(path)
}

func (l *loader) load(path string) (*types.Package, error) {
	if pkg, ok := l.prog.pkgs[path]; ok {
		return pkg.Types, nil
	}
	dir, local := l.resolve(path)
	if !local {
		return l.std.Import(path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s (package %q)", dir, path)
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.prog.Fset, files, l.prog.Info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("type errors in %q:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %q: %v", path, err)
	}
	l.prog.pkgs[path] = &Package{Path: path, Files: files, Types: tpkg, prog: l.prog}
	return tpkg, nil
}

// resolve maps an import path to a directory via the roots. Returns
// local=false for paths no root covers (the standard library).
func (l *loader) resolve(path string) (dir string, local bool) {
	for _, r := range l.cfg.Roots {
		var rel string
		switch {
		case r.Prefix == "":
			rel = path
		case path == r.Prefix:
			rel = "."
		case strings.HasPrefix(path, r.Prefix+"/"):
			rel = path[len(r.Prefix)+1:]
		default:
			continue
		}
		d := filepath.Join(r.Dir, filepath.FromSlash(rel))
		if hasGoFiles(d) {
			return d, true
		}
	}
	return "", false
}

func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.cfg.IncludeTests {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.prog.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pkgName == "" && !strings.HasSuffix(name, "_test.go") {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}
	// Drop external-test-package files (package foo_test): they cannot
	// be type-checked together with the package under test.
	if pkgName != "" {
		kept := files[:0]
		for _, f := range files {
			if f.Name.Name == pkgName {
				kept = append(kept, f)
			}
		}
		files = kept
	}
	return files, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasPrefix(name, "_") && !strings.HasPrefix(name, ".") &&
			!strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// FindModuleRoot walks up from dir to the enclosing go.mod and returns
// the module directory and module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ExpandPatterns turns command-line package patterns ("./...",
// "./internal/vt", "treeclock/internal/vt") into import paths under
// the module. Relative patterns resolve against dir — the caller's
// working directory, which must lie inside root — matching go vet's
// behavior when invoked from a subdirectory. Module-qualified and
// absolute patterns resolve independently of dir. testdata, vendor,
// and hidden directories are skipped.
func ExpandPatterns(root, modPath, dir string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, orig := range patterns {
		pat := strings.TrimSuffix(filepath.ToSlash(orig), "/")
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		var pdir string
		switch rest, ok := strings.CutPrefix(pat, modPath); {
		case ok && (rest == "" || strings.HasPrefix(rest, "/")):
			pdir = filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(rest, "/")))
		case filepath.IsAbs(pat):
			pdir = filepath.Clean(pat)
		default:
			pdir = filepath.Join(dir, filepath.FromSlash(pat))
		}
		if r, err := filepath.Rel(root, pdir); err != nil || r == ".." || strings.HasPrefix(r, ".."+string(filepath.Separator)) {
			return nil, fmt.Errorf("pattern %q resolves outside the module root %s", orig, root)
		}
		toImport := func(d string) string {
			r, _ := filepath.Rel(root, d)
			r = filepath.ToSlash(r)
			if r == "." {
				return modPath
			}
			return modPath + "/" + r
		}
		if !recursive {
			if !hasGoFiles(pdir) {
				return nil, fmt.Errorf("no Go package in %s", pdir)
			}
			add(toImport(pdir))
			continue
		}
		err := filepath.WalkDir(pdir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != pdir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(toImport(p))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
