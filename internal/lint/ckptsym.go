package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Ckptsym enforces checkpoint save/load symmetry: for every pair of
// functions matched by naming convention (Save/Load, save/load,
// Snapshot/Restore on the same receiver), the sequence of wire-level
// reads must be compatible with the sequence of writes — same wire
// kinds, in the same order, with counts before elements. This is the
// static version of PR 7's byte-identical round-trip harness, and it
// rejects the exact bug class that harness caught dynamically: a save
// side writing a zigzag svarint (Enc.Int) while the load side reads a
// plain uvarint (Dec.Len), which silently doubles every nonnegative
// value on resume.
//
// Each side is abstracted into a sequence of wire tokens:
//
//	u8 u32 u64 uvar svar bool bytes string header begin:<name> end
//
// where Enc.Int/Int32/Svarint and Dec.Int/Int32/Svarint are one
// equivalence class (zigzag), and Dec.Count/Len/Cap join Uvarint
// (plain varint). Control flow folds into the sequence: loops become
// repetition groups matched body-against-body, if/else becomes an
// alternation, and an if whose body terminates (return/continue)
// becomes an alternation with the rest of the block. Helper calls
// that carry the encoder or decoder are inlined when their bodies are
// in the loaded program, and otherwise paired opaquely by normalized
// name (SaveWeak on the save side must face LoadWeak on the load
// side). Functions using constructs the abstraction cannot model
// (deferred or goroutine-spawned encoding, encoder-capturing
// closures) are skipped entirely — the analyzer fails open, never
// with a false positive.
var Ckptsym = &Analyzer{
	Name: "ckptsym",
	Doc: "flag save/load function pairs whose Enc/Dec wire-token sequences disagree\n" +
		"(wrong varint flavor, missing field, misordered count)",
	Run: runCkptsym,
}

func runCkptsym(pass *Pass) error {
	// Index this package's declarations by (receiver, name).
	index := make(map[string]*ast.FuncDecl)
	var saves []*ast.FuncDecl
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			index[recvBaseName(fd)+"\x00"+fd.Name.Name] = fd
			if loadNameFor(fd.Name.Name) != "" && hasParamOf(pass, fd, "Enc") {
				saves = append(saves, fd)
			}
		}
	}
	for _, save := range saves {
		load := index[recvBaseName(save)+"\x00"+loadNameFor(save.Name.Name)]
		if load == nil || !hasParamOf(pass, load, "Dec") {
			continue
		}
		checkPair(pass, save, load)
	}
	return nil
}

// loadNameFor maps a save-side function name to its load-side
// counterpart, or "" if the name is not save-shaped.
func loadNameFor(name string) string {
	for _, p := range [...][2]string{
		{"Save", "Load"}, {"save", "load"},
		{"Snapshot", "Restore"}, {"snapshot", "restore"},
	} {
		if rest, ok := strings.CutPrefix(name, p[0]); ok {
			return p[1] + rest
		}
	}
	return ""
}

// canonPairName normalizes a load-side name to its save-side form so
// opaque calls pair up across the two functions.
func canonPairName(name string) string {
	for _, p := range [...][2]string{
		{"Load", "Save"}, {"load", "save"},
		{"Restore", "Snapshot"}, {"restore", "snapshot"},
	} {
		if rest, ok := strings.CutPrefix(name, p[0]); ok {
			return p[1] + rest
		}
	}
	return name
}

func recvBaseName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

func hasParamOf(pass *Pass, fd *ast.FuncDecl, typeName string) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, f := range fd.Type.Params.List {
		if tv, ok := pass.Pkg.Info().Types[f.Type]; ok && namedIn(tv.Type, "ckpt", typeName) {
			return true
		}
	}
	return false
}

// ---- wire-token shapes ----

type ckShape interface{ ckPos() token.Pos }

type ckPrim struct {
	kind string
	pos  token.Pos
}

type ckLoop struct {
	body []ckShape
	pos  token.Pos
}

type ckAlt struct {
	a, b []ckShape
	pos  token.Pos
}

type ckOpaque struct {
	key string
	pos token.Pos
}

func (p *ckPrim) ckPos() token.Pos   { return p.pos }
func (l *ckLoop) ckPos() token.Pos   { return l.pos }
func (a *ckAlt) ckPos() token.Pos    { return a.pos }
func (o *ckOpaque) ckPos() token.Pos { return o.pos }

var ckKinds = map[string]string{
	"U8": "u8", "U32": "u32", "U64": "u64",
	"Uvarint": "uvar", "Count": "uvar", "Len": "uvar", "Cap": "uvar",
	"Svarint": "svar", "Int": "svar", "Int32": "svar",
	"Bool": "bool", "Bytes": "bytes", "String": "string",
	"Header": "header", "End": "end",
}

// ckKindHuman names each wire kind for diagnostics.
var ckKindHuman = map[string]string{
	"u8": "a fixed byte (U8)", "u32": "a fixed uint32 (U32)", "u64": "a fixed uint64 (U64)",
	"uvar": "a plain uvarint (Uvarint/Count/Len/Cap)",
	"svar": "a zigzag svarint (Svarint/Int/Int32)",
	"bool": "a bool byte", "bytes": "a length-prefixed byte slice",
	"string": "a length-prefixed string", "header": "the file header",
	"end": "a section end",
}

func ckKindName(k string) string {
	if h, ok := ckKindHuman[k]; ok {
		return h
	}
	if name, ok := strings.CutPrefix(k, "begin:"); ok {
		return "section begin " + name
	}
	return k
}

// ---- extraction ----

type ckExtract struct {
	pass  *Pass
	stack map[*ast.FuncDecl]bool // inlining recursion guard
	depth int
	bad   bool // function uses constructs the abstraction cannot model
}

func isEncDec(t types.Type) bool {
	return namedIn(t, "ckpt", "Enc") || namedIn(t, "ckpt", "Dec")
}

func (x *ckExtract) stmts(list []ast.Stmt) []ckShape {
	var out []ckShape
	for i, s := range list {
		if x.bad {
			return nil
		}
		// An if with no else whose body cannot fall through splits the
		// block: either the then-tokens happen, or the rest of the
		// block does. This models early-error returns and the
		// `if cond { e.Bool(false); continue }` encode idiom.
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Else == nil && terminates(ifs.Body.List) {
			if ifs.Init != nil {
				out = append(out, x.stmt(ifs.Init)...)
			}
			out = append(out, x.expr(ifs.Cond)...)
			thenT := x.stmts(ifs.Body.List)
			restT := x.stmts(list[i+1:])
			return append(out, mkAlt(thenT, restT, ifs.Pos())...)
		}
		out = append(out, x.stmt(s)...)
	}
	return out
}

// terminates reports whether a statement list always exits the
// enclosing block (return, continue, break, goto, or panic).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

func (x *ckExtract) stmt(s ast.Stmt) []ckShape {
	if x.bad {
		return nil
	}
	switch st := s.(type) {
	case *ast.ExprStmt:
		return x.expr(st.X)
	case *ast.AssignStmt:
		var out []ckShape
		for _, r := range st.Rhs {
			out = append(out, x.expr(r)...)
		}
		for _, l := range st.Lhs {
			out = append(out, x.expr(l)...)
		}
		return out
	case *ast.DeclStmt:
		var out []ckShape
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						out = append(out, x.expr(v)...)
					}
				}
			}
		}
		return out
	case *ast.BlockStmt:
		return x.stmts(st.List)
	case *ast.IfStmt:
		var out []ckShape
		if st.Init != nil {
			out = append(out, x.stmt(st.Init)...)
		}
		out = append(out, x.expr(st.Cond)...)
		thenT := x.stmts(st.Body.List)
		var elseT []ckShape
		if st.Else != nil {
			elseT = x.stmt(st.Else)
		}
		return append(out, mkAlt(thenT, elseT, st.Pos())...)
	case *ast.ForStmt:
		var out []ckShape
		if st.Init != nil {
			out = append(out, x.stmt(st.Init)...)
		}
		var body []ckShape
		body = append(body, x.expr(st.Cond)...)
		body = append(body, x.stmts(st.Body.List)...)
		if st.Post != nil {
			body = append(body, x.stmt(st.Post)...)
		}
		return append(out, mkLoop(body, st.Pos())...)
	case *ast.RangeStmt:
		out := x.expr(st.X)
		return append(out, mkLoop(x.stmts(st.Body.List), st.Pos())...)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var out []ckShape
		var clauses []ast.Stmt
		if sw, ok := st.(*ast.SwitchStmt); ok {
			if sw.Init != nil {
				out = append(out, x.stmt(sw.Init)...)
			}
			out = append(out, x.expr(sw.Tag)...)
			clauses = sw.Body.List
		} else {
			ts := st.(*ast.TypeSwitchStmt)
			if ts.Init != nil {
				out = append(out, x.stmt(ts.Init)...)
			}
			clauses = ts.Body.List
		}
		// Fold the cases into nested alternations; without a default,
		// the empty path is possible too.
		alt := []ckShape(nil)
		hasDefault := false
		for i := len(clauses) - 1; i >= 0; i-- {
			cc := clauses[i].(*ast.CaseClause)
			var arm []ckShape
			for _, v := range cc.List {
				arm = append(arm, x.expr(v)...)
			}
			arm = append(arm, x.stmts(cc.Body)...)
			if cc.List == nil {
				hasDefault = true
			}
			alt = mkAlt(arm, alt, cc.Pos())
		}
		if !hasDefault {
			alt = mkAlt(alt, nil, st.Pos())
		}
		return append(out, alt...)
	case *ast.ReturnStmt:
		var out []ckShape
		for _, r := range st.Results {
			out = append(out, x.expr(r)...)
		}
		return out
	case *ast.IncDecStmt:
		return x.expr(st.X)
	case *ast.LabeledStmt:
		return x.stmt(st.Stmt)
	case *ast.SendStmt:
		return append(x.expr(st.Chan), x.expr(st.Value)...)
	case *ast.DeferStmt, *ast.GoStmt:
		var call *ast.CallExpr
		if d, ok := st.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = st.(*ast.GoStmt).Call
		}
		if x.touchesEncDec(call) {
			x.bad = true
		}
		return nil
	default:
		return nil
	}
}

func (x *ckExtract) expr(e ast.Expr) []ckShape {
	if e == nil || x.bad {
		return nil
	}
	switch ex := e.(type) {
	case *ast.CallExpr:
		return x.call(ex)
	case *ast.ParenExpr:
		return x.expr(ex.X)
	case *ast.UnaryExpr:
		return x.expr(ex.X)
	case *ast.StarExpr:
		return x.expr(ex.X)
	case *ast.BinaryExpr:
		return append(x.expr(ex.X), x.expr(ex.Y)...)
	case *ast.IndexExpr:
		return append(x.expr(ex.X), x.expr(ex.Index)...)
	case *ast.IndexListExpr:
		return x.expr(ex.X)
	case *ast.SliceExpr:
		out := x.expr(ex.X)
		out = append(out, x.expr(ex.Low)...)
		out = append(out, x.expr(ex.High)...)
		return append(out, x.expr(ex.Max)...)
	case *ast.SelectorExpr:
		return x.expr(ex.X)
	case *ast.CompositeLit:
		var out []ckShape
		for _, el := range ex.Elts {
			out = append(out, x.expr(el)...)
		}
		return out
	case *ast.KeyValueExpr:
		return append(x.expr(ex.Key), x.expr(ex.Value)...)
	case *ast.TypeAssertExpr:
		return x.expr(ex.X)
	case *ast.FuncLit:
		if x.touchesEncDec(ex.Body) {
			x.bad = true
		}
		return nil
	default:
		return nil
	}
}

// touchesEncDec reports whether the subtree mentions any value of
// type *ckpt.Enc or *ckpt.Dec.
func (x *ckExtract) touchesEncDec(n ast.Node) bool {
	info := x.pass.Pkg.Info()
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && isEncDec(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

func (x *ckExtract) call(call *ast.CallExpr) []ckShape {
	info := x.pass.Pkg.Info()
	var out []ckShape
	recv := recvExpr(call)
	if recv != nil {
		out = append(out, x.expr(recv)...)
	}
	for _, a := range call.Args {
		out = append(out, x.expr(a)...)
	}

	// Direct Enc/Dec method call: emit a wire token.
	if recv != nil && isEncDec(info.Types[recv].Type) {
		fn := calleeOf(info, call)
		if fn == nil {
			return out
		}
		switch name := fn.Name(); name {
		case "Begin":
			k := "begin:*"
			if len(call.Args) > 0 {
				if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
					k = "begin:" + strings.Trim(lit.Value, `"`)
				}
			}
			return append(out, &ckPrim{kind: k, pos: call.Pos()})
		default:
			if k, ok := ckKinds[name]; ok {
				return append(out, &ckPrim{kind: k, pos: call.Pos()})
			}
			return out // Err, Corruptf, Remaining...: no wire traffic
		}
	}

	// A helper call carrying the encoder/decoder: inline if we have
	// its body, otherwise pair it opaquely by normalized name.
	carries := false
	for _, a := range call.Args {
		if tv, ok := info.Types[a]; ok && isEncDec(tv.Type) {
			carries = true
		}
	}
	if !carries {
		return out
	}
	fn := calleeOf(info, call)
	if fn == nil {
		x.bad = true // encoder passed through a function value
		return out
	}
	if fd := x.pass.Prog.FuncDecl(fn); fd != nil && fd.Body != nil && !x.stack[fd] && x.depth < 12 {
		x.stack[fd] = true
		x.depth++
		out = append(out, x.stmts(fd.Body.List)...)
		x.depth--
		delete(x.stack, fd)
		return out
	}
	return append(out, &ckOpaque{key: canonPairName(fn.Name()), pos: call.Pos()})
}

// mkAlt builds an alternation, dropping it when both arms carry no
// tokens and splicing when the arms are identical singletons.
func mkAlt(a, b []ckShape, pos token.Pos) []ckShape {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	return []ckShape{&ckAlt{a: a, b: b, pos: pos}}
}

func mkLoop(body []ckShape, pos token.Pos) []ckShape {
	if len(body) == 0 {
		return nil
	}
	return []ckShape{&ckLoop{body: body, pos: pos}}
}

// ---- matching ----

type ckMatcher struct {
	steps    int
	overflow bool
	// Furthest mismatch seen, for the diagnostic.
	bestDepth  int
	bestSave   ckShape
	bestLoad   ckShape
	bestSaveAt token.Pos
	bestLoadAt token.Pos
}

const ckMaxSteps = 200000

func concatShapes(a, b []ckShape) []ckShape {
	out := make([]ckShape, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func (m *ckMatcher) match(save, load []ckShape, depth int) bool {
	if m.steps++; m.steps > ckMaxSteps {
		m.overflow = true
		return true // fail open
	}
	if len(save) > 0 {
		if alt, ok := save[0].(*ckAlt); ok {
			return m.match(concatShapes(alt.a, save[1:]), load, depth) ||
				m.match(concatShapes(alt.b, save[1:]), load, depth)
		}
	}
	if len(load) > 0 {
		if alt, ok := load[0].(*ckAlt); ok {
			return m.match(save, concatShapes(alt.a, load[1:]), depth) ||
				m.match(save, concatShapes(alt.b, load[1:]), depth)
		}
	}
	if len(save) == 0 && len(load) == 0 {
		return true
	}
	if len(save) == 0 || len(load) == 0 {
		m.note(depth, first(save), first(load))
		return false
	}
	switch s := save[0].(type) {
	case *ckPrim:
		if l, ok := load[0].(*ckPrim); ok && kindsMatch(s.kind, l.kind) {
			return m.match(save[1:], load[1:], depth+1)
		}
	case *ckLoop:
		if l, ok := load[0].(*ckLoop); ok && m.match(s.body, l.body, depth+1) {
			return m.match(save[1:], load[1:], depth+1)
		}
	case *ckOpaque:
		if l, ok := load[0].(*ckOpaque); ok && s.key == l.key {
			return m.match(save[1:], load[1:], depth+1)
		}
	}
	m.note(depth, save[0], load[0])
	return false
}

func first(s []ckShape) ckShape {
	if len(s) == 0 {
		return nil
	}
	return s[0]
}

func kindsMatch(a, b string) bool {
	if a == b {
		return true
	}
	// A begin with a non-literal name matches any begin.
	aBegin, bBegin := strings.HasPrefix(a, "begin:"), strings.HasPrefix(b, "begin:")
	return aBegin && bBegin && (a == "begin:*" || b == "begin:*")
}

func (m *ckMatcher) note(depth int, s, l ckShape) {
	if depth < m.bestDepth || (m.bestSave != nil && depth == m.bestDepth) {
		return
	}
	m.bestDepth = depth
	m.bestSave, m.bestLoad = s, l
	if s != nil {
		m.bestSaveAt = s.ckPos()
	}
	if l != nil {
		m.bestLoadAt = l.ckPos()
	}
}

func describeShape(s ckShape) string {
	switch x := s.(type) {
	case nil:
		return "nothing (sequence ends)"
	case *ckPrim:
		return ckKindName(x.kind)
	case *ckLoop:
		return "a repeated group (loop)"
	case *ckOpaque:
		return "a nested " + x.key + "-class call"
	case *ckAlt:
		return "a branch"
	}
	return "?"
}

func checkPair(pass *Pass, save, load *ast.FuncDecl) {
	xs := &ckExtract{pass: pass, stack: map[*ast.FuncDecl]bool{save: true}}
	saveSeq := xs.stmts(save.Body.List)
	xl := &ckExtract{pass: pass, stack: map[*ast.FuncDecl]bool{load: true}}
	loadSeq := xl.stmts(load.Body.List)
	if xs.bad || xl.bad {
		return // fail open: the abstraction cannot model this pair
	}
	m := &ckMatcher{bestDepth: -1}
	if m.match(saveSeq, loadSeq, 0) || m.overflow {
		return
	}
	fset := pass.Pkg.Fset()
	name := save.Name.Name
	if r := recvBaseName(save); r != "" {
		name = r + "." + name
	}
	loadName := load.Name.Name
	saveDesc, loadDesc := describeShape(m.bestSave), describeShape(m.bestLoad)
	var at string
	if m.bestSaveAt.IsValid() && m.bestLoadAt.IsValid() {
		at = " (save side line " + strconv.Itoa(fset.Position(m.bestSaveAt).Line) +
			", load side line " + strconv.Itoa(fset.Position(m.bestLoadAt).Line) + ")"
	}
	pos := save.Pos()
	if m.bestSaveAt.IsValid() {
		pos = m.bestSaveAt
	}
	pass.Reportf(pos,
		"checkpoint symmetry broken in %s/%s: save writes %s where load reads %s%s; a resumed run would decode garbage",
		name, loadName, saveDesc, loadDesc, at)
}
