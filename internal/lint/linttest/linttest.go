// Package linttest runs lint analyzers over golden corpora under
// testdata/src, in the style of golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are written as comments in the corpus source:
//
//	s := store.Snapshot(1) // want `not Dropped`
//
// Each `want` comment holds one or more Go-quoted regular expressions;
// every diagnostic the analyzer reports must match a want on the same
// file and line, and every want must be matched by some diagnostic.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"treeclock/internal/lint"
)

// Run loads the given corpus packages rooted at testdataDir/src,
// applies the analyzer to them (not to their imports), and checks the
// diagnostics against the `// want` comments.
func Run(t *testing.T, testdataDir string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	prog, err := lint.Load(lint.LoadConfig{
		Roots: []lint.Root{{Prefix: "", Dir: testdataDir + "/src"}},
	}, pkgPaths...)
	if err != nil {
		t.Fatalf("loading corpus %v: %v", pkgPaths, err)
	}
	var pkgs []*lint.Package
	for _, p := range pkgPaths {
		pkg := prog.Package(p)
		if pkg == nil {
			t.Fatalf("corpus package %q did not load", p)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := lint.Run(prog, []*lint.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type want struct {
		file string
		line int
		re   *regexp.Regexp
		raw  string
		hit  bool
	}
	var wants []*want
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					for _, raw := range parseWants(t, c.Text) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", prog.Fset.Position(c.Pos()), raw, err)
						}
						pos := prog.Fset.Position(c.Pos())
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected %s diagnostic: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no %s diagnostic matched want %q", w.file, w.line, a.Name, w.raw)
		}
	}
}

// parseWants extracts the quoted regexps from a `// want "..." `...“
// comment, or nil if the comment has no want clause.
func parseWants(t *testing.T, text string) []string {
	t.Helper()
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil
	}
	var out []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("malformed want clause %q: %v", text, err)
		}
		s, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("malformed want string %s: %v", q, err)
		}
		out = append(out, s)
		rest = strings.TrimSpace(rest[len(q):])
	}
	if len(out) == 0 {
		t.Fatalf("want clause with no patterns: %q", text)
	}
	return out
}

// Diagnose runs the analyzer over corpus packages and returns the
// formatted diagnostics, for tests that assert on counts or content
// directly rather than via want comments.
func Diagnose(t *testing.T, testdataDir string, a *lint.Analyzer, pkgPaths ...string) []string {
	t.Helper()
	prog, err := lint.Load(lint.LoadConfig{
		Roots: []lint.Root{{Prefix: "", Dir: testdataDir + "/src"}},
	}, pkgPaths...)
	if err != nil {
		t.Fatalf("loading corpus %v: %v", pkgPaths, err)
	}
	var pkgs []*lint.Package
	for _, p := range pkgPaths {
		pkgs = append(pkgs, prog.Package(p))
	}
	diags, err := lint.Run(prog, []*lint.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s: %s", prog.Fset.Position(d.Pos), d.Message))
	}
	return out
}
