package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Refpair enforces the copy-on-write snapshot refcount protocol from
// the sparse weak-clock transport (PR 6): a reference acquired from a
// SnapStore via Snapshot is owned by the acquiring function and must
// reach, on every path, exactly one of
//
//   - store.Drop(s) — explicit release;
//   - store.Assign(&slot, s) with s as *source* — ownership moves into
//     the slot, whose owner releases it later;
//   - a return of s, or s passed to / stored into anything the
//     analyzer cannot see through — a documented ownership transfer.
//
// Leaks (a path reaches return or function end with the reference
// still live) and double-drops (a path Drops a reference already
// Dropped) are both flagged. The walk is path-sensitive across
// if/else and switch, treats loop bodies as run 0-or-1 times, and
// honors `defer store.Drop(s)`. Any use the analyzer cannot classify
// (aliasing, closures, address-taking) conservatively ends tracking
// with no finding — ownership transfer is legal, so silence there is
// the correct default for a vet pass.
//
// Store and snapshot types are identified by shape: any receiver
// whose method set includes Snapshot, Assign, Drop, and SnapGet.
var Refpair = &Analyzer{
	Name: "refpair",
	Doc: "flag snapshot references acquired from a SnapStore that are not Dropped\n" +
		"(or ownership-transferred) on every path, and Drops of already-dropped refs",
	Run: runRefpair,
}

func runRefpair(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			refpairFunc(pass, fd)
		}
	}
	return nil
}

// refpairFunc finds each acquire site (s := store.Snapshot(...)) with
// a plain local on the left and runs one tracked walk per site.
func refpairFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info()
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id := identOf(as.Lhs[0])
		call, okc := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if id == nil || !okc || id.Name == "_" {
			return true
		}
		fn := calleeOf(info, call)
		recv := recvExpr(call)
		if fn == nil || fn.Name() != "Snapshot" || recv == nil {
			return true
		}
		if rt := info.Types[recv].Type; !isSnapStore(rt) {
			return true
		}
		obj := objectOf(info, id)
		if obj == nil {
			return true
		}
		t := &rpTracker{pass: pass, info: info, obj: obj, acquire: as}
		state, fellThrough := t.execList(fd.Body.List, 0)
		if !t.escaped {
			if fellThrough && state&rpLive != 0 && !t.deferDrop {
				t.reportf(as.Pos(), "snapshot %s acquired here is not Dropped before the end of %s: the store slot leaks", obj.Name(), fd.Name.Name)
			}
			for _, d := range t.pending {
				pass.Report(d)
			}
		}
		return true
	})
}

const (
	rpLive     = 1 << iota // reference held, not yet released
	rpReleased             // Dropped or ownership transferred
)

type rpTracker struct {
	pass      *Pass
	info      *types.Info
	obj       types.Object // the tracked snapshot variable
	acquire   *ast.AssignStmt
	escaped   bool // hit an unclassifiable use: suppress all findings
	deferDrop bool
	pending   []Diagnostic
}

func (t *rpTracker) reportf(pos token.Pos, format string, args ...any) {
	d := Diagnostic{Pos: pos, Analyzer: t.pass.Analyzer.Name}
	d.Message = fmt.Sprintf(format, args...)
	t.pending = append(t.pending, d)
}

// execList walks a statement list, threading the state bitmask.
// The second result is false if every path out of the list terminates
// (returns) before falling through.
func (t *rpTracker) execList(list []ast.Stmt, in int) (out int, fellThrough bool) {
	state, alive := in, true
	for _, s := range list {
		if !alive || t.escaped {
			return state, alive
		}
		state, alive = t.exec(s, state)
	}
	return state, alive
}

func (t *rpTracker) exec(s ast.Stmt, in int) (out int, fellThrough bool) {
	if s == ast.Stmt(t.acquire) {
		return rpLive, true
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		return t.execList(st.List, in)
	case *ast.IfStmt:
		if st.Init != nil {
			in, _ = t.exec(st.Init, in)
		}
		if t.useEscapes(st.Cond, in) {
			return in, true
		}
		thenOut, thenFT := t.execList(st.Body.List, in)
		elseOut, elseFT := in, true
		if st.Else != nil {
			elseOut, elseFT = t.exec(st.Else, in)
		}
		out, fellThrough = 0, thenFT || elseFT
		if thenFT {
			out |= thenOut
		}
		if elseFT {
			out |= elseOut
		}
		return out, fellThrough
	case *ast.ForStmt, *ast.RangeStmt:
		var body *ast.BlockStmt
		if f, ok := st.(*ast.ForStmt); ok {
			body = f.Body
			if f.Init != nil {
				in, _ = t.exec(f.Init, in)
			}
		} else {
			r := st.(*ast.RangeStmt)
			body = r.Body
			if t.useEscapes(r.X, in) {
				return in, true
			}
		}
		bodyOut, _ := t.execList(body.List, in)
		return in | bodyOut, true
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var clauses []ast.Stmt
		hasDefault := false
		if sw, ok := st.(*ast.SwitchStmt); ok {
			if sw.Init != nil {
				in, _ = t.exec(sw.Init, in)
			}
			clauses = sw.Body.List
		} else {
			clauses = st.(*ast.TypeSwitchStmt).Body.List
		}
		out, fellThrough = 0, false
		for _, c := range clauses {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			co, cft := t.execList(cc.Body, in)
			if cft {
				out |= co
				fellThrough = true
			}
		}
		if !hasDefault {
			out |= in
			fellThrough = true
		}
		return out, fellThrough
	case *ast.ReturnStmt:
		returnsVar := false
		for _, r := range st.Results {
			if usesObject(t.info, r, t.obj) {
				returnsVar = true
			}
		}
		if returnsVar {
			return rpReleased, false // ownership transfers to the caller
		}
		if in&rpLive != 0 && !t.deferDrop {
			t.reportf(st.Pos(), "return with snapshot %s still live: Drop it (or transfer ownership) before returning", t.obj.Name())
		}
		return in, false
	case *ast.DeferStmt:
		switch t.classifyCall(st.Call) {
		case rpDrop:
			t.deferDrop = true
			return in, true
		case rpUnrelated, rpRead:
			return in, true
		default:
			t.escaped = true
			return in, true
		}
	case *ast.BranchStmt: // break/continue/goto: approximate as fallthrough
		return in, true
	default:
		return t.execGeneric(s, in)
	}
}

// execGeneric handles straight-line statements: classify every call
// that touches the tracked variable, and escape on any touch the
// classifier does not understand.
func (t *rpTracker) execGeneric(s ast.Stmt, in int) (int, bool) {
	if !usesObject(t.info, s, t.obj) {
		return in, true
	}
	// Reassignment of the variable itself while live loses the ref.
	if as, ok := s.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id := identOf(lhs); id != nil && objectOf(t.info, id) == t.obj {
				rhsAcquires := false
				for _, r := range as.Rhs {
					if c, ok := ast.Unparen(r).(*ast.CallExpr); ok {
						if fn := calleeOf(t.info, c); fn != nil && fn.Name() == "Snapshot" {
							if rt := t.info.Types[recvExpr(c)].Type; recvExpr(c) != nil && isSnapStore(rt) {
								rhsAcquires = true
							}
						}
					}
				}
				if in&rpLive != 0 {
					t.reportf(as.Pos(), "snapshot %s reassigned while still live: the previous reference is never Dropped", t.obj.Name())
				}
				if rhsAcquires {
					return rpLive, true
				}
				t.escaped = true // now aliased to something we don't model
				return in, true
			}
		}
	}
	state := in
	covered := make(map[*ast.CallExpr]bool)
	var calls []*ast.CallExpr
	ast.Inspect(s, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && usesObject(t.info, c, t.obj) {
			calls = append(calls, c)
			return false // classify outermost var-using call only
		}
		return true
	})
	for _, c := range calls {
		switch t.classifyCall(c) {
		case rpDrop:
			if state&rpLive == 0 && state&rpReleased != 0 {
				t.reportf(c.Pos(), "Drop of snapshot %s which was already Dropped: double release corrupts the store refcount", t.obj.Name())
			} else if state&rpReleased != 0 {
				t.reportf(c.Pos(), "Drop of snapshot %s which may already be Dropped on some path", t.obj.Name())
			}
			state = rpReleased
			covered[c] = true
		case rpTransferSrc:
			state = rpReleased
			covered[c] = true
		case rpReacquire:
			state = rpLive
			covered[c] = true
		case rpRead:
			covered[c] = true
		case rpUnrelated:
			covered[c] = true
		default:
			t.escaped = true
			return in, true
		}
	}
	// Any use of the variable outside a classified call is an alias or
	// address-take we don't model.
	ast.Inspect(s, func(n ast.Node) bool {
		for _, c := range calls {
			if covered[c] && n != nil && n.Pos() >= c.Pos() && n.End() <= c.End() {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok && objectOf(t.info, id) == t.obj {
			if as, isAssign := s.(*ast.AssignStmt); !isAssign || !containsNode(as.Lhs, id) {
				t.escaped = true
			}
		}
		return !t.escaped
	})
	return state, true
}

// useEscapes marks the tracker escaped if expr uses the variable in a
// position we cannot classify (conditions, range operands).
func (t *rpTracker) useEscapes(expr ast.Expr, in int) bool {
	if expr == nil || !usesObject(t.info, expr, t.obj) {
		return false
	}
	// Comparisons and reads in conditions are harmless; calls are not.
	esc := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && usesObject(t.info, c, t.obj) {
			switch t.classifyCall(c) {
			case rpRead, rpUnrelated:
			default:
				esc = true
			}
			return false
		}
		return !esc
	})
	if esc {
		t.escaped = true
	}
	return esc
}

type rpCallKind int

const (
	rpUnrelated   rpCallKind = iota // does not involve the variable
	rpDrop                          // store.Drop(s)
	rpTransferSrc                   // store.Assign(&slot, s): ownership moves
	rpReacquire                     // store.Assign(&s, src): slot refreshed
	rpRead                          // SnapGet / heap accounting: no refcount effect
	rpEscape                        // anything else touching the variable
)

func (t *rpTracker) classifyCall(call *ast.CallExpr) rpCallKind {
	if !usesObject(t.info, call, t.obj) {
		return rpUnrelated
	}
	fn := calleeOf(t.info, call)
	recv := recvExpr(call)
	if fn != nil && recv != nil && isSnapStore(t.info.Types[recv].Type) {
		argIsVar := func(a ast.Expr) bool {
			id := identOf(a)
			return id != nil && objectOf(t.info, id) == t.obj
		}
		switch fn.Name() {
		case "Drop":
			for _, a := range call.Args {
				if argIsVar(a) {
					return rpDrop
				}
			}
		case "Assign":
			if len(call.Args) >= 2 {
				if u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && u.Op == token.AND && argIsVar(u.X) {
					return rpReacquire
				}
				if argIsVar(call.Args[len(call.Args)-1]) {
					return rpTransferSrc
				}
			}
		case "SnapGet", "SnapHeap", "Heap", "LiveHeap", "FreeCount":
			return rpRead
		}
	}
	return rpEscape
}

// containsNode reports whether any expression in list is (or
// contains) the given node.
func containsNode(list []ast.Expr, n ast.Node) bool {
	for _, e := range list {
		if n.Pos() >= e.Pos() && n.End() <= e.End() {
			return true
		}
	}
	return false
}
