package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// The analyzers identify the runtime's contract types by *shape*
// (method sets) and by package name, never by full import path. That
// keeps the testdata corpora self-contained: a corpus package can
// declare its own four-method store stub and be analyzed exactly like
// internal/vt's real one.

// hasMethods reports whether t's (pointer) method set contains every
// name. Type parameters are checked against their constraint.
func hasMethods(t types.Type, names ...string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if tp, ok := t.(*types.TypeParam); ok {
		t = tp.Constraint()
	}
	if _, ok := t.Underlying().(*types.Interface); !ok {
		t = types.NewPointer(t)
	}
	ms := types.NewMethodSet(t)
	have := make(map[string]bool, ms.Len())
	for i := 0; i < ms.Len(); i++ {
		have[ms.At(i).Obj().Name()] = true
	}
	for _, n := range names {
		if !have[n] {
			return false
		}
	}
	return true
}

// isSnapStore reports whether t looks like a vt.SnapStore: the
// copy-on-write snapshot arena with explicit refcount management.
func isSnapStore(t types.Type) bool {
	return hasMethods(t, "Snapshot", "Assign", "Drop", "SnapGet")
}

// isClock reports whether t looks like a vt.Clock implementation.
func isClock(t types.Type) bool {
	return hasMethods(t, "Inc", "Grow", "Join", "Get")
}

// namedIn reports whether t (pointer-stripped) is a named type with
// the given type name declared in a package with the given name.
func namedIn(t types.Type, pkgName, typeName string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// calleeOf resolves a call expression to the called *types.Func, or
// nil for calls through function values, builtins, and conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr: // f[T1, T2](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// recvExpr returns the receiver expression of a method-style call
// (x in x.M(...)), or nil for plain function calls.
func recvExpr(call *ast.CallExpr) ast.Expr {
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	if ixl, ok := fun.(*ast.IndexListExpr); ok {
		fun = ast.Unparen(ixl.X)
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// identOf unwraps parens and returns e as a plain identifier, or nil.
func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// rootIdent returns the leftmost identifier of a selector/index chain
// (r in r.a.b[i].c), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprString renders an expression for use in diagnostics and for
// syntactic containment checks.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}

// inTestFile reports whether pos lies in a _test.go file.
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// usesIdentNamed reports whether the subtree mentions an identifier
// that resolves to the same object as want.
func usesObject(info *types.Info, n ast.Node, want types.Object) bool {
	if want == nil || n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == want {
			found = true
		}
		return !found
	})
	return found
}

// objectOf returns the object an identifier denotes (use or def).
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
