// Package detrange is the golden corpus for the detrange analyzer's
// map-iteration rules (the wall-clock and math/rand rules are
// exercised by the sibling "engine" corpus, since they only apply in
// the deterministic core packages).
package detrange

import (
	"sort"

	"analysis"
	"ckpt"
)

// True positive: encoding directly inside a map range writes fields
// in random order.
func encodeMap(e *ckpt.Enc, m map[uint64]uint32) {
	for k, v := range m {
		e.Uvarint(k) // want `map iteration order is random`
		e.U32(v)     // want `map iteration order is random`
	}
}

// True positive: report emission inside a map range makes sample
// selection nondeterministic.
func reportMap(acc *analysis.Accumulator, m map[uint64]uint64) {
	for x, prior := range m {
		acc.Report(1, x, prior, 0) // want `depend on map iteration order`
	}
}

// True positive: accumulating into an outer slice with no later sort.
func collectNoSort(m map[uint64]uint32) []uint64 {
	var keys []uint64
	for k := range m {
		keys = append(keys, k) // want `without a later sort`
	}
	return keys
}

// Near-miss: the blessed collect-sort-emit pattern keeps every sink
// outside the map-ordered region.
func encodeSorted(e *ckpt.Enc, m map[uint64]uint32) {
	var keys []uint64
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.Uvarint(k)
		e.U32(m[k])
	}
}

// Near-miss: scratch declared inside the loop body is per-iteration
// state, not order-dependent accumulation.
func perKeyScratch(m map[uint64][]uint32) int {
	total := 0
	for _, vs := range m {
		tmp := make([]uint32, 0, len(vs))
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}
