// Package ckpt is a corpus stub of the real internal/ckpt API: the
// analyzers identify Enc/Dec by type name and package name, so this
// stub is matched exactly like the real encoder.
package ckpt

type Enc struct{ b []byte }

func (e *Enc) Header()           {}
func (e *Enc) Begin(name string) {}
func (e *Enc) End()              {}
func (e *Enc) U8(v uint8)        {}
func (e *Enc) U32(v uint32)      {}
func (e *Enc) U64(v uint64)      {}
func (e *Enc) Uvarint(v uint64)  {}
func (e *Enc) Svarint(v int64)   {}
func (e *Enc) Int(v int)         {}
func (e *Enc) Int32(v int32)     {}
func (e *Enc) Bool(v bool)       {}
func (e *Enc) Bytes(b []byte)    {}
func (e *Enc) String(s string)   {}
func (e *Enc) Err() error        { return nil }

type Dec struct{ b []byte }

func (d *Dec) Header()                        {}
func (d *Dec) Begin(name string)              {}
func (d *Dec) End()                           {}
func (d *Dec) U8() uint8                      { return 0 }
func (d *Dec) U32() uint32                    { return 0 }
func (d *Dec) U64() uint64                    { return 0 }
func (d *Dec) Uvarint() uint64                { return 0 }
func (d *Dec) Svarint() int64                 { return 0 }
func (d *Dec) Int() int                       { return 0 }
func (d *Dec) Int32() int32                   { return 0 }
func (d *Dec) Bool() bool                     { return false }
func (d *Dec) Bytes() []byte                  { return nil }
func (d *Dec) String() string                 { return "" }
func (d *Dec) Len(elemSize int) int           { return 0 }
func (d *Dec) Cap(n int) int                  { return 0 }
func (d *Dec) Count() int                     { return 0 }
func (d *Dec) Err() error                     { return nil }
func (d *Dec) Corruptf(f string, args ...any) {}
