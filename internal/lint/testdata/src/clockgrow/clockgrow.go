// Package clockgrow is the golden corpus for the clockgrow analyzer:
// a Clock-shaped stub plus Inc patterns with and without a dominating
// Grow/Init or capacity guard.
package clockgrow

type TID int32

type Clock struct {
	v []uint32
}

func New(n int) *Clock { return &Clock{v: make([]uint32, n)} }

func (c *Clock) Init(t TID) {}

func (c *Clock) Get(t TID) uint32 {
	if int(t) < len(c.v) {
		return c.v[t]
	}
	return 0
}

func (c *Clock) Inc(t TID, d uint32) { c.v[t] += d }

func (c *Clock) Grow(n int) {
	if n > len(c.v) {
		nv := make([]uint32, n)
		copy(nv, c.v)
		c.v = nv
	}
}

func (c *Clock) Join(o *Clock) {}

// True positive: Inc on a fresh one-slot clock with an arbitrary tid.
func fresh(t TID) *Clock {
	c := New(1)
	c.Inc(t, 1) // want `without a dominating Grow/Init or capacity guard`
	return c
}

// True positive: constant index beyond the constant capacity.
func constOver() *Clock {
	c := New(2)
	c.Inc(4, 1) // want `without a dominating Grow/Init`
	return c
}

// Near-miss: capacity derived from the same index expression.
func sized(t TID) *Clock {
	c := New(int(t) + 1)
	c.Inc(t, 1)
	return c
}

// Near-miss: explicit Grow dominates the Inc.
func grown(t TID) *Clock {
	c := New(1)
	c.Grow(int(t) + 1)
	c.Inc(t, 1)
	return c
}

// Near-miss: Inc under the capacity-guard idiom.
func guardedInc(t TID) uint32 {
	c := New(4)
	if int(t) < len(c.v) {
		c.Inc(t, 1)
	}
	return c.Get(t)
}

// Near-miss: constant index within the constant capacity.
func constUnder() *Clock {
	c := New(2)
	c.Inc(1, 1)
	return c
}

// Near-miss: a clock owned elsewhere (parameter) was Init'ed at
// registration time; flagging it would be noise.
func owned(c *Clock, t TID) {
	c.Inc(t, 1)
}
