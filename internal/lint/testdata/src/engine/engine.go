// Package engine is the corpus for detrange's deterministic-core
// rules: the directory name puts it in the restricted package set
// (engine, parallel, wcp, ckpt), exactly like internal/engine.
package engine

import (
	"math/rand" // want `import of math/rand is forbidden`
	"time"
)

// True positive: wall-clock in the deterministic core.
func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now makes resumed and live runs diverge`
}

func jitter() int { return rand.Intn(3) }

// Near-miss: duration arithmetic is deterministic; only Now is not.
func double(d time.Duration) time.Duration { return d * 2 }
