// Package analysis is a corpus stub of the real internal/analysis
// Accumulator: detrange identifies the Report sink by receiver type
// name and package name.
package analysis

type Accumulator struct{ n int }

func (a *Accumulator) Report(kind int, x, prior, access uint64) { a.n++ }
