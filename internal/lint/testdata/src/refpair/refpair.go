// Package refpair is the golden corpus for the refpair analyzer: a
// self-contained SnapStore-shaped stub plus the acquire/release
// patterns the analyzer must flag and the legal ones it must not.
package refpair

type Snap int

type Store struct{ live int }

func (s *Store) Snapshot(t int) Snap           { s.live++; return Snap(t) }
func (s *Store) Assign(dst *Snap, src Snap)    {}
func (s *Store) Drop(sn Snap)                  { s.live-- }
func (s *Store) SnapGet(sn Snap, t int) uint32 { return 0 }

type failErr struct{}

func (failErr) Error() string { return "fail" }

// True positive: the snapshot leaks on the early-error path.
func leakOnErrorPath(st *Store, fail bool) error {
	s := st.Snapshot(1)
	if fail {
		return failErr{} // want `still live`
	}
	st.Drop(s)
	return nil
}

// True positive: never dropped at all (leak reported at the acquire).
func leakAtEnd(st *Store) {
	s := st.Snapshot(2) // want `not Dropped`
	_ = st.SnapGet(s, 0)
}

// True positive: released twice on the same path.
func doubleDrop(st *Store) {
	s := st.Snapshot(3)
	st.Drop(s)
	st.Drop(s) // want `already Dropped`
}

// True positive: the second Drop double-releases when c is true.
func maybeDoubleDrop(st *Store, c bool) {
	s := st.Snapshot(4)
	if c {
		st.Drop(s)
	}
	st.Drop(s) // want `may already be Dropped`
}

// Near-miss: dropped on every path, including the early return.
func dropBothPaths(st *Store, c bool) {
	s := st.Snapshot(5)
	if c {
		st.Drop(s)
		return
	}
	st.Drop(s)
}

// Near-miss: deferred release covers every exit.
func deferDrop(st *Store, c bool) uint32 {
	s := st.Snapshot(6)
	defer st.Drop(s)
	if c {
		return 0
	}
	w := st.SnapGet(s, 1)
	return w
}

// Near-miss: ownership moves into the slot; the slot's owner releases.
func transfer(st *Store, slot *Snap) {
	s := st.Snapshot(7)
	st.Assign(slot, s)
}

// Near-miss: returning the snapshot transfers ownership to the caller.
func acquireFor(st *Store) Snap {
	s := st.Snapshot(8)
	return s
}

// Near-miss: handing the reference to an unknown function is a
// documented ownership transfer; the analyzer stays silent.
func handOff(st *Store, sink func(Snap)) {
	s := st.Snapshot(9)
	sink(s)
}

// Near-miss: Assign into the tracked variable refreshes the slot; the
// final Drop releases the refreshed reference.
func reacquire(st *Store, src Snap) {
	s := st.Snapshot(10)
	st.Assign(&s, src)
	st.Drop(s)
}
