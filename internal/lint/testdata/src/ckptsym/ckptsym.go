// Package ckptsym is the golden corpus for the ckptsym analyzer.
// The first pair reproduces the historical PR 7 regression verbatim:
// a save side writing a count with Int (zigzag svarint) while the
// load side reads it with Len (plain uvarint), which silently doubles
// every nonnegative counter on resume. The dynamic round-trip harness
// caught it then; the analyzer must reject it statically now.
package ckptsym

import "ckpt"

// --- True positive: the PR 7 zigzag-vs-uvarint mismatch. ---

type Sparse struct {
	n   int
	rev uint64
	v   []uint32
}

func (c *Sparse) Save(e *ckpt.Enc) {
	e.Int(c.n) // want `save writes a zigzag svarint .* load reads a plain uvarint`
	e.U64(c.rev)
	for t := 0; t < c.n; t++ {
		e.Svarint(int64(c.v[t]))
	}
}

func (c *Sparse) Load(d *ckpt.Dec) {
	n := d.Len(1)
	c.rev = d.U64()
	c.v = make([]uint32, n)
	for i := 0; i < n; i++ {
		c.v[i] = uint32(d.Svarint())
	}
	c.n = n
}

// --- True positive: the load side forgets a field. ---

type Missing struct {
	n   int
	rev uint64
}

func (m *Missing) SaveState(e *ckpt.Enc) {
	e.Uvarint(uint64(m.n))
	e.U64(m.rev) // want `save writes a fixed uint64 .* load reads nothing`
}

func (m *Missing) LoadState(d *ckpt.Dec) {
	m.n = d.Count()
}

// --- True positive: section names out of sync. ---

type Section struct{ x uint32 }

func (s *Section) SaveSnap(e *ckpt.Enc) {
	e.Begin("snap") // want `section begin snap .* section begin snapshot`
	e.U32(s.x)
	e.End()
}

func (s *Section) LoadSnap(d *ckpt.Dec) {
	d.Begin("snapshot")
	s.x = d.U32()
	d.End()
}

// --- Near-miss: a fully symmetric pair exercising sections, the
// early-exit flag idiom, counts-before-elements, and helper inlining.

type OK struct {
	vals   []int32
	shared bool
	name   string
}

func (o *OK) Save(e *ckpt.Enc) {
	e.Begin("ok")
	if !o.shared {
		e.Bool(false)
		e.End()
		return
	}
	e.Bool(true)
	e.Uvarint(uint64(len(o.vals)))
	for _, v := range o.vals {
		e.Int32(v)
	}
	saveName(e, o.name)
	e.End()
}

func (o *OK) Load(d *ckpt.Dec) {
	d.Begin("ok")
	if !d.Bool() {
		d.End()
		return
	}
	n := d.Len(1)
	o.vals = make([]int32, 0, n)
	for i := 0; i < n; i++ {
		o.vals = append(o.vals, d.Int32())
	}
	o.name = loadName(d)
	d.End()
}

func saveName(e *ckpt.Enc, s string) { e.String(s) }
func loadName(d *ckpt.Dec) string    { return d.String() }

// --- Near-miss: opaque nested pair through an interface method; the
// analyzer pairs SaveWeak against LoadWeak by normalized name.

type inner interface {
	SaveWeak(e *ckpt.Enc)
	LoadWeak(d *ckpt.Dec)
}

type Wrap struct {
	w inner
	n int
}

func (w *Wrap) Save(e *ckpt.Enc) {
	e.Uvarint(uint64(w.n))
	w.w.SaveWeak(e)
}

func (w *Wrap) Load(d *ckpt.Dec) {
	w.n = d.Count()
	w.w.LoadWeak(d)
}
