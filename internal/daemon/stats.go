package daemon

// The daemon's live statistics: aggregate counters, per-second rate
// windows, per-engine occupancy and the session table, snapshotted as
// JSON for the stats frame and the tcrace -daemon-stats client.
//
// All mutation happens on session-handler goroutines under one mutex;
// the Session objects themselves are never touched from the stats
// path (a Session is single-goroutine by contract), so a stats
// request can never perturb an analysis in flight. Races/sec is
// bucketed at session completion — races are only known when a result
// is assembled — while events/sec accrues continuously from the feed
// loop.

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// rateWindow is a ring of per-second buckets; rate() averages the
// window's trailing full seconds.
type rateWindow struct {
	buckets [rateWindowSize]uint64
	seconds [rateWindowSize]int64
}

const (
	rateWindowSize = 16 // ring capacity in seconds
	rateSpan       = 10 // seconds averaged by rate()
)

// add credits n to the current second's bucket.
func (w *rateWindow) add(now time.Time, n uint64) {
	s := now.Unix()
	i := ((s % rateWindowSize) + rateWindowSize) % rateWindowSize
	if w.seconds[i] != s {
		w.seconds[i], w.buckets[i] = s, 0
	}
	w.buckets[i] += n
}

// rate averages the rateSpan seconds ending at now (inclusive).
func (w *rateWindow) rate(now time.Time) float64 {
	var sum uint64
	s := now.Unix()
	for d := int64(0); d < rateSpan; d++ {
		sec := s - d
		i := ((sec % rateWindowSize) + rateWindowSize) % rateWindowSize
		if w.seconds[i] == sec {
			sum += w.buckets[i]
		}
	}
	return float64(sum) / rateSpan
}

// SessionInfo is one row of the session table.
type SessionInfo struct {
	// ID is the client-chosen session name.
	ID string `json:"id"`
	// Engine is the registry engine name.
	Engine string `json:"engine"`
	// Workers is the sharded worker count (1 = sequential).
	Workers int `json:"workers"`
	// Resumed is the position the session resumed from (0 = fresh).
	Resumed uint64 `json:"resumed"`
	// Events is the absolute trace position fed so far.
	Events uint64 `json:"events"`
	// RetainedBytes is the last budget sample (0 until sampled, and
	// always 0 for engines without memory accounting).
	RetainedBytes uint64 `json:"retained_bytes"`
}

// EngineLoad is one engine's occupancy: how many live sessions run it.
type EngineLoad struct {
	Engine   string `json:"engine"`
	Sessions int    `json:"sessions"`
}

// Stats is the daemon statistics snapshot (the stats frame payload,
// JSON-encoded).
type Stats struct {
	// UptimeSec is seconds since the daemon started.
	UptimeSec int64 `json:"uptime_sec"`
	// ActiveSessions is the number of sessions currently being served.
	ActiveSessions int `json:"active_sessions"`
	// Lifetime session dispositions.
	SessionsOpened   uint64 `json:"sessions_opened"`
	SessionsFinished uint64 `json:"sessions_finished"`
	SessionsEvicted  uint64 `json:"sessions_evicted"`
	SessionsDetached uint64 `json:"sessions_detached"`
	SessionsResumed  uint64 `json:"sessions_resumed"`
	// EventsTotal counts events fed across all sessions, ever.
	EventsTotal uint64 `json:"events_total"`
	// RacesTotal counts races reported by finished sessions.
	RacesTotal uint64 `json:"races_total"`
	// EventsPerSec is the trailing-window feed rate across sessions.
	EventsPerSec float64 `json:"events_per_sec"`
	// RacesPerSec is the trailing-window race-completion rate (races
	// are bucketed when their session finishes).
	RacesPerSec float64 `json:"races_per_sec"`
	// RetainedBytes sums the live sessions' last budget samples.
	RetainedBytes uint64 `json:"retained_bytes"`
	// Engines is the per-engine occupancy of live sessions, sorted by
	// engine name.
	Engines []EngineLoad `json:"engines"`
	// Sessions is the live session table, sorted by id.
	Sessions []SessionInfo `json:"sessions"`
}

// statistics is the mutable registry behind Stats.
type statistics struct {
	mu       sync.Mutex
	now      func() time.Time
	start    time.Time
	opened   uint64
	finished uint64
	evicted  uint64
	detached uint64
	resumed  uint64
	events   uint64
	races    uint64
	evRate   rateWindow
	raceRate rateWindow
	sessions map[string]*SessionInfo
}

func newStatistics(now func() time.Time) *statistics {
	return &statistics{now: now, start: now(), sessions: make(map[string]*SessionInfo)}
}

// sessionOpened registers a newly admitted session.
func (st *statistics) sessionOpened(spec *openSpec, pos uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.opened++
	if spec.Resume {
		st.resumed++
	}
	workers := spec.Workers
	if workers < 1 {
		workers = 1
	}
	st.sessions[spec.ID] = &SessionInfo{
		ID:      spec.ID,
		Engine:  spec.Engine,
		Workers: workers,
		Resumed: pos,
		Events:  pos,
	}
}

// sessionFed advances a session's position and credits the feed rate.
func (st *statistics) sessionFed(id string, events, delta uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.events += delta
	st.evRate.add(st.now(), delta)
	if e := st.sessions[id]; e != nil {
		e.Events = events
	}
}

// sessionRetained records a budget sample.
func (st *statistics) sessionRetained(id string, retained uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e := st.sessions[id]; e != nil {
		e.RetainedBytes = retained
	}
}

// sessionFinished credits a completed session's races.
func (st *statistics) sessionFinished(id string, races uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.races += races
	st.raceRate.add(st.now(), races)
}

// sessionClosed removes a session from the live table under its
// disposition.
func (st *statistics) sessionClosed(id, outcome string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.sessions, id)
	switch outcome {
	case "finished":
		st.finished++
	case "evicted":
		st.evicted++
	case "detached":
		st.detached++
	}
}

// snapshot assembles a consistent Stats value.
func (st *statistics) snapshot() *Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.now()
	s := &Stats{
		UptimeSec:        int64(now.Sub(st.start).Seconds()),
		ActiveSessions:   len(st.sessions),
		SessionsOpened:   st.opened,
		SessionsFinished: st.finished,
		SessionsEvicted:  st.evicted,
		SessionsDetached: st.detached,
		SessionsResumed:  st.resumed,
		EventsTotal:      st.events,
		RacesTotal:       st.races,
		EventsPerSec:     st.evRate.rate(now),
		RacesPerSec:      st.raceRate.rate(now),
	}
	occupancy := make(map[string]int)
	for _, e := range st.sessions {
		row := *e
		s.Sessions = append(s.Sessions, row)
		s.RetainedBytes += e.RetainedBytes
		occupancy[e.Engine]++
	}
	sort.Slice(s.Sessions, func(i, j int) bool { return s.Sessions[i].ID < s.Sessions[j].ID })
	engines := make([]string, 0, len(occupancy))
	for name := range occupancy {
		engines = append(engines, name)
	}
	sort.Strings(engines)
	for _, name := range engines {
		s.Engines = append(s.Engines, EngineLoad{Engine: name, Sessions: occupancy[name]})
	}
	return s
}

// snapshotJSON is snapshot marshaled for the stats frame.
func (st *statistics) snapshotJSON() ([]byte, error) {
	return json.MarshalIndent(st.snapshot(), "", "  ")
}
