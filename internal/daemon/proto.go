// The tcraced wire protocol: length-prefixed binary frames over a
// byte stream (TCP or a Unix socket).
//
// A connection opens with a 5-byte preamble — "TCRD" plus a protocol
// version byte — written by the client and verified by the server.
// Every subsequent message is one frame:
//
//	uint32(big-endian payload length) | type byte | payload
//
// The length covers the type byte plus the payload and is bounded by
// maxFrame, so a corrupt or hostile length fails fast instead of
// forcing a giant allocation. Frame types are single bytes: uppercase
// letters flow client → server, lowercase server → client.
//
// Structured payloads — the open request, the final result, position
// notices — reuse the internal/ckpt section format (versioned,
// CRC-checked), so the daemon's wire encoding inherits the same
// defensive decoding as checkpoints and the same save*/load* symmetry
// the ckptsym analyzer checks. Event batches are the hot path and use
// a bare varint encoding instead: a count followed by (kind, thread,
// operand) triples per event.
package daemon

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"treeclock"
	"treeclock/internal/ckpt"
	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// connMagic is the connection preamble: protocol magic plus version.
const connMagic = "TCRD\x01"

// maxFrame bounds one frame's payload (type byte included). Event
// frames carry at most a few thousand events, results a bounded
// sample set and one vector per thread; 4 MiB leaves generous
// headroom while keeping a corrupt length harmless.
const maxFrame = 4 << 20

// maxEventsPerFrame bounds the event count of one events frame.
const maxEventsPerFrame = 1 << 20

// Frame types, client → server.
const (
	frameOpen   = 'O' // open (or resume) a session: openSpec payload
	frameEvents = 'E' // one batch of trace events
	frameFinish = 'F' // end of trace: assemble and return the result
	frameDetach = 'D' // checkpoint the session server-side and part
	frameStats  = 'S' // request the daemon statistics snapshot
)

// Frame types, server → client.
const (
	frameOpened   = 'o' // session accepted: position to feed from
	frameProgress = 'p' // periodic events/retained-bytes notice
	frameResult   = 'r' // final StreamResult (terminal)
	frameEvicted  = 'v' // budget eviction: resumable position (terminal)
	frameError    = 'x' // failure, UTF-8 text (terminal)
	frameStatsRep = 's' // statistics snapshot, JSON
	frameDetached = 'd' // detach acknowledged: resumable position (terminal)
)

// writeFrame emits one frame and flushes it.
func writeFrame(w *bufio.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("daemon: frame %q payload %d exceeds limit %d", typ, len(payload), maxFrame)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads one frame, enforcing the size bound.
func readFrame(r *bufio.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("daemon: frame length %d out of range (max %d)", n, maxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// openSpec is the session-open request: which engine to run, under
// which options, and whether to resume the identified session from its
// server-side checkpoint. The option subset is exactly what a
// push-mode Session accepts — decode-side options (format, pipeline,
// validation, interning) stay with the client, which feeds decoded
// events.
type openSpec struct {
	// ID names the session: the spool checkpoint key and the stats
	// table entry. Sanitized server-side (sessionIDOK).
	ID string
	// Engine is the registry name ("hb-tree", "wcp-vc", ...).
	Engine string
	// Workers selects the sharded runtime when > 1.
	Workers int
	// FlatWeak selects the flat weak-clock transport (wcp engines).
	FlatWeak bool
	// NoAnalysis disables race reporting (timing/metadata only).
	NoAnalysis bool
	// SlotReclaim enables thread-slot reclamation.
	SlotReclaim bool
	// SummaryCap caps retained rule-(a) summary vectors (wcp engines).
	SummaryCap int
	// Resume restores the session from its server-side checkpoint; the
	// opened reply carries the position to re-feed from.
	Resume bool
}

// saveOpen encodes an open request.
func saveOpen(e *ckpt.Enc, spec *openSpec) error {
	e.Header()
	e.Begin("open")
	e.String(spec.ID)
	e.String(spec.Engine)
	e.Int(spec.Workers)
	e.Bool(spec.FlatWeak)
	e.Bool(spec.NoAnalysis)
	e.Bool(spec.SlotReclaim)
	e.Int(spec.SummaryCap)
	e.Bool(spec.Resume)
	e.End()
	return e.Err()
}

// loadOpen decodes an open request.
func loadOpen(d *ckpt.Dec) (*openSpec, error) {
	d.Header()
	d.Begin("open")
	spec := &openSpec{
		ID:          d.String(),
		Engine:      d.String(),
		Workers:     d.Int(),
		FlatWeak:    d.Bool(),
		NoAnalysis:  d.Bool(),
		SlotReclaim: d.Bool(),
		SummaryCap:  d.Int(),
		Resume:      d.Bool(),
	}
	d.End()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return spec, nil
}

// saveResult encodes a final StreamResult — every field, in
// declaration order, so the daemon's reply is a faithful transcript of
// the library's answer (the differential suite compares these bytes).
func saveResult(e *ckpt.Enc, res *treeclock.StreamResult) error {
	e.Header()
	e.Begin("result")
	e.String(res.Engine)
	e.String(res.Meta.Name)
	e.Int(res.Meta.Threads)
	e.Int(res.Meta.Locks)
	e.Int(res.Meta.Vars)
	e.U64(res.Events)
	e.U64(res.Summary.Total)
	e.U64(res.Summary.WriteWrite)
	e.U64(res.Summary.WriteRead)
	e.U64(res.Summary.ReadWrite)
	e.Int(res.Summary.Vars)
	e.Uvarint(uint64(len(res.Samples)))
	for _, p := range res.Samples {
		e.U8(uint8(p.Kind))
		e.Int32(p.Var)
		e.Int32(int32(p.Prior.T))
		e.Int32(int32(p.Prior.Clk))
		e.Int32(int32(p.Access.T))
		e.Int32(int32(p.Access.Clk))
	}
	e.End()
	e.Begin("timestamps")
	e.Uvarint(uint64(len(res.Timestamps)))
	for _, v := range res.Timestamps {
		e.Uvarint(uint64(len(v)))
		for _, t := range v {
			e.Int32(int32(t))
		}
	}
	e.End()
	e.Begin("mem")
	e.Bool(res.Mem != nil)
	if res.Mem != nil {
		m := res.Mem
		e.Int(m.HistEntries)
		e.Int(m.PeakLockHist)
		e.U64(m.DroppedEntries)
		e.U64(m.RetainedBytes)
		e.Int(m.SummaryVectors)
		e.Int(m.FreeVectors)
		e.U64(m.SummaryEvictions)
		e.Int(m.ThreadSlots)
		e.Int(m.FreeSlots)
		e.U64(m.RetiredSlots)
		e.U64(m.ReusedSlots)
		e.Int(m.InternedNames)
		e.U64(m.InternEvictions)
	}
	e.End()
	return e.Err()
}

// loadResult decodes a StreamResult, reconstructing the exact shape
// the library produces (nil sample slice when empty, per-thread
// timestamp vectors, optional MemStats).
func loadResult(d *ckpt.Dec) (*treeclock.StreamResult, error) {
	d.Header()
	d.Begin("result")
	res := &treeclock.StreamResult{Engine: d.String()}
	res.Meta.Name = d.String()
	res.Meta.Threads = d.Int()
	res.Meta.Locks = d.Int()
	res.Meta.Vars = d.Int()
	res.Events = d.U64()
	res.Summary.Total = d.U64()
	res.Summary.WriteWrite = d.U64()
	res.Summary.WriteRead = d.U64()
	res.Summary.ReadWrite = d.U64()
	res.Summary.Vars = d.Int()
	if n := d.Len(6); n > 0 {
		res.Samples = make([]treeclock.Race, n)
		for i := range res.Samples {
			p := &res.Samples[i]
			p.Kind = treeclock.RaceKind(d.U8())
			p.Var = d.Int32()
			p.Prior.T = vt.TID(d.Int32())
			p.Prior.Clk = vt.Time(d.Int32())
			p.Access.T = vt.TID(d.Int32())
			p.Access.Clk = vt.Time(d.Int32())
		}
	}
	d.End()
	d.Begin("timestamps")
	res.Timestamps = make([]treeclock.Vector, d.Len(1))
	for i := range res.Timestamps {
		v := make(treeclock.Vector, d.Len(1))
		for j := range v {
			v[j] = vt.Time(d.Int32())
		}
		res.Timestamps[i] = v
	}
	d.End()
	d.Begin("mem")
	if d.Bool() {
		m := &treeclock.MemStats{}
		m.HistEntries = d.Int()
		m.PeakLockHist = d.Int()
		m.DroppedEntries = d.U64()
		m.RetainedBytes = d.U64()
		m.SummaryVectors = d.Int()
		m.FreeVectors = d.Int()
		m.SummaryEvictions = d.U64()
		m.ThreadSlots = d.Int()
		m.FreeSlots = d.Int()
		m.RetiredSlots = d.U64()
		m.ReusedSlots = d.U64()
		m.InternedNames = d.Int()
		m.InternEvictions = d.U64()
		res.Mem = m
	}
	d.End()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// savePos encodes a position notice (opened, detached, evicted — the
// reason string is empty except for evictions).
func savePos(e *ckpt.Enc, pos uint64, reason string) error {
	e.Header()
	e.Begin("pos")
	e.U64(pos)
	e.String(reason)
	e.End()
	return e.Err()
}

// loadPos decodes a position notice.
func loadPos(d *ckpt.Dec) (pos uint64, reason string, err error) {
	d.Header()
	d.Begin("pos")
	pos = d.U64()
	reason = d.String()
	d.End()
	return pos, reason, d.Err()
}

// encodeOpen marshals an open request into one frame payload.
func encodeOpen(spec *openSpec) ([]byte, error) {
	var buf bytes.Buffer
	if err := saveOpen(ckpt.NewEnc(&buf), spec); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeOpen unmarshals an open request frame payload.
func decodeOpen(payload []byte) (*openSpec, error) {
	return loadOpen(ckpt.NewDec(bytes.NewReader(payload)))
}

// encodeResult marshals a StreamResult into one frame payload.
func encodeResult(res *treeclock.StreamResult) ([]byte, error) {
	var buf bytes.Buffer
	if err := saveResult(ckpt.NewEnc(&buf), res); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeResult unmarshals a result frame payload.
func decodeResult(payload []byte) (*treeclock.StreamResult, error) {
	return loadResult(ckpt.NewDec(bytes.NewReader(payload)))
}

// encodePos marshals a position notice into one frame payload.
func encodePos(pos uint64, reason string) ([]byte, error) {
	var buf bytes.Buffer
	if err := savePos(ckpt.NewEnc(&buf), pos, reason); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodePos unmarshals a position notice frame payload.
func decodePos(payload []byte) (uint64, string, error) {
	return loadPos(ckpt.NewDec(bytes.NewReader(payload)))
}

// encodeEvents appends an event batch in the bare hot-path encoding:
// uvarint count, then per event a kind byte, uvarint thread and
// uvarint operand (operands are non-negative identifiers, stored as
// their uint32 pattern to keep Fork/Join thread ids compact).
func encodeEvents(dst []byte, events []trace.Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(events)))
	for _, ev := range events {
		dst = append(dst, byte(ev.Kind))
		dst = binary.AppendUvarint(dst, uint64(uint32(ev.T)))
		dst = binary.AppendUvarint(dst, uint64(uint32(ev.Obj)))
	}
	return dst
}

// decodeEvents decodes an events frame payload into buf (grown as
// needed), validating kinds and identifier ranges.
func decodeEvents(payload []byte, buf []trace.Event) ([]trace.Event, error) {
	n, k := binary.Uvarint(payload)
	if k <= 0 {
		return nil, fmt.Errorf("daemon: events frame: bad count")
	}
	payload = payload[k:]
	if n > maxEventsPerFrame {
		return nil, fmt.Errorf("daemon: events frame: count %d exceeds limit %d", n, maxEventsPerFrame)
	}
	if uint64(cap(buf)) < n {
		buf = make([]trace.Event, n)
	}
	buf = buf[:n]
	for i := range buf {
		if len(payload) == 0 {
			return nil, fmt.Errorf("daemon: events frame: truncated at event %d of %d", i, n)
		}
		kind := trace.Kind(payload[0])
		if kind > trace.Join {
			return nil, fmt.Errorf("daemon: events frame: bad event kind %d", kind)
		}
		payload = payload[1:]
		t, k := binary.Uvarint(payload)
		if k <= 0 || t > 1<<31-1 {
			return nil, fmt.Errorf("daemon: events frame: bad thread id at event %d", i)
		}
		payload = payload[k:]
		obj, k := binary.Uvarint(payload)
		if k <= 0 || obj > 1<<32-1 {
			return nil, fmt.Errorf("daemon: events frame: bad operand at event %d", i)
		}
		payload = payload[k:]
		buf[i] = trace.Event{T: vt.TID(t), Obj: int32(uint32(obj)), Kind: kind}
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("daemon: events frame: %d trailing bytes", len(payload))
	}
	return buf, nil
}
