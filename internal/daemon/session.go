package daemon

// The per-connection session loop: admission, open/resume, the feed
// loop with throttling, budget enforcement and progress reporting, and
// the four ways a session ends (finish, detach, eviction, disconnect).

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"treeclock"
	"treeclock/internal/trace"
)

// serveSession runs one session to completion on its connection.
func (s *Server) serveSession(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, spec *openSpec) {
	fail := func(format string, args ...any) {
		writeFrame(bw, frameError, []byte(fmt.Sprintf(format, args...)))
	}
	if !sessionIDOK(spec.ID) {
		fail("tcraced: bad session id %q (want 1-128 chars of [A-Za-z0-9._-], not starting with '.' or '-')", spec.ID)
		return
	}

	// Admission: wait for a pool slot, aborting if the daemon shuts
	// down first (a severed connection alone would strand the handler
	// in the queue).
	select {
	case s.slots <- struct{}{}:
	default:
		s.cfg.Logf("session %s: waiting for a pool slot", spec.ID)
		select {
		case s.slots <- struct{}{}:
		case <-s.quit:
			return
		}
	}
	defer func() { <-s.slots }()

	// One live session per id: concurrent sessions would race on the
	// spool checkpoint.
	s.mu.Lock()
	if _, dup := s.live[spec.ID]; dup {
		s.mu.Unlock()
		fail("tcraced: session %q is already active", spec.ID)
		return
	}
	s.live[spec.ID] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.live, spec.ID)
		s.mu.Unlock()
	}()

	spool := filepath.Join(s.cfg.SpoolDir, spec.ID+".ckpt")
	opts := []treeclock.StreamOption{
		treeclock.WithCheckpoint(s.cfg.CheckpointEvery, treeclock.FileCheckpointSink{Path: spool}),
	}
	if spec.Workers > 1 {
		opts = append(opts, treeclock.WithWorkers(spec.Workers))
	}
	if spec.FlatWeak {
		opts = append(opts, treeclock.WithFlatWeakClocks())
	}
	if spec.NoAnalysis {
		opts = append(opts, treeclock.StreamNoAnalysis())
	}
	if spec.SlotReclaim {
		opts = append(opts, treeclock.WithSlotReclaim())
	}
	if spec.SummaryCap > 0 {
		opts = append(opts, treeclock.WithSummaryCap(spec.SummaryCap))
	}
	if spec.Resume {
		data, err := os.ReadFile(spool)
		if err != nil {
			fail("tcraced: session %q has no resumable checkpoint: %v", spec.ID, err)
			return
		}
		opts = append(opts, treeclock.ResumeFrom(bytes.NewReader(data)))
	}
	sess, err := treeclock.Open(spec.Engine, opts...)
	if err != nil {
		fail("%v", err)
		return
	}
	defer sess.Close()
	pos, err := sess.Resumed()
	if err != nil {
		fail("%v", err)
		return
	}
	payload, err := encodePos(pos, "")
	if err != nil {
		fail("tcraced: %v", err)
		return
	}
	// Register before acknowledging, so a stats query issued right
	// after the client sees the opened frame finds the session.
	s.stats.sessionOpened(spec, pos)
	if writeFrame(bw, frameOpened, payload) != nil {
		s.stats.sessionClosed(spec.ID, "disconnected")
		return
	}
	s.cfg.Logf("session %s: open engine=%s workers=%d resume=%v pos=%d", spec.ID, spec.Engine, spec.Workers, spec.Resume, pos)
	outcome := s.feedLoop(br, bw, spec, sess, pos)
	s.stats.sessionClosed(spec.ID, outcome)
	s.cfg.Logf("session %s: %s at %d events", spec.ID, outcome, sess.Events())
}

// feedLoop drives one opened session until a terminal outcome; the
// returned string is the stats-table disposition ("finished",
// "detached", "evicted", "failed", "disconnected").
func (s *Server) feedLoop(br *bufio.Reader, bw *bufio.Writer, spec *openSpec, sess *treeclock.Session, pos uint64) string {
	spool := filepath.Join(s.cfg.SpoolDir, spec.ID+".ckpt")
	fail := func(format string, args ...any) string {
		writeFrame(bw, frameError, []byte(fmt.Sprintf(format, args...)))
		return "failed"
	}
	// courtesy snapshots the session to its spool so the client (or the
	// next daemon) can resume; best-effort on abnormal exits.
	courtesy := func() {
		var buf bytes.Buffer
		if sess.Snapshot(&buf) == nil {
			if wc, err := (treeclock.FileCheckpointSink{Path: spool}).Create(sess.Events()); err == nil {
				if _, err := wc.Write(buf.Bytes()); err == nil {
					wc.Close()
				} else {
					wc.Close()
				}
			}
		}
	}

	throttle := newThrottle(s.cfg.MaxEventsPerSec, s.cfg.Now, s.cfg.Sleep)
	nextProgress := nextMultiple(pos, s.cfg.ProgressEvery)
	nextMem := nextMultiple(pos, s.cfg.MemCheckEvery)
	var retained uint64
	var buf []trace.Event

	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			// The client vanished (or the daemon is closing): leave a
			// resumable frontier behind.
			courtesy()
			return "disconnected"
		}
		switch typ {
		case frameEvents:
			events, err := decodeEvents(payload, buf)
			if err != nil {
				courtesy()
				return fail("tcraced: %v", err)
			}
			buf = events[:0]
			throttle.pace(len(events))
			if err := sess.Feed(events); err != nil {
				courtesy()
				return fail("%v", err)
			}
			n := sess.Events()
			s.stats.sessionFed(spec.ID, n, uint64(len(events)))
			if n >= nextMem {
				nextMem = nextMultiple(n, s.cfg.MemCheckEvery)
				if ms, ok := sess.Mem(); ok {
					retained = ms.RetainedBytes
					s.stats.sessionRetained(spec.ID, retained)
					if s.cfg.MaxRetainedBytes > 0 && retained > s.cfg.MaxRetainedBytes {
						return s.evict(bw, spec, sess, retained)
					}
				}
			}
			if n >= nextProgress {
				nextProgress = nextMultiple(n, s.cfg.ProgressEvery)
				if writeFrame(bw, frameProgress, encodeProgress(n, retained)) != nil {
					courtesy()
					return "disconnected"
				}
			}
		case frameFinish:
			res, err := sess.Result()
			if err != nil {
				courtesy()
				return fail("%v", err)
			}
			payload, err := encodeResult(res)
			if err != nil {
				return fail("tcraced: %v", err)
			}
			if writeFrame(bw, frameResult, payload) != nil {
				return "disconnected"
			}
			// The trace is fully analyzed; the spool frontier has
			// nothing left to resume.
			os.Remove(spool)
			s.stats.sessionFinished(spec.ID, res.Summary.Total)
			return "finished"
		case frameDetach:
			var snap bytes.Buffer
			if err := sess.Snapshot(&snap); err != nil {
				return fail("%v", err)
			}
			wc, err := (treeclock.FileCheckpointSink{Path: spool}).Create(sess.Events())
			if err == nil {
				_, werr := wc.Write(snap.Bytes())
				cerr := wc.Close()
				if werr != nil {
					err = werr
				} else {
					err = cerr
				}
			}
			if err != nil {
				return fail("tcraced: spooling detach checkpoint: %v", err)
			}
			payload, err := encodePos(sess.Events(), "")
			if err != nil {
				return fail("tcraced: %v", err)
			}
			writeFrame(bw, frameDetached, payload)
			return "detached"
		default:
			courtesy()
			return fail("tcraced: unexpected frame %q in session", typ)
		}
	}
}

// evict ends an over-budget session: final checkpoint to the spool,
// an evicted frame naming the resumable position and the reason, and
// disconnection. The client resumes later (here or on another daemon
// sharing the spool) and re-feeds from the reported position.
func (s *Server) evict(bw *bufio.Writer, spec *openSpec, sess *treeclock.Session, retained uint64) string {
	spool := filepath.Join(s.cfg.SpoolDir, spec.ID+".ckpt")
	var snap bytes.Buffer
	if err := sess.Snapshot(&snap); err != nil {
		writeFrame(bw, frameError, []byte(fmt.Sprintf("tcraced: evicting session %q: %v", spec.ID, err)))
		return "failed"
	}
	wc, err := (treeclock.FileCheckpointSink{Path: spool}).Create(sess.Events())
	if err == nil {
		_, werr := wc.Write(snap.Bytes())
		cerr := wc.Close()
		if werr != nil {
			err = werr
		} else {
			err = cerr
		}
	}
	if err != nil {
		writeFrame(bw, frameError, []byte(fmt.Sprintf("tcraced: spooling eviction checkpoint: %v", err)))
		return "failed"
	}
	reason := fmt.Sprintf("retained %d bytes over budget %d", retained, s.cfg.MaxRetainedBytes)
	payload, perr := encodePos(sess.Events(), reason)
	if perr != nil {
		return "failed"
	}
	writeFrame(bw, frameEvicted, payload)
	s.cfg.Logf("session %s: evicted (%s)", spec.ID, reason)
	return "evicted"
}

// encodeProgress marshals a progress notice: absolute event position
// and last-sampled retained bytes, bare varints (hot path).
func encodeProgress(events, retained uint64) []byte {
	buf := make([]byte, 0, 20)
	buf = binary.AppendUvarint(buf, events)
	buf = binary.AppendUvarint(buf, retained)
	return buf
}

// decodeProgress unmarshals a progress notice.
func decodeProgress(payload []byte) (events, retained uint64, err error) {
	var k int
	events, k = binary.Uvarint(payload)
	if k <= 0 {
		return 0, 0, fmt.Errorf("daemon: progress frame: bad event count")
	}
	retained, k = binary.Uvarint(payload[k:])
	if k <= 0 {
		return 0, 0, fmt.Errorf("daemon: progress frame: bad retained count")
	}
	return events, retained, nil
}

// nextMultiple returns the first multiple of step strictly above pos
// (pos+1 when step is 0 never happens: callers default step).
func nextMultiple(pos, step uint64) uint64 {
	if step == 0 {
		step = 1
	}
	return (pos/step + 1) * step
}

// throttle is a token bucket over the injected clock: pace(n) spends n
// tokens, sleeping for the refill when the bucket runs dry. The bucket
// caps at one second of budget, so a quiet session can burst briefly
// but sustained feeding converges to the configured rate.
type throttle struct {
	rate   float64 // tokens (events) per second; 0 disables
	tokens float64
	last   time.Time
	now    func() time.Time
	sleep  func(time.Duration)
}

func newThrottle(rate float64, now func() time.Time, sleep func(time.Duration)) *throttle {
	t := &throttle{rate: rate, now: now, sleep: sleep}
	if rate > 0 {
		t.tokens = rate // one second of initial burst
		t.last = now()
	}
	return t
}

// pace blocks until n events fit the budget.
func (t *throttle) pace(n int) {
	if t.rate <= 0 || n <= 0 {
		return
	}
	now := t.now()
	t.tokens += now.Sub(t.last).Seconds() * t.rate
	t.last = now
	if t.tokens > t.rate {
		t.tokens = t.rate
	}
	t.tokens -= float64(n)
	if t.tokens < 0 {
		deficit := -t.tokens / t.rate // seconds until the bucket refills
		t.sleep(time.Duration(deficit * float64(time.Second)))
		t.last = t.now()
		t.tokens = 0
	}
}
