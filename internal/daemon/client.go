package daemon

// Client is the wire-protocol counterpart of the server: it opens one
// session on a daemon, feeds it event batches, and collects the
// terminal outcome (result, eviction, error). tcrace -remote is a thin
// wrapper over it; the differential and restart-equivalence tests use
// it directly.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"

	"treeclock"
	"treeclock/internal/trace"
)

// EvictedError is the terminal outcome of a session the daemon evicted
// over budget: the session's state is checkpointed server-side, and a
// new session with the same id and Resume set continues from Position.
type EvictedError struct {
	// Position is the event frontier the spooled checkpoint covers;
	// resume re-feeds from here.
	Position uint64
	// Reason is the daemon's human-readable eviction cause.
	Reason string
}

func (e *EvictedError) Error() string {
	return fmt.Sprintf("daemon: session evicted at %d events: %s", e.Position, e.Reason)
}

// Client is one daemon connection. Dial, optionally Stats, then Open
// exactly once; Feed in a single goroutine; Finish or Detach to end
// the session; Close always. Not safe for concurrent use.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	progress func(events, retained uint64)
	opened   bool
	scratch  []byte

	term     chan terminal
	outcome  *terminal // first terminal frame, latched
	finalErr error     // sticky terminal error
}

// terminal is a server frame that ends the session (or the read loop).
type terminal struct {
	typ     byte
	payload []byte
	err     error // transport failure, when typ is 0
}

// Dial connects to a daemon. The network is inferred from addr the
// way the server infers its listen network: "unix" when the address
// contains a path separator, "tcp" otherwise.
func Dial(addr string) (*Client, error) {
	network := "tcp"
	if strings.ContainsRune(addr, '/') {
		network = "unix"
	}
	return DialNetwork(network, addr)
}

// DialNetwork connects to a daemon on an explicit network.
func DialNetwork(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	if _, err := c.bw.WriteString(connMagic); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// OnProgress registers a callback for the daemon's progress frames
// (absolute event position, last-sampled retained bytes). It must be
// set before Open; the callback runs on the client's reader goroutine.
func (c *Client) OnProgress(fn func(events, retained uint64)) { c.progress = fn }

// Stats requests the daemon's statistics snapshot. Only valid before
// Open (an open connection is dedicated to its session).
func (c *Client) Stats() (*Stats, error) {
	if c.opened {
		return nil, errors.New("daemon: Stats after Open (use a separate connection)")
	}
	if err := writeFrame(c.bw, frameStats, nil); err != nil {
		return nil, err
	}
	typ, payload, err := readFrame(c.br)
	if err != nil {
		return nil, err
	}
	switch typ {
	case frameStatsRep:
		var st Stats
		if err := json.Unmarshal(payload, &st); err != nil {
			return nil, fmt.Errorf("daemon: bad stats payload: %w", err)
		}
		return &st, nil
	case frameError:
		return nil, errors.New(string(payload))
	default:
		return nil, fmt.Errorf("daemon: unexpected frame %q to stats request", typ)
	}
}

// Open starts (or, with spec.Resume, resumes) the session and returns
// the position to feed from: zero for a fresh session, the spooled
// frontier for a resumed one — the client re-ships events from there.
func (c *Client) Open(id, engine string, opts ...OpenOption) (uint64, error) {
	if c.opened {
		return 0, errors.New("daemon: Open called twice on one connection")
	}
	spec := &openSpec{ID: id, Engine: engine}
	for _, opt := range opts {
		opt(spec)
	}
	payload, err := encodeOpen(spec)
	if err != nil {
		return 0, err
	}
	if err := writeFrame(c.bw, frameOpen, payload); err != nil {
		return 0, err
	}
	typ, reply, err := readFrame(c.br)
	if err != nil {
		return 0, err
	}
	switch typ {
	case frameOpened:
		pos, _, err := decodePos(reply)
		if err != nil {
			return 0, err
		}
		c.opened = true
		c.term = make(chan terminal, 1)
		go c.readLoop()
		return pos, nil
	case frameError:
		return 0, errors.New(string(reply))
	default:
		return 0, fmt.Errorf("daemon: unexpected frame %q to open", typ)
	}
}

// OpenOption tunes an Open request.
type OpenOption func(*openSpec)

// OpenWorkers selects the sharded runtime with n workers.
func OpenWorkers(n int) OpenOption { return func(s *openSpec) { s.Workers = n } }

// OpenFlatWeak selects the flat weak-clock transport (wcp engines).
func OpenFlatWeak() OpenOption { return func(s *openSpec) { s.FlatWeak = true } }

// OpenNoAnalysis disables race reporting.
func OpenNoAnalysis() OpenOption { return func(s *openSpec) { s.NoAnalysis = true } }

// OpenSlotReclaim enables thread-slot reclamation.
func OpenSlotReclaim() OpenOption { return func(s *openSpec) { s.SlotReclaim = true } }

// OpenSummaryCap caps retained rule-(a) summary vectors (wcp engines).
func OpenSummaryCap(n int) OpenOption { return func(s *openSpec) { s.SummaryCap = n } }

// OpenResume resumes the session from its server-side checkpoint.
func OpenResume() OpenOption { return func(s *openSpec) { s.Resume = true } }

// readLoop demultiplexes server frames after Open: progress frames hit
// the callback; the first terminal frame (result, evicted, error,
// detached) or transport failure parks in c.term and ends the loop.
func (c *Client) readLoop() {
	for {
		typ, payload, err := readFrame(c.br)
		if err != nil {
			c.term <- terminal{err: err}
			return
		}
		switch typ {
		case frameProgress:
			if c.progress != nil {
				if events, retained, err := decodeProgress(payload); err == nil {
					c.progress(events, retained)
				}
			}
		case frameResult, frameEvicted, frameError, frameDetached:
			c.term <- terminal{typ: typ, payload: payload}
			return
		}
	}
}

// await blocks for the terminal frame (latched after first receipt).
func (c *Client) await() *terminal {
	if c.outcome == nil {
		t := <-c.term
		c.outcome = &t
	}
	return c.outcome
}

// terminated reports (without blocking) whether the session already
// ended — an eviction or error can arrive while the client is still
// feeding.
func (c *Client) terminated() bool {
	if c.outcome != nil {
		return true
	}
	select {
	case t := <-c.term:
		c.outcome = &t
		return true
	default:
		return false
	}
}

// finalize maps the latched terminal frame to the session outcome.
func (c *Client) finalize() (*treeclock.StreamResult, error) {
	t := c.await()
	if c.finalErr != nil {
		return nil, c.finalErr
	}
	switch t.typ {
	case frameResult:
		res, err := decodeResult(t.payload)
		if err != nil {
			c.finalErr = err
		}
		return res, err
	case frameEvicted:
		pos, reason, err := decodePos(t.payload)
		if err != nil {
			c.finalErr = err
			return nil, err
		}
		c.finalErr = &EvictedError{Position: pos, Reason: reason}
		return nil, c.finalErr
	case frameError:
		c.finalErr = errors.New(string(t.payload))
		return nil, c.finalErr
	case frameDetached:
		pos, _, err := decodePos(t.payload)
		if err != nil {
			c.finalErr = err
			return nil, err
		}
		c.finalErr = fmt.Errorf("daemon: session detached at %d events", pos)
		return nil, c.finalErr
	default:
		c.finalErr = t.err
		if c.finalErr == nil {
			c.finalErr = errors.New("daemon: connection lost")
		}
		return nil, c.finalErr
	}
}

// Feed ships one batch of events to the session. A batch rejected by
// a terminal condition (eviction, a server error) returns that
// outcome; use errors.As to detect EvictedError and resume later.
func (c *Client) Feed(events []trace.Event) error {
	if !c.opened {
		return errors.New("daemon: Feed before Open")
	}
	if c.terminated() {
		_, err := c.finalize()
		if err == nil {
			err = errors.New("daemon: session already finished")
		}
		return err
	}
	c.scratch = encodeEvents(c.scratch[:0], events)
	if err := writeFrame(c.bw, frameEvents, c.scratch); err != nil {
		// The write side broke; the read side has (or will have) the
		// authoritative terminal frame.
		_, ferr := c.finalize()
		if ferr != nil {
			return ferr
		}
		return err
	}
	return nil
}

// FeedSource drains src into the session in batches, skipping the
// first skip events (the resume protocol: the daemon already has
// them). Returns the number of events shipped.
func (c *Client) FeedSource(src trace.EventSource, skip uint64) (uint64, error) {
	buf := make([]trace.Event, trace.DefaultBatchSize)
	var shipped uint64
	for {
		n, ok := trace.ReadBatch(src, buf)
		if n > 0 {
			batch := buf[:n]
			if skip > 0 {
				if uint64(n) <= skip {
					skip -= uint64(n)
					batch = nil
				} else {
					batch = batch[skip:]
					skip = 0
				}
			}
			if len(batch) > 0 {
				if err := c.Feed(batch); err != nil {
					return shipped, err
				}
				shipped += uint64(len(batch))
			}
		}
		if !ok {
			return shipped, src.Err()
		}
	}
}

// Finish seals the session and returns its StreamResult —
// byte-identical to a library run of the same events.
func (c *Client) Finish() (*treeclock.StreamResult, error) {
	if !c.opened {
		return nil, errors.New("daemon: Finish before Open")
	}
	if !c.terminated() {
		if err := writeFrame(c.bw, frameFinish, nil); err != nil && !c.terminated() {
			return nil, err
		}
	}
	return c.finalize()
}

// Detach asks the daemon to checkpoint the session server-side and
// part; the returned position is the frontier a resumed session
// continues from.
func (c *Client) Detach() (uint64, error) {
	if !c.opened {
		return 0, errors.New("daemon: Detach before Open")
	}
	if !c.terminated() {
		if err := writeFrame(c.bw, frameDetach, nil); err != nil && !c.terminated() {
			return 0, err
		}
	}
	t := c.await()
	if t.typ == frameDetached {
		pos, _, err := decodePos(t.payload)
		return pos, err
	}
	_, err := c.finalize()
	if err == nil {
		err = fmt.Errorf("daemon: unexpected frame %q to detach", t.typ)
	}
	return 0, err
}

// Close severs the connection. An active session gets the server's
// courtesy checkpoint and is resumable. Idempotent.
func (c *Client) Close() error {
	return c.conn.Close()
}
