// Package daemon implements tcraced, the multi-tenant analysis
// service: a long-lived server that multiplexes many concurrent trace
// sessions — each one a treeclock.Session fed push-mode over the wire
// protocol of proto.go — across a bounded worker pool with per-session
// budgets.
//
// # Session lifecycle
//
// A client connects, sends the preamble and an open frame naming the
// session, the engine and the option subset a push-mode Session
// accepts. The server admits the session (waiting for a pool slot if
// the daemon is at capacity), restores it from its spool checkpoint
// when the open requests a resume, and replies with the position to
// feed from — zero for a fresh session, the checkpointed frontier for
// a resumed one. The client then streams event frames; the server
// feeds them into the Session, writes cadence checkpoints to the spool
// (so a kill -9 at any moment leaves a resumable frontier behind), and
// sends periodic progress frames. A finish frame seals the stream:
// the result frame carries the byte-identical StreamResult a library
// run of the same events would produce, and the spool checkpoint is
// removed. A detach frame instead snapshots the session to the spool
// and parts cleanly; an abrupt disconnect gets the same courtesy
// snapshot on a best-effort basis.
//
// # Budgets
//
// Two per-session budgets keep one tenant from starving the rest. The
// retained-bytes budget (Config.MaxRetainedBytes) is enforced against
// the engine's own memory accounting, sampled every MemCheckEvery
// events: a session over budget is evicted — snapshotted to its spool,
// sent an evicted frame with the resumable position, and disconnected.
// The events/sec budget (Config.MaxEventsPerSec) is a token bucket
// that throttles the feed loop, smoothing bursts instead of rejecting
// them. Both use the injected clock (Config.Now/Sleep), so the daemon
// package itself stays deterministic and testable — the detrange
// analyzer holds it to that.
package daemon

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"
)

// Config parameterizes a Server. The zero value is not usable: Now
// and Sleep must be supplied (cmd/tcraced passes time.Now and
// time.Sleep; tests pass a fake clock), and SpoolDir must name a
// directory the daemon may write checkpoints into.
type Config struct {
	// Network and Addr are the listen endpoint, as for net.Listen.
	// An empty Network is inferred: "unix" when Addr contains a path
	// separator, "tcp" otherwise.
	Network string
	Addr    string

	// SpoolDir holds the per-session checkpoint files
	// (<SpoolDir>/<session id>.ckpt), created if missing. Checkpoints
	// are what make daemon restarts invisible: sessions resume from
	// their spooled frontier and re-feed only the tail.
	SpoolDir string

	// MaxSessions bounds the concurrently active sessions (default 64).
	// Opens beyond the bound wait for a slot rather than failing.
	MaxSessions int

	// MaxRetainedBytes is the per-session retained-state budget; a
	// session whose engine reports more is evicted with a final
	// checkpoint. Zero means no budget.
	MaxRetainedBytes uint64

	// MaxEventsPerSec is the per-session feed-rate budget, enforced by
	// throttling (not rejection). Zero means unthrottled.
	MaxEventsPerSec float64

	// CheckpointEvery is the spool checkpoint cadence in events
	// (0 selects the library default of one per million events).
	CheckpointEvery uint64

	// ProgressEvery is the progress-frame cadence in events
	// (default 65536).
	ProgressEvery uint64

	// MemCheckEvery is the budget-sampling cadence in events
	// (default 4096). Sampling quiesces sharded sessions, so the
	// cadence trades enforcement latency against barrier cost.
	MemCheckEvery uint64

	// Now and Sleep are the daemon's clock, injected so scheduling is
	// testable with a fake clock. Required.
	Now   func() time.Time
	Sleep func(time.Duration)

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Server is one daemon instance: a listener, the live-session table,
// the statistics registry and the admission pool.
type Server struct {
	cfg   Config
	ln    net.Listener
	stats *statistics
	slots chan struct{} // admission pool: one token per active session
	quit  chan struct{} // closed by Close; aborts admission waits

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	live   map[string]struct{} // session ids currently being served
	closed bool

	wg sync.WaitGroup // tracks connection handlers
}

// New validates cfg, applies defaults, creates the spool directory
// and starts listening. The returned server serves connections once
// Serve is called.
func New(cfg Config) (*Server, error) {
	if cfg.Now == nil || cfg.Sleep == nil {
		return nil, fmt.Errorf("daemon: Config.Now and Config.Sleep are required")
	}
	if cfg.SpoolDir == "" {
		return nil, fmt.Errorf("daemon: Config.SpoolDir is required")
	}
	if cfg.Network == "" {
		if strings.ContainsRune(cfg.Addr, '/') {
			cfg.Network = "unix"
		} else {
			cfg.Network = "tcp"
		}
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	if cfg.ProgressEvery == 0 {
		cfg.ProgressEvery = 1 << 16
	}
	if cfg.MemCheckEvery == 0 {
		cfg.MemCheckEvery = 1 << 12
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: creating spool dir: %w", err)
	}
	ln, err := net.Listen(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("daemon: listen: %w", err)
	}
	return &Server{
		cfg:   cfg,
		ln:    ln,
		stats: newStatistics(cfg.Now),
		slots: make(chan struct{}, cfg.MaxSessions),
		quit:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
		live:  make(map[string]struct{}),
	}, nil
}

// Addr returns the listener's address (useful with ":0" listens).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until Close. It returns nil after a clean
// Close, the accept error otherwise.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops the listener and severs every live connection, then
// waits for the handlers to finish their cleanup — each active session
// writes a final courtesy checkpoint to its spool on the way out, so a
// closed daemon's sessions are resumable by the next one. Close is
// idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.quit)
	err := s.ln.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// handle serves one connection: verify the preamble, then dispatch on
// the first frames — stats requests answer in place, an open frame
// hands the connection to the session loop.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	var magic [len(connMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return
	}
	if string(magic[:]) != connMagic {
		writeFrame(bw, frameError, []byte(fmt.Sprintf("tcraced: bad protocol preamble %q", magic[:])))
		return
	}

	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return
		}
		switch typ {
		case frameStats:
			rep, err := s.stats.snapshotJSON()
			if err != nil {
				writeFrame(bw, frameError, []byte("tcraced: "+err.Error()))
				return
			}
			if writeFrame(bw, frameStatsRep, rep) != nil {
				return
			}
		case frameOpen:
			spec, err := decodeOpen(payload)
			if err != nil {
				writeFrame(bw, frameError, []byte("tcraced: bad open frame: "+err.Error()))
				return
			}
			s.serveSession(conn, br, bw, spec)
			return
		default:
			writeFrame(bw, frameError, []byte(fmt.Sprintf("tcraced: unexpected frame %q before open", typ)))
			return
		}
	}
}

// sessionIDOK validates a session id: non-empty, bounded, and made of
// name-safe bytes only, so the id can be a spool filename without any
// path-traversal surface.
func sessionIDOK(id string) bool {
	if id == "" || len(id) > 128 || id[0] == '.' || id[0] == '-' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}
