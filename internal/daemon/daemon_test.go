package daemon

// Daemon differential and fault tests: every session served over the
// wire must produce byte-identical results to a library run of the
// same events, including across daemon kills and budget evictions.
// All scheduling (throttle, rate windows, uptime) runs on a fake
// injected clock, so the suite is deterministic and sleeps never
// block real time.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"treeclock"
	"treeclock/internal/trace"
)

// fakeClock is the injected deterministic clock: Sleep advances time
// instead of blocking.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// startDaemon builds and serves a daemon on a loopback TCP port.
func startDaemon(t *testing.T, spool string, mod func(*Config)) (*Server, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	cfg := Config{
		Network:       "tcp",
		Addr:          "127.0.0.1:0",
		SpoolDir:      spool,
		ProgressEvery: 256,
		MemCheckEvery: 64,
		Now:           clk.Now,
		Sleep:         clk.Sleep,
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, clk
}

// daemonTrace is the shared corpus: mixed sync/access workload large
// enough for multiple progress, memory-sample and checkpoint cadences.
func daemonTrace() *treeclock.Trace {
	return treeclock.GenerateMixed(treeclock.GenConfig{
		Threads: 6, Locks: 4, Vars: 24, Events: 2200, SyncFrac: 0.3, Seed: 17,
	})
}

// libraryRun produces the ground-truth StreamResult for a corpus.
func libraryRun(t *testing.T, engine string, workers int, tr *treeclock.Trace) *treeclock.StreamResult {
	t.Helper()
	var (
		res *treeclock.StreamResult
		err error
	)
	if workers > 1 {
		res, err = treeclock.RunStreamParallelSource(engine, treeclock.NewTraceReplayer(tr), treeclock.WithWorkers(workers))
	} else {
		res, err = treeclock.RunStreamSource(engine, treeclock.NewTraceReplayer(tr))
	}
	if err != nil {
		t.Fatalf("library run %s/%d: %v", engine, workers, err)
	}
	return res
}

// resultBytes is the byte-identity comparator: the canonical wire
// encoding of a StreamResult.
func resultBytes(t *testing.T, res *treeclock.StreamResult) []byte {
	t.Helper()
	b, err := encodeResult(res)
	if err != nil {
		t.Fatalf("encodeResult: %v", err)
	}
	return b
}

// feedRangeErr ships events[from:to] in chunks.
func feedRangeErr(c *Client, events []trace.Event, from, to uint64, chunk int) error {
	for i := from; i < to; i += uint64(chunk) {
		end := i + uint64(chunk)
		if end > to {
			end = to
		}
		if err := c.Feed(events[i:end]); err != nil {
			return fmt.Errorf("Feed at %d: %w", i, err)
		}
	}
	return nil
}

// feedRange is feedRangeErr for the test goroutine.
func feedRange(t *testing.T, c *Client, events []trace.Event, from, to uint64, chunk int) {
	t.Helper()
	if err := feedRangeErr(c, events, from, to, chunk); err != nil {
		t.Fatal(err)
	}
}

func TestProtoRoundTrip(t *testing.T) {
	spec := &openSpec{
		ID: "s-1.a_b", Engine: "wcp-tree", Workers: 3,
		FlatWeak: true, NoAnalysis: false, SlotReclaim: true, SummaryCap: 7, Resume: true,
	}
	payload, err := encodeOpen(spec)
	if err != nil {
		t.Fatalf("encodeOpen: %v", err)
	}
	got, err := decodeOpen(payload)
	if err != nil {
		t.Fatalf("decodeOpen: %v", err)
	}
	if !reflect.DeepEqual(spec, got) {
		t.Fatalf("open round trip: %+v != %+v", got, spec)
	}

	res := &treeclock.StreamResult{
		Engine: "shb-vc",
		Meta:   treeclock.Meta{Name: "trace", Threads: 3, Locks: 2, Vars: 5},
		Events: 4242,
		Summary: treeclock.RaceSummary{
			Total: 9, WriteWrite: 4, WriteRead: 3, ReadWrite: 2, Vars: 2,
		},
		Samples: []treeclock.Race{
			{Kind: treeclock.WriteReadRace, Var: 4, Prior: treeclock.Epoch{T: 1, Clk: 7}, Access: treeclock.Epoch{T: 2, Clk: 3}},
		},
		Timestamps: []treeclock.Vector{{1, 2, 3}, {0, 5, 0}, {}},
		Mem: &treeclock.MemStats{
			HistEntries: 1, PeakLockHist: 2, DroppedEntries: 3, RetainedBytes: 4,
			SummaryVectors: 5, FreeVectors: 6, SummaryEvictions: 7, ThreadSlots: 8,
			FreeSlots: 9, RetiredSlots: 10, ReusedSlots: 11, InternedNames: 12, InternEvictions: 13,
		},
	}
	rb := resultBytes(t, res)
	back, err := decodeResult(rb)
	if err != nil {
		t.Fatalf("decodeResult: %v", err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatalf("result round trip:\n got %+v\nwant %+v", back, res)
	}
	if !bytes.Equal(rb, resultBytes(t, back)) {
		t.Fatalf("result re-encoding is not canonical")
	}
	// A corrupt payload must fail decode, never panic.
	for flip := 0; flip < len(rb); flip += 11 {
		bad := append([]byte(nil), rb...)
		bad[flip] ^= 0x40
		if _, err := decodeResult(bad); err == nil && bytes.Equal(bad, rb) == false {
			t.Fatalf("decodeResult accepted corrupt payload (flip at %d)", flip)
		}
	}

	pb, err := encodePos(77, "over budget")
	if err != nil {
		t.Fatalf("encodePos: %v", err)
	}
	pos, reason, err := decodePos(pb)
	if err != nil || pos != 77 || reason != "over budget" {
		t.Fatalf("pos round trip: %d %q %v", pos, reason, err)
	}

	evs := []trace.Event{
		{T: 0, Obj: 3, Kind: trace.Read},
		{T: 5, Obj: 0, Kind: trace.Write},
		{T: 2, Obj: 1, Kind: trace.Acquire},
		{T: 2, Obj: 1, Kind: trace.Release},
		{T: 0, Obj: 7, Kind: trace.Fork},
		{T: 0, Obj: 7, Kind: trace.Join},
	}
	enc := encodeEvents(nil, evs)
	dec, err := decodeEvents(enc, nil)
	if err != nil {
		t.Fatalf("decodeEvents: %v", err)
	}
	if !reflect.DeepEqual(evs, dec) {
		t.Fatalf("events round trip: %v != %v", dec, evs)
	}
	if _, err := decodeEvents(enc[:len(enc)-1], nil); err == nil {
		t.Fatalf("decodeEvents accepted truncated payload")
	}
	bad := append([]byte(nil), enc...)
	bad[1] = 0xff // first event kind out of range
	if _, err := decodeEvents(bad, nil); err == nil {
		t.Fatalf("decodeEvents accepted bad event kind")
	}
}

// TestDaemonMatchesLibrary is the differential pin: every engine, in
// sequential and sharded form, served concurrently over one daemon,
// must report byte-identically to the library.
func TestDaemonMatchesLibrary(t *testing.T) {
	srv, _ := startDaemon(t, t.TempDir(), nil)
	addr := srv.Addr().String()
	tr := daemonTrace()

	type variant struct {
		engine  string
		workers int
	}
	var variants []variant
	for _, engine := range treeclock.Engines() {
		variants = append(variants, variant{engine, 1}, variant{engine, 2})
	}

	var wg sync.WaitGroup
	for i, v := range variants {
		wg.Add(1)
		go func(i int, v variant) {
			defer wg.Done()
			want := resultBytes(t, libraryRun(t, v.engine, v.workers, tr))
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("%s/%d: dial: %v", v.engine, v.workers, err)
				return
			}
			defer c.Close()
			opts := []OpenOption{}
			if v.workers > 1 {
				opts = append(opts, OpenWorkers(v.workers))
			}
			pos, err := c.Open(fmt.Sprintf("match-%d", i), v.engine, opts...)
			if err != nil {
				t.Errorf("%s/%d: open: %v", v.engine, v.workers, err)
				return
			}
			if pos != 0 {
				t.Errorf("%s/%d: fresh session opened at %d", v.engine, v.workers, pos)
				return
			}
			if err := feedRangeErr(c, tr.Events, 0, uint64(len(tr.Events)), 173); err != nil {
				t.Errorf("%s/%d: %v", v.engine, v.workers, err)
				return
			}
			res, err := c.Finish()
			if err != nil {
				t.Errorf("%s/%d: finish: %v", v.engine, v.workers, err)
				return
			}
			if got := resultBytes(t, res); !bytes.Equal(got, want) {
				t.Errorf("%s/%d: daemon result diverges from library run", v.engine, v.workers)
			}
		}(i, v)
	}
	wg.Wait()
}

// TestDaemonRestartEquivalence is the fault-injection pin: kill the
// daemon abruptly mid-stream, restart it over the same spool, resume,
// and require the final report — races, timestamps, MemStats — to be
// byte-identical to an uninterrupted library run.
func TestDaemonRestartEquivalence(t *testing.T) {
	tr := daemonTrace()
	n := uint64(len(tr.Events))
	engines := []string{"hb-tree", "shb-vc", "maz-tree", "wcp-vc"}
	for _, engine := range engines {
		for _, workers := range []int{1, 2} {
			for _, frac := range []uint64{3, 2} { // kill near n/3 and n/2
				killAt := n / frac
				name := fmt.Sprintf("%s/w%d/kill%d", engine, workers, killAt)
				t.Run(name, func(t *testing.T) {
					spool := t.TempDir()
					want := resultBytes(t, libraryRun(t, engine, workers, tr))
					srv, _ := startDaemon(t, spool, func(c *Config) { c.CheckpointEvery = 500 })

					c, err := Dial(srv.Addr().String())
					if err != nil {
						t.Fatalf("dial: %v", err)
					}
					reached := make(chan struct{})
					var once sync.Once
					c.OnProgress(func(events, _ uint64) {
						if events >= killAt {
							once.Do(func() { close(reached) })
						}
					})
					opts := []OpenOption{}
					if workers > 1 {
						opts = append(opts, OpenWorkers(workers))
					}
					if _, err := c.Open("restart", engine, opts...); err != nil {
						t.Fatalf("open: %v", err)
					}
					// Feed until the daemon has demonstrably processed the
					// kill point (it reads from the socket asynchronously,
					// so wait for its progress frames, not our writes),
					// then kill it.
					var i uint64
				feeding:
					for i < n {
						end := i + 97
						if end > n {
							end = n
						}
						if err := c.Feed(tr.Events[i:end]); err != nil {
							t.Fatalf("feed at %d: %v", i, err)
						}
						i = end
						select {
						case <-reached:
							break feeding
						default:
						}
					}
					select {
					case <-reached:
					case <-time.After(10 * time.Second):
						t.Fatalf("daemon never reported progress past %d", killAt)
					}
					srv.Close() // abrupt: severs the connection mid-stream
					c.Close()

					srv2, _ := startDaemon(t, spool, func(c *Config) { c.CheckpointEvery = 500 })
					c2, err := Dial(srv2.Addr().String())
					if err != nil {
						t.Fatalf("dial 2: %v", err)
					}
					defer c2.Close()
					pos, err := c2.Open("restart", engine, append(opts, OpenResume())...)
					if err != nil {
						t.Fatalf("resume open: %v", err)
					}
					if pos == 0 || pos > n {
						t.Fatalf("resumed at %d of %d events", pos, n)
					}
					feedRange(t, c2, tr.Events, pos, n, 173)
					res, err := c2.Finish()
					if err != nil {
						t.Fatalf("finish after restart: %v", err)
					}
					if got := resultBytes(t, res); !bytes.Equal(got, want) {
						t.Fatalf("restarted session diverges from uninterrupted library run")
					}
				})
			}
		}
	}
}

// TestDaemonDetachResume covers the graceful hand-off: detach
// checkpoints server-side at exactly the fed frontier, and a resumed
// session finishes byte-identically.
func TestDaemonDetachResume(t *testing.T) {
	tr := daemonTrace()
	n := uint64(len(tr.Events))
	spool := t.TempDir()
	srv, _ := startDaemon(t, spool, nil)
	want := resultBytes(t, libraryRun(t, "wcp-tree", 1, tr))

	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := c.Open("detach", "wcp-tree"); err != nil {
		t.Fatalf("open: %v", err)
	}
	half := n / 2
	feedRange(t, c, tr.Events, 0, half, 173)
	pos, err := c.Detach()
	if err != nil {
		t.Fatalf("detach: %v", err)
	}
	if pos != half {
		t.Fatalf("detached at %d, fed %d", pos, half)
	}
	c.Close()

	c2, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer c2.Close()
	pos2, err := c2.Open("detach", "wcp-tree", OpenResume())
	if err != nil {
		t.Fatalf("resume open: %v", err)
	}
	if pos2 != half {
		t.Fatalf("resumed at %d, detached at %d", pos2, half)
	}
	feedRange(t, c2, tr.Events, half, n, 173)
	res, err := c2.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if got := resultBytes(t, res); !bytes.Equal(got, want) {
		t.Fatalf("detach/resume session diverges from library run")
	}
	// The finished session's spool checkpoint is gone.
	if _, err := os.Stat(spool + "/detach.ckpt"); !os.IsNotExist(err) {
		t.Fatalf("finished session left spool checkpoint behind (stat err %v)", err)
	}
}

// TestDaemonEviction covers the retained-bytes budget: a wcp session
// over budget is evicted with a resumable checkpoint, and resuming on
// an unbudgeted daemon completes byte-identically.
func TestDaemonEviction(t *testing.T) {
	tr := daemonTrace()
	n := uint64(len(tr.Events))
	spool := t.TempDir()
	want := resultBytes(t, libraryRun(t, "wcp-tree", 1, tr))

	srv, _ := startDaemon(t, spool, func(c *Config) {
		c.MaxRetainedBytes = 1
		c.MemCheckEvery = 64
	})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := c.Open("evicted", "wcp-tree"); err != nil {
		t.Fatalf("open: %v", err)
	}
	// Feed until the eviction severs the stream; the terminal outcome
	// surfaces on Finish.
	for i := uint64(0); i < n; i += 97 {
		end := i + 97
		if end > n {
			end = n
		}
		if c.Feed(tr.Events[i:end]) != nil {
			break
		}
	}
	_, err = c.Finish()
	var ev *EvictedError
	if !errors.As(err, &ev) {
		t.Fatalf("expected EvictedError, got %v", err)
	}
	if ev.Position == 0 || ev.Position > n {
		t.Fatalf("evicted at position %d of %d", ev.Position, n)
	}
	if ev.Reason == "" {
		t.Fatalf("eviction carries no reason")
	}
	c.Close()
	srv.Close()

	srv2, _ := startDaemon(t, spool, nil) // no budget
	c2, err := Dial(srv2.Addr().String())
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	defer c2.Close()
	pos, err := c2.Open("evicted", "wcp-tree", OpenResume())
	if err != nil {
		t.Fatalf("resume open: %v", err)
	}
	if pos != ev.Position {
		t.Fatalf("resumed at %d, evicted at %d", pos, ev.Position)
	}
	feedRange(t, c2, tr.Events, pos, n, 173)
	res, err := c2.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if got := resultBytes(t, res); !bytes.Equal(got, want) {
		t.Fatalf("evicted/resumed session diverges from library run")
	}
}

// TestDaemonThrottle pins the events/sec budget on the fake clock: a
// session feeding far over rate must accumulate throttle sleeps.
func TestDaemonThrottle(t *testing.T) {
	tr := daemonTrace()
	srv, clk := startDaemon(t, t.TempDir(), func(c *Config) {
		c.MaxEventsPerSec = 1000
	})
	base := clk.Now()
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Open("throttled", "hb-tree"); err != nil {
		t.Fatalf("open: %v", err)
	}
	feedRange(t, c, tr.Events, 0, uint64(len(tr.Events)), 173)
	if _, err := c.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	// 2200 events at 1000/sec with a one-second initial burst needs at
	// least ~1.2s of injected sleep.
	if advanced := clk.Now().Sub(base); advanced < time.Second {
		t.Fatalf("throttle advanced the clock only %v for %d events at 1000/sec", advanced, len(tr.Events))
	}
}

// TestDaemonStats covers the live endpoint: session table, per-engine
// occupancy and lifetime counters.
func TestDaemonStats(t *testing.T) {
	tr := daemonTrace()
	srv, _ := startDaemon(t, t.TempDir(), nil)
	addr := srv.Addr().String()

	c1, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c1.Close()
	if _, err := c1.Open("stats-a", "hb-tree"); err != nil {
		t.Fatalf("open a: %v", err)
	}
	c2, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c2.Close()
	if _, err := c2.Open("stats-b", "wcp-vc", OpenWorkers(2)); err != nil {
		t.Fatalf("open b: %v", err)
	}

	cs, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial stats: %v", err)
	}
	st, err := cs.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.ActiveSessions != 2 || st.SessionsOpened != 2 {
		t.Fatalf("active=%d opened=%d, want 2/2", st.ActiveSessions, st.SessionsOpened)
	}
	if len(st.Sessions) != 2 || st.Sessions[0].ID != "stats-a" || st.Sessions[1].ID != "stats-b" {
		t.Fatalf("session table %+v not sorted [stats-a stats-b]", st.Sessions)
	}
	if st.Sessions[1].Engine != "wcp-vc" || st.Sessions[1].Workers != 2 {
		t.Fatalf("session row %+v lost engine/workers", st.Sessions[1])
	}
	if len(st.Engines) != 2 || st.Engines[0].Engine != "hb-tree" || st.Engines[1].Engine != "wcp-vc" {
		t.Fatalf("occupancy %+v not sorted by engine", st.Engines)
	}
	cs.Close()

	var races uint64
	for i, c := range []*Client{c1, c2} {
		feedRange(t, c, tr.Events, 0, uint64(len(tr.Events)), 173)
		res, err := c.Finish()
		if err != nil {
			t.Fatalf("finish %d: %v", i, err)
		}
		races += res.Summary.Total
	}

	cs2, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial stats 2: %v", err)
	}
	defer cs2.Close()
	st2, err := cs2.Stats()
	if err != nil {
		t.Fatalf("stats 2: %v", err)
	}
	if st2.ActiveSessions != 0 || st2.SessionsFinished != 2 {
		t.Fatalf("after finish: active=%d finished=%d", st2.ActiveSessions, st2.SessionsFinished)
	}
	if st2.EventsTotal != 2*uint64(len(tr.Events)) {
		t.Fatalf("events total %d, want %d", st2.EventsTotal, 2*len(tr.Events))
	}
	if st2.RacesTotal != races {
		t.Fatalf("races total %d, want %d", st2.RacesTotal, races)
	}
}

// TestDaemonAdmission covers the bounded pool: with one slot, a second
// session waits for the first to end instead of failing.
func TestDaemonAdmission(t *testing.T) {
	tr := daemonTrace()
	srv, _ := startDaemon(t, t.TempDir(), func(c *Config) { c.MaxSessions = 1 })
	addr := srv.Addr().String()

	c1, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := c1.Open("slot-1", "hb-vc"); err != nil {
		t.Fatalf("open 1: %v", err)
	}
	feedRange(t, c1, tr.Events, 0, 500, 173)

	done := make(chan error, 1)
	go func() {
		c2, err := Dial(addr)
		if err != nil {
			done <- err
			return
		}
		defer c2.Close()
		if _, err := c2.Open("slot-2", "hb-vc"); err != nil {
			done <- err
			return
		}
		if err := feedRangeErr(c2, tr.Events, 0, 500, 173); err != nil {
			done <- err
			return
		}
		_, err = c2.Finish()
		done <- err
	}()

	// Let the second open reach the admission queue, then free the slot.
	time.Sleep(50 * time.Millisecond)
	feedRange(t, c1, tr.Events, 500, uint64(len(tr.Events)), 173)
	if _, err := c1.Finish(); err != nil {
		t.Fatalf("finish 1: %v", err)
	}
	c1.Close()
	if err := <-done; err != nil {
		t.Fatalf("queued session failed: %v", err)
	}
}

// TestDaemonRejects covers the error surfaces: bad and duplicate
// session ids, unknown engines, resume without a checkpoint, stats on
// a session connection.
func TestDaemonRejects(t *testing.T) {
	srv, _ := startDaemon(t, t.TempDir(), nil)
	addr := srv.Addr().String()

	open := func(id, engine string, opts ...OpenOption) error {
		c, err := Dial(addr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer c.Close()
		_, err = c.Open(id, engine, opts...)
		return err
	}

	for _, id := range []string{"", ".hidden", "-flag", "a/b", "../escape", "x y"} {
		if err := open(id, "hb-tree"); err == nil {
			t.Errorf("id %q was accepted", id)
		}
	}
	if err := open("ok", "no-such-engine"); err == nil || !bytes.Contains([]byte(err.Error()), []byte("unknown engine")) {
		t.Errorf("unknown engine error %v", err)
	}
	if err := open("fresh", "hb-tree", OpenResume()); err == nil {
		t.Errorf("resume without a spooled checkpoint was accepted")
	}

	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Open("dup", "hb-tree"); err != nil {
		t.Fatalf("open dup: %v", err)
	}
	if err := open("dup", "hb-tree"); err == nil || !bytes.Contains([]byte(err.Error()), []byte("already active")) {
		t.Errorf("duplicate live session error %v", err)
	}
	if _, err := c.Stats(); err == nil {
		t.Errorf("Stats on a session connection was accepted")
	}
}

// TestDaemonUnixSocket runs one full session over a Unix socket, with
// the network inferred from the address on both ends.
func TestDaemonUnixSocket(t *testing.T) {
	dir, err := os.MkdirTemp("", "tcd")
	if err != nil {
		t.Fatalf("mkdtemp: %v", err)
	}
	defer os.RemoveAll(dir)
	tr := daemonTrace()
	startDaemon(t, dir, func(c *Config) {
		c.Network = ""
		c.Addr = dir + "/tcraced.sock"
	})
	want := resultBytes(t, libraryRun(t, "maz-vc", 1, tr))
	c, err := Dial(dir + "/tcraced.sock")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Open("unix", "maz-vc"); err != nil {
		t.Fatalf("open: %v", err)
	}
	feedRange(t, c, tr.Events, 0, uint64(len(tr.Events)), 173)
	res, err := c.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if !bytes.Equal(resultBytes(t, res), want) {
		t.Fatalf("unix-socket session diverges from library run")
	}
}

// TestDaemonGoroutineLeaks pins the cleanup paths: after serving
// finished, evicted and severed sessions, closing the daemon returns
// the process to its goroutine baseline.
func TestDaemonGoroutineLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	tr := daemonTrace()
	spool := t.TempDir()
	srv, _ := startDaemon(t, spool, func(c *Config) {
		c.MaxRetainedBytes = 1
		c.MemCheckEvery = 64
	})
	addr := srv.Addr().String()

	// One finished sharded session (hb has no memory accounting, so
	// the budget never fires)...
	c1, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := c1.Open("leak-done", "hb-tree", OpenWorkers(2)); err != nil {
		t.Fatalf("open: %v", err)
	}
	feedRange(t, c1, tr.Events, 0, uint64(len(tr.Events)), 173)
	if _, err := c1.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	c1.Close()

	// ...one evicted wcp session...
	c2, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := c2.Open("leak-evict", "wcp-tree"); err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := uint64(0); i < uint64(len(tr.Events)); i += 97 {
		end := i + 97
		if end > uint64(len(tr.Events)) {
			end = uint64(len(tr.Events))
		}
		if c2.Feed(tr.Events[i:end]) != nil {
			break
		}
	}
	var ev *EvictedError
	if _, err := c2.Finish(); !errors.As(err, &ev) {
		t.Fatalf("expected eviction, got %v", err)
	}
	c2.Close()

	// ...and one sharded session severed mid-stream.
	c3, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := c3.Open("leak-sever", "shb-tree", OpenWorkers(2)); err != nil {
		t.Fatalf("open: %v", err)
	}
	feedRange(t, c3, tr.Events, 0, 700, 173)
	c3.Close()

	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d at baseline, %d now", base, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
