package gen

import (
	"fmt"
	"math/rand"

	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// Application-shaped generators. Each mimics the communication
// structure of a common concurrent-program family; together with Mixed
// they make up the benchmark suite (see suite.go).

// ProducerConsumer models producers appending to a shared queue and
// consumers draining it, all under one queue lock, with per-thread
// local work between operations. Variable 0 is the queue head,
// variable 1 the queue tail; the rest are local scratch.
func ProducerConsumer(producers, consumers, events int, seed int64) *trace.Trace {
	k := producers + consumers
	vars := 2 + k
	r := rand.New(rand.NewSource(seed))
	evs := make([]trace.Event, 0, events)
	for len(evs) < events {
		t := vt.TID(r.Intn(k))
		local := int32(2 + int(t))
		// Local work.
		for n := r.Intn(3); n > 0; n-- {
			evs = append(evs, trace.Event{T: t, Obj: local, Kind: trace.Write})
		}
		evs = append(evs, trace.Event{T: t, Obj: 0, Kind: trace.Acquire})
		if int(t) < producers {
			evs = append(evs,
				trace.Event{T: t, Obj: 1, Kind: trace.Read},
				trace.Event{T: t, Obj: 1, Kind: trace.Write})
		} else {
			evs = append(evs,
				trace.Event{T: t, Obj: 0, Kind: trace.Read},
				trace.Event{T: t, Obj: 0, Kind: trace.Write},
				trace.Event{T: t, Obj: 1, Kind: trace.Read})
		}
		evs = append(evs, trace.Event{T: t, Obj: 0, Kind: trace.Release})
	}
	return &trace.Trace{
		Meta: trace.Meta{
			Name:    fmt.Sprintf("producer-consumer-%dp%dc", producers, consumers),
			Threads: k, Locks: 1, Vars: vars,
		},
		Events: evs,
	}
}

// Pipeline models a chain of stages: stage i repeatedly takes an item
// from buffer i (lock i) and puts the result into buffer i+1
// (lock i+1). Communication is strictly neighbor-to-neighbor.
func Pipeline(stages, events int, seed int64) *trace.Trace {
	if stages < 2 {
		panic("gen: pipeline needs at least 2 stages")
	}
	r := rand.New(rand.NewSource(seed))
	evs := make([]trace.Event, 0, events)
	for len(evs) < events {
		t := vt.TID(r.Intn(stages))
		in := int32(t)
		out := int32(t) + 1
		if int(t) > 0 { // take from the input buffer
			evs = append(evs,
				trace.Event{T: t, Obj: in - 1, Kind: trace.Acquire},
				trace.Event{T: t, Obj: in - 1, Kind: trace.Read},
				trace.Event{T: t, Obj: in - 1, Kind: trace.Release})
		}
		if int(t) < stages-1 { // put into the output buffer
			evs = append(evs,
				trace.Event{T: t, Obj: in, Kind: trace.Acquire},
				trace.Event{T: t, Obj: out - 1, Kind: trace.Write},
				trace.Event{T: t, Obj: in, Kind: trace.Release})
		} else { // sink: local accumulation
			evs = append(evs, trace.Event{T: t, Obj: int32(stages), Kind: trace.Write})
		}
	}
	return &trace.Trace{
		Meta: trace.Meta{
			Name:    fmt.Sprintf("pipeline-%d", stages),
			Threads: stages, Locks: stages - 1, Vars: stages + 1,
		},
		Events: evs,
	}
}

// BarrierPhases models bulk-synchronous computation: in each phase all
// threads do local work on private variables plus a few shared
// accesses under the phase lock, then everybody syncs on the phase
// lock (an all-to-all knowledge exchange, like an OpenMP parallel
// region boundary).
func BarrierPhases(threads, phases, workPerPhase int, seed int64) *trace.Trace {
	r := rand.New(rand.NewSource(seed))
	vars := threads + 1 // one private var each + one shared
	var evs []trace.Event
	for p := 0; p < phases; p++ {
		l := int32(p % 2)
		for t := 0; t < threads; t++ {
			tid := vt.TID(t)
			for n := 0; n < workPerPhase; n++ {
				kind := trace.Write
				if r.Intn(2) == 0 {
					kind = trace.Read
				}
				evs = append(evs, trace.Event{T: tid, Obj: int32(t + 1), Kind: kind})
			}
			evs = append(evs,
				trace.Event{T: tid, Obj: l, Kind: trace.Acquire},
				trace.Event{T: tid, Obj: 0, Kind: trace.Read},
				trace.Event{T: tid, Obj: 0, Kind: trace.Write},
				trace.Event{T: tid, Obj: l, Kind: trace.Release})
		}
	}
	return &trace.Trace{
		Meta: trace.Meta{
			Name:    fmt.Sprintf("barrier-k%d-p%d", threads, phases),
			Threads: threads, Locks: 2, Vars: vars,
		},
		Events: evs,
	}
}

// ReadersWriters models a shared table guarded by a lock for writers
// while readers mostly read without synchronization (the classic racy
// pattern race detectors are pointed at). Thread 0 is the writer.
func ReadersWriters(threads, events int, seed int64, racy bool) *trace.Trace {
	r := rand.New(rand.NewSource(seed))
	const vars = 8
	evs := make([]trace.Event, 0, events)
	for len(evs) < events {
		t := vt.TID(r.Intn(threads))
		x := int32(r.Intn(vars))
		if t == 0 { // writer
			evs = append(evs,
				trace.Event{T: t, Obj: 0, Kind: trace.Acquire},
				trace.Event{T: t, Obj: x, Kind: trace.Write},
				trace.Event{T: t, Obj: 0, Kind: trace.Release})
		} else if racy {
			evs = append(evs, trace.Event{T: t, Obj: x, Kind: trace.Read})
		} else {
			evs = append(evs,
				trace.Event{T: t, Obj: 0, Kind: trace.Acquire},
				trace.Event{T: t, Obj: x, Kind: trace.Read},
				trace.Event{T: t, Obj: 0, Kind: trace.Release})
		}
	}
	name := "readers-writers"
	if racy {
		name = "readers-writers-racy"
	}
	return &trace.Trace{
		Meta: trace.Meta{
			Name:    fmt.Sprintf("%s-k%d", name, threads),
			Threads: threads, Locks: 1, Vars: vars,
		},
		Events: evs,
	}
}

// ForkJoinTree models a master thread forking workers, each doing
// locked updates to a shared accumulator plus private work, then being
// joined — exercising the fork/join extension events.
func ForkJoinTree(workers, workPerWorker int, seed int64) *trace.Trace {
	r := rand.New(rand.NewSource(seed))
	k := workers + 1
	vars := workers + 1 // shared accumulator + one private each
	var evs []trace.Event
	master := vt.TID(0)
	evs = append(evs, trace.Event{T: master, Obj: 0, Kind: trace.Write}) // init accumulator
	for w := 1; w <= workers; w++ {
		evs = append(evs, trace.Event{T: master, Obj: int32(w), Kind: trace.Fork})
	}
	// Interleave worker bodies randomly.
	remaining := make([]int, workers)
	for i := range remaining {
		remaining[i] = workPerWorker
	}
	active := workers
	for active > 0 {
		w := 1 + r.Intn(workers)
		if remaining[w-1] == 0 {
			continue
		}
		remaining[w-1]--
		if remaining[w-1] == 0 {
			active--
		}
		t := vt.TID(w)
		evs = append(evs,
			trace.Event{T: t, Obj: int32(w), Kind: trace.Write}, // private
			trace.Event{T: t, Obj: 0, Kind: trace.Acquire},
			trace.Event{T: t, Obj: 0, Kind: trace.Read},
			trace.Event{T: t, Obj: 0, Kind: trace.Write},
			trace.Event{T: t, Obj: 0, Kind: trace.Release})
	}
	for w := 1; w <= workers; w++ {
		evs = append(evs, trace.Event{T: master, Obj: int32(w), Kind: trace.Join})
	}
	evs = append(evs, trace.Event{T: master, Obj: 0, Kind: trace.Read}) // collect
	return &trace.Trace{
		Meta: trace.Meta{
			Name:    fmt.Sprintf("fork-join-%dw", workers),
			Threads: k, Locks: 1, Vars: vars,
		},
		Events: evs,
	}
}
