package gen

import (
	"testing"

	"treeclock/internal/trace"
)

func checkTrace(t *testing.T, tr *trace.Trace) trace.Stats {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("%s: invalid trace: %v", tr.Meta.Name, err)
	}
	if tr.Len() == 0 {
		t.Fatalf("%s: empty trace", tr.Meta.Name)
	}
	return trace.ComputeStats(tr)
}

func TestMixedRespectsConfig(t *testing.T) {
	cfg := Config{Name: "m", Threads: 8, Locks: 4, Vars: 64, Events: 5000, Seed: 1, SyncFrac: 0.3}
	tr := Mixed(cfg)
	s := checkTrace(t, tr)
	if s.Threads > 8 || s.Locks > 4 || s.Vars > 64 {
		t.Errorf("stats exceed config: %+v", s)
	}
	if tr.Len() < 5000 || tr.Len() > 5000+8 {
		t.Errorf("event count %d far from target 5000", tr.Len())
	}
	if s.SyncPct < 5 {
		t.Errorf("sync share %.1f%% too low for SyncFrac 0.3", s.SyncPct)
	}
}

func TestMixedDeterministic(t *testing.T) {
	cfg := Config{Threads: 6, Locks: 3, Vars: 32, Events: 2000, Seed: 42, SyncFrac: 0.25}
	a, b := Mixed(cfg), Mixed(cfg)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	c := Mixed(Config{Threads: 6, Locks: 3, Vars: 32, Events: 2000, Seed: 43, SyncFrac: 0.25})
	same := true
	for i := range a.Events {
		if i >= len(c.Events) || a.Events[i] != c.Events[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestMixedSyncFracControlsSyncShare(t *testing.T) {
	low := trace.ComputeStats(Mixed(Config{Threads: 8, Locks: 4, Vars: 64, Events: 20000, Seed: 7, SyncFrac: 0.02}))
	high := trace.ComputeStats(Mixed(Config{Threads: 8, Locks: 4, Vars: 64, Events: 20000, Seed: 7, SyncFrac: 0.6}))
	if low.SyncPct >= high.SyncPct {
		t.Errorf("sync share not monotone in SyncFrac: %.1f%% vs %.1f%%", low.SyncPct, high.SyncPct)
	}
}

func TestMixedZeroConfigDefaults(t *testing.T) {
	tr := Mixed(Config{})
	checkTrace(t, tr)
}

func TestScenarios(t *testing.T) {
	for _, sc := range Scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			tr := sc.Fn(12, 4000, 5)
			s := checkTrace(t, tr)
			if s.RWPct != 0 {
				t.Errorf("scalability scenario must be sync-only, got %.1f%% r/w", s.RWPct)
			}
			if s.SyncPct != 100 {
				t.Errorf("sync share = %.1f%%, want 100%%", s.SyncPct)
			}
			if s.Threads < 2 {
				t.Errorf("only %d threads active", s.Threads)
			}
		})
	}
}

func TestPairwiseLockCount(t *testing.T) {
	tr := Pairwise(10, 2000, 1)
	if tr.Meta.Locks != 45 {
		t.Errorf("pairwise locks = %d, want 45", tr.Meta.Locks)
	}
	checkTrace(t, tr)
}

func TestStarDedicatedLocks(t *testing.T) {
	tr := Star(6, 2000, 1)
	if tr.Meta.Locks != 5 {
		t.Errorf("star locks = %d, want 5", tr.Meta.Locks)
	}
	// Every lock is touched only by the server (t0) and its client.
	users := make(map[int32]map[int32]bool)
	for _, e := range tr.Events {
		if e.Kind.IsSync() {
			if users[e.Obj] == nil {
				users[e.Obj] = make(map[int32]bool)
			}
			users[e.Obj][int32(e.T)] = true
		}
	}
	for l, us := range users {
		if len(us) > 2 {
			t.Errorf("lock %d used by %d threads, want ≤ 2", l, len(us))
		}
		if !us[0] {
			t.Errorf("lock %d never used by the server", l)
		}
	}
}

func TestScenarioPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Star(1, 10, 0) },
		func() { Pairwise(1, 10, 0) },
		func() { Pipeline(1, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for degenerate thread count")
				}
			}()
			f()
		}()
	}
}

func TestApplicationGenerators(t *testing.T) {
	traces := []*trace.Trace{
		ProducerConsumer(3, 4, 3000, 1),
		Pipeline(5, 3000, 2),
		BarrierPhases(6, 10, 8, 3),
		ReadersWriters(8, 3000, 4, true),
		ReadersWriters(8, 3000, 4, false),
		ForkJoinTree(7, 50, 5),
	}
	for _, tr := range traces {
		checkTrace(t, tr)
	}
}

func TestForkJoinTreeUsesForkJoinEvents(t *testing.T) {
	tr := ForkJoinTree(4, 10, 9)
	forks, joins := 0, 0
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.Fork:
			forks++
		case trace.Join:
			joins++
		}
	}
	if forks != 4 || joins != 4 {
		t.Errorf("forks=%d joins=%d, want 4 and 4", forks, joins)
	}
}

func TestSuiteWellFormed(t *testing.T) {
	entries := SuiteEntries()
	if len(entries) < 25 {
		t.Fatalf("suite has only %d entries", len(entries))
	}
	seen := make(map[string]bool)
	minThreads, maxThreads := 1<<30, 0
	for _, e := range entries {
		if seen[e.Name] {
			t.Errorf("duplicate suite name %q", e.Name)
		}
		seen[e.Name] = true
		tr := e.Build(0.05) // small scale for the test
		s := checkTrace(t, tr)
		if tr.Meta.Name != e.Name {
			t.Errorf("trace name %q != entry name %q", tr.Meta.Name, e.Name)
		}
		if s.Threads < minThreads {
			minThreads = s.Threads
		}
		if s.Threads > maxThreads {
			maxThreads = s.Threads
		}
	}
	// The suite must span the paper's thread-count envelope (3–222).
	if minThreads > 5 {
		t.Errorf("smallest suite trace has %d threads; want small traces too", minThreads)
	}
	if maxThreads < 200 {
		t.Errorf("largest suite trace has %d threads; want a 200+ server-style trace", maxThreads)
	}
}

func TestSuiteScale(t *testing.T) {
	e := SuiteEntries()[0]
	small := e.Build(0.05)
	big := e.Build(0.2)
	if big.Len() <= small.Len() {
		t.Errorf("scale did not grow the trace: %d vs %d", big.Len(), small.Len())
	}
}

func TestLockScenarios(t *testing.T) {
	t.Run("nested-locks", func(t *testing.T) {
		tr := NestedLocks(6, 3, 2000, 1)
		s := checkTrace(t, tr)
		if s.SyncPct == 0 {
			t.Error("nested-locks emitted no sync events")
		}
		// Some acquire must happen while the thread already holds a
		// lock (that is the point of the scenario).
		holding := make(map[int32]int)
		nested := false
		for _, e := range tr.Events {
			switch e.Kind {
			case trace.Acquire:
				if holding[int32(e.T)] > 0 {
					nested = true
				}
				holding[int32(e.T)]++
			case trace.Release:
				holding[int32(e.T)]--
			}
		}
		if !nested {
			t.Error("no nested critical section generated")
		}
	})

	t.Run("guarded-pairs", func(t *testing.T) {
		tr := GuardedPairs(6, 8, 2000, 2)
		checkTrace(t, tr)
		// Every access of x must happen while holding lock x.
		held := make(map[int32]map[int32]bool)
		for i, e := range tr.Events {
			tid := int32(e.T)
			switch e.Kind {
			case trace.Acquire:
				if held[tid] == nil {
					held[tid] = make(map[int32]bool)
				}
				held[tid][e.Obj] = true
			case trace.Release:
				delete(held[tid], e.Obj)
			case trace.Read, trace.Write:
				if !held[tid][e.Obj] {
					t.Fatalf("event %d (%v): access outside its guard", i, e)
				}
			}
		}
	})

	t.Run("predictive-pairs", func(t *testing.T) {
		tr := PredictivePairs(6, 800, 3)
		checkTrace(t, tr)
	})

	t.Run("determinism", func(t *testing.T) {
		a, b := NestedLocks(6, 3, 1500, 9), NestedLocks(6, 3, 1500, 9)
		if len(a.Events) != len(b.Events) {
			t.Fatal("nested-locks not deterministic")
		}
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				t.Fatal("nested-locks not deterministic")
			}
		}
	})

	t.Run("panics", func(t *testing.T) {
		for name, f := range map[string]func(){
			"nested":     func() { NestedLocks(1, 2, 100, 1) },
			"guarded":    func() { GuardedPairs(1, 2, 100, 1) },
			"predictive": func() { PredictivePairs(1, 100, 1) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: single-thread config must panic", name)
					}
				}()
				f()
			}()
		}
	})
}
