package gen

import (
	"fmt"
	"math/rand"

	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// Lock-rich scenario generators for the weak-order engines. The
// scalability scenarios of scenarios.go are pure synchronization; these
// three mix critical-section structure with data so that the
// critical-section-sensitive orders (WCP) are exercised: nested
// sections, fully guarded conflicting accesses, and the canonical
// predictive-race shape that HB hides behind lock serialization.

// NestedLocks interleaves threads that acquire a chain of up to depth
// locks (always in ascending lock order, so the trace stays
// deadlock-free under the scheduler's no-blocking rule), perform a few
// accesses at each nesting level, and release in reverse order. Every
// access therefore sits in several critical sections at once.
func NestedLocks(threads, depth, events int, seed int64) *trace.Trace {
	if threads < 2 {
		panic("gen: nested locks need at least 2 threads")
	}
	if depth < 1 {
		depth = 1
	}
	locks := depth * 2
	vars := threads * 2
	r := rand.New(rand.NewSource(seed))
	evs := make([]trace.Event, 0, events)
	lockHolder := make([]vt.TID, locks)
	for i := range lockHolder {
		lockHolder[i] = vt.None
	}
	type state struct {
		held  []int32 // acquired chain, ascending
		want  []int32 // remaining locks of the planned chain
		work  int     // accesses left before the next lock action
		phase int     // +1 acquiring, -1 releasing
	}
	states := make([]state, threads)
	access := func(t vt.TID) trace.Event {
		kind := trace.Write
		if r.Intn(2) == 0 {
			kind = trace.Read
		}
		// Half the variables are shared, half thread-local.
		x := int32(r.Intn(vars / 2))
		if r.Intn(4) > 0 {
			x = int32(vars/2 + int(t)%(vars/2))
		}
		return trace.Event{T: t, Obj: x, Kind: kind}
	}
	for len(evs) < events {
		t := vt.TID(r.Intn(threads))
		st := &states[t]
		if st.work > 0 {
			st.work--
			evs = append(evs, access(t))
			continue
		}
		switch {
		case st.phase == 0:
			// Plan a fresh ascending chain.
			d := 1 + r.Intn(depth)
			start := r.Intn(locks - d + 1)
			st.want = st.want[:0]
			for i := 0; i < d; i++ {
				st.want = append(st.want, int32(start+i))
			}
			st.phase = 1
		case st.phase == 1 && len(st.want) > 0:
			l := st.want[0]
			if lockHolder[l] != vt.None {
				// Contended: do useful work instead of blocking.
				evs = append(evs, access(t))
				break
			}
			st.want = st.want[1:]
			st.held = append(st.held, l)
			lockHolder[l] = t
			st.work = r.Intn(3)
			evs = append(evs, trace.Event{T: t, Obj: l, Kind: trace.Acquire})
		case st.phase == 1:
			st.phase = -1
		case len(st.held) > 0:
			l := st.held[len(st.held)-1]
			st.held = st.held[:len(st.held)-1]
			lockHolder[l] = vt.None
			st.work = r.Intn(2)
			evs = append(evs, trace.Event{T: t, Obj: l, Kind: trace.Release})
		default:
			st.phase = 0
		}
	}
	// Close every open chain so the trace stays well formed.
	for t := range states {
		for i := len(states[t].held) - 1; i >= 0; i-- {
			evs = append(evs, trace.Event{T: vt.TID(t), Obj: states[t].held[i], Kind: trace.Release})
		}
	}
	return &trace.Trace{
		Meta:   trace.Meta{Name: fmt.Sprintf("nested-locks-k%d-d%d", threads, depth), Threads: threads, Locks: locks, Vars: vars},
		Events: evs,
	}
}

// GuardedPairs produces conflicting accesses that are all properly
// guarded: every access to a shared variable happens inside a critical
// section on that variable's dedicated lock. HB, SHB and WCP all agree
// the trace is race-free (for WCP via rule (a): the guarded bodies
// conflict), which makes the scenario a sharp differential check.
func GuardedPairs(threads, vars, events int, seed int64) *trace.Trace {
	if threads < 2 {
		panic("gen: guarded pairs need at least 2 threads")
	}
	if vars < 1 {
		vars = 1
	}
	r := rand.New(rand.NewSource(seed))
	evs := make([]trace.Event, 0, events)
	for len(evs)+3 <= events {
		t := vt.TID(r.Intn(threads))
		x := int32(r.Intn(vars))
		evs = append(evs, trace.Event{T: t, Obj: x, Kind: trace.Acquire})
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			kind := trace.Write
			if r.Intn(3) > 0 {
				kind = trace.Read
			}
			evs = append(evs, trace.Event{T: t, Obj: x, Kind: kind})
		}
		evs = append(evs, trace.Event{T: t, Obj: x, Kind: trace.Release})
	}
	return &trace.Trace{
		Meta:   trace.Meta{Name: fmt.Sprintf("guarded-pairs-k%d", threads), Threads: threads, Locks: vars, Vars: vars},
		Events: evs,
	}
}

// PredictivePairs emits the canonical predictive-race shape on
// disjoint thread pairs: both threads of a pair write a shared
// variable outside their critical sections, while the sections
// themselves (on the pair's data lock) touch only thread-private
// data. Consecutive rounds are chained through a second, body-free
// handoff lock, so every access is HB-ordered through some lock and
// HB reports no race at all — but neither lock's sections conflict,
// so no rule-(a) edge exists and WCP flags every cross-thread write
// pair as a predictive race. The scenario is the WCP analog of the
// scalability scenarios: the number of reported races is itself a
// differential signal (0 under HB/SHB, >0 under WCP).
func PredictivePairs(threads, events int, seed int64) *trace.Trace {
	if threads < 2 {
		panic("gen: predictive pairs need at least 2 threads")
	}
	pairs := threads / 2
	r := rand.New(rand.NewSource(seed))
	evs := make([]trace.Event, 0, events)
	// Per pair p (threads a = 2p, b = 2p+1; data lock l = 2p, handoff
	// lock h = 2p+1; x shared, y_a / y_b section-private):
	//   a: [acq(h) rel(h)]  w(x) acq(l) w(ya) rel(l)
	//   b: acq(l) w(yb) rel(l) w(x)  acq(h) rel(h)
	// The handoff prefix is skipped in round 0 (h is first released by
	// b). Rounds of different pairs interleave freely; within a pair
	// the halves alternate strictly, so both locks are always free
	// when their taker is scheduled.
	type pairState struct {
		step  int
		round int
	}
	state := make([]pairState, pairs)
	for len(evs)+8 <= events {
		p := r.Intn(pairs)
		a := vt.TID(2 * p)
		b := vt.TID(2*p + 1)
		l := int32(2 * p)
		h := int32(2*p + 1)
		x := int32(3 * p)
		ya := int32(3*p + 1)
		yb := int32(3*p + 2)
		switch state[p].step {
		case 0:
			if state[p].round > 0 {
				evs = append(evs,
					trace.Event{T: a, Obj: h, Kind: trace.Acquire},
					trace.Event{T: a, Obj: h, Kind: trace.Release})
			}
			evs = append(evs,
				trace.Event{T: a, Obj: x, Kind: trace.Write},
				trace.Event{T: a, Obj: l, Kind: trace.Acquire},
				trace.Event{T: a, Obj: ya, Kind: trace.Write},
				trace.Event{T: a, Obj: l, Kind: trace.Release})
			state[p].step = 1
		default:
			evs = append(evs,
				trace.Event{T: b, Obj: l, Kind: trace.Acquire},
				trace.Event{T: b, Obj: yb, Kind: trace.Write},
				trace.Event{T: b, Obj: l, Kind: trace.Release},
				trace.Event{T: b, Obj: x, Kind: trace.Write},
				trace.Event{T: b, Obj: h, Kind: trace.Acquire},
				trace.Event{T: b, Obj: h, Kind: trace.Release})
			state[p].step = 0
			state[p].round++
		}
	}
	return &trace.Trace{
		Meta:   trace.Meta{Name: fmt.Sprintf("predictive-pairs-k%d", threads), Threads: 2 * pairs, Locks: 2 * pairs, Vars: 3 * pairs},
		Events: evs,
	}
}
