package gen

import (
	"testing"

	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// streamCases builds each endless generator fresh.
func streamCases() []struct {
	name string
	mk   func() *Stream
} {
	return []struct {
		name string
		mk   func() *Stream
	}{
		{"hot-lock", func() *Stream { return HotLock(6, 1) }},
		{"rotating-locks", func() *Stream { return RotatingLocks(6, 8, 40, 2) }},
		{"churning-vars", func() *Stream { return ChurningVars(6, 16, 25, 3) }},
	}
}

// materialize drains n events into a trace whose Meta covers every
// identifier that occurred.
func materialize(t *testing.T, src trace.EventSource, n int) *trace.Trace {
	t.Helper()
	tr := &trace.Trace{}
	lim := Take(src, n)
	for {
		ev, ok := lim.Next()
		if !ok {
			break
		}
		tr.Events = append(tr.Events, ev)
		switch {
		case ev.Kind.IsAccess():
			if int(ev.Obj) >= tr.Meta.Vars {
				tr.Meta.Vars = int(ev.Obj) + 1
			}
		case ev.Kind.IsSync():
			if int(ev.Obj) >= tr.Meta.Locks {
				tr.Meta.Locks = int(ev.Obj) + 1
			}
		}
		if int(ev.T) >= tr.Meta.Threads {
			tr.Meta.Threads = int(ev.T) + 1
		}
	}
	if err := lim.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	return tr
}

// TestStreamPrefixesWellFormed: every emitted prefix must be a valid
// trace. Validating a set of nested prefixes of one long run covers
// the mid-section cut points.
func TestStreamPrefixesWellFormed(t *testing.T) {
	for _, c := range streamCases() {
		tr := materialize(t, c.mk(), 20000)
		if len(tr.Events) != 20000 {
			t.Fatalf("%s: materialized %d events, want 20000", c.name, len(tr.Events))
		}
		for _, n := range []int{1, 7, 503, 9999, 20000} {
			prefix := &trace.Trace{Meta: tr.Meta, Events: tr.Events[:n]}
			// A cut inside a critical section leaves the lock held,
			// which Validate permits (it only rejects discipline
			// violations, not open sections).
			if err := prefix.Validate(); err != nil {
				t.Errorf("%s: prefix of %d events invalid: %v", c.name, n, err)
			}
		}
	}
}

// TestStreamDeterministic: the same configuration and seed must yield
// the identical event sequence.
func TestStreamDeterministic(t *testing.T) {
	for _, c := range streamCases() {
		a := materialize(t, c.mk(), 5000)
		b := materialize(t, c.mk(), 5000)
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				t.Fatalf("%s: event %d differs across runs: %v vs %v",
					c.name, i, a.Events[i], b.Events[i])
			}
		}
	}
}

// TestStreamBatchMatchesScalar: NextBatch must deliver exactly the
// Next sequence.
func TestStreamBatchMatchesScalar(t *testing.T) {
	for _, c := range streamCases() {
		scalar := materialize(t, c.mk(), 4000)
		lim := Take(c.mk(), 4000)
		var got []trace.Event
		buf := make([]trace.Event, 190) // deliberately not a divisor of 4000
		for {
			n, ok := lim.NextBatch(buf)
			got = append(got, buf[:n]...)
			if !ok {
				break
			}
		}
		if len(got) != len(scalar.Events) {
			t.Fatalf("%s: batch drained %d events, scalar %d", c.name, len(got), len(scalar.Events))
		}
		for i := range got {
			if got[i] != scalar.Events[i] {
				t.Fatalf("%s: event %d differs: batch %v, scalar %v", c.name, i, got[i], scalar.Events[i])
			}
		}
	}
}

// TestTakeExhaustion pins the Limited contract: clean exhaustion after
// exactly n events, nil error, empty-buffer batch calls are inert.
func TestTakeExhaustion(t *testing.T) {
	lim := Take(HotLock(4, 9), 10)
	for i := 0; i < 10; i++ {
		if _, ok := lim.Next(); !ok {
			t.Fatalf("source exhausted after %d events, want 10", i)
		}
	}
	if _, ok := lim.Next(); ok {
		t.Error("Next succeeded past the cap")
	}
	if n, ok := lim.NextBatch(make([]trace.Event, 8)); n != 0 || ok {
		t.Errorf("NextBatch past the cap = (%d, %v), want (0, false)", n, ok)
	}
	if err := lim.Err(); err != nil {
		t.Errorf("Err after clean exhaustion = %v, want nil", err)
	}
}

// TestStreamShapes sanity-checks that each generator actually
// exercises the identifier space it advertises.
func TestStreamShapes(t *testing.T) {
	hot := materialize(t, HotLock(6, 4), 10000)
	if hot.Meta.Locks != 1 {
		t.Errorf("hot-lock used %d locks, want 1", hot.Meta.Locks)
	}
	rot := materialize(t, RotatingLocks(6, 8, 40, 5), 20000)
	if rot.Meta.Locks != 8 {
		t.Errorf("rotating-locks used %d locks, want 8", rot.Meta.Locks)
	}
	churn := materialize(t, ChurningVars(6, 16, 25, 6), 30000)
	shared := 0
	seen := make(map[int32]bool)
	for _, ev := range churn.Events {
		if ev.Kind.IsAccess() && ev.Obj < 16 && !seen[ev.Obj] {
			seen[ev.Obj] = true
			shared++
		}
	}
	if shared != 16 {
		t.Errorf("churning-vars touched %d of 16 shared variables", shared)
	}
	// Every thread participates.
	for _, tr := range []*trace.Trace{hot, rot, churn} {
		active := make(map[vt.TID]bool)
		for _, ev := range tr.Events {
			active[ev.T] = true
		}
		if len(active) != 6 {
			t.Errorf("%d of 6 threads active", len(active))
		}
	}
}
