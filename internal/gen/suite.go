package gen

import (
	"math"

	"treeclock/internal/trace"
)

// The benchmark suite stands in for the paper's 153 logged traces
// (Table 3): deterministic synthetic traces spanning the same workload
// families and the same parameter envelope (threads 3–222, locks up to
// tens of thousands via the pairwise scenario, high- and low-sync
// mixes). Event counts are scaled-down defaults — the paper's traces
// run to billions of events, which the scale parameter can approach on
// bigger machines.

// SuiteEntry is one named benchmark of the suite.
type SuiteEntry struct {
	Name   string
	Family string // workload family, for reporting
	Build  func(scale float64) *trace.Trace
}

func scaled(base int, scale float64) int {
	n := int(math.Round(float64(base) * scale))
	if n < 64 {
		n = 64
	}
	return n
}

// mixed builds a Mixed-based suite entry.
func mixed(name, family string, cfg Config) SuiteEntry {
	return SuiteEntry{Name: name, Family: family, Build: func(scale float64) *trace.Trace {
		c := cfg
		c.Name = name
		c.Events = scaled(cfg.Events, scale)
		return Mixed(c)
	}}
}

// SuiteEntries lists the full benchmark suite. Seeds are fixed so every
// run sees identical traces.
func SuiteEntries() []SuiteEntry {
	return []SuiteEntry{
		// Small Java-style benchmarks (IBM Contest / SIR families):
		// few threads, light traces, sync-heavy.
		mixed("account", "contest", Config{Threads: 5, Locks: 3, Vars: 41, Events: 3000, Seed: 101, SyncFrac: 0.35}),
		mixed("airlinetickets", "contest", Config{Threads: 5, Locks: 2, Vars: 44, Events: 3500, Seed: 102, SyncFrac: 0.25}),
		mixed("array", "contest", Config{Threads: 4, Locks: 2, Vars: 30, Events: 2500, Seed: 103, SyncFrac: 0.4}),
		mixed("bubblesort", "contest", Config{Threads: 13, Locks: 2, Vars: 167, Events: 9000, Seed: 104, SyncFrac: 0.3}),
		mixed("clean", "contest", Config{Threads: 10, Locks: 2, Vars: 26, Events: 4000, Seed: 105, SyncFrac: 0.44}),
		mixed("critical", "contest", Config{Threads: 5, Locks: 1, Vars: 30, Events: 2500, Seed: 106, SyncFrac: 0.44}),
		mixed("twostage", "contest", Config{Threads: 13, Locks: 2, Vars: 21, Events: 3000, Seed: 107, SyncFrac: 0.4}),
		{Name: "boundedbuffer", Family: "contest", Build: func(s float64) *trace.Trace {
			tr := ProducerConsumer(2, 2, scaled(4000, s), 108)
			tr.Meta.Name = "boundedbuffer"
			return tr
		}},
		{Name: "producerconsumer", Family: "contest", Build: func(s float64) *trace.Trace {
			tr := ProducerConsumer(4, 5, scaled(6000, s), 109)
			tr.Meta.Name = "producerconsumer"
			return tr
		}},
		{Name: "pingpong", Family: "contest", Build: func(s float64) *trace.Trace {
			tr := Pipeline(7, scaled(4000, s), 110)
			tr.Meta.Name = "pingpong"
			return tr
		}},
		{Name: "mergesort", Family: "contest", Build: func(s float64) *trace.Trace {
			tr := ForkJoinTree(6, scaled(600, s), 111)
			tr.Meta.Name = "mergesort"
			return tr
		}},
		{Name: "wronglock", Family: "contest", Build: func(s float64) *trace.Trace {
			tr := ReadersWriters(23, scaled(5000, s), 112, true)
			tr.Meta.Name = "wronglock"
			return tr
		}},

		// Java Grande style: 4–8 threads, compute-heavy, barrier-phased.
		{Name: "moldyn", Family: "grande", Build: func(s float64) *trace.Trace {
			tr := BarrierPhases(4, scaled(120, s), 90, 201)
			tr.Meta.Name = "moldyn"
			return tr
		}},
		{Name: "sor", Family: "grande", Build: func(s float64) *trace.Trace {
			tr := BarrierPhases(5, scaled(160, s), 80, 202)
			tr.Meta.Name = "sor"
			return tr
		}},
		mixed("lufact", "grande", Config{Threads: 5, Locks: 1, Vars: 2048, Events: 150000, Seed: 203, SyncFrac: 0.02, HotVars: 32, HotFrac: 0.04}),
		mixed("raytracer", "grande", Config{Threads: 4, Locks: 8, Vars: 3900, Events: 16000, Seed: 204, SyncFrac: 0.1, LockAffinity: 2}),

		// DaCapo style: moderate threads, large variable spaces.
		mixed("batik", "dacapo", Config{Threads: 7, Locks: 40, Vars: 4900, Events: 120000, Seed: 301, SyncFrac: 0.1, HotVars: 64, HotFrac: 0.05, LockAffinity: 3, Groups: 2}),
		mixed("luindex", "dacapo", Config{Threads: 3, Locks: 8, Vars: 2500, Events: 150000, Seed: 302, SyncFrac: 0.02, HotVars: 32, HotFrac: 0.03, LockAffinity: 2}),
		mixed("lusearch", "dacapo", Config{Threads: 8, Locks: 12, Vars: 5200, Events: 160000, Seed: 303, SyncFrac: 0.08, HotVars: 64, HotFrac: 0.06, LockAffinity: 3, Groups: 2}),
		mixed("xalan", "dacapo", Config{Threads: 7, Locks: 60, Vars: 4400, Events: 120000, Seed: 304, SyncFrac: 0.15, HotVars: 64, HotFrac: 0.08, LockAffinity: 3, Groups: 2}),
		mixed("sunflow", "dacapo", Config{Threads: 17, Locks: 9, Vars: 3100, Events: 90000, Seed: 305, SyncFrac: 0.06, HotFrac: 0.05, LockAffinity: 2, Groups: 4}),
		mixed("jigsaw", "dacapo", Config{Threads: 12, Locks: 75, Vars: 3500, Events: 100000, Seed: 306, SyncFrac: 0.12, Skew: 3, HotFrac: 0.08, LockAffinity: 3, Groups: 3}),

		// OpenMP style: 16- and 56-thread variants, few locks, hot
		// shared arrays (the CoMD / DataRaceBench / OmpSCR families).
		mixed("omp-lu-16", "openmp", Config{Threads: 16, Locks: 34, Vars: 2000, Events: 200000, Seed: 401, SyncFrac: 0.1, HotVars: 48, HotFrac: 0.07, LockAffinity: 3, Groups: 4}),
		mixed("omp-lu-56", "openmp", Config{Threads: 56, Locks: 114, Vars: 2000, Events: 200000, Seed: 402, SyncFrac: 0.1, HotVars: 48, HotFrac: 0.07, LockAffinity: 3, Groups: 8}),
		mixed("omp-counter-16", "openmp", Config{Threads: 16, Locks: 2, Vars: 36, Events: 150000, Seed: 403, SyncFrac: 0.44}),
		mixed("omp-mandelbrot-56", "openmp", Config{Threads: 56, Locks: 5, Vars: 3000, Events: 180000, Seed: 404, SyncFrac: 0.03, HotVars: 48, HotFrac: 0.04, LockAffinity: 2, Groups: 8}),
		{Name: "omp-md-16", Family: "openmp", Build: func(s float64) *trace.Trace {
			tr := BarrierPhases(16, scaled(70, s), 110, 405)
			tr.Meta.Name = "omp-md-16"
			return tr
		}},
		{Name: "omp-quicksort-16", Family: "openmp", Build: func(s float64) *trace.Trace {
			tr := ForkJoinTree(16, scaled(7000, s), 406)
			tr.Meta.Name = "omp-quicksort-16"
			return tr
		}},

		// Lock-structure-heavy scenarios for the weak-order engines:
		// nested sections, fully guarded sharing, and the predictive-
		// race shape HB hides behind lock serialization (see locks.go).
		{Name: "nested-locks", Family: "predictive", Build: func(s float64) *trace.Trace {
			tr := NestedLocks(8, 3, scaled(6000, s), 601)
			tr.Meta.Name = "nested-locks"
			return tr
		}},
		{Name: "guarded-pairs", Family: "predictive", Build: func(s float64) *trace.Trace {
			tr := GuardedPairs(10, 16, scaled(8000, s), 602)
			tr.Meta.Name = "guarded-pairs"
			return tr
		}},
		{Name: "predictive-pairs", Family: "predictive", Build: func(s float64) *trace.Trace {
			tr := PredictivePairs(12, scaled(8000, s), 603)
			tr.Meta.Name = "predictive-pairs"
			return tr
		}},

		// Server style: many threads, skewed activity, larger lock
		// spaces (cassandra / tradebeans / graphchi families).
		mixed("cassandra-like", "server", Config{Threads: 96, Locks: 640, Vars: 5000, Events: 220000, Seed: 501, SyncFrac: 0.12, Skew: 5, HotVars: 128, HotFrac: 0.06, LockAffinity: 3, Groups: 12}),
		mixed("tradebeans-like", "server", Config{Threads: 222, Locks: 1200, Vars: 2000, Events: 150000, Seed: 502, SyncFrac: 0.1, Skew: 5, HotVars: 128, HotFrac: 0.05, LockAffinity: 3, Groups: 24}),
		mixed("graphchi-like", "server", Config{Threads: 20, Locks: 60, Vars: 8000, Events: 200000, Seed: 503, SyncFrac: 0.05, HotVars: 128, HotFrac: 0.05, LockAffinity: 2, Groups: 4}),
		mixed("hsqldb-like", "server", Config{Threads: 44, Locks: 400, Vars: 4500, Events: 180000, Seed: 504, SyncFrac: 0.18, Skew: 4, HotVars: 96, HotFrac: 0.07, LockAffinity: 4, Groups: 8}),
	}
}

// Suite materializes every suite trace at the given scale (1.0 ≈ a few
// hundred thousand events per large trace).
func Suite(scale float64) []*trace.Trace {
	entries := SuiteEntries()
	out := make([]*trace.Trace, len(entries))
	for i, e := range entries {
		out[i] = e.Build(scale)
	}
	return out
}
