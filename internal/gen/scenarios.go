package gen

import (
	"fmt"
	"math/rand"

	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// The four controlled scalability scenarios of §6 (Figure 10). As in
// the paper, each trace consists solely of synchronization events: a
// randomly chosen thread performs acq(ℓ) immediately followed by
// rel(ℓ) on a scenario-chosen lock. Thread counts vary while the
// communication pattern stays fixed.

// syncPair appends acq(ℓ), rel(ℓ) for thread t.
func syncPair(events []trace.Event, t vt.TID, l int32) []trace.Event {
	return append(events,
		trace.Event{T: t, Obj: l, Kind: trace.Acquire},
		trace.Event{T: t, Obj: l, Kind: trace.Release})
}

// SingleLock is scenario (a): all threads communicate over one lock.
func SingleLock(threads, events int, seed int64) *trace.Trace {
	r := rand.New(rand.NewSource(seed))
	evs := make([]trace.Event, 0, events)
	for len(evs) < events {
		evs = syncPair(evs, vt.TID(r.Intn(threads)), 0)
	}
	return &trace.Trace{
		Meta:   trace.Meta{Name: fmt.Sprintf("single-lock-k%d", threads), Threads: threads, Locks: 1},
		Events: evs,
	}
}

// FiftyLocksSkewed is scenario (b): 50 locks, and 20% of the threads
// are 5× more likely to perform an operation.
func FiftyLocksSkewed(threads, events int, seed int64) *trace.Trace {
	const locks = 50
	r := rand.New(rand.NewSource(seed))
	tp := newThreadPicker(r, threads, 5)
	evs := make([]trace.Event, 0, events)
	for len(evs) < events {
		evs = syncPair(evs, tp.pick(), int32(r.Intn(locks)))
	}
	return &trace.Trace{
		Meta:   trace.Meta{Name: fmt.Sprintf("fifty-locks-k%d", threads), Threads: threads, Locks: locks},
		Events: evs,
	}
}

// Star is scenario (c): thread 0 is a server; every client i ≥ 1 talks
// to the server over its dedicated lock ℓ_{i-1}. As in the paper's
// setup, each step is a randomly chosen thread performing one sync: a
// client always syncs on its own lock, the server on a random one. A
// client's lock is only ever written by that client and the server, so
// every join and copy touches O(1) entries on average even though every
// thread transitively learns about every other — the tree-clock sweet
// spot.
func Star(threads, events int, seed int64) *trace.Trace {
	if threads < 2 {
		panic("gen: star topology needs at least 2 threads")
	}
	r := rand.New(rand.NewSource(seed))
	evs := make([]trace.Event, 0, events)
	for len(evs) < events {
		t := r.Intn(threads)
		var l int32
		if t == 0 {
			l = int32(r.Intn(threads - 1)) // server: random client lock
		} else {
			l = int32(t - 1) // client: dedicated lock
		}
		evs = syncPair(evs, vt.TID(t), l)
	}
	return &trace.Trace{
		Meta:   trace.Meta{Name: fmt.Sprintf("star-k%d", threads), Threads: threads, Locks: threads - 1},
		Events: evs,
	}
}

// Pairwise is scenario (d): every unordered pair of threads owns a
// dedicated lock; a random pair communicates by both syncing on their
// lock. This is the paper's worst case for tree clocks.
func Pairwise(threads, events int, seed int64) *trace.Trace {
	if threads < 2 {
		panic("gen: pairwise communication needs at least 2 threads")
	}
	r := rand.New(rand.NewSource(seed))
	pairIndex := func(i, j int) int32 { // i < j
		// Lexicographic index of pair (i, j) among all pairs.
		return int32(i*(2*threads-i-1)/2 + (j - i - 1))
	}
	evs := make([]trace.Event, 0, events)
	for len(evs) < events {
		// A random thread syncs on the lock it shares with a random
		// partner (one sync per step, as in the paper's setup).
		t := r.Intn(threads)
		p := r.Intn(threads)
		if p == t {
			continue
		}
		i, j := t, p
		if i > j {
			i, j = j, i
		}
		evs = syncPair(evs, vt.TID(t), pairIndex(i, j))
	}
	return &trace.Trace{
		Meta: trace.Meta{
			Name:    fmt.Sprintf("pairwise-k%d", threads),
			Threads: threads,
			Locks:   threads * (threads - 1) / 2,
		},
		Events: evs,
	}
}

// ScenarioFunc is the shared shape of the four scalability generators.
type ScenarioFunc func(threads, events int, seed int64) *trace.Trace

// Scenario names the four Figure 10 workloads.
var Scenarios = []struct {
	Name string
	Fn   ScenarioFunc
}{
	{"single-lock", SingleLock},
	{"fifty-locks-skewed", FiftyLocksSkewed},
	{"star", Star},
	{"pairwise", Pairwise},
}
