package gen

import (
	"io"
	"math/rand"
	"strconv"

	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// Endless streaming workload generators. The materialized generators
// in this package build a []trace.Event up front, which caps soak
// scenarios at whatever fits in memory; these generators instead
// implement trace.EventSource (and BatchSource), producing events on
// demand forever, so unbounded streams can be driven straight through
// engine.Runtime.ProcessSource or treeclock.RunStreamSource. Every
// emitted prefix is a well-formed trace (lock discipline holds at all
// times), and generation is deterministic for a given configuration
// and seed. Cap a stream with Take for tests and benchmarks.
//
// Three shapes target the engines' retained state:
//
//   - HotLock: every thread contends on one lock and writes one shared
//     variable inside each critical section — the adversarial workload
//     for WCP's per-lock history (one entry per section forever,
//     without compaction) whose conflicting bodies also make every
//     entry absorbable, so the compacted history stays O(threads).
//   - RotatingLocks: the hot lock rotates through a lock space, so
//     many locks accumulate (and must compact) history.
//   - ChurningVars: the variable guarded by the hot lock churns
//     through a variable space, growing the rule-(a) summary state
//     toward its live-space bound.

// Stream is an endless trace.EventSource driven by a per-turn planner:
// each plan call emits one scheduling turn's worth of events into an
// internal buffer that Next and NextBatch drain. Err is always nil and
// Next never reports false — wrap a Stream in Take to bound it.
type Stream struct {
	pending []trace.Event
	pos     int
	plan    func(emit func(trace.Event))
}

// Next returns the next event; ok is always true.
func (g *Stream) Next() (trace.Event, bool) {
	for g.pos >= len(g.pending) {
		g.pending = g.pending[:0]
		g.pos = 0
		g.plan(func(e trace.Event) { g.pending = append(g.pending, e) })
	}
	ev := g.pending[g.pos]
	g.pos++
	return ev, true
}

// NextBatch fills buf completely; ok is always true.
func (g *Stream) NextBatch(buf []trace.Event) (int, bool) {
	if len(buf) == 0 {
		return 0, false
	}
	for i := range buf {
		buf[i], _ = g.Next()
	}
	return len(buf), true
}

// Err always reports nil: generation cannot fail.
func (g *Stream) Err() error { return nil }

// Take bounds an event source at n events, after which it reports
// clean exhaustion (Err nil). It passes batch delivery through when
// the underlying source supports it.
func Take(src trace.EventSource, n int) *Limited { return &Limited{src: src, left: n} }

// Limited is the bounded view Take returns.
type Limited struct {
	src  trace.EventSource
	left int
}

// Next returns the next event while the budget and the source last.
func (l *Limited) Next() (trace.Event, bool) {
	if l.left <= 0 {
		return trace.Event{}, false
	}
	ev, ok := l.src.Next()
	if ok {
		l.left--
	}
	return ev, ok
}

// NextBatch fills buf with up to min(len(buf), remaining) events.
func (l *Limited) NextBatch(buf []trace.Event) (int, bool) {
	if l.left <= 0 || len(buf) == 0 {
		return 0, false
	}
	if l.left < len(buf) {
		buf = buf[:l.left]
	}
	n, _ := trace.ReadBatch(l.src, buf)
	l.left -= n
	return n, n > 0
}

// Err reports the underlying source's error.
func (l *Limited) Err() error { return l.src.Err() }

var (
	_ trace.BatchSource = (*Stream)(nil)
	_ trace.BatchSource = (*Limited)(nil)
)

// sectionStream is the shared machinery of the three generators: a
// seeded scheduler hands out turns mostly round-robin (with occasional
// seeded repeats, so same-thread runs occur but stay short); on each
// turn the thread runs one critical section on the current lock —
// acquire, a read/write mix on the current shared variable, release —
// followed by a few accesses to a thread-private variable. Exactly one
// section is open at a time, so every prefix is well formed.
type sectionStream struct {
	r        *rand.Rand
	threads  int
	cur      int // thread whose turn it is
	repeat   int // extra consecutive turns left for cur
	sections int // sections emitted so far

	// rotation hooks: lock/variable for the next section.
	lock func(section int) int32
	hot  func(section int) int32

	// privBase is the first thread-private variable id; thread t owns
	// privBase+t.
	privBase int32
}

func (s *sectionStream) turn(emit func(trace.Event)) {
	if s.repeat > 0 {
		s.repeat--
	} else {
		s.cur = (s.cur + 1) % s.threads
		if s.r.Intn(4) == 0 {
			s.repeat = 1 + s.r.Intn(2) // a short same-thread burst
		}
	}
	t := vt.TID(s.cur)
	l := s.lock(s.sections)
	x := s.hot(s.sections)
	s.sections++

	emit(trace.Event{T: t, Obj: l, Kind: trace.Acquire})
	if s.r.Intn(2) == 0 {
		emit(trace.Event{T: t, Obj: x, Kind: trace.Read})
	}
	emit(trace.Event{T: t, Obj: x, Kind: trace.Write})
	emit(trace.Event{T: t, Obj: l, Kind: trace.Release})
	for i := s.r.Intn(3); i > 0; i-- {
		kind := trace.Write
		if s.r.Intn(2) == 0 {
			kind = trace.Read
		}
		emit(trace.Event{T: t, Obj: s.privBase + int32(s.cur), Kind: kind})
	}
}

// HotLock returns an endless stream in which every thread contends on
// lock 0 and writes shared variable 0 inside each critical section
// (plus thread-private noise). Threads must be at least 2.
func HotLock(threads int, seed int64) *Stream {
	if threads < 2 {
		panic("gen: hot lock needs at least 2 threads")
	}
	s := &sectionStream{
		r:       rand.New(rand.NewSource(seed)),
		threads: threads,
		cur:     threads - 1,
		lock:    func(int) int32 { return 0 },
		hot:     func(int) int32 { return 0 },
		// Variable 0 is the shared one; privates follow.
		privBase: 1,
	}
	return &Stream{plan: s.turn}
}

// RotatingLocks is HotLock with the contended lock rotating through
// locks 0..locks-1, switching every rotateEvery sections; each lock
// guards its own shared variable (same id as the lock).
func RotatingLocks(threads, locks, rotateEvery int, seed int64) *Stream {
	if threads < 2 {
		panic("gen: rotating locks need at least 2 threads")
	}
	if locks < 1 {
		locks = 1
	}
	if rotateEvery < 1 {
		rotateEvery = 1
	}
	s := &sectionStream{
		r:        rand.New(rand.NewSource(seed)),
		threads:  threads,
		cur:      threads - 1,
		lock:     func(sec int) int32 { return int32(sec / rotateEvery % locks) },
		hot:      func(sec int) int32 { return int32(sec / rotateEvery % locks) },
		privBase: int32(locks),
	}
	return &Stream{plan: s.turn}
}

// ForkChurn returns an endless stream in which coordinator thread 0
// cycles a ring of short-lived worker threads: each turn it joins the
// oldest live worker (once the ring is full) and forks a fresh one,
// which runs one locked critical section on a ring-slot variable,
// sometimes followed by an unprotected write to one shared variable —
// concurrently-live workers race on it. External thread ids grow
// monotonically forever while at most ring+1 threads are ever live, so
// the stream is the adversarial workload for thread-slot reclamation:
// with it, clock width plateaus near the ring size; without it, k
// grows with every fork. Variable and lock spaces are bounded (one
// lock, ring+2 variables), so slots are the only unbounded axis.
// Ring must be at least 2 for workers to overlap.
func ForkChurn(ring int, seed int64) *Stream {
	if ring < 2 {
		panic("gen: fork churn needs a ring of at least 2")
	}
	const (
		lock = int32(0)
		racy = int32(0) // shared unprotected variable
		// slot variables follow: 1..ring, then nothing else.
	)
	r := rand.New(rand.NewSource(seed))
	var live []vt.TID // forked, not yet joined; oldest first
	next := vt.TID(1) // 0 is the coordinator
	return &Stream{plan: func(emit func(trace.Event)) {
		if len(live) >= ring {
			emit(trace.Event{T: 0, Obj: int32(live[0]), Kind: trace.Join})
			live = live[1:]
		}
		t := next
		next++
		live = append(live, t)
		emit(trace.Event{T: 0, Obj: int32(t), Kind: trace.Fork})
		slot := 1 + int32(t)%int32(ring)
		emit(trace.Event{T: t, Obj: lock, Kind: trace.Acquire})
		if r.Intn(2) == 0 {
			emit(trace.Event{T: t, Obj: slot, Kind: trace.Read})
		}
		emit(trace.Event{T: t, Obj: slot, Kind: trace.Write})
		emit(trace.Event{T: t, Obj: lock, Kind: trace.Release})
		if r.Intn(4) == 0 {
			emit(trace.Event{T: t, Obj: racy, Kind: trace.Write})
		}
	}}
}

// ChurningVars is HotLock with the guarded shared variable churning
// through vars 0..vars-1, switching every churnEvery sections, so the
// per-(lock, variable) rule-(a) summary state is driven toward its
// live-space bound while the lock history keeps compacting.
func ChurningVars(threads, vars, churnEvery int, seed int64) *Stream {
	if threads < 2 {
		panic("gen: churning vars need at least 2 threads")
	}
	if vars < 1 {
		vars = 1
	}
	if churnEvery < 1 {
		churnEvery = 1
	}
	s := &sectionStream{
		r:        rand.New(rand.NewSource(seed)),
		threads:  threads,
		cur:      threads - 1,
		lock:     func(int) int32 { return 0 },
		hot:      func(sec int) int32 { return int32(sec / churnEvery % vars) },
		privBase: int32(vars),
	}
	return &Stream{plan: s.turn}
}

// NameChurnText returns a deterministic text-format trace stream whose
// identifier names churn: a fixed set of thread names ("w_0"...) and
// four lock names ("m_0".."m_3") stay hot forever, while the guarded
// variable name advances every burst sections ("v_0", "v_1", ...) and
// is never mentioned again once retired. Every name uses an underscore
// spelling, so all of them take the tokenizer's map-interned path (the
// canonical fast path is sidestepped on purpose) — the adversarial
// workload for interner eviction: uncapped, the map grows by one name
// per burst forever; capped, retired variable names are the coldest
// entries and age out while the hot thread and lock names survive, so
// capped and uncapped runs intern identical id sequences and report
// identical results. Each section is one locked critical section plus
// an occasional unprotected read of the same variable by the next
// thread (a race while the name is still live). sections bounds the
// stream; sections < 0 streams forever.
func NameChurnText(threads, burst, sections int, seed int64) io.Reader {
	if threads < 2 {
		panic("gen: name churn needs at least 2 threads")
	}
	if burst < 1 {
		burst = 1
	}
	return &nameChurnText{
		r:       rand.New(rand.NewSource(seed)),
		threads: threads,
		burst:   burst,
		left:    sections,
	}
}

// nameChurnText synthesizes the text trace chunk by chunk; sections
// are emitted whole, so any cut the consumer sees falls on a line
// boundary.
type nameChurnText struct {
	r       *rand.Rand
	threads int
	burst   int
	left    int // sections remaining; < 0 = endless
	sec     int
	buf     []byte
	pos     int
}

func (g *nameChurnText) Read(p []byte) (int, error) {
	if g.pos >= len(g.buf) {
		if g.left == 0 {
			return 0, io.EOF
		}
		g.buf = g.buf[:0]
		g.pos = 0
		for i := 0; i < 64 && g.left != 0; i++ {
			g.section()
			if g.left > 0 {
				g.left--
			}
		}
	}
	n := copy(p, g.buf[g.pos:])
	g.pos += n
	return n, nil
}

func (g *nameChurnText) section() {
	t := g.sec % g.threads
	t2 := (t + 1) % g.threads
	l := g.sec % 4
	v := g.sec / g.burst
	g.line(t, "acq", 'm', l)
	if g.r.Intn(2) == 0 {
		g.line(t, "r", 'v', v)
	}
	g.line(t, "w", 'v', v)
	g.line(t, "rel", 'm', l)
	if g.r.Intn(3) == 0 {
		g.line(t2, "r", 'v', v)
	}
	g.sec++
}

// line appends "w_<t> <op> <c>_<id>\n".
func (g *nameChurnText) line(t int, op string, c byte, id int) {
	b := g.buf
	b = append(b, 'w', '_')
	b = strconv.AppendInt(b, int64(t), 10)
	b = append(b, ' ')
	b = append(b, op...)
	b = append(b, ' ', c, '_')
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, '\n')
	g.buf = b
}
