// Package gen synthesizes well-formed execution traces. It provides:
//
//   - Mixed, a scheduler-based generator with tunable thread count,
//     lock count, variable count, synchronization ratio and access
//     locality — the workhorse behind the benchmark suite that stands
//     in for the paper's 153 logged traces (see DESIGN.md,
//     "Substitutions");
//   - the four controlled scalability scenarios of §6 Figure 10
//     (single lock, fifty locks skewed, star topology, pairwise
//     communication);
//   - application-shaped generators (producer/consumer, pipeline,
//     barrier phases, readers/writers, fork/join) used by the suite
//     and the examples.
//
// All generators are deterministic for a given configuration and seed,
// and every produced trace satisfies trace.Validate.
package gen

import (
	"math/rand"

	"treeclock/internal/trace"
	"treeclock/internal/vt"
)

// Config parameterizes the Mixed generator.
type Config struct {
	Name    string
	Threads int
	Locks   int
	Vars    int
	Events  int   // target number of events (approximate to ±2)
	Seed    int64 // deterministic stream

	// SyncFrac is the probability that an idle thread starts a
	// critical section rather than performing a plain access; it
	// controls the share of acq/rel events (Figure 7's x-axis).
	SyncFrac float64
	// ReadFrac is the fraction of accesses that are reads.
	ReadFrac float64
	// CSLen is the mean number of accesses inside a critical section.
	CSLen int
	// HotFrac is the fraction of accesses that target one of HotVars
	// heavily-shared variables; the rest hit thread-local slices of
	// the variable space.
	HotFrac float64
	HotVars int
	// Skew, when > 1, makes 20% of the threads Skew× more likely to
	// be scheduled (the paper's "skewed" scalability scenario).
	Skew float64
	// LockAffinity restricts each lock to a small set of user threads
	// (real programs' locks guard objects shared by few threads; the
	// paper's logged traces show this as large VCWork/VTWork ratios,
	// Figure 8). 0 means every thread may take every lock — the
	// unstructured worst case for tree clocks.
	LockAffinity int
	// Groups partitions the threads into communication groups: lock
	// user sets and shared variables are drawn within one group except
	// for a CrossFrac fraction of global locks. Real concurrent
	// programs are modular — knowledge circulates within a subsystem
	// and crosses subsystems rarely — which is what keeps the true
	// vector-time work per operation small. 0 disables grouping.
	Groups int
	// CrossFrac is the fraction of locks whose users span groups.
	CrossFrac float64
	// VarRun is the mean length of consecutive accesses a thread makes
	// to the same variable (temporal locality). 1 disables bursts.
	VarRun int
}

// withDefaults fills unset fields with sensible values.
func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.Locks < 0 {
		c.Locks = 0
	}
	if c.Vars <= 0 {
		c.Vars = 16
	}
	if c.Events <= 0 {
		c.Events = 1000
	}
	if c.SyncFrac < 0 {
		c.SyncFrac = 0
	}
	if c.ReadFrac <= 0 {
		c.ReadFrac = 0.6
	}
	if c.CSLen <= 0 {
		c.CSLen = 3
	}
	if c.HotVars <= 0 || c.HotVars > c.Vars {
		c.HotVars = min(c.Vars, 4)
	}
	if c.HotFrac <= 0 {
		// Real traces are overwhelmingly thread-local (the paper's
		// Table 1 benchmarks): only a few percent of accesses touch
		// variables shared across threads.
		c.HotFrac = 0.05
	}
	if c.Skew < 1 {
		c.Skew = 1
	}
	if c.Groups > c.Threads {
		c.Groups = c.Threads
	}
	if c.CrossFrac <= 0 {
		c.CrossFrac = 0.05
	}
	if c.VarRun <= 0 {
		c.VarRun = 6
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// threadPicker draws threads, optionally with the 20%/Skew× bias.
type threadPicker struct {
	r      *rand.Rand
	k      int
	hot    int     // first `hot` threads are the biased ones
	pHot   float64 // probability mass of the hot group
	skewed bool
}

func newThreadPicker(r *rand.Rand, k int, skew float64) *threadPicker {
	tp := &threadPicker{r: r, k: k}
	if skew > 1 && k >= 5 {
		tp.skewed = true
		tp.hot = k / 5
		hotMass := skew * float64(tp.hot)
		tp.pHot = hotMass / (hotMass + float64(k-tp.hot))
	}
	return tp
}

func (tp *threadPicker) pick() vt.TID {
	if tp.skewed {
		if tp.r.Float64() < tp.pHot {
			return vt.TID(tp.r.Intn(tp.hot))
		}
		return vt.TID(tp.hot + tp.r.Intn(tp.k-tp.hot))
	}
	return vt.TID(tp.r.Intn(tp.k))
}

// mixedState tracks one thread of the Mixed scheduler.
type mixedState struct {
	lock   int32 // held lock, -1 if none
	budget int   // accesses left inside the critical section
	curVar int32 // variable of the current access burst
	run    int   // accesses left in the burst
}

// Mixed generates a trace by interleaving per-thread state machines
// under a random scheduler: threads alternate between plain accesses
// and critical sections (acquire, a few accesses, release), respecting
// lock semantics, with locality-biased variable choice.
func Mixed(cfg Config) *trace.Trace {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	tp := newThreadPicker(r, cfg.Threads, cfg.Skew)

	events := make([]trace.Event, 0, cfg.Events)
	states := make([]mixedState, cfg.Threads)
	for i := range states {
		states[i].lock = -1
	}
	lockHolder := make([]vt.TID, cfg.Locks)
	for i := range lockHolder {
		lockHolder[i] = vt.None
	}

	// Group structure: thread t belongs to group t*Groups/Threads.
	groupOf := func(t int) int {
		if cfg.Groups <= 1 {
			return 0
		}
		return t * cfg.Groups / cfg.Threads
	}
	groupMembers := make([][]int, max(cfg.Groups, 1))
	for t := 0; t < cfg.Threads; t++ {
		g := groupOf(t)
		groupMembers[g] = append(groupMembers[g], t)
	}

	// With affinity, each lock gets a small user set — drawn within a
	// single group unless the lock is one of the CrossFrac global
	// locks — and each thread a list of the locks it may take.
	locksOf := make([][]int32, cfg.Threads)
	if cfg.LockAffinity > 0 && cfg.Locks > 0 {
		for l := 0; l < cfg.Locks; l++ {
			pool := groupMembers[r.Intn(len(groupMembers))]
			if cfg.Groups <= 1 || r.Float64() < cfg.CrossFrac {
				pool = nil // global lock: sample across all threads
			}
			users := cfg.LockAffinity
			if pool != nil && users > len(pool) {
				users = len(pool)
			}
			if users > cfg.Threads {
				users = cfg.Threads
			}
			seen := make(map[int]bool, users)
			for len(seen) < users {
				var t int
				if pool != nil {
					t = pool[r.Intn(len(pool))]
				} else {
					t = r.Intn(cfg.Threads)
				}
				if !seen[t] {
					seen[t] = true
					locksOf[t] = append(locksOf[t], int32(l))
				}
			}
		}
	}
	pickLock := func(t vt.TID) (int32, bool) {
		if cfg.LockAffinity <= 0 {
			return int32(r.Intn(cfg.Locks)), true
		}
		mine := locksOf[t]
		if len(mine) == 0 {
			return 0, false
		}
		return mine[r.Intn(len(mine))], true
	}

	coldPerThread := 0
	if cfg.Vars > cfg.HotVars {
		coldPerThread = (cfg.Vars - cfg.HotVars) / cfg.Threads
	}
	// Shared (hot) variables are partitioned among the groups so that
	// data sharing, like locking, stays mostly within a group.
	hotPerGroup := cfg.HotVars / max(cfg.Groups, 1)
	pickVar := func(t vt.TID) int32 {
		if coldPerThread == 0 || r.Float64() < cfg.HotFrac {
			if cfg.Groups > 1 && hotPerGroup > 0 && r.Float64() >= cfg.CrossFrac {
				g := groupOf(int(t))
				return int32(g*hotPerGroup + r.Intn(hotPerGroup))
			}
			return int32(r.Intn(cfg.HotVars))
		}
		base := cfg.HotVars + int(t)*coldPerThread
		return int32(base + r.Intn(coldPerThread))
	}
	access := func(t vt.TID) trace.Event {
		st := &states[t]
		if st.run <= 0 {
			st.curVar = pickVar(t)
			st.run = 1 + r.Intn(2*cfg.VarRun)
		}
		st.run--
		kind := trace.Write
		if r.Float64() < cfg.ReadFrac {
			kind = trace.Read
		}
		return trace.Event{T: t, Obj: st.curVar, Kind: kind}
	}

	for len(events) < cfg.Events {
		t := tp.pick()
		st := &states[t]
		switch {
		case st.lock >= 0 && st.budget > 0:
			events = append(events, access(t))
			st.budget--
		case st.lock >= 0:
			events = append(events, trace.Event{T: t, Obj: st.lock, Kind: trace.Release})
			lockHolder[st.lock] = vt.None
			st.lock = -1
		case cfg.Locks > 0 && r.Float64() < cfg.SyncFrac:
			l, ok := pickLock(t)
			if !ok {
				events = append(events, access(t))
				break
			}
			if lockHolder[l] != vt.None {
				// Contended: do useful work instead of blocking.
				events = append(events, access(t))
				break
			}
			lockHolder[l] = t
			st.lock = l
			st.budget = r.Intn(2*cfg.CSLen + 1)
			events = append(events, trace.Event{T: t, Obj: l, Kind: trace.Acquire})
		default:
			events = append(events, access(t))
		}
	}
	// Close any open critical sections so the trace stays well formed.
	for t := range states {
		if l := states[t].lock; l >= 0 {
			events = append(events, trace.Event{T: vt.TID(t), Obj: l, Kind: trace.Release})
		}
	}

	return &trace.Trace{
		Meta: trace.Meta{
			Name:    cfg.Name,
			Threads: cfg.Threads,
			Locks:   cfg.Locks,
			Vars:    cfg.Vars,
		},
		Events: events,
	}
}
