package vc

import (
	"treeclock/internal/ckpt"
	"treeclock/internal/vt"
)

// Save implements vt.Clock: the vector and the foreign-entry revision
// counter (consumed by the weak-order quiet-release fast path, so it
// must survive a restore).
func (c *VectorClock) Save(e *ckpt.Enc) {
	e.Uvarint(uint64(len(c.v)))
	for _, t := range c.v {
		e.Svarint(int64(t))
	}
	e.U64(c.rev)
}

// Load implements vt.Clock, replacing the clock's contents.
func (c *VectorClock) Load(d *ckpt.Dec) {
	n := d.Len(1)
	if d.Err() != nil {
		return
	}
	v := make(vt.Vector, n)
	for i := range v {
		v[i] = vt.Time(d.Svarint())
	}
	rev := d.U64()
	if d.Err() != nil {
		return
	}
	c.v, c.rev = v, rev
}
