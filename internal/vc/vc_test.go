package vc

import (
	"testing"

	"treeclock/internal/vt"
)

func TestBasicOps(t *testing.T) {
	c := New(4, nil)
	c.Init(2) // no-op, must not panic
	c.Inc(2, 1)
	c.Inc(2, 1)
	if got := c.Get(2); got != 2 {
		t.Errorf("Get(2) = %d, want 2", got)
	}
	if got := c.Get(0); got != 0 {
		t.Errorf("Get(0) = %d, want 0", got)
	}
	if c.K() != 4 {
		t.Errorf("K() = %d, want 4", c.K())
	}
}

func TestJoin(t *testing.T) {
	a := New(3, nil)
	b := New(3, nil)
	a.Inc(0, 5)
	b.Inc(1, 7)
	b.Inc(0, 2)
	a.Join(b)
	want := vt.Vector{5, 7, 0}
	if got := a.Vector(vt.NewVector(3)); !got.Equal(want) {
		t.Errorf("after join: %v, want %v", got, want)
	}
	a.Join(a) // self-join must be a no-op
	if got := a.Vector(vt.NewVector(3)); !got.Equal(want) {
		t.Errorf("after self-join: %v, want %v", got, want)
	}
}

func TestMonotoneCopy(t *testing.T) {
	a := New(3, nil)
	b := New(3, nil)
	b.Inc(1, 4)
	a.MonotoneCopy(b)
	if !a.Vector(vt.NewVector(3)).Equal(vt.Vector{0, 4, 0}) {
		t.Errorf("copy result %v", a)
	}
	a.MonotoneCopy(a) // self-copy no-op
	if !a.Vector(vt.NewVector(3)).Equal(vt.Vector{0, 4, 0}) {
		t.Errorf("self-copy changed clock: %v", a)
	}
}

func TestCopyCheckMonotone(t *testing.T) {
	a := New(2, nil)
	b := New(2, nil)
	b.Inc(0, 1)
	if !a.CopyCheckMonotone(b) {
		t.Error("copy from dominating clock must report monotone")
	}
	// Now a = [1,0]; make b = [0,5]: not monotone.
	b2 := New(2, nil)
	b2.Inc(1, 5)
	if a.CopyCheckMonotone(b2) {
		t.Error("copy from incomparable clock must report non-monotone")
	}
	if !a.Vector(vt.NewVector(2)).Equal(vt.Vector{0, 5}) {
		t.Errorf("copy result %v, want [0, 5]", a)
	}
	if !a.CopyCheckMonotone(a) {
		t.Error("self-copy must report monotone")
	}
}

func TestLessEq(t *testing.T) {
	a := New(2, nil)
	b := New(2, nil)
	b.Inc(0, 1)
	if !a.LessEq(b) || b.LessEq(a) {
		t.Error("LessEq disagrees with vector comparison")
	}
}

func TestWorkCounters(t *testing.T) {
	var st vt.WorkStats
	a := New(4, &st)
	b := New(4, &st)
	a.Inc(0, 1) // 1 entry, 1 changed
	b.Inc(1, 1)
	b.Inc(1, 1)
	a.Join(b) // 4 entries, 1 changed (entry 1)
	if st.Joins != 1 {
		t.Errorf("Joins = %d, want 1", st.Joins)
	}
	if st.Entries != 3+4 {
		t.Errorf("Entries = %d, want 7", st.Entries)
	}
	if st.Changed != 3+1 {
		t.Errorf("Changed = %d, want 4", st.Changed)
	}
	a.MonotoneCopy(b) // 4 entries, entry 0 changes (1 -> 0)
	if st.Copies != 1 || st.Entries != 7+4 || st.Changed != 4+1 {
		t.Errorf("after copy: %+v", st)
	}
	a.CopyCheckMonotone(b) // equal clocks: no changes
	if st.Copies != 2 || st.Entries != 11+4 || st.Changed != 5 {
		t.Errorf("after check-copy: %+v", st)
	}
}

func TestFactory(t *testing.T) {
	var st vt.WorkStats
	f := Factory(&st)
	c := f(3)
	c.Inc(0, 1)
	if st.Changed != 1 {
		t.Error("factory clock must share the stats sink")
	}
	if c.String() != "[1, 0, 0]" {
		t.Errorf("String() = %q", c.String())
	}
}
