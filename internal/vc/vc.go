// Package vc implements the classic flat vector clock, the baseline data
// structure the paper compares tree clocks against. Join, copy and
// comparison all take Θ(k) time for k threads, regardless of how many
// entries actually change — the cost the tree clock removes.
package vc

import "treeclock/internal/vt"

// VectorClock stores one local time per thread in a flat array.
// It implements vt.Clock[*VectorClock]. The thread capacity is dynamic:
// Grow extends it, and the binary operations accept operands of any
// capacity (entries beyond a clock's capacity read as 0).
type VectorClock struct {
	v     vt.Vector
	rev   uint64
	stats *vt.WorkStats
}

// Rev implements vt.Clock. Join detects no-op joins (no entry rises)
// and leaves the counter alone — its Θ(k) scan pays for the comparison
// anyway — while the copy operations bump unconditionally; spurious
// advances are allowed by the contract.
func (c *VectorClock) Rev() uint64 { return c.rev }

// New returns a vector clock over k threads representing the zero vector
// time. If stats is non-nil, every operation accumulates work counters
// into it (shared across all clocks of an engine run).
func New(k int, stats *vt.WorkStats) *VectorClock {
	return &VectorClock{v: vt.NewVector(k), stats: stats}
}

// Factory returns a capacity-aware vt.Factory producing vector clocks
// that all share stats (which may be nil).
func Factory(stats *vt.WorkStats) vt.Factory[*VectorClock] {
	return func(k int) *VectorClock { return New(k, stats) }
}

// K returns the current thread capacity.
func (c *VectorClock) K() int { return len(c.v) }

// Grow extends the capacity to at least k; new entries are zero.
func (c *VectorClock) Grow(k int) { c.v = vt.GrowSlice(c.v, k) }

// Init records that the clock belongs to thread t. Thread identity is
// implicit in the index used by Inc, so Init only ensures capacity.
func (c *VectorClock) Init(t vt.TID) { c.Grow(int(t) + 1) }

// Get returns the recorded local time of thread t in O(1). Threads at
// or beyond the capacity have time 0.
func (c *VectorClock) Get(t vt.TID) vt.Time {
	if int(t) >= len(c.v) {
		return 0
	}
	return c.v[t]
}

// Inc adds d to thread t's entry.
func (c *VectorClock) Inc(t vt.TID, d vt.Time) {
	if int(t) >= len(c.v) {
		c.Grow(int(t) + 1)
	}
	c.v[t] += d
	if c.stats != nil {
		c.stats.Entries++
		c.stats.Changed++
	}
}

// ReleaseSlot implements vt.Clock: erase thread t's component. The
// vector clock does not know its owner, so the caller alone upholds
// the never-the-own-slot contract (the engine's slot reclamation only
// releases retired threads' entries).
func (c *VectorClock) ReleaseSlot(t vt.TID) {
	if int(t) < 0 || int(t) >= len(c.v) || c.v[t] == 0 {
		return
	}
	c.v[t] = 0
	c.rev++
}

// Join performs the pointwise-maximum update c ← c ⊔ o in Θ(k).
func (c *VectorClock) Join(o *VectorClock) {
	if c == o {
		return
	}
	if len(o.v) > len(c.v) {
		c.Grow(len(o.v))
	}
	if c.stats == nil {
		changed := false
		for i, t := range o.v {
			if t > c.v[i] {
				c.v[i] = t
				changed = true
			}
		}
		if changed {
			c.rev++
		}
		return
	}
	c.stats.Joins++
	c.stats.Entries += uint64(len(c.v))
	changed := false
	for i, t := range o.v {
		if t > c.v[i] {
			c.v[i] = t
			c.stats.Changed++
			changed = true
		}
	}
	if changed {
		c.rev++
	}
}

// MonotoneCopy overwrites c with o. For a vector clock the monotonicity
// assumption buys nothing: the copy is Θ(k) either way (this is exactly
// the baseline behaviour the paper measures). Entries beyond o's
// capacity become 0 (under the c ⊑ o precondition they already are).
func (c *VectorClock) MonotoneCopy(o *VectorClock) {
	if c == o {
		return
	}
	c.rev++
	if len(o.v) > len(c.v) {
		c.Grow(len(o.v))
	}
	if c.stats == nil {
		n := copy(c.v, o.v)
		for i := n; i < len(c.v); i++ {
			c.v[i] = 0
		}
		return
	}
	c.stats.Copies++
	c.stats.Entries += uint64(len(c.v))
	for i, t := range o.v {
		if c.v[i] != t {
			c.v[i] = t
			c.stats.Changed++
		}
	}
	for i := len(o.v); i < len(c.v); i++ {
		if c.v[i] != 0 {
			c.v[i] = 0
			c.stats.Changed++
		}
	}
}

// CopyCheckMonotone overwrites c with o and reports whether the copy was
// monotone (c ⊑ o beforehand). The check shares the same Θ(k) loop as
// the copy itself, so it is free for the baseline.
func (c *VectorClock) CopyCheckMonotone(o *VectorClock) bool {
	if c == o {
		return true
	}
	c.rev++
	if len(o.v) > len(c.v) {
		c.Grow(len(o.v))
	}
	monotone := true
	if c.stats != nil {
		c.stats.Copies++
		c.stats.Entries += uint64(len(c.v))
	}
	for i, t := range o.v {
		if c.v[i] > t {
			monotone = false
		}
		if c.v[i] != t {
			c.v[i] = t
			if c.stats != nil {
				c.stats.Changed++
			}
		}
	}
	for i := len(o.v); i < len(c.v); i++ {
		if c.v[i] != 0 {
			monotone = false
			c.v[i] = 0
			if c.stats != nil {
				c.stats.Changed++
			}
		}
	}
	return monotone
}

// LessEq reports c ⊑ o in Θ(k).
func (c *VectorClock) LessEq(o *VectorClock) bool { return c.v.LessEq(o.v) }

// Vector writes the represented vector time into dst and returns it.
func (c *VectorClock) Vector(dst vt.Vector) vt.Vector {
	copy(dst, c.v)
	return dst
}

// VectorView returns the underlying vector without copying, O(1).
// Valid only until the next mutation.
func (c *VectorClock) VectorView() []vt.Time { return c.v }

// String renders the underlying vector.
func (c *VectorClock) String() string { return c.v.String() }

var _ vt.Clock[*VectorClock] = (*VectorClock)(nil)
