// Package vc implements the classic flat vector clock, the baseline data
// structure the paper compares tree clocks against. Join, copy and
// comparison all take Θ(k) time for k threads, regardless of how many
// entries actually change — the cost the tree clock removes.
package vc

import "treeclock/internal/vt"

// VectorClock stores one local time per thread in a flat array.
// It implements vt.Clock[*VectorClock].
type VectorClock struct {
	v     vt.Vector
	stats *vt.WorkStats
}

// New returns a vector clock over k threads representing the zero vector
// time. If stats is non-nil, every operation accumulates work counters
// into it (shared across all clocks of an engine run).
func New(k int, stats *vt.WorkStats) *VectorClock {
	return &VectorClock{v: vt.NewVector(k), stats: stats}
}

// Factory returns a vt.Factory producing vector clocks over k threads
// that all share stats (which may be nil).
func Factory(k int, stats *vt.WorkStats) vt.Factory[*VectorClock] {
	return func() *VectorClock { return New(k, stats) }
}

// K returns the thread capacity.
func (c *VectorClock) K() int { return len(c.v) }

// Init is a no-op for vector clocks: thread identity is implicit in the
// index used by Inc. It exists to satisfy vt.Clock.
func (c *VectorClock) Init(t vt.TID) {}

// Get returns the recorded local time of thread t in O(1).
func (c *VectorClock) Get(t vt.TID) vt.Time { return c.v[t] }

// Inc adds d to thread t's entry.
func (c *VectorClock) Inc(t vt.TID, d vt.Time) {
	c.v[t] += d
	if c.stats != nil {
		c.stats.Entries++
		c.stats.Changed++
	}
}

// Join performs the pointwise-maximum update c ← c ⊔ o in Θ(k).
func (c *VectorClock) Join(o *VectorClock) {
	if c == o {
		return
	}
	if c.stats == nil {
		for i, t := range o.v {
			if t > c.v[i] {
				c.v[i] = t
			}
		}
		return
	}
	c.stats.Joins++
	c.stats.Entries += uint64(len(c.v))
	for i, t := range o.v {
		if t > c.v[i] {
			c.v[i] = t
			c.stats.Changed++
		}
	}
}

// MonotoneCopy overwrites c with o. For a vector clock the monotonicity
// assumption buys nothing: the copy is Θ(k) either way (this is exactly
// the baseline behaviour the paper measures).
func (c *VectorClock) MonotoneCopy(o *VectorClock) {
	if c == o {
		return
	}
	if c.stats == nil {
		copy(c.v, o.v)
		return
	}
	c.stats.Copies++
	c.stats.Entries += uint64(len(c.v))
	for i, t := range o.v {
		if c.v[i] != t {
			c.v[i] = t
			c.stats.Changed++
		}
	}
}

// CopyCheckMonotone overwrites c with o and reports whether the copy was
// monotone (c ⊑ o beforehand). The check shares the same Θ(k) loop as
// the copy itself, so it is free for the baseline.
func (c *VectorClock) CopyCheckMonotone(o *VectorClock) bool {
	if c == o {
		return true
	}
	monotone := true
	if c.stats != nil {
		c.stats.Copies++
		c.stats.Entries += uint64(len(c.v))
	}
	for i, t := range o.v {
		if c.v[i] > t {
			monotone = false
		}
		if c.v[i] != t {
			c.v[i] = t
			if c.stats != nil {
				c.stats.Changed++
			}
		}
	}
	return monotone
}

// LessEq reports c ⊑ o in Θ(k).
func (c *VectorClock) LessEq(o *VectorClock) bool { return c.v.LessEq(o.v) }

// Vector writes the represented vector time into dst and returns it.
func (c *VectorClock) Vector(dst vt.Vector) vt.Vector {
	copy(dst, c.v)
	return dst
}

// String renders the underlying vector.
func (c *VectorClock) String() string { return c.v.String() }

var _ vt.Clock[*VectorClock] = (*VectorClock)(nil)
