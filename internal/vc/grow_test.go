package vc

import (
	"testing"

	"treeclock/internal/vt"
)

func TestGrowPreservesEntries(t *testing.T) {
	c := New(2, nil)
	c.Inc(0, 3)
	c.Inc(1, 1)
	c.Grow(5)
	if c.K() != 5 {
		t.Fatalf("K() = %d", c.K())
	}
	want := vt.Vector{3, 1, 0, 0, 0}
	if got := c.Vector(vt.NewVector(5)); !got.Equal(want) {
		t.Errorf("after Grow: %v, want %v", got, want)
	}
	c.Grow(3) // shrink requests are no-ops
	if c.K() != 5 {
		t.Errorf("Grow(3) shrank to %d", c.K())
	}
}

func TestGetAndIncBeyondCapacity(t *testing.T) {
	c := New(1, nil)
	if c.Get(9) != 0 {
		t.Error("Get beyond capacity must be 0")
	}
	c.Inc(4, 2) // grows on demand
	if c.K() < 5 || c.Get(4) != 2 {
		t.Errorf("Inc beyond capacity: K=%d Get(4)=%d", c.K(), c.Get(4))
	}
}

func TestJoinAcrossCapacities(t *testing.T) {
	small := New(1, nil)
	small.Inc(0, 2)
	big := New(4, nil)
	big.Inc(3, 7)
	small.Join(big)
	want := vt.Vector{2, 0, 0, 7}
	if got := small.Vector(vt.NewVector(4)); !got.Equal(want) {
		t.Errorf("join = %v, want %v", got, want)
	}
	// Joining the smaller operand into the bigger one keeps the tail.
	big.Join(small)
	if got := big.Vector(vt.NewVector(4)); !got.Equal(want) {
		t.Errorf("reverse join = %v, want %v", got, want)
	}
}

func TestMonotoneCopyClearsTail(t *testing.T) {
	big := New(4, nil)
	big.Inc(3, 5)
	src := New(2, nil)
	src.Inc(1, 1)
	// big ⋢ src: CopyCheckMonotone must report false and clear t3.
	if big.CopyCheckMonotone(src) {
		t.Error("copy reported monotone despite stale t3 entry")
	}
	want := vt.Vector{0, 1, 0, 0}
	if got := big.Vector(vt.NewVector(4)); !got.Equal(want) {
		t.Errorf("after copy: %v, want %v", got, want)
	}

	// Plain MonotoneCopy with a zero receiver tail (precondition holds).
	zero := New(4, nil)
	zero.MonotoneCopy(src)
	if got := zero.Vector(vt.NewVector(4)); !got.Equal(want) {
		t.Errorf("MonotoneCopy: %v, want %v", got, want)
	}
}

func TestMonotoneCopyClearsTailWithStats(t *testing.T) {
	var st vt.WorkStats
	big := New(4, &st)
	big.Inc(3, 5)
	src := New(2, &st)
	src.Inc(1, 1)
	big.MonotoneCopy(src) // counting path must also clear the tail
	want := vt.Vector{0, 1, 0, 0}
	if got := big.Vector(vt.NewVector(4)); !got.Equal(want) {
		t.Errorf("after counting copy: %v, want %v", got, want)
	}
}
